#include "core/accuracy_model.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace ccperf::core {
namespace {

pruning::PrunePlan Plan(std::initializer_list<std::pair<std::string, double>>
                            ratios,
                        pruning::PrunerFamily family =
                            pruning::PrunerFamily::kL1Filter) {
  pruning::PrunePlan plan;
  plan.family = family;
  for (const auto& [layer, ratio] : ratios) plan.layer_ratios[layer] = ratio;
  return plan;
}

TEST(CaffeNetAccuracy, BaselineMatchesPaper) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const AccuracyResult base = model.Baseline();
  EXPECT_NEAR(base.top5, 0.80, 1e-9);
  EXPECT_NEAR(base.top1, 0.55, 1e-9);
  const AccuracyResult unpruned = model.Evaluate({});
  EXPECT_NEAR(unpruned.top5, base.top5, 1e-9);
}

TEST(CaffeNetAccuracy, SweetSpotsAlmostFree) {
  // Paper Fig. 6: conv1@30 and conv2@50 individually leave accuracy
  // "almost unchanged".
  const auto model = CalibratedAccuracyModel::CaffeNet();
  EXPECT_GT(model.Evaluate(Plan({{"conv1", 0.3}})).top5, 0.76);
  EXPECT_GT(model.Evaluate(Plan({{"conv2", 0.5}})).top5, 0.76);
  EXPECT_GT(model.Evaluate(Plan({{"conv3", 0.5}})).top5, 0.78);
}

TEST(CaffeNetAccuracy, MultiLayerCombosMatchFig8) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  // conv1-2 combo: paper 70 % Top-5.
  const AccuracyResult c12 =
      model.Evaluate(Plan({{"conv1", 0.3}, {"conv2", 0.5}}));
  EXPECT_NEAR(c12.top5, 0.70, 0.03);
  // all-conv combo: paper 62 % Top-5.
  const AccuracyResult all = model.Evaluate(Plan({{"conv1", 0.3},
                                                  {"conv2", 0.5},
                                                  {"conv3", 0.5},
                                                  {"conv4", 0.5},
                                                  {"conv5", 0.5}}));
  EXPECT_NEAR(all.top5, 0.62, 0.03);
}

TEST(CaffeNetAccuracy, SuperAdditiveDamage) {
  // Observation 3: combining individually-safe sweet spots costs accuracy.
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const double single1 = model.Evaluate(Plan({{"conv1", 0.3}})).top5;
  const double single2 = model.Evaluate(Plan({{"conv2", 0.5}})).top5;
  const double combo =
      model.Evaluate(Plan({{"conv1", 0.3}, {"conv2", 0.5}})).top5;
  const double base = model.Baseline().top5;
  const double additive_drop = (base - single1) + (base - single2);
  EXPECT_GT(base - combo, additive_drop * 1.3);
}

TEST(CaffeNetAccuracy, Conv1CollapsesAtNinety) {
  // Paper Fig. 6(a): conv1@90 drives Top-5 to ~0.
  const auto model = CalibratedAccuracyModel::CaffeNet();
  EXPECT_LT(model.Evaluate(Plan({{"conv1", 0.9}})).top5, 0.05);
}

TEST(CaffeNetAccuracy, OtherConvsPlateauAtNinety) {
  // Paper: conv2-5 drop to ~25 % Top-5 at 90 %, not to zero.
  const auto model = CalibratedAccuracyModel::CaffeNet();
  for (const char* layer : {"conv2", "conv3", "conv4", "conv5"}) {
    const double top5 = model.Evaluate(Plan({{layer, 0.9}})).top5;
    EXPECT_GT(top5, 0.15) << layer;
    EXPECT_LT(top5, 0.45) << layer;
  }
}

TEST(CaffeNetAccuracy, Conv1MostSensitiveLayer) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const double conv1 = model.Evaluate(Plan({{"conv1", 0.7}})).top5;
  for (const char* layer : {"conv2", "conv3", "conv4", "conv5"}) {
    EXPECT_LT(conv1, model.Evaluate(Plan({{layer, 0.7}})).top5) << layer;
  }
}

class AccuracyMonotonicity
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AccuracyMonotonicity, MorePruningNeverMoreAccurate) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  double prev_top1 = 1.0, prev_top5 = 1.0;
  for (double r = 0.0; r < 0.95; r += 0.05) {
    const AccuracyResult acc = model.Evaluate(Plan({{GetParam(), r}}));
    EXPECT_LE(acc.top5, prev_top5 + 1e-12);
    EXPECT_LE(acc.top1, prev_top1 + 1e-12);
    EXPECT_LE(acc.top1, acc.top5);
    prev_top1 = acc.top1;
    prev_top5 = acc.top5;
  }
}

INSTANTIATE_TEST_SUITE_P(Layers, AccuracyMonotonicity,
                         ::testing::Values("conv1", "conv2", "conv3", "conv4",
                                           "conv5", "fc1", "fc3"));

TEST(AccuracyModel, MagnitudeGentlerThanFilter) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const auto filter = Plan({{"conv2", 0.7}});
  const auto magnitude =
      Plan({{"conv2", 0.7}}, pruning::PrunerFamily::kMagnitude);
  EXPECT_GT(model.Evaluate(magnitude).top5, model.Evaluate(filter).top5);
}

TEST(AccuracyModel, UnknownLayerUsesDefaultDamage) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const AccuracyResult acc = model.Evaluate(Plan({{"mystery", 0.5}}));
  EXPECT_LT(acc.top5, model.Baseline().top5);
  EXPECT_GT(acc.top5, 0.5);
}

TEST(AccuracyModel, DamageIsAdditive) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  const double d1 = model.DamageOf(Plan({{"conv2", 0.5}}));
  const double d2 = model.DamageOf(Plan({{"conv3", 0.5}}));
  const double joint =
      model.DamageOf(Plan({{"conv2", 0.5}, {"conv3", 0.5}}));
  EXPECT_NEAR(joint, d1 + d2, 1e-12);
}

TEST(AccuracyModel, RejectsInvalidRatio) {
  const auto model = CalibratedAccuracyModel::CaffeNet();
  EXPECT_THROW(model.Evaluate(Plan({{"conv1", 1.0}})), CheckError);
}

TEST(AccuracyModel, RejectsBadConstruction) {
  EXPECT_THROW(CalibratedAccuracyModel(0.0, 0.8, {}, {}), CheckError);
  EXPECT_THROW(CalibratedAccuracyModel(0.9, 0.8, {}, {}), CheckError);
}

TEST(GoogLeNetAccuracy, BaselineAndSweetSpots) {
  const auto model = CalibratedAccuracyModel::GoogLeNet();
  EXPECT_NEAR(model.Baseline().top5, 0.89, 1e-9);
  // Paper Fig. 7: accuracy flat until ~60 % pruning for most layers.
  EXPECT_GT(model.Evaluate(Plan({{"inception-3a-3x3", 0.6}})).top5, 0.85);
  EXPECT_LT(model.Evaluate(Plan({{"inception-3a-3x3", 0.9}})).top5, 0.80);
}

TEST(GoogLeNetAccuracy, StemMostSensitive) {
  const auto model = CalibratedAccuracyModel::GoogLeNet();
  EXPECT_LT(model.Evaluate(Plan({{"conv1-7x7-s2", 0.8}})).top5,
            model.Evaluate(Plan({{"inception-4d-5x5", 0.8}})).top5);
}

}  // namespace
}  // namespace ccperf::core
