// Differential harness for the int8 quantized GEMM path (quant.h). Two
// oracles, two contracts:
//
//  1. Bitwise: GemmInt8 must equal NaiveGemmInt8 byte-for-byte on every
//     shape, epilogue, and input regime. Both sides make identical
//     quantization decisions and accumulate in exact int32, and they share
//     the single DequantRow epilogue, so any mismatch is a packing/blocking
//     bug — not noise.
//  2. Bounded: against a double-precision float GEMM the quantized result
//     must stay inside the per-element error bound derived from the scales
//     (s_a = per-row weight scale, s_b = per-tensor activation scale):
//       |c_q - c_f| <= s_a/2 * sum_k|b_kj| + s_b/2 * sum_k|a_ik|
//                      + K * s_a*s_b/4
//     which is the triangle inequality over the three quantization error
//     terms (a*e_b, b*e_a, e_a*e_b with |e| <= scale/2). A small relative
//     fudge absorbs the float rounding in computing 1/scale and in the
//     dequant epilogue itself.
//
// The shape schedule sweeps ~200 seeded (shape x scale-regime) samples:
// degenerate extents, microkernel tile straddles (mr = 6, nr <= 32,
// kc = 256, and the int8 k-group of 2/4), primes, and five input magnitude
// regimes that move the quantization grid across six decades.
#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/threading.h"
#include "nn/fc_layer.h"
#include "tensor/tensor.h"

namespace ccperf {
namespace {

// Input magnitude regimes: each one puts the quantization step (scale) in a
// different decade, so the derived bound — not a fixed epsilon — is what
// keeps the sweep honest.
enum class Regime {
  kUnit,      // uniform [-1, 1]
  kTiny,      // uniform [-1e-4, 1e-4]: denormal-adjacent grid
  kLarge,     // uniform [-1e3, 1e3]: coarse grid, big accumulators
  kOutlier,   // unit values + rare 100x spikes: outlier-dominated scale
  kRowScaled  // row r magnified by 10^(r % 5 - 2): per-channel scales differ
};

struct QSample {
  std::int64_t m, n, k;
  Regime regime;
};

std::vector<float> RandomMatrix(Rng& rng, std::int64_t rows, std::int64_t cols,
                                Regime regime) {
  std::vector<float> v(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    float mag = 1.0f;
    switch (regime) {
      case Regime::kUnit:
        break;
      case Regime::kTiny:
        mag = 1e-4f;
        break;
      case Regime::kLarge:
        mag = 1e3f;
        break;
      case Regime::kOutlier:
        break;
      case Regime::kRowScaled:
        mag = std::pow(10.0f, static_cast<float>(r % 5) - 2.0f);
        break;
    }
    for (std::int64_t c = 0; c < cols; ++c) {
      float x = rng.NextFloat(-mag, mag);
      if (regime == Regime::kOutlier && rng.NextDouble() < 0.01) x *= 100.0f;
      v[static_cast<std::size_t>(r * cols + c)] = x;
    }
  }
  return v;
}

/// The per-row weight scale exactly as the kernel computes it (float max of
/// finite |values| is exact and order-independent, then one float divide).
float RowScale(std::span<const float> row) {
  float m = 0.0f;
  for (const float x : row) {
    const float a = std::fabs(x);
    if (a <= std::numeric_limits<float>::max()) m = std::max(m, a);
  }
  return m / 127.0f;
}

/// Ground-truth float GEMM in double precision — quantization error is the
/// only significant difference between this and the int8 path.
std::vector<double> DoubleGemm(std::int64_t m, std::int64_t n, std::int64_t k,
                               std::span<const float> a,
                               std::span<const float> b) {
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double av = a[static_cast<std::size_t>(i * k + kk)];
      for (std::int64_t j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i * n + j)] +=
            av * b[static_cast<std::size_t>(kk * n + j)];
      }
    }
  }
  return c;
}

/// ~200-sample (shape x regime) schedule. Tile geometry from kernel_tile.h:
/// mr = 6 row panels, nr <= 32 column panels, kc = 256 K slices, and the
/// int8 kernel's K-group of 4 (VNNI quads) or 2 (int16 pairs).
std::vector<QSample> ShapeSchedule() {
  std::vector<QSample> samples;
  // Degenerate extents in every position (27).
  for (std::int64_t m : {0, 1, 2}) {
    for (std::int64_t n : {0, 1, 2}) {
      for (std::int64_t k : {0, 1, 2}) samples.push_back({m, n, k, Regime::kUnit});
    }
  }
  // mr / nr straddles, alternating regimes (36).
  {
    int idx = 0;
    for (std::int64_t m : {5, 6, 7, 11, 12, 13}) {
      for (std::int64_t n : {31, 32, 33}) {
        samples.push_back({m, n, 40, static_cast<Regime>(idx++ % 5)});
      }
    }
    for (std::int64_t n : {63, 64, 65}) {
      samples.push_back({9, n, 17, static_cast<Regime>(idx++ % 5)});
    }
  }
  // K straddles: the kc = 256 slice boundary and every k-group remainder
  // (k mod 4 in {0,1,2,3} — the group zero-pad path) (14).
  for (std::int64_t k : {3, 4, 5, 6, 7, 253, 254, 255, 256, 257, 258, 259,
                         511, 513}) {
    samples.push_back({7, 33, k, Regime::kUnit});
  }
  // Primes everywhere, one per regime (12).
  {
    int idx = 0;
    for (std::int64_t m : {13, 29}) {
      for (std::int64_t n : {37, 101}) {
        for (std::int64_t k : {23, 127}) {
          samples.push_back({m, n, k, static_cast<Regime>(idx++ % 5)});
        }
      }
    }
  }
  // Seeded random fill to >= 200, cycling regimes.
  Rng rng(0xD1FF8u);
  while (samples.size() < 200) {
    samples.push_back(
        {static_cast<std::int64_t>(rng.NextIndex(64)) + 1,
         static_cast<std::int64_t>(rng.NextIndex(96)) + 1,
         static_cast<std::int64_t>(rng.NextIndex(280)) + 1,
         static_cast<Regime>(samples.size() % 5)});
  }
  return samples;
}

TEST(QuantDifferential, BitwiseNaiveAndBoundedFloatAcrossShapeSchedule) {
  const std::vector<QSample> samples = ShapeSchedule();
  ASSERT_GE(samples.size(), 200u);
  std::size_t bound_checked = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto [m, n, k, regime] = samples[s];
    Rng rng(0xC0FFEEu + s);
    const auto a = RandomMatrix(rng, m, k, regime);
    const auto b = RandomMatrix(rng, k, n, regime);
    std::vector<float> c_fast(static_cast<std::size_t>(m * n), -7.0f);
    std::vector<float> c_naive(static_cast<std::size_t>(m * n), 7.0f);
    GemmInt8(m, n, k, a, b, c_fast);
    NaiveGemmInt8(m, n, k, a, b, c_naive);
    // Contract 1: bitwise agreement with the exact-int32 oracle. (Empty
    // outputs skip the memcmp: data() of an empty vector may be null.)
    if (m == 0 || n == 0) continue;
    ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                             c_fast.size() * sizeof(float)))
        << "sample " << s << " (m=" << m << " n=" << n << " k=" << k << ")";

    // Contract 2: the scale-derived bound against the float ground truth.
    const auto c_f = DoubleGemm(m, n, k, a, b);
    const double s_b = ActivationScale(b);
    std::vector<double> row_abs(static_cast<std::size_t>(m), 0.0);
    std::vector<double> col_abs(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        row_abs[static_cast<std::size_t>(i)] +=
            std::fabs(a[static_cast<std::size_t>(i * k + kk)]);
      }
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t j = 0; j < n; ++j) {
        col_abs[static_cast<std::size_t>(j)] +=
            std::fabs(b[static_cast<std::size_t>(kk * n + j)]);
      }
    }
    for (std::int64_t i = 0; i < m; ++i) {
      const double s_a = RowScale(
          std::span<const float>(a).subspan(static_cast<std::size_t>(i * k),
                                            static_cast<std::size_t>(k)));
      for (std::int64_t j = 0; j < n; ++j) {
        const std::size_t idx = static_cast<std::size_t>(i * n + j);
        const double bound = s_a / 2.0 * col_abs[static_cast<std::size_t>(j)] +
                             s_b / 2.0 * row_abs[static_cast<std::size_t>(i)] +
                             static_cast<double>(k) * s_a * s_b / 4.0;
        // 1e-3 relative fudge: 1/scale and the dequant multiply each round
        // once in float; 1e-6 absolute + 1e-6 * |c_f| floors the k = 0 /
        // all-zero cases and large-magnitude ULP effects.
        const double tol =
            bound * 1.001 + 1e-6 + 1e-6 * std::fabs(c_f[idx]);
        ASSERT_LE(std::fabs(static_cast<double>(c_fast[idx]) - c_f[idx]), tol)
            << "sample " << s << " (m=" << m << " n=" << n << " k=" << k
            << " regime=" << static_cast<int>(regime) << ") at (" << i << ","
            << j << "): c_q=" << c_fast[idx] << " c_f=" << c_f[idx]
            << " s_a=" << s_a << " s_b=" << s_b;
        ++bound_checked;
      }
    }
  }
  EXPECT_GT(bound_checked, 0u);
}

TEST(QuantDifferential, FusedEpiloguesMatchNaiveBitwise) {
  // Bias / ReLU / bias+ReLU: all through the one shared DequantRow, so the
  // packed and naive paths must stay bitwise equal with any epilogue. The
  // semantic checks (bias adds, ReLU clamps) ride along.
  constexpr std::int64_t m = 13, n = 65, k = 129;
  Rng rng(0xE417u);
  const auto a = RandomMatrix(rng, m, k, Regime::kRowScaled);
  const auto b = RandomMatrix(rng, k, n, Regime::kUnit);
  std::vector<float> bias(static_cast<std::size_t>(m));
  for (auto& x : bias) x = rng.NextFloat(-2.0f, 2.0f);

  for (const bool with_bias : {false, true}) {
    for (const bool relu : {false, true}) {
      Int8Epilogue epi;
      if (with_bias) epi.bias = bias;
      epi.relu = relu;
      std::vector<float> c_fast(static_cast<std::size_t>(m * n));
      std::vector<float> c_naive(static_cast<std::size_t>(m * n));
      GemmInt8(m, n, k, a, b, c_fast);  // plain, reused as the baseline
      std::vector<float> c_base = c_fast;
      GemmInt8(m, n, k, a, b, c_fast, epi);
      NaiveGemmInt8(m, n, k, a, b, c_naive, epi);
      ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                               c_fast.size() * sizeof(float)))
          << "bias=" << with_bias << " relu=" << relu;
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const std::size_t idx = static_cast<std::size_t>(i * n + j);
          float expected = c_base[idx];
          if (with_bias) expected += bias[static_cast<std::size_t>(i)];
          if (relu) expected = std::max(0.0f, expected);
          // NEAR, not EQ: the fused epilogue contracts acc*deq + bias into
          // one FMA (single rounding); this recomputation rounds twice.
          ASSERT_NEAR(expected, c_fast[idx],
                      1e-6f * std::max(1.0f, std::fabs(expected)))
              << "bias=" << with_bias << " relu=" << relu << " at (" << i
              << "," << j << ")";
          if (relu) ASSERT_GE(c_fast[idx], 0.0f);
        }
      }
    }
  }
}

TEST(QuantDifferential, CachedPackReusedAcrossMultiplies) {
  // One QuantizePackA serving several B operands (the conv/fc cached-weight
  // pattern) must match the pack-on-the-fly entry point bitwise.
  constexpr std::int64_t m = 23, n = 57, k = 301;
  Rng rng(404);
  const auto a = RandomMatrix(rng, m, k, Regime::kOutlier);
  const QuantizedPackedA packed = QuantizePackA(m, k, a);
  EXPECT_EQ(packed.M(), m);
  EXPECT_EQ(packed.K(), k);
  EXPECT_FALSE(packed.Empty());
  EXPECT_GT(packed.PackedBytes(), m * k);  // 1 byte/value + 4 bytes/row scale
  ASSERT_EQ(packed.RowScales().size(), static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(packed.RowScales()[static_cast<std::size_t>(i)],
              RowScale(std::span<const float>(a).subspan(
                  static_cast<std::size_t>(i * k),
                  static_cast<std::size_t>(k))))
        << "row " << i;
  }
  for (int trial = 0; trial < 3; ++trial) {
    const auto b = RandomMatrix(rng, k, n, Regime::kUnit);
    std::vector<float> c_cached(static_cast<std::size_t>(m * n));
    std::vector<float> c_fresh(static_cast<std::size_t>(m * n));
    GemmInt8(packed, n, b, c_cached);
    GemmInt8(m, n, k, a, b, c_fresh);
    EXPECT_EQ(0, std::memcmp(c_cached.data(), c_fresh.data(),
                             c_cached.size() * sizeof(float)))
        << "trial " << trial;
  }
}

TEST(QuantDifferential, PoolSizeIndependentAndBitwiseDeterministic) {
  // Exact int32 accumulation makes the result independent of how the
  // ParallelForChunks sweeps are carved up: serial == pooled, bitwise.
  constexpr std::int64_t m = 67, n = 129, k = 300;
  Rng rng(55);
  const auto a = RandomMatrix(rng, m, k, Regime::kUnit);
  const auto b = RandomMatrix(rng, k, n, Regime::kUnit);
  std::vector<float> pooled(static_cast<std::size_t>(m * n));
  std::vector<float> repeat(static_cast<std::size_t>(m * n));
  std::vector<float> serial(static_cast<std::size_t>(m * n));
  GemmInt8(m, n, k, a, b, pooled);
  GemmInt8(m, n, k, a, b, repeat);
  {
    ScopedSerial serial_scope;
    GemmInt8(m, n, k, a, b, serial);
  }
  EXPECT_EQ(0, std::memcmp(pooled.data(), repeat.data(),
                           pooled.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

// --- Edge-case regression pins (ISSUE 7 satellite 2) ----------------------

TEST(QuantEdgeCases, AllZeroChannelKeepsScaleZeroAndBiasFlowsThrough) {
  // A row of exact zeros must quantize with scale 0 (not a NaN or Inf from
  // a 0/0), contribute nothing, and still receive its bias in the epilogue.
  constexpr std::int64_t m = 4, n = 33, k = 50;
  Rng rng(11);
  auto a = RandomMatrix(rng, m, k, Regime::kUnit);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    a[static_cast<std::size_t>(1 * k + kk)] = 0.0f;  // row 1: all zeros
  }
  const auto b = RandomMatrix(rng, k, n, Regime::kUnit);
  const QuantizedPackedA packed = QuantizePackA(m, k, a);
  EXPECT_EQ(packed.RowScales()[1], 0.0f);
  EXPECT_GT(packed.RowScales()[0], 0.0f);
  std::vector<float> bias = {0.5f, -1.25f, 2.0f, 0.0f};
  std::vector<float> c_fast(static_cast<std::size_t>(m * n), -9.0f);
  std::vector<float> c_naive(static_cast<std::size_t>(m * n), 9.0f);
  GemmInt8(packed, n, b, c_fast, {.bias = bias});
  NaiveGemmInt8(m, n, k, a, b, c_naive, {.bias = bias});
  ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                           c_fast.size() * sizeof(float)));
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(c_fast[static_cast<std::size_t>(n + j)], -1.25f)
        << "zero row must pass its bias through untouched, col " << j;
  }
}

TEST(QuantEdgeCases, AllZeroActivationsProduceBiasOnly) {
  constexpr std::int64_t m = 3, n = 17, k = 20;
  Rng rng(12);
  const auto a = RandomMatrix(rng, m, k, Regime::kUnit);
  const std::vector<float> b(static_cast<std::size_t>(k * n), 0.0f);
  EXPECT_EQ(ActivationScale(b), 0.0f);
  std::vector<float> bias = {1.0f, -2.0f, 3.0f};
  std::vector<float> c(static_cast<std::size_t>(m * n));
  GemmInt8(m, n, k, a, b, c, {.bias = bias, .relu = true});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)],
                std::max(0.0f, bias[static_cast<std::size_t>(i)]));
    }
  }
}

TEST(QuantEdgeCases, QuantizeToInt8SaturatesAndPinsSpecialValues) {
  // Saturating clamp at +/-127 (never -128: the grid is symmetric).
  EXPECT_EQ(QuantizeToInt8(1000.0f, 1.0f), 127);
  EXPECT_EQ(QuantizeToInt8(-1000.0f, 1.0f), -127);
  EXPECT_EQ(QuantizeToInt8(127.49f, 1.0f), 127);
  EXPECT_EQ(QuantizeToInt8(-127.49f, 1.0f), -127);
  // Non-finite pinning: NaN -> 0, +/-Inf -> +/-127.
  EXPECT_EQ(QuantizeToInt8(std::numeric_limits<float>::quiet_NaN(), 1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(std::numeric_limits<float>::infinity(), 1.0f), 127);
  EXPECT_EQ(QuantizeToInt8(-std::numeric_limits<float>::infinity(), 1.0f),
            -127);
  // Zero / invalid scale maps everything to 0 (the scale-0 guard).
  EXPECT_EQ(QuantizeToInt8(5.0f, 0.0f), 0);
  EXPECT_EQ(QuantizeToInt8(5.0f, -1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(5.0f, std::numeric_limits<float>::quiet_NaN()), 0);
  // Denormals and signed zero collapse to code 0.
  EXPECT_EQ(QuantizeToInt8(std::numeric_limits<float>::denorm_min(), 1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(0.0f, 1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(-0.0f, 1.0f), 0);
  // Round-to-nearest-EVEN at the .5 boundaries — lrintf under the default
  // rounding mode, matched exactly by the vector quantizer's vcvtps2dq.
  EXPECT_EQ(QuantizeToInt8(0.5f, 1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(1.5f, 1.0f), 2);
  EXPECT_EQ(QuantizeToInt8(2.5f, 1.0f), 2);
  EXPECT_EQ(QuantizeToInt8(-0.5f, 1.0f), 0);
  EXPECT_EQ(QuantizeToInt8(-1.5f, 1.0f), -2);
}

TEST(QuantEdgeCases, NonFiniteActivationsAreContained) {
  // NaN activations quantize to 0 and Inf saturates to +/-127; neither may
  // poison the scale (FiniteMaxAbs ignores them) or the output tile.
  constexpr std::int64_t m = 5, n = 34, k = 40;
  Rng rng(13);
  const auto a = RandomMatrix(rng, m, k, Regime::kUnit);
  auto b = RandomMatrix(rng, k, n, Regime::kUnit);
  b[3] = std::numeric_limits<float>::quiet_NaN();
  b[40] = std::numeric_limits<float>::infinity();
  b[77] = -std::numeric_limits<float>::infinity();
  b[100] = std::numeric_limits<float>::denorm_min();
  b[141] = -0.0f;
  // Scale comes from the finite entries only.
  std::vector<float> finite_only;
  for (const float x : b) {
    if (std::isfinite(x)) finite_only.push_back(x);
  }
  EXPECT_EQ(ActivationScale(b), ActivationScale(finite_only));
  std::vector<float> c_fast(static_cast<std::size_t>(m * n));
  std::vector<float> c_naive(static_cast<std::size_t>(m * n));
  GemmInt8(m, n, k, a, b, c_fast);
  NaiveGemmInt8(m, n, k, a, b, c_naive);
  ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                           c_fast.size() * sizeof(float)));
  for (const float v : c_fast) {
    EXPECT_TRUE(std::isfinite(v)) << "a poisoned activation leaked through";
  }
}

TEST(QuantEdgeCases, NoOverflowAtTableOneMaxDepth) {
  // fc6 is Table 1's deepest GEMM (K = 9216). Worst-case inputs put every
  // quantized value at the +/-127 rail; the int32 accumulators must carry
  // it exactly (bitwise naive agreement proves no intermediate wrapped).
  constexpr std::int64_t m = 3, n = 8, k = 9216;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  Rng rng(14);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble() < 0.5 ? 1.0f : -1.0f;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = rng.NextDouble() < 0.5 ? 1.0f : -1.0f;
  }
  std::vector<float> c_fast(static_cast<std::size_t>(m * n));
  std::vector<float> c_naive(static_cast<std::size_t>(m * n));
  GemmInt8(m, n, k, a, b, c_fast);
  NaiveGemmInt8(m, n, k, a, b, c_naive);
  EXPECT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                           c_fast.size() * sizeof(float)));
}

TEST(QuantEdgeCases, NoOverflowAtInt8MaxDepthRails) {
  // The documented bound itself: at k = kInt8MaxDepth with every value on
  // the +127 rail, the biased VNNI path's worst intermediate k * 127 * 255
  // lands within one k-step of INT32_MAX. All-ones inputs make the exact
  // answer k (q_a*q_b = 127^2 cancels the two 1/127 scales), so a wrapped
  // accumulator anywhere would be glaring.
  constexpr std::int64_t k = kInt8MaxDepth;
  static_assert(k * 127LL * 255LL <= 2147483647LL);
  static_assert((k + 1) * 127LL * 255LL > 2147483647LL);
  for (const float a_val : {1.0f, -1.0f}) {
    const std::vector<float> a(static_cast<std::size_t>(k), a_val);
    const std::vector<float> b(static_cast<std::size_t>(k), 1.0f);
    std::vector<float> c_fast(1), c_naive(1);
    GemmInt8(1, 1, k, a, b, c_fast);
    NaiveGemmInt8(1, 1, k, a, b, c_naive);
    EXPECT_EQ(c_fast[0], c_naive[0]);
    EXPECT_NEAR(c_fast[0], a_val * static_cast<float>(k),
                1e-4f * static_cast<float>(k));
  }
}

TEST(QuantEdgeCases, DepthBeyondBoundIsRejected) {
  const std::int64_t k = kInt8MaxDepth + 1;
  const std::vector<float> a(static_cast<std::size_t>(k), 1.0f);
  const std::vector<float> b(static_cast<std::size_t>(k), 1.0f);
  std::vector<float> c(1);
  EXPECT_THROW(QuantizePackA(1, k, a), CheckError);
  EXPECT_THROW(NaiveGemmInt8(1, 1, k, a, b, c), CheckError);
}

TEST(QuantEdgeCases, SizeMismatchesAreRejected) {
  std::vector<float> a(5);
  EXPECT_THROW(QuantizePackA(2, 3, a), CheckError);
  const QuantizedPackedA packed = QuantizePackA(1, 5, a);
  std::vector<float> b(5), c(2), bias(3);
  EXPECT_THROW(GemmInt8(packed, 2, b, c), CheckError);  // B is 5, needs 10
  std::vector<float> b2(10);
  EXPECT_THROW(GemmInt8(packed, 2, b2, c, {.bias = bias}), CheckError);
}

// --- batched fc fast path (ISSUE 8 satellite 2) -----------------------------
//
// FcLayer's batch > 1 int8 path runs ONE GemmInt8 against the transposed
// batch (y^T = W x^T with the bias fused into the dequant epilogue). These
// gates pin that orientation: skinny-N panels (N = batch is small for fc),
// bitwise agreement of the whole layer against a transpose + naive oracle,
// and batch-permutation equivariance of the per-tensor activation scale.

TEST(QuantBatchedFc, SkinnyNBitwiseAcrossBatchWidths) {
  // fc batches occupy the narrow-B corner (N << nr): every width from a
  // single column through one microkernel panel must stay bitwise equal to
  // the naive oracle when served from one cached weight pack.
  constexpr std::int64_t m = 50, k = 120;
  Rng rng(0xFCBA7u);
  const auto a = RandomMatrix(rng, m, k, Regime::kRowScaled);
  const QuantizedPackedA packed = QuantizePackA(m, k, a);
  std::vector<float> bias(static_cast<std::size_t>(m));
  for (auto& x : bias) x = rng.NextFloat(-1.0f, 1.0f);
  for (const std::int64_t n : {1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31, 33}) {
    const auto b = RandomMatrix(rng, k, n, Regime::kUnit);
    std::vector<float> c_fast(static_cast<std::size_t>(m * n), -3.0f);
    std::vector<float> c_naive(static_cast<std::size_t>(m * n), 3.0f);
    GemmInt8(packed, n, b, c_fast, {.bias = bias});
    NaiveGemmInt8(m, n, k, a, b, c_naive, {.bias = bias});
    ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                             c_fast.size() * sizeof(float)))
        << "batch width n=" << n;
  }
}

TEST(QuantBatchedFc, FcForwardMatchesTransposedNaiveOracle) {
  // The full layer, batch > 1: Forward must equal transpose -> one naive
  // int8 GEMM with fused bias -> transpose back, bitwise. Any drift means
  // the layer stopped feeding the batch through the single blocked multiply
  // (or re-quantized per sample).
  constexpr std::int64_t in = 72, out = 35, batch = 9;
  nn::FcLayer fc("fc_gate", in, out);
  Rng rng(0xFCB17u);
  for (auto& w : fc.MutableWeights().Data()) w = rng.NextFloat(-0.5f, 0.5f);
  for (auto& b : fc.MutableBias().Data()) b = rng.NextFloat(-2.0f, 2.0f);
  fc.SetInt8Execution(true);
  ASSERT_EQ(fc.Format(), KernelFormat::kInt8);

  Tensor input(Shape{batch, in, 1, 1});
  for (auto& x : input.Data()) x = rng.NextFloat(-1.0f, 1.0f);
  const Tensor got = fc.Forward({&input});

  std::vector<float> xt(static_cast<std::size_t>(in * batch));
  for (std::int64_t img = 0; img < batch; ++img) {
    for (std::int64_t f = 0; f < in; ++f) {
      xt[static_cast<std::size_t>(f * batch + img)] =
          input.Data()[static_cast<std::size_t>(img * in + f)];
    }
  }
  std::vector<float> yt(static_cast<std::size_t>(out * batch));
  NaiveGemmInt8(out, batch, in, fc.Weights().Data(), xt, yt,
                {.bias = fc.Bias().Data()});
  for (std::int64_t img = 0; img < batch; ++img) {
    for (std::int64_t o = 0; o < out; ++o) {
      const float expected = yt[static_cast<std::size_t>(o * batch + img)];
      const float actual =
          got.Data()[static_cast<std::size_t>(img * out + o)];
      ASSERT_EQ(0, std::memcmp(&expected, &actual, sizeof(float)))
          << "img=" << img << " o=" << o << " expected=" << expected
          << " actual=" << actual;
    }
  }
}

TEST(QuantBatchedFc, BatchPermutationEquivariance) {
  // The activation scale is per-tensor — a permutation-invariant max — and
  // quantization is element-wise, so permuting the batch rows must permute
  // the output rows bitwise. A per-sample re-quantization would break this.
  constexpr std::int64_t in = 48, out = 21, batch = 7;
  nn::FcLayer fc("fc_perm", in, out);
  Rng rng(0xFCB27u);
  for (auto& w : fc.MutableWeights().Data()) w = rng.NextFloat(-0.5f, 0.5f);
  for (auto& b : fc.MutableBias().Data()) b = rng.NextFloat(-1.0f, 1.0f);
  fc.SetInt8Execution(true);
  ASSERT_EQ(fc.Format(), KernelFormat::kInt8);

  Tensor input(Shape{batch, in, 1, 1});
  for (auto& x : input.Data()) x = rng.NextFloat(-1.0f, 1.0f);
  const std::vector<std::int64_t> perm{4, 0, 6, 2, 5, 1, 3};
  Tensor permuted(Shape{batch, in, 1, 1});
  for (std::int64_t img = 0; img < batch; ++img) {
    for (std::int64_t f = 0; f < in; ++f) {
      permuted.Data()[static_cast<std::size_t>(img * in + f)] =
          input.Data()[static_cast<std::size_t>(
              perm[static_cast<std::size_t>(img)] * in + f)];
    }
  }
  const Tensor y = fc.Forward({&input});
  const Tensor y_perm = fc.Forward({&permuted});
  for (std::int64_t img = 0; img < batch; ++img) {
    ASSERT_EQ(0,
              std::memcmp(
                  y_perm.Data().data() + img * out,
                  y.Data().data() + perm[static_cast<std::size_t>(img)] * out,
                  static_cast<std::size_t>(out) * sizeof(float)))
        << "img=" << img;
  }
}

}  // namespace
}  // namespace ccperf
