// Weight-integrity scrubbing (Network::CaptureWeightCrcs / VerifyIntegrity):
// the model-side silent-data-corruption detector. A captured CRC baseline
// must verify clean, any single weight or bias mutation must be reported
// naming the layer, and Clone() must carry the baseline so a scrubbed
// replica keeps scrubbing.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "nn/activation_layers.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/network.h"

namespace ccperf::nn {
namespace {

Network SmallNet() {
  Network net("scrubbed", Shape{2, 4, 4});
  net.Add(std::make_unique<ConvLayer>(
      "conv", ConvParams{.out_channels = 3, .kernel = 3, .pad = 1}, 2));
  net.Add(std::make_unique<ReluLayer>("relu"));
  net.Add(std::make_unique<FcLayer>("fc", 3 * 4 * 4, 5));
  Rng rng(7);
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).HasWeights()) {
      net.LayerAt(i).MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
      net.LayerAt(i).NotifyWeightsChanged();
    }
  }
  return net;
}

TEST(NetworkIntegrity, CleanNetworkVerifies) {
  Network net = SmallNet();
  EXPECT_EQ(net.CaptureWeightCrcs(), 2u);  // conv + fc are weighted
  ASSERT_EQ(net.WeightCrcs().size(), 2u);
  EXPECT_EQ(net.WeightCrcs()[0].name, "conv");
  EXPECT_EQ(net.WeightCrcs()[1].name, "fc");

  const IntegrityReport report = net.VerifyIntegrity();
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.layers_checked, 2u);
  EXPECT_TRUE(report.corrupted_layers.empty());
}

TEST(NetworkIntegrity, WeightCorruptionNamesTheLayer) {
  Network net = SmallNet();
  net.CaptureWeightCrcs();

  Layer* fc = net.FindLayer("fc");
  ASSERT_NE(fc, nullptr);
  fc->MutableWeights().Data()[3] += 0.25f;  // one silent bit of damage

  const IntegrityReport report = net.VerifyIntegrity();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.layers_checked, 2u);
  ASSERT_EQ(report.corrupted_layers.size(), 1u);
  EXPECT_EQ(report.corrupted_layers[0], "fc");
}

TEST(NetworkIntegrity, BiasCorruptionIsAlsoDetected) {
  Network net = SmallNet();
  net.CaptureWeightCrcs();

  Layer* conv = net.FindLayer("conv");
  ASSERT_NE(conv, nullptr);
  conv->MutableBias().Data()[0] = 42.0f;

  const IntegrityReport report = net.VerifyIntegrity();
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.corrupted_layers.size(), 1u);
  EXPECT_EQ(report.corrupted_layers[0], "conv");
}

TEST(NetworkIntegrity, RecaptureBlessesLegitimateMutation) {
  Network net = SmallNet();
  net.CaptureWeightCrcs();
  net.FindLayer("conv")->MutableWeights().Data()[0] *= -1.0f;
  EXPECT_FALSE(net.VerifyIntegrity().ok);

  net.CaptureWeightCrcs();  // e.g. after a pruning pass
  EXPECT_TRUE(net.VerifyIntegrity().ok);
}

TEST(NetworkIntegrity, CloneCarriesTheBaseline) {
  Network net = SmallNet();
  net.CaptureWeightCrcs();

  Network replica = net.Clone();
  EXPECT_TRUE(replica.VerifyIntegrity().ok);

  // Corruption in the replica is local to it.
  replica.FindLayer("fc")->MutableWeights().Data()[0] += 1.0f;
  EXPECT_FALSE(replica.VerifyIntegrity().ok);
  EXPECT_TRUE(net.VerifyIntegrity().ok);
}

TEST(NetworkIntegrity, VerifyWithoutCaptureThrows) {
  Network net = SmallNet();
  EXPECT_THROW((void)net.VerifyIntegrity(), CheckError);
}

}  // namespace
}  // namespace ccperf::nn
