// Exercises the annotated locking primitives (Mutex/MutexLock/CondVar,
// FirstErrorCollector) that Clang Thread Safety Analysis checks statically
// (see src/common/annotations.h and DESIGN.md §10). These tests prove the
// wrappers behave like the std primitives they wrap; the *annotations* are
// proven by the negative-compile check in tests/static_analysis (a
// CCPERF_GUARDED_BY misuse must fail to compile under
// -Werror=thread-safety).
#include "common/threading.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.h"

namespace ccperf {
namespace {

TEST(Mutex, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
  SUCCEED();
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A *different* thread must fail to acquire (try_lock on the owning
  // thread would be UB for std::mutex).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(Mutex, GuardedCounterSurvivesParallelFor) {
  Mutex mu;
  // In real code this member-style guarded access is what the analysis
  // proves; here we just hammer the lock from the pool.
  int counter = 0;
  ParallelFor(
      0, 1000,
      [&](std::size_t) {
        MutexLock lock(mu);
        ++counter;
      },
      1);
  EXPECT_EQ(counter, 1000);
}

TEST(MutexLock, ReleasesOnScopeExit) {
  Mutex mu;
  { MutexLock lock(mu); }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVar, PredicatedWaitSeesNotification) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitForSecondsTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool got = cv.WaitForSeconds(mu, 0.01, [] { return false; });
  EXPECT_FALSE(got);
}

TEST(CondVar, WaitForSecondsReturnsEarlyOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  bool got = false;
  {
    MutexLock lock(mu);
    got = cv.WaitForSeconds(mu, 10.0, [&] { return ready; });
  }
  EXPECT_TRUE(got);
  producer.join();
}

TEST(CondVar, ZeroTimeoutEvaluatesPredicateOnce) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_TRUE(cv.WaitForSeconds(mu, 0.0, [] { return true; }));
  EXPECT_FALSE(cv.WaitForSeconds(mu, 0.0, [] { return false; }));
}

TEST(ScopedSerial, GuardedStateStillCorrectInline) {
  // Under ScopedSerial the ParallelFor body runs inline on this thread;
  // the lock degenerates to uncontended acquire/release and the result
  // must be identical to the pooled run.
  ScopedSerial serial;
  Mutex mu;
  int counter = 0;
  ParallelFor(
      0, 257,
      [&](std::size_t) {
        MutexLock lock(mu);
        ++counter;
      },
      1);
  EXPECT_EQ(counter, 257);
}

TEST(FirstErrorCollector, EmptyCollectorIsSilent) {
  FirstErrorCollector errors;
  EXPECT_FALSE(errors.HasError());
  errors.RethrowIfError();  // must not throw
}

TEST(FirstErrorCollector, KeepsLowestIndexAcrossThreads) {
  FirstErrorCollector errors;
  ParallelFor(
      0, 64,
      [&](std::size_t i) {
        if (i % 2 == 1) errors.Record(i, "error at " + std::to_string(i));
      },
      1);
  ASSERT_TRUE(errors.HasError());
  try {
    errors.RethrowIfError();
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_STREQ(error.what(), "error at 1");
  }
}

TEST(FirstErrorCollector, LaterHigherIndexDoesNotOverwrite) {
  FirstErrorCollector errors;
  errors.Record(3, "three");
  errors.Record(7, "seven");
  errors.Record(2, "two");
  try {
    errors.RethrowIfError();
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_STREQ(error.what(), "two");
  }
}

}  // namespace
}  // namespace ccperf
