#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace ccperf {
namespace {

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  const SampleStats s = Summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 0.81649658, 1e-6);
}

TEST(Stats, SummarizeSingleValue) {
  const std::vector<double> v{5.0};
  const SampleStats s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SummarizeEmptyThrows) {
  EXPECT_THROW(Summarize({}), CheckError);
}

TEST(Stats, MinOf) {
  const std::vector<double> v{4.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(MinOf(v), -1.0);
  EXPECT_THROW(MinOf({}), CheckError);
}

TEST(Stats, MeanOf) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(MeanOf(v), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileMedianOddCount) {
  std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
}

TEST(Stats, QuantileRejectsBadArgs) {
  std::vector<double> v{1.0};
  EXPECT_THROW(Quantile(v, -0.1), CheckError);
  EXPECT_THROW(Quantile(v, 1.1), CheckError);
  EXPECT_THROW(Quantile({}, 0.5), CheckError);
}

}  // namespace
}  // namespace ccperf
