#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "core/pareto.h"

namespace ccperf::core {
namespace {

TEST(Dominates3, Definition) {
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 2, 2, 0.8));
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 1, 1, 0.8));
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 1, 2, 0.9));
  EXPECT_FALSE(Dominates3(1, 1, 0.9, 1, 1, 0.9));  // identical
  EXPECT_FALSE(Dominates3(1, 2, 0.9, 2, 1, 0.9));  // trade-off in cost
  EXPECT_FALSE(Dominates3(1, 1, 0.7, 2, 2, 0.9));  // trade-off in accuracy
}

TEST(Pareto3, HandCase) {
  // (time, cost, acc):
  //   A(1, 1, .5)  B(2, 2, .9)  C(3, 3, .9)  D(2, 1, .5)  E(1, 1, .5)
  // C dominated by B; E duplicate of A; D dominated by A (same acc, worse
  // time). Frontier: A, B.
  const std::vector<double> t{1, 2, 3, 2, 1};
  const std::vector<double> c{1, 2, 3, 1, 1};
  const std::vector<double> a{0.5, 0.9, 0.9, 0.5, 0.5};
  const auto frontier = ParetoFrontier3(t, c, a);
  const std::set<std::size_t> got(frontier.begin(), frontier.end());
  EXPECT_EQ(got, (std::set<std::size_t>{0, 1}));
}

TEST(Pareto3, TimeVsCostTradeoffBothSurvive) {
  // Same accuracy, one fast-and-expensive, one slow-and-cheap.
  const std::vector<double> t{1, 10};
  const std::vector<double> c{10, 1};
  const std::vector<double> a{0.8, 0.8};
  EXPECT_EQ(ParetoFrontier3(t, c, a).size(), 2u);
}

TEST(Pareto3, SupersetOfTwoDimensionalFrontiers) {
  // Every point on the 2-D (time, acc) frontier is also 3-D non-dominated.
  Rng rng(9);
  const std::size_t n = 120;
  std::vector<double> t(n), c(n), a(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = rng.NextDouble() * 10.0;
    c[i] = rng.NextDouble() * 100.0;
    a[i] = static_cast<double>(rng.NextIndex(10)) / 10.0;
  }
  const auto f3 = ParetoFrontier3(t, c, a);
  const std::set<std::size_t> on3(f3.begin(), f3.end());
  for (std::size_t idx : ParetoFrontier(t, a)) {
    EXPECT_TRUE(on3.contains(idx)) << idx;
  }
  for (std::size_t idx : ParetoFrontier(c, a)) {
    EXPECT_TRUE(on3.contains(idx)) << idx;
  }
}

class Pareto3Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pareto3Property, MinimalAndComplete) {
  Rng rng(GetParam());
  const std::size_t n = 40 + rng.NextIndex(100);
  std::vector<double> t(n), c(n), a(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<double>(rng.NextIndex(20));
    c[i] = static_cast<double>(rng.NextIndex(20));
    a[i] = static_cast<double>(rng.NextIndex(10)) / 10.0;
  }
  const auto frontier = ParetoFrontier3(t, c, a);
  ASSERT_FALSE(frontier.empty());
  const std::set<std::size_t> on(frontier.begin(), frontier.end());
  for (std::size_t x : frontier) {
    for (std::size_t y : frontier) {
      if (x != y) {
        EXPECT_FALSE(Dominates3(t[x], c[x], a[x], t[y], c[y], a[y]));
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (on.contains(i)) continue;
    bool covered = false;
    for (std::size_t f : frontier) {
      if (Dominates3(t[f], c[f], a[f], t[i], c[i], a[i]) ||
          (t[f] == t[i] && c[f] == c[i] && a[f] == a[i])) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pareto3Property,
                         ::testing::Values(1, 7, 42, 99, 1234));

// --- pinned tie/duplicate semantics (keep-first-occurrence) -----------------

TEST(Dominates3, ExactDuplicateDoesNotDominate) {
  // Dominance needs a strict improvement somewhere; an identical triple has
  // none. Duplicate collapsing is the frontier's keep-first rule instead.
  EXPECT_FALSE(Dominates3(2, 3, 0.7, 2, 3, 0.7));
  EXPECT_FALSE(Dominates3(0, 0, 0, 0, 0, 0));
}

TEST(Dominates3, TwoAxisTieOneAxisStrictDominates) {
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 1, 1, 0.8));   // only accuracy strict
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 1, 2, 0.9));   // only cost strict
  EXPECT_TRUE(Dominates3(1, 1, 0.9, 2, 1, 0.9));   // only time strict
}

TEST(Pareto3, DuplicatesKeepFirstOccurrence) {
  // Three copies of the same efficient point interleaved with a dominated
  // one: only the FIRST copy (index 0) survives.
  const std::vector<double> t{1, 1, 5, 1};
  const std::vector<double> c{1, 1, 5, 1};
  const std::vector<double> a{0.9, 0.9, 0.5, 0.9};
  EXPECT_EQ(ParetoFrontier3(t, c, a), (std::vector<std::size_t>{0}));
}

TEST(Pareto3, DistinctTiesAllSurvive) {
  // Pairwise ties in two axes with opposing trade-offs in the third: no
  // dominance anywhere, every point stays.
  const std::vector<double> t{1, 1, 1};
  const std::vector<double> c{1, 2, 3};
  const std::vector<double> a{0.5, 0.6, 0.7};
  EXPECT_EQ(ParetoFrontier3(t, c, a).size(), 3u);
}

TEST(Pareto2, DuplicatesKeepLowestIndex) {
  // Exact duplicate (objective, accuracy) pairs: the representative is
  // pinned to the lowest input index regardless of input order.
  const std::vector<double> obj{3.0, 3.0, 3.0, 1.0};
  const std::vector<double> acc{0.9, 0.9, 0.9, 0.2};
  const auto frontier = ParetoFrontier(obj, acc);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0], 0u);  // first duplicate, not 1 or 2
  EXPECT_EQ(frontier[1], 3u);
}

// --- NaN rejection ----------------------------------------------------------

TEST(Dominates3, NaNObjectiveThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Dominates3(nan, 1, 0.5, 1, 1, 0.5), CheckError);
  EXPECT_THROW(Dominates3(1, 1, 0.5, 1, nan, 0.5), CheckError);
  EXPECT_THROW(Dominates3(1, 1, nan, 1, 1, 0.5), CheckError);
}

TEST(Dominates, NaNObjectiveThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Dominates(nan, 0.5, 1, 0.5), CheckError);
  EXPECT_THROW(Dominates(1, 0.5, 1, nan), CheckError);
}

TEST(Pareto3, NaNPointThrowsInsteadOfWinning) {
  // A NaN compares false against everything, so it can never be dominated —
  // without the guard it would silently join every frontier.
  const std::vector<double> ok{1, 2};
  const std::vector<double> acc{0.5, 0.9};
  const std::vector<double> bad{std::numeric_limits<double>::quiet_NaN(), 2};
  EXPECT_THROW(ParetoFrontier3(bad, ok, acc), CheckError);
  EXPECT_THROW(ParetoFrontier3(ok, bad, acc), CheckError);
  EXPECT_THROW(ParetoFrontier3(ok, ok, bad), CheckError);
}

TEST(Pareto2, NaNPointThrows) {
  const std::vector<double> ok{1, 2};
  const std::vector<double> acc{0.5, 0.6};
  const std::vector<double> bad{std::numeric_limits<double>::quiet_NaN(), 2};
  EXPECT_THROW(ParetoFrontier(bad, acc), CheckError);
  EXPECT_THROW(ParetoFrontier(ok, bad), CheckError);
}

TEST(Pareto3, InfinityIsAllowed) {
  // Infinities order normally and must NOT be rejected: an infeasible
  // (infinite-cost) point is simply dominated.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> t{1, 1};
  const std::vector<double> c{1, inf};
  const std::vector<double> a{0.9, 0.9};
  EXPECT_EQ(ParetoFrontier3(t, c, a), (std::vector<std::size_t>{0}));
}

TEST(Pareto3, RejectsMismatchedSizes) {
  const std::vector<double> two{1, 2};
  const std::vector<double> three{1, 2, 3};
  EXPECT_THROW(ParetoFrontier3(two, two, three), CheckError);
}

TEST(Pareto3, EmptyInput) {
  EXPECT_TRUE(ParetoFrontier3({}, {}, {}).empty());
}

}  // namespace
}  // namespace ccperf::core
