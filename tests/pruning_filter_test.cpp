#include "pruning/filter_pruner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"

namespace ccperf::pruning {
namespace {

nn::ConvLayer MakeConv(std::int64_t out_c, std::int64_t in_c,
                       std::uint64_t seed) {
  nn::ConvLayer conv("c", {.out_channels = out_c, .kernel = 3, .pad = 1},
                     in_c);
  Rng rng(seed);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  conv.MutableBias().FillGaussian(rng, 0.1f, 0.05f);
  conv.NotifyWeightsChanged();
  return conv;
}

/// Number of filters (weight rows) that are entirely zero.
std::int64_t ZeroFilters(const nn::Layer& layer) {
  const Tensor& w = layer.Weights();
  const std::int64_t filters = w.GetShape().Dim(0);
  const std::int64_t per_filter = w.NumElements() / filters;
  std::int64_t zero = 0;
  for (std::int64_t f = 0; f < filters; ++f) {
    bool all_zero = true;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      if (w.At(f * per_filter + i) != 0.0f) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) ++zero;
  }
  return zero;
}

TEST(L1FilterPruner, ZeroesWholeFilters) {
  nn::ConvLayer conv = MakeConv(16, 4, 1);
  L1FilterPruner pruner;
  pruner.Prune(conv, 0.25);
  EXPECT_EQ(ZeroFilters(conv), 4);
  EXPECT_NEAR(conv.Weights().ZeroFraction(), 0.25, 1e-9);
}

TEST(L1FilterPruner, LowestL1NormFirst) {
  nn::ConvLayer conv("c", {.out_channels = 3, .kernel = 1}, 1);
  auto w = conv.MutableWeights().Data();
  w[0] = 0.1f;   // filter 0: smallest norm
  w[1] = -2.0f;  // filter 1
  w[2] = 1.0f;   // filter 2
  conv.MutableBias().Set(0, 1.0f);
  conv.NotifyWeightsChanged();
  L1FilterPruner pruner;
  pruner.Prune(conv, 0.34);
  EXPECT_FLOAT_EQ(conv.Weights().At(0), 0.0f);
  EXPECT_FLOAT_EQ(conv.Weights().At(1), -2.0f);
  EXPECT_FLOAT_EQ(conv.Weights().At(2), 1.0f);
}

TEST(L1FilterPruner, ZeroesMatchingBias) {
  nn::ConvLayer conv("c", {.out_channels = 2, .kernel = 1}, 1);
  auto w = conv.MutableWeights().Data();
  w[0] = 0.1f;
  w[1] = 5.0f;
  conv.MutableBias().Set(0, 7.0f);
  conv.MutableBias().Set(1, 8.0f);
  conv.NotifyWeightsChanged();
  L1FilterPruner pruner;
  pruner.Prune(conv, 0.5);
  EXPECT_FLOAT_EQ(conv.MutableBias().At(0), 0.0f);
  EXPECT_FLOAT_EQ(conv.MutableBias().At(1), 8.0f);
}

TEST(L1FilterPruner, WorksOnFcLayers) {
  nn::FcLayer fc("fc", 10, 20);
  Rng rng(2);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.NotifyWeightsChanged();
  L1FilterPruner pruner;
  pruner.Prune(fc, 0.5);
  EXPECT_EQ(ZeroFilters(fc), 10);
}

TEST(L1FilterPruner, StableUnderRepetition) {
  nn::ConvLayer conv = MakeConv(8, 2, 3);
  L1FilterPruner pruner;
  pruner.Prune(conv, 0.5);
  const auto snapshot = std::vector<float>(conv.Weights().Data().begin(),
                                           conv.Weights().Data().end());
  pruner.Prune(conv, 0.5);  // zero-norm filters sort first; same set pruned
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(conv.Weights().Data()[i], snapshot[i]);
  }
}

TEST(L1FilterPruner, ZeroRatioNoop) {
  nn::ConvLayer conv = MakeConv(4, 2, 4);
  L1FilterPruner pruner;
  pruner.Prune(conv, 0.0);
  EXPECT_EQ(ZeroFilters(conv), 0);
}

TEST(L1FilterPruner, RejectsBadRatio) {
  nn::ConvLayer conv = MakeConv(4, 2, 5);
  L1FilterPruner pruner;
  EXPECT_THROW(pruner.Prune(conv, 1.0), CheckError);
}

class FilterRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterRatioSweep, FilterCountRounds) {
  const double ratio = GetParam();
  nn::ConvLayer conv = MakeConv(32, 4, 6);
  L1FilterPruner pruner;
  pruner.Prune(conv, ratio);
  EXPECT_EQ(ZeroFilters(conv),
            static_cast<std::int64_t>(std::llround(ratio * 32)));
}

INSTANTIATE_TEST_SUITE_P(Ratios, FilterRatioSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

}  // namespace
}  // namespace ccperf::pruning
