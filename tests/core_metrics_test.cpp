#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace ccperf::core {
namespace {

TEST(Tar, BasicValues) {
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(Seconds(10.0), 0.5), 20.0);
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(Seconds(0.0), 1.0), 0.0);
}

TEST(Tar, AnyTimeScale) {
  // TAR is scale-polymorphic: hours and minutes feed the same ratio in
  // their own unit (the paper quotes TAR in whatever unit the plot uses).
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(Hours(2.0), 0.5), 4.0);
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(Minutes(30.0), 0.6), 50.0);
}

TEST(Car, BasicValues) {
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(Usd(0.57), 1.0), 0.57);
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(Usd(1.0), 0.25), 4.0);
}

TEST(Metrics, LowerIsBetterOrdering) {
  // Same accuracy, less time -> lower TAR; same time, more accuracy ->
  // lower TAR. The paper uses this ordering as the greedy heuristic.
  EXPECT_LT(TimeAccuracyRatio(Seconds(5.0), 0.8),
            TimeAccuracyRatio(Seconds(10.0), 0.8));
  EXPECT_LT(TimeAccuracyRatio(Seconds(10.0), 0.9),
            TimeAccuracyRatio(Seconds(10.0), 0.8));
}

TEST(Metrics, ScaleInvarianceInNumerator) {
  // TAR/CAR are linear in their numerator: unit changes preserve order.
  const double a = TimeAccuracyRatio(Seconds(3.0), 0.6);
  const double b = TimeAccuracyRatio(Seconds(4.0), 0.7);
  EXPECT_EQ(a < b, TimeAccuracyRatio(Seconds(3000.0), 0.6) <
                       TimeAccuracyRatio(Seconds(4000.0), 0.7));
}

TEST(Metrics, RejectInvalidAccuracy) {
  EXPECT_THROW(TimeAccuracyRatio(Seconds(1.0), 0.0), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(Seconds(1.0), -0.1), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(Seconds(1.0), 1.1), CheckError);
  EXPECT_THROW(CostAccuracyRatio(Usd(1.0), 0.0), CheckError);
}

TEST(Metrics, RejectNegativeNumerator) {
  EXPECT_THROW(TimeAccuracyRatio(Seconds(-1.0), 0.5), CheckError);
  EXPECT_THROW(CostAccuracyRatio(Usd(-0.01), 0.5), CheckError);
}

TEST(ExpectedValue, ZeroRateIsIdentity) {
  EXPECT_DOUBLE_EQ(
      ExpectedSecondsUnderInterruption(Seconds(1234.5), RatePerHour(0.0))
          .value(),
      1234.5);
  EXPECT_DOUBLE_EQ(ExpectedCostUnderInterruption(Usd(2.5), Seconds(1234.5),
                                                 RatePerHour(0.0))
                       .value(),
                   2.5);
  EXPECT_DOUBLE_EQ(
      ExpectedSecondsUnderInterruption(Seconds(0.0), RatePerHour(5.0)).value(),
      0.0);
}

TEST(ExpectedValue, MatchesClosedForm) {
  // E[T] = (e^{lambda t} - 1) / lambda for restart-from-scratch under
  // Poisson interruptions. One interruption/hour over a 30-minute run:
  // lambda t = 0.5, so E[T] = (e^0.5 - 1) * 3600.
  const double lambda = 1.0 / 3600.0;
  const double t = 1800.0;
  EXPECT_NEAR(
      ExpectedSecondsUnderInterruption(Seconds(t), RatePerHour(1.0)).value(),
      (std::exp(lambda * t) - 1.0) / lambda, 1e-6);
  // Cost inflates by the same time ratio (the fleet is billed while
  // redoing lost work).
  const double expected_s =
      ExpectedSecondsUnderInterruption(Seconds(t), RatePerHour(1.0)).value();
  EXPECT_NEAR(
      ExpectedCostUnderInterruption(Usd(1.0), Seconds(t), RatePerHour(1.0))
          .value(),
      expected_s / t, 1e-9);
}

TEST(ExpectedValue, MonotoneInRateAndTime) {
  // More interruptions or a longer nominal run can only inflate E[T], and
  // superlinearly: doubling t more than doubles E[T] at a fixed rate.
  EXPECT_GT(ExpectedSecondsUnderInterruption(Seconds(600.0), RatePerHour(2.0)),
            ExpectedSecondsUnderInterruption(Seconds(600.0), RatePerHour(1.0)));
  EXPECT_GT(ExpectedSecondsUnderInterruption(Seconds(600.0), RatePerHour(1.0)),
            Seconds(600.0));
  EXPECT_GT(
      ExpectedSecondsUnderInterruption(Seconds(1200.0), RatePerHour(6.0)),
      2.0 * ExpectedSecondsUnderInterruption(Seconds(600.0), RatePerHour(6.0)));
}

TEST(ExpectedValue, RatiosInflateWithRisk) {
  // At rate 0 the expected ratios reduce to the plain TAR/CAR.
  EXPECT_DOUBLE_EQ(
      ExpectedTimeAccuracyRatio(Seconds(10.0), 0.5, RatePerHour(0.0)),
      TimeAccuracyRatio(Seconds(10.0), 0.5));
  EXPECT_DOUBLE_EQ(ExpectedCostAccuracyRatio(Usd(0.57), Seconds(3600.0), 1.0,
                                             RatePerHour(0.0)),
                   CostAccuracyRatio(Usd(0.57), 1.0));
  EXPECT_GT(ExpectedTimeAccuracyRatio(Seconds(3600.0), 0.5, RatePerHour(2.0)),
            TimeAccuracyRatio(Seconds(3600.0), 0.5));
  EXPECT_GT(ExpectedCostAccuracyRatio(Usd(1.0), Seconds(3600.0), 0.5,
                                      RatePerHour(2.0)),
            CostAccuracyRatio(Usd(1.0), 0.5));
}

TEST(ExpectedValue, RejectsBadArguments) {
  EXPECT_THROW(
      ExpectedSecondsUnderInterruption(Seconds(-1.0), RatePerHour(1.0)),
      CheckError);
  EXPECT_THROW(
      ExpectedSecondsUnderInterruption(Seconds(1.0), RatePerHour(-0.5)),
      CheckError);
  EXPECT_THROW(
      ExpectedCostUnderInterruption(Usd(-1.0), Seconds(1.0), RatePerHour(1.0)),
      CheckError);
  EXPECT_THROW(
      ExpectedCostUnderInterruption(Usd(1.0), Seconds(-1.0), RatePerHour(1.0)),
      CheckError);
  EXPECT_THROW(ExpectedTimeAccuracyRatio(Seconds(1.0), 1.5, RatePerHour(1.0)),
               CheckError);
  EXPECT_THROW(
      ExpectedCostAccuracyRatio(Usd(1.0), Seconds(1.0), 0.0, RatePerHour(1.0)),
      CheckError);
}

}  // namespace
}  // namespace ccperf::core
