#include "core/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace ccperf::core {
namespace {

TEST(Tar, BasicValues) {
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(10.0, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(0.0, 1.0), 0.0);
}

TEST(Car, BasicValues) {
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(0.57, 1.0), 0.57);
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(1.0, 0.25), 4.0);
}

TEST(Metrics, LowerIsBetterOrdering) {
  // Same accuracy, less time -> lower TAR; same time, more accuracy ->
  // lower TAR. The paper uses this ordering as the greedy heuristic.
  EXPECT_LT(TimeAccuracyRatio(5.0, 0.8), TimeAccuracyRatio(10.0, 0.8));
  EXPECT_LT(TimeAccuracyRatio(10.0, 0.9), TimeAccuracyRatio(10.0, 0.8));
}

TEST(Metrics, ScaleInvarianceInNumerator) {
  // TAR/CAR are linear in their numerator: unit changes preserve order.
  const double a = TimeAccuracyRatio(3.0, 0.6);
  const double b = TimeAccuracyRatio(4.0, 0.7);
  EXPECT_EQ(a < b, TimeAccuracyRatio(3000.0, 0.6) <
                       TimeAccuracyRatio(4000.0, 0.7));
}

TEST(Metrics, RejectInvalidAccuracy) {
  EXPECT_THROW(TimeAccuracyRatio(1.0, 0.0), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(1.0, -0.1), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(1.0, 1.1), CheckError);
  EXPECT_THROW(CostAccuracyRatio(1.0, 0.0), CheckError);
}

TEST(Metrics, RejectNegativeNumerator) {
  EXPECT_THROW(TimeAccuracyRatio(-1.0, 0.5), CheckError);
  EXPECT_THROW(CostAccuracyRatio(-0.01, 0.5), CheckError);
}

}  // namespace
}  // namespace ccperf::core
