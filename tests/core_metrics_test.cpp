#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace ccperf::core {
namespace {

TEST(Tar, BasicValues) {
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(10.0, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(TimeAccuracyRatio(0.0, 1.0), 0.0);
}

TEST(Car, BasicValues) {
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(0.57, 1.0), 0.57);
  EXPECT_DOUBLE_EQ(CostAccuracyRatio(1.0, 0.25), 4.0);
}

TEST(Metrics, LowerIsBetterOrdering) {
  // Same accuracy, less time -> lower TAR; same time, more accuracy ->
  // lower TAR. The paper uses this ordering as the greedy heuristic.
  EXPECT_LT(TimeAccuracyRatio(5.0, 0.8), TimeAccuracyRatio(10.0, 0.8));
  EXPECT_LT(TimeAccuracyRatio(10.0, 0.9), TimeAccuracyRatio(10.0, 0.8));
}

TEST(Metrics, ScaleInvarianceInNumerator) {
  // TAR/CAR are linear in their numerator: unit changes preserve order.
  const double a = TimeAccuracyRatio(3.0, 0.6);
  const double b = TimeAccuracyRatio(4.0, 0.7);
  EXPECT_EQ(a < b, TimeAccuracyRatio(3000.0, 0.6) <
                       TimeAccuracyRatio(4000.0, 0.7));
}

TEST(Metrics, RejectInvalidAccuracy) {
  EXPECT_THROW(TimeAccuracyRatio(1.0, 0.0), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(1.0, -0.1), CheckError);
  EXPECT_THROW(TimeAccuracyRatio(1.0, 1.1), CheckError);
  EXPECT_THROW(CostAccuracyRatio(1.0, 0.0), CheckError);
}

TEST(Metrics, RejectNegativeNumerator) {
  EXPECT_THROW(TimeAccuracyRatio(-1.0, 0.5), CheckError);
  EXPECT_THROW(CostAccuracyRatio(-0.01, 0.5), CheckError);
}

TEST(ExpectedValue, ZeroRateIsIdentity) {
  EXPECT_DOUBLE_EQ(ExpectedSecondsUnderInterruption(1234.5, 0.0), 1234.5);
  EXPECT_DOUBLE_EQ(ExpectedCostUnderInterruption(2.5, 1234.5, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(ExpectedSecondsUnderInterruption(0.0, 5.0), 0.0);
}

TEST(ExpectedValue, MatchesClosedForm) {
  // E[T] = (e^{lambda t} - 1) / lambda for restart-from-scratch under
  // Poisson interruptions. One interruption/hour over a 30-minute run:
  // lambda t = 0.5, so E[T] = (e^0.5 - 1) * 3600.
  const double lambda = 1.0 / 3600.0;
  const double t = 1800.0;
  EXPECT_NEAR(ExpectedSecondsUnderInterruption(t, 1.0),
              (std::exp(lambda * t) - 1.0) / lambda, 1e-6);
  // Cost inflates by the same time ratio (the fleet is billed while
  // redoing lost work).
  const double expected_s = ExpectedSecondsUnderInterruption(t, 1.0);
  EXPECT_NEAR(ExpectedCostUnderInterruption(1.0, t, 1.0), expected_s / t,
              1e-9);
}

TEST(ExpectedValue, MonotoneInRateAndTime) {
  // More interruptions or a longer nominal run can only inflate E[T], and
  // superlinearly: doubling t more than doubles E[T] at a fixed rate.
  EXPECT_GT(ExpectedSecondsUnderInterruption(600.0, 2.0),
            ExpectedSecondsUnderInterruption(600.0, 1.0));
  EXPECT_GT(ExpectedSecondsUnderInterruption(600.0, 1.0), 600.0);
  EXPECT_GT(ExpectedSecondsUnderInterruption(1200.0, 6.0),
            2.0 * ExpectedSecondsUnderInterruption(600.0, 6.0));
}

TEST(ExpectedValue, RatiosInflateWithRisk) {
  // At rate 0 the expected ratios reduce to the plain TAR/CAR.
  EXPECT_DOUBLE_EQ(ExpectedTimeAccuracyRatio(10.0, 0.5, 0.0),
                   TimeAccuracyRatio(10.0, 0.5));
  EXPECT_DOUBLE_EQ(ExpectedCostAccuracyRatio(0.57, 3600.0, 1.0, 0.0),
                   CostAccuracyRatio(0.57, 1.0));
  EXPECT_GT(ExpectedTimeAccuracyRatio(3600.0, 0.5, 2.0),
            TimeAccuracyRatio(3600.0, 0.5));
  EXPECT_GT(ExpectedCostAccuracyRatio(1.0, 3600.0, 0.5, 2.0),
            CostAccuracyRatio(1.0, 0.5));
}

TEST(ExpectedValue, RejectsBadArguments) {
  EXPECT_THROW(ExpectedSecondsUnderInterruption(-1.0, 1.0), CheckError);
  EXPECT_THROW(ExpectedSecondsUnderInterruption(1.0, -0.5), CheckError);
  EXPECT_THROW(ExpectedCostUnderInterruption(-1.0, 1.0, 1.0), CheckError);
  EXPECT_THROW(ExpectedCostUnderInterruption(1.0, -1.0, 1.0), CheckError);
  EXPECT_THROW(ExpectedTimeAccuracyRatio(1.0, 1.5, 1.0), CheckError);
  EXPECT_THROW(ExpectedCostAccuracyRatio(1.0, 1.0, 0.0, 1.0), CheckError);
}

}  // namespace
}  // namespace ccperf::core
