#include "nn/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"

namespace ccperf::nn {
namespace {

Network LinearNet() {
  Network net("linear", Shape{2, 4, 4});
  net.Add(std::make_unique<ConvLayer>(
      "conv", ConvParams{.out_channels = 3, .kernel = 3, .pad = 1}, 2));
  net.Add(std::make_unique<ReluLayer>("relu"));
  net.Add(std::make_unique<FcLayer>("fc", 3 * 4 * 4, 5));
  net.Add(std::make_unique<SoftmaxLayer>("prob"));
  return net;
}

TEST(Network, ImplicitChainWiring) {
  Network net = LinearNet();
  EXPECT_EQ(net.LayerCount(), 4u);
  EXPECT_EQ(net.NodeInputs(0), std::vector<std::int64_t>{-1});
  EXPECT_EQ(net.NodeInputs(1), std::vector<std::int64_t>{0});
  EXPECT_EQ(net.NodeInputs(3), std::vector<std::int64_t>{2});
}

TEST(Network, OutputShape) {
  Network net = LinearNet();
  EXPECT_EQ(net.OutputShape(3), (Shape{3, 5, 1, 1}));
}

TEST(Network, ForwardProducesDistribution) {
  Network net = LinearNet();
  Rng rng(1);
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).HasWeights()) {
      net.LayerAt(i).MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
      net.LayerAt(i).NotifyWeightsChanged();
    }
  }
  Tensor in(Shape{2, 2, 4, 4});
  in.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor out = net.Forward(in);
  ASSERT_EQ(out.GetShape(), (Shape{2, 5, 1, 1}));
  for (std::int64_t b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 5; ++c) sum += out.At(b * 5 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Network, TimingsCoverAllLayers) {
  Network net = LinearNet();
  Tensor in(Shape{1, 2, 4, 4});
  std::vector<LayerTiming> timings;
  (void)net.Forward(in, &timings);
  ASSERT_EQ(timings.size(), 4u);
  EXPECT_EQ(timings[0].name, "conv");
  EXPECT_EQ(timings[3].kind, LayerKind::kSoftmax);
  for (const auto& t : timings) EXPECT_GE(t.seconds, 0.0);
}

TEST(Network, BranchingDagWithConcat) {
  Network net("dag", Shape{2, 3, 3});
  net.Add(std::make_unique<ConvLayer>(
              "a", ConvParams{.out_channels = 2, .kernel = 1}, 2),
          {"input"});
  net.Add(std::make_unique<ConvLayer>(
              "b", ConvParams{.out_channels = 3, .kernel = 1}, 2),
          {"input"});
  net.Add(std::make_unique<ConcatLayer>("join"), {"a", "b"});
  EXPECT_EQ(net.OutputShape(1), (Shape{1, 5, 3, 3}));
  Tensor in(Shape{1, 2, 3, 3}, std::vector<float>(18, 1.0f));
  const Tensor out = net.Forward(in);
  EXPECT_EQ(out.GetShape(), (Shape{1, 5, 3, 3}));
}

TEST(Network, DiamondReuseOfOneActivation) {
  // Both branches read the same conv output — the refcounted release must
  // not free it between consumers.
  Network net("diamond", Shape{1, 2, 2});
  net.Add(std::make_unique<ConvLayer>(
      "stem", ConvParams{.out_channels = 2, .kernel = 1}, 1));
  net.Add(std::make_unique<ReluLayer>("left"), {"stem"});
  net.Add(std::make_unique<ReluLayer>("right"), {"stem"});
  net.Add(std::make_unique<ConcatLayer>("join"), {"left", "right"});
  Tensor in(Shape{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor out = net.Forward(in);
  EXPECT_EQ(out.GetShape(), (Shape{1, 4, 2, 2}));
}

TEST(Network, FindLayer) {
  Network net = LinearNet();
  EXPECT_NE(net.FindLayer("fc"), nullptr);
  EXPECT_EQ(net.FindLayer("nope"), nullptr);
}

TEST(Network, RejectsDuplicateNames) {
  Network net("dup", Shape{1, 2, 2});
  net.Add(std::make_unique<ReluLayer>("x"));
  EXPECT_THROW(net.Add(std::make_unique<ReluLayer>("x")), CheckError);
}

TEST(Network, RejectsUnknownInput) {
  Network net("bad", Shape{1, 2, 2});
  EXPECT_THROW(net.Add(std::make_unique<ReluLayer>("r"), {"ghost"}),
               CheckError);
}

TEST(Network, RejectsWrongInputShape) {
  Network net = LinearNet();
  Tensor in(Shape{1, 3, 4, 4});
  EXPECT_THROW((void)net.Forward(in), CheckError);
}

TEST(Network, ParameterCount) {
  Network net = LinearNet();
  // conv: 3*2*3*3 = 54 weights + 3 bias; fc: 5*48 = 240 + 5.
  EXPECT_EQ(net.ParameterCount(), 54 + 3 + 240 + 5);
}

TEST(Network, CloneIsDeepAndEquivalent) {
  Network net = LinearNet();
  Rng rng(4);
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).HasWeights()) {
      net.LayerAt(i).MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
      net.LayerAt(i).NotifyWeightsChanged();
    }
  }
  Network clone = net.Clone();
  Tensor in(Shape{1, 2, 4, 4});
  in.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor a = net.Forward(in);
  const Tensor b = clone.Forward(in);
  for (std::int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(a.At(i), b.At(i));
  }
  // Mutating the original must not affect the clone.
  net.FindLayer("fc")->MutableWeights().Set(0, 1234.0f);
  net.FindLayer("fc")->NotifyWeightsChanged();
  const Tensor c = clone.Forward(in);
  for (std::int64_t i = 0; i < b.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(b.At(i), c.At(i));
  }
}

TEST(Network, WeightedLayerNames) {
  Network net = LinearNet();
  EXPECT_EQ(net.WeightedLayerNames(),
            (std::vector<std::string>{"conv", "fc"}));
}

TEST(ArgMax, PicksHighestScore) {
  Tensor logits(Shape{2, 3, 1, 1}, {0.1f, 0.7f, 0.2f, 0.5f, 0.1f, 0.4f});
  const auto labels = ArgMax(logits);
  EXPECT_EQ(labels, (std::vector<std::int64_t>{1, 0}));
}

TEST(TopK, ReturnsDescendingClasses) {
  Tensor logits(Shape{1, 5, 1, 1}, {0.1f, 0.5f, 0.3f, 0.05f, 0.05f});
  const auto top3 = TopK(logits, 3);
  ASSERT_EQ(top3.size(), 1u);
  EXPECT_EQ(top3[0], (std::vector<std::int64_t>{1, 2, 0}));
}

TEST(TopK, RejectsBadK) {
  Tensor logits(Shape{1, 3, 1, 1});
  EXPECT_THROW(TopK(logits, 0), CheckError);
  EXPECT_THROW(TopK(logits, 4), CheckError);
}

}  // namespace
}  // namespace ccperf::nn
