// End-to-end integration at reduced scale: build a scaled CaffeNet, prune
// it for real, run real inference, and check the analytic cloud-model path
// agrees with densities measured from the actual network.
#include <gtest/gtest.h>

#include "cloud/density.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/empirical_accuracy.h"
#include "core/explorer.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/sparsity.h"
#include "pruning/variant_generator.h"

namespace ccperf {
namespace {

nn::Network ScaledCaffeNet() {
  nn::ModelConfig config;
  config.channel_scale = 0.125;
  config.num_classes = 50;
  config.weight_seed = 2024;
  return nn::BuildCaffeNet(config);
}

TEST(EndToEnd, ScaledCaffeNetRealInference) {
  const nn::Network net = ScaledCaffeNet();
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 50, 64, 1);
  const Tensor logits = net.Forward(dataset.Batch(0, 2));
  ASSERT_EQ(logits.GetShape(), (Shape{2, 50, 1, 1}));
  // Softmax output: rows are probability distributions.
  for (std::int64_t b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 50; ++c) sum += logits.At(b * 50 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(EndToEnd, RealPruningSpeedsUpScaledInference) {
  // On the real CPU engine, CSR execution of a 90 %-pruned network must
  // beat dense execution of the unpruned one (the mechanism the cloud
  // model assumes). Use model cost (deterministic) rather than wall time
  // (noisy on shared CI machines) — plus one wall-clock spot check.
  const nn::Network base = ScaledCaffeNet();
  const nn::Network pruned = pruning::ApplyPlan(
      base, pruning::UniformPlan(
                {"conv1", "conv2", "conv3", "conv4", "conv5"}, 0.9,
                pruning::PrunerFamily::kMagnitude));
  // Overall density stays high (fc layers dominate the parameter count and
  // are untouched); the conv layers themselves must be 90 % sparse.
  const pruning::SparsityReport report = pruning::AnalyzeSparsity(pruned);
  for (const auto& layer : report.layers) {
    if (layer.name.rfind("conv", 0) == 0) {
      EXPECT_NEAR(layer.density, 0.1, 0.01) << layer.name;
    }
  }

  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 50, 8, 2);
  const Tensor batch = dataset.Batch(0, 2);
  std::vector<nn::LayerTiming> base_times, pruned_times;
  (void)base.Forward(batch, &base_times);
  (void)pruned.Forward(batch, &pruned_times);
  double base_conv = 0.0, pruned_conv = 0.0;
  for (const auto& t : base_times) {
    if (t.kind == nn::LayerKind::kConvolution) base_conv += t.seconds;
  }
  for (const auto& t : pruned_times) {
    if (t.kind == nn::LayerKind::kConvolution) pruned_conv += t.seconds;
  }
  EXPECT_LT(pruned_conv, base_conv);
}

TEST(EndToEnd, AnalyticAndMeasuredDensityAgreeOnCaffeNetShape) {
  nn::ModelConfig config;
  config.channel_scale = 0.125;
  config.weight_seed = 5;
  const nn::Network base = nn::BuildCaffeNet(config);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();

  pruning::PrunePlan plan;
  plan.family = pruning::PrunerFamily::kL1Filter;
  plan.layer_ratios["conv1"] = 0.25;
  plan.layer_ratios["conv2"] = 0.5;
  plan.layer_ratios["conv4"] = 0.5;

  const cloud::DensityMap analytic = cloud::DensityFromPlan(profile, plan);
  const cloud::DensityMap measured =
      cloud::DensityFromNetwork(pruning::ApplyPlan(base, plan));
  for (const char* layer : {"conv1", "conv2", "conv3", "conv4", "conv5"}) {
    EXPECT_NEAR(analytic.at(layer).element, measured.at(layer).element, 0.05)
        << layer;
    EXPECT_NEAR(analytic.at(layer).in_channel, measured.at(layer).in_channel,
                0.05)
        << layer;
  }
}

TEST(EndToEnd, EmpiricalSweetSpotOnScaledCaffeNet) {
  // Teacher-student agreement on the real (scaled) CaffeNet shows the
  // paper's sweet-spot: mild magnitude pruning keeps Top-5 agreement high.
  nn::ModelConfig config;
  config.channel_scale = 0.0625;
  config.num_classes = 20;
  config.weight_seed = 31;
  const nn::Network base = nn::BuildCaffeNet(config);
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 20, 32, 3,
                                            0.4f);
  const core::EmpiricalAccuracyEvaluator evaluator(base, dataset, 12, 4);

  const nn::Network mild = pruning::ApplyPlan(
      base, pruning::UniformPlan({"conv2", "conv3", "conv4", "conv5"}, 0.25,
                                 pruning::PrunerFamily::kMagnitude));
  const core::AccuracyResult mild_acc = evaluator.Agreement(mild);
  EXPECT_GT(mild_acc.top5, 0.8);

  const nn::Network savage = pruning::ApplyPlan(
      base,
      pruning::UniformPlan({"conv1", "conv2", "conv3", "conv4", "conv5"},
                           0.95, pruning::PrunerFamily::kMagnitude));
  const core::AccuracyResult savage_acc = evaluator.Agreement(savage);
  EXPECT_LT(savage_acc.top1, mild_acc.top1);
}

TEST(EndToEnd, FullPipelineModelDrivenExploration) {
  // Variants -> densities -> simulator -> Pareto, all through public APIs.
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ConfigSpaceExplorer explorer(sim, profile, accuracy);

  const auto variants = pruning::CartesianSweep(
      {"conv1", "conv2"}, {{0.0, 0.2, 0.4}, {0.0, 0.25, 0.5}});
  const auto configs = cloud::EnumerateConfigs(catalog.Types(), 1);
  const core::ExplorationResult result =
      explorer.Explore(variants, configs, 200000, Seconds(4.0 * 3600.0),
                       Usd(50.0));
  EXPECT_GT(result.feasible.size(), 50u);

  const auto frontier = core::TimeAccuracyFrontier(result.feasible, true);
  ASSERT_FALSE(frontier.empty());
  // The highest-accuracy frontier point must be the nonpruned variant.
  EXPECT_EQ(result.feasible[frontier.front()].variant_label, "nonpruned");
}

}  // namespace
}  // namespace ccperf
