// Gradient checking: every analytic backward pass is verified against
// central-difference numerical gradients on a scalar probe loss
// L = sum_i c_i * output_i with fixed random c.
#include "train/backward.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/activation_layers.h"
#include "nn/concat_layer.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/pool_layer.h"

namespace ccperf::train {
namespace {

/// Probe coefficients c with |c| ~ 1.
Tensor ProbeCoefficients(const Shape& shape, std::uint64_t seed) {
  Tensor c(shape);
  Rng rng(seed);
  c.FillGaussian(rng, 0.0f, 1.0f);
  return c;
}

double ProbeLoss(const Tensor& output, const Tensor& c) {
  double loss = 0.0;
  for (std::int64_t i = 0; i < output.NumElements(); ++i) {
    loss += static_cast<double>(output.At(i)) * c.At(i);
  }
  return loss;
}

/// Numerically check d(ProbeLoss)/d(target[j]) against `analytic` for a
/// sample of indices. `recompute` runs forward and returns the loss.
void CheckNumericGradient(Tensor& target, const Tensor& analytic,
                          const std::function<double()>& recompute,
                          int samples = 25, double tol = 2e-2) {
  ASSERT_EQ(target.NumElements(), analytic.NumElements());
  Rng rng(7);
  const float eps = 1e-2f;
  for (int s = 0; s < samples; ++s) {
    const auto j = static_cast<std::int64_t>(
        rng.NextIndex(static_cast<std::uint64_t>(target.NumElements())));
    const float original = target.At(j);
    target.Set(j, original + eps);
    const double plus = recompute();
    target.Set(j, original - eps);
    const double minus = recompute();
    target.Set(j, original);
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(analytic.At(j), numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "index " << j;
  }
}

template <typename LayerT>
struct GradCheckContext {
  LayerT* layer;
  Tensor input;
  Tensor probe;

  double Loss() {
    const Tensor out = layer->Forward({&input});
    return ProbeLoss(out, probe);
  }
};

TEST(Backward, ConvGradientsNumericallyCorrect) {
  nn::ConvLayer conv("c",
                     {.out_channels = 4, .kernel = 3, .stride = 2, .pad = 1,
                      .groups = 2},
                     4);
  Rng rng(1);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  conv.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  conv.NotifyWeightsChanged();

  Tensor input(Shape{2, 4, 7, 7});
  input.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor output = conv.Forward({&input});
  const Tensor probe = ProbeCoefficients(output.GetShape(), 9);

  LayerGrads grads;
  grads.weights = Tensor(conv.Weights().GetShape());
  grads.bias = Tensor(conv.Bias().GetShape());
  const auto grad_inputs =
      BackwardLayer(conv, {&input}, output, probe, &grads);
  ASSERT_EQ(grad_inputs.size(), 1u);

  GradCheckContext<nn::ConvLayer> ctx{&conv, input, probe};
  // d/d input
  CheckNumericGradient(ctx.input, grad_inputs[0], [&] { return ctx.Loss(); });
  // d/d weights (NotifyWeightsChanged not needed: density unchanged by eps)
  CheckNumericGradient(conv.MutableWeights(), grads.weights,
                       [&] { return ctx.Loss(); });
  // d/d bias
  CheckNumericGradient(conv.MutableBias(), grads.bias,
                       [&] { return ctx.Loss(); });
}

TEST(Backward, FcGradientsNumericallyCorrect) {
  nn::FcLayer fc("f", 12, 5);
  Rng rng(2);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  fc.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  fc.NotifyWeightsChanged();
  Tensor input(Shape{3, 3, 2, 2});
  input.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor output = fc.Forward({&input});
  const Tensor probe = ProbeCoefficients(output.GetShape(), 11);

  LayerGrads grads;
  grads.weights = Tensor(fc.Weights().GetShape());
  grads.bias = Tensor(fc.Bias().GetShape());
  const auto grad_inputs = BackwardLayer(fc, {&input}, output, probe, &grads);

  GradCheckContext<nn::FcLayer> ctx{&fc, input, probe};
  CheckNumericGradient(ctx.input, grad_inputs[0], [&] { return ctx.Loss(); });
  CheckNumericGradient(fc.MutableWeights(), grads.weights,
                       [&] { return ctx.Loss(); });
  CheckNumericGradient(fc.MutableBias(), grads.bias,
                       [&] { return ctx.Loss(); });
}

TEST(Backward, ReluGradientMasks) {
  nn::ReluLayer relu("r");
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, -1.0f, 0.5f, -0.5f});
  const Tensor output = relu.Forward({&input});
  Tensor probe(Shape{1, 1, 2, 2}, {1.0f, 1.0f, 1.0f, 1.0f});
  const auto grad = BackwardLayer(relu, {&input}, output, probe, nullptr);
  EXPECT_FLOAT_EQ(grad[0].At(0), 1.0f);
  EXPECT_FLOAT_EQ(grad[0].At(1), 0.0f);
  EXPECT_FLOAT_EQ(grad[0].At(2), 1.0f);
  EXPECT_FLOAT_EQ(grad[0].At(3), 0.0f);
}

TEST(Backward, MaxPoolRoutesToArgmax) {
  nn::PoolLayer pool("p", nn::LayerKind::kMaxPool, {.kernel = 2, .stride = 2});
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, 4.0f, 3.0f, 2.0f});
  const Tensor output = pool.Forward({&input});
  Tensor probe(Shape{1, 1, 1, 1}, {2.5f});
  const auto grad = BackwardLayer(pool, {&input}, output, probe, nullptr);
  EXPECT_FLOAT_EQ(grad[0].At(0), 0.0f);
  EXPECT_FLOAT_EQ(grad[0].At(1), 2.5f);  // argmax position
  EXPECT_FLOAT_EQ(grad[0].At(2), 0.0f);
  EXPECT_FLOAT_EQ(grad[0].At(3), 0.0f);
}

TEST(Backward, AvgPoolSpreadsEvenly) {
  nn::PoolLayer pool("p", nn::LayerKind::kAvgPool, {.kernel = 2, .stride = 2});
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor output = pool.Forward({&input});
  Tensor probe(Shape{1, 1, 1, 1}, {4.0f});
  const auto grad = BackwardLayer(pool, {&input}, output, probe, nullptr);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad[0].At(i), 1.0f);
}

TEST(Backward, MaxPoolNumericallyCorrect) {
  nn::PoolLayer pool("p", nn::LayerKind::kMaxPool,
                     {.kernel = 3, .stride = 2, .pad = 1});
  Rng rng(3);
  Tensor input(Shape{2, 3, 5, 5});
  input.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor output = pool.Forward({&input});
  const Tensor probe = ProbeCoefficients(output.GetShape(), 13);
  const auto grad = BackwardLayer(pool, {&input}, output, probe, nullptr);
  GradCheckContext<nn::PoolLayer> ctx{&pool, input, probe};
  // Max pooling is only piecewise differentiable; eps must not flip any
  // argmax, so use a smaller tolerance sample budget and trust the routing
  // checks above for ties.
  CheckNumericGradient(ctx.input, grad[0], [&] { return ctx.Loss(); }, 15,
                       0.08);
}

TEST(Backward, SoftmaxNumericallyCorrect) {
  nn::SoftmaxLayer softmax("s");
  Rng rng(4);
  Tensor input(Shape{2, 6, 1, 1});
  input.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor output = softmax.Forward({&input});
  const Tensor probe = ProbeCoefficients(output.GetShape(), 15);
  const auto grad = BackwardLayer(softmax, {&input}, output, probe, nullptr);
  GradCheckContext<nn::SoftmaxLayer> ctx{&softmax, input, probe};
  CheckNumericGradient(ctx.input, grad[0], [&] { return ctx.Loss(); });
}

TEST(Backward, ConcatSplitsGradients) {
  nn::ConcatLayer concat("c");
  Tensor a(Shape{1, 1, 1, 2}, {1.0f, 2.0f});
  Tensor b(Shape{1, 2, 1, 2}, {3.0f, 4.0f, 5.0f, 6.0f});
  const Tensor output = concat.Forward({&a, &b});
  Tensor probe(Shape{1, 3, 1, 2}, {10.f, 20.f, 30.f, 40.f, 50.f, 60.f});
  const auto grads = BackwardLayer(concat, {&a, &b}, output, probe, nullptr);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_FLOAT_EQ(grads[0].At(0), 10.0f);
  EXPECT_FLOAT_EQ(grads[0].At(1), 20.0f);
  EXPECT_FLOAT_EQ(grads[1].At(0), 30.0f);
  EXPECT_FLOAT_EQ(grads[1].At(3), 60.0f);
}

TEST(Backward, DropoutPassesThrough) {
  nn::DropoutLayer dropout("d");
  Tensor input(Shape{1, 2, 1, 1}, {1.0f, 2.0f});
  const Tensor output = dropout.Forward({&input});
  Tensor probe(Shape{1, 2, 1, 1}, {5.0f, 7.0f});
  const auto grad = BackwardLayer(dropout, {&input}, output, probe, nullptr);
  EXPECT_FLOAT_EQ(grad[0].At(0), 5.0f);
  EXPECT_FLOAT_EQ(grad[0].At(1), 7.0f);
}

TEST(Backward, LrnNumericallyCorrect) {
  nn::LrnLayer lrn("n", {.local_size = 3, .alpha = 0.3f, .beta = 0.75f,
                         .k = 1.0f});
  EXPECT_TRUE(IsDifferentiable(lrn));
  Rng rng(6);
  Tensor input(Shape{2, 5, 2, 2});
  input.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor output = lrn.Forward({&input});
  const Tensor probe = ProbeCoefficients(output.GetShape(), 17);
  const auto grad = BackwardLayer(lrn, {&input}, output, probe, nullptr);
  GradCheckContext<nn::LrnLayer> ctx{&lrn, input, probe};
  CheckNumericGradient(ctx.input, grad[0], [&] { return ctx.Loss(); });
}

TEST(Backward, ShapeMismatchRejected) {
  nn::ReluLayer relu("r");
  Tensor input(Shape{1, 2, 1, 1});
  const Tensor output = relu.Forward({&input});
  Tensor wrong(Shape{1, 3, 1, 1});
  EXPECT_THROW((void)BackwardLayer(relu, {&input}, output, wrong, nullptr),
               CheckError);
}

}  // namespace
}  // namespace ccperf::train
