#include "common/log.h"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace ccperf {
namespace {

/// Capture std::cerr for the duration of a test scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string Text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LogTest, InfoEmittedAtDefaultLevel) {
  CerrCapture capture;
  LogInfo("hello ", 42);
  EXPECT_NE(capture.Text().find("[INFO ] hello 42"), std::string::npos);
}

TEST_F(LogTest, DebugSuppressedAtDefaultLevel) {
  CerrCapture capture;
  LogDebug("secret");
  EXPECT_EQ(capture.Text(), "");
}

TEST_F(LogTest, DebugEmittedWhenEnabled) {
  SetLogLevel(LogLevel::kDebug);
  CerrCapture capture;
  LogDebug("visible now");
  EXPECT_NE(capture.Text().find("DEBUG"), std::string::npos);
}

TEST_F(LogTest, WarnCarriesPrefix) {
  CerrCapture capture;
  LogWarn("careful: ", 3.5);
  EXPECT_NE(capture.Text().find("[WARN ] careful: 3.5"), std::string::npos);
}

TEST_F(LogTest, ErrorLevelSuppressesWarn) {
  SetLogLevel(LogLevel::kError);
  CerrCapture capture;
  LogWarn("quiet");
  LogInfo("quiet too");
  EXPECT_EQ(capture.Text(), "");
}

TEST_F(LogTest, MessagesEndWithNewline) {
  CerrCapture capture;
  LogInfo("line");
  const std::string text = capture.Text();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace ccperf
