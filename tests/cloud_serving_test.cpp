#include "cloud/serving.h"
#include <cmath>

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "cloud/density.h"
#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  ServingTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  ResourceConfig OneP2() {
    ResourceConfig config;
    config.Add("p2.xlarge");
    return config;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  ModelProfile profile_;
  VariantPerf perf_;
};

TEST_F(ServingTest, CapacityMatchesBatchThroughput) {
  const ServingPolicy policy{.max_batch = 300, .max_wait_s = 0.1};
  const double capacity = serving_.Capacity(OneP2(), perf_, policy);
  // ~43 img/s at saturation (22.8 ms/image) minus launch overhead.
  EXPECT_GT(capacity, 30.0);
  EXPECT_LT(capacity, 50.0);
  // Capacity scales with GPUs.
  ResourceConfig big;
  big.Add("p2.8xlarge");
  EXPECT_NEAR(serving_.Capacity(big, perf_, policy) / capacity, 8.0, 0.2);
}

TEST_F(ServingTest, LowLoadIsStableWithLowLatency) {
  Rng rng(1);
  const ServingPolicy policy{.max_batch = 64, .max_wait_s = 0.05};
  const ServingReport report =
      serving_.Simulate(OneP2(), perf_, /*arrivals_per_s=*/5.0,
                        /*duration_s=*/300.0, policy, rng);
  EXPECT_TRUE(report.stable);
  EXPECT_GT(report.requests, 1000);
  // Latency ~ max_wait + small-batch service; well under a second.
  EXPECT_LT(report.p99_latency_s, 1.0);
  EXPECT_GT(report.mean_latency_s, 0.0);
  EXPECT_LE(report.p50_latency_s, report.p95_latency_s);
  EXPECT_LE(report.p95_latency_s, report.p99_latency_s);
  EXPECT_LT(report.utilization, 0.6);
}

TEST_F(ServingTest, OverloadDetectedAsUnstableOrSaturated) {
  Rng rng(2);
  const ServingPolicy policy{.max_batch = 300, .max_wait_s = 0.1};
  const double capacity = serving_.Capacity(OneP2(), perf_, policy);
  const ServingReport report = serving_.Simulate(
      OneP2(), perf_, capacity * 2.0, /*duration_s=*/600.0, policy, rng);
  // 2x capacity: either flagged unstable or the queue exploded with p99
  // latency far above the interactive regime.
  EXPECT_TRUE(!report.stable || report.p99_latency_s > 30.0);
}

TEST_F(ServingTest, NearCapacityStillStable) {
  Rng rng(3);
  const ServingPolicy policy{.max_batch = 300, .max_wait_s = 0.2};
  const double capacity = serving_.Capacity(OneP2(), perf_, policy);
  const ServingReport report = serving_.Simulate(
      OneP2(), perf_, capacity * 0.6, /*duration_s=*/600.0, policy, rng);
  EXPECT_TRUE(report.stable);
  EXPECT_GT(report.utilization, 0.3);
}

TEST_F(ServingTest, PrunedVariantServesMoreTraffic) {
  pruning::PrunePlan plan;
  plan.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  const VariantPerf pruned = ComputeVariantPerf(
      profile_, DensityFromPlan(profile_, plan), plan.Label());
  const ServingPolicy policy{.max_batch = 300, .max_wait_s = 0.1};
  EXPECT_GT(serving_.Capacity(OneP2(), pruned, policy),
            serving_.Capacity(OneP2(), perf_, policy) * 1.1);
}

TEST_F(ServingTest, MaxWaitBoundsLatencyUnderLightLoad) {
  Rng rng(4);
  // One request every 2 s, batch cap never reached: dispatch happens at
  // the wait deadline, so p50 ~ max_wait + single-batch service.
  const ServingPolicy policy{.max_batch = 64, .max_wait_s = 0.2};
  const ServingReport report = serving_.Simulate(
      OneP2(), perf_, 0.5, /*duration_s=*/600.0, policy, rng);
  EXPECT_TRUE(report.stable);
  const double single =
      sim_.BatchSeconds(catalog_.Find("p2.xlarge"), perf_, 1).value();
  EXPECT_NEAR(report.p50_latency_s, policy.max_wait_s + single, 0.05);
}

TEST_F(ServingTest, DeterministicGivenSeed) {
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  Rng rng1(5), rng2(5);
  const ServingReport a =
      serving_.Simulate(OneP2(), perf_, 10.0, 60.0, policy, rng1);
  const ServingReport b =
      serving_.Simulate(OneP2(), perf_, 10.0, 60.0, policy, rng2);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
}

TEST_F(ServingTest, CostPerHourIsCatalogPrice) {
  Rng rng(6);
  ResourceConfig config;
  config.Add("p2.xlarge");
  config.Add("g3.8xlarge");
  const ServingReport report = serving_.Simulate(
      config, perf_, 5.0, 60.0, {.max_batch = 32, .max_wait_s = 0.05}, rng);
  EXPECT_DOUBLE_EQ(report.cost_per_hour_usd, 0.90 + 2.28);
}

TEST_F(ServingTest, TraceReplayMatchesEquivalentPoisson) {
  // SimulateTrace on arrivals generated the same way as Simulate must give
  // identical results.
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  Rng rng_a(11);
  const ServingReport via_simulate =
      serving_.Simulate(OneP2(), perf_, 8.0, 120.0, policy, rng_a);
  Rng rng_b(11);
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng_b.NextDouble()) / 8.0;
    if (t > 120.0) break;
    arrivals.push_back(t);
  }
  const ServingReport via_trace =
      serving_.SimulateTrace(OneP2(), perf_, std::move(arrivals), 120.0,
                             policy);
  EXPECT_EQ(via_simulate.requests, via_trace.requests);
  EXPECT_DOUBLE_EQ(via_simulate.p99_latency_s, via_trace.p99_latency_s);
}

TEST_F(ServingTest, TraceMustBeSorted) {
  const ServingPolicy policy;
  EXPECT_THROW((void)serving_.SimulateTrace(OneP2(), perf_, {2.0, 1.0}, 10.0,
                                            policy),
               CheckError);
}

TEST_F(ServingTest, EmptyTraceIsFine) {
  const ServingReport report =
      serving_.SimulateTrace(OneP2(), perf_, {}, 10.0, {});
  EXPECT_EQ(report.requests, 0);
  EXPECT_TRUE(report.stable);
  // The failure-aware counters must be zeroed, not left undefined.
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.dropped_deadline, 0);
  EXPECT_EQ(report.dropped_failed, 0);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(report.goodput_per_s, 0.0);
  EXPECT_DOUBLE_EQ(report.deadline_miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.accuracy_weighted_goodput, 0.0);
}

TEST_F(ServingTest, DeadlineAccountingInTracePath) {
  // Every request comfortably beats a loose deadline; goodput equals
  // throughput and the miss rate is zero.
  const ServingPolicy policy{
      .max_batch = 64, .max_wait_s = 0.05, .deadline_s = 5.0};
  Rng rng(12);
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / 5.0;
    if (t > 120.0) break;
    arrivals.push_back(t);
  }
  const ServingReport report =
      serving_.SimulateTrace(OneP2(), perf_, arrivals, 120.0, policy);
  EXPECT_EQ(report.completed, report.requests);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(report.deadline_miss_rate, 0.0);
  EXPECT_NEAR(report.goodput_per_s,
              static_cast<double>(report.requests) / 120.0, 1e-9);
}

TEST(ServingPolicyValidation, RejectsBadPolicies) {
  EXPECT_NO_THROW(ValidateServingPolicy({}));
  EXPECT_THROW(ValidateServingPolicy({.max_batch = 0}), CheckError);
  EXPECT_THROW(ValidateServingPolicy({.max_batch = -3}), CheckError);
  EXPECT_THROW(ValidateServingPolicy({.max_wait_s = -0.1}), CheckError);
  EXPECT_THROW(ValidateServingPolicy({.deadline_s = 0.0}), CheckError);
  EXPECT_THROW(ValidateServingPolicy({.deadline_s = -1.0}), CheckError);
  // An infinite deadline (the default) means "no deadline" and is valid.
  EXPECT_NO_THROW(ValidateServingPolicy(
      {.deadline_s = std::numeric_limits<double>::infinity()}));
}

TEST(DiurnalArrivals, PropertyMonotoneAndRateBounded) {
  // Property test over seeds: timestamps are strictly increasing, inside
  // [0, duration], and every quarter-period window's empirical rate stays
  // below a generous bound on the peak rate mean + amplitude.
  const double mean = 30.0, amplitude = 20.0, period = 400.0;
  const double duration = 2000.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto arrivals =
        GenerateDiurnalArrivals(mean, amplitude, period, duration, rng);
    ASSERT_FALSE(arrivals.empty());
    EXPECT_GE(arrivals.front(), 0.0);
    EXPECT_LE(arrivals.back(), duration);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      ASSERT_GT(arrivals[i], arrivals[i - 1]) << "seed " << seed;
    }
    const double window = period / 4.0;
    const auto buckets = static_cast<std::size_t>(duration / window);
    std::vector<std::int64_t> count(buckets, 0);
    for (double a : arrivals) {
      const auto b = std::min(buckets - 1,
                              static_cast<std::size_t>(a / window));
      ++count[b];
    }
    const double peak = mean + amplitude;
    for (std::size_t b = 0; b < buckets; ++b) {
      const double rate = static_cast<double>(count[b]) / window;
      // 5-sigma Poisson slack on the window's worst-case mean.
      EXPECT_LE(rate, peak + 5.0 * std::sqrt(peak / window))
          << "seed " << seed << " bucket " << b;
    }
  }
}

TEST(DiurnalArrivals, NegativeAmplitudeRejected) {
  Rng rng(6);
  EXPECT_THROW((void)GenerateDiurnalArrivals(10.0, -1.0, 600.0, 600.0, rng),
               CheckError);
  EXPECT_THROW((void)GenerateDiurnalArrivals(10.0, 1.0, 600.0, -5.0, rng),
               CheckError);
}

TEST(DiurnalArrivals, RateAndShape) {
  Rng rng(3);
  const double period = 600.0;
  const auto arrivals =
      GenerateDiurnalArrivals(/*mean=*/20.0, /*amplitude=*/15.0, period,
                              /*duration=*/1200.0, rng);
  // Total count ~ mean * duration.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 20.0 * 1200.0,
              3.0 * std::sqrt(20.0 * 1200.0) + 200.0);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // First quarter-period starts at the trough, the middle rides the peak:
  // count in [0, period/4) well below count in [period/4, 3*period/4).
  std::int64_t trough = 0, peak = 0;
  for (double a : arrivals) {
    const double phase = std::fmod(a, period);
    if (phase < period / 4.0) ++trough;
    if (phase >= period / 4.0 && phase < 3.0 * period / 4.0) ++peak;
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(DiurnalArrivals, ZeroAmplitudeIsPlainPoisson) {
  Rng rng(4);
  const auto arrivals = GenerateDiurnalArrivals(10.0, 0.0, 600.0, 600.0, rng);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 6000.0, 300.0);
}

TEST(DiurnalArrivals, RejectsBadParameters) {
  Rng rng(5);
  EXPECT_THROW((void)GenerateDiurnalArrivals(0.0, 0.0, 1.0, 1.0, rng),
               CheckError);
  EXPECT_THROW((void)GenerateDiurnalArrivals(1.0, 2.0, 1.0, 1.0, rng),
               CheckError);
  EXPECT_THROW((void)GenerateDiurnalArrivals(1.0, 0.5, 0.0, 1.0, rng),
               CheckError);
}

TEST_F(ServingTest, RejectsBadArguments) {
  Rng rng(7);
  const ServingPolicy policy;
  ResourceConfig empty;
  EXPECT_THROW(
      (void)serving_.Simulate(empty, perf_, 1.0, 10.0, policy, rng),
      CheckError);
  EXPECT_THROW(
      (void)serving_.Simulate(OneP2(), perf_, 0.0, 10.0, policy, rng),
      CheckError);
  EXPECT_THROW(
      (void)serving_.Simulate(OneP2(), perf_, 1.0, -1.0, policy, rng),
      CheckError);
  EXPECT_THROW((void)serving_.Simulate(OneP2(), perf_, 1.0, 10.0,
                                       {.max_batch = 0}, rng),
               CheckError);
}

TEST_F(ServingTest, SimulateFaultedManyMatchesStandaloneRuns) {
  Rng rng(17);
  std::vector<FaultedScenario> scenarios;
  for (int k = 0; k < 6; ++k) {
    FaultedScenario s;
    s.config = OneP2();
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / 20.0;
      if (t > 60.0) break;
      s.arrivals.push_back(t);
    }
    if (k % 2 == 1) {
      s.faults.events.push_back({FaultKind::kCrash, 0, 10.0 + k, 5.0, 1.0});
    }
    s.variant_accuracy = 1.0 - 0.01 * k;
    scenarios.push_back(std::move(s));
  }
  const ServingPolicy policy{.max_batch = 64, .max_wait_s = 0.05,
                             .deadline_s = 5.0};
  const RetryPolicy retry{.max_retries = 2};
  const std::vector<ServingReport> many = serving_.SimulateFaultedMany(
      scenarios, perf_, 60.0, policy, retry);
  ASSERT_EQ(many.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ServingReport alone = serving_.SimulateFaulted(
        scenarios[i].config, perf_, scenarios[i].arrivals, 60.0, policy,
        retry, scenarios[i].faults, InflightPolicy::kRequeue,
        scenarios[i].variant_accuracy);
    EXPECT_EQ(many[i].requests, alone.requests) << i;
    EXPECT_EQ(many[i].completed, alone.completed) << i;
    EXPECT_EQ(many[i].mean_latency_s, alone.mean_latency_s)
        << "scenario " << i << " must be bitwise identical";
    EXPECT_EQ(many[i].accuracy_weighted_goodput,
              alone.accuracy_weighted_goodput) << i;
  }
}

TEST_F(ServingTest, SimulateFaultedManyRethrowsLowestFailingScenario) {
  std::vector<FaultedScenario> scenarios(4);
  for (auto& s : scenarios) {
    s.config = OneP2();
    s.arrivals = {1.0, 2.0};
  }
  // Scenarios 1 and 3 carry invalid schedules (out-of-order starts); the
  // surfaced error must name scenario 1 no matter the thread schedule.
  for (std::size_t bad : {std::size_t{1}, std::size_t{3}}) {
    scenarios[bad].faults.events = {
        {FaultKind::kCrash, 0, 9.0, 1.0, 1.0},
        {FaultKind::kCrash, 0, 3.0, 1.0, 1.0}};
  }
  try {
    (void)serving_.SimulateFaultedMany(scenarios, perf_, 10.0, {}, {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("scenario 1"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(ServingTest, SimulateFaultedManyEmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(
      serving_.SimulateFaultedMany({}, perf_, 10.0, {}, {}).empty());
}

}  // namespace
}  // namespace ccperf::cloud
