#include "core/pareto.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf::core {
namespace {

TEST(Dominates, Definition) {
  EXPECT_TRUE(Dominates(1.0, 0.9, 2.0, 0.8));   // better in both
  EXPECT_TRUE(Dominates(1.0, 0.9, 1.0, 0.8));   // equal obj, better acc
  EXPECT_TRUE(Dominates(1.0, 0.9, 2.0, 0.9));   // equal acc, better obj
  EXPECT_FALSE(Dominates(1.0, 0.9, 1.0, 0.9));  // identical
  EXPECT_FALSE(Dominates(1.0, 0.8, 2.0, 0.9));  // trade-off
  EXPECT_FALSE(Dominates(2.0, 0.9, 1.0, 0.8));  // worse obj
}

TEST(Pareto, HandCase) {
  // (obj, acc): A(1, .5) B(2, .7) C(3, .6) D(2, .9) E(4, .9)
  const std::vector<double> obj{1, 2, 3, 2, 4};
  const std::vector<double> acc{0.5, 0.7, 0.6, 0.9, 0.9};
  const auto frontier = ParetoFrontier(obj, acc);
  // D dominates B? D(2,.9) vs B(2,.7): yes. C dominated by B/D. E dominated
  // by D. Frontier: D (acc .9 obj 2), A (acc .5 obj 1).
  const std::set<std::size_t> got(frontier.begin(), frontier.end());
  EXPECT_EQ(got, (std::set<std::size_t>{0, 3}));
}

TEST(Pareto, SortedByDescendingAccuracy) {
  const std::vector<double> obj{1, 2, 3};
  const std::vector<double> acc{0.1, 0.5, 0.9};
  const auto frontier = ParetoFrontier(obj, acc);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0], 2u);
  EXPECT_EQ(frontier[2], 0u);
}

TEST(Pareto, SinglePoint) {
  const std::vector<double> obj{5.0};
  const std::vector<double> acc{0.5};
  EXPECT_EQ(ParetoFrontier(obj, acc).size(), 1u);
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(ParetoFrontier({}, {}).empty());
}

TEST(Pareto, DuplicatesKeepOneRepresentative) {
  const std::vector<double> obj{1, 1, 1};
  const std::vector<double> acc{0.5, 0.5, 0.5};
  EXPECT_EQ(ParetoFrontier(obj, acc).size(), 1u);
}

TEST(Pareto, AllDominatedByOne) {
  const std::vector<double> obj{1, 2, 3, 4};
  const std::vector<double> acc{0.9, 0.8, 0.7, 0.6};
  const auto frontier = ParetoFrontier(obj, acc);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], 0u);
}

TEST(Pareto, MismatchedSizesThrow) {
  const std::vector<double> obj{1.0};
  const std::vector<double> acc{0.5, 0.6};
  EXPECT_THROW(ParetoFrontier(obj, acc), CheckError);
}

// Property test: for random point clouds the frontier must (a) contain no
// internally dominated pair and (b) dominate or tie every excluded point.
class ParetoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParetoProperty, FrontierIsMinimalAndComplete) {
  Rng rng(GetParam());
  const std::size_t n = 50 + rng.NextIndex(150);
  std::vector<double> obj(n), acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    obj[i] = rng.NextDouble() * 100.0;
    // Quantize to force ties.
    acc[i] = static_cast<double>(rng.NextIndex(20)) / 20.0;
  }
  const auto frontier = ParetoFrontier(obj, acc);
  ASSERT_FALSE(frontier.empty());

  const std::set<std::size_t> on_frontier(frontier.begin(), frontier.end());
  for (std::size_t a : frontier) {
    for (std::size_t b : frontier) {
      if (a != b) {
        EXPECT_FALSE(Dominates(obj[a], acc[a], obj[b], acc[b]))
            << a << " dominates " << b;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (on_frontier.contains(i)) continue;
    bool covered = false;
    for (std::size_t f : frontier) {
      if (Dominates(obj[f], acc[f], obj[i], acc[i]) ||
          (obj[f] == obj[i] && acc[f] == acc[i])) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point " << i << " neither on frontier nor "
                         << "dominated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ccperf::core
