#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/activation_layers.h"
#include "nn/fc_layer.h"
#include "pruning/filter_pruner.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf::nn {
namespace {

TEST(FcLayer, HandComputed) {
  FcLayer fc("fc", 3, 2);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5]
  auto w = fc.MutableWeights().Data();
  for (int i = 0; i < 6; ++i) w[i] = static_cast<float>(i + 1);
  fc.MutableBias().Set(0, 0.5f);
  fc.MutableBias().Set(1, -0.5f);
  fc.NotifyWeightsChanged();

  Tensor in(Shape{1, 3, 1, 1}, {1.0f, 1.0f, 1.0f});
  const Tensor out = fc.Forward({&in});
  ASSERT_EQ(out.GetShape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.At(0), 6.5f);
  EXPECT_FLOAT_EQ(out.At(1), 14.5f);
}

TEST(FcLayer, FlattensSpatialInput) {
  FcLayer fc("fc", 2 * 2 * 2, 1);
  auto w = fc.MutableWeights().Data();
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0f;
  fc.NotifyWeightsChanged();
  Tensor in(Shape{1, 2, 2, 2}, std::vector<float>(8, 1.0f));
  EXPECT_FLOAT_EQ(fc.Forward({&in}).At(0), 8.0f);
}

TEST(FcLayer, BatchRowsIndependent) {
  FcLayer fc("fc", 2, 2);
  auto w = fc.MutableWeights().Data();
  w[0] = 1.0f; w[1] = 0.0f; w[2] = 0.0f; w[3] = 1.0f;  // identity
  fc.NotifyWeightsChanged();
  Tensor in(Shape{2, 2, 1, 1}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor out = fc.Forward({&in});
  EXPECT_FLOAT_EQ(out.At(0), 1.0f);
  EXPECT_FLOAT_EQ(out.At(1), 2.0f);
  EXPECT_FLOAT_EQ(out.At(2), 3.0f);
  EXPECT_FLOAT_EQ(out.At(3), 4.0f);
}

TEST(FcLayer, SparsePathMatchesDense) {
  FcLayer fc("fc", 64, 32);
  Rng rng(11);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  fc.NotifyWeightsChanged();
  Tensor in(Shape{3, 64, 1, 1});
  in.FillGaussian(rng, 0.0f, 1.0f);
  pruning::MagnitudePruner pruner;
  pruner.Prune(fc, 0.85);  // density 0.15, below the measured CSR crossover
  ASSERT_TRUE(fc.UsesSparsePath());
  ASSERT_EQ(fc.Kernel(), SparseKernel::kCsr);
  const Tensor sparse_out = fc.Forward({&in});

  // The batch of 3 runs the one-shot batched SpMM path; compare against a
  // manual per-sample GEMV on the same pruned weights.
  const Tensor& w = fc.Weights();
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t o = 0; o < 32; ++o) {
      float acc = fc.MutableBias().At(o);
      for (std::int64_t i = 0; i < 64; ++i) {
        acc += w.At(o * 64 + i) * in.At(b * 64 + i);
      }
      EXPECT_NEAR(sparse_out.At(b * 32 + o), acc, 1e-3f);
    }
  }
}

TEST(FcLayer, BlockSparseBatchedPathMatchesDense) {
  FcLayer fc("fc", 64, 32);
  Rng rng(13);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  fc.NotifyWeightsChanged();
  Tensor in(Shape{3, 64, 1, 1});
  in.FillGaussian(rng, 0.0f, 1.0f);
  // Block-aligned neuron pruning keeps fill at 1.0 so the dispatch picks
  // BSR; the batch of 3 runs the batched block-sparse SpMM.
  pruning::L1FilterPruner pruner(/*block_aligned=*/true);
  pruner.Prune(fc, 0.5);
  ASSERT_TRUE(fc.UsesSparsePath());
  ASSERT_EQ(fc.Kernel(), SparseKernel::kBsr);
  const Tensor sparse_out = fc.Forward({&in});

  const Tensor& w = fc.Weights();
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t o = 0; o < 32; ++o) {
      float acc = fc.MutableBias().At(o);
      for (std::int64_t i = 0; i < 64; ++i) {
        acc += w.At(o * 64 + i) * in.At(b * 64 + i);
      }
      EXPECT_NEAR(sparse_out.At(b * 32 + o), acc, 1e-3f);
    }
  }
}

TEST(FcLayer, RejectsWrongFeatureCount) {
  FcLayer fc("fc", 10, 4);
  EXPECT_THROW(fc.OutputShape({Shape{1, 3, 2, 2}}), CheckError);
}

TEST(FcLayer, CloneIsDeep) {
  FcLayer fc("fc", 2, 2);
  fc.MutableWeights().Set(0, 5.0f);
  fc.NotifyWeightsChanged();
  auto clone = fc.Clone();
  fc.MutableWeights().Set(0, -1.0f);
  EXPECT_FLOAT_EQ(clone->Weights().At(0), 5.0f);
}

TEST(ReluLayer, ClampsNegatives) {
  ReluLayer relu("r");
  Tensor in(Shape{1, 4, 1, 1}, {-1.0f, 0.0f, 2.0f, -3.5f});
  const Tensor out = relu.Forward({&in});
  EXPECT_FLOAT_EQ(out.At(0), 0.0f);
  EXPECT_FLOAT_EQ(out.At(1), 0.0f);
  EXPECT_FLOAT_EQ(out.At(2), 2.0f);
  EXPECT_FLOAT_EQ(out.At(3), 0.0f);
}

TEST(SoftmaxLayer, RowsSumToOne) {
  SoftmaxLayer softmax("s");
  Tensor in(Shape{2, 5, 1, 1});
  Rng rng(3);
  in.FillGaussian(rng, 0.0f, 3.0f);
  const Tensor out = softmax.Forward({&in});
  for (std::int64_t b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 5; ++c) {
      const float v = out.At(b * 5 + c);
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxLayer, PreservesArgmaxOrder) {
  SoftmaxLayer softmax("s");
  Tensor in(Shape{1, 3, 1, 1}, {1.0f, 3.0f, 2.0f});
  const Tensor out = softmax.Forward({&in});
  EXPECT_GT(out.At(1), out.At(2));
  EXPECT_GT(out.At(2), out.At(0));
}

TEST(SoftmaxLayer, NumericallyStableOnLargeLogits) {
  SoftmaxLayer softmax("s");
  Tensor in(Shape{1, 2, 1, 1}, {1000.0f, 1001.0f});
  const Tensor out = softmax.Forward({&in});
  EXPECT_FALSE(std::isnan(out.At(0)));
  EXPECT_NEAR(out.At(0) + out.At(1), 1.0f, 1e-5f);
}

TEST(SoftmaxLayer, RejectsSpatialInput) {
  SoftmaxLayer softmax("s");
  EXPECT_THROW(softmax.OutputShape({Shape{1, 3, 2, 2}}), CheckError);
}

TEST(DropoutLayer, IdentityAtInference) {
  DropoutLayer dropout("d");
  Tensor in(Shape{1, 3, 1, 1}, {1.0f, -2.0f, 3.0f});
  const Tensor out = dropout.Forward({&in});
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(out.At(i), in.At(i));
}

TEST(WeightlessLayers, HaveNoWeights) {
  ReluLayer relu("r");
  EXPECT_FALSE(relu.HasWeights());
  EXPECT_THROW(relu.MutableWeights(), CheckError);
  EXPECT_THROW(relu.Weights(), CheckError);
  EXPECT_THROW(relu.MutableBias(), CheckError);
  EXPECT_DOUBLE_EQ(relu.WeightDensity(), 1.0);
}

}  // namespace
}  // namespace ccperf::nn
