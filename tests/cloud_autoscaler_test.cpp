#include "cloud/autoscaler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/density.h"
#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {
namespace {

class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        scaler_(serving_, "p2.xlarge"),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  /// Poisson epoch traces at per-epoch rates.
  std::vector<std::vector<double>> Traces(const std::vector<double>& rates,
                                          double epoch_s,
                                          std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<double>> traces;
    for (double rate : rates) {
      std::vector<double> trace;
      double t = 0.0;
      for (;;) {
        t += -std::log(1.0 - rng.NextDouble()) / rate;
        if (t > epoch_s) break;
        trace.push_back(t);
      }
      traces.push_back(std::move(trace));
    }
    return traces;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  Autoscaler scaler_;
  ModelProfile profile_;
  VariantPerf perf_;
};

TEST_F(AutoscalerTest, ScalesUpUnderRisingLoad) {
  // One p2.xlarge sustains ~40 img/s; ramp 10 -> 120 img/s over epochs.
  const auto traces = Traces({10, 30, 60, 120, 120, 120}, 300.0, 1);
  const AutoscaleResult result = scaler_.Run(
      traces, 300.0, perf_, {.target_utilization = 0.6, .max_instances = 8},
      {.max_batch = 128, .max_wait_s = 0.1});
  ASSERT_EQ(result.steps.size(), 6u);
  EXPECT_EQ(result.steps.front().instances, 1);
  EXPECT_GT(result.steps.back().instances, 3);
  // Once scaled, the fleet is stable again.
  EXPECT_TRUE(result.steps.back().report.stable);
}

TEST_F(AutoscalerTest, ScalesDownWhenLoadFalls) {
  const auto traces = Traces({120, 120, 15, 15, 15}, 300.0, 2);
  AutoscalePolicy policy{.target_utilization = 0.6, .max_instances = 8};
  const AutoscaleResult result = scaler_.Run(
      traces, 300.0, perf_, policy, {.max_batch = 128, .max_wait_s = 0.1});
  int peak = 0;
  for (const auto& s : result.steps) peak = std::max(peak, s.instances);
  EXPECT_GT(peak, result.steps.back().instances);
}

TEST_F(AutoscalerTest, ReactiveLagHurtsAtStepChange) {
  // The defining weakness of resource elasticity: the epoch where load
  // jumps is served by the old fleet.
  // Rate 2/s keeps a single GPU lightly loaded even with tiny
  // latency-driven batches (~0.1 s service each).
  const auto traces = Traces({2, 150, 150}, 300.0, 3);
  const AutoscaleResult result = scaler_.Run(
      traces, 300.0, perf_, {.target_utilization = 0.6, .max_instances = 8},
      {.max_batch = 128, .max_wait_s = 0.1});
  const auto& jump_epoch = result.steps[1];
  EXPECT_EQ(jump_epoch.instances, 1) << "lagging fleet at the jump";
  EXPECT_TRUE(!jump_epoch.report.stable ||
              jump_epoch.report.p99_latency_s > 5.0)
      << "the jump epoch must visibly suffer";
  EXPECT_GT(result.steps[2].instances, 2) << "recovery after the lag";
}

TEST_F(AutoscalerTest, CostAccumulatesPerEpoch) {
  const auto traces = Traces({2, 2}, 3600.0, 4);
  const AutoscaleResult result = scaler_.Run(
      traces, 3600.0, perf_, {.target_utilization = 0.6},
      {.max_batch = 128, .max_wait_s = 0.1});
  // Two epochs of one p2.xlarge at $0.90/h.
  EXPECT_NEAR(result.total_cost_usd.value(), 2 * 0.90, 1e-9);
}

TEST_F(AutoscalerTest, RespectsBounds) {
  const auto traces = Traces({500, 500, 500}, 200.0, 5);
  const AutoscaleResult result = scaler_.Run(
      traces, 200.0, perf_,
      {.target_utilization = 0.6, .min_instances = 2, .max_instances = 3},
      {.max_batch = 128, .max_wait_s = 0.1});
  for (const auto& s : result.steps) {
    EXPECT_GE(s.instances, 2);
    EXPECT_LE(s.instances, 3);
  }
}

TEST_F(AutoscalerTest, RejectsBadInputs) {
  const auto traces = Traces({10}, 100.0, 6);
  EXPECT_THROW((void)scaler_.Run({}, 100.0, perf_, {}, {}), CheckError);
  EXPECT_THROW((void)scaler_.Run(traces, 0.0, perf_, {}, {}), CheckError);
  EXPECT_THROW((void)scaler_.Run(traces, 100.0, perf_,
                                 {.target_utilization = 1.5}, {}),
               CheckError);
  EXPECT_THROW(
      (void)scaler_.Run(traces, 100.0, perf_,
                        {.min_instances = 5, .max_instances = 2}, {}),
      CheckError);
}

TEST_F(AutoscalerTest, RankFaultedPoliciesMatchesStandaloneRuns) {
  const auto traces = Traces({20, 60, 100, 100}, 120.0, 9);
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kCrash, 0, 150.0, 20.0, 1.0});
  const ServingPolicy serving_policy{
      .max_batch = 128, .max_wait_s = 0.1, .deadline_s = 3.0};
  const RetryPolicy retry{.max_retries = 2};
  const std::vector<AutoscalePolicy> policies = {
      {.target_utilization = 0.4, .max_instances = 8},
      {.target_utilization = 0.6, .max_instances = 8},
      {.target_utilization = 0.8, .max_instances = 8},
  };
  const PolicyRanking ranking = scaler_.RankFaultedPolicies(
      traces, 120.0, perf_, policies, serving_policy, retry, faults);
  ASSERT_EQ(ranking.results.size(), policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const AutoscaleResult alone = scaler_.RunFaulted(
        traces, 120.0, perf_, policies[i], serving_policy, retry, faults);
    EXPECT_EQ(ranking.results[i].total_cost_usd, alone.total_cost_usd)
        << "policy " << i << " must be bitwise identical to a solo run";
    EXPECT_EQ(ranking.results[i].slo_compliance, alone.slo_compliance) << i;
  }
  ASSERT_GE(ranking.best, 0);
  // The winner is the cheapest qualifying candidate.
  for (std::size_t i = 0; i < ranking.results.size(); ++i) {
    EXPECT_LE(
        ranking.results[static_cast<std::size_t>(ranking.best)]
            .total_cost_usd,
        ranking.results[i].total_cost_usd);
  }
}

TEST_F(AutoscalerTest, RankFaultedPoliciesHonorsSloFloor) {
  const auto traces = Traces({50, 50}, 120.0, 13);
  const std::vector<AutoscalePolicy> policies = {
      {.target_utilization = 0.6, .max_instances = 4}};
  // An unreachable floor disqualifies everything.
  const PolicyRanking none = scaler_.RankFaultedPolicies(
      traces, 120.0, perf_, policies,
      {.max_batch = 128, .max_wait_s = 0.1, .deadline_s = 0.11}, {}, {},
      /*min_slo_compliance=*/1.0);  // met only by a perfect run
  // With a zero floor there is always a winner.
  const PolicyRanking any = scaler_.RankFaultedPolicies(
      traces, 120.0, perf_, policies,
      {.max_batch = 128, .max_wait_s = 0.1}, {}, {});
  EXPECT_EQ(any.best, 0);
  EXPECT_EQ(none.results.size(), 1u);
  if (none.results[0].slo_compliance < 1.0) {
    EXPECT_EQ(none.best, -1);
  }
}

TEST_F(AutoscalerTest, RankFaultedPoliciesRethrowsLowestFailingIndex) {
  const auto traces = Traces({10}, 60.0, 3);
  const std::vector<AutoscalePolicy> policies = {
      {.target_utilization = 0.6},
      {.target_utilization = 1.5},  // invalid
      {.target_utilization = -2.0},  // invalid
  };
  try {
    (void)scaler_.RankFaultedPolicies(traces, 60.0, perf_, policies, {}, {},
                                      {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("policy 1"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)scaler_.RankFaultedPolicies(traces, 60.0, perf_, {},
                                                 {}, {}, {}),
               CheckError);
}

}  // namespace
}  // namespace ccperf::cloud
