#include "tensor/shape.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace ccperf {
namespace {

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.Rank(), 3u);
  EXPECT_EQ(s.Dim(0), 2);
  EXPECT_EQ(s.Dim(1), 3);
  EXPECT_EQ(s.Dim(2), 4);
}

TEST(Shape, NumElements) {
  EXPECT_EQ((Shape{2, 3, 4}).NumElements(), 24);
  EXPECT_EQ((Shape{}).NumElements(), 1);
  EXPECT_EQ((Shape{5, 0, 3}).NumElements(), 0);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.Stride(3), 1);
  EXPECT_EQ(s.Stride(2), 5);
  EXPECT_EQ(s.Stride(1), 20);
  EXPECT_EQ(s.Stride(0), 60);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ((Shape{}).ToString(), "[]");
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({-1, 2}), CheckError);
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.Dim(2), CheckError);
  EXPECT_THROW(s.Stride(5), CheckError);
}

TEST(Shape, VectorConstructor) {
  const Shape s(std::vector<std::int64_t>{7, 8});
  EXPECT_EQ(s.Dim(0), 7);
  EXPECT_EQ(s.Dim(1), 8);
}

}  // namespace
}  // namespace ccperf
