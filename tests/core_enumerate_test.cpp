// Tests of the architecture-space enumeration engine (core/enumerate.h):
// encode/decode inverses, metric-registry contracts, evaluator parity with
// CloudSimulator::Run / EstimateSpotRun / the no-checkpoint restart
// expectation, streamed-frontier equality with a materialize-everything
// oracle, block-size invariance, and bitwise parallel-vs-serial equality.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "cloud/checkpoint.h"
#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/pricing.h"
#include "cloud/resource_config.h"
#include "cloud/simulator.h"
#include "common/check.h"
#include "core/accuracy_model.h"
#include "core/enumerate.h"
#include "core/metrics.h"
#include "core/pareto.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {
namespace {

constexpr RatePerHour kRate{0.05};  // spot preemptions per instance-hour
constexpr Seconds kRestart{60.0};   // reprovisioning seconds per preemption

/// Small but fully heterogeneous space: every axis has >= 2 entries.
ArchitectureSpace SmallSpace(const cloud::ModelProfile& profile,
                             const CalibratedAccuracyModel& accuracy) {
  std::vector<pruning::PrunePlan> plans;
  plans.emplace_back();  // unpruned baseline
  plans.push_back(pruning::UniformPlan({"conv2", "conv3"}, 0.5));
  ArchitectureSpace space;
  space.AddVariants(BuildVariantSpecs(profile, accuracy, plans,
                                      /*include_int8=*/true));
  space.AddInstanceType("p2.xlarge");
  space.AddInstanceType("g3.8xlarge");
  space.SetCounts({1, 2, 3});
  space.SetBatches({0, 64});
  space.SetPurchaseOptions(
      {PurchaseOption::kOnDemand, PurchaseOption::kSpot});
  space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
  space.AddCheckpointOption(
      {.name = "periodic-300",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kPeriodic,
                  .interval_s = 300.0}});
  space.AddCheckpointOption(
      {.name = "warn",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kOnPreemptionWarning}});
  space.AddDegradationOption({.name = "none"});
  space.AddDegradationOption({.name = "skip-frames",
                              .recompute_speedup = 2.0,
                              .accuracy_factor = 0.95});
  return space;
}

struct Fixture {
  cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  cloud::CloudSimulator sim{catalog};
  cloud::ModelProfile profile = cloud::CaffeNetProfile();
  CalibratedAccuracyModel accuracy = CalibratedAccuracyModel::CaffeNet();
  ArchitectureSpace space = SmallSpace(profile, accuracy);
  ArchitectureEvaluator evaluator{sim, space, kRate, kRestart};
};

bool BitwiseEqual(const ArchMetrics& a, const ArchMetrics& b) {
  return std::memcmp(&a, &b, sizeof(ArchMetrics)) == 0;
}

// --- space -------------------------------------------------------------------

TEST(ArchitectureSpace, SizeIsAxisProduct) {
  Fixture f;
  // 4 variants x 2 types x 3 counts x 2 batches x 2 purchase x 3 ckpt x 2 degr
  EXPECT_EQ(f.space.Size(), 4u * 2 * 3 * 2 * 2 * 3 * 2);
}

TEST(ArchitectureSpace, EncodeDecodeRoundTripAllIds) {
  Fixture f;
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < f.space.Size(); ++id) {
    const AxisPoint p = f.space.Decode(id);
    EXPECT_EQ(f.space.Encode(p), id);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), f.space.Size());
  EXPECT_THROW((void)f.space.Decode(f.space.Size()), CheckError);
}

TEST(ArchitectureSpace, DescribeNamesEveryAxis) {
  Fixture f;
  AxisPoint p;
  p.variant = 1;  // nonpruned+int8 (int8 twin follows its float plan)
  p.type = 1;
  p.count = 2;
  p.batch = 1;
  p.purchase = 1;
  p.checkpoint = 1;
  p.degradation = 1;
  const std::string text = f.space.Describe(f.space.Encode(p));
  EXPECT_NE(text.find("nonpruned+int8"), std::string::npos) << text;
  EXPECT_NE(text.find("3xg3.8xlarge"), std::string::npos) << text;
  EXPECT_NE(text.find("batch=64"), std::string::npos) << text;
  EXPECT_NE(text.find("spot"), std::string::npos) << text;
  EXPECT_NE(text.find("ckpt=periodic-300"), std::string::npos) << text;
  EXPECT_NE(text.find("degr=skip-frames"), std::string::npos) << text;
}

TEST(ArchitectureSpace, ValidateRejectsEmptyAxes) {
  ArchitectureSpace space;
  EXPECT_THROW(space.Validate(), CheckError);
}

// --- metric registry ---------------------------------------------------------

TEST(MetricRegistryTest, StandardMetricsPresent) {
  const MetricRegistry& registry = MetricRegistry::Standard();
  for (const char* name :
       {"time_h", "cost_usd", "top1", "top5", "goodput", "interruption_risk",
        "tar", "car", "delivered_top1", "sdc_escape_rate",
        "detection_overhead"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_EQ(registry.All().size(), 11u);
  EXPECT_TRUE(registry.Find("cost_usd").lower_is_better);
  EXPECT_FALSE(registry.Find("top5").lower_is_better);
  EXPECT_FALSE(registry.Find("delivered_top1").lower_is_better);
  EXPECT_TRUE(registry.Find("sdc_escape_rate").lower_is_better);
  EXPECT_TRUE(registry.Find("detection_overhead").lower_is_better);
}

TEST(MetricRegistryTest, DuplicateRegistrationThrows) {
  MetricRegistry registry;
  const auto extract = [](const ArchMetrics& m) { return m.cost_usd.value(); };
  registry.Register("cost", "run cost", extract, true);
  EXPECT_THROW(registry.Register("cost", "again", extract, true), CheckError);
  EXPECT_THROW(registry.Register("", "anonymous", extract, true), CheckError);
  EXPECT_THROW(registry.Register("null", "no extractor", nullptr, true),
               CheckError);
}

TEST(MetricRegistryTest, UnknownMetricThrowsWithKnownNames) {
  try {
    (void)MetricRegistry::Standard().Find("latency");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cost_usd"), std::string::npos);
  }
}

TEST(MetricRegistryTest, ExtractorsReadTheRightFields) {
  ArchMetrics m;
  m.seconds = Seconds(7200.0);
  m.cost_usd = Usd(10.0);
  m.top1 = 0.5;
  m.top5 = 0.8;
  m.goodput = 0.9;
  m.interruption_risk = 0.1;
  const MetricRegistry& r = MetricRegistry::Standard();
  EXPECT_DOUBLE_EQ(r.Find("time_h").extract(m), 2.0);
  EXPECT_DOUBLE_EQ(r.Find("cost_usd").extract(m), 10.0);
  EXPECT_DOUBLE_EQ(r.Find("tar").extract(m),
                   TimeAccuracyRatio(Seconds(7200.0), 0.8));
  EXPECT_DOUBLE_EQ(r.Find("car").extract(m),
                   CostAccuracyRatio(Usd(10.0), 0.8));
}

// --- evaluator parity with the cloud models ----------------------------------

TEST(Evaluator, OnDemandAutoBatchMatchesSimulatorRun) {
  Fixture f;
  const std::int64_t images = 123'457;
  for (std::size_t v = 0; v < f.space.Variants().size(); ++v) {
    for (std::size_t ty = 0; ty < f.space.TypeNames().size(); ++ty) {
      for (std::size_t ct = 0; ct < f.space.Counts().size(); ++ct) {
        AxisPoint p;
        p.variant = v;
        p.type = ty;
        p.count = ct;
        p.batch = 0;     // auto
        p.purchase = 0;  // on-demand
        ArchMetrics m;
        ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), images, m));

        cloud::ResourceConfig config;
        config.Add(f.space.TypeNames()[ty], f.space.Counts()[ct]);
        const cloud::RunEstimate run =
            f.sim.Run(config, f.space.Variants()[v].perf, images);
        EXPECT_DOUBLE_EQ(m.seconds.value(), run.seconds.value());
        EXPECT_NEAR(m.cost_usd.value(), run.cost_usd.value(),
                    1e-9 * run.cost_usd.value());
        EXPECT_DOUBLE_EQ(m.goodput, 1.0);
        EXPECT_DOUBLE_EQ(m.interruption_risk, 0.0);
        EXPECT_DOUBLE_EQ(m.top1, f.space.Variants()[v].top1);
        EXPECT_DOUBLE_EQ(m.top5, f.space.Variants()[v].top5);
      }
    }
  }
}

TEST(Evaluator, SpotCheckpointedMatchesEstimateSpotRun) {
  Fixture f;
  const std::int64_t images = 1'000'000;
  AxisPoint p;
  p.type = 0;        // p2.xlarge
  p.count = 2;       // 3 instances
  p.batch = 0;       // auto (EstimateSpotRun prices the auto batch)
  p.purchase = 1;    // spot
  p.checkpoint = 1;  // periodic-300
  p.degradation = 0; // none
  ArchMetrics m;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), images, m));

  cloud::ResourceConfig config;
  config.Add("p2.xlarge", 3);
  const cloud::SpotRunEstimate est = cloud::EstimateSpotRun(
      f.sim, config, f.space.Variants()[0].perf, images,
      f.space.CheckpointOptions()[1].policy, kRate, kRestart);
  EXPECT_NEAR(m.seconds.value(), est.expected_seconds.value(),
              1e-9 * est.expected_seconds.value());
  EXPECT_NEAR(m.cost_usd.value(), est.expected_spot_cost_usd.value(),
              1e-9 * est.expected_spot_cost_usd.value());
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_GT(m.interruption_risk, 0.0);
  EXPECT_LT(m.interruption_risk, 1.0);
}

TEST(Evaluator, SpotWithoutCheckpointUsesRestartExpectation) {
  Fixture f;
  const std::int64_t images = 500'000;
  AxisPoint p;
  p.purchase = 1;    // spot
  p.checkpoint = 0;  // none
  ArchMetrics m;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), images, m));

  cloud::ResourceConfig config;
  config.Add("p2.xlarge", 1);
  const cloud::RunEstimate base =
      f.sim.Run(config, f.space.Variants()[0].perf, images);
  const Seconds expected =
      ExpectedSecondsUnderInterruption(base.seconds, kRate);
  EXPECT_DOUBLE_EQ(m.seconds.value(), expected.value());
  const auto& type = f.catalog.Find("p2.xlarge");
  EXPECT_DOUBLE_EQ(
      m.cost_usd.value(),
      cloud::ProratedCost(expected, type.spot_price_per_hour).value());
}

TEST(Evaluator, OnWarningTriggerBeatsPeriodicOnExpectedTime) {
  // The warning trigger snapshots right before each preemption, so only the
  // restart delay is lost — expected time must be strictly below the
  // half-interval-losing periodic policy on the same row.
  Fixture f;
  AxisPoint p;
  p.count = 2;
  p.purchase = 1;
  p.degradation = 0;
  p.checkpoint = 1;  // periodic-300
  ArchMetrics periodic;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 1'000'000, periodic));
  p.checkpoint = 2;  // on-warning
  ArchMetrics warn;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 1'000'000, warn));
  EXPECT_LT(warn.seconds.value(), periodic.seconds.value());
}

TEST(Evaluator, DegradationTradesAccuracyForTime) {
  Fixture f;
  AxisPoint p;
  p.count = 2;
  p.purchase = 1;    // spot
  p.checkpoint = 1;  // periodic-300 (nonzero recompute window)
  p.degradation = 0;
  ArchMetrics none;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 1'000'000, none));
  p.degradation = 1;  // skip-frames: 2x faster replay at 0.95 accuracy
  ArchMetrics degraded;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 1'000'000, degraded));
  EXPECT_LT(degraded.seconds.value(), none.seconds.value());
  EXPECT_LT(degraded.top5, none.top5);
  // Only the replayed fraction is degraded: the drop is bounded by the
  // full-degradation floor.
  EXPECT_GT(degraded.top5, none.top5 * 0.95);
}

TEST(Evaluator, DegradationIsIgnoredOnOnDemand) {
  Fixture f;
  AxisPoint p;
  p.purchase = 0;
  p.degradation = 0;
  ArchMetrics none;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 100'000, none));
  p.degradation = 1;
  ArchMetrics degraded;
  ASSERT_TRUE(f.evaluator.Evaluate(f.space.Encode(p), 100'000, degraded));
  EXPECT_TRUE(BitwiseEqual(none, degraded));
}

TEST(Evaluator, SpotWithoutMarketIsInfeasible) {
  // A custom catalog whose only type has no spot market: every spot row
  // must come back infeasible, every on-demand row feasible.
  cloud::InstanceCatalog catalog(
      {{"lab.box", "lab", 8, 1, 64.0, 12.0, UsdPerHour(2.0),
        cloud::GpuKind::kK80, UsdPerHour(0.0)}},
      {cloud::GpuSpec{}});
  cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const CalibratedAccuracyModel accuracy = CalibratedAccuracyModel::CaffeNet();
  std::vector<pruning::PrunePlan> plans;
  plans.emplace_back();
  ArchitectureSpace space;
  space.AddVariants(BuildVariantSpecs(profile, accuracy, plans, false));
  space.AddInstanceType("lab.box");
  space.SetCounts({1});
  space.SetBatches({0});
  space.SetPurchaseOptions(
      {PurchaseOption::kOnDemand, PurchaseOption::kSpot});
  space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
  space.AddDegradationOption({.name = "none"});
  const ArchitectureEvaluator evaluator(sim, space, kRate, kRestart);

  ArchMetrics m;
  AxisPoint p;
  p.purchase = 0;
  EXPECT_TRUE(evaluator.Evaluate(space.Encode(p), 1000, m));
  p.purchase = 1;
  EXPECT_FALSE(evaluator.Evaluate(space.Encode(p), 1000, m));
}

// --- streamed enumeration ----------------------------------------------------

/// Materialize-everything oracle: evaluate every id, apply the feasibility
/// filter, then run the O(n²) frontier over the survivors.
std::vector<std::uint64_t> OracleFrontier(
    const ArchitectureEvaluator& evaluator,
    const EnumerationOptions& options) {
  std::vector<std::uint64_t> ids;
  std::vector<double> t, c, a;
  for (std::uint64_t id = 0; id < evaluator.Space().Size(); ++id) {
    ArchMetrics m;
    if (!evaluator.Evaluate(id, options.images, m)) continue;
    if (m.seconds > options.deadline_s || m.cost_usd > options.budget_usd) {
      continue;
    }
    ids.push_back(id);
    t.push_back(m.seconds.value());
    c.push_back(m.cost_usd.value());
    a.push_back(options.use_top5 ? m.top5 : m.top1);
  }
  std::vector<std::uint64_t> frontier;
  for (std::size_t idx : ParetoFrontier3(t, c, a)) {
    frontier.push_back(ids[idx]);
  }
  return frontier;
}

TEST(EnumerateFrontierTest, MatchesMaterializedOracle) {
  Fixture f;
  for (const bool use_top5 : {true, false}) {
    EnumerationOptions options;
    options.images = 250'000;
    options.block = 37;  // force many compaction rounds
    options.use_top5 = use_top5;
    const EnumerationResult result = EnumerateFrontier(f.evaluator, options);
    std::vector<std::uint64_t> got;
    for (const auto& point : result.frontier) got.push_back(point.id);
    EXPECT_EQ(got, OracleFrontier(f.evaluator, options)) << use_top5;
    EXPECT_EQ(result.evaluated, f.space.Size());
    EXPECT_GE(result.feasible, result.frontier.size());
  }
}

TEST(EnumerateFrontierTest, DeadlineAndBudgetFilter) {
  Fixture f;
  EnumerationOptions options;
  options.images = 250'000;
  options.deadline_s = Seconds(2.0 * 3600.0);
  options.budget_usd = Usd(5.0);
  const EnumerationResult result = EnumerateFrontier(f.evaluator, options);
  EXPECT_LT(result.feasible, f.space.Size());
  for (const auto& point : result.frontier) {
    EXPECT_LE(point.metrics.seconds, options.deadline_s);
    EXPECT_LE(point.metrics.cost_usd, options.budget_usd);
  }
  std::vector<std::uint64_t> got;
  for (const auto& point : result.frontier) got.push_back(point.id);
  EXPECT_EQ(got, OracleFrontier(f.evaluator, options));
}

TEST(EnumerateFrontierTest, BlockSizeInvariant) {
  Fixture f;
  EnumerationOptions options;
  options.images = 250'000;
  options.block = 1;
  const EnumerationResult one = EnumerateFrontier(f.evaluator, options);
  options.block = 97;
  const EnumerationResult some = EnumerateFrontier(f.evaluator, options);
  options.block = 1 << 20;  // whole space in one block
  const EnumerationResult all = EnumerateFrontier(f.evaluator, options);
  ASSERT_EQ(one.frontier.size(), all.frontier.size());
  ASSERT_EQ(some.frontier.size(), all.frontier.size());
  for (std::size_t i = 0; i < all.frontier.size(); ++i) {
    EXPECT_EQ(one.frontier[i].id, all.frontier[i].id);
    EXPECT_EQ(some.frontier[i].id, all.frontier[i].id);
    EXPECT_TRUE(BitwiseEqual(one.frontier[i].metrics, all.frontier[i].metrics));
    EXPECT_TRUE(
        BitwiseEqual(some.frontier[i].metrics, all.frontier[i].metrics));
  }
  // Streaming keeps the candidate set near O(frontier + block): with
  // block=97 the high-water mark is bounded by peak frontier + block.
  EXPECT_LE(some.peak_candidates, all.peak_candidates + 97);
}

TEST(EnumerateFrontierTest, ParallelBitwiseEqualsSerial) {
  Fixture f;
  EnumerationOptions options;
  options.images = 250'000;
  options.block = 64;
  options.serial = true;
  const EnumerationResult serial = EnumerateFrontier(f.evaluator, options);
  options.serial = false;
  const EnumerationResult parallel = EnumerateFrontier(f.evaluator, options);
  ASSERT_EQ(serial.frontier.size(), parallel.frontier.size());
  for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
    EXPECT_EQ(serial.frontier[i].id, parallel.frontier[i].id);
    EXPECT_TRUE(BitwiseEqual(serial.frontier[i].metrics,
                             parallel.frontier[i].metrics));
  }
  EXPECT_EQ(serial.evaluated, parallel.evaluated);
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.peak_candidates, parallel.peak_candidates);
}

TEST(EnumerateFrontierTest, FrontierPointsAreMutuallyNonDominated) {
  Fixture f;
  EnumerationOptions options;
  options.images = 250'000;
  const EnumerationResult result = EnumerateFrontier(f.evaluator, options);
  ASSERT_FALSE(result.frontier.empty());
  for (const auto& x : result.frontier) {
    for (const auto& y : result.frontier) {
      if (x.id == y.id) continue;
      EXPECT_FALSE(Dominates3(
          x.metrics.seconds.value(), x.metrics.cost_usd.value(),
          x.metrics.top5, y.metrics.seconds.value(),
          y.metrics.cost_usd.value(), y.metrics.top5));
    }
  }
}

TEST(BuildVariantSpecsTest, Int8TwinsFollowTheirFloatPlans) {
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const CalibratedAccuracyModel accuracy = CalibratedAccuracyModel::CaffeNet();
  std::vector<pruning::PrunePlan> plans;
  plans.emplace_back();
  const auto specs = BuildVariantSpecs(profile, accuracy, plans, true);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].label, "nonpruned");
  EXPECT_EQ(specs[1].label, "nonpruned+int8");
  // Quantization costs accuracy and buys time.
  EXPECT_LT(specs[1].top5, specs[0].top5);
  EXPECT_LT(specs[1].perf.ref_seconds_per_image.value(),
            specs[0].perf.ref_seconds_per_image.value());
}

}  // namespace
}  // namespace ccperf::core
