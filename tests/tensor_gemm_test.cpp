#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf {
namespace {

std::vector<float> RandomMatrix(Rng& rng, std::int64_t n) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = rng.NextFloat(-1.0f, 1.0f);
  return m;
}

TEST(Gemm, TwoByTwoHandComputed) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4);
  Gemm(2, 2, 2, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, IdentityLeavesMatrixUnchanged) {
  constexpr std::int64_t n = 16;
  std::vector<float> eye(n * n, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  Rng rng(3);
  const auto b = RandomMatrix(rng, n * n);
  std::vector<float> c(n * n);
  Gemm(n, n, n, eye, b, c);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(Gemm, ZeroKGivesZeroMatrix) {
  std::vector<float> c(6, 99.0f);
  Gemm(2, 3, 0, {}, {}, c);
  for (float v : c) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Gemm, EmptyOutputOk) {
  std::vector<float> c;
  Gemm(0, 0, 5, {}, {}, c);
  SUCCEED();
}

TEST(Gemm, RejectsMismatchedSizes) {
  std::vector<float> a(4), b(4), c(3);
  EXPECT_THROW(Gemm(2, 2, 2, a, b, c), CheckError);
}

struct GemmShape {
  std::int64_t m, n, k;
};

class GemmMatchesNaive : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmMatchesNaive, RandomMatrices) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k));
  const auto a = RandomMatrix(rng, m * k);
  const auto b = RandomMatrix(rng, k * n);
  std::vector<float> c_fast(static_cast<std::size_t>(m * n));
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  Gemm(m, n, k, a, b, c_fast);
  NaiveGemm(m, n, k, a, b, c_ref);
  for (std::size_t i = 0; i < c_fast.size(); ++i) {
    EXPECT_NEAR(c_fast[i], c_ref[i], 1e-3f) << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmMatchesNaive,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 7, 3},
                      GemmShape{5, 1, 9}, GemmShape{8, 8, 8},
                      GemmShape{33, 65, 17}, GemmShape{64, 256, 64},
                      GemmShape{100, 3, 300}, GemmShape{3, 100, 1},
                      GemmShape{129, 31, 129}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "k" + std::to_string(info.param.k);
    });

TEST(Gemm, SkipsZerosWithoutChangingResult) {
  // The kernel short-circuits zero A entries; result must equal naive.
  constexpr std::int64_t m = 17, n = 23, k = 40;
  Rng rng(77);
  auto a = RandomMatrix(rng, m * k);
  for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  const auto b = RandomMatrix(rng, k * n);
  std::vector<float> c_fast(m * n), c_ref(m * n);
  Gemm(m, n, k, a, b, c_fast);
  NaiveGemm(m, n, k, a, b, c_ref);
  for (std::size_t i = 0; i < c_fast.size(); ++i) {
    EXPECT_NEAR(c_fast[i], c_ref[i], 1e-3f);
  }
}

TEST(Gemv, MatchesNaiveGemm) {
  constexpr std::int64_t m = 37, k = 53;
  Rng rng(5);
  const auto a = RandomMatrix(rng, m * k);
  const auto x = RandomMatrix(rng, k);
  std::vector<float> y(m), y_ref(m);
  Gemv(m, k, a, x, y);
  NaiveGemm(m, 1, k, a, x, y_ref);
  for (std::int64_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-4f);
}

TEST(Gemv, RejectsBadSizes) {
  std::vector<float> a(6), x(2), y(2);
  EXPECT_THROW(Gemv(2, 3, a, x, y), CheckError);
}

}  // namespace
}  // namespace ccperf
