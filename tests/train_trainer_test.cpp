#include "train/trainer.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/activation_layers.h"
#include "nn/fc_layer.h"
#include "nn/lrn_layer.h"
#include "nn/model_zoo.h"
#include "nn/weights.h"
#include "pruning/variant_generator.h"

namespace ccperf::train {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest()
      : dataset_(Shape{3, 16, 16}, 8, 512, 5, /*noise_stddev=*/0.25f) {}

  nn::Network FreshNet(std::uint64_t seed = 99) {
    nn::ModelConfig config;
    config.weight_seed = seed;
    config.num_classes = 8;
    return nn::BuildTinyCnn(config);
  }

  data::SyntheticImageDataset dataset_;
};

TEST_F(TrainerTest, LossDecreasesOverSteps) {
  nn::Network net = FreshNet();
  SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
  const Tensor images = dataset_.Batch(0, 64);
  const auto labels = dataset_.BatchLabels(0, 64);
  const double initial = trainer.EvalLoss(images, labels);
  for (int step = 0; step < 30; ++step) {
    (void)trainer.TrainBatch(images, labels);
  }
  const double trained = trainer.EvalLoss(images, labels);
  EXPECT_LT(trained, initial * 0.5) << initial << " -> " << trained;
}

TEST_F(TrainerTest, LearnsAboveChanceOnHeldOutData) {
  nn::Network net = FreshNet();
  SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
  // Train on the first 384 images, evaluate on the last 128.
  (void)trainer.Fit(dataset_, /*train_size=*/384, /*batch=*/32, /*epochs=*/6);
  const double top1 = TopKAccuracy(net, dataset_, 384, 128, 1);
  // Chance is 1/8 = 12.5 %; the class signatures are strong, so a trained
  // net should be far above it.
  EXPECT_GT(top1, 0.5) << "held-out top1 " << top1;
  const double untrained_top1 = TopKAccuracy(FreshNet(1234), dataset_, 384,
                                             128, 1);
  EXPECT_GT(top1, untrained_top1 + 0.2);
}

TEST_F(TrainerTest, FitReturnsFinalEpochLoss) {
  nn::Network net = FreshNet();
  SgdTrainer trainer(net);
  const double first = trainer.Fit(dataset_, 128, 32, 1);
  const double later = trainer.Fit(dataset_, 128, 32, 3);
  EXPECT_LT(later, first);
}

TEST_F(TrainerTest, EvalLossDoesNotTrain) {
  nn::Network net = FreshNet();
  SgdTrainer trainer(net);
  const Tensor images = dataset_.Batch(0, 16);
  const auto labels = dataset_.BatchLabels(0, 16);
  const double a = trainer.EvalLoss(images, labels);
  const double b = trainer.EvalLoss(images, labels);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(TrainerTest, RejectsNetworksWithoutSoftmaxHead) {
  nn::Network net("headless", Shape{3, 16, 16});
  net.Add(std::make_unique<nn::ReluLayer>("r"));
  EXPECT_THROW(SgdTrainer trainer(net), CheckError);
}

TEST_F(TrainerTest, TrainsThroughLrn) {
  // All layer kinds are differentiable, LRN included: a CaffeNet-style
  // topology with normalization trains.
  nn::Network net("lrnnet", Shape{3, 8, 8});
  net.Add(std::make_unique<nn::LrnLayer>("norm"));
  net.Add(std::make_unique<nn::FcLayer>("fc", 3 * 8 * 8, 8));
  net.Add(std::make_unique<nn::SoftmaxLayer>("prob"));
  nn::InitializePretrainedWeights(net, 3);
  SgdTrainer trainer(net, {.learning_rate = 0.1f});
  const data::SyntheticImageDataset small(Shape{3, 8, 8}, 8, 128, 4, 0.2f);
  const Tensor images = small.Batch(0, 32);
  const auto labels = small.BatchLabels(0, 32);
  const double before = trainer.EvalLoss(images, labels);
  for (int step = 0; step < 20; ++step) (void)trainer.TrainBatch(images, labels);
  EXPECT_LT(trainer.EvalLoss(images, labels), before * 0.8);
}

TEST_F(TrainerTest, RejectsBadLabelsAndConfig) {
  nn::Network net = FreshNet();
  SgdTrainer trainer(net);
  const Tensor images = dataset_.Batch(0, 4);
  std::vector<std::int64_t> bad_labels{0, 1, 99, 2};
  EXPECT_THROW((void)trainer.TrainBatch(images, bad_labels), CheckError);
  std::vector<std::int64_t> short_labels{0, 1};
  EXPECT_THROW((void)trainer.TrainBatch(images, short_labels), CheckError);
  nn::Network net2 = FreshNet();
  EXPECT_THROW(SgdTrainer(net2, {.learning_rate = 0.0f}), CheckError);
  EXPECT_THROW(SgdTrainer(net2, {.momentum = 1.0f}), CheckError);
}

TEST_F(TrainerTest, TrainedModelShowsRealPruningSweetSpot) {
  // The paper's premise on a genuinely trained model: true (not teacher-
  // proxied) accuracy stays near baseline for light pruning and collapses
  // for heavy pruning.
  nn::Network net = FreshNet();
  SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
  (void)trainer.Fit(dataset_, 384, 32, 6);
  const double base_top1 = TopKAccuracy(net, dataset_, 384, 128, 1);
  ASSERT_GT(base_top1, 0.5);

  const auto layers = net.WeightedLayerNames();
  const nn::Network light = pruning::ApplyPlan(
      net, pruning::UniformPlan(layers, 0.25,
                                pruning::PrunerFamily::kMagnitude));
  const nn::Network heavy = pruning::ApplyPlan(
      net, pruning::UniformPlan(layers, 0.92,
                                pruning::PrunerFamily::kMagnitude));
  const double light_top1 = TopKAccuracy(light, dataset_, 384, 128, 1);
  const double heavy_top1 = TopKAccuracy(heavy, dataset_, 384, 128, 1);
  EXPECT_GT(light_top1, base_top1 - 0.15) << "light pruning nearly free";
  EXPECT_LT(heavy_top1, base_top1 - 0.2) << "heavy pruning collapses";
}

TEST_F(TrainerTest, PruneThenRetrainRecoversAccuracy) {
  // The Li et al. protocol: heavy pruning hurts, sparsity-preserving
  // fine-tuning recovers most of the loss without changing density.
  nn::Network net = FreshNet();
  {
    SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
    (void)trainer.Fit(dataset_, 384, 32, 6);
  }
  const double base_top1 = TopKAccuracy(net, dataset_, 384, 128, 1);
  ASSERT_GT(base_top1, 0.6);

  pruning::ApplyPlanInPlace(
      net, pruning::UniformPlan(net.WeightedLayerNames(), 0.8,
                                pruning::PrunerFamily::kMagnitude));
  const double pruned_top1 = TopKAccuracy(net, dataset_, 384, 128, 1);
  const double density_before = net.FindLayer("conv2")->WeightDensity();

  SgdTrainer finetune(net, {.learning_rate = 0.02f,
                            .momentum = 0.9f,
                            .preserve_sparsity = true});
  (void)finetune.Fit(dataset_, 384, 32, 4);
  const double retrained_top1 = TopKAccuracy(net, dataset_, 384, 128, 1);
  const double density_after = net.FindLayer("conv2")->WeightDensity();

  EXPECT_NEAR(density_after, density_before, 1e-9)
      << "fine-tuning must not resurrect pruned weights";
  EXPECT_GE(retrained_top1, pruned_top1)
      << "retraining must not hurt (" << pruned_top1 << " -> "
      << retrained_top1 << ")";
  EXPECT_GT(retrained_top1, base_top1 - 0.15);
}

TEST_F(TrainerTest, WithoutPreserveSparsityDensityGrowsBack) {
  nn::Network net = FreshNet();
  pruning::ApplyPlanInPlace(
      net, pruning::UniformPlan(net.WeightedLayerNames(), 0.8,
                                pruning::PrunerFamily::kMagnitude));
  SgdTrainer trainer(net, {.learning_rate = 0.05f});
  const Tensor images = dataset_.Batch(0, 32);
  const auto labels = dataset_.BatchLabels(0, 32);
  (void)trainer.TrainBatch(images, labels);
  EXPECT_GT(net.FindLayer("conv2")->WeightDensity(), 0.5)
      << "plain SGD writes into pruned slots";
}

}  // namespace
}  // namespace ccperf::train
