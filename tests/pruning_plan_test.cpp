#include "pruning/prune_plan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "pruning/sparsity.h"
#include "pruning/variant_generator.h"

namespace ccperf::pruning {
namespace {

TEST(PrunePlan, RatioForUnlistedLayerIsZero) {
  PrunePlan plan;
  plan.layer_ratios["conv1"] = 0.3;
  EXPECT_DOUBLE_EQ(plan.RatioFor("conv1"), 0.3);
  EXPECT_DOUBLE_EQ(plan.RatioFor("conv2"), 0.0);
}

TEST(PrunePlan, LabelFormatting) {
  PrunePlan plan;
  EXPECT_EQ(plan.Label(), "nonpruned");
  plan.layer_ratios["conv2"] = 0.5;
  plan.layer_ratios["conv1"] = 0.3;
  plan.layer_ratios["conv3"] = 0.0;  // zero entries are omitted
  EXPECT_EQ(plan.Label(), "conv1@30+conv2@50");
}

TEST(PrunePlan, IsNoop) {
  PrunePlan plan;
  EXPECT_TRUE(plan.IsNoop());
  plan.layer_ratios["x"] = 0.0;
  EXPECT_TRUE(plan.IsNoop());
  plan.layer_ratios["x"] = 0.1;
  EXPECT_FALSE(plan.IsNoop());
}

TEST(PrunePlan, MeanRatio) {
  PrunePlan plan;
  EXPECT_DOUBLE_EQ(plan.MeanRatio(), 0.0);
  plan.layer_ratios["a"] = 0.2;
  plan.layer_ratios["b"] = 0.6;
  EXPECT_DOUBLE_EQ(plan.MeanRatio(), 0.4);
}

TEST(PrunePlan, UniformPlanListsAllLayers) {
  const PrunePlan plan = UniformPlan({"a", "b", "c"}, 0.5);
  EXPECT_EQ(plan.layer_ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.RatioFor("b"), 0.5);
}

TEST(ApplyPlan, PrunesNamedLayersOnly) {
  nn::ModelConfig config;
  config.weight_seed = 9;
  const nn::Network base = nn::BuildTinyCnn(config);
  PrunePlan plan;
  plan.family = PrunerFamily::kMagnitude;
  plan.layer_ratios["conv2"] = 0.5;
  const nn::Network variant = ApplyPlan(base, plan);
  EXPECT_NEAR(variant.FindLayer("conv2")->WeightDensity(), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(variant.FindLayer("conv1")->WeightDensity(), 1.0);
  // Base untouched.
  EXPECT_DOUBLE_EQ(base.FindLayer("conv2")->WeightDensity(), 1.0);
}

TEST(ApplyPlan, UnknownLayerThrows) {
  nn::ModelConfig config;
  config.weight_seed = 9;
  nn::Network net = nn::BuildTinyCnn(config);
  PrunePlan plan;
  plan.layer_ratios["ghost"] = 0.5;
  EXPECT_THROW(ApplyPlanInPlace(net, plan), CheckError);
}

TEST(ApplyPlan, SparsityReportReflectsPlan) {
  nn::ModelConfig config;
  config.weight_seed = 10;
  const nn::Network base = nn::BuildTinyCnn(config);
  const SparsityReport before = AnalyzeSparsity(base);
  EXPECT_DOUBLE_EQ(before.OverallDensity(), 1.0);

  const nn::Network variant =
      ApplyPlan(base, UniformPlan({"conv1", "conv2", "fc1", "fc2"}, 0.5,
                                  PrunerFamily::kMagnitude));
  const SparsityReport after = AnalyzeSparsity(variant);
  EXPECT_NEAR(after.OverallDensity(), 0.5, 0.02);
  EXPECT_EQ(after.layers.size(), 4u);
  EXPECT_EQ(after.total_parameters, before.total_parameters);
}

TEST(VariantGenerator, SingleLayerSweep) {
  const auto plans = SingleLayerSweep("conv1", {0.0, 0.3, 0.6});
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_TRUE(plans[0].IsNoop());
  EXPECT_DOUBLE_EQ(plans[2].RatioFor("conv1"), 0.6);
}

TEST(VariantGenerator, CartesianSweepCountsAndCoverage) {
  const auto plans = CartesianSweep({"conv1", "conv2"},
                                    {{0.0, 0.1, 0.2}, {0.0, 0.5}});
  EXPECT_EQ(plans.size(), 6u);
  std::set<std::string> labels;
  for (const auto& p : plans) labels.insert(p.Label());
  EXPECT_EQ(labels.size(), 6u);
  EXPECT_TRUE(labels.contains("conv1@20+conv2@50"));
  EXPECT_TRUE(labels.contains("nonpruned"));
}

TEST(VariantGenerator, CartesianRejectsMismatchedGrids) {
  EXPECT_THROW(CartesianSweep({"a", "b"}, {{0.1}}), CheckError);
  EXPECT_THROW(CartesianSweep({"a"}, {{}}), CheckError);
}

TEST(VariantGenerator, RandomVariantsAreDistinctAndSeeded) {
  Rng rng1(42), rng2(42);
  const auto a = RandomVariants({"conv1", "conv2", "conv3"}, 60, 0.9, 0.1,
                                rng1);
  const auto b = RandomVariants({"conv1", "conv2", "conv3"}, 60, 0.9, 0.1,
                                rng2);
  ASSERT_EQ(a.size(), 60u);
  EXPECT_TRUE(a[0].IsNoop()) << "baseline must come first";
  std::set<std::string> labels;
  for (const auto& p : a) labels.insert(p.Label());
  EXPECT_EQ(labels.size(), 60u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Label(), b[i].Label());
  }
}

TEST(VariantGenerator, RandomVariantsRespectMaxRatio) {
  Rng rng(7);
  const auto plans = RandomVariants({"conv1"}, 7, 0.6, 0.1, rng);
  for (const auto& p : plans) {
    EXPECT_LE(p.RatioFor("conv1"), 0.6);
  }
}

TEST(VariantGenerator, RandomVariantsImpossibleCountThrows) {
  Rng rng(7);
  // Only 3 distinct plans exist on a {0, 0.1, 0.2} grid for one layer.
  EXPECT_THROW(RandomVariants({"conv1"}, 10, 0.2, 0.1, rng), CheckError);
}

TEST(PrunerFamily, Names) {
  EXPECT_STREQ(PrunerFamilyName(PrunerFamily::kMagnitude), "magnitude");
  EXPECT_STREQ(PrunerFamilyName(PrunerFamily::kL1Filter), "l1-filter");
}

}  // namespace
}  // namespace ccperf::pruning
