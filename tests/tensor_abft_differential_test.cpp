// Differential harness for the ABFT-checksummed GEMM paths (tensor/abft.h,
// GemmInt8Abft in tensor/quant.h). Four contracts:
//
//  1. Zero false positives: over the full ~200-sample seeded shape sweep,
//     clean runs must verify ok (the derived tolerance absorbs all float
//     rounding; the int8 check is exact so a clean mismatch is impossible).
//  2. Bitwise transparency: GemmAbftCompute's C must equal GemmPacked's C
//     byte-for-byte — the checksum row rides along without perturbing the
//     product — and GemmInt8Abft's C must equal GemmInt8's.
//  3. Coverage: seeded single-element corruptions (packed-weight bit flips
//     via CorruptionInjector, output bit flips in the detectable range)
//     must be detected at >= 99% across the sweep. The int8 path verifies
//     the exact int32 image, so there every injected flip must be caught.
//  4. Determinism: C, the checksum row, and the verification verdict are
//     bitwise identical between the parallel pool and ScopedSerial.
//
// Misses the float tolerance cannot avoid in principle — flips whose
// numeric effect is below the rounding noise of a k-deep accumulation —
// are exactly why CorruptionInjector defaults to bits [20, 31]; the
// coverage gate (99%, not 100%) leaves room for the rare near-zero element
// whose high-mantissa flip is still sub-noise.
#include "tensor/abft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "tensor/corruption.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

namespace ccperf {
namespace {

struct ShapeSample {
  std::int64_t m, n, k;
};

std::vector<float> RandomMatrix(Rng& rng, std::int64_t rows,
                                std::int64_t cols) {
  std::vector<float> v(static_cast<std::size_t>(rows * cols));
  for (auto& x : v) x = rng.NextFloat(-1.0f, 1.0f);
  return v;
}

/// ~200-sample schedule mirroring the other differential tests: degenerate
/// extents, microkernel tile straddles (mr = 6, nr <= 32, kc = 256),
/// primes, then seeded random fill.
std::vector<ShapeSample> ShapeSchedule(bool include_degenerate) {
  std::vector<ShapeSample> samples;
  if (include_degenerate) {
    for (std::int64_t m : {0, 1, 2}) {
      for (std::int64_t n : {0, 1, 2}) {
        for (std::int64_t k : {0, 1, 2}) samples.push_back({m, n, k});
      }
    }
  }
  for (std::int64_t m : {5, 6, 7, 11, 12, 13}) {
    for (std::int64_t n : {31, 32, 33}) samples.push_back({m, n, 40});
  }
  for (std::int64_t n : {63, 64, 65}) samples.push_back({9, n, 17});
  for (std::int64_t k :
       {3, 4, 5, 6, 7, 253, 254, 255, 256, 257, 258, 259, 511, 513}) {
    samples.push_back({7, 33, k});
  }
  for (std::int64_t m : {13, 29}) {
    for (std::int64_t n : {37, 101}) {
      for (std::int64_t k : {23, 127}) samples.push_back({m, n, k});
    }
  }
  Rng rng(0xAB47u);
  while (samples.size() < 200) {
    samples.push_back({static_cast<std::int64_t>(rng.NextIndex(64)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(96)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(280)) + 1});
  }
  return samples;
}

TEST(AbftDifferential, CleanRunsVerifyOkAndMatchGemmPackedBitwise) {
  const auto samples = ShapeSchedule(/*include_degenerate=*/true);
  ASSERT_GE(samples.size(), 200u);
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto [m, n, k] = samples[s];
    Rng rng(0xFACADEu + s);
    const auto a = RandomMatrix(rng, m, k);
    const auto b = RandomMatrix(rng, k, n);
    const AbftPackedA pack = AbftPackA(m, k, a);
    std::vector<float> c(static_cast<std::size_t>(m * n), -3.0f);
    std::vector<float> chk(static_cast<std::size_t>(n), -5.0f);
    GemmAbftCompute(pack, n, b, c, chk);
    const AbftCheck check = AbftVerify(pack, n, b, c, chk);
    ASSERT_TRUE(check.ok) << "false positive at sample " << s << " (m=" << m
                          << " n=" << n << " k=" << k
                          << "): max_ratio=" << check.max_ratio
                          << " first_bad=" << check.first_bad_column;
    EXPECT_EQ(0, check.bad_columns);
    // Clean ratios should sit well below 1, not graze the tolerance.
    EXPECT_LT(check.max_ratio, 0.5) << "sample " << s;
    // Bitwise transparency against the unaugmented kernel.
    std::vector<float> c_plain(static_cast<std::size_t>(m * n), 3.0f);
    GemmPacked(PackA(m, k, a), n, b, c_plain);
    if (m > 0 && n > 0) {
      ASSERT_EQ(0, std::memcmp(c.data(), c_plain.data(),
                               c.size() * sizeof(float)))
          << "sample " << s;
    }
  }
}

TEST(AbftDifferential, SeededCorruptionsDetectedAtHighCoverage) {
  const auto samples = ShapeSchedule(/*include_degenerate=*/false);
  std::int64_t trials = 0;
  std::int64_t detected = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto [m, n, k] = samples[s];
    Rng rng(0xBADC0DEu + s);
    const auto a = RandomMatrix(rng, m, k);
    const auto b = RandomMatrix(rng, k, n);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    std::vector<float> chk(static_cast<std::size_t>(n));

    // Direction 1: corrupt the packed weights, then compute + verify.
    {
      AbftPackedA pack = AbftPackA(m, k, a);
      CorruptionInjector injector(0x5EED0000u + s);
      injector.CorruptWeights(pack);
      GemmAbftCompute(pack, n, b, c, chk);
      ++trials;
      if (!AbftVerify(pack, n, b, c, chk).ok) ++detected;
    }
    // Direction 2: clean compute, corrupt one output element, verify.
    {
      const AbftPackedA pack = AbftPackA(m, k, a);
      GemmAbftCompute(pack, n, b, c, chk);
      CorruptionInjector injector(0x5EED1000u + s);
      injector.CorruptOutput(c, m, n);
      ++trials;
      if (!AbftVerify(pack, n, b, c, chk).ok) ++detected;
    }
  }
  ASSERT_GE(trials, 300);
  const double coverage =
      static_cast<double>(detected) / static_cast<double>(trials);
  EXPECT_GE(coverage, 0.99) << detected << "/" << trials << " detected";
}

TEST(AbftDifferential, Int8CleanOkBitwiseAndEveryInjectedFlipDetected) {
  const auto samples = ShapeSchedule(/*include_degenerate=*/false);
  std::int64_t weight_trials = 0;
  std::int64_t weight_detected = 0;
  for (std::size_t s = 0; s < samples.size(); s += 4) {
    const auto [m, n, k] = samples[s];
    Rng rng(0x1A7u + s);
    const auto a = RandomMatrix(rng, m, k);
    const auto b = RandomMatrix(rng, k, n);
    std::vector<float> c(static_cast<std::size_t>(m * n), -3.0f);
    std::vector<float> c_plain(static_cast<std::size_t>(m * n), 3.0f);

    // Clean: exact check passes and C is bitwise GemmInt8's.
    const QuantizedPackedA pack = QuantizePackA(m, k, a);
    const AbftCheck clean = GemmInt8Abft(pack, n, b, c);
    ASSERT_TRUE(clean.ok) << "int8 false positive at sample " << s;
    EXPECT_EQ(0.0, clean.max_ratio);
    GemmInt8(pack, n, b, c_plain);
    ASSERT_EQ(0,
              std::memcmp(c.data(), c_plain.data(), c.size() * sizeof(float)))
        << "sample " << s;

    // Output flips: the int32 image check is exact, so every bit position
    // must be caught.
    Rng pick(0xF11Bu + s);
    for (int bit : {0, 7, 19, 31}) {
      const std::int64_t element =
          static_cast<std::int64_t>(pick.NextIndex(
              static_cast<std::uint64_t>(m * n)));
      const AbftCheck hit =
          GemmInt8AbftCorruptForTest(pack, n, b, c, {}, element, bit);
      EXPECT_FALSE(hit.ok) << "sample " << s << " bit " << bit;
      EXPECT_GE(hit.max_ratio, 1.0) << "sample " << s << " bit " << bit;
    }

    // Weight flips: stale row/column sums make the flip visible; a miss is
    // only possible when the struck column's activations all quantize to
    // zero (then the flip provably cannot affect C either).
    QuantizedPackedA dirty = pack;
    CorruptionInjector injector(0x5EED2000u + s);
    injector.CorruptWeights(dirty);
    ++weight_trials;
    if (!GemmInt8Abft(dirty, n, b, c).ok) ++weight_detected;
  }
  ASSERT_GE(weight_trials, 40);
  EXPECT_GE(static_cast<double>(weight_detected) /
                static_cast<double>(weight_trials),
            0.99)
      << weight_detected << "/" << weight_trials;
}

TEST(AbftDifferential, PoolSizeIndependenceBitwise) {
  const std::int64_t m = 45, n = 77, k = 300;
  Rng rng(0xD573u);
  const auto a = RandomMatrix(rng, m, k);
  const auto b = RandomMatrix(rng, k, n);
  const AbftPackedA pack = AbftPackA(m, k, a);

  std::vector<float> c_par(static_cast<std::size_t>(m * n));
  std::vector<float> chk_par(static_cast<std::size_t>(n));
  GemmAbftCompute(pack, n, b, c_par, chk_par);
  const AbftCheck check_par = AbftVerify(pack, n, b, c_par, chk_par);

  std::vector<float> c_ser(static_cast<std::size_t>(m * n));
  std::vector<float> chk_ser(static_cast<std::size_t>(n));
  AbftCheck check_ser;
  {
    ScopedSerial serial_scope;
    GemmAbftCompute(pack, n, b, c_ser, chk_ser);
    check_ser = AbftVerify(pack, n, b, c_ser, chk_ser);
  }
  EXPECT_EQ(0, std::memcmp(c_par.data(), c_ser.data(),
                           c_par.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(chk_par.data(), chk_ser.data(),
                           chk_par.size() * sizeof(float)));
  EXPECT_EQ(check_par.ok, check_ser.ok);
  EXPECT_EQ(check_par.bad_columns, check_ser.bad_columns);
  EXPECT_EQ(check_par.first_bad_column, check_ser.first_bad_column);
  EXPECT_EQ(check_par.max_ratio, check_ser.max_ratio);

  // Same for the int8 twin.
  const QuantizedPackedA qpack = QuantizePackA(m, k, a);
  std::vector<float> q_par(static_cast<std::size_t>(m * n));
  std::vector<float> q_ser(static_cast<std::size_t>(m * n));
  const AbftCheck q_check_par = GemmInt8Abft(qpack, n, b, q_par);
  AbftCheck q_check_ser;
  {
    ScopedSerial serial_scope;
    q_check_ser = GemmInt8Abft(qpack, n, b, q_ser);
  }
  EXPECT_EQ(0, std::memcmp(q_par.data(), q_ser.data(),
                           q_par.size() * sizeof(float)));
  EXPECT_EQ(q_check_par.ok, q_check_ser.ok);
  EXPECT_EQ(q_check_par.max_ratio, q_check_ser.max_ratio);
}

TEST(AbftDifferential, NonFiniteInputsReportedAsCorrupt) {
  const std::int64_t m = 8, n = 16, k = 32;
  Rng rng(0x4A4Eu);
  const auto a = RandomMatrix(rng, m, k);
  auto b = RandomMatrix(rng, k, n);
  b[5] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> c(static_cast<std::size_t>(m * n));
  const AbftCheck check = GemmAbft(AbftPackA(m, k, a), n, b, c);
  EXPECT_FALSE(check.ok);
}

TEST(AbftDifferential, ConvenienceOverloadMatchesSplitCalls) {
  const std::int64_t m = 11, n = 23, k = 57;
  Rng rng(0xC0C0u);
  const auto a = RandomMatrix(rng, m, k);
  const auto b = RandomMatrix(rng, k, n);
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c2(static_cast<std::size_t>(m * n));
  const AbftCheck one = GemmAbft(m, n, k, a, b, c1);
  const AbftPackedA pack = AbftPackA(m, k, a);
  const AbftCheck two = GemmAbft(pack, n, b, c2);
  EXPECT_TRUE(one.ok);
  EXPECT_TRUE(two.ok);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

}  // namespace
}  // namespace ccperf
