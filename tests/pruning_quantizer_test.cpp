#include "pruning/quantizer.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf::pruning {
namespace {

nn::FcLayer MakeFc(std::uint64_t seed) {
  nn::FcLayer fc("fc", 128, 32);
  Rng rng(seed);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.NotifyWeightsChanged();
  return fc;
}

std::size_t DistinctValues(const Tensor& t) {
  std::set<float> values;
  for (float v : t.Data()) values.insert(v);
  return values.size();
}

TEST(Quantizer, LimitsDistinctValues) {
  nn::FcLayer fc = MakeFc(1);
  Quantizer quant(4);  // 4-bit: at most 2*7+1 = 15 levels
  quant.Apply(fc);
  EXPECT_LE(DistinctValues(fc.Weights()), 15u);
}

TEST(Quantizer, EightBitNearlyLossless) {
  nn::FcLayer fc = MakeFc(2);
  const auto before = std::vector<float>(fc.Weights().Data().begin(),
                                         fc.Weights().Data().end());
  Quantizer quant(8);
  quant.Apply(fc);
  double max_err = 0.0, max_abs = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(before[i]) -
                                         fc.Weights().Data()[i]));
    max_abs = std::max(max_abs, std::abs(static_cast<double>(before[i])));
  }
  // Max rounding error = step/2 = max_abs / 127 / 2.
  EXPECT_LE(max_err, max_abs / 127.0 / 2.0 + 1e-7);
}

TEST(Quantizer, PreservesExactZeros) {
  nn::FcLayer fc = MakeFc(3);
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.6);
  Quantizer quant(4);
  quant.Apply(fc);
  EXPECT_NEAR(fc.Weights().ZeroFraction(), 0.6, 0.02)
      << "quantization must compose with pruning";
}

TEST(Quantizer, ErrorDecreasesWithBits) {
  const nn::FcLayer fc = MakeFc(4);
  double prev = 1e9;
  for (int bits : {2, 4, 6, 8, 12}) {
    const double err = Quantizer(bits).RelativeRmsError(fc.Weights());
    EXPECT_LT(err, prev);
    prev = err;
  }
  EXPECT_LT(Quantizer(12).RelativeRmsError(fc.Weights()), 1e-3);
}

TEST(Quantizer, AllZeroWeightsNoop) {
  nn::FcLayer fc("fc", 4, 2);
  Quantizer quant(4);
  quant.Apply(fc);
  EXPECT_DOUBLE_EQ(fc.Weights().ZeroFraction(), 1.0);
  EXPECT_DOUBLE_EQ(quant.RelativeRmsError(fc.Weights()), 0.0);
}

TEST(Quantizer, AppliesToWholeNetwork) {
  nn::ModelConfig config;
  config.weight_seed = 11;
  nn::Network net = nn::BuildTinyCnn(config);
  Quantizer quant(3);
  quant.ApplyToNetwork(net);
  for (const auto& name : net.WeightedLayerNames()) {
    EXPECT_LE(DistinctValues(net.FindLayer(name)->Weights()), 7u) << name;
  }
  // Network still runs.
  Tensor in(Shape{1, 3, 16, 16}, std::vector<float>(3 * 16 * 16, 0.2f));
  EXPECT_EQ(net.Forward(in).GetShape(), (Shape{1, 10, 1, 1}));
}

TEST(Quantizer, RejectsBadBits) {
  EXPECT_THROW(Quantizer(1), CheckError);
  EXPECT_THROW(Quantizer(17), CheckError);
}

TEST(Quantizer, RejectsWeightlessLayer) {
  nn::Network net = nn::BuildTinyCnn();
  Quantizer quant(8);
  EXPECT_THROW(quant.Apply(*net.FindLayer("relu1")), CheckError);
}

TEST(WeightSharer, ReducesToClusterCount) {
  nn::FcLayer fc = MakeFc(5);
  WeightSharer sharer(8);
  sharer.Apply(fc);
  EXPECT_LE(DistinctValues(fc.Weights()), 8u);
}

TEST(WeightSharer, PreservesZeros) {
  nn::FcLayer fc = MakeFc(6);
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.5);
  WeightSharer sharer(4);
  sharer.Apply(fc);
  EXPECT_NEAR(fc.Weights().ZeroFraction(), 0.5, 0.02);
  EXPECT_LE(DistinctValues(fc.Weights()), 5u);  // 4 centroids + zero
}

TEST(WeightSharer, ManyClustersNearlyLossless) {
  nn::FcLayer fc = MakeFc(7);
  const double l1_before = fc.Weights().L1Norm();
  WeightSharer sharer(256, 20);
  sharer.Apply(fc);
  EXPECT_NEAR(fc.Weights().L1Norm(), l1_before, l1_before * 0.02);
}

TEST(WeightSharer, ConstantWeightsNoop) {
  nn::FcLayer fc("fc", 4, 2);
  for (auto& v : fc.MutableWeights().Data()) v = 1.5f;
  fc.NotifyWeightsChanged();
  WeightSharer sharer(4);
  sharer.Apply(fc);
  for (float v : fc.Weights().Data()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(WeightSharer, RejectsBadConfig) {
  EXPECT_THROW(WeightSharer(1), CheckError);
  EXPECT_THROW(WeightSharer(8, 0), CheckError);
}

TEST(AnalyzeMemory, FootprintsOrderedSensibly) {
  nn::ModelConfig config;
  config.weight_seed = 13;
  nn::Network net = nn::BuildTinyCnn(config);
  const MemoryReport dense = AnalyzeMemory(net, 8, 16);
  EXPECT_GT(dense.dense_fp32_bytes, 0.0);
  // 8-bit quantization is 4x smaller than fp32.
  EXPECT_NEAR(dense.quantized_bytes, dense.dense_fp32_bytes / 4.0,
              dense.dense_fp32_bytes * 0.01);
  // 16 clusters -> ceil(log2(17)) = 5-bit indices.
  EXPECT_LT(dense.shared_bytes, dense.dense_fp32_bytes / 6.0);
  // Unpruned CSR is bigger than dense (value + index per element).
  EXPECT_GT(dense.sparse_csr_bytes, dense.dense_fp32_bytes);

  // After pruning, CSR shrinks below dense.
  MagnitudePruner pruner;
  for (const auto& name : net.WeightedLayerNames()) {
    pruner.Prune(*net.FindLayer(name), 0.8);
  }
  const MemoryReport pruned = AnalyzeMemory(net, 8, 16);
  EXPECT_LT(pruned.sparse_csr_bytes, pruned.dense_fp32_bytes);
}

TEST(AnalyzeMemory, RejectsBadArgs) {
  const nn::Network net = nn::BuildTinyCnn();
  EXPECT_THROW(AnalyzeMemory(net, 1, 16), CheckError);
  EXPECT_THROW(AnalyzeMemory(net, 8, 1), CheckError);
}

}  // namespace
}  // namespace ccperf::pruning
