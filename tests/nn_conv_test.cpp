#include "nn/conv_layer.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "pruning/filter_pruner.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf::nn {
namespace {

/// Direct (non-im2col) grouped convolution used as the correctness oracle.
Tensor NaiveConv(const Tensor& input, const Tensor& weights,
                 const Tensor& bias, const ConvParams& p) {
  const auto& in = input.GetShape();
  const std::int64_t batch = in.Dim(0);
  const std::int64_t in_c = in.Dim(1);
  const std::int64_t in_h = in.Dim(2);
  const std::int64_t in_w = in.Dim(3);
  const std::int64_t out_h = (in_h + 2 * p.pad - p.kernel) / p.stride + 1;
  const std::int64_t out_w = (in_w + 2 * p.pad - p.kernel) / p.stride + 1;
  const std::int64_t group_in = in_c / p.groups;
  const std::int64_t group_out = p.out_channels / p.groups;
  Tensor out(Shape{batch, p.out_channels, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < p.out_channels; ++oc) {
      const std::int64_t grp = oc / group_out;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          float acc = bias.At(oc);
          for (std::int64_t ic = 0; ic < group_in; ++ic) {
            for (std::int64_t kh = 0; kh < p.kernel; ++kh) {
              for (std::int64_t kw = 0; kw < p.kernel; ++kw) {
                const std::int64_t ih = oh * p.stride - p.pad + kh;
                const std::int64_t iw = ow * p.stride - p.pad + kw;
                if (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w) continue;
                acc += input.At4(n, grp * group_in + ic, ih, iw) *
                       weights.At4(oc, ic, kh, kw);
              }
            }
          }
          out.Set4(n, oc, oh, ow, acc);
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  std::string name;
  std::int64_t batch, in_c, in_hw;
  ConvParams params;
};

class ConvMatchesNaive : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvMatchesNaive, ForwardEqualsDirectConvolution) {
  const ConvCase& c = GetParam();
  ConvLayer layer("conv", c.params, c.in_c);
  Rng rng(42);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.1f, 0.05f);
  layer.NotifyWeightsChanged();

  Tensor input(Shape{c.batch, c.in_c, c.in_hw, c.in_hw});
  input.FillGaussian(rng, 0.0f, 1.0f);

  const Tensor got = layer.Forward({&input});
  const Tensor want =
      NaiveConv(input, layer.Weights(), layer.MutableBias(), c.params);
  ASSERT_EQ(got.GetShape(), want.GetShape());
  for (std::int64_t i = 0; i < got.NumElements(); ++i) {
    EXPECT_NEAR(got.At(i), want.At(i), 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvMatchesNaive,
    ::testing::Values(
        ConvCase{"k1s1", 1, 4, 5, {.out_channels = 3, .kernel = 1}},
        ConvCase{"k3s1p1", 2, 3, 8,
                 {.out_channels = 6, .kernel = 3, .stride = 1, .pad = 1}},
        ConvCase{"k5s1p2", 1, 2, 9,
                 {.out_channels = 4, .kernel = 5, .stride = 1, .pad = 2}},
        ConvCase{"k3s2", 1, 3, 9, {.out_channels = 2, .kernel = 3, .stride = 2}},
        ConvCase{"k11s4", 1, 3, 23,
                 {.out_channels = 4, .kernel = 11, .stride = 4}},
        ConvCase{"grouped", 2, 4, 6,
                 {.out_channels = 6, .kernel = 3, .stride = 1, .pad = 1,
                  .groups = 2}},
        ConvCase{"grouped4", 1, 8, 5,
                 {.out_channels = 8, .kernel = 3, .stride = 1, .pad = 1,
                  .groups = 4}}),
    [](const auto& info) { return info.param.name; });

TEST(ConvLayer, SparsePathMatchesDensePath) {
  ConvParams p{.out_channels = 8, .kernel = 3, .stride = 1, .pad = 1,
               .groups = 2};
  ConvLayer layer("conv", p, 6);
  Rng rng(7);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  layer.NotifyWeightsChanged();

  Tensor input(Shape{2, 6, 7, 7});
  input.FillGaussian(rng, 0.0f, 1.0f);

  // Prune past the measured CSR crossover (density < kCsrCrossoverDensity);
  // the pruned weights define the truth, so compare sparse execution
  // against the naive oracle on the same weights.
  pruning::MagnitudePruner pruner;
  pruner.Prune(layer, 0.85);
  ASSERT_TRUE(layer.UsesSparsePath());
  ASSERT_EQ(layer.Kernel(), SparseKernel::kCsr);

  const Tensor got = layer.Forward({&input});
  const Tensor want =
      NaiveConv(input, layer.Weights(), layer.MutableBias(), p);
  for (std::int64_t i = 0; i < got.NumElements(); ++i) {
    EXPECT_NEAR(got.At(i), want.At(i), 1e-3f);
  }
}

TEST(ConvLayer, BlockSparsePathMatchesDensePath) {
  ConvParams p{.out_channels = 8, .kernel = 3, .stride = 1, .pad = 1,
               .groups = 2};
  ConvLayer layer("conv", p, 6);
  Rng rng(17);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.0f, 0.1f);
  layer.NotifyWeightsChanged();

  Tensor input(Shape{2, 6, 7, 7});
  input.FillGaussian(rng, 0.0f, 1.0f);

  // Block-aligned filter pruning keeps BSR fill at 1.0, so the dispatch
  // picks the block-sparse kernel once density drops below the BSR
  // crossover.
  pruning::L1FilterPruner pruner(/*block_aligned=*/true);
  pruner.Prune(layer, 0.5);
  ASSERT_TRUE(layer.UsesSparsePath());
  ASSERT_EQ(layer.Kernel(), SparseKernel::kBsr);

  const Tensor got = layer.Forward({&input});
  const Tensor want =
      NaiveConv(input, layer.Weights(), layer.MutableBias(), p);
  for (std::int64_t i = 0; i < got.NumElements(); ++i) {
    EXPECT_NEAR(got.At(i), want.At(i), 1e-3f);
  }
}

TEST(ConvLayer, DensePathBelowThreshold) {
  ConvLayer layer("conv", {.out_channels = 4, .kernel = 3}, 4);
  Rng rng(3);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  layer.NotifyWeightsChanged();
  EXPECT_FALSE(layer.UsesSparsePath());
}

TEST(ConvLayer, OutputShape) {
  ConvLayer layer("conv1", {.out_channels = 96, .kernel = 11, .stride = 4}, 3);
  const Shape out = layer.OutputShape({Shape{1, 3, 227, 227}});
  EXPECT_EQ(out, (Shape{1, 96, 55, 55}));
}

TEST(ConvLayer, RejectsWrongChannelCount) {
  ConvLayer layer("conv", {.out_channels = 4, .kernel = 3}, 8);
  EXPECT_THROW(layer.OutputShape({Shape{1, 4, 8, 8}}), CheckError);
}

TEST(ConvLayer, RejectsIndivisibleGroups) {
  EXPECT_THROW(
      ConvLayer("conv", {.out_channels = 4, .kernel = 3, .groups = 3}, 8),
      CheckError);
}

TEST(ConvLayer, CloneIsDeep) {
  ConvLayer layer("conv", {.out_channels = 2, .kernel = 1}, 2);
  Rng rng(1);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  layer.NotifyWeightsChanged();
  auto clone = layer.Clone();
  layer.MutableWeights().Set(0, 999.0f);
  EXPECT_NE(clone->Weights().At(0), 999.0f);
}

TEST(ConvLayer, WeightDensityTracksZeros) {
  ConvLayer layer("conv", {.out_channels = 2, .kernel = 1}, 2);
  auto w = layer.MutableWeights().Data();
  w[0] = 1.0f;  // 1 of 4 nonzero
  layer.NotifyWeightsChanged();
  EXPECT_DOUBLE_EQ(layer.WeightDensity(), 0.25);
}

TEST(ConvLayer, CostScalesWithDensity) {
  ConvLayer layer("conv", {.out_channels = 4, .kernel = 3, .pad = 1}, 4);
  Rng rng(5);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  layer.NotifyWeightsChanged();
  const Shape in{1, 4, 8, 8};
  const double dense_flops = layer.Cost({in}).flops;
  pruning::MagnitudePruner pruner;
  pruner.Prune(layer, 0.5);
  const double sparse_flops = layer.Cost({in}).flops;
  EXPECT_NEAR(sparse_flops, dense_flops * 0.5, dense_flops * 0.02);
}

}  // namespace
}  // namespace ccperf::nn
