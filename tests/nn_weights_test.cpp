#include "nn/weights.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activation_layers.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"

namespace ccperf::nn {
namespace {

TEST(HashName, StableAndDistinct) {
  // FNV-1a is part of the weight-determinism contract: if it changed,
  // every "pretrained" model in the repo would silently change.
  EXPECT_EQ(HashName("conv1"), HashName("conv1"));
  EXPECT_NE(HashName("conv1"), HashName("conv2"));
  EXPECT_NE(HashName(""), HashName("a"));
  EXPECT_EQ(HashName(""), 0xcbf29ce484222325ULL);
}

TEST(Weights, DeterministicPerLayerNameNotOrder) {
  // Two networks that share a layer name get identical weights for that
  // layer even when built in different orders — the per-layer stream is
  // keyed by (seed, name), not insertion index.
  Network a("a", Shape{2, 4, 4});
  a.Add(std::make_unique<FcLayer>("shared", 2 * 4 * 4, 8));
  a.Add(std::make_unique<ReluLayer>("r"));
  InitializePretrainedWeights(a, 7);

  Network b("b", Shape{2, 4, 4});
  b.Add(std::make_unique<ReluLayer>("front"), {"input"});
  b.Add(std::make_unique<FcLayer>("shared", 2 * 4 * 4, 8), {"front"});
  InitializePretrainedWeights(b, 7);

  const Tensor& wa = a.FindLayer("shared")->Weights();
  const Tensor& wb = b.FindLayer("shared")->Weights();
  for (std::int64_t i = 0; i < wa.NumElements(); ++i) {
    ASSERT_EQ(wa.At(i), wb.At(i));
  }
}

TEST(Weights, HeScalingMatchesFanIn) {
  Network net("n", Shape{8, 6, 6});
  net.Add(std::make_unique<ConvLayer>(
      "c", ConvParams{.out_channels = 64, .kernel = 3, .pad = 1}, 8));
  InitializePretrainedWeights(net, 11);
  const Tensor& w = net.FindLayer("c")->Weights();
  // fan_in = 8*3*3 = 72; expected stddev = sqrt(2/72) ~ 0.1667.
  double ss = 0.0;
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    ss += static_cast<double>(w.At(i)) * w.At(i);
  }
  const double stddev = std::sqrt(ss / static_cast<double>(w.NumElements()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 72.0), 0.01);
}

TEST(Weights, DifferentSeedsDifferentWeights) {
  ModelConfig a_config;
  a_config.weight_seed = 1;
  ModelConfig b_config;
  b_config.weight_seed = 2;
  const Network a = BuildTinyCnn(a_config);
  const Network b = BuildTinyCnn(b_config);
  const Tensor& wa = a.FindLayer("conv1")->Weights();
  const Tensor& wb = b.FindLayer("conv1")->Weights();
  int equal = 0;
  for (std::int64_t i = 0; i < wa.NumElements(); ++i) {
    if (wa.At(i) == wb.At(i)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Weights, BiasesSmallAndPositiveOnAverage) {
  ModelConfig config;
  config.weight_seed = 5;
  const Network net = BuildTinyCnn(config);
  const Tensor& bias = net.FindLayer("conv1")->Bias();
  double mean = 0.0;
  for (std::int64_t i = 0; i < bias.NumElements(); ++i) mean += bias.At(i);
  mean /= static_cast<double>(bias.NumElements());
  EXPECT_NEAR(mean, 0.01, 0.01);
}

}  // namespace
}  // namespace ccperf::nn
