#include "common/rng.h"

#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ccperf {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextFloatRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextFloat(-2.5f, 3.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 3.5f);
  }
}

TEST(Rng, NextIndexCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.NextIndex(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.1, 0.01);
  }
}

TEST(Rng, NextIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.NextIndex(0), CheckError);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    ss += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(ss / kN, 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(17);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child must differ from a fresh copy of the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(31);
  const auto p = rng.Permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationZeroEmpty) {
  Rng rng(1);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = SplitMix64(s);
  const auto b = SplitMix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ccperf
