// Positive control for the negative-compile probe: identical shape to
// thread_safety_negative.cpp but with correct locking. It MUST compile
// under -Werror=thread-safety; if it does not, the negative probe's
// failure proves nothing (the toolchain would reject everything).
#include "common/threading.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    ccperf::MutexLock lock(mutex_);
    balance_ += amount;
  }

  [[nodiscard]] int Balance() {
    ccperf::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  ccperf::Mutex mutex_;
  int balance_ CCPERF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Balance();
}
