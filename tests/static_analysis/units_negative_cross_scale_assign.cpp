// MUST NOT COMPILE: Hours and Seconds share a dimension but not a scale;
// assignment across scales must go through ToSeconds/ToHours so the 3600x
// factor is always written down.
#include "common/units.h"

using namespace ccperf::units;

int main() {
  Seconds bad = Hours(1.0);  // needs explicit ToSeconds(...)
  return bad.value() > 0.0 ? 0 : 1;
}
