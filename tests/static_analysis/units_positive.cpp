// Positive control for the strong-unit negative-compile suite: every
// operation the dimension system is supposed to allow, in one TU. If this
// fails to build, the probe harness (include paths, C++ standard) is broken
// and the negative results below it would be meaningless.
#include "common/units.h"

namespace {

using namespace ccperf::units;

[[maybe_unused]] Usd Bill(UsdPerHour price, Hours h) { return price * h; }

[[maybe_unused]] double Algebra() {
  // Same-dimension, same-scale arithmetic.
  Seconds s = Seconds(1.0) + Seconds(2.0) - Seconds(0.5);
  s += Seconds(1.0);
  s -= Seconds(0.25);
  s = -s;
  // Scalar scaling (both sides) and in-place forms.
  s = s * 2.0;
  s = 2.0 * s;
  s = s / 2.0;
  s *= 3.0;
  s /= 3.0;
  // Cross-dimension algebra, by enumeration.
  const Usd cost = UsdPerHour(0.9) * Hours(2.0);
  const Usd cost2 = Hours(2.0) * UsdPerHour(0.9);
  const UsdPerHour rate = cost / Hours(2.0);
  const Hours h = cost / rate;
  const double events = RatePerHour(0.05) * Hours(10.0);
  const double events2 = Hours(10.0) * RatePerHour(0.05);
  const Seconds t = Flops(1e12) / GFlopsPerSec(5.0);
  const Seconds t2 = Bytes(1e9) / GBytesPerSec(2.0);
  // Explicit scale conversions.
  const Hours from_s = ToHours(Seconds(7200.0));
  const Seconds back = ToSeconds(from_s);
  // Dimensionless ratio of like quantities.
  const double ratio = back / Seconds(3600.0);
  // Ordering and equality within one (dimension, scale).
  const bool ok = Seconds(1.0) < Seconds(2.0) && Seconds(2.0) >= Seconds(2.0) &&
                  Seconds(3.0) == Seconds(3.0) && cost == cost2 &&
                  events == events2 && t.value() > 0.0 && t2.value() > 0.0 &&
                  h.value() > 0.0;
  return ratio + (ok ? 1.0 : 0.0) + s.value();
}

}  // namespace

int main() { return Algebra() > 0.0 ? 0 : 1; }
