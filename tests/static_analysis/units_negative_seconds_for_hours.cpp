// MUST NOT COMPILE: passing Seconds where an API takes Hours — the classic
// 3600x billing bug the unit layer exists to stop. Scale conversion is
// explicit (ToHours), never implicit.
#include "common/units.h"

using namespace ccperf::units;

static Usd Bill(UsdPerHour price, Hours runtime) { return price * runtime; }

int main() {
  const Usd bad = Bill(UsdPerHour(0.9), Seconds(7200.0));  // wrong scale
  return bad.value() > 0.0 ? 0 : 1;
}
