// Negative-compile probe: this TU contains a deliberate CCPERF_GUARDED_BY
// violation and MUST FAIL to compile under Clang with
// -Werror=thread-safety. tests/CMakeLists.txt try_compiles it when
// CCPERF_THREAD_SAFETY is on and aborts the configure if it *succeeds* —
// that would mean the annotations are not firing and the whole analysis
// leg is silently off. Never "fix" the bug below.
#include "common/threading.h"

namespace {

class Account {
 public:
  // BUG (intentional): writes the guarded balance without holding mutex_.
  void DepositRacy(int amount) { balance_ += amount; }

  [[nodiscard]] int Balance() {
    ccperf::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  ccperf::Mutex mutex_;
  int balance_ CCPERF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.DepositRacy(1);
  return account.Balance();
}
