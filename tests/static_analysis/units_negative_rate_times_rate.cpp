// MUST NOT COMPILE: ($/h) * ($/h) is not a quantity this library defines.
// Cross-dimension products exist only by enumeration (e.g. UsdPerHour*Hours).
#include "common/units.h"

using namespace ccperf::units;

int main() {
  auto bad = UsdPerHour(1.0) * UsdPerHour(2.0);  // undefined product
  return bad.value() > 0.0 ? 0 : 1;
}
