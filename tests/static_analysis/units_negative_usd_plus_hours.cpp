// MUST NOT COMPILE: adding money to time mixes dimensions.
#include "common/units.h"

using namespace ccperf::units;

int main() {
  auto bad = Usd(1.0) + Hours(1.0);  // no operator+(Usd, Hours)
  return bad.value() > 0.0 ? 0 : 1;
}
