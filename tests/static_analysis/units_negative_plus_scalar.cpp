// MUST NOT COMPILE: adding a bare double to a quantity. Scaling by a
// scalar (operator*) is meaningful; offsetting by a unitless number is not.
#include "common/units.h"

using namespace ccperf::units;

int main() {
  auto bad = Seconds(1.0) + 1.0;  // no operator+(Seconds, double)
  return bad.value() > 0.0 ? 0 : 1;
}
