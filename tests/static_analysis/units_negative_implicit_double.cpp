// MUST NOT COMPILE: a raw double silently becoming money. Construction is
// explicit so every entry into the typed world is visible at the call site.
#include "common/units.h"

using namespace ccperf::units;

int main() {
  Usd bad = 3.0;  // explicit ctor: copy-init from double must fail
  return bad.value() > 0.0 ? 0 : 1;
}
