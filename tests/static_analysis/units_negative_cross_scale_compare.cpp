// MUST NOT COMPILE: comparing Seconds against Hours. A raw-value compare
// across scales would order 90 (seconds) above 1 (hour); the type system
// refuses rather than guessing a conversion.
#include "common/units.h"

using namespace ccperf::units;

int main() {
  const bool bad = Seconds(90.0) < Hours(1.0);  // cross-scale comparison
  return bad ? 0 : 1;
}
