#include "cloud/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cloud/density.h"
#include "cloud/pricing.h"
#include "common/check.h"

namespace ccperf::cloud {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(CaffeNetProfile()),
        unpruned_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                     "nonpruned")) {}

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ModelProfile profile_;
  VariantPerf unpruned_;
};

TEST_F(SimulatorTest, FiftyThousandImagesMatchPaperNineteenMinutes) {
  const double seconds =
      sim_.InstanceSeconds(catalog_.Find("p2.xlarge"), unpruned_, 50000)
          .value();
  EXPECT_NEAR(seconds, 19.0 * 60.0, 30.0);
}

TEST_F(SimulatorTest, SingleInferenceMatchPaper) {
  const double seconds =
      sim_.BatchSeconds(catalog_.Find("p2.xlarge"), unpruned_, 1).value();
  EXPECT_NEAR(seconds, 0.09, 0.02);  // paper Fig. 4
}

TEST_F(SimulatorTest, BatchSecondsGrowWithBatch) {
  const InstanceType& p2 = catalog_.Find("p2.xlarge");
  double prev = 0.0;
  for (std::int64_t b : {1, 10, 100, 1000}) {
    const double t = sim_.BatchSeconds(p2, unpruned_, b).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(SimulatorTest, PerImageTimeImprovesWithBatch) {
  // Fig. 5: larger batches amortize launches and raise utilization.
  const InstanceType& p2 = catalog_.Find("p2.xlarge");
  double prev = 1e9;
  for (std::int64_t b : {1, 10, 100, 600}) {
    const double per_image = sim_.BatchSeconds(p2, unpruned_, b).value() /
                             static_cast<double>(b);
    EXPECT_LT(per_image, prev);
    prev = per_image;
  }
}

TEST_F(SimulatorTest, SaturationAroundThreeHundred) {
  // Fig. 5: going from B=300 to B=2000 gains little (< 12 %), going from
  // B=25 to B=300 gains a lot (> 50 %).
  const InstanceType& p2 = catalog_.Find("p2.xlarge");
  const double t25 = sim_.InstanceSeconds(p2, unpruned_, 50000, 25).value();
  const double t300 =
      sim_.InstanceSeconds(p2, unpruned_, 50000, 300).value();
  const double t2000 =
      sim_.InstanceSeconds(p2, unpruned_, 50000, 2000).value();
  EXPECT_GT(t25 / t300, 1.5);
  EXPECT_LT(t300 / t2000, 1.12);
}

TEST_F(SimulatorTest, BatchCappedByGpuMemory) {
  const InstanceType& p2 = catalog_.Find("p2.xlarge");
  EXPECT_THROW(sim_.BatchSeconds(p2, unpruned_, 2001), CheckError);
  // InstanceSeconds clamps automatically.
  const double t = sim_.InstanceSeconds(p2, unpruned_, 100000, 9999).value();
  EXPECT_GT(t, 0.0);
}

TEST_F(SimulatorTest, MultiGpuInstancesScaleNearLinearly) {
  const double t1 =
      sim_.InstanceSeconds(catalog_.Find("p2.xlarge"), unpruned_, 160000)
          .value();
  const double t8 =
      sim_.InstanceSeconds(catalog_.Find("p2.8xlarge"), unpruned_, 160000)
          .value();
  EXPECT_NEAR(t1 / t8, 8.0, 0.5);
}

TEST_F(SimulatorTest, M60FasterThanK80) {
  const double k80 =
      sim_.InstanceSeconds(catalog_.Find("p2.xlarge"), unpruned_, 50000)
          .value();
  const double m60 =
      sim_.InstanceSeconds(catalog_.Find("g3.4xlarge"), unpruned_, 50000)
          .value();
  EXPECT_NEAR(k80 / m60, 2.05, 0.15);
}

TEST_F(SimulatorTest, ZeroImagesZeroSeconds) {
  EXPECT_DOUBLE_EQ(
      sim_.InstanceSeconds(catalog_.Find("p2.xlarge"), unpruned_, 0).value(),
      0.0);
}

TEST_F(SimulatorTest, RunEqualSplitBillsAllUntilCompletion) {
  ResourceConfig config;
  config.Add("p2.xlarge");
  config.Add("p2.8xlarge");
  const RunEstimate run = sim_.Run(config, unpruned_, 100000);
  ASSERT_EQ(run.instances.size(), 2u);
  // Eq. 4: equal split; the 1-GPU instance dominates completion time.
  EXPECT_EQ(run.instances[0].images, 50000);
  EXPECT_EQ(run.instances[1].images, 50000);
  EXPECT_DOUBLE_EQ(
      run.seconds.value(),
      std::max(run.instances[0].seconds, run.instances[1].seconds).value());
  const Usd expected_cost = ProratedCost(run.seconds, UsdPerHour(0.90)) +
                            ProratedCost(run.seconds, UsdPerHour(7.20));
  EXPECT_DOUBLE_EQ(run.cost_usd.value(), expected_cost.value());
}

TEST_F(SimulatorTest, ProportionalSplitBeatsEqualOnHeterogeneousConfig) {
  ResourceConfig config;
  config.Add("p2.xlarge");
  config.Add("p2.16xlarge");
  const RunEstimate equal =
      sim_.Run(config, unpruned_, 200000, WorkloadSplit::kEqual);
  const RunEstimate prop =
      sim_.Run(config, unpruned_, 200000, WorkloadSplit::kProportional);
  EXPECT_LT(prop.seconds.value(), equal.seconds.value() * 0.5);
}

TEST_F(SimulatorTest, ProportionalSplitConservesImages) {
  ResourceConfig config;
  config.Add("g3.4xlarge", 2);
  config.Add("p2.xlarge");
  const RunEstimate run =
      sim_.Run(config, unpruned_, 12345, WorkloadSplit::kProportional);
  std::int64_t total = 0;
  for (const auto& inst : run.instances) total += inst.images;
  EXPECT_EQ(total, 12345);
}

TEST_F(SimulatorTest, EqualSplitDistributesRemainder) {
  ResourceConfig config;
  config.Add("p2.xlarge", 3);
  const RunEstimate run = sim_.Run(config, unpruned_, 10);
  EXPECT_EQ(run.instances[0].images, 4);
  EXPECT_EQ(run.instances[1].images, 3);
  EXPECT_EQ(run.instances[2].images, 3);
}

TEST_F(SimulatorTest, RunRejectsEmptyConfigOrWorkload) {
  ResourceConfig empty;
  EXPECT_THROW(sim_.Run(empty, unpruned_, 100), CheckError);
  ResourceConfig config;
  config.Add("p2.xlarge");
  EXPECT_THROW(sim_.Run(config, unpruned_, 0), CheckError);
}

TEST_F(SimulatorTest, ThroughputOrdersInstancesSensibly) {
  const double p2xl =
      sim_.InstanceThroughput(catalog_.Find("p2.xlarge"), unpruned_);
  const double p216 =
      sim_.InstanceThroughput(catalog_.Find("p2.16xlarge"), unpruned_);
  const double g34 =
      sim_.InstanceThroughput(catalog_.Find("g3.4xlarge"), unpruned_);
  EXPECT_NEAR(p216 / p2xl, 16.0, 0.5);
  EXPECT_GT(g34, p2xl);
}

TEST(ResourceConfig, ToStringAndCounts) {
  ResourceConfig config;
  EXPECT_EQ(config.ToString(), "(empty)");
  config.Add("p2.xlarge", 2);
  config.Add("g3.4xlarge");
  config.Add("p2.xlarge");  // merges
  EXPECT_EQ(config.ToString(), "3xp2.xlarge+1xg3.4xlarge");
  EXPECT_EQ(config.TotalInstances(), 4);
}

TEST(ResourceConfig, PriceAndGpuTotals) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  ResourceConfig config;
  config.Add("p2.8xlarge", 2);
  config.Add("g3.16xlarge");
  EXPECT_DOUBLE_EQ(PricePerHour(config, catalog).value(), 2 * 7.20 + 4.56);
  EXPECT_EQ(TotalGpus(config, catalog), 20);
}

TEST(EnumerateConfigs, CountsAndUniqueness) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  const auto p2 = catalog.Category("p2");
  const auto configs = EnumerateConfigs(p2, 3);
  EXPECT_EQ(configs.size(), 4u * 4u * 4u - 1u);  // 63 non-empty combos
  std::set<std::string> labels;
  for (const auto& c : configs) {
    EXPECT_FALSE(c.Empty());
    labels.insert(c.ToString());
  }
  EXPECT_EQ(labels.size(), configs.size());
}

TEST(EnumerateConfigs, RejectsBadArgs) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  EXPECT_THROW(EnumerateConfigs({}, 2), CheckError);
  EXPECT_THROW(EnumerateConfigs(catalog.Types(), 0), CheckError);
}

}  // namespace
}  // namespace ccperf::cloud
