#include "core/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace ccperf::core {
namespace {

/// Generate a synthetic single-layer sweep from known damage parameters.
std::vector<CurvePoint> SyntheticSweep(double sensitivity, double exponent,
                                       double base_top5 = 0.8,
                                       double knee = 2.0) {
  std::vector<CurvePoint> curve;
  for (double r = 0.0; r < 0.95; r += 0.1) {
    const double damage = sensitivity * std::pow(r, exponent);
    const double m = 1.0 / (1.0 + std::pow(damage, knee));
    CurvePoint p;
    p.ratio = r;
    p.seconds = 100.0 * (1.0 - 0.25 * r);  // share*pf = 0.25
    p.top5 = base_top5 * m;
    p.top1 = 0.55 * m;
    curve.push_back(p);
  }
  return curve;
}

TEST(FitLayerDamage, RecoversKnownParametersExactly) {
  const auto curve = SyntheticSweep(2.0, 5.0);
  const DamageFit fit = FitLayerDamage(curve);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.damage.sensitivity, 2.0, 0.01);
  EXPECT_NEAR(fit.damage.exponent, 5.0, 0.01);
  EXPECT_LT(fit.rms_error, 1e-6);
}

TEST(FitLayerDamage, RecoversAcrossParameterRange) {
  for (const auto& [s, p] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {1.63, 3.5}, {13.8, 3.5}, {8.0, 6.0}}) {
    const DamageFit fit = FitLayerDamage(SyntheticSweep(s, p));
    ASSERT_TRUE(fit.ok) << "s=" << s << " p=" << p;
    EXPECT_NEAR(fit.damage.sensitivity, s, s * 0.02);
    EXPECT_NEAR(fit.damage.exponent, p, 0.05);
  }
}

TEST(FitLayerDamage, RobustToMeasurementNoise) {
  auto curve = SyntheticSweep(2.0, 4.0);
  // +-1 % multiplicative accuracy noise.
  double sign = 1.0;
  for (auto& point : curve) {
    point.top5 *= 1.0 + sign * 0.01;
    sign = -sign;
  }
  const DamageFit fit = FitLayerDamage(curve);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.damage.sensitivity, 2.0, 0.6);
  EXPECT_NEAR(fit.damage.exponent, 4.0, 0.6);
}

TEST(FitLayerDamage, FlatCurveHasNoSignal) {
  std::vector<CurvePoint> curve;
  for (double r = 0.0; r < 0.9; r += 0.1) {
    curve.push_back({r, 100.0 - r, 0.55, 0.80});  // accuracy never moves
  }
  const DamageFit fit = FitLayerDamage(curve);
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.samples_used, 0);
}

TEST(FitLayerDamage, RejectsMalformedSweeps) {
  const auto good = SyntheticSweep(2.0, 5.0);
  EXPECT_THROW(
      (void)FitLayerDamage(std::span<const CurvePoint>(good.data(), 2)),
      CheckError);
  auto no_zero = good;
  no_zero.erase(no_zero.begin());
  EXPECT_THROW((void)FitLayerDamage(no_zero), CheckError);
}

TEST(FitPrunableFraction, RecoversSlope) {
  const auto curve = SyntheticSweep(2.0, 5.0);  // share*pf = 0.25
  const TimeFit fit = FitPrunableFraction(curve, /*time_share=*/0.30);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.share_times_prunable, 0.25, 1e-9);
  EXPECT_NEAR(fit.prunable_fraction, 0.25 / 0.30, 1e-9);
  EXPECT_LT(fit.rms_error, 1e-12);
}

TEST(FitPrunableFraction, FlagsImplausibleShare) {
  // Slope larger than the claimed share -> pf > 1 -> not ok.
  const auto curve = SyntheticSweep(2.0, 5.0);
  const TimeFit fit = FitPrunableFraction(curve, /*time_share=*/0.10);
  EXPECT_FALSE(fit.ok);
  EXPECT_GT(fit.prunable_fraction, 1.0);
}

TEST(FitPrunableFraction, RejectsBadShare) {
  const auto curve = SyntheticSweep(2.0, 5.0);
  EXPECT_THROW((void)FitPrunableFraction(curve, 0.0), CheckError);
  EXPECT_THROW((void)FitPrunableFraction(curve, 1.5), CheckError);
}

TEST(FitAccuracyModel, ReconstructsGeneratingModel) {
  // Generate curves from the CaffeNet calibration, refit, and compare
  // predictions of the refitted model on held-out multi-layer plans.
  const CalibratedAccuracyModel truth = CalibratedAccuracyModel::CaffeNet();
  std::map<std::string, std::vector<CurvePoint>> curves;
  for (const char* layer : {"conv1", "conv2", "conv3"}) {
    std::vector<CurvePoint> curve;
    for (double r = 0.0; r < 0.95; r += 0.05) {
      pruning::PrunePlan plan;
      plan.layer_ratios[layer] = r;
      const AccuracyResult acc = truth.Evaluate(plan);
      curve.push_back({r, 100.0, acc.top1, acc.top5});
    }
    curves[layer] = curve;
  }
  const CalibratedAccuracyModel fitted =
      FitAccuracyModel(curves, 0.55, 0.80);

  pruning::PrunePlan combo;
  combo.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}, {"conv3", 0.4}};
  EXPECT_NEAR(fitted.Evaluate(combo).top5, truth.Evaluate(combo).top5, 0.01);
  pruning::PrunePlan deep;
  deep.layer_ratios = {{"conv2", 0.85}};
  EXPECT_NEAR(fitted.Evaluate(deep).top5, truth.Evaluate(deep).top5, 0.02);
}

TEST(FitAccuracyModel, FallbackForUninformativeLayers) {
  std::map<std::string, std::vector<CurvePoint>> curves;
  std::vector<CurvePoint> flat;
  for (double r = 0.0; r < 0.9; r += 0.1) {
    flat.push_back({r, 50.0, 0.55, 0.80});
  }
  curves["robust-layer"] = flat;
  const LayerDamage fallback{3.0, 4.0};
  const CalibratedAccuracyModel fitted = FitAccuracyModel(
      curves, 0.55, 0.80, pruning::PrunerFamily::kL1Filter, fallback);
  pruning::PrunePlan plan;
  plan.layer_ratios["robust-layer"] = 0.5;
  // With the fallback damage: D = 3 * 0.5^4 = 0.1875 -> m = 1/(1+D^2).
  const double expected = 0.80 / (1.0 + 0.1875 * 0.1875);
  EXPECT_NEAR(fitted.Evaluate(plan).top5, expected, 1e-9);
}

TEST(FitAccuracyModel, RejectsEmptyInput) {
  EXPECT_THROW((void)FitAccuracyModel({}, 0.55, 0.80), CheckError);
}

}  // namespace
}  // namespace ccperf::core
