// Differential proof of the sorted-sweep Pareto filters (core/pareto_sweep.h)
// against the straightforward oracles (core/pareto.h): ~200 seeded point
// clouds across adversarial regimes, index-set equality everywhere, plus
// unit coverage of the incremental staircase and the streaming-compaction
// identity the enumeration engine relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/pareto.h"
#include "core/pareto_sweep.h"

namespace ccperf::core {
namespace {

struct Cloud {
  std::vector<double> time;
  std::vector<double> cost;
  std::vector<double> accuracy;
};

// Point-cloud regimes the sweep must survive:
//   uniform          — generic random positions
//   all-dominated    — one super point, everything else strictly worse
//   all-frontier     — an anti-chain: every point Pareto-optimal
//   duplicate-heavy  — coordinates drawn from a tiny grid, many exact ties
//   axis-collinear   — one or two axes held constant across the cloud
enum class Regime : int {
  kUniform = 0,
  kAllDominated,
  kAllFrontier,
  kDuplicateHeavy,
  kAxisCollinear,
};

Cloud MakeCloud(Regime regime, Rng& rng) {
  const std::size_t n = 30 + rng.NextIndex(170);
  Cloud cloud;
  cloud.time.resize(n);
  cloud.cost.resize(n);
  cloud.accuracy.resize(n);
  switch (regime) {
    case Regime::kUniform:
      for (std::size_t i = 0; i < n; ++i) {
        cloud.time[i] = rng.NextDouble() * 10.0;
        cloud.cost[i] = rng.NextDouble() * 100.0;
        cloud.accuracy[i] = rng.NextDouble();
      }
      break;
    case Regime::kAllDominated:
      // Index 0 dominates everything: smallest time/cost, best accuracy.
      cloud.time[0] = 0.0;
      cloud.cost[0] = 0.0;
      cloud.accuracy[0] = 1.0;
      for (std::size_t i = 1; i < n; ++i) {
        cloud.time[i] = 0.1 + rng.NextDouble();
        cloud.cost[i] = 0.1 + rng.NextDouble();
        cloud.accuracy[i] = rng.NextDouble() * 0.9;
      }
      break;
    case Regime::kAllFrontier:
      // 2-D anti-chain in (time, cost) at constant accuracy: time strictly
      // ascending while cost strictly descends, so no point dominates any
      // other. Shuffle so input order is not the sorted order.
      for (std::size_t i = 0; i < n; ++i) {
        cloud.time[i] = static_cast<double>(i);
        cloud.cost[i] = static_cast<double>(n - i);
        cloud.accuracy[i] = 0.5;
      }
      for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = rng.NextIndex(i);
        std::swap(cloud.time[i - 1], cloud.time[j]);
        std::swap(cloud.cost[i - 1], cloud.cost[j]);
      }
      break;
    case Regime::kDuplicateHeavy:
      for (std::size_t i = 0; i < n; ++i) {
        cloud.time[i] = static_cast<double>(rng.NextIndex(4));
        cloud.cost[i] = static_cast<double>(rng.NextIndex(4));
        cloud.accuracy[i] = static_cast<double>(rng.NextIndex(4)) / 4.0;
      }
      break;
    case Regime::kAxisCollinear: {
      // Pin one or two axes to a constant; survivors are decided by the
      // remaining axis/axes only — the degenerate case where tie-breaking
      // rules do all the work.
      const std::uint64_t pinned = 1 + rng.NextIndex(2);  // 1 or 2 axes
      for (std::size_t i = 0; i < n; ++i) {
        cloud.time[i] = 3.0;
        cloud.cost[i] = pinned == 2 ? 7.0 : rng.NextDouble() * 10.0;
        cloud.accuracy[i] = static_cast<double>(rng.NextIndex(8)) / 8.0;
      }
      break;
    }
  }
  return cloud;
}

class SweepVsOracle
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SweepVsOracle, FrontierIndexSetsIdentical3D) {
  const auto regime = static_cast<Regime>(std::get<0>(GetParam()));
  Rng rng(0xABC0 + std::get<1>(GetParam()) * 7919 +
          static_cast<std::uint64_t>(std::get<0>(GetParam())));
  const Cloud cloud = MakeCloud(regime, rng);
  const auto oracle =
      ParetoFrontier3(cloud.time, cloud.cost, cloud.accuracy);
  const auto sweep =
      SweepParetoFrontier3(cloud.time, cloud.cost, cloud.accuracy);
  // Both are in ascending input-index order, so index-set equality is
  // vector equality.
  EXPECT_EQ(sweep, oracle);
}

TEST_P(SweepVsOracle, FrontierIdentical2D) {
  const auto regime = static_cast<Regime>(std::get<0>(GetParam()));
  Rng rng(0xDEF0 + std::get<1>(GetParam()) * 104729 +
          static_cast<std::uint64_t>(std::get<0>(GetParam())));
  const Cloud cloud = MakeCloud(regime, rng);
  // 2-D over (cost, accuracy) and (time, accuracy): same order contract
  // (descending accuracy), so full vector equality, not just set equality.
  EXPECT_EQ(SweepParetoFrontier(cloud.cost, cloud.accuracy),
            ParetoFrontier(cloud.cost, cloud.accuracy));
  EXPECT_EQ(SweepParetoFrontier(cloud.time, cloud.accuracy),
            ParetoFrontier(cloud.time, cloud.accuracy));
}

std::string RegimeParamName(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  static const char* const kNames[] = {"Uniform", "AllDominated",
                                       "AllFrontier", "DuplicateHeavy",
                                       "AxisCollinear"};
  return std::string(kNames[std::get<0>(info.param)]) + "Seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SweepVsOracle,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Range<std::uint64_t>(0, 20)),
    RegimeParamName);

// --- streaming compaction identity ------------------------------------------

TEST(SweepStreaming, BlockwiseCompactionEqualsOneShot) {
  // frontier(frontier(A) ∪ B) == frontier(A ∪ B) — the identity that lets
  // EnumerateFrontier keep memory O(frontier + block). Checked across
  // regimes, block sizes and seeds, with ids mapped back to cloud indices.
  for (int regime = 0; regime < 5; ++regime) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(0xB10C + seed * 31 + static_cast<std::uint64_t>(regime));
      const Cloud cloud = MakeCloud(static_cast<Regime>(regime), rng);
      const std::size_t n = cloud.time.size();
      for (const std::size_t block : {1UL, 7UL, 64UL}) {
        std::vector<std::size_t> ids;  // surviving cloud indices, ascending
        std::vector<double> t, c, a;
        for (std::size_t begin = 0; begin < n; begin += block) {
          const std::size_t end = std::min(n, begin + block);
          for (std::size_t i = begin; i < end; ++i) {
            ids.push_back(i);
            t.push_back(cloud.time[i]);
            c.push_back(cloud.cost[i]);
            a.push_back(cloud.accuracy[i]);
          }
          const auto keep = SweepParetoFrontier3(t, c, a);
          for (std::size_t k = 0; k < keep.size(); ++k) {
            ids[k] = ids[keep[k]];
            t[k] = t[keep[k]];
            c[k] = c[keep[k]];
            a[k] = a[keep[k]];
          }
          ids.resize(keep.size());
          t.resize(keep.size());
          c.resize(keep.size());
          a.resize(keep.size());
        }
        EXPECT_EQ(ids,
                  ParetoFrontier3(cloud.time, cloud.cost, cloud.accuracy))
            << "regime=" << regime << " seed=" << seed << " block=" << block;
      }
    }
  }
}

// --- ParetoStaircase2 unit coverage -----------------------------------------

TEST(Staircase, InsertCoverEvict) {
  ParetoStaircase2 staircase;
  EXPECT_TRUE(staircase.Empty());
  EXPECT_TRUE(staircase.Insert(10.0, 0.5, 0));
  EXPECT_TRUE(staircase.Insert(20.0, 0.8, 1));   // dearer but better: kept
  EXPECT_FALSE(staircase.Insert(25.0, 0.7, 2));  // covered by (20, 0.8)
  EXPECT_FALSE(staircase.Insert(20.0, 0.8, 3));  // exact duplicate: rejected
  EXPECT_EQ(staircase.Size(), 2u);

  // (5, 0.9) covers both current entries: they are evicted.
  EXPECT_TRUE(staircase.Insert(5.0, 0.9, 4));
  ASSERT_EQ(staircase.Size(), 1u);
  EXPECT_EQ(staircase.Entries()[0].id, 4u);

  EXPECT_TRUE(staircase.Covers(6.0, 0.9));
  EXPECT_TRUE(staircase.Covers(5.0, 0.9));
  EXPECT_FALSE(staircase.Covers(4.0, 0.1));  // cheaper than everything held
  EXPECT_FALSE(staircase.Covers(6.0, 0.95));
}

TEST(Staircase, EntriesStayOrderedAndBestAccuracyQueriesWork) {
  ParetoStaircase2 staircase;
  Rng rng(77);
  for (std::uint64_t i = 0; i < 500; ++i) {
    staircase.Insert(rng.NextDouble() * 100.0, rng.NextDouble(), i);
  }
  const auto& entries = staircase.Entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].objective, entries[i].objective);
    EXPECT_LT(entries[i - 1].accuracy, entries[i].accuracy);  // staircase
  }
  EXPECT_EQ(staircase.BestAccuracyAt(-1.0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(staircase.BestAccuracyAt(1e9), entries.back().accuracy);
  // Spot-check: BestAccuracyAt agrees with a linear scan.
  for (const double q : {0.5, 10.0, 42.0, 99.0}) {
    double expected = -std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      if (e.objective <= q) expected = std::max(expected, e.accuracy);
    }
    EXPECT_EQ(staircase.BestAccuracyAt(q), expected) << q;
  }
}

TEST(Staircase, KeepFirstOnEqualPair) {
  ParetoStaircase2 staircase;
  EXPECT_TRUE(staircase.Insert(1.0, 0.5, 10));
  EXPECT_FALSE(staircase.Insert(1.0, 0.5, 11));  // later equal pair rejected
  ASSERT_EQ(staircase.Size(), 1u);
  EXPECT_EQ(staircase.Entries()[0].id, 10u);
}

TEST(Staircase, NaNThrows) {
  ParetoStaircase2 staircase;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(staircase.Insert(nan, 0.5, 0), CheckError);
  EXPECT_THROW(staircase.Insert(1.0, nan, 0), CheckError);
  EXPECT_TRUE(staircase.Empty());
}

// --- sweep edge cases --------------------------------------------------------

TEST(Sweep, EmptyAndMismatchedInputs) {
  const std::vector<double> empty;
  EXPECT_TRUE(SweepParetoFrontier3(empty, empty, empty).empty());
  EXPECT_TRUE(SweepParetoFrontier(empty, empty).empty());
  const std::vector<double> two{1, 2};
  const std::vector<double> three{1, 2, 3};
  EXPECT_THROW(SweepParetoFrontier3(two, two, three), CheckError);
  EXPECT_THROW(SweepParetoFrontier(two, three), CheckError);
}

TEST(Sweep, NaNThrows) {
  const std::vector<double> ok{1, 2};
  const std::vector<double> bad{1, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(SweepParetoFrontier3(bad, ok, ok), CheckError);
  EXPECT_THROW(SweepParetoFrontier3(ok, bad, ok), CheckError);
  EXPECT_THROW(SweepParetoFrontier3(ok, ok, bad), CheckError);
  EXPECT_THROW(SweepParetoFrontier(bad, ok), CheckError);
  EXPECT_THROW(SweepParetoFrontier(ok, bad), CheckError);
}

TEST(Sweep, DuplicatesKeepFirstOccurrence3D) {
  const std::vector<double> t{2, 2, 2, 1};
  const std::vector<double> c{3, 3, 3, 9};
  const std::vector<double> a{0.7, 0.7, 0.7, 0.7};
  EXPECT_EQ(SweepParetoFrontier3(t, c, a),
            (std::vector<std::size_t>{0, 3}));
}

TEST(Sweep, InfinityIsAllowed) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> t{1, 1};
  const std::vector<double> c{1, inf};
  const std::vector<double> a{0.9, 0.9};
  EXPECT_EQ(SweepParetoFrontier3(t, c, a), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace ccperf::core
