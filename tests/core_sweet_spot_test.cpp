#include "core/sweet_spot.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace ccperf::core {
namespace {

std::vector<CurvePoint> Curve(
    std::initializer_list<std::tuple<double, double, double>> points) {
  std::vector<CurvePoint> curve;
  for (const auto& [ratio, seconds, top5] : points) {
    curve.push_back({ratio, seconds, top5 * 0.7, top5});
  }
  return curve;
}

TEST(SweetSpot, FindsPlateauEnd) {
  const auto curve = Curve({{0.0, 100.0, 0.80},
                            {0.1, 95.0, 0.80},
                            {0.3, 85.0, 0.79},
                            {0.5, 75.0, 0.78},
                            {0.7, 65.0, 0.60},
                            {0.9, 55.0, 0.30}});
  const SweetSpot spot = FindSweetSpot(curve, 0.04);
  EXPECT_TRUE(spot.exists);
  EXPECT_DOUBLE_EQ(spot.last_ratio, 0.5);
  EXPECT_NEAR(spot.time_saving, 0.25, 1e-9);
  EXPECT_NEAR(spot.accuracy_drop, 0.02, 1e-9);
}

TEST(SweetSpot, NoSpotWhenAccuracyDropsImmediately) {
  const auto curve = Curve({{0.0, 100.0, 0.80},
                            {0.1, 90.0, 0.60},
                            {0.2, 80.0, 0.40}});
  EXPECT_FALSE(FindSweetSpot(curve, 0.04).exists);
}

TEST(SweetSpot, RegionMustBeContiguous) {
  // Accuracy dips out of tolerance at 0.3 and recovers at 0.5; the sweet
  // spot ends at 0.1 regardless of the recovery.
  const auto curve = Curve({{0.0, 100.0, 0.80},
                            {0.1, 95.0, 0.79},
                            {0.3, 85.0, 0.40},
                            {0.5, 75.0, 0.80}});
  const SweetSpot spot = FindSweetSpot(curve, 0.04);
  EXPECT_TRUE(spot.exists);
  EXPECT_DOUBLE_EQ(spot.last_ratio, 0.1);
}

TEST(SweetSpot, RequiresTimeImprovement) {
  const auto curve = Curve({{0.0, 100.0, 0.80},
                            {0.1, 100.0, 0.80},   // same time: not a spot
                            {0.3, 90.0, 0.80}});
  const SweetSpot spot = FindSweetSpot(curve, 0.04);
  EXPECT_TRUE(spot.exists);
  EXPECT_DOUBLE_EQ(spot.last_ratio, 0.3);
  EXPECT_NEAR(spot.time_saving, 0.10, 1e-9);
}

TEST(SweetSpot, ZeroToleranceOnlyExactPlateau) {
  const auto curve = Curve({{0.0, 100.0, 0.80},
                            {0.2, 90.0, 0.80},
                            {0.4, 80.0, 0.799}});
  const SweetSpot spot = FindSweetSpot(curve, 0.0);
  EXPECT_TRUE(spot.exists);
  EXPECT_DOUBLE_EQ(spot.last_ratio, 0.2);
}

TEST(SweetSpot, RejectsMalformedCurves) {
  EXPECT_THROW(FindSweetSpot(Curve({{0.0, 1.0, 0.8}})), CheckError);
  EXPECT_THROW(FindSweetSpot(Curve({{0.1, 1.0, 0.8}, {0.2, 1.0, 0.8}})),
               CheckError);
  EXPECT_THROW(FindSweetSpot(Curve({{0.0, 1.0, 0.8}, {0.0, 1.0, 0.8}})),
               CheckError);
  EXPECT_THROW(FindSweetSpot(Curve({{0.0, 1.0, 0.8}, {0.1, 1.0, 0.8}}), -0.1),
               CheckError);
}

}  // namespace
}  // namespace ccperf::core
