#include "nn/flops.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "nn/activation_layers.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf::nn {
namespace {

TEST(LayerCost, ConvFlopsFormula) {
  // 4 output channels, 3 input channels, 3x3 kernel, 8x8 output:
  // flops = 2 * out_pixels * out_c * in_c * k * k = 2*64*4*3*9 = 13824.
  ConvLayer conv("c", {.out_channels = 4, .kernel = 3, .stride = 1, .pad = 1},
                 3);
  Rng rng(1);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  conv.NotifyWeightsChanged();
  const LayerCost cost = conv.Cost({Shape{1, 3, 8, 8}});
  EXPECT_NEAR(cost.flops, 13824.0, 1.0);
}

TEST(LayerCost, GroupedConvHalvesFlops) {
  ConvLayer grouped(
      "g", {.out_channels = 4, .kernel = 3, .stride = 1, .pad = 1, .groups = 2},
      4);
  ConvLayer full("f", {.out_channels = 4, .kernel = 3, .stride = 1, .pad = 1},
                 4);
  Rng rng(2);
  grouped.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  grouped.NotifyWeightsChanged();
  full.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  full.NotifyWeightsChanged();
  const Shape in{1, 4, 8, 8};
  EXPECT_NEAR(grouped.Cost({in}).flops, full.Cost({in}).flops / 2.0, 1.0);
}

TEST(LayerCost, FcFlopsFormula) {
  FcLayer fc("fc", 100, 10);
  Rng rng(3);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.NotifyWeightsChanged();
  // 2 * batch * in * out = 2*3*100*10 = 6000.
  EXPECT_NEAR(fc.Cost({Shape{3, 100, 1, 1}}).flops, 6000.0, 1.0);
}

TEST(LayerCost, FlopsScaleWithBatch) {
  ConvLayer conv("c", {.out_channels = 2, .kernel = 3, .pad = 1}, 2);
  Rng rng(4);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  conv.NotifyWeightsChanged();
  const double f1 = conv.Cost({Shape{1, 2, 8, 8}}).flops;
  const double f4 = conv.Cost({Shape{4, 2, 8, 8}}).flops;
  EXPECT_NEAR(f4, 4.0 * f1, 1.0);
}

TEST(LayerCost, PruningDiscountsFlopsAndWeightBytes) {
  FcLayer fc("fc", 200, 50);
  Rng rng(5);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.NotifyWeightsChanged();
  const Shape in{1, 200, 1, 1};
  const LayerCost dense = fc.Cost({in});
  pruning::MagnitudePruner pruner;
  pruner.Prune(fc, 0.8);
  const LayerCost sparse = fc.Cost({in});
  EXPECT_NEAR(sparse.flops, dense.flops * 0.2, dense.flops * 0.01);
  EXPECT_NEAR(sparse.weight_bytes, dense.weight_bytes * 0.2,
              dense.weight_bytes * 0.01);
}

TEST(AnalyzeNetwork, TotalsAreSumOfLayers) {
  const Network net = BuildTinyCnn();
  const NetworkCostReport report = AnalyzeNetwork(net, 2);
  double flops = 0.0, wbytes = 0.0, abytes = 0.0;
  for (const auto& l : report.layers) {
    flops += l.cost.flops;
    wbytes += l.cost.weight_bytes;
    abytes += l.cost.activation_bytes;
  }
  EXPECT_DOUBLE_EQ(report.total_flops, flops);
  EXPECT_DOUBLE_EQ(report.total_weight_bytes, wbytes);
  EXPECT_DOUBLE_EQ(report.total_activation_bytes, abytes);
  EXPECT_EQ(report.layers.size(), net.LayerCount());
}

TEST(AnalyzeNetwork, CaffeNetFlopsNearOnePointFiveGFlops) {
  ModelConfig config;
  config.weight_seed = 0;
  const Network net = BuildCaffeNet(config);
  // With zero weights density is 0; weight-carrying layers report 0 flops,
  // so analyze a weighted copy instead.
  ModelConfig with_weights;
  with_weights.weight_seed = 3;
  const Network weighted = BuildCaffeNet(with_weights);
  const NetworkCostReport report = AnalyzeNetwork(weighted, 1);
  EXPECT_GT(report.total_flops, 1.2e9);
  EXPECT_LT(report.total_flops, 1.8e9);
  (void)net;
}

TEST(AnalyzeNetwork, ConvolutionDominatesCaffeNet) {
  ModelConfig config;
  config.weight_seed = 3;
  const Network net = BuildCaffeNet(config);
  const NetworkCostReport report = AnalyzeNetwork(net, 1);
  const double conv = report.FlopsOfKind(LayerKind::kConvolution);
  EXPECT_GT(conv / report.total_flops, 0.85);
}

TEST(AnalyzeNetwork, RejectsZeroBatch) {
  const Network net = BuildTinyCnn();
  EXPECT_THROW(AnalyzeNetwork(net, 0), CheckError);
}

TEST(LayerCost, DefaultCostIsPureDataMovement) {
  ReluLayer relu("r");
  const LayerCost cost = relu.Cost({Shape{1, 4, 8, 8}});
  EXPECT_DOUBLE_EQ(cost.flops, 0.0);
  EXPECT_DOUBLE_EQ(cost.weight_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cost.activation_bytes, 2.0 * 4 * 8 * 8 * sizeof(float));
}

}  // namespace
}  // namespace ccperf::nn
