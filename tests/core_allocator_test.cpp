#include "core/allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "pruning/variant_generator.h"

namespace ccperf::core {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest()
      : catalog_(cloud::InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(cloud::CaffeNetProfile()),
        accuracy_(CalibratedAccuracyModel::CaffeNet()),
        allocator_(sim_) {}

  std::vector<CandidateVariant> Candidates() {
    std::vector<pruning::PrunePlan> plans;
    plans.push_back({});  // nonpruned
    plans.push_back(pruning::UniformPlan({"conv1"}, 0.3));
    plans.push_back(pruning::UniformPlan({"conv2"}, 0.5));
    plans.push_back(
        pruning::UniformPlan({"conv1", "conv2", "conv3", "conv4", "conv5"},
                             0.5));
    plans.push_back(
        pruning::UniformPlan({"conv1", "conv2", "conv3", "conv4", "conv5"},
                             0.8));
    return MakeCandidates(profile_, accuracy_, plans);
  }

  cloud::InstanceCatalog catalog_;
  cloud::CloudSimulator sim_;
  cloud::ModelProfile profile_;
  CalibratedAccuracyModel accuracy_;
  ResourceAllocator allocator_;
};

TEST_F(AllocatorTest, MakeCandidatesComputesAccuracyAndPerf) {
  const auto candidates = Candidates();
  ASSERT_EQ(candidates.size(), 5u);
  EXPECT_EQ(candidates[0].label, "nonpruned");
  EXPECT_NEAR(candidates[0].accuracy, 0.80, 1e-9);
  EXPECT_GT(candidates[0].perf.ref_seconds_per_image.value(),
            candidates[3].perf.ref_seconds_per_image.value());
}

TEST_F(AllocatorTest, GreedyMeetsConstraints) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge", "p2.xlarge", "g3.4xlarge"};
  const AllocationResult result = allocator_.AllocateGreedy(
      candidates, pool, 100000, /*deadline_s=*/Seconds(3600.0),
      /*budget_usd=*/Usd(5.0));
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.seconds.value(), 3600.0);
  EXPECT_LE(result.cost_usd.value(), 5.0);
  EXPECT_FALSE(result.config.Empty());
}

TEST_F(AllocatorTest, GreedyPrefersHighestFeasibleAccuracy) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge", "g3.4xlarge"};
  // Loose constraints: the unpruned (highest-accuracy) variant must win.
  const AllocationResult result = allocator_.AllocateGreedy(
      candidates, pool, 50000, Seconds(36000.0), Usd(100.0));
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.variant_label, "nonpruned");
}

TEST_F(AllocatorTest, GreedyDegradesAccuracyUnderTightDeadline) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge"};
  // Unpruned takes ~1140 s for 50k on p2.xlarge; demand 700 s.
  const AllocationResult result =
      allocator_.AllocateGreedy(candidates, pool, 50000, Seconds(700.0),
                                Usd(100.0));
  ASSERT_TRUE(result.feasible);
  EXPECT_NE(result.variant_label, "nonpruned");
  EXPECT_LE(result.seconds.value(), 700.0);
}

TEST_F(AllocatorTest, InfeasibleWhenConstraintsImpossible) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge"};
  const AllocationResult result =
      allocator_.AllocateGreedy(candidates, pool, 1000000, Seconds(10.0),
                                Usd(0.01));
  EXPECT_FALSE(result.feasible);
}

TEST_F(AllocatorTest, GreedyMatchesExhaustiveAccuracy) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge", "p2.xlarge", "g3.4xlarge",
                                      "g3.8xlarge"};
  for (const auto& [deadline, budget] :
       std::vector<std::pair<double, double>>{
           {3600.0, 10.0}, {900.0, 10.0}, {600.0, 2.0}, {120.0, 1.0}}) {
    const AllocationResult greedy = allocator_.AllocateGreedy(
        candidates, pool, 100000, Seconds(deadline), Usd(budget));
    const AllocationResult exhaustive = allocator_.AllocateExhaustive(
        candidates, pool, 100000, Seconds(deadline), Usd(budget));
    EXPECT_EQ(greedy.feasible, exhaustive.feasible)
        << "T'=" << deadline << " C'=" << budget;
    if (greedy.feasible) {
      // Algorithm 1 is a heuristic but must find the same best accuracy on
      // these small pools (it scans variants in accuracy order).
      EXPECT_DOUBLE_EQ(greedy.accuracy, exhaustive.accuracy)
          << "T'=" << deadline << " C'=" << budget;
    }
  }
}

TEST_F(AllocatorTest, GreedyEvaluationsPolynomialExhaustiveExponential) {
  const auto candidates = Candidates();
  std::vector<std::string> pool;
  for (int i = 0; i < 10; ++i) pool.push_back("p2.xlarge");
  const AllocationResult greedy =
      allocator_.AllocateGreedy(candidates, pool, 1000000, Seconds(1e-9),
                                Usd(1e-9));
  const AllocationResult exhaustive = allocator_.AllocateExhaustive(
      candidates, pool, 1000000, Seconds(1e-9), Usd(1e-9));
  // Worst case (infeasible): greedy examines |P| * |G| configs, exhaustive
  // |P| * (2^|G| - 1).
  EXPECT_EQ(greedy.evaluations, candidates.size() * pool.size());
  EXPECT_EQ(exhaustive.evaluations, candidates.size() * 1023);
}

TEST_F(AllocatorTest, ExhaustiveCapsPoolSize) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool(21, "p2.xlarge");
  EXPECT_THROW(
      allocator_.AllocateExhaustive(candidates, pool, 1000, Seconds(1.0),
                                    Usd(1.0)),
      CheckError);
}

TEST_F(AllocatorTest, InstanceCarOrdersByCostEfficiency) {
  const auto candidates = Candidates();
  // g3 has lower CAR than p2 for the same variant (paper Fig. 12).
  const double car_p2 =
      allocator_.InstanceCar("p2.xlarge", candidates[0], 50000);
  const double car_g3 =
      allocator_.InstanceCar("g3.4xlarge", candidates[0], 50000);
  EXPECT_LT(car_g3, car_p2);
  EXPECT_NEAR(car_g3 / car_p2, 0.61, 0.08);
}

TEST_F(AllocatorTest, EmptyInputsRejected) {
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge"};
  EXPECT_THROW(
      allocator_.AllocateGreedy({}, pool, 100, Seconds(1.0), Usd(1.0)),
      CheckError);
  EXPECT_THROW(
      allocator_.AllocateGreedy(candidates, {}, 100, Seconds(1.0), Usd(1.0)),
      CheckError);
}

TEST_F(AllocatorTest, InterruptionRiskInflatesCarAndTightensFeasibility) {
  const auto candidates = Candidates();
  // Risk-inflated CAR: the same instance looks strictly worse on spot.
  const double safe =
      allocator_.InstanceCar("p2.xlarge", candidates[0], 50000);
  const double risky =
      allocator_.InstanceCar("p2.xlarge", candidates[0], 50000,
                             /*interruption_rate=*/RatePerHour(4.0));
  EXPECT_GT(risky, safe);

  // A deadline the unpruned variant barely meets on reliable capacity
  // becomes infeasible for it under interruption risk: the allocator must
  // degrade to a more-pruned variant (shorter runs dodge interruptions).
  const std::vector<std::string> pool{"p2.xlarge"};
  const AllocationResult reliable = allocator_.AllocateGreedy(
      candidates, pool, 50000, /*deadline_s=*/Seconds(1200.0),
      /*budget_usd=*/Usd(100.0), cloud::WorkloadSplit::kEqual,
      /*interruption_rate=*/RatePerHour(0.0));
  ASSERT_TRUE(reliable.feasible);
  EXPECT_EQ(reliable.variant_label, "nonpruned");
  const AllocationResult spot = allocator_.AllocateGreedy(
      candidates, pool, 50000, Seconds(1200.0), Usd(100.0),
      cloud::WorkloadSplit::kEqual, /*interruption_rate=*/RatePerHour(2.0));
  ASSERT_TRUE(spot.feasible);
  EXPECT_NE(spot.variant_label, "nonpruned");
  EXPECT_GT(reliable.accuracy, spot.accuracy);
  // The reported time/cost are the risk-inflated expectations.
  EXPECT_GT(spot.seconds.value(), 0.0);
  EXPECT_LE(spot.seconds.value(), 1200.0);

  // Exhaustive search agrees under the same risk.
  const AllocationResult exhaustive = allocator_.AllocateExhaustive(
      candidates, pool, 50000, Seconds(1200.0), Usd(100.0),
      cloud::WorkloadSplit::kEqual, RatePerHour(2.0));
  ASSERT_TRUE(exhaustive.feasible);
  EXPECT_DOUBLE_EQ(spot.accuracy, exhaustive.accuracy);

  EXPECT_THROW(
      allocator_.AllocateGreedy(candidates, pool, 1000, Seconds(1.0),
                                Usd(1.0), cloud::WorkloadSplit::kEqual,
                                RatePerHour(-1.0)),
      CheckError);
}

TEST_F(AllocatorTest, ProportionalSplitUnlocksHeterogeneousConfigs) {
  // Under Eq. 4's equal split a mixed pool may be infeasible for a tight
  // deadline (the 1-GPU instance drags the config); the proportional split
  // makes the same pool feasible.
  const auto candidates = Candidates();
  const std::vector<std::string> pool{"p2.xlarge", "p2.16xlarge"};
  const std::int64_t images = 600000;
  // Unpruned on p2.16xlarge alone: ~856 s. Equal split forces the
  // p2.xlarge to take half: ~6840 s. Pick a deadline between them.
  const Seconds deadline(1500.0);
  const core::AllocationResult equal = allocator_.AllocateGreedy(
      candidates, pool, images, deadline, Usd(100.0),
      cloud::WorkloadSplit::kEqual);
  const core::AllocationResult prop = allocator_.AllocateGreedy(
      candidates, pool, images, deadline, Usd(100.0),
      cloud::WorkloadSplit::kProportional);
  ASSERT_TRUE(prop.feasible);
  if (equal.feasible) {
    // Equal split can only be feasible via a single-instance config.
    EXPECT_EQ(equal.config.TotalInstances(), 1);
  }
  EXPECT_LE(prop.seconds, deadline);
}

}  // namespace
}  // namespace ccperf::core
