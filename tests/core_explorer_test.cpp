#include "core/explorer.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "pruning/variant_generator.h"

namespace ccperf::core {
namespace {

class ExplorerTest : public ::testing::Test {
 protected:
  ExplorerTest()
      : catalog_(cloud::InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(cloud::CaffeNetProfile()),
        accuracy_(CalibratedAccuracyModel::CaffeNet()),
        explorer_(sim_, profile_, accuracy_) {}

  std::vector<pruning::PrunePlan> Variants(std::size_t count) {
    Rng rng(42);
    return pruning::RandomVariants(
        {"conv1", "conv2", "conv3", "conv4", "conv5"}, count, 0.6, 0.1, rng);
  }

  std::vector<cloud::ResourceConfig> P2Configs(int max_per_type) {
    return cloud::EnumerateConfigs(catalog_.Category("p2"), max_per_type);
  }

  cloud::InstanceCatalog catalog_;
  cloud::CloudSimulator sim_;
  cloud::ModelProfile profile_;
  CalibratedAccuracyModel accuracy_;
  ConfigSpaceExplorer explorer_;
};

TEST_F(ExplorerTest, EvaluatesFullCross) {
  const auto variants = Variants(10);
  const auto configs = P2Configs(2);  // 26 configs
  const ExplorationResult result =
      explorer_.Explore(variants, configs, 100000);
  EXPECT_EQ(result.evaluated, 10u * 26u);
  // No constraints -> everything feasible.
  EXPECT_EQ(result.feasible.size(), result.evaluated);
}

TEST_F(ExplorerTest, DeadlineFiltersSlowConfigs) {
  const auto variants = Variants(5);
  const auto configs = P2Configs(2);
  const ExplorationResult all = explorer_.Explore(variants, configs, 1000000);
  double min_time = 1e18, max_time = 0.0;
  for (const auto& p : all.feasible) {
    min_time = std::min(min_time, p.seconds.value());
    max_time = std::max(max_time, p.seconds.value());
  }
  const Seconds deadline((min_time + max_time) / 2.0);
  const ExplorationResult filtered =
      explorer_.Explore(variants, configs, 1000000, deadline);
  EXPECT_LT(filtered.feasible.size(), all.feasible.size());
  EXPECT_GT(filtered.feasible.size(), 0u);
  for (const auto& p : filtered.feasible) {
    EXPECT_LE(p.seconds, deadline);
  }
}

TEST_F(ExplorerTest, BudgetFiltersExpensiveConfigs) {
  const auto variants = Variants(5);
  const auto configs = P2Configs(2);
  const ExplorationResult all = explorer_.Explore(variants, configs, 1000000);
  double min_cost = 1e18;
  for (const auto& p : all.feasible) {
    min_cost = std::min(min_cost, p.cost_usd.value());
  }
  const ExplorationResult filtered = explorer_.Explore(
      variants, configs, 1000000,
      Seconds(std::numeric_limits<double>::infinity()), Usd(min_cost * 1.5));
  EXPECT_GT(filtered.feasible.size(), 0u);
  for (const auto& p : filtered.feasible) {
    EXPECT_LE(p.cost_usd.value(), min_cost * 1.5);
  }
}

TEST_F(ExplorerTest, ParetoFrontierSmallAndOptimal) {
  // The paper finds ~5 Pareto-optimal configurations among thousands.
  const auto variants = Variants(30);
  const auto configs = P2Configs(3);  // 63 configs
  const ExplorationResult result = explorer_.Explore(
      variants, configs, 1000000, /*deadline_s=*/Seconds(10.0 * 3600.0));
  EXPECT_GT(result.feasible.size(), 500u);

  const auto frontier = TimeAccuracyFrontier(result.feasible, true);
  EXPECT_GE(frontier.size(), 2u);
  EXPECT_LT(frontier.size(), 30u);
  // Frontier points are mutually non-dominated in (time, top5).
  for (std::size_t a : frontier) {
    for (std::size_t b : frontier) {
      if (a == b) continue;
      EXPECT_FALSE(Dominates(result.feasible[a].seconds.value(),
                             result.feasible[a].top5,
                             result.feasible[b].seconds.value(),
                             result.feasible[b].top5));
    }
  }
}

TEST_F(ExplorerTest, CostFrontierUsesCostAxis) {
  const auto variants = Variants(10);
  const auto configs = P2Configs(2);
  const ExplorationResult result =
      explorer_.Explore(variants, configs, 500000, Seconds(1e18), Usd(300.0));
  const auto frontier = CostAccuracyFrontier(result.feasible, false);
  ASSERT_GE(frontier.size(), 1u);
  // The top frontier point carries the max feasible Top-1.
  double best_top1 = 0.0;
  for (const auto& p : result.feasible) best_top1 = std::max(best_top1, p.top1);
  EXPECT_DOUBLE_EQ(result.feasible[frontier.front()].top1, best_top1);
}

TEST_F(ExplorerTest, ParetoSelectionSavesSubstantially) {
  // The paper's headline: picking the Pareto-optimal configuration at the
  // highest accuracy saves ~50 % time over the worst same-accuracy config.
  const auto variants = Variants(30);
  const auto configs = P2Configs(3);
  const ExplorationResult result = explorer_.Explore(
      variants, configs, 1000000, Seconds(10.0 * 3600.0));
  const auto frontier = TimeAccuracyFrontier(result.feasible, true);
  ASSERT_FALSE(frontier.empty());
  const ExploredPoint& best = result.feasible[frontier.front()];
  double worst_same_accuracy = best.seconds.value();
  for (const auto& p : result.feasible) {
    if (p.top5 == best.top5) {
      worst_same_accuracy = std::max(worst_same_accuracy, p.seconds.value());
    }
  }
  EXPECT_LT(best.seconds.value(), worst_same_accuracy * 0.6);
}

TEST_F(ExplorerTest, RejectsEmptySpace) {
  EXPECT_THROW(explorer_.Explore({}, P2Configs(1), 100), CheckError);
  EXPECT_THROW(explorer_.Explore(Variants(2), {}, 100), CheckError);
  EXPECT_THROW(explorer_.Explore(Variants(2), P2Configs(1), 0), CheckError);
}

}  // namespace
}  // namespace ccperf::core
