#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf {
namespace {

TEST(ConvGeometry, OutputExtents) {
  ConvGeometry g{.in_channels = 3, .in_h = 227, .in_w = 227, .kernel_h = 11,
                 .kernel_w = 11, .stride = 4, .pad = 0};
  EXPECT_EQ(g.OutH(), 55);
  EXPECT_EQ(g.OutW(), 55);
  EXPECT_EQ(g.PatchSize(), 363);
  EXPECT_EQ(g.OutPixels(), 3025);
}

TEST(ConvGeometry, SamePadding3x3) {
  ConvGeometry g{.in_channels = 1, .in_h = 13, .in_w = 13, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  EXPECT_EQ(g.OutH(), 13);
  EXPECT_EQ(g.OutW(), 13);
}

TEST(Im2Col, OneByOneKernelIsIdentity) {
  ConvGeometry g{.in_channels = 2, .in_h = 3, .in_w = 3, .kernel_h = 1,
                 .kernel_w = 1, .stride = 1, .pad = 0};
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(18);
  Im2Col(g, img, col);
  EXPECT_EQ(col, img);
}

TEST(Im2Col, KnownSmallCase) {
  // 1-channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 patches.
  ConvGeometry g{.in_channels = 1, .in_h = 3, .in_w = 3, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  const std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize() * g.OutPixels()));
  Im2Col(g, img, col);
  // Row layout: (kh=0,kw=0), (0,1), (1,0), (1,1) across 4 output pixels.
  const std::vector<float> expected{
      1, 2, 4, 5,   // top-left of each patch
      2, 3, 5, 6,   // top-right
      4, 5, 7, 8,   // bottom-left
      5, 6, 8, 9};  // bottom-right
  EXPECT_EQ(col, expected);
}

TEST(Im2Col, PaddingWritesZeros) {
  ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  const std::vector<float> img{1, 2, 3, 4};
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize() * g.OutPixels()));
  Im2Col(g, img, col);
  // Patch at output (0,0), kernel element (0,0) samples (-1,-1) -> 0.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Kernel element (1,1) (center) at output (0,0) samples (0,0) -> 1.
  const std::int64_t row_center = 1 * 3 + 1;
  EXPECT_FLOAT_EQ(col[static_cast<std::size_t>(row_center * g.OutPixels())], 1.0f);
}

TEST(Im2Col, StrideSkipsPixels) {
  ConvGeometry g{.in_channels = 1, .in_h = 4, .in_w = 4, .kernel_h = 2,
                 .kernel_w = 2, .stride = 2, .pad = 0};
  std::vector<float> img(16);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.PatchSize() * g.OutPixels()));
  Im2Col(g, img, col);
  EXPECT_EQ(g.OutPixels(), 4);
  // (kh=0, kw=0) row: top-left corner of each 2x2 patch at stride 2.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  EXPECT_FLOAT_EQ(col[1], 2.0f);
  EXPECT_FLOAT_EQ(col[2], 8.0f);
  EXPECT_FLOAT_EQ(col[3], 10.0f);
}

TEST(Im2Col, MultiChannelBlocks) {
  ConvGeometry g{.in_channels = 2, .in_h = 2, .in_w = 2, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  const std::vector<float> img{1, 2, 3, 4, 10, 20, 30, 40};
  std::vector<float> col(8);
  Im2Col(g, img, col);
  // Channel 0 rows first, then channel 1.
  EXPECT_FLOAT_EQ(col[0], 1.0f);
  EXPECT_FLOAT_EQ(col[4], 10.0f);
}

TEST(Im2Col, RejectsBadSizes) {
  ConvGeometry g{.in_channels = 1, .in_h = 3, .in_w = 3, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  std::vector<float> img(9), col(3);
  EXPECT_THROW(Im2Col(g, img, col), CheckError);
  std::vector<float> img_bad(5),
      col_ok(static_cast<std::size_t>(g.PatchSize() * g.OutPixels()));
  EXPECT_THROW(Im2Col(g, img_bad, col_ok), CheckError);
}

TEST(Im2Col, RejectsCollapsedOutput) {
  ConvGeometry g{.in_channels = 1, .in_h = 2, .in_w = 2, .kernel_h = 5,
                 .kernel_w = 5, .stride = 1, .pad = 0};
  std::vector<float> img(4), col(1);
  EXPECT_THROW(Im2Col(g, img, col), CheckError);
}

}  // namespace
}  // namespace ccperf
