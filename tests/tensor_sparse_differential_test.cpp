// Differential correctness harness for the sparse kernel suite: the
// vectorized CSR row-panel kernel (CsrMatrix::MultiplyDense), its scalar
// fallback (MultiplyDenseScalar), and the 4x4 block-sparse kernel
// (BsrMatrix::MultiplyDense) are cross-checked against NaiveGemm — the
// ground-truth triple loop — over ~100 seeded (shape x sparsity x
// structure) samples. The schedule straddles every boundary the kernels
// tile on: column-panel widths, the 4-wide accumulator unroll, the 4-row
// BSR blocking, and the row-chunk parallel grains. Tolerances are scaled
// by a per-element magnitude bound (|A|·|B|) because the panel kernels
// reassociate the accumulation (partial-accumulator trees, FMA
// contraction) relative to the naive k-order sum.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "tensor/gemm.h"
#include "tensor/sparse.h"

namespace ccperf {
namespace {

// Sparsity structures mirror the calibration bench: element-wise magnitude
// pruning, whole-row (filter) pruning, and block-aligned row-group pruning
// (the shape that keeps BSR fill at 1.0).
enum class Structure { kElement, kFilter, kBlock };

struct Sample {
  std::int64_t rows, cols, n;
  double sparsity;
  Structure structure;
};

std::vector<float> MakeSparseMatrix(Rng& rng, std::int64_t rows,
                                    std::int64_t cols, double sparsity,
                                    Structure structure) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (auto& v : m) v = rng.NextFloat(-1.0f, 1.0f);
  switch (structure) {
    case Structure::kElement:
      for (auto& v : m) {
        if (rng.NextDouble() < sparsity) v = 0.0f;
      }
      break;
    case Structure::kFilter:
      for (std::int64_t r = 0; r < rows; ++r) {
        if (rng.NextDouble() < sparsity) {
          for (std::int64_t c = 0; c < cols; ++c) {
            m[static_cast<std::size_t>(r * cols + c)] = 0.0f;
          }
        }
      }
      break;
    case Structure::kBlock:
      for (std::int64_t r0 = 0; r0 < rows; r0 += BsrMatrix::kBlockRows) {
        if (rng.NextDouble() < sparsity) {
          const std::int64_t r1 = std::min(rows, r0 + BsrMatrix::kBlockRows);
          for (std::int64_t r = r0; r < r1; ++r) {
            for (std::int64_t c = 0; c < cols; ++c) {
              m[static_cast<std::size_t>(r * cols + c)] = 0.0f;
            }
          }
        }
      }
      break;
  }
  return m;
}

/// |A|·|B|: per-element accumulation-magnitude bound for tolerance scaling.
std::vector<float> AbsBound(std::int64_t m, std::int64_t n, std::int64_t k,
                            const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> aa(a.size()), ab(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) aa[i] = std::fabs(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) ab[i] = std::fabs(b[i]);
  std::vector<float> bound(static_cast<std::size_t>(m * n));
  NaiveGemm(m, n, k, aa, ab, bound);
  return bound;
}

/// The ~100-sample schedule: every tiling boundary plus seeded fill-in.
std::vector<Sample> ShapeSchedule() {
  std::vector<Sample> samples;
  // Degenerate extents in every position.
  for (std::int64_t rows : {0, 1}) {
    for (std::int64_t cols : {0, 1}) {
      for (std::int64_t n : {0, 1}) {
        samples.push_back({rows, cols, n, 0.0, Structure::kElement});
      }
    }
  }
  // Column-panel width straddles: the packed-B panel is at most 32 columns
  // wide (ISA-dependent), so straddle every power-of-two boundary up to 64.
  for (std::int64_t n : {1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65}) {
    samples.push_back({13, 37, n, 0.5, Structure::kElement});
  }
  // 4-wide accumulator unroll tails: 1..8 nonzeros per dense row.
  for (std::int64_t cols : {1, 2, 3, 4, 5, 6, 7, 8}) {
    samples.push_back({8, cols, 16, 0.0, Structure::kElement});
  }
  // BSR block-column boundaries (kBlockCols = 4) incl. tail padding.
  for (std::int64_t cols : {3, 4, 5, 7, 8, 9, 127, 128, 129}) {
    samples.push_back({16, cols, 24, 0.5, Structure::kBlock});
  }
  // Row-chunk parallel grain straddles (CSR grain 32 rows, BSR grain 8
  // block rows = 32 rows).
  for (std::int64_t rows : {31, 32, 33, 63, 64, 65}) {
    samples.push_back({rows, 48, 40, 0.7, Structure::kElement});
    samples.push_back({rows, 48, 40, 0.5, Structure::kBlock});
  }
  // Structure x sparsity grid on one mid-size shape, including fully dense
  // (sparsity 0) and fully empty (sparsity 1: NextDouble() < 1.0 always).
  for (const Structure s :
       {Structure::kElement, Structure::kFilter, Structure::kBlock}) {
    for (double sparsity : {0.0, 0.3, 0.5, 0.8, 0.95, 1.0}) {
      samples.push_back({48, 64, 33, sparsity, s});
    }
  }
  // Seeded random fill-in to ~120 total.
  Rng rng(0x5Fa3u);
  while (samples.size() < 120) {
    const auto structure = static_cast<Structure>(samples.size() % 3);
    samples.push_back({static_cast<std::int64_t>(rng.NextIndex(80)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(120)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(96)) + 1,
                       rng.NextDouble(), structure});
  }
  return samples;
}

TEST(SparseDifferential, AllKernelsMatchNaiveAcrossShapeSchedule) {
  const std::vector<Sample> samples = ShapeSchedule();
  ASSERT_GE(samples.size(), 100u);
  std::size_t checked = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto [rows, cols, n, sparsity, structure] = samples[s];
    Rng rng(0xBEEFu + s);
    const auto a = MakeSparseMatrix(rng, rows, cols, sparsity, structure);
    std::vector<float> b(static_cast<std::size_t>(cols * n));
    for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);

    const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
    const BsrMatrix bsr = BsrMatrix::FromDense(rows, cols, a);
    // Sentinel prefill: the kernels overwrite C, including empty rows.
    const auto size_c = static_cast<std::size_t>(rows * n);
    std::vector<float> c_naive(size_c, 7.0f);
    std::vector<float> c_csr(size_c, -7.0f);
    std::vector<float> c_scalar(size_c, -7.0f);
    std::vector<float> c_bsr(size_c, -7.0f);
    NaiveGemm(rows, n, cols, a, b, c_naive);
    csr.MultiplyDense(b, n, c_csr);
    csr.MultiplyDenseScalar(b, n, c_scalar);
    bsr.MultiplyDense(b, n, c_bsr);
    if (rows == 0 || n == 0) continue;

    const auto bound = AbsBound(rows, n, cols, a, b);
    for (std::size_t i = 0; i < size_c; ++i) {
      const float tol = 1e-5f * std::max(1.0f, bound[i]);
      ASSERT_NEAR(c_csr[i], c_naive[i], tol)
          << "csr sample " << s << " (rows=" << rows << " cols=" << cols
          << " n=" << n << " sparsity=" << sparsity << ") at index " << i;
      ASSERT_NEAR(c_scalar[i], c_naive[i], tol)
          << "csr-scalar sample " << s << " at index " << i;
      ASSERT_NEAR(c_bsr[i], c_naive[i], tol)
          << "bsr sample " << s << " (rows=" << rows << " cols=" << cols
          << " n=" << n << " sparsity=" << sparsity << ") at index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SparseDifferential, SerialExecutionIsBitwiseIdentical) {
  // The parallel kernels accumulate each C element in a fixed order inside
  // exactly one task, so forcing every ParallelFor into the calling thread
  // must reproduce the pooled result bitwise — not just within tolerance.
  for (const auto& [rows, cols, n] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{65, 97, 40},
        {32, 128, 33},
        {7, 300, 64}}) {
    Rng rng(static_cast<std::uint64_t>(rows * 131 + cols * 17 + n));
    const auto a =
        MakeSparseMatrix(rng, rows, cols, 0.6, Structure::kElement);
    const auto ab =
        MakeSparseMatrix(rng, rows, cols, 0.5, Structure::kBlock);
    std::vector<float> b(static_cast<std::size_t>(cols * n));
    for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
    const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
    const BsrMatrix bsr = BsrMatrix::FromDense(rows, cols, ab);

    const auto size_c = static_cast<std::size_t>(rows * n);
    std::vector<float> csr_pooled(size_c), csr_serial(size_c);
    std::vector<float> bsr_pooled(size_c), bsr_serial(size_c);
    csr.MultiplyDense(b, n, csr_pooled);
    bsr.MultiplyDense(b, n, bsr_pooled);
    {
      ScopedSerial serial_scope;
      csr.MultiplyDense(b, n, csr_serial);
      bsr.MultiplyDense(b, n, bsr_serial);
    }
    EXPECT_EQ(0, std::memcmp(csr_pooled.data(), csr_serial.data(),
                             size_c * sizeof(float)))
        << "csr rows=" << rows << " cols=" << cols << " n=" << n;
    EXPECT_EQ(0, std::memcmp(bsr_pooled.data(), bsr_serial.data(),
                             size_c * sizeof(float)))
        << "bsr rows=" << rows << " cols=" << cols << " n=" << n;
  }
}

TEST(SparseDifferential, RepeatedRunsAreBitwiseDeterministic) {
  constexpr std::int64_t rows = 67, cols = 129, n = 48;
  Rng rng(55);
  const auto a = MakeSparseMatrix(rng, rows, cols, 0.7, Structure::kElement);
  std::vector<float> b(static_cast<std::size_t>(cols * n));
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
  const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
  const BsrMatrix bsr = BsrMatrix::FromDense(rows, cols, a);
  const auto size_c = static_cast<std::size_t>(rows * n);
  std::vector<float> c1(size_c), c2(size_c), d1(size_c), d2(size_c);
  csr.MultiplyDense(b, n, c1);
  csr.MultiplyDense(b, n, c2);
  bsr.MultiplyDense(b, n, d1);
  bsr.MultiplyDense(b, n, d2);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), size_c * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(d1.data(), d2.data(), size_c * sizeof(float)));
}

TEST(SparseDifferential, CsrAndBsrAgreeOnBlockStructuredWeights) {
  // On block-aligned sparsity both formats store exactly the surviving
  // values, so their results must agree to rounding — the property the
  // dispatch policy relies on when it picks between them on fill.
  constexpr std::int64_t rows = 64, cols = 96, n = 33;
  Rng rng(91);
  const auto a = MakeSparseMatrix(rng, rows, cols, 0.6, Structure::kBlock);
  std::vector<float> b(static_cast<std::size_t>(cols * n));
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);
  const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
  const BsrMatrix bsr = BsrMatrix::FromDense(rows, cols, a);
  const auto size_c = static_cast<std::size_t>(rows * n);
  std::vector<float> c_csr(size_c), c_bsr(size_c);
  csr.MultiplyDense(b, n, c_csr);
  bsr.MultiplyDense(b, n, c_bsr);
  const auto bound = AbsBound(rows, n, cols, a, b);
  for (std::size_t i = 0; i < size_c; ++i) {
    ASSERT_NEAR(c_csr[i], c_bsr[i], 1e-5f * std::max(1.0f, bound[i]))
        << "index " << i;
  }
}

}  // namespace
}  // namespace ccperf
