#include "common/units.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <type_traits>

namespace ccperf::units {
namespace {

// ---- layout and triviality: the zero-overhead contract ---------------------

TEST(Units, QuantityIsAPlainDouble) {
  static_assert(sizeof(Seconds) == sizeof(double));
  static_assert(sizeof(Usd) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<UsdPerHour>);
  static_assert(std::is_standard_layout_v<RatePerHour>);
}

// ---- round-trips: value in == value out ------------------------------------

TEST(Units, ValueRoundTripsExactly) {
  // .value() must return the constructor argument bit-for-bit, including
  // awkward values — the refactor's bitwise-identity guarantee rests on
  // Quantity being a transparent box.
  for (const double v : {0.0, -0.0, 1.5e-3, 0.9, 7200.0, 1.0 / 3.0,
                         std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(Seconds(v).value(), v);
    EXPECT_EQ(Usd(v).value(), v);
    EXPECT_EQ(UsdPerHour(v).value(), v);
  }
}

TEST(Units, ScaleConversionRoundTrip) {
  // Seconds -> Hours -> Seconds reproduces the raw-double arithmetic
  // exactly: ToHours is v / 3600.0, ToSeconds is v * 3600.0, same order.
  const double raw = 5432.1;
  const Hours h = ToHours(Seconds(raw));
  EXPECT_EQ(h.value(), raw / 3600.0);
  EXPECT_EQ(ToSeconds(h).value(), raw / 3600.0 * 3600.0);
  const double minutes = 90.5;
  EXPECT_EQ(ToSeconds(Minutes(minutes)).value(), minutes * 60.0);
  EXPECT_EQ(ToMinutes(Seconds(minutes * 60.0)).value(), minutes * 60.0 / 60.0);
  EXPECT_EQ(ToSeconds(Milliseconds(250.0)).value(), 250.0 / 1000.0);
}

// ---- arithmetic matches the raw-double expression bit-for-bit --------------

TEST(Units, ArithmeticMatchesRawDoubles) {
  const double a = 0.1, b = 0.2, k = 3.7;
  EXPECT_EQ((Seconds(a) + Seconds(b)).value(), a + b);
  EXPECT_EQ((Seconds(a) - Seconds(b)).value(), a - b);
  EXPECT_EQ((Seconds(a) * k).value(), a * k);
  EXPECT_EQ((k * Seconds(a)).value(), k * a);
  EXPECT_EQ((Seconds(a) / k).value(), a / k);
  EXPECT_EQ(Seconds(a) / Seconds(b), a / b);
  EXPECT_EQ((-Seconds(a)).value(), -a);
}

TEST(Units, CrossDimensionAlgebraMatchesRawDoubles) {
  const double price = 0.9, hours = 2.5, rate = 0.05;
  EXPECT_EQ((UsdPerHour(price) * Hours(hours)).value(), price * hours);
  EXPECT_EQ((Hours(hours) * UsdPerHour(price)).value(), hours * price);
  EXPECT_EQ((Usd(price * hours) / Hours(hours)).value(), price * hours / hours);
  EXPECT_EQ((Usd(4.5) / UsdPerHour(price)).value(), 4.5 / price);
  EXPECT_EQ(RatePerHour(rate) * Hours(hours), rate * hours);
  EXPECT_EQ(Hours(hours) * RatePerHour(rate), hours * rate);
  // Compute and bandwidth durations, as used by the simulator.
  EXPECT_EQ((Flops(1.4e9) / GFlopsPerSec(5.0)).value(), 1.4e9 / (5.0 * 1e9));
  EXPECT_EQ((Bytes(2.0e9) / GBytesPerSec(4.0)).value(), 2.0e9 / (4.0 * 1e9));
}

TEST(Units, AccumulationMatchesRawDoubles) {
  // Same association order as a raw-double loop: the PricePerHour /
  // total-cost accumulators in cloud/ depend on this.
  const double vals[] = {0.9, 7.2, 3.06, 0.9};
  double raw = 0.0;
  Usd typed(0.0);
  for (const double v : vals) {
    raw += v;
    typed += Usd(v);
  }
  EXPECT_EQ(typed.value(), raw);
  typed -= Usd(vals[0]);
  EXPECT_EQ(typed.value(), raw - vals[0]);
  UsdPerHour scaled(0.9);
  scaled *= 3.0;
  scaled /= 2.0;
  EXPECT_EQ(scaled.value(), 0.9 * 3.0 / 2.0);
}

// ---- ordering --------------------------------------------------------------

TEST(Units, ComparisonsFollowTheRawValues) {
  EXPECT_LT(Seconds(1.0), Seconds(2.0));
  EXPECT_GT(Usd(2.0), Usd(1.0));
  EXPECT_LE(Hours(2.0), Hours(2.0));
  EXPECT_GE(RatePerHour(0.1), RatePerHour(0.1));
  EXPECT_EQ(Seconds(3.0), Seconds(3.0));
  EXPECT_NE(Seconds(3.0), Seconds(4.0));
  // Infinity sentinels (unconstrained deadline/budget) compare correctly.
  const Seconds inf(std::numeric_limits<double>::infinity());
  EXPECT_LT(Seconds(1e12), inf);
  EXPECT_FALSE(inf < inf);
}

// ---- formatting: printing .value() is bitwise the raw-double output --------

TEST(Units, StreamFormattingUnchangedByWrapper) {
  // Every emitter prints q.value(); the text must match printing the raw
  // double that the pre-refactor code held.
  const double raws[] = {0.9, 1.0 / 3.0, 7200.0, 1.5e-3};
  for (const double raw : raws) {
    std::ostringstream with_unit, plain;
    with_unit.precision(17);
    plain.precision(17);
    with_unit << Usd(raw).value();
    plain << raw;
    EXPECT_EQ(with_unit.str(), plain.str());
  }
}

}  // namespace
}  // namespace ccperf::units
