#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf {
namespace {

TEST(Tensor, ConstructWithFill) {
  const Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.NumElements(), 6);
  for (float v : t.Data()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Tensor, ConstructFromData) {
  const Tensor t(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.At(0), 1.0f);
  EXPECT_FLOAT_EQ(t.At(3), 4.0f);
}

TEST(Tensor, ConstructRejectsSizeMismatch) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), CheckError);
}

TEST(Tensor, FlatAccessBoundsChecked) {
  Tensor t(Shape{4});
  EXPECT_THROW(t.At(4), CheckError);
  EXPECT_THROW(t.At(-1), CheckError);
  EXPECT_THROW(t.Set(4, 1.0f), CheckError);
}

TEST(Tensor, At4RowMajorNchwLayout) {
  // [n, c, h, w] with dims [2, 3, 4, 5]: offset = ((n*3+c)*4+h)*5+w.
  Tensor t(Shape{2, 3, 4, 5});
  t.Set(((1 * 3 + 2) * 4 + 3) * 5 + 4, 42.0f);
  EXPECT_FLOAT_EQ(t.At4(1, 2, 3, 4), 42.0f);
  t.Set4(0, 1, 2, 3, 7.0f);
  EXPECT_FLOAT_EQ(t.At(((0 * 3 + 1) * 4 + 2) * 5 + 3), 7.0f);
}

TEST(Tensor, At4RequiresRank4) {
  const Tensor t(Shape{4, 4});
  EXPECT_THROW(t.At4(0, 0, 0, 0), CheckError);
}

TEST(Tensor, At4BoundsChecked) {
  const Tensor t(Shape{1, 2, 3, 4});
  EXPECT_THROW(t.At4(0, 2, 0, 0), CheckError);
  EXPECT_THROW(t.At4(0, 0, 3, 0), CheckError);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) t.Set(i, static_cast<float>(i));
  const Tensor r = t.Reshaped(Shape{3, 2});
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(r.At(i), static_cast<float>(i));
  }
  EXPECT_THROW(t.Reshaped(Shape{7}), CheckError);
}

TEST(Tensor, FillGaussianDeterministic) {
  Rng a(99), b(99);
  Tensor x(Shape{100}), y(Shape{100});
  x.FillGaussian(a, 0.0f, 1.0f);
  y.FillGaussian(b, 0.0f, 1.0f);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(x.At(i), y.At(i));
}

TEST(Tensor, ZeroFraction) {
  Tensor t(Shape{4}, {0.0f, 1.0f, 0.0f, 2.0f});
  EXPECT_DOUBLE_EQ(t.ZeroFraction(), 0.5);
  EXPECT_DOUBLE_EQ(Tensor().ZeroFraction(), 0.0);
}

TEST(Tensor, L1Norm) {
  const Tensor t(Shape{3}, {-1.0f, 2.0f, -3.0f});
  EXPECT_DOUBLE_EQ(t.L1Norm(), 6.0);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b = a;
  b.Set(0, 9.0f);
  EXPECT_FLOAT_EQ(a.At(0), 1.0f);
}

}  // namespace
}  // namespace ccperf
