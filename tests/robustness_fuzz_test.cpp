// Robustness "fuzz" tests: corrupted serialized streams and mutated model
// descriptions must produce CheckError (or a valid network) — never crashes
// or silent garbage. Parameterized over seeds for coverage breadth.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cloud/faults.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/calibration.h"
#include "nn/model_parser.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"

namespace ccperf {
namespace {

std::string SerializedTinyCnn() {
  nn::ModelConfig config;
  config.weight_seed = 3;
  const nn::Network net = nn::BuildTinyCnn(config);
  std::stringstream buffer;
  nn::SaveNetwork(net, buffer);
  return buffer.str();
}

class SerializedCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializedCorruption, NeverCrashesOnCorruptStreams) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    // Corrupt 1-8 random bytes (header region included).
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(bytes.size());
      bytes[pos] = static_cast<char>(rng.NextU64());
    }
    std::stringstream corrupted(bytes);
    try {
      const nn::Network net = nn::LoadNetwork(corrupted);
      // If it loaded despite the corruption, it must still be executable.
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Expected for most corruptions.
    }
  }
}

TEST_P(SerializedCorruption, NeverCrashesOnTruncation) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = rng.NextIndex(pristine.size());
    std::stringstream truncated(pristine.substr(0, cut));
    EXPECT_THROW((void)nn::LoadNetwork(truncated), CheckError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializedCorruption,
                         ::testing::Values(1, 2, 3, 4, 5));

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedDescriptionsThrowOrParse) {
  const std::string base = R"(network t
input 3 16 16
conv conv1 out=8 kernel=3 pad=1
relu r1
maxpool p1 kernel=2 stride=2
fc f1 out=10
softmax prob
)";
  const std::string charset =
      "abconv=0123456789 \nfrom_relu.softmaxkernlstrdp@#";
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.NextIndex(6));
    for (int e = 0; e < edits; ++e) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = charset[rng.NextIndex(charset.size())];
    }
    try {
      const nn::Network net = nn::ParseModel(text);
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Malformed input rejected cleanly.
    }
  }
}

TEST_P(ParserFuzz, RandomGarbageRejectedCleanly) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 30; ++trial) {
    std::string text;
    const auto length = 1 + rng.NextIndex(400);
    for (std::uint64_t i = 0; i < length; ++i) {
      text += static_cast<char>(32 + rng.NextIndex(95));
      if (rng.NextIndex(20) == 0) text += '\n';
    }
    EXPECT_THROW((void)nn::ParseModel(text), CheckError) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

class FaultCsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string PristineFaultCsv() {
  const cloud::FaultModel model{.preemption_rate = 0.5,
                                .crash_rate = 6.0,
                                .restart_s = 20.0,
                                .slowdown_rate = 3.0};
  Rng rng(17);
  return cloud::FaultScheduleCsv(
      cloud::GenerateFaultSchedule(model, 4, 3600.0, rng));
}

TEST_P(FaultCsvFuzz, CorruptedSchedulesThrowOrParseValid) {
  static const std::string pristine = PristineFaultCsv();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = pristine;
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = static_cast<char>(32 + rng.NextIndex(95));
    }
    try {
      const cloud::FaultSchedule schedule =
          cloud::ParseFaultScheduleCsv(text);
      // If the corruption survived parsing, the schedule must be usable:
      // validated, sliceable, and safe to expand into a timeline.
      schedule.Validate();
      (void)schedule.Slice(0.0, 1800.0);
      (void)cloud::InstanceTimeline(schedule, 0, 3600.0);
    } catch (const CheckError&) {
      // Malformed input rejected cleanly.
    }
  }
}

TEST_P(FaultCsvFuzz, ShuffledRowsRejected) {
  // Fault schedules are replay logs: out-of-order rows must raise
  // CheckError rather than being silently reordered or crashing.
  static const std::string pristine = PristineFaultCsv();
  std::vector<std::string> lines;
  std::stringstream in(pristine);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 4u);
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> shuffled(lines.begin() + 1, lines.end());
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextIndex(i)]);
    }
    std::string text = lines[0] + '\n';
    for (const std::string& row : shuffled) text += row + '\n';
    try {
      (void)cloud::ParseFaultScheduleCsv(text);
      // A shuffle can accidentally restore sorted order; verify.
      const cloud::FaultSchedule schedule =
          cloud::ParseFaultScheduleCsv(text);
      schedule.Validate();
    } catch (const CheckError&) {
      // Out-of-order rows rejected.
    }
  }
}

TEST_P(FaultCsvFuzz, TruncationRejectedOrValid) {
  static const std::string pristine = PristineFaultCsv();
  Rng rng(GetParam() ^ 0xfa11);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = rng.NextIndex(pristine.size());
    try {
      (void)cloud::ParseFaultScheduleCsv(pristine.substr(0, cut));
    } catch (const CheckError&) {
      // Expected for most cuts (mid-row or missing header).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCsvFuzz, ::testing::Values(7, 8, 9));

class CurveCsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveCsvFuzz, CorruptedCalibrationCurvesThrowOrParseValid) {
  const std::string pristine =
      "ratio,seconds,top1,top5\n"
      "0,1.20,0.57,0.80\n"
      "0.1,1.15,0.565,0.795\n"
      "0.3,1.02,0.55,0.78\n"
      "0.5,0.90,0.52,0.74\n"
      "0.7,0.77,0.44,0.66\n"
      "0.9,0.64,0.25,0.41\n";
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = pristine;
    const int flips = 1 + static_cast<int>(rng.NextIndex(6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = static_cast<char>(32 + rng.NextIndex(95));
    }
    try {
      const auto curve = core::ParseCurveCsv(text);
      // Accepted input must satisfy the documented invariants.
      for (std::size_t i = 0; i < curve.size(); ++i) {
        ASSERT_GE(curve[i].ratio, 0.0);
        ASSERT_LT(curve[i].ratio, 1.0);
        ASSERT_GE(curve[i].seconds, 0.0);
        if (i > 0) ASSERT_GT(curve[i].ratio, curve[i - 1].ratio);
      }
    } catch (const CheckError&) {
      // Malformed calibration input rejected cleanly — it must never
      // poison a fit silently.
    }
  }
}

TEST_P(CurveCsvFuzz, OutOfOrderRatiosRejected) {
  Rng rng(GetParam() ^ 0xc0de);
  for (int trial = 0; trial < 20; ++trial) {
    // Two ascending points followed by a regression: always invalid.
    const double a = 0.1 + 0.4 * rng.NextDouble();
    std::stringstream text;
    text << "ratio,seconds,top1,top5\n"
         << "0,1.0,0.5,0.8\n"
         << a << ",0.9,0.5,0.79\n"
         << a * 0.5 << ",0.8,0.49,0.78\n";
    EXPECT_THROW((void)core::ParseCurveCsv(text.str()), CheckError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveCsvFuzz, ::testing::Values(4, 5, 6));

}  // namespace
}  // namespace ccperf
