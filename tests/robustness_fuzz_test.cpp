// Robustness "fuzz" tests: corrupted serialized streams and mutated model
// descriptions must produce CheckError (or a valid network) — never crashes
// or silent garbage. Parameterized over seeds for coverage breadth.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "nn/model_parser.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"

namespace ccperf {
namespace {

std::string SerializedTinyCnn() {
  nn::ModelConfig config;
  config.weight_seed = 3;
  const nn::Network net = nn::BuildTinyCnn(config);
  std::stringstream buffer;
  nn::SaveNetwork(net, buffer);
  return buffer.str();
}

class SerializedCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializedCorruption, NeverCrashesOnCorruptStreams) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    // Corrupt 1-8 random bytes (header region included).
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(bytes.size());
      bytes[pos] = static_cast<char>(rng.NextU64());
    }
    std::stringstream corrupted(bytes);
    try {
      const nn::Network net = nn::LoadNetwork(corrupted);
      // If it loaded despite the corruption, it must still be executable.
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Expected for most corruptions.
    }
  }
}

TEST_P(SerializedCorruption, NeverCrashesOnTruncation) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = rng.NextIndex(pristine.size());
    std::stringstream truncated(pristine.substr(0, cut));
    EXPECT_THROW((void)nn::LoadNetwork(truncated), CheckError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializedCorruption,
                         ::testing::Values(1, 2, 3, 4, 5));

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedDescriptionsThrowOrParse) {
  const std::string base = R"(network t
input 3 16 16
conv conv1 out=8 kernel=3 pad=1
relu r1
maxpool p1 kernel=2 stride=2
fc f1 out=10
softmax prob
)";
  const std::string charset =
      "abconv=0123456789 \nfrom_relu.softmaxkernlstrdp@#";
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.NextIndex(6));
    for (int e = 0; e < edits; ++e) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = charset[rng.NextIndex(charset.size())];
    }
    try {
      const nn::Network net = nn::ParseModel(text);
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Malformed input rejected cleanly.
    }
  }
}

TEST_P(ParserFuzz, RandomGarbageRejectedCleanly) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 30; ++trial) {
    std::string text;
    const auto length = 1 + rng.NextIndex(400);
    for (std::uint64_t i = 0; i < length; ++i) {
      text += static_cast<char>(32 + rng.NextIndex(95));
      if (rng.NextIndex(20) == 0) text += '\n';
    }
    EXPECT_THROW((void)nn::ParseModel(text), CheckError) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ccperf
