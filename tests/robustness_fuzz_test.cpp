// Robustness "fuzz" tests: corrupted serialized streams and mutated model
// descriptions must produce CheckError (or a valid network) — never crashes
// or silent garbage. Parameterized over seeds for coverage breadth.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "cloud/density.h"
#include "cloud/faults.h"
#include "cloud/serving.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "core/calibration.h"
#include "nn/model_parser.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"
#include "tensor/quant.h"

namespace ccperf {
namespace {

std::string SerializedTinyCnn() {
  nn::ModelConfig config;
  config.weight_seed = 3;
  const nn::Network net = nn::BuildTinyCnn(config);
  std::stringstream buffer;
  nn::SaveNetwork(net, buffer);
  return buffer.str();
}

class SerializedCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializedCorruption, NeverCrashesOnCorruptStreams) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    // Corrupt 1-8 random bytes (header region included).
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(bytes.size());
      bytes[pos] = static_cast<char>(rng.NextU64());
    }
    std::stringstream corrupted(bytes);
    try {
      const nn::Network net = nn::LoadNetwork(corrupted);
      // If it loaded despite the corruption, it must still be executable.
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Expected for most corruptions.
    }
  }
}

TEST_P(SerializedCorruption, NeverCrashesOnTruncation) {
  static const std::string pristine = SerializedTinyCnn();
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = rng.NextIndex(pristine.size());
    std::stringstream truncated(pristine.substr(0, cut));
    EXPECT_THROW((void)nn::LoadNetwork(truncated), CheckError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializedCorruption,
                         ::testing::Values(1, 2, 3, 4, 5));

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedDescriptionsThrowOrParse) {
  const std::string base = R"(network t
input 3 16 16
conv conv1 out=8 kernel=3 pad=1
relu r1
maxpool p1 kernel=2 stride=2
fc f1 out=10
softmax prob
)";
  const std::string charset =
      "abconv=0123456789 \nfrom_relu.softmaxkernlstrdp@#";
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.NextIndex(6));
    for (int e = 0; e < edits; ++e) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = charset[rng.NextIndex(charset.size())];
    }
    try {
      const nn::Network net = nn::ParseModel(text);
      (void)net.OutputShape(1);
    } catch (const CheckError&) {
      // Malformed input rejected cleanly.
    }
  }
}

TEST_P(ParserFuzz, RandomGarbageRejectedCleanly) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 30; ++trial) {
    std::string text;
    const auto length = 1 + rng.NextIndex(400);
    for (std::uint64_t i = 0; i < length; ++i) {
      text += static_cast<char>(32 + rng.NextIndex(95));
      if (rng.NextIndex(20) == 0) text += '\n';
    }
    EXPECT_THROW((void)nn::ParseModel(text), CheckError) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11, 22, 33));

class FaultCsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string PristineFaultCsv() {
  const cloud::FaultModel model{.preemption_rate = 0.5,
                                .crash_rate = 6.0,
                                .restart_s = 20.0,
                                .slowdown_rate = 3.0};
  Rng rng(17);
  return cloud::FaultScheduleCsv(
      cloud::GenerateFaultSchedule(model, 4, 3600.0, rng));
}

TEST_P(FaultCsvFuzz, CorruptedSchedulesThrowOrParseValid) {
  static const std::string pristine = PristineFaultCsv();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = pristine;
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = static_cast<char>(32 + rng.NextIndex(95));
    }
    try {
      const cloud::FaultSchedule schedule =
          cloud::ParseFaultScheduleCsv(text);
      // If the corruption survived parsing, the schedule must be usable:
      // validated, sliceable, and safe to expand into a timeline.
      schedule.Validate();
      (void)schedule.Slice(0.0, 1800.0);
      (void)cloud::InstanceTimeline(schedule, 0, 3600.0);
    } catch (const CheckError&) {
      // Malformed input rejected cleanly.
    }
  }
}

TEST_P(FaultCsvFuzz, ShuffledRowsRejected) {
  // Fault schedules are replay logs: out-of-order rows must raise
  // CheckError rather than being silently reordered or crashing.
  static const std::string pristine = PristineFaultCsv();
  std::vector<std::string> lines;
  std::stringstream in(pristine);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 4u);
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> shuffled(lines.begin() + 1, lines.end());
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextIndex(i)]);
    }
    std::string text = lines[0] + '\n';
    for (const std::string& row : shuffled) text += row + '\n';
    try {
      (void)cloud::ParseFaultScheduleCsv(text);
      // A shuffle can accidentally restore sorted order; verify.
      const cloud::FaultSchedule schedule =
          cloud::ParseFaultScheduleCsv(text);
      schedule.Validate();
    } catch (const CheckError&) {
      // Out-of-order rows rejected.
    }
  }
}

TEST_P(FaultCsvFuzz, TruncationRejectedOrValid) {
  static const std::string pristine = PristineFaultCsv();
  Rng rng(GetParam() ^ 0xfa11);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = rng.NextIndex(pristine.size());
    try {
      (void)cloud::ParseFaultScheduleCsv(pristine.substr(0, cut));
    } catch (const CheckError&) {
      // Expected for most cuts (mid-row or missing header).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCsvFuzz, ::testing::Values(7, 8, 9));

class CurveCsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CurveCsvFuzz, CorruptedCalibrationCurvesThrowOrParseValid) {
  const std::string pristine =
      "ratio,seconds,top1,top5\n"
      "0,1.20,0.57,0.80\n"
      "0.1,1.15,0.565,0.795\n"
      "0.3,1.02,0.55,0.78\n"
      "0.5,0.90,0.52,0.74\n"
      "0.7,0.77,0.44,0.66\n"
      "0.9,0.64,0.25,0.41\n";
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = pristine;
    const int flips = 1 + static_cast<int>(rng.NextIndex(6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.NextIndex(text.size());
      text[pos] = static_cast<char>(32 + rng.NextIndex(95));
    }
    try {
      const auto curve = core::ParseCurveCsv(text);
      // Accepted input must satisfy the documented invariants.
      for (std::size_t i = 0; i < curve.size(); ++i) {
        ASSERT_GE(curve[i].ratio, 0.0);
        ASSERT_LT(curve[i].ratio, 1.0);
        ASSERT_GE(curve[i].seconds, 0.0);
        if (i > 0) ASSERT_GT(curve[i].ratio, curve[i - 1].ratio);
      }
    } catch (const CheckError&) {
      // Malformed calibration input rejected cleanly — it must never
      // poison a fit silently.
    }
  }
}

TEST_P(CurveCsvFuzz, OutOfOrderRatiosRejected) {
  Rng rng(GetParam() ^ 0xc0de);
  for (int trial = 0; trial < 20; ++trial) {
    // Two ascending points followed by a regression: always invalid.
    const double a = 0.1 + 0.4 * rng.NextDouble();
    std::stringstream text;
    text << "ratio,seconds,top1,top5\n"
         << "0,1.0,0.5,0.8\n"
         << a << ",0.9,0.5,0.79\n"
         << a * 0.5 << ",0.8,0.49,0.78\n";
    EXPECT_THROW((void)core::ParseCurveCsv(text.str()), CheckError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveCsvFuzz, ::testing::Values(4, 5, 6));

// ------------------------------------------------------- snapshot fuzzing

/// Shared inputs of every engine in the snapshot trials; a snapshot only
/// restores into an engine built from the same inputs.
struct EngineInputs {
  cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  cloud::CloudSimulator sim{catalog};
  cloud::ServingSimulator serving{sim};
  cloud::ModelProfile profile = cloud::CaffeNetProfile();
  cloud::VariantPerf perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  cloud::ResourceConfig config;
  std::vector<double> trace;
  double duration_s = 60.0;
  cloud::ServingPolicy policy{
      .max_batch = 16, .max_wait_s = 0.02, .deadline_s = 2.0};
  cloud::RetryPolicy retry{.max_retries = 3, .base_backoff_s = 0.02};
  cloud::FaultSchedule faults;

  EngineInputs() {
    config.Add("p2.xlarge", 2);
    Rng rng(99);
    double t = 0.0;
    while ((t += -std::log(1.0 - rng.NextDouble()) / 15.0) <= duration_s) {
      trace.push_back(t);
    }
    const cloud::FaultModel model{.crash_rate = 120.0,
                                  .restart_s = 4.0,
                                  .slowdown_rate = 60.0,
                                  .slowdown_s = 6.0,
                                  .slowdown_factor = 2.0};
    Rng fault_rng(5);
    faults = cloud::GenerateFaultSchedule(model, 2, duration_s, fault_rng);
  }

  [[nodiscard]] cloud::FaultedServingEngine Engine() const {
    return {serving,  config, perf, trace, duration_s,
            policy,   retry,  faults};
  }
};

class SnapshotFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotFuzz, CorruptedEngineSnapshotsThrowOrRestoreValidState) {
  static const EngineInputs inputs;
  // Snapshot a mid-run engine, then hammer the bytes: every mutation must
  // either raise CheckError or restore a state the engine can run to a
  // clean finish from — never UB or a half-restored engine.
  cloud::FaultedServingEngine source = inputs.Engine();
  for (int i = 0; i < 200 && !source.Done(); ++i) source.Step();
  const std::string pristine = source.Checkpoint();

  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.NextIndex(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextIndex(bytes.size())] = static_cast<char>(rng.NextU64());
    }
    cloud::FaultedServingEngine engine = inputs.Engine();
    try {
      engine.Restore(bytes);
    } catch (const CheckError&) {
      continue;  // corruption detected — the common case
    }
    // Restore accepted (flips may cancel out / hit ignored padding): the
    // engine must still run to completion with coherent accounting.
    while (!engine.Done()) engine.Step();
    const cloud::ServingReport report = engine.Finish();
    EXPECT_EQ(report.requests,
              static_cast<std::int64_t>(inputs.trace.size()));
    EXPECT_EQ(report.requests, report.completed + report.dropped_deadline +
                                   report.dropped_failed);
  }
}

TEST_P(SnapshotFuzz, TruncatedEngineSnapshotsAreRejected) {
  static const EngineInputs inputs;
  cloud::FaultedServingEngine source = inputs.Engine();
  for (int i = 0; i < 100 && !source.Done(); ++i) source.Step();
  const std::string pristine = source.Checkpoint();

  Rng rng(GetParam() ^ 0x720);
  for (int trial = 0; trial < 40; ++trial) {
    cloud::FaultedServingEngine engine = inputs.Engine();
    EXPECT_THROW(engine.Restore(pristine.substr(0, rng.NextIndex(
                     pristine.size()))),
                 CheckError);
  }
}

TEST_P(SnapshotFuzz, KillAtRandomPointsResumesBitwiseIdentically) {
  static const EngineInputs inputs;
  // Reference: the uninterrupted run.
  cloud::FaultedServingEngine reference = inputs.Engine();
  std::int64_t total_steps = 0;
  while (!reference.Done()) {
    reference.Step();
    ++total_steps;
  }
  const cloud::ServingReport expected = reference.Finish();

  Rng rng(GetParam() ^ 0xdead);
  for (int trial = 0; trial < 6; ++trial) {
    const auto kill_after = rng.NextIndex(
        static_cast<std::uint64_t>(total_steps));
    cloud::FaultedServingEngine victim = inputs.Engine();
    for (std::uint64_t s = 0; s < kill_after && !victim.Done(); ++s) {
      victim.Step();
    }
    cloud::FaultedServingEngine resumed = inputs.Engine();
    resumed.Restore(victim.Checkpoint());
    while (!resumed.Done()) resumed.Step();
    const cloud::ServingReport report = resumed.Finish();
    EXPECT_EQ(report.requests, expected.requests);
    EXPECT_EQ(report.completed, expected.completed);
    EXPECT_EQ(report.retries, expected.retries);
    EXPECT_EQ(report.dropped_deadline, expected.dropped_deadline);
    EXPECT_EQ(report.dropped_failed, expected.dropped_failed);
    EXPECT_EQ(report.mean_latency_s, expected.mean_latency_s);
    EXPECT_EQ(report.p99_latency_s, expected.p99_latency_s);
    EXPECT_EQ(report.utilization, expected.utilization);
    EXPECT_EQ(report.goodput_per_s, expected.goodput_per_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz, ::testing::Values(21, 22, 23));

// ---------------------------------------------------- quantization fuzzing

class QuantFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantFuzz, RoundTripStaysOnGridAcrossScaleDecades) {
  // Seeded round-trip sweep over twelve decades of scale: the quantized
  // code must stay in [-127, 127], dequantize back within half a step,
  // saturate cleanly, and be a fixed point of requantization.
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const float scale = std::pow(
        10.0f, rng.NextFloat(-6.0f, 6.0f));
    // Values span the grid and a saturating margin beyond it.
    const float v = rng.NextFloat(-1.5f, 1.5f) * 127.0f * scale;
    const std::int8_t q = QuantizeToInt8(v, scale);
    ASSERT_GE(q, -127) << "v=" << v << " scale=" << scale;
    ASSERT_LE(q, 127) << "v=" << v << " scale=" << scale;
    if (std::fabs(v) <= 127.0f * scale) {
      // On-grid values dequantize back within half a quantization step
      // (plus float-rounding slack from the 1/scale and q*scale products).
      ASSERT_LE(std::fabs(static_cast<float>(q) * scale - v),
                scale * 0.5001f + std::fabs(v) * 1e-5f)
          << "v=" << v << " scale=" << scale << " q=" << int(q);
    } else if (std::fabs(v) > 127.6f * scale) {
      ASSERT_EQ(std::abs(int(q)), 127)
          << "saturation expected: v=" << v << " scale=" << scale;
    }
    // Requantizing the dequantized value must be a fixed point — this is
    // what makes repeated checkpoint/restore of quantized weights stable.
    ASSERT_EQ(QuantizeToInt8(static_cast<float>(q) * scale, scale), q)
        << "v=" << v << " scale=" << scale;
  }
}

TEST_P(QuantFuzz, SpecialValuesNeverEscapeTheGrid) {
  Rng rng(GetParam() ^ 0x1717);
  const float specials[] = {std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            0.0f,
                            -0.0f,
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest()};
  for (int trial = 0; trial < 500; ++trial) {
    const float v = specials[rng.NextIndex(std::size(specials))];
    const float scale =
        trial % 7 == 0 ? 0.0f : std::pow(10.0f, rng.NextFloat(-6.0f, 6.0f));
    const std::int8_t q = QuantizeToInt8(v, scale);
    ASSERT_GE(q, -127);
    ASSERT_LE(q, 127);
    if (std::isnan(v) || scale <= 0.0f) ASSERT_EQ(q, 0);
  }
}

TEST_P(QuantFuzz, RandomShapesStayBitwiseEqualToNaiveOracle) {
  // Random shapes, magnitudes, and occasional non-finite activations: the
  // packed kernel must track the naive int8 oracle bitwise everywhere, and
  // finite-scale outputs must stay finite (non-finite containment).
  Rng rng(GetParam() ^ 0x8a7e);
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = static_cast<std::int64_t>(rng.NextIndex(40)) + 1;
    const auto n = static_cast<std::int64_t>(rng.NextIndex(48)) + 1;
    const auto k = static_cast<std::int64_t>(rng.NextIndex(300)) + 1;
    const float mag = std::pow(10.0f, rng.NextFloat(-3.0f, 3.0f));
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& x : a) x = rng.NextFloat(-mag, mag);
    for (auto& x : b) {
      x = rng.NextFloat(-mag, mag);
      const auto roll = rng.NextIndex(200);
      if (roll == 0) x = std::numeric_limits<float>::quiet_NaN();
      if (roll == 1) x = std::numeric_limits<float>::infinity();
      if (roll == 2) x = -0.0f;
    }
    std::vector<float> bias(static_cast<std::size_t>(m));
    for (auto& x : bias) x = rng.NextFloat(-1.0f, 1.0f);
    const Int8Epilogue epi{.bias = bias, .relu = trial % 2 == 0};
    std::vector<float> c_fast(static_cast<std::size_t>(m * n));
    std::vector<float> c_naive(static_cast<std::size_t>(m * n));
    GemmInt8(m, n, k, a, b, c_fast, epi);
    NaiveGemmInt8(m, n, k, a, b, c_naive, epi);
    ASSERT_EQ(0, std::memcmp(c_fast.data(), c_naive.data(),
                             c_fast.size() * sizeof(float)))
        << "trial " << trial << " m=" << m << " n=" << n << " k=" << k;
    for (const float v : c_fast) {
      ASSERT_TRUE(std::isfinite(v)) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantFuzz, ::testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace ccperf
