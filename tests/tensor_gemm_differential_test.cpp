// Differential kernel-correctness harness: the blocked+packed Gemm is
// cross-checked against GemmReference (the pre-blocking row-panel kernel)
// and NaiveGemm (the ground-truth triple loop) over ~200 seeded shape
// samples, including degenerate extents, primes, tile-boundary straddles,
// and highly sparse A panels. Tolerances are scaled by a per-element
// magnitude bound (|A|·|B|) because the packed kernel reassociates the
// K-accumulation into kc-blocks and may contract multiply-add into FMA.
#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf {
namespace {

struct Sample {
  std::int64_t m, n, k;
  double sparsity;  // fraction of A entries forced to exactly 0.0f
};

std::vector<float> RandomMatrix(Rng& rng, std::int64_t count,
                                double sparsity = 0.0) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
  }
  return v;
}

/// |A|·|B|: per-element accumulation-magnitude bound for tolerance scaling.
std::vector<float> AbsBound(std::int64_t m, std::int64_t n, std::int64_t k,
                            const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> aa(a.size()), ab(b.size());
  for (std::size_t i = 0; i < a.size(); ++i) aa[i] = std::fabs(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) ab[i] = std::fabs(b[i]);
  std::vector<float> bound(static_cast<std::size_t>(m * n));
  NaiveGemm(m, n, k, aa, ab, bound);
  return bound;
}

/// The ~200-sample shape schedule: every degenerate/tile-edge case the
/// blocked kernel has a code path for, plus seeded random fill-in.
std::vector<Sample> ShapeSchedule() {
  std::vector<Sample> samples;
  // Degenerate extents in every position (27 samples).
  for (std::int64_t m : {0, 1, 2}) {
    for (std::int64_t n : {0, 1, 2}) {
      for (std::int64_t k : {0, 1, 2}) samples.push_back({m, n, k, 0.0});
    }
  }
  // Microkernel tile boundaries: mr = 6 rows, nr <= 32 columns, kc = 256.
  // Straddle each boundary by one in both directions.
  for (std::int64_t m : {5, 6, 7, 11, 12, 13}) {
    for (std::int64_t n : {31, 32, 33}) samples.push_back({m, n, 40, 0.0});
  }
  for (std::int64_t n : {63, 64, 65, 95, 96, 97}) {
    samples.push_back({9, n, 17, 0.0});
  }
  for (std::int64_t k : {255, 256, 257, 511, 512, 513}) {
    samples.push_back({7, 33, k, 0.0});
  }
  // Primes everywhere (no extent divides any tile dimension).
  for (std::int64_t m : {13, 29, 61}) {
    for (std::int64_t n : {37, 101}) {
      for (std::int64_t k : {23, 127}) samples.push_back({m, n, k, 0.0});
    }
  }
  // Highly sparse A panels — exercises the reference kernel's zero skip
  // against the packed kernel's dense multiply.
  for (double sparsity : {0.5, 0.9, 0.99}) {
    samples.push_back({17, 43, 97, sparsity});
    samples.push_back({48, 64, 256, sparsity});
    samples.push_back({6, 32, 128, sparsity});
  }
  // Seeded random fill-in up to ~200 total.
  Rng rng(0xD1FFu);
  while (samples.size() < 200) {
    samples.push_back({static_cast<std::int64_t>(rng.NextIndex(96)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(160)) + 1,
                       static_cast<std::int64_t>(rng.NextIndex(300)) + 1,
                       rng.NextDouble() < 0.25 ? 0.8 : 0.0});
  }
  return samples;
}

TEST(GemmDifferential, PackedMatchesReferenceAcrossShapeSchedule) {
  const std::vector<Sample> samples = ShapeSchedule();
  ASSERT_GE(samples.size(), 200u);
  std::size_t checked = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto [m, n, k, sparsity] = samples[s];
    Rng rng(0xC0FFEEu + s);
    const auto a = RandomMatrix(rng, m * k, sparsity);
    const auto b = RandomMatrix(rng, k * n);
    std::vector<float> c_fast(static_cast<std::size_t>(m * n), -7.0f);
    std::vector<float> c_ref(static_cast<std::size_t>(m * n), 7.0f);
    Gemm(m, n, k, a, b, c_fast);
    GemmReference(m, n, k, a, b, c_ref);
    if (m == 0 || n == 0) continue;
    const auto bound = AbsBound(m, n, k, a, b);
    for (std::size_t i = 0; i < c_fast.size(); ++i) {
      const float tol = 1e-5f * std::max(1.0f, bound[i]);
      ASSERT_NEAR(c_fast[i], c_ref[i], tol)
          << "sample " << s << " (m=" << m << " n=" << n << " k=" << k
          << " sparsity=" << sparsity << ") at index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(GemmDifferential, PackedMatchesNaiveOnTileStraddlingShapes) {
  // Smaller sweep against the O(MNK) ground truth (quadratic cost).
  for (const auto& [m, n, k] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{6, 32, 256},
        {7, 33, 257}, {5, 31, 255}, {13, 97, 129}, {1, 1, 1000}, {96, 1, 1}}) {
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    const auto a = RandomMatrix(rng, m * k);
    const auto b = RandomMatrix(rng, k * n);
    std::vector<float> c_fast(static_cast<std::size_t>(m * n));
    std::vector<float> c_naive(static_cast<std::size_t>(m * n));
    Gemm(m, n, k, a, b, c_fast);
    NaiveGemm(m, n, k, a, b, c_naive);
    const auto bound = AbsBound(m, n, k, a, b);
    for (std::size_t i = 0; i < c_fast.size(); ++i) {
      ASSERT_NEAR(c_fast[i], c_naive[i], 1e-5f * std::max(1.0f, bound[i]))
          << "m=" << m << " n=" << n << " k=" << k << " index " << i;
    }
  }
}

TEST(GemmDifferential, PackedAReusedAcrossMultiplies) {
  // One PackA serving several B operands (the conv/fc weight-reuse pattern)
  // must give bitwise the same answer as the pack-on-the-fly entry point.
  constexpr std::int64_t m = 23, n = 57, k = 301;
  Rng rng(404);
  const auto a = RandomMatrix(rng, m * k);
  const PackedA packed = PackA(m, k, a);
  EXPECT_EQ(packed.M(), m);
  EXPECT_EQ(packed.K(), k);
  EXPECT_FALSE(packed.Empty());
  for (int trial = 0; trial < 3; ++trial) {
    const auto b = RandomMatrix(rng, k * n);
    std::vector<float> c_cached(static_cast<std::size_t>(m * n));
    std::vector<float> c_fresh(static_cast<std::size_t>(m * n));
    GemmPacked(packed, n, b, c_cached);
    Gemm(m, n, k, a, b, c_fresh);
    EXPECT_EQ(0, std::memcmp(c_cached.data(), c_fresh.data(),
                             c_cached.size() * sizeof(float)))
        << "trial " << trial;
  }
}

TEST(GemmDifferential, RepeatedRunsAreBitwiseDeterministic) {
  constexpr std::int64_t m = 67, n = 129, k = 300;
  Rng rng(55);
  const auto a = RandomMatrix(rng, m * k);
  const auto b = RandomMatrix(rng, k * n);
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c2(static_cast<std::size_t>(m * n));
  Gemm(m, n, k, a, b, c1);
  Gemm(m, n, k, a, b, c2);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// --- The reference kernel's aik == 0.0f skip ------------------------------
// GemmReference skips A entries equal to 0.0f. For finite inputs the skip is
// value-preserving (0 * finite == +/-0, which cannot move a sum), but with
// non-finite B it silently differs from IEEE arithmetic. The packed kernel
// intentionally drops the skip and multiplies densely; these tests pin down
// both halves of that decision.

TEST(GemmZeroSkip, NegativeZerosAndDenormalsArePreserved) {
  constexpr std::int64_t m = 8, n = 33, k = 64;
  Rng rng(98);
  auto a = RandomMatrix(rng, m * k);
  auto b = RandomMatrix(rng, k * n);
  const float denormal = std::numeric_limits<float>::denorm_min() * 64.0f;
  for (std::size_t i = 0; i < a.size(); i += 3) a[i] = -0.0f;
  for (std::size_t i = 1; i < a.size(); i += 5) a[i] = denormal;
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] = -denormal;
  std::vector<float> c_fast(static_cast<std::size_t>(m * n));
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  std::vector<float> c_naive(static_cast<std::size_t>(m * n));
  Gemm(m, n, k, a, b, c_fast);
  GemmReference(m, n, k, a, b, c_ref);
  NaiveGemm(m, n, k, a, b, c_naive);
  const auto bound = AbsBound(m, n, k, a, b);
  for (std::size_t i = 0; i < c_fast.size(); ++i) {
    const float tol = 1e-5f * std::max(1.0f, bound[i]);
    ASSERT_NEAR(c_fast[i], c_naive[i], tol) << "packed vs naive at " << i;
    ASSERT_NEAR(c_ref[i], c_naive[i], tol) << "reference vs naive at " << i;
  }
}

TEST(GemmZeroSkip, AllZeroRowTimesNonFiniteBDivergesByDesign) {
  // A row of exact zeros against a B containing NaN: IEEE says 0 * NaN is
  // NaN, so the packed kernel and NaiveGemm propagate it; GemmReference's
  // skip returns 0. This is the documented, intentional divergence — the
  // skip was a speed hack for sparse-ish panels, superseded by the CSR path.
  constexpr std::int64_t m = 2, n = 4, k = 3;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) a[static_cast<std::size_t>(k + kk)] = 1.0f;
  std::vector<float> b(static_cast<std::size_t>(k * n), 1.0f);
  b[1] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> c_fast(static_cast<std::size_t>(m * n));
  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  std::vector<float> c_naive(static_cast<std::size_t>(m * n));
  Gemm(m, n, k, a, b, c_fast);
  GemmReference(m, n, k, a, b, c_ref);
  NaiveGemm(m, n, k, a, b, c_naive);
  // Row 0 (all-zero A row), column 1 (NaN in B): packed/naive propagate.
  EXPECT_TRUE(std::isnan(c_fast[1]));
  EXPECT_TRUE(std::isnan(c_naive[1]));
  EXPECT_EQ(c_ref[1], 0.0f);  // the reference skip hides the NaN
  // Row 1 multiplies the NaN by 1 — every kernel must propagate it there.
  EXPECT_TRUE(std::isnan(c_fast[static_cast<std::size_t>(n + 1)]));
  EXPECT_TRUE(std::isnan(c_ref[static_cast<std::size_t>(n + 1)]));
  // All-finite columns agree everywhere.
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(c_fast[i], c_ref[i]);
    EXPECT_EQ(c_fast[n + i], c_ref[n + i]);
  }
}

TEST(GemmDifferential, PackARejectsSizeMismatch) {
  std::vector<float> a(5);
  EXPECT_THROW(PackA(2, 3, a), CheckError);
}

}  // namespace
}  // namespace ccperf
