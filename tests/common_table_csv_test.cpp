#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/table.h"

namespace ccperf {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"layer", "share"});
  t.AddRow({"conv1", "0.35"});
  t.AddRow({"conv2", "0.30"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("layer"), std::string::npos);
  EXPECT_NE(out.find("conv1"), std::string::npos);
  EXPECT_NE(out.find("0.30"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t({"a"});
  t.AddRow({"longer-cell"});
  const std::string out = t.Render();
  // Every line has the same width.
  std::istringstream iss(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), CheckError);
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(AsciiChart, RendersSeries) {
  AsciiChart chart(40, 10);
  chart.AddSeries("t", '*', {{0.0, 1.0}, {1.0, 2.0}, {2.0, 1.5}});
  const std::string out = chart.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("t"), std::string::npos);
}

TEST(AsciiChart, EmptyChart) {
  AsciiChart chart(40, 10);
  EXPECT_EQ(chart.Render(), "(empty chart)\n");
}

TEST(AsciiChart, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiChart(2, 2), CheckError);
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string ReadAll() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  std::string path_ = ::testing::TempDir() + "/ccperf_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"x", "y"});
    csv.AddRow({"1", "2"});
    csv.AddRow({"3", "4"});
  }
  EXPECT_EQ(ReadAll(), "x,y\n1,2\n3,4\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"v"});
    csv.AddRow({"a,b"});
    csv.AddRow({"q\"q"});
  }
  EXPECT_EQ(ReadAll(), "v\n\"a,b\"\n\"q\"\"q\"\n");
}

TEST_F(CsvTest, RejectsWrongWidth) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.AddRow({"1"}), CheckError);
}

TEST(Csv, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), CheckError);
}

}  // namespace
}  // namespace ccperf
