#include "common/threading.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ccperf {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoJobsReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.ThreadCount(), 1u);
}

TEST(ThreadPool, SequentialBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SubRange) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 1);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelForChunks, ChunksCoverRangeWithoutOverlap) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelForChunks(
      0, hits.size(),
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunks, SmallRangeRunsSerially) {
  int calls = 0;
  ParallelForChunks(
      0, 10,
      [&calls](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
      },
      256);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, TaskExceptionSurfacesAsCheckError) {
  // Exceptions inside tasks must not crash the pool; they surface as a
  // CheckError after the barrier (only when the range actually splits).
  if (GlobalPool().ThreadCount() <= 1) {
    GTEST_SKIP() << "single-threaded pool runs serially";
  }
  EXPECT_THROW(
      ParallelFor(
          0, 10000, [](std::size_t i) { CCPERF_CHECK(i != 5000, "boom"); }, 1),
      CheckError);
}

}  // namespace
}  // namespace ccperf
