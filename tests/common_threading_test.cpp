#include "common/threading.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ccperf {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoJobsReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.ThreadCount(), 1u);
}

TEST(ThreadPool, SequentialBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SubRange) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 1);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelForChunks, ChunksCoverRangeWithoutOverlap) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelForChunks(
      0, hits.size(),
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunks, SmallRangeRunsSerially) {
  int calls = 0;
  ParallelForChunks(
      0, 10,
      [&calls](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
      },
      256);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForChunks, RangeJustBelowTwoGrainRunsAsOneChunk) {
  // n < 2*grain must stay a single inline chunk — including nonzero begin.
  int calls = 0;
  ParallelForChunks(
      100, 611,  // 511 iterations, grain 256
      [&calls](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 100u);
        EXPECT_EQ(hi, 611u);
      },
      256);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForChunks, RangeExactlyTwoGrainMaySplitButCoversRange) {
  // n == 2*grain is the smallest range allowed to go parallel; coverage and
  // exactly-once semantics must hold whichever way it is scheduled.
  std::vector<std::atomic<int>> hits(512);
  ParallelForChunks(
      0, hits.size(),
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      256);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallsFromInsideParallelForDoNotDeadlock) {
  // A ParallelFor body that itself calls ParallelFor: the inner loops run
  // inline on whichever thread executes the outer chunk. The old
  // implementation waited on the pool's global in-flight counter here and
  // deadlocked when issued from a worker.
  std::vector<std::atomic<int>> hits(64 * 64);
  ParallelFor(
      0, 64,
      [&hits](std::size_t outer) {
        ParallelFor(
            0, 64,
            [&hits, outer](std::size_t inner) {
              hits[outer * 64 + inner].fetch_add(1);
            },
            1);
      },
      1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallFromSubmittedWorkerJobDoesNotDeadlock) {
  // ParallelFor issued from inside a job running ON a global-pool worker —
  // the exact shape of the conv kernel calling ParallelForChunks from a
  // batched outer loop.
  std::atomic<long> sum{0};
  std::atomic<bool> done{false};
  GlobalPool().Submit([&sum, &done] {
    ParallelFor(
        0, 1000, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
        8);
    done.store(true);
  });
  GlobalPool().Wait();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ParallelFor, OverlappingCallsFromMultipleThreads) {
  // Several external threads issuing ParallelFor concurrently: each call
  // waits only on its own chunks (per-call latch), so no call can consume
  // another's completion signal or return early.
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kThreads);
  for (auto& v : hits) {
    v = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hits, t] {
      for (int round = 0; round < 8; ++round) {
        ParallelFor(
            0, kN, [&hits, t](std::size_t i) { hits[t][i].fetch_add(1); }, 16);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& h : hits[t]) ASSERT_EQ(h.load(), 8) << "thread " << t;
  }
}

TEST(ParallelFor, SubmitFromMultipleThreadsWhileLoopsRun) {
  // Raw Submit traffic interleaved with ParallelFor from other threads:
  // the per-call latch must be insensitive to unrelated queue activity.
  std::atomic<int> submitted_done{0};
  std::atomic<long> loop_sum{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&submitted_done] {
    for (int i = 0; i < 200; ++i) {
      GlobalPool().Submit([&submitted_done] { submitted_done.fetch_add(1); });
    }
  });
  threads.emplace_back([&loop_sum] {
    for (int round = 0; round < 4; ++round) {
      ParallelFor(
          0, 2000,
          [&loop_sum](std::size_t i) {
            loop_sum.fetch_add(static_cast<long>(i));
          },
          8);
    }
  });
  for (auto& th : threads) th.join();
  GlobalPool().Wait();  // drain the raw submissions
  EXPECT_EQ(submitted_done.load(), 200);
  EXPECT_EQ(loop_sum.load(), 4L * 1999000);
}

TEST(ScopedSerialTest, ForcesSingleInlineChunk) {
  ScopedSerial serial;
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelForChunks(
      0, 100000,
      [&calls, caller](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100000u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      1);
  EXPECT_EQ(calls, 1);
}

TEST(ScopedSerialTest, IsScopedToItsBlock) {
  {
    ScopedSerial serial;
    int calls = 0;
    ParallelForChunks(
        0, 100000, [&calls](std::size_t, std::size_t) { ++calls; }, 1);
    EXPECT_EQ(calls, 1);
  }
  // After the scope ends, parallel splitting is allowed again (on a
  // multi-core pool this produces > 1 chunk; on 1 core it stays serial).
  std::atomic<int> calls{0};
  ParallelForChunks(
      0, 100000, [&calls](std::size_t, std::size_t) { calls.fetch_add(1); },
      1);
  if (GlobalPool().ThreadCount() > 1) {
    EXPECT_GT(calls.load(), 1);
  } else {
    EXPECT_EQ(calls.load(), 1);
  }
}

TEST(ParallelFor, TaskExceptionSurfacesAsCheckError) {
  // Exceptions inside tasks must not crash the pool; they surface as a
  // CheckError after the barrier (only when the range actually splits).
  if (GlobalPool().ThreadCount() <= 1) {
    GTEST_SKIP() << "single-threaded pool runs serially";
  }
  EXPECT_THROW(
      ParallelFor(
          0, 10000, [](std::size_t i) { CCPERF_CHECK(i != 5000, "boom"); }, 1),
      CheckError);
}

TEST(ParallelFor, NestedVerifierErrorSurfacesAtTheOuterCall) {
  // The ABFT-verification shape: an outer parallel sweep whose body runs a
  // nested ParallelForChunks (the per-column checksum verify) that throws
  // when it finds corruption. Nested calls run inline on pool workers, so
  // the inner error must cross the outer chunk boundary and surface as the
  // outer call's CheckError — no deadlock, no lost error, and the pool must
  // stay usable afterwards.
  if (GlobalPool().ThreadCount() <= 1) {
    GTEST_SKIP() << "single-threaded pool runs serially";
  }
  std::atomic<int> inner_calls{0};
  EXPECT_THROW(
      ParallelFor(
          0, 256,
          [&inner_calls](std::size_t i) {
            ParallelForChunks(
                0, 64,
                [&inner_calls, i](std::size_t lo, std::size_t hi) {
                  inner_calls.fetch_add(1, std::memory_order_relaxed);
                  CCPERF_CHECK(i != 100 || lo != 0,
                               "checksum mismatch in column ", hi);
                },
                8);
          },
          1),
      CheckError);
  EXPECT_GT(inner_calls.load(), 0);

  // The pool survives: a clean sweep still visits every index.
  std::vector<int> hits(512, 0);
  ParallelFor(0, hits.size(), [&hits](std::size_t i) { hits[i] = 1; }, 1);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 512);
}

TEST(ParallelFor, SerialModePreservesTheOriginalErrorMessage) {
  // Under ScopedSerial everything runs inline, so the FIRST failing index
  // throws directly and its message survives verbatim — the debugging path
  // for reproducing a corruption hit deterministically.
  ScopedSerial serial;
  std::size_t last_seen = 0;
  try {
    ParallelFor(
        0, 1000,
        [&last_seen](std::size_t i) {
          last_seen = i;
          CCPERF_CHECK(i != 41, "corrupted at index ", i);
        },
        1);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("corrupted at index 41"),
              std::string::npos)
        << e.what();
  }
  // Inline execution stops at the first error: nothing past 41 ran.
  EXPECT_EQ(last_seen, 41u);
}

}  // namespace
}  // namespace ccperf
