#include "data/synthetic_dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/check.h"

namespace ccperf::data {
namespace {

SyntheticImageDataset MakeDataset(std::uint64_t seed = 1) {
  return SyntheticImageDataset(Shape{3, 8, 8}, 10, 1000, seed);
}

TEST(Dataset, Deterministic) {
  const SyntheticImageDataset a = MakeDataset(5);
  const SyntheticImageDataset b = MakeDataset(5);
  const Tensor ia = a.ImageAt(17);
  const Tensor ib = b.ImageAt(17);
  for (std::int64_t i = 0; i < ia.NumElements(); ++i) {
    EXPECT_EQ(ia.At(i), ib.At(i));
  }
  EXPECT_EQ(a.LabelAt(17), b.LabelAt(17));
}

TEST(Dataset, DifferentSeedsDifferentImages) {
  const SyntheticImageDataset a = MakeDataset(1);
  const SyntheticImageDataset b = MakeDataset(2);
  const Tensor ia = a.ImageAt(0);
  const Tensor ib = b.ImageAt(0);
  double diff = 0.0;
  for (std::int64_t i = 0; i < ia.NumElements(); ++i) {
    diff += std::fabs(ia.At(i) - ib.At(i));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Dataset, LabelsInRangeAndBalancedish) {
  const SyntheticImageDataset d = MakeDataset(3);
  std::map<std::int64_t, int> counts;
  for (std::int64_t i = 0; i < d.Size(); ++i) {
    const std::int64_t label = d.LabelAt(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, d.NumClasses());
    ++counts[label];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, 50);  // 1000 images over 10 classes, expect ~100 each
    EXPECT_LT(c, 200);
  }
}

TEST(Dataset, BatchStacksImages) {
  const SyntheticImageDataset d = MakeDataset(4);
  const Tensor batch = d.Batch(5, 3);
  ASSERT_EQ(batch.GetShape(), (Shape{3, 3, 8, 8}));
  const std::int64_t stride = 3 * 8 * 8;
  for (std::int64_t k = 0; k < 3; ++k) {
    const Tensor single = d.ImageAt(5 + k);
    for (std::int64_t i = 0; i < stride; ++i) {
      EXPECT_EQ(batch.At(k * stride + i), single.At(i));
    }
  }
}

TEST(Dataset, BatchLabelsMatch) {
  const SyntheticImageDataset d = MakeDataset(4);
  const auto labels = d.BatchLabels(10, 5);
  ASSERT_EQ(labels.size(), 5u);
  for (std::int64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(labels[static_cast<std::size_t>(k)], d.LabelAt(10 + k));
  }
}

TEST(Dataset, SameClassImagesCorrelateMoreThanCrossClass) {
  // The class signature must dominate noise enough for teacher-student
  // evaluation to be meaningful.
  const SyntheticImageDataset d(Shape{3, 8, 8}, 4, 1000, 9, 0.25f);
  // Find two images of the same class and one of a different class.
  std::int64_t a = 0;
  std::int64_t b = -1, c = -1;
  for (std::int64_t i = 1; i < d.Size() && (b < 0 || c < 0); ++i) {
    if (d.LabelAt(i) == d.LabelAt(a) && b < 0) b = i;
    if (d.LabelAt(i) != d.LabelAt(a) && c < 0) c = i;
  }
  ASSERT_GE(b, 0);
  ASSERT_GE(c, 0);
  const Tensor ia = d.ImageAt(a), ib = d.ImageAt(b), ic = d.ImageAt(c);
  auto dist = [](const Tensor& x, const Tensor& y) {
    double s = 0.0;
    for (std::int64_t i = 0; i < x.NumElements(); ++i) {
      const double diff = x.At(i) - y.At(i);
      s += diff * diff;
    }
    return s;
  };
  EXPECT_LT(dist(ia, ib), dist(ia, ic));
}

TEST(Dataset, BoundsChecked) {
  const SyntheticImageDataset d = MakeDataset(6);
  EXPECT_THROW(d.ImageAt(-1), CheckError);
  EXPECT_THROW(d.ImageAt(1000), CheckError);
  EXPECT_THROW(d.Batch(999, 2), CheckError);
  EXPECT_THROW(d.Batch(0, 0), CheckError);
  EXPECT_THROW(d.BatchLabels(-1, 2), CheckError);
}

TEST(Dataset, RejectsBadConstruction) {
  EXPECT_THROW(SyntheticImageDataset(Shape{3, 8}, 10, 100, 1), CheckError);
  EXPECT_THROW(SyntheticImageDataset(Shape{3, 8, 8}, 1, 100, 1), CheckError);
  EXPECT_THROW(SyntheticImageDataset(Shape{3, 8, 8}, 10, 0, 1), CheckError);
}

TEST(Dataset, NoiselessImagesOfSameClassIdentical) {
  const SyntheticImageDataset d(Shape{3, 8, 8}, 4, 100, 11, 0.0f);
  std::int64_t a = 0, b = -1;
  for (std::int64_t i = 1; i < d.Size(); ++i) {
    if (d.LabelAt(i) == d.LabelAt(a)) {
      b = i;
      break;
    }
  }
  ASSERT_GE(b, 0);
  const Tensor ia = d.ImageAt(a), ib = d.ImageAt(b);
  for (std::int64_t i = 0; i < ia.NumElements(); ++i) {
    EXPECT_EQ(ia.At(i), ib.At(i));
  }
}

}  // namespace
}  // namespace ccperf::data
