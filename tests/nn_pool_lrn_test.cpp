#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "nn/concat_layer.h"
#include "nn/lrn_layer.h"
#include "nn/pool_layer.h"

namespace ccperf::nn {
namespace {

TEST(PoolLayer, MaxPoolHandComputed) {
  PoolLayer pool("p", LayerKind::kMaxPool, {.kernel = 2, .stride = 2});
  Tensor in(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) in.Set(i, static_cast<float>(i));
  const Tensor out = pool.Forward({&in});
  ASSERT_EQ(out.GetShape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.At4(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 0, 1, 0), 13.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 0, 1, 1), 15.0f);
}

TEST(PoolLayer, AvgPoolHandComputed) {
  PoolLayer pool("p", LayerKind::kAvgPool, {.kernel = 2, .stride = 2});
  Tensor in(Shape{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor out = pool.Forward({&in});
  EXPECT_FLOAT_EQ(out.At(0), 2.5f);
}

TEST(PoolLayer, CeilModeMatchesCaffe) {
  // Caffe's 3x3 stride-2 pooling on 55 -> 27 (ceil((55-3)/2)+1 = 27) and
  // on 13 -> 6; GoogLeNet's 112 -> 56 chain relies on the same rounding.
  PoolLayer pool("p", LayerKind::kMaxPool, {.kernel = 3, .stride = 2});
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 55, 55}}).Dim(2), 27);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 27, 27}}).Dim(2), 13);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 13, 13}}).Dim(2), 6);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 112, 112}}).Dim(2), 56);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 56, 56}}).Dim(2), 28);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 28, 28}}).Dim(2), 14);
  EXPECT_EQ(pool.OutputShape({Shape{1, 1, 14, 14}}).Dim(2), 7);
}

TEST(PoolLayer, PaddedPoolingKeepsSize) {
  // Inception's 3x3 stride-1 pad-1 pooling preserves the map size.
  PoolLayer pool("p", LayerKind::kMaxPool,
                 {.kernel = 3, .stride = 1, .pad = 1});
  EXPECT_EQ(pool.OutputShape({Shape{1, 8, 14, 14}}), (Shape{1, 8, 14, 14}));
}

TEST(PoolLayer, PaddedAvgExcludesOutOfBounds) {
  // Average over the valid window only (count excludes padding).
  PoolLayer pool("p", LayerKind::kAvgPool,
                 {.kernel = 3, .stride = 1, .pad = 1});
  Tensor in(Shape{1, 1, 2, 2}, {4.0f, 4.0f, 4.0f, 4.0f});
  const Tensor out = pool.Forward({&in});
  for (std::int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out.At(i), 4.0f);
  }
}

TEST(PoolLayer, GlobalAveragePool) {
  PoolLayer pool("p", LayerKind::kAvgPool, {.kernel = 7, .stride = 1});
  Tensor in(Shape{1, 2, 7, 7});
  for (std::int64_t i = 0; i < 49; ++i) in.Set(i, 2.0f);         // chan 0
  for (std::int64_t i = 49; i < 98; ++i) in.Set(i, 6.0f);        // chan 1
  const Tensor out = pool.Forward({&in});
  ASSERT_EQ(out.GetShape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.At(0), 2.0f);
  EXPECT_FLOAT_EQ(out.At(1), 6.0f);
}

TEST(PoolLayer, RejectsWrongKind) {
  EXPECT_THROW(PoolLayer("p", LayerKind::kReLU, {}), CheckError);
}

TEST(PoolLayer, NegativeValuesMaxPool) {
  PoolLayer pool("p", LayerKind::kMaxPool, {.kernel = 2, .stride = 2});
  Tensor in(Shape{1, 1, 2, 2}, {-5.0f, -3.0f, -9.0f, -4.0f});
  EXPECT_FLOAT_EQ(pool.Forward({&in}).At(0), -3.0f);
}

TEST(LrnLayer, IdentityWhenAlphaZero) {
  LrnLayer lrn("n", {.local_size = 5, .alpha = 0.0f, .beta = 0.75f});
  Tensor in(Shape{1, 8, 2, 2});
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    in.Set(i, static_cast<float>(i % 5) - 2.0f);
  }
  const Tensor out = lrn.Forward({&in});
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out.At(i), in.At(i));
  }
}

TEST(LrnLayer, HandComputedSingleChannel) {
  LrnLayer lrn("n", {.local_size = 1, .alpha = 1.0f, .beta = 1.0f, .k = 0.0f});
  Tensor in(Shape{1, 1, 1, 1}, {2.0f});
  // denom = (0 + 1/1 * 4)^1 = 4 -> 2/4 = 0.5
  EXPECT_FLOAT_EQ(lrn.Forward({&in}).At(0), 0.5f);
}

TEST(LrnLayer, CrossChannelWindow) {
  LrnLayer lrn("n", {.local_size = 3, .alpha = 3.0f, .beta = 1.0f, .k = 1.0f});
  Tensor in(Shape{1, 3, 1, 1}, {1.0f, 2.0f, 3.0f});
  // Channel 1 window = {1,2,3}: ss = 14, scale = 1/(1 + 1*14) = 1/15.
  EXPECT_NEAR(lrn.Forward({&in}).At(1), 2.0f / 15.0f, 1e-6f);
  // Channel 0 window = {1,2}: ss = 5, scale = 1/6.
  EXPECT_NEAR(lrn.Forward({&in}).At(0), 1.0f / 6.0f, 1e-6f);
}

TEST(LrnLayer, RejectsEvenWindow) {
  EXPECT_THROW(LrnLayer("n", {.local_size = 4}), CheckError);
}

TEST(ConcatLayer, JoinsChannels) {
  ConcatLayer concat("c");
  Tensor a(Shape{1, 2, 2, 2}, std::vector<float>(8, 1.0f));
  Tensor b(Shape{1, 3, 2, 2}, std::vector<float>(12, 2.0f));
  const Tensor out = concat.Forward({&a, &b});
  ASSERT_EQ(out.GetShape(), (Shape{1, 5, 2, 2}));
  EXPECT_FLOAT_EQ(out.At4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 1, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 2, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 4, 1, 1), 2.0f);
}

TEST(ConcatLayer, BatchInterleavingCorrect) {
  ConcatLayer concat("c");
  Tensor a(Shape{2, 1, 1, 1}, {1.0f, 3.0f});
  Tensor b(Shape{2, 1, 1, 1}, {2.0f, 4.0f});
  const Tensor out = concat.Forward({&a, &b});
  ASSERT_EQ(out.GetShape(), (Shape{2, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.At4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At4(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.At4(1, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.At4(1, 1, 0, 0), 4.0f);
}

TEST(ConcatLayer, RejectsMismatchedSpatial) {
  ConcatLayer concat("c");
  EXPECT_THROW(
      concat.OutputShape({Shape{1, 2, 4, 4}, Shape{1, 2, 5, 5}}), CheckError);
}

TEST(ConcatLayer, RejectsSingleInput) {
  ConcatLayer concat("c");
  EXPECT_THROW(concat.OutputShape({Shape{1, 2, 4, 4}}), CheckError);
}

}  // namespace
}  // namespace ccperf::nn
