#include "cloud/model_profile.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/model_zoo.h"

namespace ccperf::cloud {
namespace {

TEST(CaffeNetProfile, SharesSumToOne) {
  const ModelProfile p = CaffeNetProfile();
  EXPECT_NEAR(p.TotalShare(), 1.0, 1e-6);
}

TEST(CaffeNetProfile, ReferenceTimeMatchesPaper) {
  // 19 minutes for 50,000 images (Fig. 6).
  const ModelProfile p = CaffeNetProfile();
  EXPECT_NEAR(p.ref_seconds_per_image.value() * 50000.0, 19.0 * 60.0, 1.0);
}

TEST(CaffeNetProfile, ConvLayersDominate) {
  // Fig. 3: convolution layers account for > 90 % of inference time.
  const ModelProfile p = CaffeNetProfile();
  double conv_share = 0.0;
  for (const auto& name : {"conv1", "conv2", "conv3", "conv4", "conv5"}) {
    conv_share += p.layers.at(name).time_share;
  }
  EXPECT_GT(conv_share, 0.90);
}

TEST(CaffeNetProfile, Conv1LargestConv2Second) {
  const ModelProfile p = CaffeNetProfile();
  const double c1 = p.layers.at("conv1").time_share;
  const double c2 = p.layers.at("conv2").time_share;
  for (const auto& [name, lp] : p.layers) {
    if (name != "conv1") EXPECT_GT(c1, lp.time_share) << name;
    if (name != "conv1" && name != "conv2") {
      EXPECT_GT(c2, lp.time_share) << name;
    }
  }
}

TEST(CaffeNetProfile, Conv1LeastPrunable) {
  // Stride-4 conv1 is im2col-bound: the smallest prunable fraction.
  const ModelProfile p = CaffeNetProfile();
  const double c1 = p.layers.at("conv1").prunable_fraction;
  for (const auto& [name, lp] : p.layers) {
    if (name != "conv1") EXPECT_LT(c1, lp.prunable_fraction) << name;
  }
}

TEST(CaffeNetProfile, UpstreamChainIsTopological) {
  const ModelProfile p = CaffeNetProfile();
  EXPECT_EQ(p.layers.at("conv1").upstream, "");
  EXPECT_EQ(p.layers.at("conv2").upstream, "conv1");
  EXPECT_EQ(p.layers.at("fc1").upstream, "conv5");
  // Every upstream appears earlier in layer_order.
  for (std::size_t i = 0; i < p.layer_order.size(); ++i) {
    const std::string& up = p.layers.at(p.layer_order[i]).upstream;
    if (up.empty()) continue;
    bool found_before = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (p.layer_order[j] == up) found_before = true;
    }
    EXPECT_TRUE(found_before) << p.layer_order[i] << " <- " << up;
  }
}

TEST(GoogLeNetProfile, SharesSumToOne) {
  const ModelProfile p = GoogLeNetProfile();
  EXPECT_NEAR(p.TotalShare(), 1.0, 1e-6);
}

TEST(GoogLeNetProfile, ReferenceTimeMatchesPaper) {
  const ModelProfile p = GoogLeNetProfile();
  EXPECT_NEAR(p.ref_seconds_per_image.value() * 50000.0, 13.0 * 60.0, 1.0);
}

TEST(GoogLeNetProfile, CoversAllWeightedLayers) {
  const ModelProfile p = GoogLeNetProfile();
  EXPECT_EQ(p.layer_order.size(), 58u);  // 57 convs + classifier fc
  EXPECT_TRUE(p.layers.contains("inception-4d-5x5"));
  EXPECT_TRUE(p.layers.contains("loss3-classifier"));
}

TEST(GoogLeNetProfile, StemSharesAnchoredToFig7) {
  const ModelProfile p = GoogLeNetProfile();
  EXPECT_NEAR(p.layers.at("conv1-7x7-s2").time_share, 0.10, 1e-9);
  EXPECT_NEAR(p.layers.at("conv2-3x3").time_share, 0.33, 1e-9);
}

TEST(GoogLeNetProfile, InceptionBranchUpstreams) {
  const ModelProfile p = GoogLeNetProfile();
  // The 3x3 conv is fed by its reduce layer within the same module.
  EXPECT_EQ(p.layers.at("inception-3a-3x3").upstream,
            "inception-3a-3x3-reduce");
  // Branch heads behind the concat have no single upstream.
  EXPECT_EQ(p.layers.at("inception-3b-1x1").upstream, "");
}

TEST(GenericProfile, TinyCnnInvariants) {
  nn::ModelConfig config;
  config.weight_seed = 5;
  const nn::Network net = nn::BuildTinyCnn(config);
  const ModelProfile p = GenericProfile(net, Seconds(0.001));
  EXPECT_NEAR(p.TotalShare(), 1.0, 1e-6);
  EXPECT_EQ(p.layer_order.size(), 4u);  // conv1, conv2, fc1, fc2
  EXPECT_EQ(p.layers.at("conv2").upstream, "conv1");
  EXPECT_EQ(p.layers.at("fc1").upstream, "conv2");
  EXPECT_GT(p.kernel_count, 0);
}

TEST(GenericProfile, RejectsNonPositiveReference) {
  nn::ModelConfig config;
  config.weight_seed = 5;
  const nn::Network net = nn::BuildTinyCnn(config);
  EXPECT_THROW(GenericProfile(net, Seconds(0.0)), CheckError);
}

}  // namespace
}  // namespace ccperf::cloud
