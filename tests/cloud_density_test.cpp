#include "cloud/density.h"

#include <gtest/gtest.h>

#include "cloud/variant_perf.h"
#include "common/check.h"
#include "nn/model_zoo.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::cloud {
namespace {

TEST(DensityFromPlan, NoopPlanIsFullyDense) {
  const ModelProfile profile = CaffeNetProfile();
  const DensityMap map = DensityFromPlan(profile, {});
  for (const auto& [name, d] : map) {
    EXPECT_DOUBLE_EQ(d.element, 1.0) << name;
    EXPECT_DOUBLE_EQ(d.out_filter, 1.0) << name;
    EXPECT_DOUBLE_EQ(d.in_channel, 1.0) << name;
  }
  EXPECT_EQ(map.size(), profile.layer_order.size());
}

TEST(DensityFromPlan, FilterPruningPropagatesChannels) {
  const ModelProfile profile = CaffeNetProfile();
  pruning::PrunePlan plan;
  plan.family = pruning::PrunerFamily::kL1Filter;
  plan.layer_ratios["conv1"] = 0.4;
  const DensityMap map = DensityFromPlan(profile, plan);
  EXPECT_DOUBLE_EQ(map.at("conv1").element, 0.6);
  EXPECT_DOUBLE_EQ(map.at("conv1").out_filter, 0.6);
  EXPECT_DOUBLE_EQ(map.at("conv2").in_channel, 0.6);
  EXPECT_DOUBLE_EQ(map.at("conv3").in_channel, 1.0);  // conv2 unpruned
}

TEST(DensityFromPlan, MagnitudePruningDoesNotPropagate) {
  const ModelProfile profile = CaffeNetProfile();
  pruning::PrunePlan plan;
  plan.family = pruning::PrunerFamily::kMagnitude;
  plan.layer_ratios["conv1"] = 0.4;
  const DensityMap map = DensityFromPlan(profile, plan);
  EXPECT_DOUBLE_EQ(map.at("conv1").element, 0.6);
  EXPECT_DOUBLE_EQ(map.at("conv1").out_filter, 1.0);
  EXPECT_DOUBLE_EQ(map.at("conv2").in_channel, 1.0);
}

TEST(DensityFromPlan, UnknownPrunedLayerThrows) {
  const ModelProfile profile = CaffeNetProfile();
  pruning::PrunePlan plan;
  plan.layer_ratios["ghost"] = 0.5;
  EXPECT_THROW(DensityFromPlan(profile, plan), CheckError);
}

TEST(DensityFromNetwork, ReflectsActualPruning) {
  nn::ModelConfig config;
  config.weight_seed = 3;
  nn::Network net = nn::BuildTinyCnn(config);
  pruning::PrunePlan plan;
  plan.family = pruning::PrunerFamily::kL1Filter;
  plan.layer_ratios["conv1"] = 0.5;
  pruning::ApplyPlanInPlace(net, plan);

  const DensityMap map = DensityFromNetwork(net);
  EXPECT_NEAR(map.at("conv1").element, 0.5, 1e-9);
  EXPECT_NEAR(map.at("conv1").out_filter, 0.5, 1e-9);
  // conv2 is fed through relu/pool from conv1: half its input channels die.
  EXPECT_NEAR(map.at("conv2").in_channel, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(map.at("conv2").element, 1.0);
}

TEST(DensityFromNetwork, AgreesWithAnalyticPlanDensities) {
  nn::ModelConfig config;
  config.weight_seed = 4;
  const nn::Network base = nn::BuildTinyCnn(config);
  const ModelProfile profile = GenericProfile(base, Seconds(0.001));

  pruning::PrunePlan plan;
  plan.family = pruning::PrunerFamily::kL1Filter;
  plan.layer_ratios["conv1"] = 0.25;
  plan.layer_ratios["conv2"] = 0.5;

  const DensityMap analytic = DensityFromPlan(profile, plan);
  const DensityMap measured =
      DensityFromNetwork(pruning::ApplyPlan(base, plan));
  for (const auto& [name, a] : analytic) {
    const LayerDensity& m = measured.at(name);
    EXPECT_NEAR(a.element, m.element, 0.02) << name;
    EXPECT_NEAR(a.out_filter, m.out_filter, 0.02) << name;
    EXPECT_NEAR(a.in_channel, m.in_channel, 0.02) << name;
  }
}

TEST(VariantPerf, UnprunedEqualsReference) {
  const ModelProfile profile = CaffeNetProfile();
  const VariantPerf perf =
      ComputeVariantPerf(profile, DensityFromPlan(profile, {}), "np");
  EXPECT_NEAR(perf.ref_seconds_per_image.value(),
              profile.ref_seconds_per_image.value(), 1e-12);
  EXPECT_EQ(perf.kernel_count, profile.kernel_count);
}

TEST(VariantPerf, MorePruningNeverSlower) {
  // The dispatch-aware time model plateaus while a layer's effective
  // density sits above the sparse crossover (the dense kernel still runs),
  // then tracks density below it: more pruning is never slower, and is
  // strictly faster once every swept layer has crossed.
  const ModelProfile profile = CaffeNetProfile();
  double prev = profile.ref_seconds_per_image.value() + 1.0;
  double prev_crossed = -1.0;
  for (double r : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const auto plan =
        pruning::UniformPlan({"conv1", "conv2", "conv3", "conv4", "conv5"}, r);
    const VariantPerf perf = ComputeVariantPerf(
        profile, DensityFromPlan(profile, plan), plan.Label());
    EXPECT_LE(perf.ref_seconds_per_image.value(), prev) << "ratio " << r;
    if (1.0 - r < kBsrCrossoverDensity) {
      if (prev_crossed > 0.0) {
        EXPECT_LT(perf.ref_seconds_per_image.value(), prev_crossed)
            << "ratio " << r;
      }
      prev_crossed = perf.ref_seconds_per_image.value();
    }
    prev = perf.ref_seconds_per_image.value();
  }
  ASSERT_GT(prev_crossed, 0.0) << "sweep never crossed the sparse threshold";
}

TEST(VariantPerf, UnprunableResidueBoundsSpeedup) {
  // Even pruning everything to 90 % cannot remove the non-prunable time.
  const ModelProfile profile = CaffeNetProfile();
  const auto plan = pruning::UniformPlan(profile.layer_order, 0.9);
  const VariantPerf perf =
      ComputeVariantPerf(profile, DensityFromPlan(profile, plan), "p90");
  double floor_share = profile.residual_share;
  for (const auto& [_, lp] : profile.layers) {
    floor_share += lp.time_share * (1.0 - lp.prunable_fraction);
  }
  EXPECT_GT(perf.ref_seconds_per_image.value(),
            profile.ref_seconds_per_image.value() * floor_share * 0.999);
}

TEST(VariantPerf, ChannelCouplingOnlyAffectsPrunedLayers) {
  const ModelProfile profile = CaffeNetProfile();
  // conv1 filter-pruned; conv2 untouched -> conv2 keeps its dense time.
  pruning::PrunePlan only_conv1;
  only_conv1.family = pruning::PrunerFamily::kL1Filter;
  only_conv1.layer_ratios["conv1"] = 0.9;
  const VariantPerf perf1 = ComputeVariantPerf(
      profile, DensityFromPlan(profile, only_conv1), "c1");

  // Upper bound: conv1's own prunable time fully removed, nothing else.
  const LayerProfile& c1 = profile.layers.at("conv1");
  const double expected_share =
      1.0 - c1.time_share * c1.prunable_fraction * 0.9;
  EXPECT_NEAR(perf1.ref_seconds_per_image.value(),
              profile.ref_seconds_per_image.value() * expected_share,
              profile.ref_seconds_per_image.value() * 0.001);
}

}  // namespace
}  // namespace ccperf::cloud
