#include "cloud/instance_catalog.h"

#include <gtest/gtest.h>

#include "cloud/pricing.h"
#include "common/check.h"

namespace ccperf::cloud {
namespace {

TEST(Catalog, Table3Verbatim) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  ASSERT_EQ(catalog.Types().size(), 6u);

  const InstanceType& p2xl = catalog.Find("p2.xlarge");
  EXPECT_EQ(p2xl.vcpus, 4);
  EXPECT_EQ(p2xl.gpus, 1);
  EXPECT_DOUBLE_EQ(p2xl.mem_gb, 61.0);
  EXPECT_DOUBLE_EQ(p2xl.gpu_mem_gb, 12.0);
  EXPECT_DOUBLE_EQ(p2xl.price_per_hour.value(), 0.90);
  EXPECT_EQ(p2xl.gpu, GpuKind::kK80);

  const InstanceType& p28 = catalog.Find("p2.8xlarge");
  EXPECT_EQ(p28.vcpus, 32);
  EXPECT_EQ(p28.gpus, 8);
  EXPECT_DOUBLE_EQ(p28.price_per_hour.value(), 7.20);

  const InstanceType& p216 = catalog.Find("p2.16xlarge");
  EXPECT_EQ(p216.gpus, 16);
  EXPECT_DOUBLE_EQ(p216.price_per_hour.value(), 14.40);

  const InstanceType& g34 = catalog.Find("g3.4xlarge");
  EXPECT_EQ(g34.vcpus, 16);
  EXPECT_EQ(g34.gpus, 1);
  EXPECT_DOUBLE_EQ(g34.price_per_hour.value(), 1.14);
  EXPECT_EQ(g34.gpu, GpuKind::kM60);

  const InstanceType& g38 = catalog.Find("g3.8xlarge");
  EXPECT_EQ(g38.gpus, 2);
  EXPECT_DOUBLE_EQ(g38.price_per_hour.value(), 2.28);

  const InstanceType& g316 = catalog.Find("g3.16xlarge");
  EXPECT_EQ(g316.gpus, 4);
  EXPECT_DOUBLE_EQ(g316.price_per_hour.value(), 4.56);
}

TEST(Catalog, PricePerGpuConstantWithinCategory) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  for (const auto& t : catalog.Category("p2")) {
    EXPECT_NEAR(t.price_per_hour.value() / t.gpus, 0.90, 1e-9);
  }
  for (const auto& t : catalog.Category("g3")) {
    EXPECT_NEAR(t.price_per_hour.value() / t.gpus, 1.14, 1e-9);
  }
}

TEST(Catalog, GpuCoreCountsMatchPaper) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  EXPECT_EQ(catalog.Gpu(GpuKind::kK80).cores, 2496);
  EXPECT_EQ(catalog.Gpu(GpuKind::kM60).cores, 2048);
}

TEST(Catalog, FindUnknownThrows) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  EXPECT_THROW(catalog.Find("c5.large"), CheckError);
  EXPECT_FALSE(catalog.Contains("c5.large"));
  EXPECT_TRUE(catalog.Contains("p2.xlarge"));
}

TEST(Catalog, CategoryFiltering) {
  const InstanceCatalog catalog = InstanceCatalog::AwsEc2();
  EXPECT_EQ(catalog.Category("p2").size(), 3u);
  EXPECT_EQ(catalog.Category("g3").size(), 3u);
  EXPECT_TRUE(catalog.Category("t2").empty());
}

TEST(Catalog, RejectsEmptyOrInvalid) {
  EXPECT_THROW(InstanceCatalog({}, {}), CheckError);
  EXPECT_THROW(InstanceCatalog({InstanceType{.name = "x", .gpus = 0,
                                             .price_per_hour = UsdPerHour(1.0)}},
                               {}),
               CheckError);
}

TEST(GpuSpec, UtilizationMonotoneAndBounded) {
  const GpuSpec gpu = InstanceCatalog::AwsEc2().Gpu(GpuKind::kK80);
  double prev = 0.0;
  for (std::int64_t b : {1, 5, 25, 100, 300, 600, 2000}) {
    const double u = gpu.Utilization(b);
    EXPECT_GT(u, prev);
    EXPECT_LE(u, 1.0);
    prev = u;
  }
  EXPECT_NEAR(gpu.Utilization(1), gpu.util_min, 0.01);
  EXPECT_GT(gpu.Utilization(300), 0.85) << "paper Fig. 5: saturated by ~300";
}

TEST(GpuSpec, UtilizationRejectsZeroBatch) {
  const GpuSpec gpu = InstanceCatalog::AwsEc2().Gpu(GpuKind::kK80);
  EXPECT_THROW(gpu.Utilization(0), CheckError);
}

TEST(Pricing, ProratesToNearestSecond) {
  EXPECT_DOUBLE_EQ(ProratedCost(Seconds(3600.0), UsdPerHour(1.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(ProratedCost(Seconds(1800.0), UsdPerHour(2.0)).value(), 1.0);
  // 0.2 s bills as a full second.
  EXPECT_DOUBLE_EQ(ProratedCost(Seconds(0.2), UsdPerHour(3600.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(ProratedCost(Seconds(1.5), UsdPerHour(3600.0)).value(), 2.0);
  EXPECT_DOUBLE_EQ(ProratedCost(Seconds(0.0), UsdPerHour(10.0)).value(), 0.0);
}

TEST(Pricing, RejectsNegative) {
  EXPECT_THROW(ProratedCost(Seconds(-1.0), UsdPerHour(1.0)), CheckError);
  EXPECT_THROW(ProratedCost(Seconds(1.0), UsdPerHour(-1.0)), CheckError);
}

TEST(GpuKind, Names) {
  EXPECT_STREQ(GpuKindName(GpuKind::kK80), "NVIDIA K80");
  EXPECT_STREQ(GpuKindName(GpuKind::kM60), "NVIDIA M60");
}

}  // namespace
}  // namespace ccperf::cloud
