#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/gemm.h"

namespace ccperf {
namespace {

std::vector<float> RandomSparseMatrix(Rng& rng, std::int64_t n,
                                      double sparsity) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) {
    v = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
  }
  return m;
}

TEST(Csr, RoundTripSmall) {
  const std::vector<float> dense{0, 1, 0, 2, 0, 0, 3, 0, 4};
  const CsrMatrix m = CsrMatrix::FromDense(3, 3, dense);
  EXPECT_EQ(m.Nnz(), 4);
  EXPECT_EQ(m.ToDense(), dense);
}

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::FromDense(0, 0, {});
  EXPECT_EQ(m.Nnz(), 0);
  EXPECT_EQ(m.Rows(), 0);
}

TEST(Csr, AllZerosMatrix) {
  const CsrMatrix m = CsrMatrix::FromDense(2, 3, std::vector<float>(6, 0.0f));
  EXPECT_EQ(m.Nnz(), 0);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 1.0);
}

TEST(Csr, SparsityComputation) {
  const std::vector<float> dense{1, 0, 0, 0};
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, dense);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.75);
}

TEST(Csr, FromTensorRequiresRank2) {
  const Tensor t(Shape{2, 2, 2});
  EXPECT_THROW(CsrMatrix::FromTensor(t), CheckError);
}

TEST(Csr, FromDenseRejectsSizeMismatch) {
  EXPECT_THROW(CsrMatrix::FromDense(2, 2, std::vector<float>(3)), CheckError);
}

TEST(Csr, MultiplyVectorHandComputed) {
  // [[1,0],[0,2]] * [3,4] = [3,8]
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, std::vector<float>{1, 0, 0, 2});
  std::vector<float> x{3, 4}, y(2);
  m.MultiplyVector(x, y);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Csr, MultiplyVectorSizeChecked) {
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, std::vector<float>{1, 0, 0, 2});
  std::vector<float> x(3), y(2);
  EXPECT_THROW(m.MultiplyVector(x, y), CheckError);
}

class CsrMultiplyMatchesDense
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(CsrMultiplyMatchesDense, RandomMatrices) {
  const auto [rows, cols, n, sparsity] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 31 + cols * 7 + n));
  const auto a = RandomSparseMatrix(rng, rows * cols, sparsity);
  std::vector<float> b(static_cast<std::size_t>(cols * n));
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);

  const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
  std::vector<float> c_sparse(static_cast<std::size_t>(rows * n));
  std::vector<float> c_dense(static_cast<std::size_t>(rows * n));
  csr.MultiplyDense(b, n, c_sparse);
  NaiveGemm(rows, n, cols, a, b, c_dense);
  for (std::size_t i = 0; i < c_sparse.size(); ++i) {
    EXPECT_NEAR(c_sparse[i], c_dense[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSparsities, CsrMultiplyMatchesDense,
    ::testing::Values(std::make_tuple(1, 1, 1, 0.0),
                      std::make_tuple(4, 6, 3, 0.5),
                      std::make_tuple(16, 16, 16, 0.9),
                      std::make_tuple(64, 32, 8, 0.3),
                      std::make_tuple(7, 100, 13, 0.99),
                      std::make_tuple(50, 50, 1, 0.7)));

TEST(Csr, NnzDropsWithSparsity) {
  Rng rng(2);
  const auto dense = RandomSparseMatrix(rng, 100 * 100, 0.8);
  const CsrMatrix m = CsrMatrix::FromDense(100, 100, dense);
  EXPECT_NEAR(m.Sparsity(), 0.8, 0.03);
  EXPECT_LT(m.Nnz(), 2500);
}

TEST(Csr, RowPtrInvariants) {
  Rng rng(8);
  const auto dense = RandomSparseMatrix(rng, 20 * 30, 0.6);
  const CsrMatrix m = CsrMatrix::FromDense(20, 30, dense);
  const auto row_ptr = m.RowPtr();
  ASSERT_EQ(row_ptr.size(), 21u);
  EXPECT_EQ(row_ptr.front(), 0);
  EXPECT_EQ(row_ptr.back(), m.Nnz());
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    EXPECT_LE(row_ptr[r], row_ptr[r + 1]);
  }
  // Column indices sorted within a row.
  const auto col = m.ColIdx();
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    for (auto p = row_ptr[r]; p + 1 < row_ptr[r + 1]; ++p) {
      EXPECT_LT(col[static_cast<std::size_t>(p)],
                col[static_cast<std::size_t>(p) + 1]);
    }
  }
}

}  // namespace
}  // namespace ccperf
