#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/gemm.h"

namespace ccperf {
namespace {

std::vector<float> RandomSparseMatrix(Rng& rng, std::int64_t n,
                                      double sparsity) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) {
    v = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
  }
  return m;
}

TEST(Csr, RoundTripSmall) {
  const std::vector<float> dense{0, 1, 0, 2, 0, 0, 3, 0, 4};
  const CsrMatrix m = CsrMatrix::FromDense(3, 3, dense);
  EXPECT_EQ(m.Nnz(), 4);
  EXPECT_EQ(m.ToDense(), dense);
}

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::FromDense(0, 0, {});
  EXPECT_EQ(m.Nnz(), 0);
  EXPECT_EQ(m.Rows(), 0);
}

TEST(Csr, AllZerosMatrix) {
  const CsrMatrix m = CsrMatrix::FromDense(2, 3, std::vector<float>(6, 0.0f));
  EXPECT_EQ(m.Nnz(), 0);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 1.0);
}

TEST(Csr, SparsityComputation) {
  const std::vector<float> dense{1, 0, 0, 0};
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, dense);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.75);
}

TEST(Csr, FromTensorRequiresRank2) {
  const Tensor t(Shape{2, 2, 2});
  EXPECT_THROW(CsrMatrix::FromTensor(t), CheckError);
}

TEST(Csr, FromDenseRejectsSizeMismatch) {
  EXPECT_THROW(CsrMatrix::FromDense(2, 2, std::vector<float>(3)), CheckError);
}

TEST(Csr, MultiplyVectorHandComputed) {
  // [[1,0],[0,2]] * [3,4] = [3,8]
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, std::vector<float>{1, 0, 0, 2});
  std::vector<float> x{3, 4}, y(2);
  m.MultiplyVector(x, y);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Csr, MultiplyVectorSizeChecked) {
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, std::vector<float>{1, 0, 0, 2});
  std::vector<float> x(3), y(2);
  EXPECT_THROW(m.MultiplyVector(x, y), CheckError);
}

class CsrMultiplyMatchesDense
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(CsrMultiplyMatchesDense, RandomMatrices) {
  const auto [rows, cols, n, sparsity] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 31 + cols * 7 + n));
  const auto a = RandomSparseMatrix(rng, rows * cols, sparsity);
  std::vector<float> b(static_cast<std::size_t>(cols * n));
  for (auto& v : b) v = rng.NextFloat(-1.0f, 1.0f);

  const CsrMatrix csr = CsrMatrix::FromDense(rows, cols, a);
  std::vector<float> c_sparse(static_cast<std::size_t>(rows * n));
  std::vector<float> c_dense(static_cast<std::size_t>(rows * n));
  csr.MultiplyDense(b, n, c_sparse);
  NaiveGemm(rows, n, cols, a, b, c_dense);
  for (std::size_t i = 0; i < c_sparse.size(); ++i) {
    EXPECT_NEAR(c_sparse[i], c_dense[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSparsities, CsrMultiplyMatchesDense,
    ::testing::Values(std::make_tuple(1, 1, 1, 0.0),
                      std::make_tuple(4, 6, 3, 0.5),
                      std::make_tuple(16, 16, 16, 0.9),
                      std::make_tuple(64, 32, 8, 0.3),
                      std::make_tuple(7, 100, 13, 0.99),
                      std::make_tuple(50, 50, 1, 0.7)));

TEST(Csr, NnzDropsWithSparsity) {
  Rng rng(2);
  const auto dense = RandomSparseMatrix(rng, 100 * 100, 0.8);
  const CsrMatrix m = CsrMatrix::FromDense(100, 100, dense);
  EXPECT_NEAR(m.Sparsity(), 0.8, 0.03);
  EXPECT_LT(m.Nnz(), 2500);
}

TEST(Csr, RowPtrInvariants) {
  Rng rng(8);
  const auto dense = RandomSparseMatrix(rng, 20 * 30, 0.6);
  const CsrMatrix m = CsrMatrix::FromDense(20, 30, dense);
  const auto row_ptr = m.RowPtr();
  ASSERT_EQ(row_ptr.size(), 21u);
  EXPECT_EQ(row_ptr.front(), 0);
  EXPECT_EQ(row_ptr.back(), m.Nnz());
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    EXPECT_LE(row_ptr[r], row_ptr[r + 1]);
  }
  // Column indices sorted within a row.
  const auto col = m.ColIdx();
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    for (auto p = row_ptr[r]; p + 1 < row_ptr[r + 1]; ++p) {
      EXPECT_LT(col[static_cast<std::size_t>(p)],
                col[static_cast<std::size_t>(p) + 1]);
    }
  }
}

// --- Hardening: extents, empty structure, and zero semantics ---------------

TEST(Csr, ColumnCountBeyondInt32Throws) {
  // col_idx_ is int32 to halve index bandwidth; the builders must reject a
  // column space that it cannot address (rows = 0 keeps the dense span
  // empty, so only the extent guard can fire).
  const std::int64_t huge =
      static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max()) + 1;
  EXPECT_THROW(CsrMatrix::FromDense(0, huge, {}), CheckError);
  EXPECT_THROW(BsrMatrix::FromDense(0, huge, {}), CheckError);
}

TEST(Csr, NegativeExtentsThrow) {
  EXPECT_THROW(CsrMatrix::FromDense(-1, 4, {}), CheckError);
  EXPECT_THROW(CsrMatrix::FromDense(4, -1, {}), CheckError);
  EXPECT_THROW(BsrMatrix::FromDense(-1, 4, {}), CheckError);
}

TEST(Csr, EmptyRowsOverwriteOutput) {
  // Rows 0 and 2 hold no nonzeros; MultiplyDense overwrites C, so a
  // sentinel prefill must come back as exact zeros there — the property
  // that lets layers reuse output buffers across forward passes.
  const std::vector<float> dense{0, 0, 0,   // row 0: empty
                                 1, 0, 2,   // row 1
                                 0, 0, 0,   // row 2: empty
                                 0, 3, 0};  // row 3
  const CsrMatrix m = CsrMatrix::FromDense(4, 3, dense);
  const std::vector<float> b(3 * 5, 1.0f);
  std::vector<float> c(4 * 5, -7.0f);
  m.MultiplyDense(b, 5, c);
  for (std::int64_t j = 0; j < 5; ++j) {
    EXPECT_EQ(c[static_cast<std::size_t>(j)], 0.0f);
    EXPECT_EQ(c[static_cast<std::size_t>(2 * 5 + j)], 0.0f);
    EXPECT_FLOAT_EQ(c[static_cast<std::size_t>(1 * 5 + j)], 3.0f);
    EXPECT_FLOAT_EQ(c[static_cast<std::size_t>(3 * 5 + j)], 3.0f);
  }
  std::vector<float> c_scalar(4 * 5, -7.0f);
  m.MultiplyDenseScalar(b, 5, c_scalar);
  EXPECT_EQ(c, c_scalar);
}

TEST(Csr, AllZeroMatrixMultiplyWritesZeros) {
  const CsrMatrix m = CsrMatrix::FromDense(3, 4, std::vector<float>(12, 0.0f));
  EXPECT_EQ(m.Nnz(), 0);
  const std::vector<float> b(4 * 6, 2.5f);
  std::vector<float> c(3 * 6, -7.0f);
  m.MultiplyDense(b, 6, c);
  for (const float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(Csr, NegativeZeroIsDroppedValuePreservingly) {
  // -0.0f compares equal to 0.0f, so FromDense drops it. For finite B the
  // drop cannot move any sum (a -0.0f * b contribution is a signed zero),
  // so the multiply still matches the dense ground truth.
  std::vector<float> dense{-0.0f, 1.0f, 2.0f, -0.0f};
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, dense);
  EXPECT_EQ(m.Nnz(), 2);
  const std::vector<float> b{3.0f, -4.0f, 5.0f, 6.0f};
  std::vector<float> c_sparse(4), c_naive(4);
  m.MultiplyDense(b, 2, c_sparse);
  NaiveGemm(2, 2, 2, dense, b, c_naive);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(c_sparse[i], c_naive[i], 1e-6f) << "index " << i;
  }
}

TEST(Csr, DenormalsAreRetained) {
  // Denormals are nonzero, so they must survive the zero drop bitwise —
  // only exact (signed) zeros are structural.
  const float denormal = std::numeric_limits<float>::denorm_min() * 64.0f;
  const std::vector<float> dense{denormal, 0.0f, -denormal, 1.0f};
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, dense);
  EXPECT_EQ(m.Nnz(), 3);
  const std::vector<float> round_trip = m.ToDense();
  EXPECT_EQ(0, std::memcmp(round_trip.data(), dense.data(),
                           dense.size() * sizeof(float)));
}

TEST(Csr, DroppedZeroTimesNonFiniteGivesZeroByDesign) {
  // The structural-zero drop is value-preserving only for finite operands:
  // an all-zero row against a B containing NaN yields 0, where IEEE dense
  // arithmetic says NaN. Pinned here as the documented divergence (the
  // same trade the dense reference kernel's zero skip makes).
  const std::vector<float> dense{0.0f, 0.0f,   // row 0: structurally empty
                                 1.0f, 1.0f};  // row 1: multiplies the NaN
  const CsrMatrix m = CsrMatrix::FromDense(2, 2, dense);
  const std::vector<float> b{std::numeric_limits<float>::quiet_NaN(), 1.0f,
                             2.0f, 1.0f};
  std::vector<float> c(4, -7.0f);
  m.MultiplyDense(b, 2, c);
  EXPECT_EQ(c[0], 0.0f);  // dropped zeros hide the NaN
  EXPECT_EQ(c[1], 0.0f);
  EXPECT_TRUE(std::isnan(c[2]));  // a real nonzero still propagates it
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

// --- BSR structure ----------------------------------------------------------

TEST(Bsr, RoundTripWithTailPadding) {
  // 5x6 does not divide the 4x4 blocking in either dimension; tail blocks
  // are zero-padded internally but ToDense must return the original shape.
  Rng rng(21);
  const auto dense = RandomSparseMatrix(rng, 5 * 6, 0.4);
  const BsrMatrix m = BsrMatrix::FromDense(5, 6, dense);
  EXPECT_EQ(m.Rows(), 5);
  EXPECT_EQ(m.Cols(), 6);
  EXPECT_EQ(m.ToDense(), dense);
}

TEST(Bsr, StoredBlocksAndFill) {
  // One fully dense 4x4 block and one block holding a single nonzero:
  // 2 stored blocks, 17 nonzeros, fill 17/32.
  std::vector<float> dense(8 * 4, 0.0f);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) dense[static_cast<std::size_t>(r * 4 + c)] = 1.0f;
  }
  dense[static_cast<std::size_t>(5 * 4 + 2)] = 3.0f;
  const BsrMatrix m = BsrMatrix::FromDense(8, 4, dense);
  EXPECT_EQ(m.StoredBlocks(), 2);
  EXPECT_EQ(m.Nnz(), 17);
  EXPECT_DOUBLE_EQ(m.Fill(), 17.0 / 32.0);
}

TEST(Bsr, AllZeroMatrix) {
  const BsrMatrix m = BsrMatrix::FromDense(4, 8, std::vector<float>(32, 0.0f));
  EXPECT_EQ(m.StoredBlocks(), 0);
  EXPECT_EQ(m.Nnz(), 0);
  EXPECT_DOUBLE_EQ(m.Fill(), 1.0);  // no stored blocks: fill is vacuous
  EXPECT_DOUBLE_EQ(
      BsrMatrix::DenseBlockFill(4, 8, std::vector<float>(32, 0.0f)), 1.0);
  const std::vector<float> b(8 * 3, 1.5f);
  std::vector<float> c(4 * 3, -7.0f);
  m.MultiplyDense(b, 3, c);
  for (const float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(Bsr, EmptyBlockRowsOverwriteOutput) {
  // Block row 0 (rows 0-3) empty, block row 1 (rows 4-7) dense.
  std::vector<float> dense(8 * 4, 0.0f);
  for (std::size_t i = 4 * 4; i < dense.size(); ++i) dense[i] = 2.0f;
  const BsrMatrix m = BsrMatrix::FromDense(8, 4, dense);
  const std::vector<float> b(4 * 5, 1.0f);
  std::vector<float> c(8 * 5, -7.0f);
  m.MultiplyDense(b, 5, c);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(r * 5 + j)], 0.0f) << r;
      EXPECT_FLOAT_EQ(c[static_cast<std::size_t>((r + 4) * 5 + j)], 8.0f) << r;
    }
  }
}

TEST(Bsr, MultiplyVectorHandComputed) {
  // [[1,0],[0,2]] * [3,4] = [3,8] (stored as one padded 4x4 block).
  const BsrMatrix m =
      BsrMatrix::FromDense(2, 2, std::vector<float>{1, 0, 0, 2});
  EXPECT_EQ(m.StoredBlocks(), 1);
  std::vector<float> x{3, 4}, y(2);
  m.MultiplyVector(x, y);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Bsr, DenseBlockFillMatchesBuiltFill) {
  Rng rng(33);
  const auto dense = RandomSparseMatrix(rng, 20 * 24, 0.7);
  const BsrMatrix m = BsrMatrix::FromDense(20, 24, dense);
  EXPECT_DOUBLE_EQ(BsrMatrix::DenseBlockFill(20, 24, dense), m.Fill());
}

}  // namespace
}  // namespace ccperf
