// Fault-injection subsystem and failure-aware serving: seeded determinism,
// preemption mid-batch requeue semantics, retry-backoff bounds, deadline
// drop accounting, and degradation hysteresis (no flapping).
#include "cloud/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "cloud/autoscaler.h"
#include "cloud/degradation.h"
#include "cloud/density.h"
#include "cloud/serving.h"
#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {
namespace {

class FaultsTest : public ::testing::Test {
 protected:
  FaultsTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  ResourceConfig OneP2() {
    ResourceConfig config;
    config.Add("p2.xlarge");
    return config;
  }

  std::vector<double> PoissonTrace(double rate, double duration,
                                   std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t > duration) break;
      trace.push_back(t);
    }
    return trace;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  ModelProfile profile_;
  VariantPerf perf_;
};

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, ValidateRejectsOutOfOrderAndBadFields) {
  FaultSchedule out_of_order;
  out_of_order.events = {{FaultKind::kCrash, 0, 10.0, 5.0, 1.0},
                         {FaultKind::kCrash, 0, 5.0, 5.0, 1.0}};
  EXPECT_THROW(out_of_order.Validate(), CheckError);

  FaultSchedule negative_start;
  negative_start.events = {{FaultKind::kCrash, 0, -1.0, 5.0, 1.0}};
  EXPECT_THROW(negative_start.Validate(), CheckError);

  FaultSchedule zero_duration;
  zero_duration.events = {{FaultKind::kCrash, 0, 1.0, 0.0, 1.0}};
  EXPECT_THROW(zero_duration.Validate(), CheckError);

  FaultSchedule bad_factor;
  bad_factor.events = {{FaultKind::kSlowdown, 0, 1.0, 5.0, 0.9}};
  EXPECT_THROW(bad_factor.Validate(), CheckError);

  FaultSchedule bad_instance;
  bad_instance.events = {{FaultKind::kCrash, -2, 1.0, 5.0, 1.0}};
  EXPECT_THROW(bad_instance.Validate(), CheckError);

  FaultSchedule ok;
  ok.events = {{FaultKind::kPreemption, 1, 3.0, 0.0, 1.0},
               {FaultKind::kSlowdown, 0, 4.0, 10.0, 2.5}};
  EXPECT_NO_THROW(ok.Validate());
}

TEST(FaultSchedule, GeneratorIsDeterministicAndSorted) {
  const FaultModel model{.preemption_rate = 2.0,
                         .crash_rate = 6.0,
                         .restart_s = 20.0,
                         .slowdown_rate = 4.0,
                         .slowdown_s = 30.0,
                         .slowdown_factor = 3.0};
  Rng rng_a(42), rng_b(42), rng_c(43);
  const FaultSchedule a = GenerateFaultSchedule(model, 4, 3600.0, rng_a);
  const FaultSchedule b = GenerateFaultSchedule(model, 4, 3600.0, rng_b);
  const FaultSchedule c = GenerateFaultSchedule(model, 4, 3600.0, rng_c);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].instance, b.events[i].instance);
    EXPECT_DOUBLE_EQ(a.events[i].start_s, b.events[i].start_s);
  }
  EXPECT_NO_THROW(a.Validate());
  EXPECT_FALSE(a.Empty()) << "rates this high must produce events";
  // A different seed produces a different trace.
  bool differs = a.events.size() != c.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].start_s != c.events[i].start_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, ZeroRatesGenerateNothing) {
  Rng rng(1);
  EXPECT_TRUE(GenerateFaultSchedule({}, 3, 1000.0, rng).Empty());
}

TEST(FaultSchedule, CsvRoundTripsAndRejectsCorruption) {
  const FaultModel model{.crash_rate = 8.0, .slowdown_rate = 3.0};
  Rng rng(7);
  const FaultSchedule schedule = GenerateFaultSchedule(model, 2, 1800.0, rng);
  const std::string csv = FaultScheduleCsv(schedule);
  const FaultSchedule parsed = ParseFaultScheduleCsv(csv);
  ASSERT_EQ(parsed.events.size(), schedule.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(parsed.events[i].instance, schedule.events[i].instance);
    EXPECT_DOUBLE_EQ(parsed.events[i].start_s, schedule.events[i].start_s);
  }

  EXPECT_THROW((void)ParseFaultScheduleCsv(std::string("")), CheckError);
  EXPECT_THROW((void)ParseFaultScheduleCsv(std::string("bogus,header\n")),
               CheckError);
  EXPECT_THROW(
      (void)ParseFaultScheduleCsv(std::string(
          "kind,instance,start_s,duration_s,slowdown_factor\n"
          "crash,0,ten,5,1\n")),
      CheckError);
  EXPECT_THROW(
      (void)ParseFaultScheduleCsv(std::string(
          "kind,instance,start_s,duration_s,slowdown_factor\n"
          "meteor,0,10,5,1\n")),
      CheckError);
  // Out-of-order rows must be rejected, not silently reordered.
  EXPECT_THROW(
      (void)ParseFaultScheduleCsv(std::string(
          "kind,instance,start_s,duration_s,slowdown_factor\n"
          "crash,0,10,5,1\ncrash,0,5,5,1\n")),
      CheckError);
}

/// Catch a CheckError from parsing `csv` and return its message ("" when
/// nothing was thrown).
std::string ParseError(const std::string& csv) {
  try {
    (void)ParseFaultScheduleCsv(csv);
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

TEST(FaultSchedule, CsvErrorsNameTheOffendingLine) {
  const std::string header =
      "kind,instance,start_s,duration_s,slowdown_factor\n";

  // A malformed field names its 1-based line (header is line 1) and echoes
  // the row so the operator can find it in a million-line trace.
  const std::string bad_number = ParseError(
      header + "crash,0,1,5,1\ncrash,0,ten,5,1\n");
  EXPECT_NE(bad_number.find("line 3"), std::string::npos) << bad_number;
  EXPECT_NE(bad_number.find("crash,0,ten,5,1"), std::string::npos)
      << bad_number;

  const std::string bad_kind = ParseError(header + "meteor,0,10,5,1\n");
  EXPECT_NE(bad_kind.find("line 2"), std::string::npos) << bad_kind;
  EXPECT_NE(bad_kind.find("meteor"), std::string::npos) << bad_kind;

  const std::string negative = ParseError(header + "crash,0,-3,5,1\n");
  EXPECT_NE(negative.find("line 2"), std::string::npos) << negative;

  const std::string missing_field = ParseError(header + "crash,0,10\n");
  EXPECT_NE(missing_field.find("line 2"), std::string::npos) << missing_field;

  // Out-of-order rows name both lines of the inversion.
  const std::string unordered = ParseError(
      header + "crash,0,10,5,1\ncrash,0,5,5,1\n");
  EXPECT_NE(unordered.find("line 3"), std::string::npos) << unordered;
  EXPECT_NE(unordered.find("line 2"), std::string::npos) << unordered;
}

TEST(FaultSchedule, CsvRejectsNonFiniteFields) {
  const std::string header =
      "kind,instance,start_s,duration_s,slowdown_factor\n";
  // NaN/inf survive strtod, so the finiteness check must catch them — with
  // the line context intact.
  const std::string nan_start = ParseError(header + "crash,0,nan,5,1\n");
  EXPECT_NE(nan_start.find("line 2"), std::string::npos) << nan_start;
  EXPECT_THROW((void)ParseFaultScheduleCsv(
                   std::string(header + "crash,0,inf,5,1\n")),
               CheckError);
  EXPECT_THROW((void)ParseFaultScheduleCsv(
                   std::string(header + "slowdown,0,10,5,inf\n")),
               CheckError);
  // Non-slowdown kinds still require a finite factor cell: a trace whose
  // factor column rotted to NaN is corrupt even if the factor is unused.
  EXPECT_THROW((void)ParseFaultScheduleCsv(
                   std::string(header + "crash,0,10,5,nan\n")),
               CheckError);
}

TEST(FaultSchedule, SilentCorruptionRoundTripsThroughCsv) {
  FaultSchedule schedule;
  schedule.events.push_back({.kind = FaultKind::kSilentCorruption,
                             .instance = 2,
                             .start_s = 7.5,
                             .duration_s = 120.0});
  schedule.events.push_back(
      {.kind = FaultKind::kCrash, .instance = 0, .start_s = 9.0,
       .duration_s = 30.0});
  schedule.Validate();
  const FaultSchedule parsed =
      ParseFaultScheduleCsv(FaultScheduleCsv(schedule));
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].kind, FaultKind::kSilentCorruption);
  EXPECT_DOUBLE_EQ(parsed.events[0].duration_s, 120.0);
  EXPECT_EQ(parsed.events[1].kind, FaultKind::kCrash);
}

TEST(FaultSchedule, LoadFromFileNamesThePath) {
  EXPECT_THROW((void)LoadFaultScheduleFromFile("/nonexistent/faults.csv"),
               CheckError);
  try {
    (void)LoadFaultScheduleFromFile("/nonexistent/faults.csv");
    FAIL() << "missing file must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/faults.csv"),
              std::string::npos)
        << e.what();
  }

  // Parse errors keep both the path and the line context.
  const std::string path =
      std::string(::testing::TempDir()) + "bad_faults.csv";
  {
    std::ofstream out(path);
    out << "kind,instance,start_s,duration_s,slowdown_factor\n"
        << "crash,0,1,5,1\n"
        << "meteor,1,2,5,1\n";
  }
  try {
    (void)LoadFaultScheduleFromFile(path);
    FAIL() << "bad row must throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  std::remove(path.c_str());

  // A good file round-trips.
  {
    std::ofstream out(path);
    out << "kind,instance,start_s,duration_s,slowdown_factor\n"
        << "crash,0,1,5,1\n"
        << "preemption,1,2,0,1\n";
  }
  const FaultSchedule loaded = LoadFaultScheduleFromFile(path);
  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[1].kind, FaultKind::kPreemption);
  std::remove(path.c_str());
}

TEST(FaultSchedule, SliceClipsAndShifts) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kCrash, 0, 50.0, 100.0, 1.0},
                     {FaultKind::kPreemption, 1, 150.0, 0.0, 1.0},
                     {FaultKind::kSlowdown, 0, 250.0, 20.0, 2.0}};
  const FaultSchedule window = schedule.Slice(100.0, 200.0);
  ASSERT_EQ(window.events.size(), 2u);
  // The crash started before the window but still covers [100, 150).
  EXPECT_EQ(window.events[0].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(window.events[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(window.events[0].duration_s, 50.0);
  // The preemption shifts to window-local time and stays permanent.
  EXPECT_EQ(window.events[1].kind, FaultKind::kPreemption);
  EXPECT_DOUBLE_EQ(window.events[1].start_s, 50.0);
  // The slowdown is entirely outside.
  EXPECT_NO_THROW(window.Validate());
}

TEST(FaultSchedule, SliceEventStraddlingBothWindowEdges) {
  // A crash covering [50, 350) straddles the [100, 200) window entirely:
  // the slice must pin it to the full window, not drop or over-extend it.
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kCrash, 0, 50.0, 300.0, 1.0},
                     {FaultKind::kSlowdown, 1, 90.0, 200.0, 3.0}};
  const FaultSchedule window = schedule.Slice(100.0, 200.0);
  ASSERT_EQ(window.events.size(), 2u);
  EXPECT_EQ(window.events[0].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(window.events[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(window.events[0].duration_s, 100.0)
      << "clipped to the window length on both sides";
  EXPECT_EQ(window.events[1].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(window.events[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(window.events[1].duration_s, 100.0);
  EXPECT_DOUBLE_EQ(window.events[1].slowdown_factor, 3.0);
  EXPECT_NO_THROW(window.Validate());
}

TEST(FaultSchedule, CsvRoundTripsCorrelatedKinds) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kDomainOutage, 0, 10.0, 600.0, 1.0},
                     {FaultKind::kReclaimWave, 1, 20.0, 0.0, 1.0},
                     {FaultKind::kPartition, 2, 30.0, 120.0, 1.0}};
  EXPECT_NO_THROW(schedule.Validate());
  const std::string csv = FaultScheduleCsv(schedule);
  EXPECT_NE(csv.find("domain-outage"), std::string::npos);
  EXPECT_NE(csv.find("reclaim-wave"), std::string::npos);
  EXPECT_NE(csv.find("partition"), std::string::npos);
  const FaultSchedule parsed = ParseFaultScheduleCsv(csv);
  ASSERT_EQ(parsed.events.size(), schedule.events.size());
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(parsed.events[i].instance, schedule.events[i].instance);
    EXPECT_DOUBLE_EQ(parsed.events[i].start_s, schedule.events[i].start_s);
    EXPECT_DOUBLE_EQ(parsed.events[i].duration_s,
                     schedule.events[i].duration_s);
  }
  // Permanent kinds classify as such; timed correlated kinds do not.
  EXPECT_TRUE(FaultKindIsPermanent(FaultKind::kReclaimWave));
  EXPECT_TRUE(FaultKindIsPermanent(FaultKind::kPreemption));
  EXPECT_FALSE(FaultKindIsPermanent(FaultKind::kDomainOutage));
  EXPECT_FALSE(FaultKindIsPermanent(FaultKind::kPartition));
}

TEST(FaultSchedule, PartitionTimelineMarksDownAndPartitioned) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kPartition, 0, 10.0, 20.0, 1.0}};
  const InstanceTimeline timeline(schedule, 0, 100.0);
  EXPECT_FALSE(timeline.UpAt(15.0));
  EXPECT_TRUE(timeline.PartitionedAt(15.0));
  EXPECT_TRUE(timeline.UpAt(35.0));
  EXPECT_FALSE(timeline.PartitionedAt(35.0));
  EXPECT_FALSE(timeline.PartitionedAt(5.0));

  // An outage is down time but not a partition: in-flight work requeues.
  FaultSchedule outage;
  outage.events = {{FaultKind::kDomainOutage, 0, 10.0, 20.0, 1.0}};
  const InstanceTimeline outage_timeline(outage, 0, 100.0);
  EXPECT_FALSE(outage_timeline.UpAt(15.0));
  EXPECT_FALSE(outage_timeline.PartitionedAt(15.0));
}

TEST(FaultSchedule, TimelineAvailability) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kCrash, 0, 10.0, 5.0, 1.0},
                     {FaultKind::kSlowdown, 0, 20.0, 10.0, 2.0},
                     {FaultKind::kPreemption, 0, 40.0, 0.0, 1.0}};
  const InstanceTimeline timeline(schedule, 0, 100.0);
  EXPECT_TRUE(timeline.UpAt(5.0));
  EXPECT_FALSE(timeline.UpAt(12.0));
  EXPECT_DOUBLE_EQ(timeline.NextUpAt(12.0), 15.0);
  EXPECT_DOUBLE_EQ(timeline.NextDownAfter(0.0), 10.0);
  EXPECT_DOUBLE_EQ(timeline.NextDownAfter(15.0), 40.0);
  EXPECT_DOUBLE_EQ(timeline.SlowdownAt(25.0), 2.0);
  EXPECT_DOUBLE_EQ(timeline.SlowdownAt(35.0), 1.0);
  EXPECT_TRUE(std::isinf(timeline.NextUpAt(50.0)));
  // Down: 5 s crash + 60 s preempted tail of the 100 s horizon.
  EXPECT_DOUBLE_EQ(timeline.DownSeconds(), 65.0);
}

// ----------------------------------------------------------- retry policy

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  const RetryPolicy retry{.max_retries = 5,
                          .base_backoff_s = 0.1,
                          .backoff_multiplier = 2.0,
                          .max_backoff_s = 0.5};
  EXPECT_DOUBLE_EQ(retry.BackoffFor(1), 0.1);
  EXPECT_DOUBLE_EQ(retry.BackoffFor(2), 0.2);
  EXPECT_DOUBLE_EQ(retry.BackoffFor(3), 0.4);
  EXPECT_DOUBLE_EQ(retry.BackoffFor(4), 0.5) << "capped at max_backoff_s";
  EXPECT_DOUBLE_EQ(retry.BackoffFor(10), 0.5);
  EXPECT_THROW((void)retry.BackoffFor(0), CheckError);
  EXPECT_THROW(ValidateRetryPolicy({.max_retries = -1}), CheckError);
  EXPECT_THROW(ValidateRetryPolicy({.backoff_multiplier = 0.5}), CheckError);
  EXPECT_NO_THROW(ValidateRetryPolicy({}));
}

TEST(RetryPolicyTest, BackoffStaysFiniteAtHugeAttemptCounts) {
  // Regression: without the ceiling short-circuit, multiplier^(k-1)
  // overflows a double to +inf around attempt ~1075 and the loop costs
  // O(attempt) work. Both must stay bounded.
  const RetryPolicy retry{.max_retries = 1000000,
                          .base_backoff_s = 0.05,
                          .backoff_multiplier = 2.0,
                          .max_backoff_s = 30.0};
  EXPECT_DOUBLE_EQ(retry.BackoffFor(2000), 30.0);
  EXPECT_DOUBLE_EQ(retry.BackoffFor(1000000000), 30.0);
  EXPECT_TRUE(std::isfinite(retry.BackoffFor(1000000000)));
  // Monotone: backoff never shrinks as attempts grow.
  double previous = 0.0;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    const double backoff = retry.BackoffFor(attempt);
    EXPECT_GE(backoff, previous);
    previous = backoff;
  }
}

TEST(RetryPolicyTest, DegenerateMultiplierAndBaseAreExact) {
  // multiplier == 1 never amplifies: the loop must not spin toward the
  // ceiling one futile iteration per attempt.
  const RetryPolicy flat{.base_backoff_s = 0.2,
                         .backoff_multiplier = 1.0,
                         .max_backoff_s = 5.0};
  EXPECT_DOUBLE_EQ(flat.BackoffFor(1), 0.2);
  EXPECT_DOUBLE_EQ(flat.BackoffFor(1000000000), 0.2);
  const RetryPolicy zero{.base_backoff_s = 0.0, .max_backoff_s = 5.0};
  EXPECT_DOUBLE_EQ(zero.BackoffFor(1000000000), 0.0);
  // Non-finite knobs are rejected up front: an inf ceiling would let a
  // requeued request sleep forever.
  EXPECT_THROW(ValidateRetryPolicy(
                   {.max_backoff_s = std::numeric_limits<double>::infinity()}),
               CheckError);
  EXPECT_THROW(
      ValidateRetryPolicy({.base_backoff_s = std::nan("")}), CheckError);
}

// ------------------------------------------------------- faulted serving

TEST_F(FaultsTest, EmptyScheduleMatchesFaultFreePath) {
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  auto trace = PoissonTrace(8.0, 120.0, 11);
  const ServingReport plain =
      serving_.SimulateTrace(OneP2(), perf_, trace, 120.0, policy);
  const ServingReport faulted = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 120.0, policy, {}, {});
  EXPECT_EQ(plain.requests, faulted.requests);
  EXPECT_EQ(plain.completed, faulted.completed);
  EXPECT_DOUBLE_EQ(plain.p99_latency_s, faulted.p99_latency_s);
  EXPECT_DOUBLE_EQ(plain.mean_latency_s, faulted.mean_latency_s);
  EXPECT_DOUBLE_EQ(plain.utilization, faulted.utilization);
  EXPECT_DOUBLE_EQ(plain.cost_per_hour_usd, faulted.cost_per_hour_usd);
  EXPECT_EQ(faulted.retries, 0);
  EXPECT_EQ(faulted.dropped_failed, 0);
}

TEST_F(FaultsTest, DeterministicGivenSeedAndSchedule) {
  const FaultModel model{.crash_rate = 20.0, .restart_s = 15.0,
                         .slowdown_rate = 10.0};
  Rng fault_rng(3);
  const FaultSchedule schedule =
      GenerateFaultSchedule(model, 1, 300.0, fault_rng);
  const ServingPolicy policy{
      .max_batch = 64, .max_wait_s = 0.05, .deadline_s = 2.0};
  const RetryPolicy retry{.max_retries = 3};
  const auto trace = PoissonTrace(10.0, 300.0, 21);
  const ServingReport a = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 300.0, policy, retry, schedule);
  const ServingReport b = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 300.0, policy, retry, schedule);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dropped_deadline, b.dropped_deadline);
  EXPECT_EQ(a.dropped_failed, b.dropped_failed);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_DOUBLE_EQ(a.goodput_per_s, b.goodput_per_s);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST_F(FaultsTest, CrashMidBatchRequeuesAndCompletesAfterRestart) {
  // Batch-1 service on p2.xlarge is ~0.1 s; a crash at t=0.05 is
  // guaranteed mid-batch for a request arriving at t=0.
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kCrash, 0, 0.05, 1.0, 1.0}};
  const ServingPolicy policy{.max_batch = 4, .max_wait_s = 0.0};
  const RetryPolicy retry{.max_retries = 3, .base_backoff_s = 0.1};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, {0.0}, 10.0, policy, retry, schedule);
  EXPECT_EQ(report.requests, 1);
  EXPECT_EQ(report.retries, 1) << "the in-flight batch must requeue";
  EXPECT_EQ(report.completed, 1) << "and complete after the restart";
  EXPECT_EQ(report.dropped_failed, 0);
  // Latency spans the crash + restart window.
  EXPECT_GT(report.mean_latency_s, 1.0);
}

TEST_F(FaultsTest, InflightDropLosesTheBatch) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kCrash, 0, 0.05, 1.0, 1.0}};
  const ServingPolicy policy{.max_batch = 4, .max_wait_s = 0.0};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, {0.0}, 10.0, policy, {}, schedule,
      InflightPolicy::kDrop);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.dropped_failed, 1);
  EXPECT_EQ(report.retries, 0);
}

TEST_F(FaultsTest, RetryExhaustionDrops) {
  // Crash every 0.08 s with 0.02 s restarts: batch-1 service (~0.1 s)
  // can never finish, so the request must exhaust its retries and drop.
  FaultSchedule schedule;
  for (int k = 0; k < 200; ++k) {
    schedule.events.push_back(
        {FaultKind::kCrash, 0, 0.08 + 0.1 * k, 0.02, 1.0});
  }
  const ServingPolicy policy{.max_batch = 1, .max_wait_s = 0.0};
  const RetryPolicy retry{.max_retries = 4,
                          .base_backoff_s = 0.01,
                          .backoff_multiplier = 1.5,
                          .max_backoff_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, {0.0}, 30.0, policy, retry, schedule);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.dropped_failed, 1);
  EXPECT_EQ(report.retries, 4) << "exactly max_retries re-attempts";
}

TEST_F(FaultsTest, PreemptedFleetDropsEverything) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kPreemption, 0, 1.0, 0.0, 1.0}};
  const auto trace = PoissonTrace(5.0, 60.0, 5);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 60.0, policy, {}, schedule);
  EXPECT_EQ(report.completed + report.dropped_failed, report.requests);
  EXPECT_GT(report.completed, 0) << "requests before the preemption";
  EXPECT_GT(report.dropped_failed, 0) << "requests after it are lost";
  // The dead instance stops being billed.
  EXPECT_LT(report.cost_per_hour_usd, 0.90 * 0.05);
}

TEST_F(FaultsTest, SlowdownStretchesServiceNotAvailability) {
  FaultSchedule schedule;
  schedule.events = {{FaultKind::kSlowdown, 0, 0.0, 600.0, 3.0}};
  const auto trace = PoissonTrace(2.0, 300.0, 9);
  const ServingPolicy policy{.max_batch = 16, .max_wait_s = 0.05};
  const ServingReport slow = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 300.0, policy, {}, schedule);
  const ServingReport fast = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 300.0, policy, {}, {});
  EXPECT_EQ(slow.completed, slow.requests) << "nothing is lost";
  EXPECT_GT(slow.mean_latency_s, fast.mean_latency_s * 1.5);
}

TEST_F(FaultsTest, DeadlineDropsUnderOverload) {
  // 3x capacity with a tight deadline: requests that cannot start in time
  // are dropped, and goodput stays below the arrival rate.
  const ServingPolicy policy{
      .max_batch = 300, .max_wait_s = 0.1, .deadline_s = 1.0};
  const double capacity = serving_.Capacity(OneP2(), perf_, policy);
  const auto trace = PoissonTrace(capacity * 3.0, 120.0, 13);
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 120.0, policy, {}, {});
  EXPECT_GT(report.dropped_deadline, 0);
  EXPECT_GT(report.deadline_miss_rate, 0.3);
  EXPECT_LT(report.goodput_per_s, capacity * 1.05);
  EXPECT_EQ(report.requests, report.completed + report.dropped_deadline +
                                 report.dropped_failed);
}

TEST_F(FaultsTest, AccuracyWeightedGoodputScalesWithAccuracy) {
  const auto trace = PoissonTrace(5.0, 60.0, 15);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, trace, 60.0, policy, {}, {}, InflightPolicy::kRequeue,
      0.8);
  EXPECT_NEAR(report.accuracy_weighted_goodput, report.goodput_per_s * 0.8,
              1e-12);
  EXPECT_THROW((void)serving_.SimulateFaulted(OneP2(), perf_, trace, 60.0,
                                              policy, {}, {},
                                              InflightPolicy::kRequeue, 1.5),
               CheckError);
}

// ------------------------------------------------------------ degradation

class DegradationTest : public FaultsTest {
 protected:
  DegradationTest() {
    pruning::PrunePlan sweet;
    sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
    pruning::PrunePlan deep;
    deep.layer_ratios = {
        {"conv1", 0.6}, {"conv2", 0.7}, {"conv3", 0.7}, {"conv4", 0.7}};
    ladder_ = {
        {perf_, 0.80},
        {ComputeVariantPerf(profile_, DensityFromPlan(profile_, sweet),
                            "sweet"),
         0.75},
        {ComputeVariantPerf(profile_, DensityFromPlan(profile_, deep),
                            "deep"),
         0.60},
    };
  }

  std::vector<std::vector<double>> IntervalTraces(
      const std::vector<double>& rates, double interval_s,
      std::uint64_t seed) {
    std::vector<std::vector<double>> traces;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      traces.push_back(PoissonTrace(rates[i], interval_s, seed + i));
    }
    return traces;
  }

  std::vector<DegradationRung> ladder_;
};

TEST_F(DegradationTest, DegradesUnderStressAndRecoversWithHysteresis) {
  const DegradationController controller(serving_, OneP2());
  // One p2.xlarge sustains ~40 img/s unpruned. Overload for 3 intervals,
  // then go quiet: the controller must step down, then step back up only
  // after recover_intervals calm intervals.
  const std::vector<double> rates{10, 60, 60, 60, 5, 5, 5, 5, 5};
  const auto traces = IntervalTraces(rates, 60.0, 100);
  const ServingPolicy policy{
      .max_batch = 128, .max_wait_s = 0.1, .deadline_s = 2.0};
  const DegradationPolicy degrade{.degrade_miss_rate = 0.05,
                                  .recover_miss_rate = 0.01,
                                  .recover_headroom = 0.7,
                                  .recover_intervals = 2};
  const DegradationResult result = controller.Run(
      traces, 60.0, ladder_, degrade, policy, {}, {});
  ASSERT_EQ(result.steps.size(), rates.size());
  EXPECT_EQ(result.steps.front().rung, 0);
  int max_rung = 0;
  for (const auto& step : result.steps) {
    max_rung = std::max(max_rung, step.rung);
  }
  EXPECT_GT(max_rung, 0) << "overload must degrade";
  EXPECT_EQ(result.steps.back().rung, 0) << "calm tail must fully recover";
  EXPECT_GT(result.mean_accuracy, 0.6);
  EXPECT_LT(result.mean_accuracy, 0.8) << "degraded intervals cost accuracy";
}

TEST_F(DegradationTest, HysteresisPreventsFlapping) {
  const DegradationController controller(serving_, OneP2());
  // Load hovering right at the stress boundary: without hysteresis the
  // rung would toggle nearly every interval. Bound total switches.
  std::vector<double> rates(12, 42.0);
  const auto traces = IntervalTraces(rates, 60.0, 200);
  const ServingPolicy policy{
      .max_batch = 128, .max_wait_s = 0.1, .deadline_s = 2.0};
  const DegradationPolicy degrade{.degrade_miss_rate = 0.05,
                                  .recover_miss_rate = 0.01,
                                  .recover_headroom = 0.65,
                                  .recover_intervals = 3};
  const DegradationResult result = controller.Run(
      traces, 60.0, ladder_, degrade, policy, {}, {});
  // Each recovery needs 3 calm intervals, so 12 intervals allow at most
  // a handful of transitions.
  EXPECT_LE(result.switches, 5) << "controller must not flap";
  // No interval may oscillate: consecutive steps differ by at most 1 rung.
  for (std::size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_LE(std::abs(result.steps[i].rung - result.steps[i - 1].rung), 1);
  }
}

TEST_F(DegradationTest, FaultsTriggerDegradation) {
  const DegradationController controller(serving_, OneP2());
  // Load fits the healthy instance, but repeated crashes shrink effective
  // capacity: the controller compensates with a faster variant.
  std::vector<double> rates(6, 12.0);
  const auto traces = IntervalTraces(rates, 60.0, 300);
  FaultSchedule faults;
  for (int k = 0; k < 12; ++k) {
    faults.events.push_back(
        {FaultKind::kCrash, 0, 60.0 + 25.0 * k, 15.0, 1.0});
  }
  const ServingPolicy policy{
      .max_batch = 128, .max_wait_s = 0.1, .deadline_s = 2.0};
  const DegradationResult faulted = controller.Run(
      traces, 60.0, ladder_, {}, policy, {.max_retries = 3}, faults);
  const DegradationResult clean = controller.Run(
      traces, 60.0, ladder_, {}, policy, {.max_retries = 3}, {});
  int max_rung = 0;
  for (const auto& step : faulted.steps) {
    max_rung = std::max(max_rung, step.rung);
  }
  EXPECT_GT(max_rung, 0) << "crash pressure must degrade the variant";
  EXPECT_EQ(clean.steps.back().rung, 0) << "no faults, no degradation";
  EXPECT_LT(faulted.mean_accuracy, clean.mean_accuracy);
}

TEST_F(DegradationTest, RejectsBadInputs) {
  const DegradationController controller(serving_, OneP2());
  const auto traces = IntervalTraces({5.0}, 30.0, 1);
  EXPECT_THROW((void)controller.Run({}, 30.0, ladder_, {}, {}, {}, {}),
               CheckError);
  EXPECT_THROW((void)controller.Run(traces, 0.0, ladder_, {}, {}, {}, {}),
               CheckError);
  EXPECT_THROW((void)controller.Run(traces, 30.0, {}, {}, {}, {}, {}),
               CheckError);
  EXPECT_THROW(
      (void)controller.Run(traces, 30.0, ladder_,
                           {.degrade_miss_rate = 0.01,
                            .recover_miss_rate = 0.05},
                           {}, {}, {}),
      CheckError);
  EXPECT_THROW(DegradationController(serving_, ResourceConfig{}), CheckError);
}

// --------------------------------------------------- fault-aware scaling

TEST_F(FaultsTest, FaultAwareAutoscalerStepsUpAfterFailures) {
  const Autoscaler scaler(serving_, "p2.xlarge");
  // Steady 30 img/s fits one p2.xlarge (~40 img/s). A crash storm in
  // epochs 1-2 starves it; the fault-aware scaler must add capacity.
  std::vector<std::vector<double>> traces;
  for (std::uint64_t e = 0; e < 5; ++e) {
    traces.push_back(PoissonTrace(30.0, 120.0, 400 + e));
  }
  FaultSchedule faults;
  for (int k = 0; k < 10; ++k) {
    faults.events.push_back(
        {FaultKind::kCrash, 0, 125.0 + 23.0 * k, 12.0, 1.0});
  }
  const ServingPolicy policy{
      .max_batch = 128, .max_wait_s = 0.1, .deadline_s = 2.0};
  const AutoscaleResult result = scaler.RunFaulted(
      traces, 120.0, perf_,
      {.target_utilization = 0.6, .min_instances = 1, .max_instances = 4},
      policy, {.max_retries = 3}, faults);
  ASSERT_EQ(result.steps.size(), 5u);
  int peak = 0;
  for (const auto& step : result.steps) {
    peak = std::max(peak, step.instances);
  }
  EXPECT_GT(peak, 1) << "failure signals must force a step up";
  EXPECT_GT(result.slo_compliance, 0.5);
  EXPECT_LT(result.slo_compliance, 1.0) << "the crash epochs leave a scar";
}

TEST(FaultScheduleCache, ReturnsTheGeneratedSchedule) {
  const FaultModel model{.preemption_rate = 2.0, .crash_rate = 4.0};
  FaultScheduleCache cache;
  const FaultSchedule& cached = cache.Get(model, 4, 3600.0, 7);
  Rng rng(7);
  const FaultSchedule direct = GenerateFaultSchedule(model, 4, 3600.0, rng);
  ASSERT_EQ(cached.events.size(), direct.events.size());
  for (std::size_t i = 0; i < cached.events.size(); ++i) {
    EXPECT_EQ(cached.events[i].start_s, direct.events[i].start_s);
    EXPECT_EQ(cached.events[i].instance, direct.events[i].instance);
    EXPECT_EQ(cached.events[i].kind, direct.events[i].kind);
  }
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(FaultScheduleCache, RepeatLookupsHitAndShareOneEntry) {
  const FaultModel model{.crash_rate = 6.0};
  FaultScheduleCache cache;
  const FaultSchedule& first = cache.Get(model, 2, 1800.0, 11);
  const FaultSchedule& second = cache.Get(model, 2, 1800.0, 11);
  EXPECT_EQ(&first, &second) << "hits must share the generated schedule";
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Hits(), 1u);
  EXPECT_EQ(cache.Misses(), 1u);
  // Any key component change is a distinct entry.
  (void)cache.Get(model, 3, 1800.0, 11);
  (void)cache.Get(model, 2, 1800.0, 12);
  EXPECT_EQ(cache.Size(), 3u);
}

TEST(FaultScheduleCache, ConcurrentLookupsConvergeOnOneSchedule) {
  const FaultModel model{.preemption_rate = 1.0, .crash_rate = 8.0,
                         .slowdown_rate = 3.0};
  FaultScheduleCache cache;
  std::vector<const FaultSchedule*> seen(64, nullptr);
  ParallelFor(
      0, seen.size(),
      [&](std::size_t i) { seen[i] = &cache.Get(model, 4, 3600.0, 42); },
      1);
  for (const FaultSchedule* p : seen) {
    EXPECT_EQ(p, seen[0]) << "every caller must observe the same entry";
  }
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Hits() + cache.Misses(), seen.size());
}

}  // namespace
}  // namespace ccperf::cloud
