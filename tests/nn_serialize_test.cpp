#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "pruning/prune_plan.h"
#include "pruning/variant_generator.h"

namespace ccperf::nn {
namespace {

Network RoundTrip(const Network& net) {
  std::stringstream buffer;
  SaveNetwork(net, buffer);
  return LoadNetwork(buffer);
}

void ExpectSameOutputs(const Network& a, const Network& b, std::uint64_t seed) {
  Tensor in(Shape{2, a.InputShape().Dim(0), a.InputShape().Dim(1),
                  a.InputShape().Dim(2)});
  Rng rng(seed);
  in.FillGaussian(rng, 0.0f, 1.0f);
  const Tensor ya = a.Forward(in);
  const Tensor yb = b.Forward(in);
  ASSERT_EQ(ya.GetShape(), yb.GetShape());
  for (std::int64_t i = 0; i < ya.NumElements(); ++i) {
    ASSERT_EQ(ya.At(i), yb.At(i)) << "at " << i;
  }
}

TEST(Serialize, TinyCnnRoundTripBitExact) {
  ModelConfig config;
  config.weight_seed = 5;
  const Network net = BuildTinyCnn(config);
  const Network loaded = RoundTrip(net);
  EXPECT_EQ(loaded.Name(), net.Name());
  EXPECT_EQ(loaded.LayerCount(), net.LayerCount());
  EXPECT_EQ(loaded.ParameterCount(), net.ParameterCount());
  ExpectSameOutputs(net, loaded, 1);
}

TEST(Serialize, PrunedVariantKeepsSparsityAndSparsePath) {
  ModelConfig config;
  config.weight_seed = 6;
  Network net = BuildTinyCnn(config);
  pruning::ApplyPlanInPlace(
      net, pruning::UniformPlan({"conv1", "conv2", "fc1"}, 0.7,
                                pruning::PrunerFamily::kMagnitude));
  const Network loaded = RoundTrip(net);
  EXPECT_NEAR(loaded.FindLayer("conv2")->WeightDensity(), 0.3, 0.01);
  ExpectSameOutputs(net, loaded, 2);
}

TEST(Serialize, BranchingDagRoundTrip) {
  // GoogLeNet at reduced scale: concat wiring and LRN params must survive.
  ModelConfig config;
  config.channel_scale = 0.1;
  config.num_classes = 12;
  config.weight_seed = 7;
  const Network net = BuildGoogLeNet(config);
  const Network loaded = RoundTrip(net);
  EXPECT_EQ(loaded.LayerCount(), net.LayerCount());
  EXPECT_EQ(loaded.OutputShape(1), net.OutputShape(1));
  ExpectSameOutputs(net, loaded, 3);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ccperf_net.bin";
  ModelConfig config;
  config.weight_seed = 8;
  const Network net = BuildTinyCnn(config);
  SaveNetworkToFile(net, path);
  const Network loaded = LoadNetworkFromFile(path);
  ExpectSameOutputs(net, loaded, 4);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPEnonsense-bytes-here-------------------------";
  EXPECT_THROW((void)LoadNetwork(buffer), CheckError);
}

TEST(Serialize, RejectsTruncatedStream) {
  ModelConfig config;
  config.weight_seed = 9;
  const Network net = BuildTinyCnn(config);
  std::stringstream buffer;
  SaveNetwork(net, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)LoadNetwork(truncated), CheckError);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW((void)LoadNetworkFromFile("/nonexistent/net.bin"), CheckError);
  ModelConfig config;
  config.weight_seed = 1;
  const Network net = BuildTinyCnn(config);
  EXPECT_THROW(SaveNetworkToFile(net, "/nonexistent/net.bin"), CheckError);
}

TEST(Serialize, VersionFieldChecked) {
  ModelConfig config;
  config.weight_seed = 2;
  const Network net = BuildTinyCnn(config);
  std::stringstream buffer;
  SaveNetwork(net, buffer);
  std::string bytes = buffer.str();
  bytes[4] = 99;  // corrupt the version little-endian low byte
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)LoadNetwork(corrupted), CheckError);
}

}  // namespace
}  // namespace ccperf::nn
