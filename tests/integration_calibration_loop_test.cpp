// Integration: the paper's full §3 methodology at laptop scale —
// (1) measure real per-variant inference accuracy on a CNN,
// (2) fit the analytical accuracy model from those measurements,
// (3) use the fitted model to predict variants that were never measured,
// and check the predictions against fresh measurements.
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/empirical_accuracy.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/variant_generator.h"

namespace ccperf::core {
namespace {

class CalibrationLoopTest : public ::testing::Test {
 protected:
  CalibrationLoopTest()
      : base_([] {
          nn::ModelConfig config;
          config.weight_seed = 123;
          config.num_classes = 32;  // Top-5 of 10 classes saturates; use 32
          return nn::BuildTinyCnn(config);
        }()),
        dataset_(Shape{3, 16, 16}, 32, 512, 77, 0.3f),
        evaluator_(base_, dataset_, /*sample_images=*/192, /*batch=*/32) {}

  /// Measured Top-5 agreement curve for one layer (real inference).
  std::vector<CurvePoint> MeasureLayerCurve(const std::string& layer) {
    std::vector<CurvePoint> curve;
    for (double r : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
      pruning::PrunePlan plan;
      plan.family = pruning::PrunerFamily::kMagnitude;
      plan.layer_ratios[layer] = r;
      const nn::Network variant = pruning::ApplyPlan(base_, plan);
      const AccuracyResult agree = evaluator_.Agreement(variant);
      // Top-1 agreement is the fitting signal: Top-5 stays near 1 on a
      // 32-class toy task and carries no damage information.
      curve.push_back({r, 1.0, agree.top1, agree.top1});
    }
    return curve;
  }

  nn::Network base_;
  data::SyntheticImageDataset dataset_;
  EmpiricalAccuracyEvaluator evaluator_;
};

TEST_F(CalibrationLoopTest, MeasureFitPredict) {
  // (1) + (2): measure per-layer curves, fit the damage model.
  std::map<std::string, std::vector<CurvePoint>> curves;
  for (const char* layer : {"conv1", "conv2", "fc1"}) {
    curves[layer] = MeasureLayerCurve(layer);
  }
  const CalibratedAccuracyModel fitted =
      FitAccuracyModel(curves, /*base_top1=*/1.0, /*base_top5=*/1.0,
                       pruning::PrunerFamily::kMagnitude);

  // (3): predict a held-out multi-layer variant and compare to a fresh
  // measurement. The damage model ignores cross-layer interactions beyond
  // additivity, and the teacher-student measurement is itself noisy on 192
  // samples, so the tolerance is generous — the point is that a model
  // fitted purely from single-layer measurements lands in the right region
  // for a combined variant.
  pruning::PrunePlan combo;
  combo.family = pruning::PrunerFamily::kMagnitude;
  combo.layer_ratios = {{"conv1", 0.4}, {"conv2", 0.6}};
  const double predicted = fitted.Evaluate(combo).top5;
  const double measured =
      evaluator_.Agreement(pruning::ApplyPlan(base_, combo)).top1;
  EXPECT_NEAR(predicted, measured, 0.25);

  // The fitted model must at least rank variants like the measurements do.
  pruning::PrunePlan light;
  light.family = pruning::PrunerFamily::kMagnitude;
  light.layer_ratios = {{"conv2", 0.3}};
  pruning::PrunePlan heavy;
  heavy.family = pruning::PrunerFamily::kMagnitude;
  heavy.layer_ratios = {{"conv1", 0.8}, {"conv2", 0.8}, {"fc1", 0.8}};
  const double pred_light = fitted.Evaluate(light).top5;
  const double pred_heavy = fitted.Evaluate(heavy).top5;
  const double meas_light =
      evaluator_.Agreement(pruning::ApplyPlan(base_, light)).top1;
  const double meas_heavy =
      evaluator_.Agreement(pruning::ApplyPlan(base_, heavy)).top1;
  EXPECT_GT(pred_light, pred_heavy);
  EXPECT_GT(meas_light, meas_heavy);
}

TEST_F(CalibrationLoopTest, FittedCurvesReplayMeasuredOnes) {
  // Prediction on the very ratios that were measured should be close for a
  // well-behaved layer.
  const auto curve = MeasureLayerCurve("conv2");
  std::map<std::string, std::vector<CurvePoint>> curves{{"conv2", curve}};
  const CalibratedAccuracyModel fitted = FitAccuracyModel(
      curves, 1.0, 1.0, pruning::PrunerFamily::kMagnitude);
  for (const CurvePoint& p : curve) {
    if (p.ratio < 0.4) continue;  // flat region carries no constraint
    pruning::PrunePlan plan;
    plan.family = pruning::PrunerFamily::kMagnitude;
    plan.layer_ratios["conv2"] = p.ratio;
    EXPECT_NEAR(fitted.Evaluate(plan).top5, p.top5, 0.25)
        << "ratio " << p.ratio;
  }
}

}  // namespace
}  // namespace ccperf::core
