#include "nn/model_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"

namespace ccperf::nn {
namespace {

constexpr const char* kTinyText = R"(
# a comment
network tinytext
input 3 16 16
conv  conv1 out=8 kernel=3 stride=1 pad=1
relu  relu1
maxpool pool1 kernel=2 stride=2
conv  conv2 out=16 kernel=3 pad=1 groups=2
relu  relu2
maxpool pool2 kernel=2 stride=2
fc    fc1 out=32
relu  relu3
fc    fc2 out=10
softmax prob
)";

TEST(ModelParser, BuildsChainedNetwork) {
  const Network net = ParseModel(kTinyText, /*weight_seed=*/3);
  EXPECT_EQ(net.Name(), "tinytext");
  EXPECT_EQ(net.LayerCount(), 10u);
  EXPECT_EQ(net.OutputShape(2), (Shape{2, 10, 1, 1}));
}

TEST(ModelParser, InfersChannelsAndFeatures) {
  const Network net = ParseModel(kTinyText);
  const auto* conv2 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv2"));
  ASSERT_NE(conv2, nullptr);
  EXPECT_EQ(conv2->InChannels(), 8);
  EXPECT_EQ(conv2->Weights().GetShape(), (Shape{16, 4, 3, 3}));
  const auto* fc1 = dynamic_cast<const FcLayer*>(net.FindLayer("fc1"));
  ASSERT_NE(fc1, nullptr);
  EXPECT_EQ(fc1->InFeatures(), 16 * 4 * 4);
}

TEST(ModelParser, MatchesHandBuiltTinyCnn) {
  // The DSL description above mirrors BuildTinyCnn (minus dropout); with
  // identical weight seeds the weighted layers coincide only when their
  // names and shapes match, so compare structure.
  ModelConfig config;
  config.weight_seed = 0;
  const Network built = BuildTinyCnn(config);
  const Network parsed = ParseModel(kTinyText);
  EXPECT_EQ(parsed.OutputShape(1), built.OutputShape(1));
  EXPECT_EQ(parsed.ParameterCount(), built.ParameterCount());
}

TEST(ModelParser, BranchingWithFrom) {
  const Network net = ParseModel(R"(
network branchy
input 2 4 4
conv a out=2 kernel=1 from=input
conv b out=3 kernel=1 from=input
concat join from=a,b
relu out from=join
)");
  EXPECT_EQ(net.OutputShape(1), (Shape{1, 5, 4, 4}));
}

TEST(ModelParser, ForwardRuns) {
  const Network net = ParseModel(kTinyText, 7);
  Tensor in(Shape{1, 3, 16, 16}, std::vector<float>(3 * 16 * 16, 0.3f));
  const Tensor out = net.Forward(in);
  float sum = 0.0f;
  for (std::int64_t c = 0; c < 10; ++c) sum += out.At(c);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(ModelParser, LrnDefaults) {
  const Network net = ParseModel(R"(
network n
input 4 8 8
lrn norm1 size=3 alpha=0.5
)");
  EXPECT_EQ(net.LayerCount(), 1u);
}

TEST(ModelParser, ErrorsCarryLineNumbers) {
  try {
    (void)ParseModel("network x\ninput 3 8 8\nconv c1 kernel=3\n");
    FAIL() << "missing out= must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ModelParser, RejectsMalformedInput) {
  EXPECT_THROW((void)ParseModel(""), CheckError);
  EXPECT_THROW((void)ParseModel("network x\nconv c out=4\n"), CheckError);
  EXPECT_THROW((void)ParseModel("network x\ninput 3 8\n"), CheckError);
  EXPECT_THROW((void)ParseModel("network x\ninput 3 8 8\nwarp w\n"),
               CheckError);
  EXPECT_THROW(
      (void)ParseModel("network x\ninput 3 8 8\nconv c out=4 from=ghost\n"),
      CheckError);
  EXPECT_THROW(
      (void)ParseModel("network x\ninput 3 8 8\nconv c out=4 kernel=99\n"),
      CheckError);
}

TEST(ModelParser, RoundTripThroughFormat) {
  ModelConfig config;
  config.weight_seed = 0;
  const Network net = BuildTinyCnn(config);
  const std::string text = FormatModel(net);
  const Network reparsed = ParseModel(text);
  EXPECT_EQ(reparsed.LayerCount(), net.LayerCount());
  EXPECT_EQ(reparsed.OutputShape(1), net.OutputShape(1));
  EXPECT_EQ(reparsed.ParameterCount(), net.ParameterCount());
}

TEST(ModelParser, FormatOfBranchingDagRoundTrips) {
  ModelConfig config;
  config.channel_scale = 0.1;
  config.weight_seed = 0;
  config.num_classes = 7;
  const Network goog = BuildGoogLeNet(config);
  const Network reparsed = ParseModel(FormatModel(goog));
  EXPECT_EQ(reparsed.LayerCount(), goog.LayerCount());
  EXPECT_EQ(reparsed.OutputShape(1), goog.OutputShape(1));
}

TEST(ModelParser, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ccperf_model.txt";
  {
    std::ofstream out(path);
    out << kTinyText;
  }
  const Network net = ParseModelFile(path);
  EXPECT_EQ(net.Name(), "tinytext");
  std::remove(path.c_str());
  EXPECT_THROW((void)ParseModelFile("/nonexistent/model.txt"), CheckError);
}

}  // namespace
}  // namespace ccperf::nn
