#include "nn/model_zoo.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/flops.h"

namespace ccperf::nn {
namespace {

ModelConfig NoWeights() {
  ModelConfig config;
  config.weight_seed = 0;  // skip weight fill: structure-only tests are fast
  return config;
}

// --- CaffeNet: the paper's Table 1 -----------------------------------------

TEST(CaffeNet, LayerGeometryMatchesTable1) {
  const Network net = BuildCaffeNet(NoWeights());
  const NetworkCostReport report = AnalyzeNetwork(net, 1);
  auto shape_of = [&](const std::string& name) -> Shape {
    for (const auto& l : report.layers) {
      if (l.name == name) return l.output_shape;
    }
    ADD_FAILURE() << "missing layer " << name;
    return Shape{};
  };
  EXPECT_EQ(shape_of("conv1"), (Shape{1, 96, 55, 55}));
  EXPECT_EQ(shape_of("conv2"), (Shape{1, 256, 27, 27}));
  EXPECT_EQ(shape_of("conv3"), (Shape{1, 384, 13, 13}));
  EXPECT_EQ(shape_of("conv4"), (Shape{1, 384, 13, 13}));
  EXPECT_EQ(shape_of("conv5"), (Shape{1, 256, 13, 13}));
  EXPECT_EQ(shape_of("fc1"), (Shape{1, 4096, 1, 1}));
  EXPECT_EQ(shape_of("fc2"), (Shape{1, 4096, 1, 1}));
  EXPECT_EQ(shape_of("fc3"), (Shape{1, 1000, 1, 1}));
}

TEST(CaffeNet, FilterCountsAndSizesMatchTable1) {
  const Network net = BuildCaffeNet(NoWeights());
  const auto* conv1 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv1"));
  ASSERT_NE(conv1, nullptr);
  EXPECT_EQ(conv1->Params().out_channels, 96);
  EXPECT_EQ(conv1->Params().kernel, 11);
  EXPECT_EQ(conv1->Weights().GetShape(), (Shape{96, 3, 11, 11}));
  const auto* conv2 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv2"));
  ASSERT_NE(conv2, nullptr);
  // Table 1: filter size 5x5x48 — the group-2 split of 96 input channels.
  EXPECT_EQ(conv2->Weights().GetShape(), (Shape{256, 48, 5, 5}));
  const auto* conv3 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv3"));
  EXPECT_EQ(conv3->Weights().GetShape(), (Shape{384, 256, 3, 3}));
  const auto* conv4 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv4"));
  EXPECT_EQ(conv4->Weights().GetShape(), (Shape{384, 192, 3, 3}));
  const auto* conv5 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv5"));
  EXPECT_EQ(conv5->Weights().GetShape(), (Shape{256, 192, 3, 3}));
}

TEST(CaffeNet, ParameterCountNearSixtyOneMillion) {
  const Network net = BuildCaffeNet(NoWeights());
  const double params = static_cast<double>(net.ParameterCount());
  EXPECT_NEAR(params / 1e6, 61.0, 1.5);
}

TEST(CaffeNet, WeightedLayerOrder) {
  const Network net = BuildCaffeNet(NoWeights());
  EXPECT_EQ(net.WeightedLayerNames(),
            (std::vector<std::string>{"conv1", "conv2", "conv3", "conv4",
                                      "conv5", "fc1", "fc2", "fc3"}));
}

TEST(CaffeNet, ScaledVariantShrinksChannels) {
  ModelConfig config = NoWeights();
  config.channel_scale = 0.25;
  const Network net = BuildCaffeNet(config);
  const auto* conv2 = dynamic_cast<const ConvLayer*>(net.FindLayer("conv2"));
  ASSERT_NE(conv2, nullptr);
  EXPECT_EQ(conv2->Params().out_channels, 64);
  EXPECT_EQ(conv2->Params().groups, 2);
  // Structure still forwards: output is [1, classes, 1, 1].
  EXPECT_EQ(net.OutputShape(1).Dim(1), 1000);
}

TEST(CaffeNet, DeterministicWeights) {
  ModelConfig config;
  config.channel_scale = 0.125;
  config.weight_seed = 7;
  const Network a = BuildCaffeNet(config);
  const Network b = BuildCaffeNet(config);
  const Tensor& wa = a.FindLayer("conv3")->Weights();
  const Tensor& wb = b.FindLayer("conv3")->Weights();
  for (std::int64_t i = 0; i < wa.NumElements(); i += 97) {
    EXPECT_EQ(wa.At(i), wb.At(i));
  }
}

TEST(CaffeNet, RejectsBadScale) {
  ModelConfig config = NoWeights();
  config.channel_scale = 0.0;
  EXPECT_THROW(BuildCaffeNet(config), CheckError);
}

// --- GoogLeNet: the paper's "56 convolution layers" -------------------------

TEST(GoogLeNet, ConvolutionCountMatchesPaper) {
  const Network net = BuildGoogLeNet(NoWeights());
  int convs = 0;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).Kind() == LayerKind::kConvolution) ++convs;
  }
  // 2 stem convolutions + conv2-reduce + 9 inception modules x 6 = 57.
  // (The paper counts 56 by folding the 1x1 conv2 reduce into the stem.)
  EXPECT_EQ(convs, 57);
}

TEST(GoogLeNet, InceptionOutputChannels) {
  const Network net = BuildGoogLeNet(NoWeights());
  const NetworkCostReport report = AnalyzeNetwork(net, 1);
  auto channels_of = [&](const std::string& name) -> std::int64_t {
    for (const auto& l : report.layers) {
      if (l.name == name) return l.output_shape.Dim(1);
    }
    ADD_FAILURE() << "missing layer " << name;
    return -1;
  };
  EXPECT_EQ(channels_of("inception-3a-output"), 256);
  EXPECT_EQ(channels_of("inception-3b-output"), 480);
  EXPECT_EQ(channels_of("inception-4a-output"), 512);
  EXPECT_EQ(channels_of("inception-4e-output"), 832);
  EXPECT_EQ(channels_of("inception-5b-output"), 1024);
}

TEST(GoogLeNet, SpatialPyramid) {
  const Network net = BuildGoogLeNet(NoWeights());
  const NetworkCostReport report = AnalyzeNetwork(net, 1);
  auto hw_of = [&](const std::string& name) -> std::int64_t {
    for (const auto& l : report.layers) {
      if (l.name == name) return l.output_shape.Dim(2);
    }
    return -1;
  };
  EXPECT_EQ(hw_of("conv1-7x7-s2"), 112);
  EXPECT_EQ(hw_of("pool2-3x3-s2"), 28);
  EXPECT_EQ(hw_of("pool3-3x3-s2"), 14);
  EXPECT_EQ(hw_of("pool4-3x3-s2"), 7);
  EXPECT_EQ(hw_of("pool5-7x7-s1"), 1);
}

TEST(GoogLeNet, OutputIsThousandClasses) {
  const Network net = BuildGoogLeNet(NoWeights());
  EXPECT_EQ(net.OutputShape(2), (Shape{2, 1000, 1, 1}));
}

TEST(GoogLeNet, FarFewerParametersThanCaffeNet) {
  // The paper: "despite being a deeper CNN, Googlenet has only ~4M
  // parameters" (vs CaffeNet's 61M). Ours lands near 7M including the
  // classifier, an order of magnitude below CaffeNet either way.
  const Network goog = BuildGoogLeNet(NoWeights());
  const Network caffe = BuildCaffeNet(NoWeights());
  EXPECT_LT(goog.ParameterCount() * 5, caffe.ParameterCount());
}

TEST(GoogLeNet, PaperLayerNamesExist) {
  const Network net = BuildGoogLeNet(NoWeights());
  // The six layers shown in the paper's Fig. 7.
  for (const char* name :
       {"conv1-7x7-s2", "conv2-3x3", "inception-3a-3x3", "inception-4d-5x5",
        "inception-4e-5x5", "inception-5a-3x3"}) {
    EXPECT_NE(net.FindLayer(name), nullptr) << name;
  }
}

// --- TinyCnn (test model) ----------------------------------------------------

TEST(TinyCnn, ForwardWorks) {
  const Network net = BuildTinyCnn();
  Tensor in(Shape{2, 3, 16, 16}, std::vector<float>(2 * 3 * 16 * 16, 0.1f));
  const Tensor out = net.Forward(in);
  EXPECT_EQ(out.GetShape(), (Shape{2, 10, 1, 1}));
}

TEST(TinyCnn, CustomClassCount) {
  ModelConfig config;
  config.num_classes = 4;
  const Network net = BuildTinyCnn(config);
  EXPECT_EQ(net.OutputShape(1).Dim(1), 4);
}

}  // namespace
}  // namespace ccperf::nn
