// Checkpoint/restore subsystem: the serving engine must be resumable from a
// snapshot taken at any fault event with a *bitwise identical* final report,
// checkpointed runs must never perturb the dynamics (only the bill), and
// the spot-economics model must price snapshots + lost recompute per the
// paper's Eqs. 1-4.
#include "cloud/checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "cloud/autoscaler.h"
#include "cloud/density.h"
#include "cloud/serving.h"
#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  ResourceConfig Fleet(int instances = 1) {
    ResourceConfig config;
    config.Add("p2.xlarge", instances);
    return config;
  }

  std::vector<double> PoissonTrace(double rate, double duration,
                                   std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t > duration) break;
      trace.push_back(t);
    }
    return trace;
  }

  FaultSchedule CrashStorm(int instances, double duration,
                           std::uint64_t seed) {
    const FaultModel model{.crash_rate = 160.0,
                           .restart_s = 5.0,
                           .slowdown_rate = 80.0,
                           .slowdown_s = 8.0,
                           .slowdown_factor = 2.5};
    Rng rng(seed);
    return GenerateFaultSchedule(model, instances, duration, rng);
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  ModelProfile profile_;
  VariantPerf perf_;
};

/// Field-by-field exact comparison — EXPECT_EQ on doubles is deliberate:
/// the durability invariant is *bitwise* equality, not tolerance.
void ExpectReportsIdentical(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.cost_per_hour_usd, b.cost_per_hour_usd);
  EXPECT_EQ(a.stable, b.stable);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped_deadline, b.dropped_deadline);
  EXPECT_EQ(a.dropped_failed, b.dropped_failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.goodput_per_s, b.goodput_per_s);
  EXPECT_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
  EXPECT_EQ(a.accuracy_weighted_goodput, b.accuracy_weighted_goodput);
}

// ---------------------------------------------------------------- engine

TEST_F(CheckpointTest, EngineReproducesSimulateFaulted) {
  const double duration = 120.0;
  const auto trace = PoissonTrace(15.0, duration, 31);
  const FaultSchedule faults = CrashStorm(2, duration, 7);
  const ServingPolicy policy{
      .max_batch = 32, .max_wait_s = 0.05, .deadline_s = 2.0};
  const RetryPolicy retry{.max_retries = 3};

  const ServingReport reference = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, duration, policy, retry, faults);
  FaultedServingEngine engine(serving_, Fleet(2), perf_, trace, duration,
                              policy, retry, faults);
  double watermark = 0.0;
  while (!engine.Done()) {
    engine.Step();
    EXPECT_GE(engine.Watermark(), watermark) << "watermark must be monotone";
    watermark = engine.Watermark();
  }
  ExpectReportsIdentical(engine.Finish(), reference);
  EXPECT_THROW(engine.Step(), CheckError) << "stepping a finished engine";
}

TEST_F(CheckpointTest, FinishBeforeDoneThrows) {
  FaultedServingEngine engine(serving_, Fleet(), perf_,
                              PoissonTrace(10.0, 30.0, 1), 30.0, {}, {}, {});
  EXPECT_THROW((void)engine.Finish(), CheckError);
}

// The tentpole invariant: kill the run at *every* fault event, restore the
// snapshot into a fresh engine, and the finished report must be bitwise
// identical to the uninterrupted run.
TEST_F(CheckpointTest, KillAtEveryFaultEventResumesBitwiseIdentically) {
  const double duration = 90.0;
  const auto trace = PoissonTrace(20.0, duration, 77);
  const FaultSchedule faults = CrashStorm(2, duration, 13);
  ASSERT_GE(faults.events.size(), 4u) << "storm too quiet to exercise kills";
  const ServingPolicy policy{
      .max_batch = 16, .max_wait_s = 0.02, .deadline_s = 1.5};
  const RetryPolicy retry{.max_retries = 4, .base_backoff_s = 0.02};

  const ServingReport reference = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, duration, policy, retry, faults);

  for (const FaultEvent& event : faults.events) {
    // Run a victim engine until the fault's instant is covered, then
    // "kill" it: all that survives is the snapshot bytes.
    FaultedServingEngine victim(serving_, Fleet(2), perf_, trace, duration,
                                policy, retry, faults);
    while (!victim.Done() && victim.Watermark() < event.start_s) {
      victim.Step();
    }
    const std::string snapshot = victim.Checkpoint();

    FaultedServingEngine resumed(serving_, Fleet(2), perf_, trace, duration,
                                 policy, retry, faults);
    resumed.Restore(snapshot);
    EXPECT_EQ(resumed.Watermark(), victim.Watermark());
    while (!resumed.Done()) resumed.Step();
    ExpectReportsIdentical(resumed.Finish(), reference);
  }
}

TEST_F(CheckpointTest, Int8VariantResumesBitwiseIdenticallyMidRun) {
  // Quantized variants (int8-enabled ComputeVariantPerf) are first-class
  // serving citizens: kill a mid-run engine serving an int8 variant at
  // several fault events and the restored runs must finish with bitwise
  // identical reports. The snapshot fingerprint covers the variant's perf,
  // so an int8 snapshot must not restore into a float-variant engine.
  const VariantPerf int8_perf = ComputeVariantPerf(
      profile_, DensityFromPlan(profile_, {}), "nonpruned-int8",
      /*int8_enabled=*/true);
  EXPECT_LT(int8_perf.ref_seconds_per_image.value(),
            perf_.ref_seconds_per_image.value())
      << "the quantized kernel must be modeled as faster than float";

  const double duration = 90.0;
  const auto trace = PoissonTrace(20.0, duration, 77);
  const FaultSchedule faults = CrashStorm(2, duration, 13);
  ASSERT_GE(faults.events.size(), 2u);
  const ServingPolicy policy{
      .max_batch = 16, .max_wait_s = 0.02, .deadline_s = 1.5};
  const RetryPolicy retry{.max_retries = 4, .base_backoff_s = 0.02};

  const ServingReport reference = serving_.SimulateFaulted(
      Fleet(2), int8_perf, trace, duration, policy, retry, faults);

  for (const FaultEvent& event : faults.events) {
    FaultedServingEngine victim(serving_, Fleet(2), int8_perf, trace,
                                duration, policy, retry, faults);
    while (!victim.Done() && victim.Watermark() < event.start_s) {
      victim.Step();
    }
    const std::string snapshot = victim.Checkpoint();

    FaultedServingEngine resumed(serving_, Fleet(2), int8_perf, trace,
                                 duration, policy, retry, faults);
    resumed.Restore(snapshot);
    while (!resumed.Done()) resumed.Step();
    ExpectReportsIdentical(resumed.Finish(), reference);

    // The same snapshot must be rejected by a float-variant engine: the
    // variant identity is part of the run fingerprint.
    FaultedServingEngine float_engine(serving_, Fleet(2), perf_, trace,
                                      duration, policy, retry, faults);
    EXPECT_THROW(float_engine.Restore(snapshot), CheckError);
  }
}

TEST_F(CheckpointTest, RestoreRejectsMismatchedInputsAndForeignSnapshots) {
  const auto trace = PoissonTrace(10.0, 60.0, 5);
  FaultedServingEngine engine(serving_, Fleet(), perf_, trace, 60.0, {}, {},
                              {});
  engine.Step();
  const std::string snapshot = engine.Checkpoint();

  // Different trace -> different fingerprint.
  auto other_trace = trace;
  other_trace.push_back(other_trace.back() + 1.0);
  FaultedServingEngine other(serving_, Fleet(), perf_, other_trace, 60.0, {},
                             {}, {});
  EXPECT_THROW(other.Restore(snapshot), CheckError);

  // Different policy on the same trace is also a different run.
  FaultedServingEngine strict(serving_, Fleet(), perf_, trace, 60.0,
                              {.max_batch = 2}, {}, {});
  EXPECT_THROW(strict.Restore(snapshot), CheckError);

  // A snapshot from another subsystem (offline-run app tag) is rejected.
  const ResumableOfflineRun offline(sim_, Fleet(), perf_, 1000);
  FaultedServingEngine same(serving_, Fleet(), perf_, trace, 60.0, {}, {},
                            {});
  EXPECT_THROW(same.Restore(offline.Checkpoint()), CheckError);
  EXPECT_THROW(same.Restore(std::string("not a snapshot")), CheckError);
}

// ------------------------------------------------------ checkpointed runs

TEST_F(CheckpointTest, CheckpointedRunChargesOverheadWithoutPerturbing) {
  const double duration = 120.0;
  const auto trace = PoissonTrace(12.0, duration, 41);
  const FaultSchedule faults = CrashStorm(1, duration, 3);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const RetryPolicy retry{.max_retries = 2};
  const CheckpointPolicy checkpoint{.trigger = CheckpointTrigger::kPeriodic,
                                    .interval_s = 10.0,
                                    .snapshot_cost_s = 2.0};

  const ServingReport plain = serving_.SimulateFaulted(
      Fleet(), perf_, trace, duration, policy, retry, faults);
  CheckpointStats stats;
  const ServingReport checked = serving_.SimulateFaultedCheckpointed(
      Fleet(), perf_, trace, duration, policy, retry, faults, checkpoint,
      &stats);
  ExpectReportsIdentical(checked, plain);

  EXPECT_GT(stats.snapshots, 0);
  EXPECT_LE(stats.snapshots, 12) << "at most one per 10 s interval";
  EXPECT_DOUBLE_EQ(stats.snapshot_overhead_s, stats.snapshots * 2.0);
  EXPECT_DOUBLE_EQ(
      stats.overhead_cost_usd,
      stats.snapshot_overhead_s / 3600.0 *
          PricePerHour(Fleet(), catalog_).value());
  EXPECT_GT(stats.last_snapshot_s, 0.0);
  ASSERT_FALSE(stats.latest.empty());

  // The latest snapshot is restorable and completes to the same report.
  FaultedServingEngine resumed(serving_, Fleet(), perf_, trace, duration,
                               policy, retry, faults);
  resumed.Restore(stats.latest);
  while (!resumed.Done()) resumed.Step();
  ExpectReportsIdentical(resumed.Finish(), plain);
}

TEST_F(CheckpointTest, KeepHistoryRecordsEverySnapshot) {
  const auto trace = PoissonTrace(10.0, 60.0, 9);
  CheckpointStats stats;
  stats.keep_history = true;
  (void)serving_.SimulateFaultedCheckpointed(
      Fleet(), perf_, trace, 60.0, {}, {}, {},
      {.interval_s = 15.0, .snapshot_cost_s = 0.5}, &stats);
  EXPECT_EQ(static_cast<int>(stats.history.size()), stats.snapshots);
  for (std::size_t i = 1; i < stats.history.size(); ++i) {
    EXPECT_GT(stats.history[i].first, stats.history[i - 1].first);
  }
}

// ----------------------------------------------------- policies & triggers

TEST(CheckpointPolicyTest, ValidationAndTriggerNames) {
  EXPECT_NO_THROW(ValidateCheckpointPolicy({}));
  EXPECT_THROW(ValidateCheckpointPolicy({.interval_s = 0.0}), CheckError);
  EXPECT_THROW(ValidateCheckpointPolicy({.warning_lead_s = -1.0}),
               CheckError);
  EXPECT_THROW(ValidateCheckpointPolicy({.snapshot_cost_s = -0.5}),
               CheckError);
  EXPECT_STREQ(CheckpointTriggerName(CheckpointTrigger::kPeriodic),
               "periodic");
  EXPECT_STREQ(CheckpointTriggerName(CheckpointTrigger::kOnPreemptionWarning),
               "on-warning");
  EXPECT_STREQ(CheckpointTriggerName(CheckpointTrigger::kAdaptive),
               "adaptive");
}

TEST(CheckpointPolicyTest, YoungIntervalMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(YoungInterval(2.0, 3600.0), std::sqrt(2.0 * 2.0 * 3600.0));
  EXPECT_THROW((void)YoungInterval(0.0, 3600.0), CheckError);
  EXPECT_THROW((void)YoungInterval(1.0, 0.0), CheckError);
}

TEST(CheckpointPolicyTest, PeriodicInstantsCoverTheRun) {
  const auto instants = CheckpointInstants(
      {.trigger = CheckpointTrigger::kPeriodic, .interval_s = 25.0}, {},
      100.0, 1);
  ASSERT_EQ(instants.size(), 3u);
  EXPECT_DOUBLE_EQ(instants[0], 25.0);
  EXPECT_DOUBLE_EQ(instants[2], 75.0);
}

TEST(CheckpointPolicyTest, WarningInstantsLeadEachFault) {
  FaultSchedule faults;
  faults.events = {{FaultKind::kCrash, 0, 50.0, 5.0, 1.0},
                   {FaultKind::kCrash, 0, 100.0, 5.0, 1.0},
                   {FaultKind::kPreemption, 0, 119.0, 0.0, 1.0}};
  const auto instants = CheckpointInstants(
      {.trigger = CheckpointTrigger::kOnPreemptionWarning,
       .warning_lead_s = 120.0},
      faults, 120.0, 1);
  // 50 - 120 < 0 is dropped; the others snapshot 120 s ahead... except the
  // lead pushes the first two before t=0 too. Use a shorter lead to check
  // the arithmetic.
  const auto close = CheckpointInstants(
      {.trigger = CheckpointTrigger::kOnPreemptionWarning,
       .warning_lead_s = 10.0},
      faults, 120.0, 1);
  ASSERT_EQ(close.size(), 3u);
  EXPECT_DOUBLE_EQ(close[0], 40.0);
  EXPECT_DOUBLE_EQ(close[1], 90.0);
  EXPECT_DOUBLE_EQ(close[2], 109.0);
  EXPECT_TRUE(instants.empty() || instants.front() > 0.0);
}

TEST(CheckpointPolicyTest, AdaptiveUsesYoungAndFallsBackWhenFaultFree) {
  // Fault-free: adaptive degrades to the configured periodic interval.
  const auto fallback = CheckpointInstants(
      {.trigger = CheckpointTrigger::kAdaptive, .interval_s = 40.0}, {},
      120.0, 1);
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_DOUBLE_EQ(fallback[0], 40.0);

  // With faults, the cadence follows Young's optimum for the observed MTBF.
  FaultSchedule faults;
  for (int k = 0; k < 10; ++k) {
    faults.events.push_back({FaultKind::kCrash, 0, 10.0 + 10.0 * k, 2.0, 1.0});
  }
  const CheckpointPolicy adaptive{.trigger = CheckpointTrigger::kAdaptive,
                                  .interval_s = 40.0,
                                  .snapshot_cost_s = 1.0};
  const auto instants = CheckpointInstants(adaptive, faults, 120.0, 1);
  // rate = 10 faults / (120/3600) instance-hours = 300/h; MTBF = 12 s;
  // Young = sqrt(2 * 1 * 12) ~ 4.9 s.
  const double young = YoungInterval(1.0, 3600.0 / 300.0);
  ASSERT_FALSE(instants.empty());
  EXPECT_NEAR(instants[0], young, 1e-9);
  EXPECT_GT(instants.size(), fallback.size())
      << "denser faults mean denser snapshots";
}

// -------------------------------------------------------- offline resume

TEST_F(CheckpointTest, OfflineRunAdvancesAndResumes) {
  ResumableOfflineRun run(sim_, Fleet(), perf_, 50000);
  EXPECT_FALSE(run.Done());
  EXPECT_EQ(run.ImagesDone(), 0);
  EXPECT_EQ(run.TotalImages(), 50000);
  const double total = run.TotalSeconds();
  EXPECT_GT(total, 0.0);

  run.AdvanceTo(total / 2.0);
  const std::int64_t midway = run.ImagesDone();
  EXPECT_GT(midway, 0);
  EXPECT_LT(midway, 50000);
  EXPECT_THROW(run.AdvanceTo(total / 4.0), CheckError) << "time runs forward";

  // Preemption: only the snapshot survives. A restored run resumes from
  // the recorded progress instead of zero.
  const std::string snapshot = run.Checkpoint();
  ResumableOfflineRun restored(sim_, Fleet(), perf_, 50000);
  restored.Restore(snapshot);
  EXPECT_EQ(restored.ImagesDone(), midway);
  EXPECT_EQ(restored.Elapsed(), run.Elapsed());
  restored.AdvanceTo(total);
  EXPECT_TRUE(restored.Done());
  EXPECT_EQ(restored.ImagesDone(), 50000);

  // Mismatched inputs are rejected.
  ResumableOfflineRun different(sim_, Fleet(), perf_, 60000);
  EXPECT_THROW(different.Restore(snapshot), CheckError);
  ResumableOfflineRun batched(sim_, Fleet(), perf_, 50000, 8);
  EXPECT_THROW(batched.Restore(snapshot), CheckError);
}

// --------------------------------------------------------- spot economics

TEST_F(CheckpointTest, SpotEstimateUndercutsOnDemandAtModestRisk) {
  const CheckpointPolicy policy{.trigger = CheckpointTrigger::kAdaptive,
                                .interval_s = 300.0,
                                .snapshot_cost_s = 5.0};
  const SpotRunEstimate est =
      EstimateSpotRun(sim_, Fleet(), perf_, 1000000, policy,
                      RatePerHour(0.5));
  EXPECT_GT(est.base_seconds.value(), 0.0);
  EXPECT_GT(est.snapshot_overhead_s.value(), 0.0);
  EXPECT_GT(est.expected_preemptions, 0.0);
  EXPECT_GT(est.expected_seconds, est.base_seconds);
  // The ~70% spot discount dominates the recompute overhead at 0.5/h.
  EXPECT_LT(est.expected_spot_cost_usd, est.on_demand_cost_usd);

  // Zero preemption risk: no recompute, only snapshot overhead.
  const SpotRunEstimate safe =
      EstimateSpotRun(sim_, Fleet(), perf_, 1000000, policy,
                      RatePerHour(0.0));
  EXPECT_DOUBLE_EQ(safe.expected_preemptions, 0.0);
  EXPECT_DOUBLE_EQ(safe.expected_seconds.value(),
                   (safe.base_seconds + safe.snapshot_overhead_s).value());
}

TEST_F(CheckpointTest, SpotEstimateRequiresASpotMarket) {
  // A custom catalog without spot pricing must be rejected.
  InstanceCatalog no_spot(
      {{"x.gpu", "x", 4, 1, 32.0, 12.0, UsdPerHour(1.0), GpuKind::kK80}},
      {GpuSpec{.kind = GpuKind::kK80,
               .name = "NVIDIA K80",
               .cores = 2496,
               .mem_gb = 12.0,
               .relative_speed = 1.0}});
  CloudSimulator sim(no_spot);
  ResourceConfig config;
  config.Add("x.gpu");
  EXPECT_THROW(
      (void)EstimateSpotRun(sim, config, perf_, 1000, {}, RatePerHour(0.5)),
      CheckError);
  EXPECT_THROW(
      (void)EstimateSpotRun(sim_, Fleet(), perf_, 1000, {},
                            RatePerHour(-1.0)),
      CheckError);
}

// ------------------------------------------------------ autoscaler wiring

TEST_F(CheckpointTest, AutoscalerBillsCheckpointOverhead) {
  const Autoscaler scaler(serving_, "p2.xlarge");
  std::vector<std::vector<double>> traces;
  for (std::uint64_t e = 0; e < 3; ++e) {
    traces.push_back(PoissonTrace(20.0, 60.0, 500 + e));
  }
  const FaultSchedule faults = CrashStorm(1, 180.0, 21);
  const ServingPolicy policy{
      .max_batch = 64, .max_wait_s = 0.05, .deadline_s = 2.0};
  const AutoscalePolicy scale{.min_instances = 1, .max_instances = 3};
  const RetryPolicy retry{.max_retries = 2};

  const AutoscaleResult plain =
      scaler.RunFaulted(traces, 60.0, perf_, scale, policy, retry, faults);
  const CheckpointPolicy checkpoint{.interval_s = 20.0,
                                    .snapshot_cost_s = 1.0};
  CheckpointStats stats;
  const AutoscaleResult checked = scaler.RunFaulted(
      traces, 60.0, perf_, scale, policy, retry, faults, &checkpoint, &stats);

  // Identical dynamics (scaling path, reports)...
  ASSERT_EQ(checked.steps.size(), plain.steps.size());
  for (std::size_t e = 0; e < plain.steps.size(); ++e) {
    EXPECT_EQ(checked.steps[e].instances, plain.steps[e].instances);
    ExpectReportsIdentical(checked.steps[e].report, plain.steps[e].report);
  }
  EXPECT_EQ(checked.slo_compliance, plain.slo_compliance);
  // ...but the bill carries the snapshot overhead.
  EXPECT_GT(stats.snapshots, 0);
  EXPECT_NEAR(checked.total_cost_usd.value(),
              plain.total_cost_usd.value() + stats.overhead_cost_usd, 1e-9);
  EXPECT_FALSE(stats.latest.empty());
}

TEST(SnapshotVault, PutGetRoundTripAndMonotoneWatermark) {
  SnapshotVault vault;
  EXPECT_FALSE(vault.Contains("run-a"));
  EXPECT_THROW((void)vault.Get("run-a"), CheckError);
  vault.Put("run-a", 10.0, "snap@10");
  EXPECT_TRUE(vault.Contains("run-a"));
  EXPECT_EQ(vault.Get("run-a"), "snap@10");
  EXPECT_EQ(vault.Watermark("run-a"), 10.0);
  // Stale republish (a restarted runner replaying) is ignored...
  vault.Put("run-a", 5.0, "snap@5");
  EXPECT_EQ(vault.Get("run-a"), "snap@10");
  // ...newer snapshots replace.
  vault.Put("run-a", 20.0, "snap@20");
  EXPECT_EQ(vault.Get("run-a"), "snap@20");
  EXPECT_EQ(vault.Watermark("run-a"), 20.0);
  vault.Put("run-b", 1.0, "other");
  EXPECT_EQ(vault.Size(), 2u);
  EXPECT_THROW((void)vault.Watermark("missing"), CheckError);
}

TEST(SnapshotVault, MirroredCopiesFailOverAcrossDomains) {
  SnapshotVault vault;
  vault.PutMirrored("run", 10.0, "snap@10", {2, 4});
  // One logical name, even when mirrored into several domains.
  EXPECT_EQ(vault.Size(), 1u);
  EXPECT_EQ(vault.Get("run"), "snap@10");

  // Only domain 4 received the newer snapshot (its mirror write to 2 was
  // lost): each domain keeps its own highest watermark.
  vault.PutMirrored("run", 20.0, "snap@20", {4});
  EXPECT_EQ(vault.Get("run"), "snap@20");
  EXPECT_EQ(vault.Watermark("run"), 20.0);

  // Partition domain 4 away: failover serves domain 2's older copy.
  EXPECT_TRUE(vault.HasReachable("run", {4}));
  EXPECT_EQ(vault.GetReachable("run", {4}), "snap@10");
  EXPECT_EQ(vault.ReachableWatermark("run", {4}), 10.0);
  // Both domains gone -> loud data loss, not a silent empty restore.
  EXPECT_FALSE(vault.HasReachable("run", {2, 4}));
  EXPECT_THROW((void)vault.GetReachable("run", {2, 4}), CheckError);
  EXPECT_THROW((void)vault.ReachableWatermark("run", {2, 4}), CheckError);

  // Untagged Put lands in domain -1, which no partition list can name.
  vault.Put("legacy", 5.0, "bytes");
  EXPECT_TRUE(vault.HasReachable("legacy", {0, 1, 2, 3, 4}));
  EXPECT_EQ(vault.GetReachable("legacy", {0, 1, 2, 3, 4}), "bytes");

  // Stale mirrored republish is ignored per-domain, like Put.
  vault.PutMirrored("run", 15.0, "snap@15", {2, 4});
  EXPECT_EQ(vault.GetReachable("run", {4}), "snap@15");
  EXPECT_EQ(vault.Get("run"), "snap@20");
}

TEST(SnapshotVault, WaitForSnapshotSeesConcurrentPublisher) {
  SnapshotVault vault;
  std::thread publisher([&vault] {
    vault.Put("campaign", 300.0, "state@300");
  });
  const bool arrived = vault.WaitForSnapshot("campaign", 300.0, 10.0);
  publisher.join();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(vault.Get("campaign"), "state@300");
}

TEST(SnapshotVault, WaitForSnapshotTimesOutWithoutPublisher) {
  SnapshotVault vault;
  vault.Put("campaign", 10.0, "early");
  // Present but below the requested watermark -> timeout.
  EXPECT_FALSE(vault.WaitForSnapshot("campaign", 100.0, 0.01));
  EXPECT_FALSE(vault.WaitForSnapshot("absent", 0.0, 0.01));
}

TEST_F(CheckpointTest, VaultPublishedSnapshotRestoresTheEngine) {
  // A checkpointed faulted run publishes into the vault; a fresh engine
  // restored from the vault's latest snapshot finishes with the same
  // report — the cross-thread version of the durability invariant.
  const auto trace = PoissonTrace(30.0, 120.0, 5);
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kCrash, 0, 40.0, 10.0, 1.0});
  const ServingPolicy policy{.max_batch = 64, .max_wait_s = 0.05,
                             .deadline_s = 4.0};
  const RetryPolicy retry{.max_retries = 2};

  FaultedServingEngine engine(serving_, Fleet(), perf_, trace, 120.0, policy,
                              retry, faults);
  SnapshotVault vault;
  while (!engine.Done()) {
    engine.Step();
    if (engine.Watermark() >= 60.0 && !vault.Contains("run")) {
      vault.Put("run", engine.Watermark(), engine.Checkpoint());
    }
  }
  const ServingReport full = engine.Finish();
  ASSERT_TRUE(vault.Contains("run"));

  FaultedServingEngine resumed(serving_, Fleet(), perf_, trace, 120.0,
                               policy, retry, faults);
  resumed.Restore(vault.Get("run"));
  while (!resumed.Done()) resumed.Step();
  const ServingReport after = resumed.Finish();
  EXPECT_EQ(full.requests, after.requests);
  EXPECT_EQ(full.completed, after.completed);
  EXPECT_EQ(full.mean_latency_s, after.mean_latency_s);
  EXPECT_EQ(full.p99_latency_s, after.p99_latency_s);
}

TEST_F(CheckpointTest, SpotEstimateIsContinuousAtZeroRisk) {
  // The expected-recompute term must vanish smoothly as the preemption
  // rate goes to zero: no branch discontinuity between the faulted and
  // fault-free pricing paths.
  const CheckpointPolicy policy{.trigger = CheckpointTrigger::kPeriodic,
                                .interval_s = 300.0,
                                .snapshot_cost_s = 5.0};
  const SpotRunEstimate at_zero =
      EstimateSpotRun(sim_, Fleet(), perf_, 1000000, policy,
                      RatePerHour(0.0));
  const SpotRunEstimate near_zero =
      EstimateSpotRun(sim_, Fleet(), perf_, 1000000, policy,
                      RatePerHour(1e-9));
  EXPECT_NEAR(near_zero.expected_seconds.value(),
              at_zero.expected_seconds.value(), 1e-3);
  EXPECT_NEAR(near_zero.expected_spot_cost_usd.value(),
              at_zero.expected_spot_cost_usd.value(), 1e-6);
  EXPECT_NEAR(near_zero.expected_recompute_s.value(), 0.0, 1e-3);
  // And the risk premium is monotone from there.
  const SpotRunEstimate risky =
      EstimateSpotRun(sim_, Fleet(), perf_, 1000000, policy,
                      RatePerHour(0.5));
  EXPECT_GT(risky.expected_seconds, near_zero.expected_seconds);
  EXPECT_GT(risky.expected_spot_cost_usd, near_zero.expected_spot_cost_usd);
}

TEST_F(CheckpointTest, VaultScrubCatchesEveryByteFlip) {
  // SnapshotVault::VerifyAllSections is the storage-side integrity scrub:
  // a single flipped byte ANYWHERE in a stored snapshot — header, section
  // table, or payload — must be reported, and a clean vault must verify.
  const auto trace = PoissonTrace(20.0, 15.0, 9);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  FaultedServingEngine engine(serving_, Fleet(), perf_, trace, 15.0, policy,
                              {}, FaultSchedule{});
  while (!engine.Done() && engine.Watermark() < 10.0) engine.Step();
  const std::string snapshot = engine.Checkpoint();
  ASSERT_GT(snapshot.size(), 0u);

  SnapshotVault clean;
  clean.Put("run", 10.0, snapshot);
  clean.PutMirrored("mirrored", 10.0, snapshot, {0, 1});
  const SnapshotVault::ScrubReport clean_report = clean.VerifyAllSections();
  EXPECT_TRUE(clean_report.ok());
  EXPECT_EQ(clean_report.copies_checked, 3u);  // run + two mirror domains

  // One vault holding every possible single-byte corruption of the
  // snapshot, each under its own name: one scrub must flag them all.
  SnapshotVault vault;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    std::string damaged = snapshot;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    vault.Put("flip-" + std::to_string(i), 10.0, std::move(damaged));
  }
  const SnapshotVault::ScrubReport report = vault.VerifyAllSections();
  EXPECT_EQ(report.copies_checked, snapshot.size());
  EXPECT_EQ(report.corrupted.size(), snapshot.size())
      << "some byte flips escaped the scrub";
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace ccperf::cloud
