// Correlated-failure fault domains and the chaos harness: topology
// validation and placement, seeded domain-event generation + CSV round-trip,
// lowering onto placed instances, replication/hedging semantics, the
// policy x scenario sweep (parallel == serial, bitwise), and the mirrored
// kill/restore drill.
#include "cloud/chaos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cloud/density.h"
#include "cloud/fault_domains.h"
#include "cloud/serving.h"
#include "common/check.h"
#include "common/rng.h"

namespace ccperf::cloud {
namespace {

// Every field, compared exactly: two runs of the same seeded scenario must
// produce the same *bytes*, not merely close numbers.
void ExpectSameReport(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.cost_per_hour_usd, b.cost_per_hour_usd);
  EXPECT_EQ(a.stable, b.stable);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped_deadline, b.dropped_deadline);
  EXPECT_EQ(a.dropped_failed, b.dropped_failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.goodput_per_s, b.goodput_per_s);
  EXPECT_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
  EXPECT_EQ(a.accuracy_weighted_goodput, b.accuracy_weighted_goodput);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.duplicate_completions, b.duplicate_completions);
  EXPECT_EQ(a.discarded_copies, b.discarded_copies);
  EXPECT_EQ(a.duplicate_service_s, b.duplicate_service_s);
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  ResourceConfig Fleet(int instances) {
    ResourceConfig config;
    config.Add("p2.xlarge", instances);
    return config;
  }

  std::vector<double> PoissonTrace(double rate, double duration,
                                   std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t > duration) break;
      trace.push_back(t);
    }
    return trace;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  ModelProfile profile_;
  VariantPerf perf_;
};

// ---------------------------------------------------------------- topology

TEST(FaultDomainTopology, UniformBuildsValidTree) {
  const FaultDomainTopology topo = FaultDomainTopology::Uniform(2, 2, 2);
  EXPECT_NO_THROW(topo.Validate());
  EXPECT_EQ(topo.domains.size(), 2u + 4u + 8u);
  EXPECT_EQ(topo.PoolIndices().size(), 8u);
  EXPECT_EQ(topo.domains[0].name, "r0");
  EXPECT_EQ(topo.domains[1].name, "r0z0");
  EXPECT_EQ(topo.domains[2].name, "r0z0p0");
}

TEST(FaultDomainTopology, ValidateRejectsBadStructure) {
  FaultDomainTopology zone_without_parent;
  zone_without_parent.domains.push_back({"z", -1, DomainLevel::kZone});
  EXPECT_THROW(zone_without_parent.Validate(), CheckError);

  FaultDomainTopology pool_under_region = FaultDomainTopology::Uniform(1, 1,
                                                                       1);
  pool_under_region.domains.push_back({"bad", 0, DomainLevel::kPool});
  EXPECT_THROW(pool_under_region.Validate(), CheckError);

  FaultDomainTopology misplaced = FaultDomainTopology::Uniform(1, 1, 1);
  misplaced.instance_domain = {1};  // a zone, not a pool
  EXPECT_THROW(misplaced.Validate(), CheckError);
}

TEST(FaultDomainTopology, PackAndSpreadPlacement) {
  // Uniform(1, 2, 1): 0=r0, 1=r0z0, 2=r0z0p0, 3=r0z1, 4=r0z1p0.
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 2, 1);
  topo.PlaceInstances(4, PlacementSpread::kPack);
  EXPECT_EQ(topo.instance_domain, (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(topo.InstancesIn(1), (std::vector<int>{0, 1, 2, 3}));

  topo.PlaceInstances(4, PlacementSpread::kSpread);
  EXPECT_EQ(topo.instance_domain, (std::vector<int>{2, 4, 2, 4}));
  EXPECT_EQ(topo.InstancesIn(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(topo.InstancesIn(3), (std::vector<int>{1, 3}));
  EXPECT_TRUE(topo.Contains(1, 4));
  EXPECT_TRUE(topo.Contains(1, 0));
  EXPECT_FALSE(topo.Contains(1, 2));
}

// --------------------------------------------------------------- generator

TEST(CorrelatedSchedule, GeneratorIsDeterministicAndValid) {
  const FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 3, 2);
  CorrelatedFaultModel model;
  model.outage_rate = 4.0;
  model.reclaim_wave_rate = 6.0;
  model.reclaim_fraction = 0.5;
  model.partition_rate = 3.0;

  Rng rng_a(99);
  Rng rng_b(99);
  const CorrelatedSchedule a =
      GenerateCorrelatedSchedule(model, topo, 3600.0, rng_a);
  const CorrelatedSchedule b =
      GenerateCorrelatedSchedule(model, topo, 3600.0, rng_b);
  EXPECT_NO_THROW(a.Validate(topo));
  EXPECT_FALSE(a.Empty()) << "rates this high must produce events";
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].domain, b.events[i].domain);
    EXPECT_EQ(a.events[i].start_s, b.events[i].start_s);
    EXPECT_EQ(a.events[i].duration_s, b.events[i].duration_s);
    EXPECT_EQ(a.events[i].seed, b.events[i].seed);
  }

  Rng rng_c(100);
  const CorrelatedSchedule c =
      GenerateCorrelatedSchedule(model, topo, 3600.0, rng_c);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].start_s != c.events[i].start_s;
  }
  EXPECT_TRUE(differs) << "different seeds should draw different incidents";
}

TEST(CorrelatedSchedule, ZeroRatesGenerateNothing) {
  const FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 2, 2);
  Rng rng(1);
  EXPECT_TRUE(
      GenerateCorrelatedSchedule({}, topo, 3600.0, rng).Empty());
}

TEST(CorrelatedSchedule, ValidateRejectsBadEvents) {
  const FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 1, 1);
  CorrelatedSchedule wrong_kind;
  wrong_kind.events.push_back({FaultKind::kCrash, 1, 1.0, 10.0, 1.0, 0});
  EXPECT_THROW(wrong_kind.Validate(topo), CheckError);

  CorrelatedSchedule bad_domain;
  bad_domain.events.push_back(
      {FaultKind::kDomainOutage, 9, 1.0, 10.0, 1.0, 0});
  EXPECT_THROW(bad_domain.Validate(topo), CheckError);

  CorrelatedSchedule unsorted;
  unsorted.events.push_back({FaultKind::kDomainOutage, 1, 5.0, 10.0, 1.0, 0});
  unsorted.events.push_back({FaultKind::kDomainOutage, 1, 1.0, 10.0, 1.0, 0});
  EXPECT_THROW(unsorted.Validate(topo), CheckError);

  CorrelatedSchedule bad_fraction;
  bad_fraction.events.push_back(
      {FaultKind::kReclaimWave, 2, 1.0, 0.0, 1.5, 0});
  EXPECT_THROW(bad_fraction.Validate(topo), CheckError);
}

TEST(CorrelatedSchedule, CsvRoundTripLowersIdentically) {
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 2, 2);
  topo.PlaceInstances(8, PlacementSpread::kSpread);
  CorrelatedFaultModel model;
  model.outage_rate = 3.0;
  model.reclaim_wave_rate = 5.0;
  model.reclaim_fraction = 0.5;
  model.partition_rate = 2.0;
  Rng rng(1234);
  const CorrelatedSchedule schedule =
      GenerateCorrelatedSchedule(model, topo, 3600.0, rng);
  ASSERT_FALSE(schedule.Empty());

  const CorrelatedSchedule parsed =
      ParseCorrelatedScheduleCsv(CorrelatedScheduleCsv(schedule));
  ASSERT_EQ(parsed.events.size(), schedule.events.size());
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(parsed.events[i].domain, schedule.events[i].domain);
    EXPECT_EQ(parsed.events[i].start_s, schedule.events[i].start_s);
    EXPECT_EQ(parsed.events[i].duration_s, schedule.events[i].duration_s);
    EXPECT_EQ(parsed.events[i].fraction, schedule.events[i].fraction);
    EXPECT_EQ(parsed.events[i].seed, schedule.events[i].seed);
  }

  // The per-event victim seed survives the round-trip, so the lowered
  // per-instance traces are identical — including wave victim choices.
  const FaultSchedule direct = LowerCorrelatedSchedule(schedule, topo);
  const FaultSchedule roundtripped = LowerCorrelatedSchedule(parsed, topo);
  ASSERT_EQ(direct.events.size(), roundtripped.events.size());
  for (std::size_t i = 0; i < direct.events.size(); ++i) {
    EXPECT_EQ(direct.events[i].kind, roundtripped.events[i].kind);
    EXPECT_EQ(direct.events[i].instance, roundtripped.events[i].instance);
    EXPECT_EQ(direct.events[i].start_s, roundtripped.events[i].start_s);
    EXPECT_EQ(direct.events[i].duration_s, roundtripped.events[i].duration_s);
  }
}

TEST(CorrelatedSchedule, CsvErrorsNameTheOffendingLine) {
  const std::string bad_kind =
      "kind,domain,start_s,duration_s,fraction,seed\n"
      "domain-outage,1,5,600,1,0\n"
      "meteor-strike,1,9,600,1,0\n";
  try {
    (void)ParseCorrelatedScheduleCsv(bad_kind);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("meteor-strike"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)ParseCorrelatedScheduleCsv("bogus,header\n"),
               CheckError);
}

// ---------------------------------------------------------------- lowering

TEST(LowerCorrelatedSchedule, OutageHitsEveryInstanceInTheZone) {
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 2, 1);
  topo.PlaceInstances(4, PlacementSpread::kSpread);  // pools 2,4,2,4
  CorrelatedSchedule schedule;
  schedule.events.push_back(
      {FaultKind::kDomainOutage, 1, 100.0, 600.0, 1.0, 0});  // zone r0z0
  const FaultSchedule lowered = LowerCorrelatedSchedule(schedule, topo);
  ASSERT_EQ(lowered.events.size(), 2u);  // instances 0 and 2 live in r0z0
  EXPECT_EQ(lowered.events[0].instance, 0);
  EXPECT_EQ(lowered.events[1].instance, 2);
  for (const FaultEvent& event : lowered.events) {
    EXPECT_EQ(event.kind, FaultKind::kDomainOutage);
    EXPECT_EQ(event.start_s, 100.0);
    EXPECT_EQ(event.duration_s, 600.0);
  }
}

TEST(LowerCorrelatedSchedule, WavePreemptsSeededFractionOfThePool) {
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 1, 1);
  topo.PlaceInstances(8, PlacementSpread::kPack);
  CorrelatedSchedule schedule;
  schedule.events.push_back(
      {FaultKind::kReclaimWave, 2, 50.0, 0.0, 0.5, 777});
  const FaultSchedule lowered = LowerCorrelatedSchedule(schedule, topo);
  ASSERT_EQ(lowered.events.size(), 4u);  // ceil(0.5 * 8)
  for (const FaultEvent& event : lowered.events) {
    EXPECT_EQ(event.kind, FaultKind::kReclaimWave);
    EXPECT_EQ(event.start_s, 50.0);
    EXPECT_GE(event.instance, 0);
    EXPECT_LT(event.instance, 8);
  }
  // Victims ascend (sorted) and replay identically.
  const FaultSchedule again = LowerCorrelatedSchedule(schedule, topo);
  for (std::size_t i = 0; i < lowered.events.size(); ++i) {
    EXPECT_EQ(lowered.events[i].instance, again.events[i].instance);
    if (i > 0) {
      EXPECT_LT(lowered.events[i - 1].instance, lowered.events[i].instance);
    }
  }
  // A different victim seed picks a different set (for this seed pair).
  schedule.events[0].seed = 778;
  const FaultSchedule other = LowerCorrelatedSchedule(schedule, topo);
  bool differs = false;
  for (std::size_t i = 0; i < lowered.events.size(); ++i) {
    differs = differs ||
              lowered.events[i].instance != other.events[i].instance;
  }
  EXPECT_TRUE(differs);
}

TEST(LowerCorrelatedSchedule, ComposesWithIndependentTraceViaMerge) {
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 1, 1);
  topo.PlaceInstances(2, PlacementSpread::kPack);
  CorrelatedSchedule schedule;
  schedule.events.push_back({FaultKind::kPartition, 1, 30.0, 60.0, 1.0, 0});
  const FaultSchedule lowered = LowerCorrelatedSchedule(schedule, topo);

  FaultSchedule independent;
  independent.events.push_back({FaultKind::kCrash, 0, 10.0, 20.0, 1.0});
  independent.events.push_back({FaultKind::kSlowdown, 1, 30.0, 40.0, 2.0});

  const FaultSchedule merged = MergeFaultSchedules(independent, lowered);
  EXPECT_NO_THROW(merged.Validate());
  ASSERT_EQ(merged.events.size(), 4u);
  EXPECT_EQ(merged.events[0].kind, FaultKind::kCrash);
  // Stable merge: on the 30.0 tie the first schedule's event precedes.
  EXPECT_EQ(merged.events[1].kind, FaultKind::kSlowdown);
  EXPECT_EQ(merged.events[2].kind, FaultKind::kPartition);
  EXPECT_EQ(merged.events[2].instance, 0);
  EXPECT_EQ(merged.events[3].instance, 1);
}

// ------------------------------------------------------ redundancy serving

TEST_F(ChaosTest, DefaultRedundancyReproducesBaselineExactly) {
  const std::vector<double> trace = PoissonTrace(120.0, 60.0, 5);
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kCrash, 0, 10.0, 15.0, 1.0});
  ServingPolicy policy;
  policy.deadline_s = 0.5;
  const ServingReport baseline = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 60.0, policy, RetryPolicy{}, faults);
  const ServingReport with_default = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 60.0, policy, RetryPolicy{}, faults,
      InflightPolicy::kRequeue, 1.0, RedundancyPolicy{});
  ExpectSameReport(baseline, with_default);
  EXPECT_EQ(with_default.hedges, 0);
  EXPECT_EQ(with_default.duplicate_completions, 0);
  EXPECT_EQ(with_default.discarded_copies, 0);
}

TEST_F(ChaosTest, ReplicationSurvivesAReclaimWaveThatKillsOneInstance) {
  const std::vector<double> trace = PoissonTrace(60.0, 60.0, 9);
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kReclaimWave, 0, 20.0, 0.0, 1.0});
  ServingPolicy policy;
  RetryPolicy no_retry;
  no_retry.max_retries = 0;

  const ServingReport single = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 60.0, policy, no_retry, faults,
      InflightPolicy::kDrop);
  RedundancyPolicy replicate;
  replicate.replicas = 2;
  const ServingReport redundant = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 60.0, policy, no_retry, faults,
      InflightPolicy::kDrop, 1.0, replicate);

  EXPECT_LE(redundant.dropped_failed, single.dropped_failed);
  EXPECT_GE(redundant.completed, single.completed);
  // Duplicate copies of completed requests are still served and billed.
  EXPECT_GT(redundant.duplicate_completions, 0);
  EXPECT_GT(redundant.duplicate_service_s, 0.0);
  EXPECT_EQ(redundant.requests, single.requests)
      << "replication multiplies copies, not requests";
}

TEST_F(ChaosTest, HedgingSpawnsBoundedHedges) {
  const std::vector<double> trace = PoissonTrace(80.0, 30.0, 11);
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kCrash, 0, 2.0, 20.0, 1.0});
  ServingPolicy policy;
  RedundancyPolicy hedge;
  hedge.hedge_after_s = 0.2;
  hedge.max_hedges = 1;
  const ServingReport report = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 30.0, policy, RetryPolicy{}, faults,
      InflightPolicy::kRequeue, 1.0, hedge);
  EXPECT_GT(report.hedges, 0);
  EXPECT_LE(report.hedges, report.requests * hedge.max_hedges);
}

TEST_F(ChaosTest, SpreadPlacementBeatsPackUnderAPoolWave) {
  // One wave takes the whole primary pool. Packed, that is the entire
  // fleet; spread, it is one instance of three.
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 3, 1);
  CorrelatedSchedule schedule;
  schedule.events.push_back({FaultKind::kReclaimWave, 2, 20.0, 0.0, 1.0, 1});
  const std::vector<double> trace = PoissonTrace(90.0, 60.0, 13);
  ServingPolicy policy;
  RetryPolicy no_retry;
  no_retry.max_retries = 0;

  topo.PlaceInstances(3, PlacementSpread::kPack);
  const ServingReport packed = serving_.SimulateFaulted(
      Fleet(3), perf_, trace, 60.0, policy, no_retry,
      LowerCorrelatedSchedule(schedule, topo), InflightPolicy::kDrop);
  topo.PlaceInstances(3, PlacementSpread::kSpread);
  const ServingReport spread = serving_.SimulateFaulted(
      Fleet(3), perf_, trace, 60.0, policy, no_retry,
      LowerCorrelatedSchedule(schedule, topo), InflightPolicy::kDrop);

  EXPECT_GT(spread.completed, packed.completed);
  EXPECT_LT(spread.dropped_failed, packed.dropped_failed);
}

// -------------------------------------------------------------- chaos sweep

TEST_F(ChaosTest, SeededScenarioRunsAreBitwiseIdentical) {
  ChaosSweep sweep(serving_, FaultDomainTopology::Uniform(1, 3, 1), Fleet(3),
                   0.1);
  ChaosConfig config;
  config.perf = perf_;
  config.degraded_perf = perf_;
  config.degraded_accuracy = 0.8;
  config.arrivals = PoissonTrace(90.0, 120.0, 21);
  config.duration_s = 120.0;
  config.serving.deadline_s = 1.0;

  MitigationPolicy policy;
  policy.name = "full-mix";
  policy.redundancy.replicas = 2;
  policy.redundancy.hedge_after_s = 0.5;
  policy.redundancy.max_hedges = 1;
  policy.spread = PlacementSpread::kSpread;
  policy.checkpointed = true;
  policy.checkpoint.interval_s = 20.0;

  IncidentScenario scenario;
  scenario.name = "wave+outage";
  scenario.correlated.reclaim_wave_rate = 40.0;
  scenario.correlated.reclaim_fraction = 0.8;
  scenario.correlated.outage_rate = 20.0;
  scenario.correlated.outage_s = 30.0;
  scenario.independent.crash_rate = 30.0;
  scenario.seed = 4242;

  const ChaosOutcome a = sweep.RunOne(policy, scenario, config);
  const ChaosOutcome b = sweep.RunOne(policy, scenario, config);
  ExpectSameReport(a.report, b.report);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.cost_per_kilo_good, b.cost_per_kilo_good);
  EXPECT_EQ(a.checkpoint.snapshots, b.checkpoint.snapshots);
  EXPECT_GT(a.cost_usd, 0.0);
  EXPECT_GT(a.availability, 0.0);
}

TEST_F(ChaosTest, RankMatchesSerialRunOneBitwise) {
  ChaosSweep sweep(serving_, FaultDomainTopology::Uniform(1, 3, 1), Fleet(3),
                   0.05);
  ChaosConfig config;
  config.perf = perf_;
  config.degraded_perf = perf_;
  config.degraded_accuracy = 0.8;
  config.arrivals = PoissonTrace(80.0, 60.0, 31);
  config.duration_s = 60.0;
  config.serving.deadline_s = 1.0;

  std::vector<MitigationPolicy> policies(3);
  policies[0].name = "retry-only";
  policies[1].name = "replicate-spread";
  policies[1].redundancy.replicas = 2;
  policies[1].spread = PlacementSpread::kSpread;
  policies[2].name = "degrade-spread";
  policies[2].degrade = true;
  policies[2].spread = PlacementSpread::kSpread;

  std::vector<IncidentScenario> scenarios(2);
  scenarios[0].name = "waves";
  scenarios[0].correlated.reclaim_wave_rate = 60.0;
  scenarios[0].correlated.reclaim_fraction = 1.0;
  scenarios[0].seed = 7;
  scenarios[1].name = "outage";
  scenarios[1].correlated.outage_rate = 40.0;
  scenarios[1].correlated.outage_s = 20.0;
  scenarios[1].seed = 8;

  const ChaosRanking ranking = sweep.Rank(policies, scenarios, config);
  ASSERT_EQ(ranking.outcomes.size(), policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    ASSERT_EQ(ranking.outcomes[p].size(), scenarios.size());
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const ChaosOutcome serial =
          sweep.RunOne(policies[p], scenarios[s], config);
      ExpectSameReport(ranking.outcomes[p][s].report, serial.report);
      EXPECT_EQ(ranking.outcomes[p][s].cost_usd, serial.cost_usd);
      EXPECT_EQ(ranking.outcomes[p][s].availability, serial.availability);
    }
  }
  ASSERT_EQ(ranking.order.size(), policies.size());
  // The order is a pure function of the outcomes: re-ranking reproduces it.
  const ChaosRanking again = sweep.Rank(policies, scenarios, config);
  EXPECT_EQ(ranking.order, again.order);
  EXPECT_EQ(ranking.mean_availability, again.mean_availability);
  EXPECT_EQ(ranking.mean_cost_usd, again.mean_cost_usd);
}

TEST_F(ChaosTest, RankRejectsInvalidCellsDeterministically) {
  ChaosSweep sweep(serving_, FaultDomainTopology::Uniform(1, 1, 1), Fleet(1));
  ChaosConfig config;
  config.perf = perf_;
  config.arrivals = PoissonTrace(10.0, 10.0, 1);
  config.duration_s = 10.0;
  std::vector<MitigationPolicy> policies(2);
  policies[0].name = "ok";
  policies[1].name = "bad";
  policies[1].redundancy.replicas = 0;  // invalid
  std::vector<IncidentScenario> scenarios(1);
  scenarios[0].name = "calm";
  try {
    (void)sweep.Rank(policies, scenarios, config);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("bad"), std::string::npos)
        << error.what();
  }
}

// --------------------------------------------------- mirrored restore drill

TEST_F(ChaosTest, MirroredKillRestoreIsBitwiseIdenticalToUninterrupted) {
  // Uniform(1, 2, 1): pools are domains 2 and 4. The run mirrors into
  // both; at the kill, pool 2 (where the primary lives) is partitioned
  // away, so the restore must come from the pool-4 mirror.
  FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 2, 1);
  topo.PlaceInstances(2, PlacementSpread::kSpread);
  const std::vector<double> trace = PoissonTrace(80.0, 90.0, 17);
  CorrelatedSchedule correlated;
  correlated.events.push_back(
      {FaultKind::kDomainOutage, 1, 30.0, 25.0, 1.0, 0});
  correlated.events.push_back({FaultKind::kPartition, 3, 60.0, 20.0, 1.0, 0});
  const FaultSchedule faults = LowerCorrelatedSchedule(correlated, topo);
  ServingPolicy policy;
  policy.deadline_s = 2.0;
  RedundancyPolicy redundancy;
  redundancy.replicas = 2;
  CheckpointPolicy checkpoint;
  checkpoint.interval_s = 10.0;

  const ServingReport uninterrupted = serving_.SimulateFaulted(
      Fleet(2), perf_, trace, 90.0, policy, RetryPolicy{}, faults,
      InflightPolicy::kRequeue, 1.0, redundancy);

  SnapshotVault vault;
  const MirroredRestoreDrill drill = RunMirroredRestoreDrill(
      serving_, Fleet(2), perf_, trace, 90.0, policy, RetryPolicy{},
      redundancy, faults, checkpoint, /*mirror_domains=*/{2, 4},
      /*unreachable_at_kill=*/{2}, /*kill_at_s=*/45.0, vault, "drill");

  EXPECT_GT(drill.snapshots, 0);
  EXPECT_GT(drill.restored_watermark, 0.0);
  ExpectSameReport(drill.report, uninterrupted);

  // A partition that swallows every mirror is surfaced, not papered over.
  SnapshotVault doomed;
  EXPECT_THROW(
      (void)RunMirroredRestoreDrill(
          serving_, Fleet(2), perf_, trace, 90.0, policy, RetryPolicy{},
          redundancy, faults, checkpoint, {2, 4}, {2, 4}, 45.0, doomed,
          "doomed"),
      CheckError);
}

TEST_F(ChaosTest, RunFaultedPlacedBillsTheSpreadPremium) {
  Autoscaler scaler(serving_, "p2.xlarge");
  AutoscalePolicy policy;
  policy.min_instances = 3;
  policy.max_instances = 3;
  const std::vector<std::vector<double>> epochs = {
      PoissonTrace(60.0, 60.0, 23), PoissonTrace(60.0, 60.0, 24)};
  const FaultDomainTopology topo = FaultDomainTopology::Uniform(1, 3, 1);
  const CorrelatedSchedule calm;  // premium accounting isolated from faults

  const AutoscaleResult packed = scaler.RunFaultedPlaced(
      epochs, 60.0, perf_, policy, ServingPolicy{}, RetryPolicy{}, topo,
      calm, FaultSchedule{}, PlacementSpread::kPack, 0.25);
  const AutoscaleResult spread = scaler.RunFaultedPlaced(
      epochs, 60.0, perf_, policy, ServingPolicy{}, RetryPolicy{}, topo,
      calm, FaultSchedule{}, PlacementSpread::kSpread, 0.25);
  // Spread places 2 of 3 instances outside the primary pool; packed none.
  const double price =
      sim_.Catalog().Find("p2.xlarge").price_per_hour.value();
  const double premium = 2.0 * price * 0.25 * 60.0 / 3600.0 * 2.0;
  EXPECT_NEAR((spread.total_cost_usd - packed.total_cost_usd).value(),
              premium, 1e-9);
}

}  // namespace
}  // namespace ccperf::cloud
