// The silent-data-corruption layer end to end: the closed-form policy model
// (cloud/sdc.h), the kSilentCorruption fault kind and its timeline windows,
// the SDC axis of the architecture-space enumerator, RunWithSdc on the
// offline simulator, and the serving engine's detect-or-escape accounting
// (including checkpoint/restore of the SDC counters).
//
// The invariant threaded through everything: SdcPolicyKind::kOff means
// "SDC not modeled", and every code path short-circuits so kOff results
// are bitwise identical to the pre-SDC code.
#include "cloud/sdc.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/density.h"
#include "cloud/faults.h"
#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/serving.h"
#include "cloud/simulator.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/accuracy_model.h"
#include "core/enumerate.h"
#include "pruning/prune_plan.h"

namespace ccperf::cloud {
namespace {

// ---------------------------------------------------------------- policy --

TEST(SdcPolicy, ValidateAcceptsDefaultsOfEveryKind) {
  for (const auto kind :
       {SdcPolicyKind::kOff, SdcPolicyKind::kNone, SdcPolicyKind::kAbft,
        SdcPolicyKind::kScrub, SdcPolicyKind::kReexecSample}) {
    SdcPolicy policy{.kind = kind};
    EXPECT_NO_THROW(policy.Validate()) << SdcPolicyKindName(kind);
  }
}

TEST(SdcPolicy, ValidateRejectsBadKnobs) {
  SdcPolicy scrub{.kind = SdcPolicyKind::kScrub, .scrub_interval_s = 0.0};
  EXPECT_THROW(scrub.Validate(), CheckError);
  scrub = {.kind = SdcPolicyKind::kScrub,
           .scrub_interval_s = 10.0,
           .scrub_cost_s = 10.0};  // cost must stay below the interval
  EXPECT_THROW(scrub.Validate(), CheckError);
  SdcPolicy nan_interval{.kind = SdcPolicyKind::kScrub,
                         .scrub_interval_s = std::nan("")};
  EXPECT_THROW(nan_interval.Validate(), CheckError);
  SdcPolicy sample{.kind = SdcPolicyKind::kReexecSample,
                   .sample_fraction = 1.5};
  EXPECT_THROW(sample.Validate(), CheckError);
  sample.sample_fraction = -0.1;
  EXPECT_THROW(sample.Validate(), CheckError);
}

TEST(SdcPolicy, LabelIsStable) {
  EXPECT_EQ(SdcPolicy{}.Label(), "off");
  EXPECT_EQ((SdcPolicy{.kind = SdcPolicyKind::kNone}).Label(), "none");
  EXPECT_EQ((SdcPolicy{.kind = SdcPolicyKind::kAbft}).Label(), "abft");
  EXPECT_EQ((SdcPolicy{.kind = SdcPolicyKind::kScrub}).Label(), "scrub@300");
  EXPECT_EQ((SdcPolicy{.kind = SdcPolicyKind::kReexecSample}).Label(),
            "reexec-sample@0.1");
}

// ----------------------------------------------------------- closed form --

TEST(AssessSdcTest, OffIsAllZeros) {
  const SdcAssessment a = AssessSdc({}, /*sdc_rate=*/RatePerHour(0.1),
                                    /*run_seconds=*/Seconds(3600.0));
  EXPECT_EQ(a.corruption_fraction, 0.0);
  EXPECT_EQ(a.detected_fraction, 0.0);
  EXPECT_EQ(a.escape_fraction, 0.0);
  EXPECT_EQ(a.time_overhead, 0.0);
}

TEST(AssessSdcTest, NoneEscapesEverythingAtZeroCost) {
  const SdcPolicy none{.kind = SdcPolicyKind::kNone};
  const SdcAssessment a = AssessSdc(none, RatePerHour(0.01), Seconds(3600.0));
  EXPECT_GT(a.corruption_fraction, 0.0);
  EXPECT_EQ(a.detected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(a.escape_fraction, a.corruption_fraction);
  EXPECT_EQ(a.time_overhead, 0.0);
}

TEST(AssessSdcTest, CorruptionGrowsWithRateAndRunLength) {
  const SdcPolicy none{.kind = SdcPolicyKind::kNone};
  const double lo = AssessSdc(none, RatePerHour(0.001), Seconds(3600.0)).corruption_fraction;
  const double hi =
      AssessSdc(none, RatePerHour(0.01), Seconds(3600.0)).corruption_fraction;
  EXPECT_LT(lo, hi);
  const double shorter = AssessSdc(none, RatePerHour(0.01), Seconds(600.0)).corruption_fraction;
  const double longer = AssessSdc(none, RatePerHour(0.01), Seconds(36000.0))
                            .corruption_fraction;
  EXPECT_LT(shorter, longer);  // persistent onsets taint more of a long run
  // And every fraction stays a fraction, even at absurd rates.
  const SdcAssessment extreme =
      AssessSdc(none, RatePerHour(1e6), Seconds(36000.0));
  EXPECT_LE(extreme.corruption_fraction, 1.0);
  EXPECT_LE(extreme.escape_fraction, 1.0);
}

TEST(AssessSdcTest, AbftCatchesCoverageWorthAndBillsOverhead) {
  const SdcPolicy none{.kind = SdcPolicyKind::kNone};
  const SdcPolicy abft{.kind = SdcPolicyKind::kAbft};
  const SdcAssessment base =
      AssessSdc(none, RatePerHour(0.01), Seconds(36000.0));
  const SdcAssessment a =
      AssessSdc(abft, RatePerHour(0.01), Seconds(36000.0));
  // Same corruption exposure, split differently.
  EXPECT_DOUBLE_EQ(a.corruption_fraction, base.corruption_fraction);
  EXPECT_DOUBLE_EQ(a.escape_fraction,
                   base.corruption_fraction * (1.0 - kAbftCoverage));
  EXPECT_DOUBLE_EQ(a.detected_fraction,
                   base.corruption_fraction * kAbftCoverage);
  // Overhead = always-on machinery + the detected work redone.
  EXPECT_DOUBLE_EQ(a.time_overhead, kAbftTimeOverhead + a.detected_fraction);
  EXPECT_LT(a.escape_fraction, base.escape_fraction);
}

TEST(AssessSdcTest, ScrubConvertsPersistentCorruptionOnly) {
  const SdcPolicy none{.kind = SdcPolicyKind::kNone};
  const SdcPolicy scrub{.kind = SdcPolicyKind::kScrub,
                        .scrub_interval_s = 300.0,
                        .scrub_cost_s = 2.0};
  const double run_s = 36000.0;
  const SdcAssessment base =
      AssessSdc(none, RatePerHour(0.01), Seconds(run_s));
  const SdcAssessment s =
      AssessSdc(scrub, RatePerHour(0.01), Seconds(run_s));
  // Scrubbing finds persistent corruption after interval/2 on average, so
  // less escapes than detection-free — but transients clear before a scrub
  // ever sees them, so some escape remains.
  EXPECT_LT(s.escape_fraction, base.escape_fraction);
  EXPECT_GT(s.escape_fraction, 0.0);
  EXPECT_GT(s.detected_fraction, 0.0);
  // Machinery term: one scrub_cost_s per interval.
  EXPECT_GE(s.time_overhead, 2.0 / 300.0);
  // A run shorter than the scrub interval gets no escape benefit (the
  // machinery is still billed).
  const SdcAssessment short_run =
      AssessSdc(scrub, RatePerHour(0.01), Seconds(60.0));
  const SdcAssessment short_none =
      AssessSdc(none, RatePerHour(0.01), Seconds(60.0));
  EXPECT_DOUBLE_EQ(short_run.escape_fraction, short_none.escape_fraction);
  EXPECT_GT(short_run.time_overhead, 0.0);
}

TEST(AssessSdcTest, ReexecSampleCoverageEqualsSampleFraction) {
  const SdcPolicy reexec{.kind = SdcPolicyKind::kReexecSample,
                         .sample_fraction = 0.25};
  const SdcAssessment a =
      AssessSdc(reexec, RatePerHour(0.01), Seconds(36000.0));
  EXPECT_DOUBLE_EQ(a.detected_fraction, a.corruption_fraction * 0.25);
  EXPECT_DOUBLE_EQ(a.escape_fraction, a.corruption_fraction * 0.75);
  EXPECT_DOUBLE_EQ(a.time_overhead, 0.25 + a.detected_fraction);
}

TEST(AssessSdcTest, RejectsNonFiniteInputs) {
  const SdcPolicy none{.kind = SdcPolicyKind::kNone};
  EXPECT_THROW(AssessSdc(none, RatePerHour(-1.0), Seconds(3600.0)),
               CheckError);
  EXPECT_THROW(AssessSdc(none, RatePerHour(std::nan("")), Seconds(3600.0)),
               CheckError);
  EXPECT_THROW(AssessSdc(none, RatePerHour(0.01), Seconds(-5.0)), CheckError);
}

TEST(DeliveredAccuracyTest, DiscountsEscapedWork) {
  EXPECT_DOUBLE_EQ(DeliveredAccuracy(0.8, 0.0, kCorruptTop1Factor), 0.8);
  // Full escape: everything delivered at the corrupt factor.
  EXPECT_DOUBLE_EQ(DeliveredAccuracy(0.8, 1.0, kCorruptTop1Factor),
                   0.8 * kCorruptTop1Factor);
  // Linear in between.
  EXPECT_DOUBLE_EQ(DeliveredAccuracy(0.8, 0.5, kCorruptTop1Factor),
                   0.8 * (1.0 - 0.5 * (1.0 - kCorruptTop1Factor)));
  EXPECT_THROW(DeliveredAccuracy(0.8, 1.5, kCorruptTop1Factor), CheckError);
}

// ------------------------------------------------- fault kind + timeline --

TEST(SdcFaults, SilentCorruptionKindRoundTripsThroughCsv) {
  EXPECT_STREQ(FaultKindName(FaultKind::kSilentCorruption),
               "silent-corruption");
  EXPECT_FALSE(FaultKindIsPermanent(FaultKind::kSilentCorruption));

  FaultSchedule schedule;
  schedule.events.push_back({.kind = FaultKind::kSilentCorruption,
                             .instance = 1,
                             .start_s = 5.0,
                             .duration_s = 30.0});
  schedule.Validate();
  const FaultSchedule parsed =
      ParseFaultScheduleCsv(FaultScheduleCsv(schedule));
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].kind, FaultKind::kSilentCorruption);
  EXPECT_EQ(parsed.events[0].instance, 1);
  EXPECT_DOUBLE_EQ(parsed.events[0].start_s, 5.0);
  EXPECT_DOUBLE_EQ(parsed.events[0].duration_s, 30.0);
}

TEST(SdcFaults, TimelineCorruptedAtTracksTheWindowAndStaysUp) {
  FaultSchedule schedule;
  schedule.events.push_back({.kind = FaultKind::kSilentCorruption,
                             .instance = 0,
                             .start_s = 10.0,
                             .duration_s = 20.0});
  const InstanceTimeline timeline(schedule, 0, 100.0);
  EXPECT_FALSE(timeline.CorruptedAt(9.9));
  EXPECT_TRUE(timeline.CorruptedAt(10.0));
  EXPECT_TRUE(timeline.CorruptedAt(29.9));
  EXPECT_FALSE(timeline.CorruptedAt(30.0));
  // The whole hazard: the instance is UP while corrupted.
  EXPECT_TRUE(timeline.UpAt(15.0));
  EXPECT_DOUBLE_EQ(timeline.DownSeconds(), 0.0);
  // Other instances are untouched.
  const InstanceTimeline other(schedule, 1, 100.0);
  EXPECT_FALSE(other.CorruptedAt(15.0));
}

TEST(SdcFaults, GeneratedSchedulesCarrySdcEvents) {
  FaultModel model;
  model.sdc_rate = 5.0;  // high, so a 1h x 4-instance draw surely hits
  model.sdc_window_s = 60.0;
  Rng rng(11);
  const FaultSchedule schedule = GenerateFaultSchedule(model, 4, 3600.0, rng);
  std::size_t corruptions = 0;
  for (const auto& event : schedule.events) {
    if (event.kind == FaultKind::kSilentCorruption) {
      ++corruptions;
      EXPECT_DOUBLE_EQ(event.duration_s, 60.0);
    }
  }
  EXPECT_GT(corruptions, 0u);
}

// ----------------------------------------------------- enumeration axis --

class SdcSpaceTest : public ::testing::Test {
 protected:
  SdcSpaceTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(CaffeNetProfile()),
        accuracy_(core::CalibratedAccuracyModel::CaffeNet()) {}

  /// 1 variant x 2 types x 2 counts, every other axis radix 1.
  core::ArchitectureSpace BaseSpace() const {
    core::ArchitectureSpace space;
    space.AddVariants(core::BuildVariantSpecs(
        profile_, accuracy_, {pruning::PrunePlan{}}, /*include_int8=*/false));
    space.AddInstanceType("p2.xlarge");
    space.AddInstanceType("p2.16xlarge");
    space.SetCounts({1, 2});
    space.SetBatches({0});
    space.SetPurchaseOptions({core::PurchaseOption::kOnDemand});
    space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
    space.AddDegradationOption({.name = "none"});
    return space;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ModelProfile profile_;
  core::CalibratedAccuracyModel accuracy_;
};

TEST_F(SdcSpaceTest, ImplicitAxisKeepsIdsAndSizeUnchanged) {
  const core::ArchitectureSpace space = BaseSpace();
  // No AddSdcOption call: the implicit axis is a single "off" entry, so it
  // is radix 1 — Size() is the pre-SDC product and Decode round-trips.
  ASSERT_EQ(space.SdcOptions().size(), 1u);
  EXPECT_EQ(space.SdcOptions()[0].name, "off");
  EXPECT_EQ(space.Size(), 4u);
  for (std::uint64_t id = 0; id < space.Size(); ++id) {
    const core::AxisPoint p = space.Decode(id);
    EXPECT_EQ(p.sdc, 0u);
    EXPECT_EQ(space.Encode(p), id);
  }
  // Describe stays in its pre-SDC shape.
  EXPECT_EQ(space.Describe(0).find(" | sdc="), std::string::npos);
}

TEST_F(SdcSpaceTest, ExplicitAxisRoundTripsAndDescribes) {
  core::ArchitectureSpace space = BaseSpace();
  space.AddSdcOption({.name = "off", .policy = {}});
  space.AddSdcOption(
      {.name = "abft", .policy = {.kind = SdcPolicyKind::kAbft}});
  space.Validate();
  EXPECT_EQ(space.Size(), 8u);
  for (std::uint64_t id = 0; id < space.Size(); ++id) {
    EXPECT_EQ(space.Encode(space.Decode(id)), id);
  }
  // SDC is the fastest axis: consecutive ids step it first.
  EXPECT_EQ(space.Decode(0).sdc, 0u);
  EXPECT_EQ(space.Decode(1).sdc, 1u);
  EXPECT_NE(space.Describe(1).find(" | sdc=abft"), std::string::npos);
}

TEST_F(SdcSpaceTest, ValidateRejectsBadSdcOptions) {
  core::ArchitectureSpace unnamed = BaseSpace();
  unnamed.AddSdcOption({.name = "", .policy = {}});
  EXPECT_THROW(unnamed.Validate(), CheckError);
  core::ArchitectureSpace bad_policy = BaseSpace();
  bad_policy.AddSdcOption(
      {.name = "scrub",
       .policy = {.kind = SdcPolicyKind::kScrub, .scrub_interval_s = -1.0}});
  EXPECT_THROW(bad_policy.Validate(), CheckError);
}

TEST_F(SdcSpaceTest, EvaluatorOffRowsMatchThePlainSpaceBitwise) {
  const core::ArchitectureSpace plain = BaseSpace();
  core::ArchitectureSpace with_axis = BaseSpace();
  with_axis.AddSdcOption({.name = "off", .policy = {}});
  with_axis.AddSdcOption(
      {.name = "none", .policy = {.kind = SdcPolicyKind::kNone}});
  const core::ArchitectureEvaluator eval_plain(sim_, plain);
  const core::ArchitectureEvaluator eval_axis(sim_, with_axis);
  const std::int64_t images = 1'000'000;
  for (std::uint64_t id = 0; id < plain.Size(); ++id) {
    core::ArchMetrics a;
    core::ArchMetrics b;
    ASSERT_TRUE(eval_plain.Evaluate(id, images, a));
    // The SDC axis is the fastest, so the axis doubles the id stride and
    // sdc=0 ("off") sits at even ids.
    ASSERT_TRUE(eval_axis.Evaluate(id * 2, images, b));
    EXPECT_EQ(a.seconds.value(), b.seconds.value());
    EXPECT_EQ(a.cost_usd.value(), b.cost_usd.value());
    EXPECT_EQ(a.top1, b.top1);
    // kOff: delivered degenerates to the headline accuracy.
    EXPECT_EQ(b.delivered_top1, b.top1);
    EXPECT_EQ(b.sdc_escape_rate, 0.0);
    EXPECT_EQ(b.detection_overhead, 0.0);
  }
}

TEST_F(SdcSpaceTest, EvaluatorPricesDetectionAndDiscountsEscapes) {
  core::ArchitectureSpace space = BaseSpace();
  space.AddSdcOption(
      {.name = "none", .policy = {.kind = SdcPolicyKind::kNone}});
  space.AddSdcOption(
      {.name = "abft", .policy = {.kind = SdcPolicyKind::kAbft}});
  const core::ArchitectureEvaluator evaluator(sim_, space);
  const std::int64_t images = 10'000'000;
  core::ArchMetrics none;
  core::ArchMetrics abft;
  ASSERT_TRUE(evaluator.Evaluate(0, images, none));  // sdc axis is fastest
  ASSERT_TRUE(evaluator.Evaluate(1, images, abft));
  // Detection-free: full escape, no overhead, delivered below headline.
  EXPECT_GT(none.sdc_escape_rate, 0.0);
  EXPECT_EQ(none.detection_overhead, 0.0);
  EXPECT_LT(none.delivered_top1, none.top1);
  // ABFT: almost nothing escapes, time and cost are billed.
  EXPECT_LT(abft.sdc_escape_rate, none.sdc_escape_rate);
  EXPECT_GT(abft.detection_overhead, 0.0);
  EXPECT_GT(abft.seconds.value(), none.seconds.value());
  EXPECT_GT(abft.cost_usd.value(), none.cost_usd.value());
  EXPECT_GT(abft.delivered_top1, none.delivered_top1);
}

// ------------------------------------------------------------- simulator --

class SdcRunTest : public ::testing::Test {
 protected:
  SdcRunTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ModelProfile profile_;
  VariantPerf perf_;
};

TEST_F(SdcRunTest, RunWithSdcOffIsBitwiseTheBaseRun) {
  ResourceConfig config;
  config.Add("p2.8xlarge");
  const std::int64_t images = 1'000'000;
  const RunEstimate base = sim_.Run(config, perf_, images);
  const SdcRunEstimate off = sim_.RunWithSdc(config, perf_, images, {});
  EXPECT_EQ(off.seconds.value(), base.seconds.value());
  EXPECT_EQ(off.cost_usd.value(), base.cost_usd.value());
  EXPECT_EQ(off.delivered_accuracy_factor, 1.0);
}

TEST_F(SdcRunTest, RunWithSdcPricesPoliciesAgainstEachOther) {
  ResourceConfig config;
  config.Add("p2.8xlarge", 2);
  const std::int64_t images = 20'000'000;
  const SdcRunEstimate none =
      sim_.RunWithSdc(config, perf_, images, {.kind = SdcPolicyKind::kNone});
  const SdcRunEstimate abft =
      sim_.RunWithSdc(config, perf_, images, {.kind = SdcPolicyKind::kAbft});
  // kNone: no time/cost change, accuracy pays.
  EXPECT_EQ(none.seconds.value(), none.base.seconds.value());
  EXPECT_LT(none.delivered_accuracy_factor, 1.0);
  // kAbft: time and cost pay, accuracy (almost) does not.
  EXPECT_GT(abft.seconds.value(), abft.base.seconds.value());
  EXPECT_GT(abft.cost_usd.value(), abft.base.cost_usd.value());
  EXPECT_GT(abft.delivered_accuracy_factor, none.delivered_accuracy_factor);
  // The assessment is the closed form at the fleet's catalog rate.
  EXPECT_GT(none.assessment.escape_fraction, 0.0);
  EXPECT_DOUBLE_EQ(
      none.assessment.escape_fraction,
      AssessSdc({.kind = SdcPolicyKind::kNone},
                catalog_.Find("p2.8xlarge").sdc_rate_per_hour,
                none.base.seconds)
          .escape_fraction);
}

TEST_F(SdcRunTest, CatalogCarriesSdcRates) {
  // p2 (K80) boards run hotter than g3 (M60), and rates scale with GPUs.
  EXPECT_GT(catalog_.Find("p2.xlarge").sdc_rate_per_hour.value(), 0.0);
  EXPECT_GT(catalog_.Find("p2.16xlarge").sdc_rate_per_hour.value(),
            catalog_.Find("p2.xlarge").sdc_rate_per_hour.value());
  EXPECT_LT(catalog_.Find("g3.4xlarge").sdc_rate_per_hour.value(),
            catalog_.Find("p2.xlarge").sdc_rate_per_hour.value());
}

// --------------------------------------------------------------- serving --

class SdcServingTest : public ::testing::Test {
 protected:
  SdcServingTest()
      : catalog_(InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        serving_(sim_),
        profile_(CaffeNetProfile()),
        perf_(ComputeVariantPerf(profile_, DensityFromPlan(profile_, {}),
                                 "nonpruned")) {}

  ResourceConfig OneP2() {
    ResourceConfig config;
    config.Add("p2.xlarge");
    return config;
  }

  /// A paced arrival trace: one request every `gap_s` over `duration_s`.
  static std::vector<double> PacedArrivals(double duration_s, double gap_s) {
    std::vector<double> arrivals;
    for (double t = 0.0; t < duration_s; t += gap_s) arrivals.push_back(t);
    return arrivals;
  }

  /// One corruption window covering [30, 90) on instance 0.
  static FaultSchedule CorruptionWindow() {
    FaultSchedule schedule;
    schedule.events.push_back({.kind = FaultKind::kSilentCorruption,
                               .instance = 0,
                               .start_s = 30.0,
                               .duration_s = 60.0});
    return schedule;
  }

  InstanceCatalog catalog_;
  CloudSimulator sim_;
  ServingSimulator serving_;
  ModelProfile profile_;
  VariantPerf perf_;
};

TEST_F(SdcServingTest, OffIgnoresCorruptionWindowsEntirely) {
  const auto arrivals = PacedArrivals(120.0, 0.05);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  // kSilentCorruption never takes an instance down, so with the default
  // kOff policy the dynamics (and the whole report) must be bitwise
  // identical to a run with no schedule at all.
  const ServingReport clean = serving_.SimulateFaulted(
      OneP2(), perf_, arrivals, 120.0, policy, {}, FaultSchedule{});
  const ServingReport corrupted = serving_.SimulateFaulted(
      OneP2(), perf_, arrivals, 120.0, policy, {}, CorruptionWindow());
  EXPECT_EQ(corrupted.requests, clean.requests);
  EXPECT_EQ(corrupted.completed, clean.completed);
  EXPECT_EQ(corrupted.mean_latency_s, clean.mean_latency_s);
  EXPECT_EQ(corrupted.utilization, clean.utilization);
  EXPECT_EQ(corrupted.corrupted_batches, 0);
  EXPECT_EQ(corrupted.sdc_detected, 0);
  EXPECT_EQ(corrupted.sdc_escaped, 0);
  EXPECT_EQ(corrupted.delivered_accuracy_weighted_goodput,
            corrupted.accuracy_weighted_goodput);
}

TEST_F(SdcServingTest, NoneLetsEverythingEscapeAndDiscountsDelivered) {
  const auto arrivals = PacedArrivals(120.0, 0.05);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, arrivals, 120.0, policy, {}, CorruptionWindow(),
      InflightPolicy::kRequeue, /*variant_accuracy=*/0.9, {},
      {.kind = SdcPolicyKind::kNone});
  EXPECT_GT(report.corrupted_batches, 0);
  EXPECT_EQ(report.sdc_detected, 0);
  EXPECT_EQ(report.sdc_escaped, report.corrupted_batches);
  EXPECT_GT(report.sdc_escaped_requests, 0);
  EXPECT_LT(report.delivered_accuracy_weighted_goodput,
            report.accuracy_weighted_goodput);
}

TEST_F(SdcServingTest, AbftDetectsAndReservesCorruptedBatches) {
  const auto arrivals = PacedArrivals(120.0, 0.05);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, arrivals, 120.0, policy, {}, CorruptionWindow(),
      InflightPolicy::kRequeue, /*variant_accuracy=*/0.9, {},
      {.kind = SdcPolicyKind::kAbft});
  EXPECT_GT(report.corrupted_batches, 0);
  // Coverage 0.995: the deterministic thinning detects floor(0.995 n).
  EXPECT_GE(report.sdc_detected,
            static_cast<std::int64_t>(
                std::floor(static_cast<double>(report.corrupted_batches) *
                           kAbftCoverage)));
  EXPECT_EQ(report.sdc_detected + report.sdc_escaped,
            report.corrupted_batches);
}

TEST_F(SdcServingTest, ThinningDetectsTheCoverageFraction) {
  // A long window so many corrupted batches accumulate.
  FaultSchedule schedule;
  schedule.events.push_back({.kind = FaultKind::kSilentCorruption,
                             .instance = 0,
                             .start_s = 0.0,
                             .duration_s = 600.0});
  const auto arrivals = PacedArrivals(600.0, 0.05);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const ServingReport report = serving_.SimulateFaulted(
      OneP2(), perf_, arrivals, 600.0, policy, {}, schedule,
      InflightPolicy::kRequeue, 1.0, {},
      {.kind = SdcPolicyKind::kReexecSample, .sample_fraction = 0.5});
  ASSERT_GT(report.corrupted_batches, 10);
  // The low-discrepancy thinning detects half, up to rounding.
  EXPECT_LE(std::llabs(report.sdc_detected - report.corrupted_batches / 2),
            1);
}

TEST_F(SdcServingTest, CheckpointRestoreCarriesSdcCounters) {
  const auto arrivals = PacedArrivals(120.0, 0.05);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  const SdcPolicy sdc{.kind = SdcPolicyKind::kAbft};

  FaultedServingEngine straight(serving_, OneP2(), perf_, arrivals, 120.0,
                                policy, {}, CorruptionWindow(),
                                InflightPolicy::kRequeue, 0.9, {}, sdc);
  while (!straight.Done()) straight.Step();
  const ServingReport expected = straight.Finish();
  ASSERT_GT(expected.corrupted_batches, 0);

  FaultedServingEngine first(serving_, OneP2(), perf_, arrivals, 120.0,
                             policy, {}, CorruptionWindow(),
                             InflightPolicy::kRequeue, 0.9, {}, sdc);
  // Step past the corruption window's onset so counters are mid-flight.
  while (!first.Done() && first.Watermark() < 60.0) first.Step();
  const std::string snapshot = first.Checkpoint();

  FaultedServingEngine resumed(serving_, OneP2(), perf_, arrivals, 120.0,
                               policy, {}, CorruptionWindow(),
                               InflightPolicy::kRequeue, 0.9, {}, sdc);
  resumed.Restore(snapshot);
  while (!resumed.Done()) resumed.Step();
  const ServingReport report = resumed.Finish();

  EXPECT_EQ(report.corrupted_batches, expected.corrupted_batches);
  EXPECT_EQ(report.sdc_detected, expected.sdc_detected);
  EXPECT_EQ(report.sdc_escaped, expected.sdc_escaped);
  EXPECT_EQ(report.sdc_escaped_requests, expected.sdc_escaped_requests);
  EXPECT_EQ(report.delivered_accuracy_weighted_goodput,
            expected.delivered_accuracy_weighted_goodput);
  EXPECT_EQ(report.mean_latency_s, expected.mean_latency_s);
  EXPECT_EQ(report.utilization, expected.utilization);
}

TEST_F(SdcServingTest, RestoreRejectsSnapshotFromDifferentSdcPolicy) {
  const auto arrivals = PacedArrivals(60.0, 0.1);
  const ServingPolicy policy{.max_batch = 32, .max_wait_s = 0.05};
  FaultedServingEngine none_engine(serving_, OneP2(), perf_, arrivals, 60.0,
                                   policy, {}, CorruptionWindow(),
                                   InflightPolicy::kRequeue, 1.0, {},
                                   {.kind = SdcPolicyKind::kNone});
  while (!none_engine.Done() && none_engine.Watermark() < 10.0) {
    none_engine.Step();
  }
  const std::string snapshot = none_engine.Checkpoint();

  FaultedServingEngine abft_engine(serving_, OneP2(), perf_, arrivals, 60.0,
                                   policy, {}, CorruptionWindow(),
                                   InflightPolicy::kRequeue, 1.0, {},
                                   {.kind = SdcPolicyKind::kAbft});
  EXPECT_THROW(abft_engine.Restore(snapshot), CheckError);
}

}  // namespace
}  // namespace ccperf::cloud
