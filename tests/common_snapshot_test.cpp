// Snapshot container: framed round-trip fidelity (including NaN/inf bit
// patterns), CRC rejection of corruption, truncation handling at every
// prefix, app-tag/version gating, and atomic file persistence.
#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/check.h"

namespace ccperf {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

constexpr std::uint32_t kTag = 0x54455354u;  // 'TEST'

SnapshotWriter MakeSample() {
  SnapshotWriter writer(kTag);
  SnapshotSectionWriter& meta = writer.AddSection("meta");
  meta.PutU8(7);
  meta.PutU32(0xDEADBEEFu);
  meta.PutU64(1ull << 40);
  meta.PutI64(-42);
  meta.PutBool(true);
  meta.PutF64(3.141592653589793);
  meta.PutString("hello snapshot");
  SnapshotSectionWriter& data = writer.AddSection("data");
  data.PutF64Vector({1.0, -0.0, std::numeric_limits<double>::infinity(),
                     std::nan("0x5CA1AB1E"), 1e-308});
  data.PutI64Vector({0, -1, std::numeric_limits<std::int64_t>::max()});
  return writer;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0u);
  EXPECT_NE(Crc32(std::string("a")), Crc32(std::string("b")));
}

TEST(SnapshotTest, RoundTripsEveryFieldBitwise) {
  const std::string bytes = MakeSample().Serialize();
  const SnapshotReader reader = SnapshotReader::Parse(bytes, kTag);
  EXPECT_EQ(reader.SectionCount(), 2u);
  EXPECT_TRUE(reader.Has("meta"));
  EXPECT_TRUE(reader.Has("data"));
  EXPECT_FALSE(reader.Has("absent"));

  SnapshotSectionReader meta = reader.Section("meta");
  EXPECT_EQ(meta.TakeU8(), 7);
  EXPECT_EQ(meta.TakeU32(), 0xDEADBEEFu);
  EXPECT_EQ(meta.TakeU64(), 1ull << 40);
  EXPECT_EQ(meta.TakeI64(), -42);
  EXPECT_TRUE(meta.TakeBool());
  EXPECT_EQ(meta.TakeF64(), 3.141592653589793);
  EXPECT_EQ(meta.TakeString(), "hello snapshot");
  EXPECT_NO_THROW(meta.ExpectEnd());

  SnapshotSectionReader data = reader.Section("data");
  const std::vector<double> doubles = data.TakeF64Vector();
  ASSERT_EQ(doubles.size(), 5u);
  EXPECT_EQ(doubles[0], 1.0);
  EXPECT_EQ(doubles[1], 0.0);
  EXPECT_TRUE(std::signbit(doubles[1])) << "-0.0 must survive bitwise";
  EXPECT_TRUE(std::isinf(doubles[2]));
  EXPECT_TRUE(std::isnan(doubles[3])) << "NaN payload must survive";
  EXPECT_EQ(doubles[4], 1e-308);
  const std::vector<std::int64_t> ints = data.TakeI64Vector();
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints[1], -1);
  EXPECT_EQ(ints[2], std::numeric_limits<std::int64_t>::max());
  EXPECT_NO_THROW(data.ExpectEnd());
}

TEST(SnapshotTest, RejectsWrongAppTagAndBadMagic) {
  const std::string bytes = MakeSample().Serialize();
  EXPECT_THROW((void)SnapshotReader::Parse(bytes, kTag + 1), CheckError);
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW((void)SnapshotReader::Parse(wrong_magic, kTag), CheckError);
  EXPECT_THROW((void)SnapshotReader::Parse(std::string(), kTag), CheckError);
}

TEST(SnapshotTest, EveryByteFlipIsDetected) {
  // Any one-byte corruption must fail parsing or leave the payload intact
  // (flips inside CRC fields themselves break the CRC match).
  const std::string pristine = MakeSample().Serialize();
  int rejected = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::string mutated = pristine;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    try {
      (void)SnapshotReader::Parse(mutated, kTag);
      ADD_FAILURE() << "byte " << i << " flip was not detected";
    } catch (const CheckError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, static_cast<int>(pristine.size()));
}

TEST(SnapshotTest, EveryTruncationIsDetected) {
  const std::string pristine = MakeSample().Serialize();
  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    EXPECT_THROW((void)SnapshotReader::Parse(pristine.substr(0, cut), kTag),
                 CheckError)
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_THROW((void)SnapshotReader::Parse(pristine + "x", kTag), CheckError)
      << "trailing garbage must be rejected";
}

TEST(SnapshotTest, SectionReaderBoundsChecks) {
  SnapshotWriter writer(kTag);
  writer.AddSection("s").PutU32(5);
  const SnapshotReader reader = SnapshotReader::Parse(writer.Serialize(), kTag);
  SnapshotSectionReader section = reader.Section("s");
  EXPECT_THROW(section.ExpectEnd(), CheckError) << "unread bytes remain";
  EXPECT_EQ(section.TakeU32(), 5u);
  EXPECT_THROW((void)section.TakeU32(), CheckError) << "read past end";
  EXPECT_THROW((void)reader.Section("missing"), CheckError);
}

TEST(SnapshotTest, DuplicateSectionNamesAreRejected) {
  SnapshotWriter writer(kTag);
  writer.AddSection("twice");
  EXPECT_THROW((void)writer.AddSection("twice"), CheckError);
  EXPECT_THROW((void)writer.AddSection(""), CheckError);
}

TEST(SnapshotFileTest, AtomicWriteRoundTripsAndReplacesCleanly) {
  const std::string path = TempPath("snapshot_atomic.ccsn");
  WriteSnapshotFileAtomic(path, MakeSample());
  {
    const SnapshotReader reader = SnapshotReader::FromFile(path, kTag);
    EXPECT_EQ(reader.SectionCount(), 2u);
  }
  // Overwrite with a different snapshot; the reader must see the new one.
  SnapshotWriter second(kTag);
  second.AddSection("only").PutU64(99);
  WriteSnapshotFileAtomic(path, second);
  const SnapshotReader reader = SnapshotReader::FromFile(path, kTag);
  EXPECT_EQ(reader.SectionCount(), 1u);
  SnapshotSectionReader only = reader.Section("only");
  EXPECT_EQ(only.TakeU64(), 99u);
  // No tmp residue from successful writes.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingAndCorruptFilesThrowWithPath) {
  EXPECT_THROW((void)SnapshotReader::FromFile("/nonexistent/snap.ccsn", kTag),
               CheckError);
  const std::string path = TempPath("snapshot_corrupt.ccsn");
  {
    std::ofstream out(path, std::ios::binary);
    out << "CCSNgarbage-that-is-not-a-snapshot";
  }
  EXPECT_THROW((void)SnapshotReader::FromFile(path, kTag), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccperf
