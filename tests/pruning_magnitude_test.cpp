#include "pruning/magnitude_pruner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/activation_layers.h"

namespace ccperf::pruning {
namespace {

nn::FcLayer MakeFc(std::int64_t in, std::int64_t out, std::uint64_t seed) {
  nn::FcLayer fc("fc", in, out);
  Rng rng(seed);
  fc.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  fc.NotifyWeightsChanged();
  return fc;
}

TEST(MagnitudePruner, ExactRatioZeroed) {
  nn::FcLayer fc = MakeFc(100, 10, 1);
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.37);
  EXPECT_NEAR(fc.Weights().ZeroFraction(), 0.37, 1e-9);
}

TEST(MagnitudePruner, SmallestMagnitudesGoFirst) {
  nn::FcLayer fc("fc", 4, 1);
  auto w = fc.MutableWeights().Data();
  w[0] = 0.1f; w[1] = -5.0f; w[2] = 0.2f; w[3] = 3.0f;
  fc.NotifyWeightsChanged();
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.5);
  EXPECT_FLOAT_EQ(fc.Weights().At(0), 0.0f);
  EXPECT_FLOAT_EQ(fc.Weights().At(2), 0.0f);
  EXPECT_FLOAT_EQ(fc.Weights().At(1), -5.0f);
  EXPECT_FLOAT_EQ(fc.Weights().At(3), 3.0f);
}

TEST(MagnitudePruner, ZeroRatioIsNoop) {
  nn::FcLayer fc = MakeFc(50, 4, 2);
  const auto before = std::vector<float>(fc.Weights().Data().begin(),
                                         fc.Weights().Data().end());
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(fc.Weights().Data()[i], before[i]);
  }
}

TEST(MagnitudePruner, RepruningAccountsForExistingZeros) {
  nn::FcLayer fc = MakeFc(100, 10, 3);
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.5);
  pruner.Prune(fc, 0.5);  // already-zero weights count toward the target
  EXPECT_NEAR(fc.Weights().ZeroFraction(), 0.5, 1e-9);
}

TEST(MagnitudePruner, MonotoneSparsityUnderIncreasingRatio) {
  MagnitudePruner pruner;
  double prev = -1.0;
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    nn::FcLayer fc = MakeFc(200, 20, 4);
    pruner.Prune(fc, r);
    const double z = fc.Weights().ZeroFraction();
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(MagnitudePruner, TiedMagnitudesStillHitExactCount) {
  nn::FcLayer fc("fc", 8, 1);
  auto w = fc.MutableWeights().Data();
  for (auto& v : w) v = 1.0f;  // all tied
  fc.NotifyWeightsChanged();
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.5);
  EXPECT_NEAR(fc.Weights().ZeroFraction(), 0.5, 1e-9);
}

TEST(MagnitudePruner, FlipsConvToSparsePath) {
  nn::ConvLayer conv("c", {.out_channels = 8, .kernel = 3}, 8);
  Rng rng(5);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 1.0f);
  conv.NotifyWeightsChanged();
  EXPECT_FALSE(conv.UsesSparsePath());
  MagnitudePruner pruner;
  // The measured dispatch keeps the dense kernel until density drops below
  // kCsrCrossoverDensity (~0.2) — moderate pruning must NOT flip the path.
  pruner.Prune(conv, 0.5);
  EXPECT_FALSE(conv.UsesSparsePath());
  pruner.Prune(conv, 0.85);
  EXPECT_TRUE(conv.UsesSparsePath());
}

TEST(MagnitudePruner, RejectsWeightlessLayer) {
  nn::ReluLayer relu("r");
  MagnitudePruner pruner;
  EXPECT_THROW(pruner.Prune(relu, 0.5), CheckError);
}

TEST(MagnitudePruner, RejectsRatioOutOfRange) {
  nn::FcLayer fc = MakeFc(10, 2, 6);
  MagnitudePruner pruner;
  EXPECT_THROW(pruner.Prune(fc, 1.0), CheckError);
  EXPECT_THROW(pruner.Prune(fc, -0.1), CheckError);
}

TEST(MagnitudePruner, RemovedEnergyGrowsSlowerThanRatio) {
  // The sweet-spot mechanism: pruning the smallest 50 % of Gaussian weights
  // removes far less than 50 % of the L1 mass.
  nn::FcLayer fc = MakeFc(500, 20, 7);
  const double l1_before = fc.Weights().L1Norm();
  MagnitudePruner pruner;
  pruner.Prune(fc, 0.5);
  const double l1_after = fc.Weights().L1Norm();
  EXPECT_GT(l1_after / l1_before, 0.7);
}

class MagnitudeRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeRatioSweep, RealizedRatioIsExact) {
  const double ratio = GetParam();
  nn::FcLayer fc = MakeFc(317, 13, 11);  // deliberately non-round size
  MagnitudePruner pruner;
  pruner.Prune(fc, ratio);
  const auto n = static_cast<double>(fc.Weights().NumElements());
  EXPECT_NEAR(fc.Weights().ZeroFraction(), std::round(ratio * n) / n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, MagnitudeRatioSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.33, 0.5, 0.66,
                                           0.75, 0.9, 0.99));

}  // namespace
}  // namespace ccperf::pruning
