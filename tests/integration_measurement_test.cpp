// Integration: the real measurement pipeline (actual CPU inference on the
// tiny CNN) — times variants, measures teacher-student accuracy, computes
// TAR/CAR. Mirrors the paper's §3.3 measurement phase at laptop scale.
#include "core/measurement.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/sweet_spot.h"
#include "nn/model_zoo.h"
#include "pruning/variant_generator.h"

namespace ccperf::core {
namespace {

class MeasurementTest : public ::testing::Test {
 protected:
  MeasurementTest()
      : base_([] {
          nn::ModelConfig config;
          config.weight_seed = 77;
          return nn::BuildTinyCnn(config);
        }()),
        dataset_(Shape{3, 16, 16}, 10, 256, 99, 0.3f),
        evaluator_(base_, dataset_, /*sample_images=*/64, /*batch=*/16) {}

  nn::Network base_;
  data::SyntheticImageDataset dataset_;
  EmpiricalAccuracyEvaluator evaluator_;
};

TEST_F(MeasurementTest, TeacherAgreesWithItselfPerfectly) {
  const AccuracyResult agreement = evaluator_.Agreement(base_);
  EXPECT_DOUBLE_EQ(agreement.top1, 1.0);
  EXPECT_DOUBLE_EQ(agreement.top5, 1.0);
  const AccuracyResult scaled = evaluator_.Evaluate(base_);
  EXPECT_DOUBLE_EQ(scaled.top1, 0.55);
  EXPECT_DOUBLE_EQ(scaled.top5, 0.80);
}

TEST_F(MeasurementTest, LightMagnitudePruningKeepsHighAgreement) {
  // The sweet-spot mechanism, measured on real inference: removing the
  // lowest-magnitude 30 % of weights barely changes decisions.
  const nn::Network variant = pruning::ApplyPlan(
      base_, pruning::UniformPlan({"conv1", "conv2", "fc1"}, 0.3,
                                  pruning::PrunerFamily::kMagnitude));
  // TinyCnn has little redundancy compared to CaffeNet, so thresholds are
  // looser than the paper's "almost unchanged" — the point is the large gap
  // to the heavily-pruned case below.
  const AccuracyResult agreement = evaluator_.Agreement(variant);
  EXPECT_GT(agreement.top1, 0.55);
  EXPECT_GT(agreement.top5, 0.85);
}

TEST_F(MeasurementTest, HeavyPruningDegradesAgreement) {
  const nn::Network light = pruning::ApplyPlan(
      base_, pruning::UniformPlan({"conv1", "conv2", "fc1", "fc2"}, 0.2,
                                  pruning::PrunerFamily::kMagnitude));
  const nn::Network heavy = pruning::ApplyPlan(
      base_, pruning::UniformPlan({"conv1", "conv2", "fc1", "fc2"}, 0.9,
                                  pruning::PrunerFamily::kMagnitude));
  const double light_top1 = evaluator_.Agreement(light).top1;
  const double heavy_top1 = evaluator_.Agreement(heavy).top1;
  EXPECT_GT(light_top1, heavy_top1);
  EXPECT_LT(heavy_top1, 0.8);
}

TEST_F(MeasurementTest, AgreementMonotoneInRatioOnAverage) {
  // Weak monotonicity with slack: agreement at r+0.3 must not exceed
  // agreement at r by more than noise.
  double prev = 1.1;
  for (double r : {0.0, 0.3, 0.6, 0.9}) {
    const nn::Network variant = pruning::ApplyPlan(
        base_, pruning::UniformPlan({"conv1", "conv2", "fc1", "fc2"}, r,
                                    pruning::PrunerFamily::kMagnitude));
    const double top5 = evaluator_.Agreement(variant).top5;
    EXPECT_LT(top5, prev + 0.1) << "ratio " << r;
    prev = top5;
  }
}

TEST_F(MeasurementTest, PipelineProducesCompleteRecords) {
  MeasurementConfig config;
  config.images = 16;
  config.batch = 8;
  config.repetitions = 2;
  config.price_per_hour = 0.9;
  const MeasurementPipeline pipeline(base_, dataset_, config);

  std::vector<pruning::PrunePlan> plans;
  plans.push_back({});
  plans.push_back(pruning::UniformPlan({"conv2"}, 0.5,
                                       pruning::PrunerFamily::kMagnitude));
  const auto records = pipeline.Run(plans, evaluator_);
  ASSERT_EQ(records.size(), 2u);

  EXPECT_EQ(records[0].label, "nonpruned");
  EXPECT_GT(records[0].seconds, 0.0);
  EXPECT_DOUBLE_EQ(records[0].top5, 0.80);
  EXPECT_DOUBLE_EQ(records[0].tar5, records[0].seconds / 0.80);
  EXPECT_GT(records[0].cost_usd, 0.0);
  EXPECT_DOUBLE_EQ(records[0].car5, records[0].cost_usd / records[0].top5);

  EXPECT_EQ(records[1].label, "conv2@50");
  EXPECT_LE(records[1].top5, records[0].top5 + 1e-9);
}

TEST_F(MeasurementTest, TimingIsMinOverRepetitions) {
  MeasurementConfig config;
  config.images = 8;
  config.batch = 8;
  config.repetitions = 3;
  const MeasurementPipeline pipeline(base_, dataset_, config);
  // Just verify it runs and returns a positive duration.
  EXPECT_GT(pipeline.TimeNetwork(base_), 0.0);
}

TEST_F(MeasurementTest, ConfigValidation) {
  MeasurementConfig config;
  config.images = 0;
  EXPECT_THROW(MeasurementPipeline(base_, dataset_, config), CheckError);
  config.images = 100000;  // larger than dataset
  EXPECT_THROW(MeasurementPipeline(base_, dataset_, config), CheckError);
}

TEST_F(MeasurementTest, EvaluatorValidation) {
  EXPECT_THROW(
      EmpiricalAccuracyEvaluator(base_, dataset_, 0, 8), CheckError);
  EXPECT_THROW(
      EmpiricalAccuracyEvaluator(base_, dataset_, 10000, 8), CheckError);
}

}  // namespace
}  // namespace ccperf::core
