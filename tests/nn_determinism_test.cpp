// End-to-end determinism: a full CaffeNet forward pass must be bitwise
// reproducible run-to-run AND independent of the thread pool, because the
// blocked GEMM accumulates every output element in a fixed ascending-k
// order inside exactly one task. Bitwise equality (memcmp, not NEAR) is the
// point: it is what makes pruning experiments replayable across machines
// with different core counts.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/threading.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"

namespace ccperf {
namespace {

nn::Network ScaledCaffeNet() {
  nn::ModelConfig config;
  config.channel_scale = 0.25;
  config.num_classes = 32;
  config.weight_seed = 777;
  return nn::BuildCaffeNet(config);
}

std::vector<float> Logits(const nn::Network& net, const Tensor& batch) {
  const Tensor out = net.Forward(batch);
  const std::span<const float> data = out.Data();
  return {data.begin(), data.end()};
}

TEST(Determinism, CaffeNetForwardIsBitwiseReproducible) {
  const nn::Network net = ScaledCaffeNet();
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> first = Logits(net, batch);
  const std::vector<float> second = Logits(net, batch);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(float)));
}

TEST(Determinism, CaffeNetForwardMatchesSerialExecution) {
  const nn::Network net = ScaledCaffeNet();
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  std::vector<float> serial;
  {
    // ScopedSerial forces every ParallelFor into the calling thread — the
    // ThreadPool(1) equivalent — without rebuilding the global pool.
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

TEST(Determinism, TinyCnnForwardIsBitwiseReproducible) {
  // Cheap guard that also covers the fc batched fast path (batch > 1).
  nn::ModelConfig config;
  config.channel_scale = 1.0;
  config.num_classes = 10;
  config.weight_seed = 3;
  const nn::Network net = nn::BuildTinyCnn(config);
  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 10, 16, 4);
  const Tensor batch = dataset.Batch(0, 4);
  const std::vector<float> a = Logits(net, batch);
  const std::vector<float> b = Logits(net, batch);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

}  // namespace
}  // namespace ccperf
