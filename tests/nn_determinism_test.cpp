// End-to-end determinism: a full CaffeNet forward pass must be bitwise
// reproducible run-to-run AND independent of the thread pool, because the
// blocked GEMM accumulates every output element in a fixed ascending-k
// order inside exactly one task. Bitwise equality (memcmp, not NEAR) is the
// point: it is what makes pruning experiments replayable across machines
// with different core counts.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/threading.h"
#include "data/synthetic_dataset.h"
#include "nn/conv_layer.h"
#include "nn/model_zoo.h"
#include "pruning/filter_pruner.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf {
namespace {

nn::Network ScaledCaffeNet() {
  nn::ModelConfig config;
  config.channel_scale = 0.25;
  config.num_classes = 32;
  config.weight_seed = 777;
  return nn::BuildCaffeNet(config);
}

std::vector<float> Logits(const nn::Network& net, const Tensor& batch) {
  const Tensor out = net.Forward(batch);
  const std::span<const float> data = out.Data();
  return {data.begin(), data.end()};
}

TEST(Determinism, CaffeNetForwardIsBitwiseReproducible) {
  const nn::Network net = ScaledCaffeNet();
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> first = Logits(net, batch);
  const std::vector<float> second = Logits(net, batch);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(float)));
}

TEST(Determinism, CaffeNetForwardMatchesSerialExecution) {
  const nn::Network net = ScaledCaffeNet();
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  std::vector<float> serial;
  {
    // ScopedSerial forces every ParallelFor into the calling thread — the
    // ThreadPool(1) equivalent — without rebuilding the global pool.
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

/// Count of weighted layers currently dispatched to `kernel`.
int LayersOnKernel(nn::Network& net, SparseKernel kernel) {
  int count = 0;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (auto* conv = dynamic_cast<nn::ConvLayer*>(&net.LayerAt(i))) {
      if (conv->Kernel() == kernel) ++count;
    }
  }
  return count;
}

TEST(Determinism, PrunedCsrForwardMatchesSerialExecution) {
  // Same contract as the dense pass, with the CSR sparse kernels active:
  // each C element is still accumulated in a fixed order (four partial
  // accumulators combined in a fixed tree) by exactly one task, so the
  // pooled and serial results must be bitwise identical.
  nn::Network net = ScaledCaffeNet();
  pruning::MagnitudePruner pruner;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    nn::Layer& layer = net.LayerAt(i);
    if (layer.HasWeights()) pruner.Prune(layer, 0.85);
  }
  ASSERT_GT(LayersOnKernel(net, SparseKernel::kCsr), 0)
      << "pruning did not activate any CSR layer";
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  const std::vector<float> repeat = Logits(net, batch);
  std::vector<float> serial;
  {
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), repeat.data(),
                           pooled.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

TEST(Determinism, PrunedBsrForwardMatchesSerialExecution) {
  // Block-aligned filter pruning keeps BSR fill at 1.0, so the dispatch
  // flips the conv layers to the block-sparse kernel; the determinism
  // contract must hold there too.
  nn::Network net = ScaledCaffeNet();
  pruning::L1FilterPruner pruner(/*block_aligned=*/true);
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    nn::Layer& layer = net.LayerAt(i);
    if (layer.HasWeights()) pruner.Prune(layer, 0.75);
  }
  ASSERT_GT(LayersOnKernel(net, SparseKernel::kBsr), 0)
      << "block pruning did not activate any BSR layer";
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  const std::vector<float> repeat = Logits(net, batch);
  std::vector<float> serial;
  {
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), repeat.data(),
                           pooled.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

TEST(Determinism, Int8ForwardMatchesSerialExecution) {
  // Quantized execution keeps the full determinism contract: the int8
  // kernel accumulates in exact int32 (associative — immune to chunking)
  // and dequantizes each element exactly once, so the pooled, repeated,
  // and serial (one-thread-pool-equivalent) forwards must all be bitwise
  // identical. This is pool-size independence for the quantized path.
  nn::Network net = ScaledCaffeNet();
  net.SetInt8Execution(true);
  int int8_layers = 0;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (auto* conv = dynamic_cast<nn::ConvLayer*>(&net.LayerAt(i))) {
      if (conv->Format() == KernelFormat::kInt8) ++int8_layers;
    }
  }
  ASSERT_GT(int8_layers, 0) << "int8 mode did not activate any conv layer";
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  const std::vector<float> repeat = Logits(net, batch);
  std::vector<float> serial;
  {
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), repeat.data(),
                           pooled.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

TEST(Determinism, PrunedInt8MixedFormatForwardMatchesSerialExecution) {
  // Pruning + quantization together: deeply pruned layers dispatch to CSR
  // while the rest run int8 — the mixed-format network must still be
  // bitwise pool-independent.
  nn::Network net = ScaledCaffeNet();
  net.SetInt8Execution(true);
  pruning::MagnitudePruner pruner;
  // Prune only the odd weighted layers so both formats are present.
  bool prune_this = false;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    nn::Layer& layer = net.LayerAt(i);
    if (!layer.HasWeights()) continue;
    if (prune_this) pruner.Prune(layer, 0.9);
    prune_this = !prune_this;
  }
  int int8_layers = 0;
  int csr_layers = 0;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (auto* conv = dynamic_cast<nn::ConvLayer*>(&net.LayerAt(i))) {
      int8_layers += conv->Format() == KernelFormat::kInt8;
      csr_layers += conv->Format() == KernelFormat::kCsr;
    }
  }
  ASSERT_GT(int8_layers, 0) << "no conv layer stayed on the int8 path";
  ASSERT_GT(csr_layers, 0) << "pruning did not flip any conv layer to CSR";
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 32, 8, 9);
  const Tensor batch = dataset.Batch(0, 2);

  const std::vector<float> pooled = Logits(net, batch);
  const std::vector<float> repeat = Logits(net, batch);
  std::vector<float> serial;
  {
    ScopedSerial serial_scope;
    serial = Logits(net, batch);
  }
  ASSERT_EQ(pooled.size(), serial.size());
  EXPECT_EQ(0, std::memcmp(pooled.data(), repeat.data(),
                           pooled.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                           pooled.size() * sizeof(float)));
}

TEST(Determinism, TinyCnnForwardIsBitwiseReproducible) {
  // Cheap guard that also covers the fc batched fast path (batch > 1).
  nn::ModelConfig config;
  config.channel_scale = 1.0;
  config.num_classes = 10;
  config.weight_seed = 3;
  const nn::Network net = nn::BuildTinyCnn(config);
  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 10, 16, 4);
  const Tensor batch = dataset.Batch(0, 4);
  const std::vector<float> a = Logits(net, batch);
  const std::vector<float> b = Logits(net, batch);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

}  // namespace
}  // namespace ccperf
