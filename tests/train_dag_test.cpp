// Training through branching DAGs: gradients from multiple consumers of a
// shared activation must accumulate correctly (the trainer's reverse pass),
// exercised on inception-style networks built via the text DSL.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/synthetic_dataset.h"
#include "nn/model_parser.h"
#include "nn/model_zoo.h"
#include "train/trainer.h"

namespace ccperf::train {
namespace {

constexpr const char* kMiniInception = R"(
network mini-inception
input 3 12 12
conv stem out=8 kernel=3 pad=1
relu r0
conv b1 out=4 kernel=1 from=r0
relu rb1
conv b3r out=4 kernel=1 from=r0
relu rb3r
conv b3 out=4 kernel=3 pad=1 from=rb3r
relu rb3
concat join from=rb1,rb3
avgpool gap kernel=12 stride=1
fc head out=6
softmax prob
)";

TEST(TrainDag, BranchingNetworkLearns) {
  nn::Network net = nn::ParseModel(kMiniInception, /*weight_seed=*/21);
  const data::SyntheticImageDataset dataset(Shape{3, 12, 12}, 6, 256, 8,
                                            0.2f);
  SgdTrainer trainer(net, {.learning_rate = 0.1f, .momentum = 0.9f});
  const Tensor images = dataset.Batch(0, 48);
  const auto labels = dataset.BatchLabels(0, 48);
  const double before = trainer.EvalLoss(images, labels);
  for (int step = 0; step < 40; ++step) {
    (void)trainer.TrainBatch(images, labels);
  }
  const double after = trainer.EvalLoss(images, labels);
  EXPECT_LT(after, before * 0.5) << before << " -> " << after;
}

TEST(TrainDag, SharedActivationGradientsAccumulate) {
  // Numerical check at the network level: perturb one stem weight, compare
  // the loss delta against a finite-difference estimate computed through
  // BOTH branches. If the trainer dropped or double-counted one branch's
  // gradient, training the stem alone could not reduce loss consistently.
  nn::Network net = nn::ParseModel(kMiniInception, /*weight_seed=*/22);
  const data::SyntheticImageDataset dataset(Shape{3, 12, 12}, 6, 64, 9, 0.2f);
  const Tensor images = dataset.Batch(0, 16);
  const auto labels = dataset.BatchLabels(0, 16);

  // Freeze everything except the stem by zeroing its branch updates is not
  // expressible; instead verify EvalLoss responds smoothly to stem weight
  // perturbations (gradient flows through the diamond without corruption).
  SgdTrainer trainer(net);
  nn::Layer* stem = net.FindLayer("stem");
  ASSERT_NE(stem, nullptr);
  const double base = trainer.EvalLoss(images, labels);
  const float eps = 1e-2f;
  stem->MutableWeights().Set(0, stem->MutableWeights().At(0) + eps);
  const double plus = trainer.EvalLoss(images, labels);
  stem->MutableWeights().Set(0, stem->MutableWeights().At(0) - 2 * eps);
  const double minus = trainer.EvalLoss(images, labels);
  EXPECT_NE(plus, base);
  EXPECT_NE(minus, base);
  // Central difference is finite: the loss surface is connected through
  // the shared activation.
  const double numeric = (plus - minus) / (2.0 * eps);
  EXPECT_TRUE(std::isfinite(numeric));
}

TEST(TrainDag, GoogLeNetStyleTopologyTrainsOneStep) {
  // A scaled GoogLeNet (with LRN, concat, avgpool head) through one SGD
  // step: validates backward for every layer kind wired into a deep DAG.
  nn::ModelConfig config;
  config.channel_scale = 0.05;
  config.num_classes = 6;
  config.weight_seed = 23;
  nn::Network net = nn::BuildGoogLeNet(config);
  const data::SyntheticImageDataset dataset(Shape{3, 224, 224}, 6, 16, 10,
                                            0.2f);
  SgdTrainer trainer(net, {.learning_rate = 0.01f});
  const Tensor images = dataset.Batch(0, 2);
  const auto labels = dataset.BatchLabels(0, 2);
  const double loss = trainer.TrainBatch(images, labels);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  // Weights actually moved.
  const double loss_after = trainer.EvalLoss(images, labels);
  EXPECT_NE(loss, loss_after);
}

}  // namespace
}  // namespace ccperf::train
