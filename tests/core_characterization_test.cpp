#include "core/characterization.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/sweet_spot.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::core {
namespace {

class CharacterizationTest : public ::testing::Test {
 protected:
  CharacterizationTest()
      : catalog_(cloud::InstanceCatalog::AwsEc2()),
        sim_(catalog_),
        profile_(cloud::CaffeNetProfile()),
        accuracy_(CalibratedAccuracyModel::CaffeNet()),
        ch_(sim_, profile_, accuracy_) {}

  cloud::InstanceCatalog catalog_;
  cloud::CloudSimulator sim_;
  cloud::ModelProfile profile_;
  CalibratedAccuracyModel accuracy_;
  Characterization ch_;
};

TEST_F(CharacterizationTest, TimeDistributionSumsToOne) {
  const auto dist = ch_.TimeDistribution();
  double total = 0.0;
  for (const auto& [name, share] : dist) {
    EXPECT_GT(share, 0.0) << name;
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(dist.back().first, "other");
}

TEST_F(CharacterizationTest, SingleInferenceMatchesPaperAnchors) {
  EXPECT_NEAR(ch_.SingleInferenceSeconds("p2.xlarge", 0.0), 0.09, 0.02);
  EXPECT_NEAR(ch_.SingleInferenceSeconds("p2.xlarge", 0.9), 0.05, 0.015);
}

TEST_F(CharacterizationTest, SingleInferenceSkipsFcLayers) {
  // Fig. 4 prunes only conv layers; a 90 % "uniform" prune must leave fc
  // time intact, so it cannot reach the all-layers floor.
  const double pruned = ch_.SingleInferenceSeconds("p2.xlarge", 0.9);
  double fc_share = 0.0;
  for (const auto& [name, lp] : profile_.layers) {
    if (name.rfind("fc", 0) == 0) fc_share += lp.time_share;
  }
  const double launch = 14 * 1.5e-3;
  EXPECT_GT(pruned,
            launch + fc_share * profile_.ref_seconds_per_image.value() / 1.0);
}

TEST_F(CharacterizationTest, BatchSweepMonotoneDecreasing) {
  const auto curve =
      ch_.BatchSweep("p2.xlarge", {1, 50, 300, 2000}, 50000);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].second, curve[i - 1].second);
  }
}

TEST_F(CharacterizationTest, SingleLayerSweepShapes) {
  const auto curve = ch_.SingleLayerSweep(
      "p2.xlarge", "conv2", {0.0, 0.3, 0.6, 0.9}, 50000);
  ASSERT_EQ(curve.size(), 4u);
  // Time is non-increasing everywhere (the dispatch plateau holds it flat
  // while density sits above the sparse crossover) and strictly falls once
  // the layer crosses; accuracy never increases.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].seconds, curve[i - 1].seconds);
    EXPECT_LE(curve[i].top5, curve[i - 1].top5 + 1e-12);
    const bool both_crossed = 1.0 - curve[i - 1].ratio < kBsrCrossoverDensity;
    if (both_crossed) EXPECT_LT(curve[i].seconds, curve[i - 1].seconds);
  }
  EXPECT_LT(curve[3].seconds, curve[0].seconds);
  EXPECT_DOUBLE_EQ(curve[0].ratio, 0.0);
  EXPECT_DOUBLE_EQ(curve[3].ratio, 0.9);
}

TEST_F(CharacterizationTest, SweetSpotsMatchPaper) {
  // The paper's Fig. 6 sweet spots: conv1 ~30 %, conv2 ~50 %. Under the
  // dispatch-aware time model only conv2's survives: at 50 % its density
  // (0.5) is below the sparse crossover, so the pruning buys real time
  // inside the accuracy band. conv1's band ends at 30 % — density 0.7, deep
  // in the dense-kernel plateau — so pruning conv1 alone never pays before
  // accuracy collapses. That is the paper's Observation 2 (conv1 is the
  // least time-effective single layer to prune) sharpened by the measured
  // crossover.
  const std::vector<double> ratios{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  const auto conv1 = ch_.SingleLayerSweep("p2.xlarge", "conv1", ratios, 50000);
  const auto conv2 = ch_.SingleLayerSweep("p2.xlarge", "conv2", ratios, 50000);
  const SweetSpot s1 = FindSweetSpot(conv1, 0.04);
  const SweetSpot s2 = FindSweetSpot(conv2, 0.04);
  EXPECT_FALSE(s1.exists);
  ASSERT_TRUE(s2.exists);
  EXPECT_DOUBLE_EQ(s2.last_ratio, 0.5);
}

TEST_F(CharacterizationTest, EvaluatePlanConsistentWithSweep) {
  pruning::PrunePlan plan;
  plan.layer_ratios["conv3"] = 0.4;
  const CurvePoint via_plan = ch_.EvaluatePlan("p2.xlarge", plan, 50000);
  const auto via_sweep =
      ch_.SingleLayerSweep("p2.xlarge", "conv3", {0.4}, 50000);
  EXPECT_DOUBLE_EQ(via_plan.seconds, via_sweep[0].seconds);
  EXPECT_DOUBLE_EQ(via_plan.top5, via_sweep[0].top5);
}

TEST_F(CharacterizationTest, UnknownInstanceThrows) {
  EXPECT_THROW((void)ch_.SingleInferenceSeconds("t2.micro", 0.0), CheckError);
}

TEST_F(CharacterizationTest, GoogLeNetCharacterizationWorks) {
  const cloud::ModelProfile goog = cloud::GoogLeNetProfile();
  const CalibratedAccuracyModel goog_acc =
      CalibratedAccuracyModel::GoogLeNet();
  const Characterization gch(sim_, goog, goog_acc);
  EXPECT_NEAR(gch.SingleInferenceSeconds("p2.xlarge", 0.0), 0.16, 0.02);
  const auto dist = gch.TimeDistribution();
  EXPECT_EQ(dist.size(), 59u);  // 58 weighted layers + "other"
}

}  // namespace
}  // namespace ccperf::core
