// Cached-kernel-format invalidation: conv/fc layers cache a packed build of
// their weights (packed float panels are implicit, CSR/BSR and int8 packs
// are explicit members), and every weight mutation must flow through
// NotifyWeightsChanged so the cache is rebuilt AND the format re-dispatched.
// The latent bug class this pins down: a layer keeps serving a stale pack
// (old weights, or the wrong engine) after re-pruning or re-quantizing.
// Every transition below compares the mutated layer's forward against a
// freshly rebuilt Clone() — bitwise, because both sides run the same
// deterministic kernels on the same weights.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/model_zoo.h"
#include "nn/network.h"
#include "pruning/filter_pruner.h"
#include "pruning/magnitude_pruner.h"
#include "tensor/sparse_dispatch.h"

namespace ccperf::nn {
namespace {

std::vector<float> ForwardVec(const Layer& layer, const Tensor& input) {
  const Tensor out = layer.Forward({&input});
  const std::span<const float> data = out.Data();
  return {data.begin(), data.end()};
}

/// Forward through a freshly rebuilt copy — the "no stale cache possible"
/// reference (Clone re-runs NotifyWeightsChanged from the current weights).
std::vector<float> FreshForward(const Layer& layer, const Tensor& input) {
  return ForwardVec(*layer.Clone(), input);
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

TEST(KernelDispatch, ChooseKernelFormatPolicy) {
  // Dense weights: float unless quantization is on.
  static_assert(ChooseKernelFormat(1.0, 1.0, false) == KernelFormat::kFloat);
  static_assert(ChooseKernelFormat(1.0, 1.0, true) == KernelFormat::kInt8);
  // Deep element pruning: CSR wins regardless of the int8 knob (analytic
  // sparse factor = density 0.1 beats kInt8TimeFactor = 0.45).
  static_assert(ChooseKernelFormat(0.1, 0.1, false) == KernelFormat::kCsr);
  static_assert(ChooseKernelFormat(0.1, 0.1, true) == KernelFormat::kCsr);
  // Moderate block-aligned pruning: BSR float, but int8 overrides it while
  // density >= kInt8TimeFactor (quantized dense is cheaper than the sparse
  // run at that density).
  static_assert(ChooseKernelFormat(0.5, 1.0, false) == KernelFormat::kBsr);
  static_assert(ChooseKernelFormat(0.5, 1.0, true) == KernelFormat::kInt8);
  static_assert(ChooseKernelFormat(0.25, 1.0, true) == KernelFormat::kBsr);
  // Format -> float-engine mapping (int8 runs its own dense-shaped kernel).
  static_assert(ToSparseKernel(KernelFormat::kInt8) == SparseKernel::kDense);
  static_assert(ToSparseKernel(KernelFormat::kCsr) == SparseKernel::kCsr);
  // Analytic time factor mirrors the dispatch.
  static_assert(AnalyticQuantTimeFactor(1.0, false) == 1.0);
  static_assert(AnalyticQuantTimeFactor(1.0, true) == kInt8TimeFactor);
  static_assert(AnalyticQuantTimeFactor(0.1, true) == 0.1);
  static_assert(AnalyticQuantTimeFactor(0.5, true) == kInt8TimeFactor);
}

TEST(KernelDispatch, ConvFormatFollowsWeightChanges) {
  ConvParams params;
  params.out_channels = 32;
  params.kernel = 3;
  params.stride = 1;
  params.pad = 1;
  ConvLayer layer("conv", params, 16);
  Rng rng(91);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.1f, 0.05f);
  layer.NotifyWeightsChanged();
  Tensor input(Shape{1, 16, 9, 9});
  input.FillGaussian(rng, 0.0f, 1.0f);

  EXPECT_EQ(layer.Format(), KernelFormat::kFloat);
  const std::vector<float> f_float = ForwardVec(layer, input);

  // float -> int8: dense weights, quantization enabled.
  layer.SetInt8Execution(true);
  EXPECT_EQ(layer.Format(), KernelFormat::kInt8);
  EXPECT_EQ(layer.Kernel(), SparseKernel::kDense);
  EXPECT_FALSE(layer.UsesSparsePath());
  const std::vector<float> f_int8 = ForwardVec(layer, input);
  ExpectBitwiseEqual(f_int8, FreshForward(layer, input), "int8 vs rebuilt");
  EXPECT_NE(0, std::memcmp(f_int8.data(), f_float.data(),
                           f_int8.size() * sizeof(float)))
      << "quantized forward should not be bit-identical to float";

  // int8 -> csr: deep element pruning drops density below every crossover,
  // so the sparse engine wins even with int8 still enabled.
  pruning::MagnitudePruner magnitude;
  magnitude.Prune(layer, 0.92);
  EXPECT_TRUE(layer.Int8Execution());
  EXPECT_EQ(layer.Format(), KernelFormat::kCsr);
  ExpectBitwiseEqual(ForwardVec(layer, input), FreshForward(layer, input),
                     "csr after re-prune vs rebuilt");

  // csr -> int8: re-densify the weights; the stale CSR pack must go.
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.NotifyWeightsChanged();
  EXPECT_EQ(layer.Format(), KernelFormat::kInt8);
  const std::vector<float> f_redense = ForwardVec(layer, input);
  ExpectBitwiseEqual(f_redense, FreshForward(layer, input),
                     "re-quantized vs rebuilt");
  EXPECT_NE(0, std::memcmp(f_redense.data(), f_int8.data(),
                           f_redense.size() * sizeof(float)))
      << "new weights must produce a new quantized pack, not the cached one";

  // int8 -> bsr: block-aligned pruning past the int8 break-even.
  pruning::L1FilterPruner blocks(/*block_aligned=*/true);
  blocks.Prune(layer, 0.75);
  EXPECT_EQ(layer.Format(), KernelFormat::kBsr);
  ExpectBitwiseEqual(ForwardVec(layer, input), FreshForward(layer, input),
                     "bsr vs rebuilt");

  // back to float: switching quantization off re-dispatches without any
  // weight change (density 0.25 block-aligned stays BSR; then re-densify).
  layer.SetInt8Execution(false);
  EXPECT_EQ(layer.Format(), KernelFormat::kBsr);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.NotifyWeightsChanged();
  EXPECT_EQ(layer.Format(), KernelFormat::kFloat);
  ExpectBitwiseEqual(ForwardVec(layer, input), FreshForward(layer, input),
                     "float after full cycle vs rebuilt");
}

TEST(KernelDispatch, ConvInt8OverridesBsrAtModerateBlockPruning) {
  // Density 0.5 with full block fill: float dispatch says BSR, the int8
  // policy says the quantized dense kernel is cheaper (0.5 >= 0.45).
  ConvParams params;
  params.out_channels = 32;
  params.kernel = 3;
  ConvLayer layer("conv", params, 16);
  Rng rng(92);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.0f, 0.05f);
  layer.NotifyWeightsChanged();
  pruning::L1FilterPruner blocks(/*block_aligned=*/true);
  blocks.Prune(layer, 0.5);
  EXPECT_EQ(layer.Format(), KernelFormat::kBsr);
  layer.SetInt8Execution(true);
  EXPECT_EQ(layer.Format(), KernelFormat::kInt8);
  Tensor input(Shape{1, 16, 9, 9});
  input.FillGaussian(rng, 0.0f, 1.0f);
  ExpectBitwiseEqual(ForwardVec(layer, input), FreshForward(layer, input),
                     "int8-over-bsr vs rebuilt");
}

TEST(KernelDispatch, FcFormatFollowsWeightChanges) {
  FcLayer layer("fc", /*in_features=*/128, /*out_features=*/64);
  Rng rng(93);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.3f);
  layer.MutableBias().FillGaussian(rng, 0.05f, 0.02f);
  layer.NotifyWeightsChanged();
  // Batched and batch-1 inputs cover both fc execution paths.
  Tensor batched(Shape{3, 128, 1, 1});
  batched.FillGaussian(rng, 0.0f, 1.0f);
  Tensor single(Shape{1, 128, 1, 1});
  single.FillGaussian(rng, 0.0f, 1.0f);

  EXPECT_EQ(layer.Format(), KernelFormat::kFloat);
  layer.SetInt8Execution(true);
  EXPECT_EQ(layer.Format(), KernelFormat::kInt8);
  const std::vector<float> f_int8 = ForwardVec(layer, batched);
  ExpectBitwiseEqual(f_int8, FreshForward(layer, batched),
                     "fc int8 batched vs rebuilt");
  ExpectBitwiseEqual(ForwardVec(layer, single), FreshForward(layer, single),
                     "fc int8 batch-1 vs rebuilt");

  // Weight mutation must invalidate the quantized pack.
  for (float& w : layer.MutableWeights().Data()) w *= 2.0f;
  layer.NotifyWeightsChanged();
  EXPECT_EQ(layer.Format(), KernelFormat::kInt8);
  const std::vector<float> f_doubled = ForwardVec(layer, batched);
  ExpectBitwiseEqual(f_doubled, FreshForward(layer, batched),
                     "fc re-quantized vs rebuilt");
  EXPECT_NE(0, std::memcmp(f_doubled.data(), f_int8.data(),
                           f_doubled.size() * sizeof(float)))
      << "doubled weights must not reuse the old quantized pack";

  // int8 -> csr -> float.
  pruning::MagnitudePruner magnitude;
  magnitude.Prune(layer, 0.92);
  EXPECT_EQ(layer.Format(), KernelFormat::kCsr);
  ExpectBitwiseEqual(ForwardVec(layer, batched), FreshForward(layer, batched),
                     "fc csr vs rebuilt");
  layer.SetInt8Execution(false);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.3f);
  layer.NotifyWeightsChanged();
  EXPECT_EQ(layer.Format(), KernelFormat::kFloat);
  ExpectBitwiseEqual(ForwardVec(layer, batched), FreshForward(layer, batched),
                     "fc float after cycle vs rebuilt");
}

TEST(KernelDispatch, CloneCarriesInt8ModeAndMatchesBitwise) {
  ConvParams params;
  params.out_channels = 16;
  params.kernel = 3;
  ConvLayer layer("conv", params, 8);
  Rng rng(94);
  layer.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  layer.MutableBias().FillGaussian(rng, 0.0f, 0.05f);
  layer.NotifyWeightsChanged();
  layer.SetInt8Execution(true);
  const auto clone = layer.Clone();
  auto* conv_clone = dynamic_cast<ConvLayer*>(clone.get());
  ASSERT_NE(conv_clone, nullptr);
  EXPECT_TRUE(conv_clone->Int8Execution());
  EXPECT_EQ(conv_clone->Format(), KernelFormat::kInt8);
  Tensor input(Shape{1, 8, 7, 7});
  input.FillGaussian(rng, 0.0f, 1.0f);
  ExpectBitwiseEqual(ForwardVec(layer, input), ForwardVec(*conv_clone, input),
                     "clone vs original");
}

TEST(KernelDispatch, NetworkInt8TogglePropagatesToEveryWeightedLayer) {
  ModelConfig config;
  config.channel_scale = 1.0;
  config.num_classes = 10;
  config.weight_seed = 5;
  Network net = BuildTinyCnn(config);
  EXPECT_FALSE(net.Int8Execution());
  net.SetInt8Execution(true);
  EXPECT_TRUE(net.Int8Execution());
  int quantized = 0;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    Layer& layer = net.LayerAt(i);
    if (!layer.HasWeights()) continue;
    EXPECT_TRUE(layer.Int8Execution()) << layer.Name();
    ++quantized;
  }
  EXPECT_GT(quantized, 0);
  // The network clone must preserve the mode (the EvaluateInt8 contract).
  const Network copy = net.Clone();
  EXPECT_TRUE(copy.Int8Execution());
  net.SetInt8Execution(false);
  EXPECT_FALSE(net.Int8Execution());
  EXPECT_TRUE(copy.Int8Execution()) << "clone must be independent";
}

}  // namespace
}  // namespace ccperf::nn
