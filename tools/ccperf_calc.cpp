// ccperf_calc: enumerate the full architecture space — pruned/quantized
// variant × instance type × count × batch × on-demand/spot × checkpoint
// policy × degradation policy — through the analytic models and print the
// Pareto-efficient (or top-N by any registered metric) configurations.
//
// The space is streamed in blocks through the sorted-sweep frontier filter
// (core/enumerate.h), so the default ~1.1M-configuration sweep runs in
// seconds with memory O(frontier + block). Everything is seeded and
// deterministic: the same flags always print the same rows.
//
// Examples:
//   ccperf_calc                                  # frontier of the default space
//   ccperf_calc --sort car --top 10              # 10 cheapest-per-accuracy
//   ccperf_calc --no-filter --sort time_h --top 5
//   ccperf_calc --deadline-h 10 --budget-usd 300 --csv frontier.csv
//   ccperf_calc --list-metrics
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/sdc.h"
#include "cloud/simulator.h"
#include "common/check.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/accuracy_model.h"
#include "core/enumerate.h"
#include "pruning/variant_generator.h"

namespace {

using namespace ccperf;

struct CliOptions {
  std::string model = "caffenet";
  std::int64_t images = 1'000'000;
  std::size_t variants = 60;
  std::uint64_t seed = 2020;
  int max_count = 14;
  std::vector<std::int64_t> batches = {0, 32, 64, 128, 256, 512};
  double deadline_h = 0.0;   // 0 = unconstrained
  double budget_usd = 0.0;   // 0 = unconstrained
  bool spot = true;
  bool int8 = true;
  double preempt_rate = 0.05;  // per instance-hour
  std::string sort = "car";
  bool filter = true;
  std::size_t top = 20;  // 0 = all
  std::string csv;
  bool terse = false;
  bool serial = false;
  bool sdc = false;
  std::size_t block = 65536;
  bool use_top1 = false;
  bool list_metrics = false;
};

void PrintUsage() {
  std::cout <<
      "ccperf_calc — architecture-space explorer over the ICPP'20 models\n"
      "\n"
      "  --model NAME          caffenet | googlenet (default caffenet)\n"
      "  --images N            workload size in images (default 1000000)\n"
      "  --variants N          random pruning variants (default 60; the\n"
      "                        unpruned baseline is always added)\n"
      "  --seed N              variant-generator seed (default 2020)\n"
      "  --max-count N         fleet sizes 1..N per instance type (default 14)\n"
      "  --batches LIST        comma-separated batch sizes, 0 = auto\n"
      "                        (default 0,32,64,128,256,512)\n"
      "  --deadline-h H        drop configs slower than H hours (default off)\n"
      "  --budget-usd D        drop configs dearer than D dollars (default off)\n"
      "  --[no-]spot           include the spot purchase option (default on)\n"
      "  --[no-]int8           include int8-quantized variants (default on)\n"
      "  --preempt-rate R      spot preemptions per instance-hour (default 0.05)\n"
      "  --sort METRIC         order rows by a registered metric (default car)\n"
      "  --[no-]filter         keep only the Pareto frontier (default on);\n"
      "                        --no-filter streams the top-N by --sort instead\n"
      "  --top N               rows to print, 0 = all survivors (default 20)\n"
      "  --csv PATH            also write the printed rows as CSV\n"
      "  --terse               one line per row: <sort-value> <description>\n"
      "  --serial              force serial evaluation (parallel is bitwise\n"
      "                        identical; this is a determinism aid)\n"
      "  --sdc                 add the silent-data-corruption policy axis\n"
      "                        (off/none/abft/scrub/reexec) and rank rows by\n"
      "                        *delivered* accuracy — the headline accuracy\n"
      "                        discounted by undetected corruption\n"
      "  --block N             ids per evaluation block (default 65536)\n"
      "  --top1                use Top-1 instead of Top-5 as the accuracy axis\n"
      "  --list-metrics        print the metric registry and exit\n"
      "  --help                this text\n";
}

bool ParseInt64(const std::string& value, std::int64_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& value, double& out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty()) return false;
  out = v;
  return true;
}

bool ParseBatchList(const std::string& value, std::vector<std::int64_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string item = value.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::int64_t batch = 0;
    if (!ParseInt64(item, batch) || batch < 0) return false;
    out.push_back(batch);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

/// Parses argv into `options`; returns false (after printing the problem)
/// on a malformed command line. `exit_ok` signals --help/--list-metrics.
bool ParseArgs(int argc, char** argv, CliOptions& options, bool& exit_ok) {
  exit_ok = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string value;
    std::int64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      exit_ok = true;
      return true;
    } else if (arg == "--list-metrics") {
      options.list_metrics = true;
    } else if (arg == "--model") {
      if (!next(options.model)) return false;
    } else if (arg == "--images") {
      if (!next(value) || !ParseInt64(value, options.images) ||
          options.images < 1) {
        std::cerr << "--images needs a positive integer\n";
        return false;
      }
    } else if (arg == "--variants") {
      if (!next(value) || !ParseInt64(value, n) || n < 1) {
        std::cerr << "--variants needs a positive integer\n";
        return false;
      }
      options.variants = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      if (!next(value) || !ParseInt64(value, n) || n < 0) {
        std::cerr << "--seed needs a non-negative integer\n";
        return false;
      }
      options.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--max-count") {
      if (!next(value) || !ParseInt64(value, n) || n < 1) {
        std::cerr << "--max-count needs a positive integer\n";
        return false;
      }
      options.max_count = static_cast<int>(n);
    } else if (arg == "--batches") {
      if (!next(value) || !ParseBatchList(value, options.batches)) {
        std::cerr << "--batches needs a comma-separated list of sizes >= 0\n";
        return false;
      }
    } else if (arg == "--deadline-h") {
      if (!next(value) || !ParseDouble(value, options.deadline_h) ||
          options.deadline_h < 0.0) {
        std::cerr << "--deadline-h needs a non-negative number\n";
        return false;
      }
    } else if (arg == "--budget-usd") {
      if (!next(value) || !ParseDouble(value, options.budget_usd) ||
          options.budget_usd < 0.0) {
        std::cerr << "--budget-usd needs a non-negative number\n";
        return false;
      }
    } else if (arg == "--spot") {
      options.spot = true;
    } else if (arg == "--no-spot") {
      options.spot = false;
    } else if (arg == "--int8") {
      options.int8 = true;
    } else if (arg == "--no-int8") {
      options.int8 = false;
    } else if (arg == "--preempt-rate") {
      if (!next(value) || !ParseDouble(value, options.preempt_rate) ||
          options.preempt_rate < 0.0) {
        std::cerr << "--preempt-rate needs a non-negative number\n";
        return false;
      }
    } else if (arg == "--sort") {
      if (!next(options.sort)) return false;
    } else if (arg == "--filter") {
      options.filter = true;
    } else if (arg == "--no-filter") {
      options.filter = false;
    } else if (arg == "--top") {
      if (!next(value) || !ParseInt64(value, n) || n < 0) {
        std::cerr << "--top needs a non-negative integer\n";
        return false;
      }
      options.top = static_cast<std::size_t>(n);
    } else if (arg == "--csv") {
      if (!next(options.csv)) return false;
    } else if (arg == "--terse") {
      options.terse = true;
    } else if (arg == "--serial") {
      options.serial = true;
    } else if (arg == "--sdc") {
      options.sdc = true;
    } else if (arg == "--block") {
      if (!next(value) || !ParseInt64(value, n) || n < 1) {
        std::cerr << "--block needs a positive integer\n";
        return false;
      }
      options.block = static_cast<std::size_t>(n);
    } else if (arg == "--top1") {
      options.use_top1 = true;
    } else {
      std::cerr << "unknown flag '" << arg << "' (try --help)\n";
      return false;
    }
  }
  return true;
}

core::ArchitectureSpace BuildSpace(const cloud::InstanceCatalog& catalog,
                                   const cloud::ModelProfile& profile,
                                   const core::CalibratedAccuracyModel& accuracy,
                                   const CliOptions& options) {
  // Variant axis: the unpruned baseline + seeded random degrees of pruning
  // over the profile's weighted layers (the paper's "60 versions").
  std::vector<pruning::PrunePlan> plans;
  plans.emplace_back();  // no-op plan = the unpruned baseline
  Rng rng(options.seed);
  for (auto& plan : pruning::RandomVariants(profile.layer_order,
                                            options.variants, 0.6, 0.1, rng)) {
    plans.push_back(std::move(plan));
  }

  core::ArchitectureSpace space;
  space.AddVariants(
      core::BuildVariantSpecs(profile, accuracy, plans, options.int8));
  for (const auto& type : catalog.Types()) space.AddInstanceType(type.name);
  std::vector<int> counts;
  for (int c = 1; c <= options.max_count; ++c) counts.push_back(c);
  space.SetCounts(std::move(counts));
  space.SetBatches(options.batches);
  if (options.spot) {
    space.SetPurchaseOptions(
        {core::PurchaseOption::kOnDemand, core::PurchaseOption::kSpot});
  } else {
    space.SetPurchaseOptions({core::PurchaseOption::kOnDemand});
  }
  space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
  space.AddCheckpointOption(
      {.name = "periodic-300",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kPeriodic,
                  .interval_s = 300.0}});
  space.AddCheckpointOption(
      {.name = "adaptive",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kAdaptive}});
  space.AddDegradationOption({.name = "none"});
  space.AddDegradationOption({.name = "skip-frames",
                              .recompute_speedup = 2.0,
                              .accuracy_factor = 0.97});
  space.AddDegradationOption({.name = "half-res",
                              .recompute_speedup = 4.0,
                              .accuracy_factor = 0.90});
  if (options.sdc) {
    // Detection-policy axis: "off" keeps the detection-free baseline rows
    // in the same sweep so the frontier shows whether paying for detection
    // Pareto-dominates once accuracy is *delivered* accuracy.
    space.AddSdcOption({.name = "off", .policy = {}});
    space.AddSdcOption(
        {.name = "none", .policy = {.kind = cloud::SdcPolicyKind::kNone}});
    space.AddSdcOption(
        {.name = "abft", .policy = {.kind = cloud::SdcPolicyKind::kAbft}});
    space.AddSdcOption(
        {.name = "scrub", .policy = {.kind = cloud::SdcPolicyKind::kScrub}});
    space.AddSdcOption({.name = "reexec",
                        .policy = {.kind = cloud::SdcPolicyKind::kReexecSample,
                                   .sample_fraction = 0.1}});
  }
  return space;
}

/// --no-filter path: stream the space keeping the best `top` rows by the
/// sort metric (all feasible rows when top == 0 — only sensible on small
/// spaces). Uses the same slot-per-task block loop as EnumerateFrontier.
std::vector<core::FrontierPoint> StreamTopN(
    const core::ArchitectureEvaluator& evaluator,
    const core::EnumerationOptions& enum_options, const core::Metric& metric,
    std::size_t top, std::uint64_t& evaluated, std::uint64_t& feasible) {
  const std::uint64_t total = evaluator.Space().Size();
  std::vector<core::FrontierPoint> rows;
  std::vector<core::ArchMetrics> slot(enum_options.block);
  std::vector<char> keep(enum_options.block);
  const auto better = [&](const core::FrontierPoint& a,
                          const core::FrontierPoint& b) {
    const double va = metric.extract(a.metrics);
    const double vb = metric.extract(b.metrics);
    if (va != vb) return metric.lower_is_better ? va < vb : va > vb;
    return a.id < b.id;
  };
  for (std::uint64_t begin = 0; begin < total; begin += enum_options.block) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(enum_options.block, total - begin));
    const auto evaluate = [&](std::size_t i) {
      core::ArchMetrics m;
      const bool ok = evaluator.Evaluate(begin + i, enum_options.images, m) &&
                      m.seconds <= enum_options.deadline_s &&
                      m.cost_usd <= enum_options.budget_usd;
      keep[i] = ok ? 1 : 0;
      if (ok) slot[i] = m;
    };
    if (enum_options.serial) {
      ScopedSerial serial;
      ParallelFor(0, n, evaluate);
    } else {
      ParallelFor(0, n, evaluate);
    }
    evaluated += n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!keep[i]) continue;
      rows.push_back(core::FrontierPoint{begin + i, slot[i]});
      ++feasible;
    }
    if (top > 0 && rows.size() > 2 * top + 1024) {
      std::sort(rows.begin(), rows.end(), better);
      rows.resize(top);
    }
  }
  std::sort(rows.begin(), rows.end(), better);
  if (top > 0 && rows.size() > top) rows.resize(top);
  return rows;
}

int Run(const CliOptions& options) {
  const core::MetricRegistry& registry = core::MetricRegistry::Standard();
  if (options.list_metrics) {
    Table table({"metric", "direction", "description"});
    for (const auto& m : registry.All()) {
      table.AddRow({m.name, m.lower_is_better ? "min" : "max", m.description});
    }
    std::cout << table.Render();
    return 0;
  }
  const core::Metric& sort_metric = registry.Find(options.sort);

  const bool is_caffenet = options.model == "caffenet";
  if (!is_caffenet && options.model != "googlenet") {
    std::cerr << "unknown model '" << options.model
              << "' (expected caffenet or googlenet)\n";
    return 1;
  }
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile =
      is_caffenet ? cloud::CaffeNetProfile() : cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      is_caffenet ? core::CalibratedAccuracyModel::CaffeNet()
                  : core::CalibratedAccuracyModel::GoogLeNet();

  const core::ArchitectureSpace space =
      BuildSpace(catalog, profile, accuracy, options);
  const core::ArchitectureEvaluator evaluator(
      sim, space, RatePerHour(options.preempt_rate));

  core::EnumerationOptions enum_options;
  enum_options.images = options.images;
  if (options.deadline_h > 0.0) {
    enum_options.deadline_s = ToSeconds(Hours(options.deadline_h));
  }
  if (options.budget_usd > 0.0) {
    enum_options.budget_usd = Usd(options.budget_usd);
  }
  enum_options.block = options.block;
  enum_options.serial = options.serial;
  enum_options.use_top5 = !options.use_top1;
  enum_options.use_delivered = options.sdc;

  Timer timer;
  std::vector<core::FrontierPoint> rows;
  std::uint64_t evaluated = 0;
  std::uint64_t feasible = 0;
  std::size_t peak_candidates = 0;
  if (options.filter) {
    core::EnumerationResult result =
        core::EnumerateFrontier(evaluator, enum_options);
    evaluated = result.evaluated;
    feasible = result.feasible;
    peak_candidates = result.peak_candidates;
    rows = std::move(result.frontier);
    std::sort(rows.begin(), rows.end(),
              [&](const core::FrontierPoint& a, const core::FrontierPoint& b) {
                const double va = sort_metric.extract(a.metrics);
                const double vb = sort_metric.extract(b.metrics);
                if (va != vb) {
                  return sort_metric.lower_is_better ? va < vb : va > vb;
                }
                return a.id < b.id;
              });
    if (options.top > 0 && rows.size() > options.top) rows.resize(options.top);
  } else {
    rows = StreamTopN(evaluator, enum_options, sort_metric, options.top,
                      evaluated, feasible);
  }
  const double elapsed_s = timer.ElapsedSeconds();

  if (!options.terse) {
    std::cout << "space: " << space.Size() << " configurations ("
              << space.Variants().size() << " variants x "
              << space.TypeNames().size() << " types x "
              << space.Counts().size() << " counts x "
              << space.Batches().size() << " batches x "
              << space.PurchaseOptions().size() << " purchase x "
              << space.CheckpointOptions().size() << " ckpt x "
              << space.DegradationOptions().size() << " degr x "
              << space.SdcOptions().size() << " sdc)\n"
              << "evaluated " << evaluated << " ids, " << feasible
              << " feasible, " << rows.size() << " printed in "
              << Table::Num(elapsed_s, 2) << " s";
    if (options.filter) {
      std::cout << " (peak candidate rows: " << peak_candidates << ")";
    }
    std::cout << "\n\n";
  }

  if (options.terse) {
    for (const auto& row : rows) {
      std::cout << Table::Num(sort_metric.extract(row.metrics), 4) << "\t"
                << space.Describe(row.id) << "\n";
    }
  } else if (options.sdc) {
    Table table({"configuration", "time (h)", "cost ($)", "Top-5 (%)",
                 "dlvd-1 (%)", "escape", "det-ovh", options.sort});
    for (const auto& row : rows) {
      const auto& m = row.metrics;
      table.AddRow({space.Describe(row.id),
                    Table::Num(ToHours(m.seconds).value(), 2),
                    Table::Num(m.cost_usd.value(), 2),
                    Table::Num(m.top5 * 100.0, 1),
                    Table::Num(m.delivered_top1 * 100.0, 1),
                    Table::Num(m.sdc_escape_rate, 4),
                    Table::Num(m.detection_overhead, 3),
                    Table::Num(sort_metric.extract(m), 4)});
    }
    std::cout << table.Render();
  } else {
    Table table({"configuration", "time (h)", "cost ($)", "Top-5 (%)",
                 "Top-1 (%)", "goodput", "risk", options.sort});
    for (const auto& row : rows) {
      const auto& m = row.metrics;
      table.AddRow({space.Describe(row.id),
                    Table::Num(ToHours(m.seconds).value(), 2),
                    Table::Num(m.cost_usd.value(), 2),
                    Table::Num(m.top5 * 100.0, 1),
                    Table::Num(m.top1 * 100.0, 1), Table::Num(m.goodput, 3),
                    Table::Num(m.interruption_risk, 3),
                    Table::Num(sort_metric.extract(m), 4)});
    }
    std::cout << table.Render();
  }

  if (!options.csv.empty()) {
    std::vector<std::string> header = {"id",   "configuration", "seconds",
                                       "cost_usd", "top1",      "top5",
                                       "goodput",  "interruption_risk"};
    if (options.sdc) {
      header.insert(header.end(), {"delivered_top1", "delivered_top5",
                                   "sdc_escape_rate", "detection_overhead"});
    }
    CsvWriter csv(options.csv, header);
    for (const auto& row : rows) {
      const auto& m = row.metrics;
      std::vector<std::string> fields = {
          std::to_string(row.id),      space.Describe(row.id),
          Table::Num(m.seconds.value(), 3), Table::Num(m.cost_usd.value(), 4),
          Table::Num(m.top1, 4),       Table::Num(m.top5, 4),
          Table::Num(m.goodput, 4),    Table::Num(m.interruption_risk, 4)};
      if (options.sdc) {
        fields.insert(fields.end(), {Table::Num(m.delivered_top1, 4),
                                     Table::Num(m.delivered_top5, 4),
                                     Table::Num(m.sdc_escape_rate, 6),
                                     Table::Num(m.detection_overhead, 4)});
      }
      csv.AddRow(fields);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool exit_ok = false;
  if (!ParseArgs(argc, argv, options, exit_ok)) return 1;
  if (exit_ok) return 0;
  try {
    return Run(options);
  } catch (const ccperf::CheckError& e) {
    std::cerr << "ccperf_calc: " << e.what() << "\n";
    return 1;
  }
}
