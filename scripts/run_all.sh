#!/usr/bin/env bash
# Build everything, run the full test suite, every figure/table bench and
# every example — the repository's one-shot verification entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja \
  -DCCPERF_BUILD_TESTS=ON -DCCPERF_BUILD_BENCH=ON -DCCPERF_BUILD_EXAMPLES=ON \
  -DCCPERF_BUILD_TOOLS=ON
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== static analysis =="
scripts/run_static_analysis.sh build      # clang-tidy (skips w/o the tool)
scripts/check_kernel_odr.sh build         # ISA/ODR leak check on kernel TUs
scripts/check_determinism_lint.sh         # banned nondeterminism constructs
scripts/check_units_lint.sh               # raw-double unit leaks in public headers

echo "== benches (paper tables & figures) =="
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "--- $b"
  "$b"
done

echo "== tools =="
# Full-space enumeration smoke: >= 10^6 configs through the streamed sweep
# engine (the scale gates live in bench_ext_enumeration_scale above).
build/tools/ccperf_calc --top 10
build/tools/ccperf_calc --no-spot --variants 10 --sort tar --terse --top 5
build/tools/ccperf_calc --list-metrics
# SDC axis smoke: rank by *delivered* accuracy under silent-corruption
# policies (off/none/abft/scrub/reexec — cloud/sdc.h).
build/tools/ccperf_calc --sdc --variants 5 --top 5

echo "== examples =="
build/examples/quickstart
build/examples/sweet_spot_finder caffenet
build/examples/pareto_explorer caffenet 500000 6 100
build/examples/social_media_filter 100000000
build/examples/model_compressor
build/examples/calibration_workflow
build/examples/train_and_prune 6
build/examples/fault_tolerant_serving
build/examples/chaos_drill
build/examples/quantized_serving

echo "ALL GREEN"
