#!/usr/bin/env bash
# ODR/ISA-leak checker for the kernel translation units.
#
# gemm.cpp / sparse_kernels.cpp are built with CCPERF_KERNEL_FLAGS
# (-march=native -funroll-loops); every other TU uses the portable flag
# set. If a weak (vague-linkage) symbol — an inline function, template
# instantiation, or inline variable — is emitted both by a kernel TU and
# by a generic TU, the linker keeps ONE copy, chosen arbitrarily. That
# either leaks AVX-512/AVX code into generic call sites (illegal
# instruction on older hosts) or silently discards the tuned copy. Both
# are invisible at compile time, so we police it on the built objects:
#
#   1. No weak symbol defined in a kernel TU may also be defined in any
#      generic TU (modulo the structural allowlist — EH scaffolding that
#      carries no ISA-specific code).
#   2. ccperf::kernel:: (kernel_tile.h) is a TU-local contract: its
#      symbols must not appear — defined OR referenced — in generic TUs,
#      because the packed-buffer layout it describes is keyed off the
#      ISA macros of the including TU.
#
# Kernel sources are discovered from the CCPERF_KERNEL_FLAGS
# set_source_files_properties() calls in src/*/CMakeLists.txt — ALL such
# calls per file, so adding a kernel TU (even via a second call, as PR 9
# almost did for quant.cpp) automatically extends the check. Non-kernel
# tensor TUs (abft.cpp, corruption.cpp, ...) build with portable flags on
# purpose: their checksum math must run identically on every host, so they
# belong on the generic side of this check, not the kernel side.
#
# Usage: scripts/check_kernel_odr.sh [build-dir]   (or BUILD_DIR env)
#        scripts/check_kernel_odr.sh --selftest
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${BUILD_DIR:-build}}"
ALLOWLIST="scripts/kernel_odr_allowlist.txt"

# --- selftest: seed a weak-symbol leak and assert the nm pipeline sees it --
if [ "${1:-}" = "--selftest" ]; then
  if ! command -v nm > /dev/null 2>&1 || ! command -v c++ > /dev/null 2>&1; then
    echo "check_kernel_odr: selftest needs nm + c++ — SKIPPED"
    exit 0
  fi
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  cat > "$tmp/leak.h" <<'EOF'
#pragma once
inline int seeded_odr_leak(int x) { return x * 2; }
EOF
  printf '#include "leak.h"\nint ka(int x) { return seeded_odr_leak(x); }\n' \
    > "$tmp/kernel_tu.cpp"
  printf '#include "leak.h"\nint gb(int x) { return seeded_odr_leak(x); }\n' \
    > "$tmp/generic_tu.cpp"
  # -fkeep-inline-functions forces an out-of-line (weak) copy even when
  # the optimizer would inline the call away.
  c++ -std=c++20 -O0 -fkeep-inline-functions \
    -c "$tmp/kernel_tu.cpp" -o "$tmp/kernel_tu.o"
  c++ -std=c++20 -O0 -fkeep-inline-functions \
    -c "$tmp/generic_tu.cpp" -o "$tmp/generic_tu.o"
  nm --defined-only "$tmp/kernel_tu.o" | awk '$2 ~ /^[WVu]$/ {print $3}' |
    sort -u > "$tmp/kernel.syms"
  nm --defined-only "$tmp/generic_tu.o" |
    awk '$2 ~ /^[WVuTtDdBbRr]$/ {print $3}' | sort -u > "$tmp/generic.syms"
  if ! comm -12 "$tmp/kernel.syms" "$tmp/generic.syms" |
       grep -q seeded_odr_leak; then
    echo "check_kernel_odr: SELFTEST FAIL — seeded weak-symbol leak not" \
         "detected; the nm classification or comm pipeline regressed"
    exit 1
  fi
  echo "check_kernel_odr: selftest OK — seeded weak-symbol leak caught"
  exit 0
fi

if ! command -v nm > /dev/null 2>&1; then
  echo "check_kernel_odr: nm not found — SKIPPED"
  exit 0
fi
if [ ! -d "$BUILD_DIR" ]; then
  echo "check_kernel_odr: build dir '$BUILD_DIR' missing (build first) — SKIPPED"
  exit 0
fi

# --- discover kernel sources from the build system -------------------------
kernel_sources=()
for cml in src/*/CMakeLists.txt; do
  grep -q CCPERF_KERNEL_FLAGS "$cml" || continue
  # Join lines so each multi-line set_source_files_properties(...) call can
  # be matched as one string; ${CCPERF_KERNEL_FLAGS} contains no ')'.
  # grep -o yields EVERY matching call — a second call in the same file
  # (e.g. a kernel TU added later with its own flag block) used to be
  # dropped by a head -1 here, silently exempting it from the check.
  calls=$(tr '\n' ' ' < "$cml" |
          grep -o 'set_source_files_properties([^)]*CCPERF_KERNEL_FLAGS[^)]*)' || true)
  [ -n "$calls" ] || continue
  while IFS= read -r call; do
    for word in $call; do
      case "$word" in
        *.cpp) kernel_sources+=("$(dirname "$cml")/${word#set_source_files_properties(}") ;;
      esac
    done
  done <<< "$calls"
done
if [ "${#kernel_sources[@]}" -eq 0 ]; then
  echo "check_kernel_odr: FAIL — no CCPERF_KERNEL_FLAGS sources found;" \
       "the kernel flag plumbing moved and this script must follow it"
  exit 1
fi

# --- map sources to built objects ------------------------------------------
kernel_objects=()
for src in "${kernel_sources[@]}"; do
  name=$(basename "$src")
  obj=$(find "$BUILD_DIR/src" -name "${name}.o" -path "*CMakeFiles*" | head -1)
  if [ -z "$obj" ]; then
    echo "check_kernel_odr: object for $src not built — SKIPPED"
    exit 0
  fi
  kernel_objects+=("$obj")
done

generic_objects=$(find "$BUILD_DIR/src" -name '*.cpp.o' -path "*CMakeFiles*" |
                  grep -v -F -f <(printf '%s\n' "${kernel_objects[@]}"))

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Weak-ish definitions: W/V (weak), u (GNU unique). Lowercase w is an
# undefined weak reference, not a definition.
weak_defs() { nm --defined-only "$1" | awk '$2 ~ /^[WVu]$/ {print $3}'; }

allow() {
  if [ -f "$ALLOWLIST" ]; then
    grep -v -E '^\s*(#|$)' "$ALLOWLIST" || true
  fi
}

status=0

# --- check 1: weak-symbol intersection kernel TU x generic TUs -------------
# shellcheck disable=SC2086  # generic_objects is a newline list of paths
nm --defined-only $generic_objects | awk '$2 ~ /^[WVuTtDdBbRr]$/ {print $3}' |
  sort -u > "$tmp/generic.syms"
for obj in "${kernel_objects[@]}"; do
  weak_defs "$obj" | sort -u > "$tmp/kernel.syms"
  allow | sort -u > "$tmp/allow.syms"
  shared=$(comm -12 "$tmp/kernel.syms" "$tmp/generic.syms" |
           comm -23 - "$tmp/allow.syms" || true)
  if [ -n "$shared" ]; then
    status=1
    echo "check_kernel_odr: FAIL — weak symbols defined in kernel TU $obj"
    echo "  are also defined by generic TUs; the linker will merge them"
    echo "  and may leak -march=native code into generic call sites:"
    printf '%s\n' "$shared" | c++filt | sed 's/^/    /'
  fi
done

# --- check 2: ccperf::kernel:: must stay inside kernel TUs -----------------
# Mangled prefix for namespace ccperf::kernel.
leaks=$(nm $generic_objects 2>/dev/null | grep -o '_ZN6ccperf6kernel[A-Za-z0-9_]*' |
        sort -u || true)
if [ -n "$leaks" ]; then
  status=1
  echo "check_kernel_odr: FAIL — ccperf::kernel:: symbols appear in generic"
  echo "  TUs; kernel_tile.h layouts are keyed off the including TU's ISA"
  echo "  macros and must never cross the kernel TU boundary:"
  printf '%s\n' "$leaks" | c++filt | sed 's/^/    /'
fi

if [ "$status" -eq 0 ]; then
  echo "check_kernel_odr: OK — ${#kernel_objects[@]} kernel TU(s) share no" \
       "weak symbols with generic TUs; ccperf::kernel:: is TU-local"
fi
exit "$status"
