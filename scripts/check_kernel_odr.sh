#!/usr/bin/env bash
# ODR/ISA-leak checker for the kernel translation units.
#
# gemm.cpp / sparse_kernels.cpp are built with CCPERF_KERNEL_FLAGS
# (-march=native -funroll-loops); every other TU uses the portable flag
# set. If a weak (vague-linkage) symbol — an inline function, template
# instantiation, or inline variable — is emitted both by a kernel TU and
# by a generic TU, the linker keeps ONE copy, chosen arbitrarily. That
# either leaks AVX-512/AVX code into generic call sites (illegal
# instruction on older hosts) or silently discards the tuned copy. Both
# are invisible at compile time, so we police it on the built objects:
#
#   1. No weak symbol defined in a kernel TU may also be defined in any
#      generic TU (modulo the structural allowlist — EH scaffolding that
#      carries no ISA-specific code).
#   2. ccperf::kernel:: (kernel_tile.h) is a TU-local contract: its
#      symbols must not appear — defined OR referenced — in generic TUs,
#      because the packed-buffer layout it describes is keyed off the
#      ISA macros of the including TU.
#
# Kernel sources are discovered from the CCPERF_KERNEL_FLAGS
# set_source_files_properties() calls in src/*/CMakeLists.txt, so adding
# a kernel TU automatically extends the check.
#
# Usage: scripts/check_kernel_odr.sh [build-dir]   (or BUILD_DIR env)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${BUILD_DIR:-build}}"
ALLOWLIST="scripts/kernel_odr_allowlist.txt"

if ! command -v nm > /dev/null 2>&1; then
  echo "check_kernel_odr: nm not found — SKIPPED"
  exit 0
fi
if [ ! -d "$BUILD_DIR" ]; then
  echo "check_kernel_odr: build dir '$BUILD_DIR' missing (build first) — SKIPPED"
  exit 0
fi

# --- discover kernel sources from the build system -------------------------
kernel_sources=()
for cml in src/*/CMakeLists.txt; do
  grep -q CCPERF_KERNEL_FLAGS "$cml" || continue
  # Join lines so the multi-line set_source_files_properties(...) call can
  # be matched as one string; ${CCPERF_KERNEL_FLAGS} contains no ')'.
  call=$(tr '\n' ' ' < "$cml" |
         grep -o 'set_source_files_properties([^)]*CCPERF_KERNEL_FLAGS[^)]*)' |
         head -1 || true)
  [ -n "$call" ] || continue
  for word in $call; do
    case "$word" in
      *.cpp) kernel_sources+=("$(dirname "$cml")/${word#set_source_files_properties(}") ;;
    esac
  done
done
if [ "${#kernel_sources[@]}" -eq 0 ]; then
  echo "check_kernel_odr: FAIL — no CCPERF_KERNEL_FLAGS sources found;" \
       "the kernel flag plumbing moved and this script must follow it"
  exit 1
fi

# --- map sources to built objects ------------------------------------------
kernel_objects=()
for src in "${kernel_sources[@]}"; do
  name=$(basename "$src")
  obj=$(find "$BUILD_DIR/src" -name "${name}.o" -path "*CMakeFiles*" | head -1)
  if [ -z "$obj" ]; then
    echo "check_kernel_odr: object for $src not built — SKIPPED"
    exit 0
  fi
  kernel_objects+=("$obj")
done

generic_objects=$(find "$BUILD_DIR/src" -name '*.cpp.o' -path "*CMakeFiles*" |
                  grep -v -F -f <(printf '%s\n' "${kernel_objects[@]}"))

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Weak-ish definitions: W/V (weak), u (GNU unique). Lowercase w is an
# undefined weak reference, not a definition.
weak_defs() { nm --defined-only "$1" | awk '$2 ~ /^[WVu]$/ {print $3}'; }

allow() {
  if [ -f "$ALLOWLIST" ]; then
    grep -v -E '^\s*(#|$)' "$ALLOWLIST" || true
  fi
}

status=0

# --- check 1: weak-symbol intersection kernel TU x generic TUs -------------
# shellcheck disable=SC2086  # generic_objects is a newline list of paths
nm --defined-only $generic_objects | awk '$2 ~ /^[WVuTtDdBbRr]$/ {print $3}' |
  sort -u > "$tmp/generic.syms"
for obj in "${kernel_objects[@]}"; do
  weak_defs "$obj" | sort -u > "$tmp/kernel.syms"
  allow | sort -u > "$tmp/allow.syms"
  shared=$(comm -12 "$tmp/kernel.syms" "$tmp/generic.syms" |
           comm -23 - "$tmp/allow.syms" || true)
  if [ -n "$shared" ]; then
    status=1
    echo "check_kernel_odr: FAIL — weak symbols defined in kernel TU $obj"
    echo "  are also defined by generic TUs; the linker will merge them"
    echo "  and may leak -march=native code into generic call sites:"
    printf '%s\n' "$shared" | c++filt | sed 's/^/    /'
  fi
done

# --- check 2: ccperf::kernel:: must stay inside kernel TUs -----------------
# Mangled prefix for namespace ccperf::kernel.
leaks=$(nm $generic_objects 2>/dev/null | grep -o '_ZN6ccperf6kernel[A-Za-z0-9_]*' |
        sort -u || true)
if [ -n "$leaks" ]; then
  status=1
  echo "check_kernel_odr: FAIL — ccperf::kernel:: symbols appear in generic"
  echo "  TUs; kernel_tile.h layouts are keyed off the including TU's ISA"
  echo "  macros and must never cross the kernel TU boundary:"
  printf '%s\n' "$leaks" | c++filt | sed 's/^/    /'
fi

if [ "$status" -eq 0 ]; then
  echo "check_kernel_odr: OK — ${#kernel_objects[@]} kernel TU(s) share no" \
       "weak symbols with generic TUs; ccperf::kernel:: is TU-local"
fi
exit "$status"
