#!/usr/bin/env bash
# Recalibrate the sparse/dense dispatch thresholds on this machine.
#
# Rebuilds and runs bench_ablation_sparse_vs_dense, which sweeps the three
# kernels (packed dense GEMM, CSR, 4x4 BSR) over the conv2-shaped SpMM
# across sparsity levels and structures (element, filter, block-aligned),
# then copies the refreshed CSVs into bench_results/:
#
#   ablation_sparse_vs_dense.csv  — the full timing grid
#   sparse_crossover.csv          — per-structure measured crossover points
#
# Compare sparse_crossover.csv against kCsrCrossoverDensity /
# kBsrCrossoverDensity in src/tensor/sparse_dispatch.h and update the
# constants (rounded conservatively toward dense) if the hardware moved
# them. The committed values were measured on the reference build machine;
# a materially different ISA or cache hierarchy warrants recalibration.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCCPERF_BUILD_BENCH=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_ablation_sparse_vs_dense

# The bench writes CSVs under ./bench_results relative to its cwd.
(cd "$BUILD_DIR/bench" && ./bench_ablation_sparse_vs_dense)

mkdir -p bench_results
cp "$BUILD_DIR/bench/bench_results/ablation_sparse_vs_dense.csv" bench_results/
cp "$BUILD_DIR/bench/bench_results/sparse_crossover.csv" bench_results/

echo
echo "Measured crossovers (bench_results/sparse_crossover.csv):"
awk -F, '{ printf "%-10s %-8s %-15s %s\n", $1, $2, $3, $4 }' \
  bench_results/sparse_crossover.csv
echo
echo "Dispatch constants currently compiled in:"
grep -E "kCsrCrossoverDensity|kBsrCrossoverDensity|kBsrMinBlockFill" \
  src/tensor/sparse_dispatch.h | grep "inline constexpr"
