#!/usr/bin/env bash
# Configure and run the test suite under AddressSanitizer + UBSan in a
# separate build tree (build-sanitize/). Any leak, overflow, or UB aborts
# the run — this is the memory-safety gate for the fault-injection and
# serving simulation paths.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCCPERF_SANITIZE=ON \
  -DCCPERF_BUILD_TESTS=ON -DCCPERF_BUILD_BENCH=OFF -DCCPERF_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so the first sanitizer report fails the suite loudly.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "SANITIZERS GREEN"
