#!/usr/bin/env bash
# Configure and run the test suite under sanitizers, each in its own build
# tree. Stage 1 (build-sanitize/): AddressSanitizer + UBSan over the full
# suite — the memory-safety gate. Stage 2 (build-tsan/): ThreadSanitizer
# over the kernels and integration labels (the code that actually touches
# the thread pool), skipped with a notice if the toolchain lacks TSan.
# Any report aborts the run.
#
# The static pass (scripts/run_static_analysis.sh + check_kernel_odr.sh +
# check_determinism_lint.sh + check_units_lint.sh, or `scripts/run_tests.sh
# static`) is the cheaper first gate: Clang thread-safety annotations catch
# lock misuse at compile time that TSan can only catch if a test happens to
# race, and the units lint catches dimension mixups no sanitizer sees at
# all (they are well-defined arithmetic on the wrong number).
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast on unit-layer regressions before paying for two sanitizer
# builds: the grep lint plus its own selftest are near-free.
scripts/check_units_lint.sh
scripts/check_units_lint.sh --selftest

BUILD_DIR=build-sanitize

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCCPERF_SANITIZE=ON \
  -DCCPERF_BUILD_TESTS=ON -DCCPERF_BUILD_BENCH=OFF -DCCPERF_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so the first sanitizer report fails the suite loudly.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

# Robustness suites first (fault replay, snapshot corruption, fuzzing — the
# sdc-labeled silent-corruption suites ride along under this label): they
# are the tests most likely to walk into UB, so surface their reports
# before the long tail of the full suite.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L robustness

echo "ASAN+UBSAN ROBUSTNESS GREEN"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -LE robustness

echo "ASAN+UBSAN GREEN"

# --- Stage 2: ThreadSanitizer over the threaded kernels ---------------------
TSAN_PROBE=$(mktemp -d)
trap 'rm -rf "$TSAN_PROBE"' EXIT
echo 'int main() { return 0; }' > "$TSAN_PROBE/probe.cpp"
if ! ${CXX:-c++} -fsanitize=thread "$TSAN_PROBE/probe.cpp" \
     -o "$TSAN_PROBE/probe" 2>/dev/null || ! "$TSAN_PROBE/probe"; then
  echo "TSAN UNAVAILABLE in this toolchain — skipping thread-race stage"
  echo "SANITIZERS GREEN"
  exit 0
fi

TSAN_DIR=build-tsan

cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCCPERF_SANITIZE_THREAD=ON \
  -DCCPERF_BUILD_TESTS=ON -DCCPERF_BUILD_BENCH=OFF -DCCPERF_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_DIR" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1"

# Only the labels that exercise the thread pool; the full suite under TSan
# is prohibitively slow and the remainder is single-threaded by design.
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" \
  -L 'kernels|integration'

echo "TSAN GREEN"
echo "SANITIZERS GREEN"
