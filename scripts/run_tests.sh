#!/usr/bin/env bash
# Build and run the test suite, optionally restricted to a CTest label.
#
#   scripts/run_tests.sh            # full suite
#   scripts/run_tests.sh kernels    # math kernels, threading, layer primitives
#   scripts/run_tests.sh cloud      # cloud cost/latency model + simulator
#   scripts/run_tests.sh integration
#   scripts/run_tests.sh fuzz
#   scripts/run_tests.sh robustness # fault replay, snapshot/restore, fuzzing
#   scripts/run_tests.sh sdc        # silent-data-corruption layer: ABFT
#                                   # kernels, weight-CRC scrubbing, SDC
#                                   # policy model + serving/enumeration
#   scripts/run_tests.sh static     # lint gates: clang-tidy, kernel ODR/ISA
#                                   # leak check, determinism lint, units
#                                   # lint, units negative-compile proof
#
# Labels are assigned in tests/CMakeLists.txt via
# ccperf_add_test(... LABELS x y); a suite may carry several. The static
# label wraps the scripts/{run_static_analysis,check_kernel_odr,
# check_determinism_lint,check_units_lint}.sh gates as ctest entries, plus
# the common/units.h negative-compile proof stamped at configure time.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DCCPERF_BUILD_TESTS=ON
cmake --build build -j "$(nproc)"

if [[ -n "$LABEL" ]]; then
  ctest --test-dir build --output-on-failure -j "$(nproc)" -L "$LABEL"
else
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi
