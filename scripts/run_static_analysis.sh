#!/usr/bin/env bash
# clang-tidy gate: runs the project lint profile (.clang-tidy) over every
# TU in src/ against the exported compilation database and fails on any
# finding (WarningsAsErrors: '*').
#
# Self-gating: toolchains without clang-tidy (e.g. the GCC-only CI image)
# print "... SKIPPED" and exit 0 — the ctest entry (label: static) maps
# that to a skipped test via SKIP_REGULAR_EXPRESSION. The grep/nm lints
# (check_determinism_lint.sh, check_kernel_odr.sh) still run everywhere.
#
# Usage: scripts/run_static_analysis.sh [build-dir]   (or BUILD_DIR env)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${BUILD_DIR:-build}}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_static_analysis: clang-tidy not found — SKIPPED"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_static_analysis: $BUILD_DIR/compile_commands.json missing" \
       "(configure with CMAKE_EXPORT_COMPILE_COMMANDS, the default) — SKIPPED"
  exit 0
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_static_analysis: clang-tidy over ${#sources[@]} TUs (profile: .clang-tidy)"

jobs="$(nproc 2>/dev/null || echo 4)"
if printf '%s\n' "${sources[@]}" |
     xargs -P "$jobs" -n 4 clang-tidy -p "$BUILD_DIR" --quiet; then
  echo "run_static_analysis: OK — no findings"
else
  echo "run_static_analysis: FAIL — fix the findings above or, for a"
  echo "  deliberate exception, add a NOLINT(check-name) with a reason"
  exit 1
fi
