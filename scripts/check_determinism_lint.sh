#!/usr/bin/env bash
# Determinism lint: greps src/, tools/ and bench/ for constructs that break
# the repository's bitwise-reproducibility contract (ROADMAP: same seed ->
# same bytes). Benches are covered too: their CSV artifacts are diffed
# across runs, so a wall-clock or hash-order leak there is just as fatal.
#
# Banned in src/, tools/ and bench/:
#   std::rand / srand / bare rand()   — hidden global RNG state; use
#                                       common/rng.h (seeded, counter-based)
#   std::random_device                — nondeterministic hardware entropy
#   system_clock / high_resolution_   — wall-clock values leak into results
#   clock / time() / gettimeofday /     and make runs time-dependent
#   clock_gettime / localtime / ...     (steady_clock in common/timer.h is
#                                       fine: it only measures durations)
#   unordered_map / unordered_set     — iteration order is
#                                       implementation-defined; feeding it
#                                       into numeric accumulation makes
#                                       results libstdc++-version-dependent.
#                                       Use std::map / sorted vectors.
#
# Findings are fatal unless listed in scripts/determinism_lint_allowlist.txt
# (format: <path>:<pattern-id>, '#' comments). Keep the allowlist empty-ish:
# every entry is a standing exception that needs a justification comment.
#
# Usage: scripts/check_determinism_lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST="scripts/determinism_lint_allowlist.txt"

# pattern-id|egrep-regex  (the id is what allowlist entries reference)
patterns=(
  'std-rand|std::rand'
  'srand|(^|[^A-Za-z0-9_])srand[[:space:]]*\('
  'bare-rand|(^|[^A-Za-z0-9_:])rand[[:space:]]*\('
  'random-device|random_device'
  'system-clock|system_clock'
  'high-res-clock|high_resolution_clock'
  'c-time|(^|[^A-Za-z0-9_])time[[:space:]]*\([[:space:]]*(NULL|nullptr|0|&|\))'
  'gettimeofday|gettimeofday'
  'clock-gettime|clock_gettime'
  'localtime|(^|[^A-Za-z0-9_])(localtime|gmtime|ctime)[[:space:]]*\('
  'unordered|unordered_(map|set|multimap|multiset)'
)

allowed() {  # allowed <file> <pattern-id>
  [ -f "$ALLOWLIST" ] || return 1
  grep -v -E '^\s*(#|$)' "$ALLOWLIST" | grep -q -F -x "$1:$2"
}

status=0
for entry in "${patterns[@]}"; do
  id="${entry%%|*}"
  regex="${entry#*|}"
  # shellcheck disable=SC2046
  hits=$(grep -rnE "$regex" src tools bench --include='*.cpp' --include='*.h' || true)
  [ -n "$hits" ] || continue
  while IFS= read -r hit; do
    file="${hit%%:*}"
    if allowed "$file" "$id"; then
      continue
    fi
    if [ "$status" -eq 0 ]; then
      echo "check_determinism_lint: FAIL — banned constructs in src/, tools/ or bench/"
      echo "  (see script header for the rationale per pattern)"
    fi
    status=1
    echo "  [$id] $hit"
  done <<< "$hits"
done

if [ "$status" -eq 0 ]; then
  echo "check_determinism_lint: OK — src/, tools/ and bench/ are free of" \
       "banned nondeterminism sources (${#patterns[@]} patterns checked)"
fi
exit "$status"
