#!/usr/bin/env bash
# Units lint: greps the public headers of the cloud and core layers for
# fresh raw-double declarations whose names carry a unit suffix
# (_hours/_seconds/_usd/_per_hour). Those are exactly the values the strong
# unit layer (src/common/units.h) types as Hours/Seconds/Usd/UsdPerHour —
# a new `double deadline_hours` parameter reintroduces the silent 3600x /
# currency mixups the Quantity wrappers exist to reject at compile time.
#
# Scope: src/cloud/*.h and src/core/*.h only — the package boundary where
# callers hand values in. Sim-internal dynamics (serving queues, fault
# timelines, measurement records) deliberately stay raw double and are
# grandfathered in scripts/units_lint_allowlist.txt (format:
# <path>:<identifier>, '#' comments). Every entry is a standing exception:
# do not add to it for new API surface — take a typed Quantity instead.
#
# Self-test: --selftest seeds a violation into a temp copy of a covered
# header and asserts the lint catches it, so a regressed regex fails CI
# instead of silently passing everything.
#
# Usage: scripts/check_units_lint.sh [--selftest]
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST="scripts/units_lint_allowlist.txt"
REGEX='double[[:space:]]+[A-Za-z_][A-Za-z0-9_]*_(hours|seconds|usd|per_hour)([^A-Za-z0-9_]|$)'

scan() {  # scan <dir>...  -> hits on stdout (path:line:content)
  grep -rnE "$REGEX" "$@" --include='*.h' || true
}

allowed() {  # allowed <file> <identifier>
  [ -f "$ALLOWLIST" ] || return 1
  grep -v -E '^[[:space:]]*(#|$)' "$ALLOWLIST" | grep -q -F -x "$1:$2"
}

identifier_of() {  # extract the offending identifier from a hit line
  sed -E "s/.*double[[:space:]]+([A-Za-z_][A-Za-z0-9_]*_(hours|seconds|usd|per_hour)).*/\1/" <<< "$1"
}

if [ "${1:-}" = "--selftest" ]; then
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  mkdir -p "$tmpdir/cloud"
  cat > "$tmpdir/cloud/seeded.h" <<'EOF'
#pragma once
struct Seeded {
  double deadline_hours = 0.0;  // seeded violation: must be Hours
};
EOF
  if [ -z "$(scan "$tmpdir")" ]; then
    echo "check_units_lint: SELFTEST FAIL — seeded violation not detected"
    exit 1
  fi
  echo "check_units_lint: selftest OK — seeded raw-double unit field caught"
  exit 0
fi

status=0
hits="$(scan src/cloud src/core)"
if [ -n "$hits" ]; then
  while IFS= read -r hit; do
    file="${hit%%:*}"
    ident="$(identifier_of "$hit")"
    if allowed "$file" "$ident"; then
      continue
    fi
    if [ "$status" -eq 0 ]; then
      echo "check_units_lint: FAIL — raw double with a unit-suffixed name in"
      echo "  a public cloud/core header. Use the strong types from"
      echo "  common/units.h (Seconds/Hours/Usd/UsdPerHour/RatePerHour)"
      echo "  instead of adding to the allowlist."
    fi
    status=1
    echo "  [$ident] $hit"
  done <<< "$hits"
fi

if [ "$status" -eq 0 ]; then
  echo "check_units_lint: OK — no fresh raw-double unit-suffixed" \
       "declarations in src/cloud/*.h or src/core/*.h"
fi
exit "$status"
