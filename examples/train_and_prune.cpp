// Train a CNN from scratch on the synthetic task, then walk the paper's
// accuracy/time trade-off on the trained model: prune to different degrees,
// measure TRUE held-out accuracy, and print TAR for each variant.
//
// Run: ./train_and_prune [epochs]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"
#include "pruning/variant_generator.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 8;

  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 8, 768, 11,
                                            0.25f);
  nn::ModelConfig config;
  config.weight_seed = 7;
  config.num_classes = 8;
  nn::Network net = nn::BuildTinyCnn(config);

  std::cout << "training tinycnn (" << net.ParameterCount()
            << " parameters) for " << epochs << " epochs...\n";
  train::SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    const double loss = trainer.Fit(dataset, 512, 32, 1);
    if (epoch == 1 || epoch % 2 == 0 || epoch == epochs) {
      std::cout << "  epoch " << epoch << ": loss " << Table::Num(loss, 3)
                << ", held-out top1 "
                << Table::Num(
                       train::TopKAccuracy(net, dataset, 512, 256, 1) * 100.0,
                       1)
                << " %\n";
    }
  }

  // Prune the trained model to different degrees; measure everything.
  std::cout << "\npruning the trained model:\n";
  Table table({"variant", "held-out Top-1 (%)", "batch time (ms)",
               "TAR (ms per accuracy unit)"});
  const auto layers = net.WeightedLayerNames();
  const Tensor probe = dataset.Batch(0, 32);
  for (double r : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto plan =
        pruning::UniformPlan(layers, r, pruning::PrunerFamily::kMagnitude);
    const nn::Network variant = pruning::ApplyPlan(net, plan);
    const double top1 = train::TopKAccuracy(variant, dataset, 512, 256, 1);
    Timer timer;
    (void)variant.Forward(probe);
    const double ms = timer.ElapsedSeconds() * 1000.0;
    table.AddRow({plan.Label(), Table::Num(top1 * 100.0, 1),
                  Table::Num(ms, 1),
                  top1 > 0.0
                      ? Table::Num(
                            core::TimeAccuracyRatio(Milliseconds(ms), top1), 1)
                      : "inf"});
  }
  std::cout << table.Render();

  // The Li et al. closing move: retrain the heavily-pruned model with
  // sparsity preserved and watch accuracy come back.
  const auto heavy_plan =
      pruning::UniformPlan(layers, 0.8, pruning::PrunerFamily::kMagnitude);
  nn::Network heavy = pruning::ApplyPlan(net, heavy_plan);
  const double pruned_top1 = train::TopKAccuracy(heavy, dataset, 512, 256, 1);
  train::SgdTrainer finetune(heavy, {.learning_rate = 0.02f,
                                     .momentum = 0.9f,
                                     .preserve_sparsity = true});
  (void)finetune.Fit(dataset, 512, 32, 4);
  const double recovered_top1 =
      train::TopKAccuracy(heavy, dataset, 512, 256, 1);
  std::cout << "\nprune-then-retrain (80 % pruned, sparsity preserved): "
            << Table::Num(pruned_top1 * 100.0, 1) << " % -> "
            << Table::Num(recovered_top1 * 100.0, 1)
            << " % held-out Top-1 after 4 fine-tune epochs\n";

  nn::SaveNetworkToFile(net, "trained_tinycnn.ccpf");
  std::cout << "\ntrained model saved to trained_tinycnn.ccpf\n"
            << "Reading: the lowest-TAR row is the degree of pruning that "
               "buys time most cheaply — the paper's Fig. 11 selection "
               "criterion on a model you just trained.\n";
  return 0;
}
