// Scenario from the paper's introduction: a social-media platform filters
// uploaded photos with a CNN before they go live. Facebook-scale traffic is
// ~350 million photos/day; the operator wants each hourly batch classified
// within the hour ("near real-time") at minimum cost, and accepts reduced
// accuracy when it buys real savings — a borderline photo goes to manual
// review anyway.
//
// This example sizes the fleet with Algorithm 1 under different accuracy
// floors and prints the cost of each service level.
//
// Run: ./social_media_filter [photos_per_day]
#include <cstdlib>
#include <iostream>

#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/allocator.h"
#include "pruning/variant_generator.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const std::int64_t photos_per_day =
      argc > 1 ? std::atoll(argv[1]) : 350'000'000LL;
  const std::int64_t photos_per_hour = photos_per_day / 24;

  std::cout << "Sizing an image-filtering fleet for "
            << photos_per_day / 1'000'000 << "M photos/day ("
            << photos_per_hour / 1'000'000.0 << "M per hourly batch)\n\n";

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ResourceAllocator allocator(sim);

  // Degrees of pruning the platform is willing to serve with.
  std::vector<pruning::PrunePlan> plans;
  plans.push_back({});
  plans.push_back(pruning::UniformPlan({"conv1", "conv2"}, 0.2));
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  plans.push_back(sweet);
  pruning::PrunePlan all_conv = sweet;
  all_conv.layer_ratios["conv3"] = 0.5;
  all_conv.layer_ratios["conv4"] = 0.5;
  all_conv.layer_ratios["conv5"] = 0.5;
  plans.push_back(all_conv);
  const auto candidates = core::MakeCandidates(profile, accuracy, plans);

  // The allocatable pool: up to 4 of each instance type.
  std::vector<std::string> pool;
  for (const auto& type : catalog.Types()) {
    for (int i = 0; i < 4; ++i) pool.push_back(type.name);
  }

  // Service levels: minimum acceptable Top-5 accuracy. We size the fleet
  // under both workload splits: the paper's equal split (Eq. 4) lets the
  // slowest instance dominate a heterogeneous fleet and is often
  // infeasible at this scale; the proportional split (this library's
  // extension) assigns work by throughput.
  const Seconds deadline{3600.0};  // each hourly batch within the hour
  for (const auto split : {cloud::WorkloadSplit::kEqual,
                           cloud::WorkloadSplit::kProportional}) {
    std::cout << (split == cloud::WorkloadSplit::kEqual
                      ? "equal split (paper Eq. 4):\n"
                      : "throughput-proportional split (extension):\n");
    Table table({"accuracy floor", "variant", "fleet", "batch time (min)",
                 "cost per hour ($)", "cost per day ($)"});
    for (double floor : {0.80, 0.75, 0.70, 0.62}) {
      // Serve at the cheapest variant that still meets the floor: the one
      // with the least accuracy above it (Algorithm 1 would otherwise keep
      // picking the most accurate variant and never bank the savings).
      const core::CandidateVariant* pick_variant = nullptr;
      for (const auto& c : candidates) {
        if (c.accuracy >= floor - 1e-9 &&
            (pick_variant == nullptr || c.accuracy < pick_variant->accuracy)) {
          pick_variant = &c;
        }
      }
      if (pick_variant == nullptr) continue;
      const std::vector<core::CandidateVariant> acceptable{*pick_variant};
      const core::AllocationResult pick = allocator.AllocateGreedy(
          acceptable, pool, photos_per_hour, deadline,
          /*budget_usd=*/Usd(1e9), split);
      if (!pick.feasible) {
        table.AddRow({Table::Num(floor * 100.0, 0) + " %", "-", "infeasible",
                      "-", "-", "-"});
        continue;
      }
      table.AddRow({Table::Num(floor * 100.0, 0) + " %", pick.variant_label,
                    pick.config.ToString(),
                    Table::Num(ToMinutes(pick.seconds).value(), 1),
                    Table::Num(pick.cost_usd.value(), 2),
                    Table::Num(pick.cost_usd.value() * 24.0, 0)});
    }
    std::cout << table.Render() << "\n";
  }
  std::cout << "Reading: every accuracy point surrendered buys a smaller or "
               "cheaper fleet;\nthe 62 % floor uses the paper's all-conv "
               "sweet-spot variant.\n";
  return 0;
}
