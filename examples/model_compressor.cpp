// Compress a model end-to-end: parse a model description (or use the
// built-in CaffeNet at reduced scale), prune + quantize + weight-share it,
// report memory/accuracy, and save the compressed variant to disk.
//
// Run: ./model_compressor [model.txt] [prune_ratio] [bits] [clusters]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/empirical_accuracy.h"
#include "data/synthetic_dataset.h"
#include "nn/model_parser.h"
#include "nn/model_zoo.h"
#include "nn/serialize.h"
#include "pruning/quantizer.h"
#include "pruning/sparsity.h"
#include "pruning/variant_generator.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const double prune_ratio = argc > 2 ? std::atof(argv[2]) : 0.4;
  const int bits = argc > 3 ? std::atoi(argv[3]) : 8;
  const int clusters = argc > 4 ? std::atoi(argv[4]) : 64;

  nn::Network base = [&] {
    if (argc > 1) return nn::ParseModelFile(argv[1], /*weight_seed=*/42);
    nn::ModelConfig config;
    config.channel_scale = 0.125;
    config.num_classes = 50;
    config.weight_seed = 42;
    return nn::BuildCaffeNet(config);
  }();
  std::cout << "model '" << base.Name() << "': " << base.LayerCount()
            << " layers, " << base.ParameterCount() / 1e6 << " M parameters\n"
            << "pipeline: magnitude-prune " << prune_ratio * 100.0
            << " % -> quantize " << bits << "-bit -> share " << clusters
            << " clusters\n\n";

  const data::SyntheticImageDataset dataset(
      Shape{base.InputShape().Dim(0), base.InputShape().Dim(1),
            base.InputShape().Dim(2)},
      base.OutputShape(1).Dim(1), 64, 17, 0.4f);
  const core::EmpiricalAccuracyEvaluator evaluator(base, dataset, 24, 4);

  Table table({"stage", "nonzero params", "memory (MB)", "Top-1 agree (%)",
               "Top-5 agree (%)"});
  auto report_stage = [&](const std::string& stage, const nn::Network& net,
                          double memory_bytes) {
    const pruning::SparsityReport sparsity = pruning::AnalyzeSparsity(net);
    const core::AccuracyResult agree = evaluator.Agreement(net);
    table.AddRow({stage, std::to_string(sparsity.total_nonzero),
                  Table::Num(memory_bytes / 1e6, 2),
                  Table::Num(agree.top1 * 100.0, 1),
                  Table::Num(agree.top5 * 100.0, 1)});
  };

  nn::Network net = base.Clone();
  report_stage("original", net,
               pruning::AnalyzeMemory(net, bits, clusters).dense_fp32_bytes);

  pruning::ApplyPlanInPlace(
      net, pruning::UniformPlan(net.WeightedLayerNames(), prune_ratio,
                                pruning::PrunerFamily::kMagnitude));
  report_stage("+ pruned", net,
               pruning::AnalyzeMemory(net, bits, clusters).sparse_csr_bytes);

  pruning::Quantizer(bits).ApplyToNetwork(net);
  report_stage("+ quantized", net,
               pruning::AnalyzeMemory(net, bits, clusters).quantized_bytes);

  pruning::WeightSharer(clusters).ApplyToNetwork(net);
  report_stage("+ shared", net,
               pruning::AnalyzeMemory(net, bits, clusters).shared_bytes);

  std::cout << table.Render();

  const std::string out_path = "compressed_" + base.Name() + ".ccpf";
  nn::SaveNetworkToFile(net, out_path);
  const nn::Network reloaded = nn::LoadNetworkFromFile(out_path);
  std::cout << "\nsaved compressed model to " << out_path << " ("
            << reloaded.ParameterCount() / 1e6
            << " M parameter slots, reload verified)\n";
  return 0;
}
