// Chaos drill: correlated fault domains, mitigation ranking, and a
// cross-domain checkpoint failover — end to end.
//
//  1. Build a region/zone/pool topology, place a fleet across it, and
//     draw a seeded trace of domain-level incidents (reclaim wave, zone
//     outage, partition); lower it onto the placed instances.
//  2. Rank mitigation mixes (retry-only vs spread vs replicate+spread)
//     across seeded incident scenarios with the chaos sweep.
//  3. Run the mirrored kill/restore drill: a checkpointed run dies
//     mid-outage, its home pool partitioned away, and a replacement
//     restores from the surviving mirror — finishing bitwise identical
//     to an uninterrupted run.
//
// Run: ./chaos_drill
#include <cmath>
#include <iostream>

#include "cloud/chaos.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "common/rng.h"
#include "common/table.h"

int main() {
  using namespace ccperf;

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");

  const auto poisson = [](double rate, double duration, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t > duration) break;
      trace.push_back(t);
    }
    return trace;
  };

  // --- 1. A topology, a placement, a seeded incident trace ----------------
  cloud::FaultDomainTopology topo = cloud::FaultDomainTopology::Uniform(
      /*regions=*/1, /*zones_per_region=*/3, /*pools_per_zone=*/1);
  topo.PlaceInstances(3, cloud::PlacementSpread::kSpread);
  std::cout << "topology: 1 region x 3 zones x 1 pool, 3 instances spread\n";

  cloud::CorrelatedFaultModel incidents;
  incidents.reclaim_wave_rate = 12.0;  // waves per pool-hour
  incidents.reclaim_fraction = 1.0;
  incidents.outage_rate = 6.0;  // outages per zone-hour
  incidents.outage_s = 90.0;
  incidents.partition_rate = 6.0;
  incidents.partition_s = 45.0;
  Rng incident_rng(42);
  const cloud::CorrelatedSchedule schedule = cloud::GenerateCorrelatedSchedule(
      incidents, topo, /*duration_s=*/600.0, incident_rng);
  std::cout << "drew " << schedule.events.size()
            << " domain-level incidents over 10 min:\n";
  for (const cloud::CorrelatedEvent& event : schedule.events) {
    std::cout << "  t=" << event.start_s << " s  "
              << cloud::FaultKindName(event.kind) << " @ "
              << topo.domains[static_cast<std::size_t>(event.domain)].name
              << "\n";
  }
  const cloud::FaultSchedule lowered =
      cloud::LowerCorrelatedSchedule(schedule, topo);
  std::cout << "lowered onto the placed fleet: " << lowered.events.size()
            << " per-instance fault events\n\n";

  // --- 2. Rank mitigation mixes -------------------------------------------
  cloud::ResourceConfig fleet;
  fleet.Add("p2.xlarge", 3);
  cloud::ChaosSweep sweep(serving, topo, fleet,
                          /*cross_pool_premium_frac=*/0.05);
  cloud::ChaosConfig config;
  config.perf = perf;
  config.arrivals = poisson(60.0, 600.0, 7);
  config.duration_s = 600.0;
  config.serving.deadline_s = 1.0;

  std::vector<cloud::MitigationPolicy> policies(3);
  policies[0].name = "retry-only";
  policies[1].name = "spread";
  policies[1].spread = cloud::PlacementSpread::kSpread;
  policies[2].name = "replicate2+spread";
  policies[2].spread = cloud::PlacementSpread::kSpread;
  policies[2].redundancy.replicas = 2;

  std::vector<cloud::IncidentScenario> scenarios(2);
  scenarios[0].name = "reclaim-waves";
  scenarios[0].correlated.reclaim_wave_rate = 12.0;
  scenarios[0].correlated.reclaim_fraction = 0.8;
  scenarios[0].seed = 11;
  scenarios[1].name = "az-outages";
  scenarios[1].correlated.outage_rate = 9.0;
  scenarios[1].correlated.outage_s = 120.0;
  scenarios[1].seed = 12;

  const cloud::ChaosRanking ranking = sweep.Rank(policies, scenarios, config);
  Table table({"policy mix", "mean avail %", "mean cost $", "$/kGood"});
  for (const int p : ranking.order) {
    const auto i = static_cast<std::size_t>(p);
    table.AddRow({policies[i].name,
                  Table::Num(ranking.mean_availability[i] * 100.0, 2),
                  Table::Num(ranking.mean_cost_usd[i], 3),
                  Table::Num(ranking.mean_cost_per_kilo_good[i], 4)});
  }
  std::cout << "mitigation ranking (best first):\n" << table.Render() << "\n";

  // --- 3. Mirrored kill/restore drill -------------------------------------
  // Pools of Uniform(1, 3, 1) are domains 2, 4, 6. The run mirrors every
  // snapshot into pools 2 and 4; at the kill, pool 2 is partitioned away,
  // so the replacement restores from pool 4's copy.
  cloud::CheckpointPolicy checkpoint;
  checkpoint.interval_s = 30.0;
  checkpoint.mirror_copies = 2;
  cloud::RedundancyPolicy redundancy;
  redundancy.replicas = 2;
  cloud::ServingPolicy serving_policy;
  serving_policy.deadline_s = 2.0;
  cloud::SnapshotVault vault;
  const cloud::MirroredRestoreDrill drill = cloud::RunMirroredRestoreDrill(
      serving, fleet, perf, config.arrivals, 600.0, serving_policy,
      cloud::RetryPolicy{}, redundancy, lowered, checkpoint,
      /*mirror_domains=*/{2, 4}, /*unreachable_at_kill=*/{2},
      /*kill_at_s=*/300.0, vault, "drill");

  const cloud::ServingReport uninterrupted = serving.SimulateFaulted(
      fleet, perf, config.arrivals, 600.0, serving_policy,
      cloud::RetryPolicy{}, lowered, cloud::InflightPolicy::kRequeue, 1.0,
      redundancy);
  std::cout << "kill/restore drill: " << drill.snapshots
            << " mirrored snapshots, killed ~300 s, restored from the "
               "reachable mirror at watermark "
            << drill.restored_watermark << " s\n";
  std::cout << "  restored run:      " << drill.report.completed << " of "
            << drill.report.requests << " completed, p99 "
            << drill.report.p99_latency_s << " s\n";
  std::cout << "  uninterrupted run: " << uninterrupted.completed << " of "
            << uninterrupted.requests << " completed, p99 "
            << uninterrupted.p99_latency_s << " s\n";
  const bool bitwise =
      drill.report.completed == uninterrupted.completed &&
      drill.report.p99_latency_s == uninterrupted.p99_latency_s &&
      drill.report.utilization == uninterrupted.utilization &&
      drill.report.dropped_failed == uninterrupted.dropped_failed;
  std::cout << (bitwise ? "  => bitwise-identical: the failover lost nothing\n"
                        : "  => MISMATCH: restore diverged from the "
                          "uninterrupted run\n");
  return bitwise ? 0 : 1;
}
