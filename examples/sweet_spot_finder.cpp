// Find the per-layer pruning sweet spots of a model (the paper's
// Observation 1), then combine them into a single multi-layer plan and
// report what the combination costs in accuracy (Observation 3).
//
// Run: ./sweet_spot_finder [caffenet|googlenet] [tolerance_pp]
#include <cstdlib>
#include <iostream>
#include <string>

#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"
#include "core/sweet_spot.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const std::string model = argc > 1 ? argv[1] : "caffenet";
  const double tolerance = (argc > 2 ? std::atof(argv[2]) : 4.0) / 100.0;

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const bool is_caffenet = model == "caffenet";
  if (!is_caffenet && model != "googlenet") {
    std::cerr << "unknown model '" << model << "'\n";
    return 1;
  }
  const cloud::ModelProfile profile =
      is_caffenet ? cloud::CaffeNetProfile() : cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      is_caffenet ? core::CalibratedAccuracyModel::CaffeNet()
                  : core::CalibratedAccuracyModel::GoogLeNet();
  const core::Characterization ch(sim, profile, accuracy);

  std::cout << "sweet-spot scan of " << model << " (Top-5 tolerance "
            << tolerance * 100.0 << " pp, 50k images on p2.xlarge)\n\n";

  const std::vector<double> ratios{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  Table table({"layer", "last sweet-spot ratio", "time saved", "Top-5 drop"});
  pruning::PrunePlan combined;
  for (const auto& layer : profile.layer_order) {
    // Only convolution layers, as in the paper.
    if (layer.rfind("fc", 0) == 0 ||
        layer.find("classifier") != std::string::npos) {
      continue;
    }
    const auto curve = ch.SingleLayerSweep("p2.xlarge", layer, ratios, 50000);
    const core::SweetSpot spot = core::FindSweetSpot(curve, tolerance);
    if (!spot.exists) {
      table.AddRow({layer, "-", "-", "-"});
      continue;
    }
    table.AddRow({layer, Table::Num(spot.last_ratio * 100.0, 0) + " %",
                  Table::Num(spot.time_saving * 100.0, 1) + " %",
                  Table::Num(spot.accuracy_drop * 100.0, 2) + " pp"});
    combined.layer_ratios[layer] = spot.last_ratio;
  }
  std::cout << table.Render() << "\n";

  if (combined.IsNoop()) {
    std::cout << "no sweet spots found under this tolerance.\n";
    return 0;
  }
  const core::CurvePoint base = ch.EvaluatePlan("p2.xlarge", {}, 50000);
  const core::CurvePoint combo = ch.EvaluatePlan("p2.xlarge", combined, 50000);
  std::cout << "combined plan: " << combined.Label() << "\n"
            << "  time:  " << Table::Num(base.seconds / 60.0, 1) << " min -> "
            << Table::Num(combo.seconds / 60.0, 1) << " min (-"
            << Table::Num((1.0 - combo.seconds / base.seconds) * 100.0, 1)
            << " %)\n"
            << "  Top-5: " << Table::Num(base.top5 * 100.0, 1) << " % -> "
            << Table::Num(combo.top5 * 100.0, 1) << " %\n\n"
            << "Observation 3 in action: each layer alone stayed within "
            << tolerance * 100.0 << " pp, the combination does not.\n";
  return 0;
}
