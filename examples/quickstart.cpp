// Quickstart: the whole library in one tour.
//
//  1. Build a CNN and run real inference on synthetic images.
//  2. Prune it and measure the time/accuracy trade-off empirically.
//  3. Ask the calibrated cloud models what the same trade-off costs on EC2.
//
// Run: ./quickstart
#include <iostream>

#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/measurement.h"
#include "core/metrics.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/variant_generator.h"

int main() {
  using namespace ccperf;

  // --- 1. A real CNN on real (synthetic) images ---------------------------
  nn::ModelConfig model_config;
  model_config.weight_seed = 42;
  const nn::Network net = nn::BuildTinyCnn(model_config);
  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 10, 512, 7);

  const Tensor probabilities = net.Forward(dataset.Batch(0, 4));
  const auto labels = nn::ArgMax(probabilities);
  std::cout << "predictions for the first 4 images:";
  for (auto label : labels) std::cout << " " << label;
  std::cout << "\n\n";

  // --- 2. Prune and measure (the paper's measurement phase, in miniature) -
  const core::EmpiricalAccuracyEvaluator evaluator(net, dataset, 128, 32);
  core::MeasurementConfig measure_config;
  measure_config.images = 64;
  measure_config.batch = 16;
  measure_config.price_per_hour = 0.90;  // pretend we're a p2.xlarge
  const core::MeasurementPipeline pipeline(net, dataset, measure_config);

  std::vector<pruning::PrunePlan> plans;
  for (double r : {0.0, 0.3, 0.6, 0.9}) {
    plans.push_back(pruning::UniformPlan({"conv1", "conv2", "fc1"}, r,
                                         pruning::PrunerFamily::kMagnitude));
  }
  Table measured({"degree of pruning", "seconds", "Top-1 (%)", "Top-5 (%)",
                  "TAR-5", "CAR-5 ($)"});
  for (const auto& record : pipeline.Run(plans, evaluator)) {
    measured.AddRow({record.label, Table::Num(record.seconds, 3),
                     Table::Num(record.top1 * 100.0, 1),
                     Table::Num(record.top5 * 100.0, 1),
                     Table::Num(record.tar5, 3),
                     Table::Num(record.car5 * 1e6, 2) + "e-6"});
  }
  std::cout << "real measured trade-off (TinyCnn, this machine):\n"
            << measured.Render() << "\n";

  // --- 3. The calibrated cloud view (full CaffeNet on EC2) ----------------
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  Table cloud_view({"degree of pruning", "50k images on p2.xlarge",
                    "cost ($)", "Top-5 (%)", "CAR ($)"});
  for (double r : {0.0, 0.3, 0.5}) {
    const auto plan = pruning::UniformPlan({"conv1", "conv2"}, r);
    const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
        profile, cloud::DensityFromPlan(profile, plan), plan.Label());
    cloud::ResourceConfig config;
    config.Add("p2.xlarge");
    const cloud::RunEstimate run = sim.Run(config, perf, 50000);
    const double top5 = accuracy.Evaluate(plan).top5;
    cloud_view.AddRow({plan.Label(),
                       Table::Num(ToMinutes(run.seconds).value(), 1) + " min",
                       Table::Num(run.cost_usd.value(), 3),
                       Table::Num(top5 * 100.0, 1),
                       Table::Num(core::CostAccuracyRatio(run.cost_usd, top5),
                                  3)});
  }
  std::cout << "calibrated cloud estimate (CaffeNet, EC2 p2.xlarge):\n"
            << cloud_view.Render();
  std::cout << "\nNext: run the bench_* binaries to regenerate every table "
               "and figure of the paper.\n";
  return 0;
}
