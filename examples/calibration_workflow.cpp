// The paper's full methodology (§3) as a workflow you can run on your own
// model:
//
//   1. characterize  — real per-layer prune sweeps on the CPU engine
//   2. measure       — inference time + teacher-student accuracy per sweep
//   3. calibrate     — fit the analytical damage model from the sweeps
//   4. plan          — use the fitted model to choose a degree of pruning
//                      that meets an accuracy floor with the best speedup
//
// Run: ./calibration_workflow [accuracy_floor]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/calibration.h"
#include "core/empirical_accuracy.h"
#include "core/measurement.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/variant_generator.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const double accuracy_floor = argc > 1 ? std::atof(argv[1]) : 0.7;

  // The application under study: a 32-class TinyCnn (stands in for any
  // user model; swap in ParseModelFile(...) for your own).
  nn::ModelConfig config;
  config.weight_seed = 321;
  config.num_classes = 32;
  const nn::Network base = nn::BuildTinyCnn(config);
  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 32, 512, 9,
                                            0.3f);
  const core::EmpiricalAccuracyEvaluator evaluator(base, dataset, 160, 32);
  core::MeasurementConfig measure;
  measure.images = 64;
  measure.batch = 16;
  const core::MeasurementPipeline pipeline(base, dataset, measure);

  // --- 1 + 2: measure per-layer sweeps (real inference) -------------------
  std::cout << "measuring per-layer prune sweeps (real CPU inference)...\n";
  const std::vector<double> ratios{0.0, 0.2, 0.4, 0.6, 0.8, 0.9};
  std::map<std::string, std::vector<core::CurvePoint>> curves;
  for (const auto& layer : base.WeightedLayerNames()) {
    std::vector<core::CurvePoint> curve;
    for (double r : ratios) {
      pruning::PrunePlan plan;
      plan.family = pruning::PrunerFamily::kMagnitude;
      plan.layer_ratios[layer] = r;
      const nn::Network variant = pruning::ApplyPlan(base, plan);
      const double seconds = pipeline.TimeNetwork(variant);
      const core::AccuracyResult agree = evaluator.Agreement(variant);
      curve.push_back({r, seconds, agree.top1, agree.top1});
    }
    curves[layer] = curve;
  }

  // --- 3: fit the damage model --------------------------------------------
  Table fits({"layer", "sensitivity", "exponent", "fit RMS", "ok"});
  for (const auto& [layer, curve] : curves) {
    const core::DamageFit fit = core::FitLayerDamage(curve);
    fits.AddRow({layer, Table::Num(fit.damage.sensitivity, 2),
                 Table::Num(fit.damage.exponent, 2),
                 Table::Num(fit.rms_error, 3), fit.ok ? "yes" : "fallback"});
  }
  std::cout << "\nfitted damage parameters:\n" << fits.Render();
  const core::CalibratedAccuracyModel model = core::FitAccuracyModel(
      curves, 1.0, 1.0, pruning::PrunerFamily::kMagnitude);

  // --- 4: plan with the fitted model ---------------------------------------
  // Search uniform multi-layer ratios for the fastest variant the model
  // predicts to stay above the floor, then verify with a fresh measurement.
  std::cout << "\nplanning: highest uniform prune ratio with predicted "
            << "Top-1 agreement >= " << accuracy_floor << "\n";
  const auto layers = base.WeightedLayerNames();
  double chosen = 0.0;
  for (double r = 0.05; r < 0.95; r += 0.05) {
    const auto plan =
        pruning::UniformPlan(layers, r, pruning::PrunerFamily::kMagnitude);
    if (model.Evaluate(plan).top5 >= accuracy_floor) chosen = r;
  }
  const auto plan =
      pruning::UniformPlan(layers, chosen, pruning::PrunerFamily::kMagnitude);
  const nn::Network variant = pruning::ApplyPlan(base, plan);
  const double base_time = pipeline.TimeNetwork(base);
  const double variant_time = pipeline.TimeNetwork(variant);
  const double predicted = model.Evaluate(plan).top5;
  const double measured = evaluator.Agreement(variant).top1;

  Table verdict({"quantity", "value"});
  verdict.AddRow({"chosen plan", plan.Label()});
  verdict.AddRow({"predicted Top-1 agreement", Table::Num(predicted, 3)});
  verdict.AddRow({"measured Top-1 agreement", Table::Num(measured, 3)});
  verdict.AddRow({"inference time",
                  Table::Num(base_time, 3) + " s -> " +
                      Table::Num(variant_time, 3) + " s"});
  std::cout << verdict.Render()
            << "\nThe fitted model planned an unmeasured variant; the fresh "
               "measurement confirms the prediction's ballpark — the "
               "paper's measurement-driven loop, end to end.\n";
  return 0;
}
