// Explore the cost/time/accuracy configuration space for a workload and
// print the Pareto-optimal choices — the paper's Figs. 9/10 as a tool.
//
// Run: ./pareto_explorer [caffenet|googlenet] [images] [deadline_h] [budget_usd]
// e.g. ./pareto_explorer caffenet 1000000 10 300
#include <cstdlib>
#include <iostream>
#include <string>

#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/explorer.h"
#include "core/metrics.h"
#include "pruning/variant_generator.h"

int main(int argc, char** argv) {
  using namespace ccperf;
  const std::string model = argc > 1 ? argv[1] : "caffenet";
  const std::int64_t images = argc > 2 ? std::atoll(argv[2]) : 1'000'000LL;
  const double deadline_h = argc > 3 ? std::atof(argv[3]) : 10.0;
  const double budget = argc > 4 ? std::atof(argv[4]) : 300.0;

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const bool is_caffenet = model == "caffenet";
  if (!is_caffenet && model != "googlenet") {
    std::cerr << "unknown model '" << model
              << "' (expected caffenet or googlenet)\n";
    return 1;
  }
  const cloud::ModelProfile profile =
      is_caffenet ? cloud::CaffeNetProfile() : cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      is_caffenet ? core::CalibratedAccuracyModel::CaffeNet()
                  : core::CalibratedAccuracyModel::GoogLeNet();
  const core::ConfigSpaceExplorer explorer(sim, profile, accuracy);

  // Variants: random degrees of pruning over the most impactful layers.
  std::vector<std::string> layers;
  if (is_caffenet) {
    layers = {"conv1", "conv2", "conv3", "conv4", "conv5"};
  } else {
    layers = {"conv1-7x7-s2", "conv2-3x3", "inception-3a-3x3",
              "inception-4d-5x5", "inception-5a-3x3"};
  }
  Rng rng(1);
  const auto variants = pruning::RandomVariants(layers, 40, 0.6, 0.1, rng);
  const auto configs = cloud::EnumerateConfigs(catalog.Types(), 2);

  std::cout << "exploring " << variants.size() << " pruning variants x "
            << configs.size() << " resource configurations for " << images
            << " " << model << " inferences\n"
            << "constraints: T' = " << deadline_h << " h, C' = $" << budget
            << "\n\n";

  const core::ExplorationResult result = explorer.Explore(
      variants, configs, images, ToSeconds(Hours(deadline_h)), Usd(budget));
  std::cout << result.feasible.size() << " of " << result.evaluated
            << " candidate configurations are feasible\n\n";
  if (result.feasible.empty()) {
    std::cout << "nothing satisfies the constraints — relax T' or C'.\n";
    return 0;
  }

  for (const bool by_cost : {false, true}) {
    const auto frontier =
        by_cost ? core::CostAccuracyFrontier(result.feasible, true)
                : core::TimeAccuracyFrontier(result.feasible, true);
    std::cout << (by_cost ? "cost" : "time") << "-accuracy Pareto frontier ("
              << frontier.size() << " points):\n";
    Table table({"configuration", "variant", "Top-5 (%)", "time (h)",
                 "cost ($)", by_cost ? "CAR ($)" : "TAR (h)"});
    for (std::size_t idx : frontier) {
      const auto& p = result.feasible[idx];
      const double metric =
          by_cost ? core::CostAccuracyRatio(p.cost_usd, p.top5)
                  : core::TimeAccuracyRatio(ToHours(p.seconds), p.top5);
      table.AddRow({p.config.ToString(), p.variant_label,
                    Table::Num(p.top5 * 100.0, 1),
                    Table::Num(ToHours(p.seconds).value(), 2),
                    Table::Num(p.cost_usd.value(), 2),
                    Table::Num(metric, 2)});
    }
    std::cout << table.Render() << "\n";
  }

  // Tri-objective frontier: when both T' and C' matter, the real decision
  // set minimizes time AND cost while maximizing accuracy.
  std::vector<double> times, costs, accs;
  for (const auto& p : result.feasible) {
    times.push_back(p.seconds.value());
    costs.push_back(p.cost_usd.value());
    accs.push_back(p.top5);
  }
  const auto tri = core::ParetoFrontier3(times, costs, accs);
  std::cout << "tri-objective (time, cost, accuracy) frontier: " << tri.size()
            << " of " << result.feasible.size()
            << " feasible configurations remain efficient\n";
  return 0;
}
