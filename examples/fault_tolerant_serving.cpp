// Fault-tolerant serving: inject failures into a serving fleet and let the
// accuracy knob absorb them.
//
//  1. Generate a reproducible fault schedule from a spot-market model
//     (and round-trip it through CSV — the replay-log form).
//  2. Serve a Poisson trace through the failure-aware simulator: retries
//     with exponential backoff, deadline drops, goodput accounting.
//  3. Hand the same faults to the degradation controller, which trades a
//     little Top-5 accuracy for SLO compliance while instances are down.
//
// Run: ./fault_tolerant_serving
#include <cmath>
#include <iostream>

#include "cloud/degradation.h"
#include "cloud/density.h"
#include "cloud/faults.h"
#include "cloud/serving.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/accuracy_model.h"

int main() {
  using namespace ccperf;

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  // --- 1. A reproducible fault schedule -----------------------------------
  // Rates are per instance-hour: roughly one crash every 6 minutes plus
  // occasional thermal slowdowns — a rough spot-market afternoon.
  const cloud::FaultModel model{.preemption_rate = 0.0,
                                .crash_rate = 10.0,
                                .restart_s = 30.0,
                                .slowdown_rate = 4.0,
                                .slowdown_s = 45.0,
                                .slowdown_factor = 2.0};
  Rng fault_rng(7);
  const cloud::FaultSchedule faults =
      cloud::GenerateFaultSchedule(model, /*instances=*/2,
                                   /*duration_s=*/1800.0, fault_rng);
  std::cout << "generated " << faults.events.size()
            << " fault events for 2 instances over 30 min:\n";
  for (std::size_t i = 0; i < faults.events.size() && i < 5; ++i) {
    const cloud::FaultEvent& e = faults.events[i];
    std::cout << "  t=" << e.start_s << " s  instance " << e.instance << "  "
              << cloud::FaultKindName(e.kind) << "\n";
  }
  if (faults.events.size() > 5) std::cout << "  ...\n";

  // The CSV form is the replay log: schedules can be saved, shared, and
  // replayed bit-identically (parsing validates hard).
  const std::string csv = cloud::FaultScheduleCsv(faults);
  const cloud::FaultSchedule replayed = cloud::ParseFaultScheduleCsv(csv);
  std::cout << "CSV round-trip: " << replayed.events.size()
            << " events reparsed\n\n";

  // --- 2. Failure-aware serving -------------------------------------------
  const cloud::VariantPerf full = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  cloud::ResourceConfig fleet;
  fleet.Add("g3.4xlarge", 2);

  Rng arrival_rng(11);
  std::vector<double> arrivals;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - arrival_rng.NextDouble()) / 60.0;
    if (t > 1800.0) break;
    arrivals.push_back(t);
  }

  const cloud::ServingPolicy policy{
      .max_batch = 64, .max_wait_s = 0.1, .deadline_s = 2.0};
  const cloud::RetryPolicy retry{.max_retries = 3, .base_backoff_s = 0.05};
  const cloud::ServingReport report = serving.SimulateFaulted(
      fleet, full, arrivals, 1800.0, policy, retry, faults);

  Table summary({"metric", "value"});
  summary.AddRow({"requests", std::to_string(report.requests)});
  summary.AddRow({"completed", std::to_string(report.completed)});
  summary.AddRow({"retries (requeued batches)", std::to_string(report.retries)});
  summary.AddRow({"dropped: deadline / failed",
                  std::to_string(report.dropped_deadline) + " / " +
                      std::to_string(report.dropped_failed)});
  summary.AddRow({"deadline miss rate",
                  Table::Num(report.deadline_miss_rate * 100.0, 2) + " %"});
  summary.AddRow({"goodput", Table::Num(report.goodput_per_s, 1) + " img/s"});
  summary.AddRow({"p99 latency", Table::Num(report.p99_latency_s, 2) + " s"});
  summary.AddRow({"cost (up-time billed)",
                  "$" + Table::Num(report.cost_per_hour_usd, 2) + " /h"});
  std::cout << "full model through the fault schedule:\n" << summary.Render();

  // --- 3. Graceful degradation --------------------------------------------
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  pruning::PrunePlan deep;
  deep.layer_ratios = {{"conv1", 0.4}, {"conv2", 0.5}, {"conv3", 0.5},
                       {"conv4", 0.5}, {"conv5", 0.5}};
  const std::vector<cloud::DegradationRung> ladder{
      {full, accuracy.Baseline().top5},
      {cloud::ComputeVariantPerf(profile, cloud::DensityFromPlan(profile,
                                                                sweet),
                                 sweet.Label()),
       accuracy.Evaluate(sweet).top5},
      {cloud::ComputeVariantPerf(profile, cloud::DensityFromPlan(profile,
                                                                deep),
                                 deep.Label()),
       accuracy.Evaluate(deep).top5},
  };

  // Slice the 30 min trace into 60 s control intervals.
  std::vector<std::vector<double>> intervals(30);
  for (double a : arrivals) {
    const auto i = std::min<std::size_t>(29, static_cast<std::size_t>(a / 60.0));
    intervals[i].push_back(a - static_cast<double>(i) * 60.0);
  }

  const cloud::DegradationController controller(serving, fleet);
  const cloud::DegradationResult degraded = controller.Run(
      intervals, 60.0, ladder,
      {.degrade_miss_rate = 0.05, .recover_miss_rate = 0.01,
       .recover_headroom = 0.95, .recover_intervals = 2},
      policy, retry, faults);

  std::cout << "\nwith the degradation ladder (rung per minute):\n  ";
  for (const auto& step : degraded.steps) std::cout << step.rung;
  std::cout << "\n  SLO compliance "
            << Table::Num(degraded.slo_compliance * 100.0, 1)
            << " % | mean Top-5 "
            << Table::Num(degraded.mean_accuracy * 100.0, 1)
            << " % | rung switches " << degraded.switches << "\n";
  std::cout << "\nNext: ./bench_ext_fault_tolerance stages the full "
               "degradation-vs-autoscaler comparison.\n";
  return 0;
}
