// Quantized serving: run the int8 inference path end-to-end, from the
// actual quantized forward pass to the serving fleet it pays for.
//
//  1. Execute a scaled CaffeNet on the int8 kernels and measure its
//     teacher-student agreement against the float forward — the empirical
//     anchor behind CalibratedAccuracyModel::kInt8QuantDamage.
//  2. Fold the int8 time factor into the variant's device-independent
//     profile (ComputeVariantPerf with the int8 knob) for three flavors:
//     float, int8, and sparse+int8.
//  3. Serve the same Poisson workload with each flavor and compare latency
//     percentiles and cost — then shrink the int8 fleet until it matches
//     the float fleet's latency, which is where quantization turns into
//     dollars.
//
// Run: ./quantized_serving
#include <iostream>
#include <string>

#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/serving.h"
#include "cloud/variant_perf.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/empirical_accuracy.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/prune_plan.h"

int main() {
  using namespace ccperf;

  // --- 1. The int8 forward pass, for real ---------------------------------
  nn::ModelConfig config;
  config.channel_scale = 0.125;
  config.num_classes = 50;
  config.weight_seed = 42;
  const nn::Network base = nn::BuildCaffeNet(config);
  const data::SyntheticImageDataset dataset(
      Shape{base.InputShape().Dim(0), base.InputShape().Dim(1),
            base.InputShape().Dim(2)},
      base.OutputShape(1).Dim(1), 32, 17, 0.4f);
  const core::EmpiricalAccuracyEvaluator evaluator(base, dataset, 16, 4);
  const core::AccuracyResult int8_agree = evaluator.EvaluateInt8(base);
  std::cout << "int8 forward agreement with the float teacher: Top-1 "
            << Table::Num(int8_agree.top1 * 100.0, 1) << " %, Top-5 "
            << Table::Num(int8_agree.top5 * 100.0, 1) << " %\n\n";

  // --- 2. Variant profiles ------------------------------------------------
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const pruning::PrunePlan nonpruned;
  const pruning::PrunePlan pruned =
      pruning::UniformPlan({"conv2", "conv3", "conv4", "conv5"}, 0.3);

  struct Flavor {
    std::string name;
    cloud::VariantPerf perf;
    core::AccuracyResult acc;
  };
  const std::vector<Flavor> flavors = {
      {"float",
       cloud::ComputeVariantPerf(
           profile, cloud::DensityFromPlan(profile, nonpruned), "nonpruned"),
       accuracy.Evaluate(nonpruned)},
      {"int8",
       cloud::ComputeVariantPerf(
           profile, cloud::DensityFromPlan(profile, nonpruned),
           "nonpruned-int8", /*int8_enabled=*/true),
       accuracy.EvaluateQuantized(nonpruned)},
      {"sparse+int8",
       cloud::ComputeVariantPerf(profile,
                                 cloud::DensityFromPlan(profile, pruned),
                                 pruned.Label() + "-int8",
                                 /*int8_enabled=*/true),
       accuracy.EvaluateQuantized(pruned)},
  };

  // --- 3. The same workload, three flavors --------------------------------
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ServingPolicy policy{.max_batch = 64, .max_wait_s = 0.05};
  const double duration_s = 600.0;

  cloud::ResourceConfig fleet;
  fleet.Add("g3.4xlarge", 2);
  cloud::ResourceConfig small;
  small.Add("g3.4xlarge", 1);

  // Operating point: traffic one float instance cannot sustain, but one
  // int8 instance can — 15 % over the single-instance float capacity.
  const double cap_float_1x = serving.Capacity(small, flavors[0].perf, policy);
  const double cap_int8_1x = serving.Capacity(small, flavors[1].perf, policy);
  const double arrivals_per_s = 1.15 * cap_float_1x;
  std::cout << "single-instance capacity: float "
            << Table::Num(cap_float_1x, 0) << " img/s, int8 "
            << Table::Num(cap_int8_1x, 0) << " img/s; serving "
            << Table::Num(arrivals_per_s, 0) << " req/s\n\n";

  Table table({"variant", "ref ms/img", "Top-1 (%)", "p95 latency (ms)",
               "utilization", "cost ($/h)"});
  for (const auto& flavor : flavors) {
    Rng rng(11);  // identical traffic for every flavor
    const cloud::ServingReport report = serving.Simulate(
        fleet, flavor.perf, arrivals_per_s, duration_s, policy, rng);
    table.AddRow({flavor.name,
                  Table::Num(flavor.perf.ref_seconds_per_image.value() * 1e3,
                             2),
                  Table::Num(flavor.acc.top1 * 100.0, 1),
                  Table::Num(report.p95_latency_s * 1e3, 1),
                  Table::Num(report.utilization, 2),
                  Table::Num(report.cost_per_hour_usd, 2)});
  }
  std::cout << "fleet 2x g3.4xlarge:\n" << table.Render() << "\n";

  // The quantized variant leaves the fleet half idle — serve the same
  // traffic on half the instances and compare against the float fleet.
  Rng rng_float(11);
  const cloud::ServingReport float_two = serving.Simulate(
      fleet, flavors[0].perf, arrivals_per_s, duration_s, policy, rng_float);
  Rng rng_int8(11);
  const cloud::ServingReport int8_one = serving.Simulate(
      small, flavors[1].perf, arrivals_per_s, duration_s, policy, rng_int8);
  std::cout << "same traffic, int8 on HALF the fleet (1x g3.4xlarge):\n"
            << "  float 2x: p95 "
            << Table::Num(float_two.p95_latency_s * 1e3, 1) << " ms at $"
            << Table::Num(float_two.cost_per_hour_usd, 2) << "/h\n"
            << "  int8  1x: p95 "
            << Table::Num(int8_one.p95_latency_s * 1e3, 1) << " ms at $"
            << Table::Num(int8_one.cost_per_hour_usd, 2) << "/h ("
            << (int8_one.stable ? "stable" : "UNSTABLE") << ")\n"
            << "quantization here buys "
            << Table::Num(
                   (1.0 - int8_one.cost_per_hour_usd /
                              float_two.cost_per_hour_usd) * 100.0, 0)
            << " % of the hourly bill for "
            << Table::Num((flavors[0].acc.top1 - flavors[1].acc.top1) * 100.0,
                          1)
            << " points of Top-1.\n";
  return 0;
}
