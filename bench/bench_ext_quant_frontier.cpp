// Extension: the sparse + quantized time-accuracy frontier. The paper's
// frontier (Fig. 9) is built from one knob — the degree of pruning. Int8
// execution adds a second, orthogonal knob: every variant now exists in a
// float and a quantized flavor, where quantization trades a fixed accuracy
// damage (CalibratedAccuracyModel::kInt8QuantDamage) for the int8 kernel's
// time factor on its dense-dispatched layers.
//
// The interesting structure this creates: a moderately pruned FLOAT variant
// pays accuracy damage yet gains little time (its density sits above the
// sparse crossover, so it still runs the dense float kernel), while the
// quantized NONPRUNED variant pays a comparable, fixed damage and gains the
// full int8 speedup. The quantized point should therefore strictly dominate
// part of the float frontier — that domination is this benchmark's
// acceptance gate.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/variant_perf.h"
#include "common/rng.h"
#include "core/accuracy_model.h"
#include "pruning/prune_plan.h"
#include "pruning/variant_generator.h"

namespace {

using namespace ccperf;

struct Point {
  std::string label;
  bool int8 = false;
  double seconds_per_image = 0.0;  // reference-device, full utilization
  double top1 = 0.0;
  double top5 = 0.0;
};

/// True when `a` strictly dominates `b`: faster and at least as accurate.
bool Dominates(const Point& a, const Point& b) {
  return a.seconds_per_image < b.seconds_per_image && a.top1 >= b.top1;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension — Sparse + Quantized Time-Accuracy Frontier",
      "Every pruning variant in float and int8 flavor on the reference "
      "device. Gate: some quantized (or sparse+quantized) variant strictly "
      "dominates a float variant — faster AND at least as accurate.");

  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  Rng rng(2020);
  auto plans = pruning::RandomVariants(
      {"conv1", "conv2", "conv3", "conv4", "conv5"}, 60, 0.6, 0.1, rng);
  plans.insert(plans.begin(), pruning::PrunePlan{});  // nonpruned baseline

  std::vector<Point> points;
  points.reserve(plans.size() * 2);
  for (const auto& plan : plans) {
    const cloud::DensityMap densities = cloud::DensityFromPlan(profile, plan);
    const core::AccuracyResult acc_f = accuracy.Evaluate(plan);
    const core::AccuracyResult acc_q = accuracy.EvaluateQuantized(plan);
    const cloud::VariantPerf perf_f =
        cloud::ComputeVariantPerf(profile, densities, plan.Label());
    const cloud::VariantPerf perf_q = cloud::ComputeVariantPerf(
        profile, densities, plan.Label() + "-int8", /*int8_enabled=*/true);
    points.push_back({perf_f.label, false,
                      perf_f.ref_seconds_per_image.value(), acc_f.top1,
                      acc_f.top5});
    points.push_back({perf_q.label, true,
                      perf_q.ref_seconds_per_image.value(), acc_q.top1,
                      acc_q.top5});
  }

  // For each quantized point, count the float points it strictly dominates;
  // remember the strongest example for the report.
  std::size_t dominated_float_points = 0;
  const Point* best_q = nullptr;
  const Point* best_f = nullptr;
  double best_gain = 0.0;
  std::vector<int> dominates_count(points.size(), 0);
  for (std::size_t qi = 0; qi < points.size(); ++qi) {
    if (!points[qi].int8) continue;
    for (const auto& f : points) {
      if (f.int8 || !Dominates(points[qi], f)) continue;
      ++dominates_count[qi];
      const double gain = f.seconds_per_image / points[qi].seconds_per_image;
      if (gain > best_gain) {
        best_gain = gain;
        best_q = &points[qi];
        best_f = &f;
      }
    }
    if (dominates_count[qi] > 0) ++dominated_float_points;
  }

  // Chart both flavors over the time-accuracy plane.
  AsciiChart chart(64, 14);
  std::vector<std::pair<double, double>> float_pts, int8_pts;
  for (const auto& p : points) {
    (p.int8 ? int8_pts : float_pts)
        .emplace_back(p.top1 * 100.0, p.seconds_per_image * 1e3);
  }
  chart.AddSeries("float", '.', float_pts);
  chart.AddSeries("int8", 'Q', int8_pts);
  std::cout << chart.Render();

  // The quantized variants that dominate at least one float variant, best
  // (most float points dominated) first.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].int8 && dominates_count[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dominates_count[a] > dominates_count[b];
  });
  Table table({"quantized variant", "ms/image", "Top-1 (%)", "Top-5 (%)",
               "float points dominated"});
  for (std::size_t rank = 0; rank < order.size() && rank < 8; ++rank) {
    const auto& p = points[order[rank]];
    table.AddRow({p.label, Table::Num(p.seconds_per_image * 1e3, 2),
                  Table::Num(p.top1 * 100.0, 1),
                  Table::Num(p.top5 * 100.0, 1),
                  std::to_string(dominates_count[order[rank]])});
  }
  std::cout << table.Render();

  auto csv = bench::OpenCsv(
      "ext_quant_frontier.csv",
      {"variant", "int8", "ref_seconds_per_image", "top1", "top5",
       "float_points_dominated"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    csv.AddRow({p.label, p.int8 ? "1" : "0",
                Table::Num(p.seconds_per_image, 6), Table::Num(p.top1, 4),
                Table::Num(p.top5, 4),
                std::to_string(p.int8 ? dominates_count[i] : 0)});
  }
  csv.Close();

  bench::Checkpoint("quantized variants dominating >= 1 float variant",
                    ">= 1 (acceptance bar)",
                    std::to_string(dominated_float_points));
  if (best_q == nullptr) {
    std::cout << "  [FAIL] no quantized variant strictly dominates any "
                 "float variant\n";
    return 1;
  }
  bench::Checkpoint(
      "strongest domination: " + best_q->label + " vs " + best_f->label,
      "faster AND at least as accurate",
      Table::Num(best_gain, 2) + "x faster, Top-1 " +
          Table::Num(best_q->top1 * 100.0, 1) + " % vs " +
          Table::Num(best_f->top1 * 100.0, 1) + " %");
  std::cout << "\nCSV: bench_results/ext_quant_frontier.csv\n";
  return 0;
}
