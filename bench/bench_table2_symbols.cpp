// Reproduces Table 2: the paper's symbol glossary, mapped onto this
// library's API — so every symbol in the analytical model (Eqs. 1-4) has a
// concrete, testable realization.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace ccperf;
  bench::Banner("Table 2 — Symbols Used",
                "The paper's notation and where each symbol lives in ccperf.");

  Table table({"Symbol", "Paper meaning", "ccperf realization"});
  table.AddRow({"A", "a CNN application", "nn::Network (BuildCaffeNet/...)"});
  table.AddRow({"P", "set of A pruned with different degrees",
                "std::vector<pruning::PrunePlan>"});
  table.AddRow({"p", "a degree of pruning in P", "pruning::PrunePlan"});
  table.AddRow({"a_p", "accuracy of p",
                "core::AccuracyModel::Evaluate(p).top1/.top5"});
  table.AddRow({"W", "number of images for inference",
                "images argument of cloud::CloudSimulator::Run"});
  table.AddRow({"n", "number of batches (Eq. 3)",
                "derived inside CloudSimulator::InstanceSeconds"});
  table.AddRow({"G", "set of all cloud resources",
                "cloud::InstanceCatalog / allocator pool"});
  table.AddRow({"R", "a cloud resource configuration of G",
                "cloud::ResourceConfig"});
  table.AddRow({"i", "a cloud resource type in R", "cloud::InstanceType"});
  table.AddRow({"v_i", "number of GPUs in i", "InstanceType::gpus"});
  table.AddRow({"c_i", "cost per unit time for i",
                "InstanceType::price_per_hour (per-second prorated)"});
  table.AddRow({"b_i", "max parallel inference (batch size) of i",
                "GpuSpec::max_batch"});
  table.AddRow({"C'", "cost budget", "budget_usd argument (explorer/allocator)"});
  table.AddRow({"T'", "time deadline", "deadline_s argument"});
  table.AddRow({"C", "total cost for inference of W (Eq. 1)",
                "cloud::RunEstimate::cost_usd"});
  table.AddRow({"T", "total time for inference of W (Eq. 2)",
                "cloud::RunEstimate::seconds"});
  table.AddRow({"t_{b,a}", "time for one batch at batch size b, accuracy a",
                "CloudSimulator::BatchSeconds(type, perf, b)"});
  table.AddRow({"TAR", "time accuracy ratio t/a",
                "core::TimeAccuracyRatio"});
  table.AddRow({"CAR", "cost accuracy ratio c/a",
                "core::CostAccuracyRatio"});
  std::cout << table.Render();

  bench::Checkpoint("coverage", "every Table 2 symbol realized",
                    "19/19 rows mapped to API entities");
  return 0;
}
