// Reproduces the paper's Algorithm 1 efficiency claim (§4.5.3): greedy
// TAR/CAR-guided allocation runs in polynomial time (O(|G| log |G|) per
// variant) while exhaustive configuration search is O(2^|G|) — and the
// greedy result matches the exhaustive optimum's accuracy on solvable
// instances.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/allocator.h"
#include "pruning/variant_generator.h"

int main() {
  using namespace ccperf;
  bench::Banner("Algorithm 1 — TAR/CAR-Guided Resource Allocation",
                "Greedy vs. exhaustive: evaluations, wall time, and result "
                "quality as the resource pool grows.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ResourceAllocator allocator(sim);

  std::vector<pruning::PrunePlan> plans;
  plans.push_back({});
  plans.push_back(pruning::UniformPlan({"conv1"}, 0.3));
  plans.push_back(pruning::UniformPlan({"conv1", "conv2"}, 0.3));
  plans.push_back(pruning::UniformPlan(
      {"conv1", "conv2", "conv3", "conv4", "conv5"}, 0.5));
  const auto candidates = core::MakeCandidates(profile, accuracy, plans);

  const std::vector<std::string> base_pool{"p2.xlarge",  "p2.8xlarge",
                                           "g3.4xlarge", "g3.8xlarge",
                                           "p2.xlarge",  "g3.16xlarge"};

  Table table({"|G|", "Greedy evals", "Exhaustive evals", "Greedy ms",
               "Exhaustive ms", "Same accuracy?"});
  auto csv = bench::OpenCsv(
      "alg1_allocation_complexity.csv",
      {"pool", "greedy_evals", "exhaustive_evals", "greedy_ms",
       "exhaustive_ms", "same_accuracy"});

  const std::int64_t kImages = 400000;
  const Seconds kDeadline{2.0 * 3600.0};
  const Usd kBudget{12.0};
  for (std::size_t g = 2; g <= 14; g += 2) {
    std::vector<std::string> pool;
    for (std::size_t i = 0; i < g; ++i) {
      pool.push_back(base_pool[i % base_pool.size()]);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const core::AllocationResult greedy =
        allocator.AllocateGreedy(candidates, pool, kImages, kDeadline, kBudget);
    const auto t1 = std::chrono::steady_clock::now();
    const core::AllocationResult exhaustive = allocator.AllocateExhaustive(
        candidates, pool, kImages, kDeadline, kBudget);
    const auto t2 = std::chrono::steady_clock::now();
    const double greedy_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double exhaustive_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const bool same = greedy.feasible == exhaustive.feasible &&
                      (!greedy.feasible ||
                       greedy.accuracy == exhaustive.accuracy);
    table.AddRow({std::to_string(g), std::to_string(greedy.evaluations),
                  std::to_string(exhaustive.evaluations),
                  Table::Num(greedy_ms, 2), Table::Num(exhaustive_ms, 2),
                  same ? "yes" : "NO"});
    csv.AddRow({std::to_string(g), std::to_string(greedy.evaluations),
                std::to_string(exhaustive.evaluations),
                Table::Num(greedy_ms, 3), Table::Num(exhaustive_ms, 3),
                same ? "1" : "0"});
  }
  std::cout << table.Render();

  bench::Checkpoint("greedy growth", "polynomial (<= |P| |G|)",
                    "linear rows in the table");
  bench::Checkpoint("exhaustive growth", "O(2^|G|)",
                    "doubles with every pool increment");

  // One concrete allocation, end-to-end.
  const core::AllocationResult pick = allocator.AllocateGreedy(
      candidates, base_pool, kImages, kDeadline, kBudget);
  if (pick.feasible) {
    std::cout << "\nexample allocation: variant '" << pick.variant_label
              << "' on " << pick.config.ToString() << " -> "
              << Table::Num(ToHours(pick.seconds).value(), 2) << " h, $"
              << Table::Num(pick.cost_usd.value(), 2) << " at Top-5 "
              << Table::Num(pick.accuracy * 100.0, 1) << " %\n";
  }
  return 0;
}
