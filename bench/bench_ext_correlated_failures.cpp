// Extension: correlated failures — the availability-vs-cost frontier of
// mitigation policy mixes under domain-level incidents.
//
// The paper's cost model (Eqs. 1-4) prices a fleet as if every instance
// runs to completion; real cloud incidents strike whole *fault domains*:
// spot reclaim waves gut a capacity pool, an AZ outage takes a zone, a
// partition isolates it. This experiment ranks mitigation mixes — retry
// only, placement spread, 2-way replication, deadline hedging, mirrored
// checkpoints, graceful degradation, and the full mix — across seeded
// incident classes, pricing each mix with the same Eq. 3-4 machinery
// (duplicate/hedged work is billed as utilization; spreading bills a
// cross-pool premium; snapshots bill their overhead).
//
// Fleet: 3x p2.xlarge spread over 1 region x 3 zones x 1 pool each,
// serving a 60 img/s Poisson trace for 10 minutes with a 1 s deadline.
// Incident classes (3 seeds each): reclaim waves (80 % of a pool),
// zone outages (120 s), and partitions (60 s, in-flight work lost) — all
// on top of a background of independent crashes.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/chaos.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "pruning/prune_plan.h"

namespace {

using namespace ccperf;

constexpr double kDurationS = 600.0;
constexpr double kLoad = 30.0;  // img/s: headroom for 2-way replication
constexpr double kCrossPoolPremium = 0.05;

std::vector<double> PoissonTrace(double rate, double duration,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> trace;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / rate;
    if (t > duration) break;
    trace.push_back(t);
  }
  return trace;
}

}  // namespace

int main() {
  bench::Banner(
      "EXT correlated failures: availability-vs-cost frontier",
      "Mitigation policy mixes ranked across seeded reclaim-wave, "
      "AZ-outage and partition incidents (ChaosSweep; every cell is a "
      "seeded, bitwise-reproducible simulation).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  cloud::ResourceConfig fleet;
  fleet.Add("p2.xlarge", 3);
  cloud::ChaosSweep sweep(serving, cloud::FaultDomainTopology::Uniform(1, 3,
                                                                       1),
                          fleet, kCrossPoolPremium);

  cloud::ChaosConfig config;
  config.perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  pruning::PrunePlan deep;
  deep.layer_ratios = {{"conv1", 0.4}, {"conv2", 0.5}, {"conv3", 0.5},
                       {"conv4", 0.5}, {"conv5", 0.5}};
  config.degraded_perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, deep), deep.Label());
  config.degraded_accuracy = accuracy.Evaluate(deep).top5;
  config.arrivals = PoissonTrace(kLoad, kDurationS, 20260808);
  config.duration_s = kDurationS;
  // A recovery-oriented SLO: completions that survive a retry/backoff or a
  // backlog drain still count as good; only truly late work is a miss.
  config.serving.deadline_s = 3.0;

  // --- the policy mixes ----------------------------------------------------
  std::vector<cloud::MitigationPolicy> policies(7);
  policies[0].name = "retry-only";  // the baseline every mix must beat
  policies[1].name = "spread";
  policies[1].spread = cloud::PlacementSpread::kSpread;
  policies[2].name = "replicate2+spread";
  policies[2].spread = cloud::PlacementSpread::kSpread;
  policies[2].redundancy.replicas = 2;
  policies[3].name = "hedge+spread";
  policies[3].spread = cloud::PlacementSpread::kSpread;
  policies[3].redundancy.hedge_after_s = 0.4;
  policies[3].redundancy.max_hedges = 1;
  policies[4].name = "checkpoint";
  policies[4].checkpointed = true;
  policies[4].checkpoint.interval_s = 60.0;
  policies[4].checkpoint.mirror_copies = 2;
  policies[4].checkpoint.mirror_cost_s = 0.5;
  policies[5].name = "degrade+spread";
  policies[5].spread = cloud::PlacementSpread::kSpread;
  policies[5].degrade = true;
  policies[6].name = "full-mix";
  policies[6].spread = cloud::PlacementSpread::kSpread;
  policies[6].redundancy.replicas = 2;
  policies[6].redundancy.hedge_after_s = 0.4;
  policies[6].redundancy.max_hedges = 1;
  policies[6].checkpointed = true;
  policies[6].checkpoint.interval_s = 60.0;
  policies[6].checkpoint.mirror_copies = 2;
  policies[6].checkpoint.mirror_cost_s = 0.5;

  // --- the incident classes, 3 seeds each ----------------------------------
  std::vector<cloud::IncidentScenario> scenarios;
  const std::vector<std::uint64_t> seeds = {11, 12, 13};
  for (std::uint64_t seed : seeds) {
    cloud::IncidentScenario wave;
    wave.name = "reclaim-wave-s" + std::to_string(seed);
    wave.correlated.reclaim_wave_rate = 12.0;  // per pool-hour
    wave.correlated.reclaim_fraction = 0.8;
    wave.independent.crash_rate = 2.0;
    wave.seed = seed;
    scenarios.push_back(wave);
  }
  for (std::uint64_t seed : seeds) {
    cloud::IncidentScenario outage;
    outage.name = "az-outage-s" + std::to_string(seed);
    outage.correlated.outage_rate = 9.0;  // per zone-hour
    outage.correlated.outage_s = 120.0;
    outage.independent.crash_rate = 2.0;
    outage.seed = seed;
    scenarios.push_back(outage);
  }
  for (std::uint64_t seed : seeds) {
    cloud::IncidentScenario partition;
    partition.name = "partition-s" + std::to_string(seed);
    partition.correlated.partition_rate = 9.0;  // per zone-hour
    partition.correlated.partition_s = 60.0;
    partition.independent.crash_rate = 4.0;
    partition.seed = seed;
    scenarios.push_back(partition);
  }

  const cloud::ChaosRanking ranking = sweep.Rank(policies, scenarios, config);

  // Per-class availability means: scenarios are laid out 3 waves, 3
  // outages, 3 partitions.
  const auto class_mean = [&](std::size_t p, std::size_t first) {
    double availability = 0.0;
    for (std::size_t s = first; s < first + seeds.size(); ++s) {
      availability += ranking.outcomes[p][s].availability;
    }
    return availability / static_cast<double>(seeds.size());
  };

  Table table({"policy mix", "avail %", "waves %", "outage %", "partn %",
               "cost $", "$/kGood", "rank"});
  std::vector<int> rank_of(policies.size());
  for (std::size_t r = 0; r < ranking.order.size(); ++r) {
    rank_of[static_cast<std::size_t>(ranking.order[r])] = static_cast<int>(r)
                                                          + 1;
  }
  for (std::size_t p = 0; p < policies.size(); ++p) {
    table.AddRow({policies[p].name,
                  Table::Num(ranking.mean_availability[p] * 100.0, 2),
                  Table::Num(class_mean(p, 0) * 100.0, 2),
                  Table::Num(class_mean(p, 3) * 100.0, 2),
                  Table::Num(class_mean(p, 6) * 100.0, 2),
                  Table::Num(ranking.mean_cost_usd[p], 3),
                  Table::Num(ranking.mean_cost_per_kilo_good[p], 4),
                  std::to_string(rank_of[p])});
  }
  std::cout << table.Render();

  // --- frontier CSV --------------------------------------------------------
  // One row per policy mix: mean availability vs mean cost (plus the
  // cost-effectiveness column the dominance call is made on). A mix
  // "dominates retry-only" when it is strictly more available AND strictly
  // cheaper per thousand in-deadline completions.
  const double base_availability = ranking.mean_availability[0];
  const double base_per_good = ranking.mean_cost_per_kilo_good[0];
  CsvWriter csv = bench::OpenCsv(
      "ext_correlated_failures_frontier.csv",
      {"policy", "mean_availability", "waves_availability",
       "outage_availability", "partition_availability", "mean_cost_usd",
       "mean_cost_per_kilo_good", "dominates_retry_only"});
  bool any_dominates = false;
  std::string dominator;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const bool dominates =
        p != 0 && ranking.mean_availability[p] > base_availability &&
        ranking.mean_cost_per_kilo_good[p] < base_per_good;
    if (dominates && !any_dominates) {
      any_dominates = true;
      dominator = policies[p].name;
    }
    csv.AddRow({policies[p].name,
                Table::Num(ranking.mean_availability[p], 6),
                Table::Num(class_mean(p, 0), 6),
                Table::Num(class_mean(p, 3), 6),
                Table::Num(class_mean(p, 6), 6),
                Table::Num(ranking.mean_cost_usd[p], 4),
                Table::Num(ranking.mean_cost_per_kilo_good[p], 4),
                dominates ? "1" : "0"});
  }
  csv.Close();

  const std::string& best =
      policies[static_cast<std::size_t>(ranking.order[0])].name;
  bench::Checkpoint("winning mix",
                    "correlated incidents reward blast-radius control",
                    best + " ranks first on mean availability");
  bench::Checkpoint(
      "frontier",
      "a replication/hedging/spread mix strictly dominates retry-only",
      any_dominates ? dominator + " dominates on availability AND $/kGood"
                    : "NO dominator found");
  std::cout << (any_dominates
                    ? "\n  => retry-only is off the frontier: paying for "
                      "redundancy/spread buys availability at lower cost "
                      "per good completion\n"
                    : "\n  => WARNING: expected dominance not reproduced — "
                      "inspect the scenario\n");
  return any_dominates ? 0 : 1;
}
