// Reproduces Fig. 10 (a, b): impact of accuracy on cloud cost — feasible
// configurations under a $300 budget and the cost-accuracy Pareto
// frontiers for one million CaffeNet images.
//
// Paper anchors: ~1000 feasible configurations, ~5 Pareto-optimal each for
// Top-1/Top-5, up to 55 % cost saved at the highest accuracy, and the
// cost frontier overlapping the time frontier's configurations.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "core/accuracy_model.h"
#include "core/explorer.h"
#include "pruning/variant_generator.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 10 — Impact of Accuracy on Cloud Cost",
                "Same space as Fig. 9 with a $300 cost budget.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ConfigSpaceExplorer explorer(sim, profile, accuracy);

  Rng rng(2020);  // same seed as Fig. 9: identical 60 variants
  const auto variants = pruning::RandomVariants(
      {"conv1", "conv2", "conv3", "conv4", "conv5"}, 60, 0.6, 0.1, rng);
  const auto configs = cloud::EnumerateConfigs(catalog.Category("p2"), 3);

  core::ExplorationResult result = explorer.Explore(
      variants, configs, 1000000,
      Seconds(std::numeric_limits<double>::infinity()),
      /*budget_usd=*/Usd(300.0));
  std::cout << "evaluated " << result.evaluated << " pairs; "
            << result.feasible.size() << " feasible within the $300 budget\n\n";

  // Percent-granularity accuracies, as in the paper's measurements (see
  // the matching note in bench_fig9).
  for (auto& p : result.feasible) {
    p.top1 = std::round(p.top1 * 100.0) / 100.0;
    p.top5 = std::round(p.top5 * 100.0) / 100.0;
  }

  auto csv = bench::OpenCsv("fig10_cost_accuracy.csv",
                            {"variant", "config", "cost", "top1", "top5"});
  for (const auto& p : result.feasible) {
    csv.AddRow({p.variant_label, p.config.ToString(),
                Table::Num(p.cost_usd.value(), 2), Table::Num(p.top1, 4),
                Table::Num(p.top5, 4)});
  }

  for (const bool use_top5 : {false, true}) {
    const auto frontier =
        core::CostAccuracyFrontier(result.feasible, use_top5);
    std::cout << "--- (" << (use_top5 ? "b) Top-5" : "a) Top-1")
              << " accuracy ---\n";
    AsciiChart chart(64, 14);
    std::vector<std::pair<double, double>> cloud_pts, pareto_pts;
    for (const auto& p : result.feasible) {
      cloud_pts.emplace_back((use_top5 ? p.top5 : p.top1) * 100.0,
                             p.cost_usd.value());
    }
    Table table(
        {"Pareto Config", "Variant", "Top-1 (%)", "Top-5 (%)", "Cost ($)"});
    for (std::size_t idx : frontier) {
      const auto& p = result.feasible[idx];
      pareto_pts.emplace_back((use_top5 ? p.top5 : p.top1) * 100.0,
                              p.cost_usd.value());
      table.AddRow({p.config.ToString(), p.variant_label,
                    Table::Num(p.top1 * 100.0, 1),
                    Table::Num(p.top5 * 100.0, 1),
                    Table::Num(p.cost_usd.value(), 2)});
    }
    chart.AddSeries("feasible", '.', cloud_pts);
    chart.AddSeries("pareto", 'P', pareto_pts);
    std::cout << chart.Render() << table.Render();

    const auto& best = result.feasible[frontier.front()];
    double worst_same = best.cost_usd.value();
    for (const auto& p : result.feasible) {
      const double acc_best = use_top5 ? best.top5 : best.top1;
      const double acc_p = use_top5 ? p.top5 : p.top1;
      if (acc_p == acc_best) {
        worst_same = std::max(worst_same, p.cost_usd.value());
      }
    }
    bench::Checkpoint("Pareto count", "~5",
                      std::to_string(frontier.size()));
    bench::Checkpoint(
        "cost saved at highest accuracy vs worst same-accuracy config",
        "up to 55 %",
        Table::Num((1.0 - best.cost_usd.value() / worst_same) * 100.0, 1) +
            " %");
    std::cout << "\n";
  }
  return 0;
}
