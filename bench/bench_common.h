// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench prints (a) a banner naming the paper artifact it regenerates,
// (b) the series/rows as an ASCII table (and chart where a shape matters),
// and (c) writes a machine-readable CSV under ./bench_results/.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"

namespace ccperf::bench {

/// Print the bench banner.
inline void Banner(const std::string& artifact, const std::string& summary) {
  std::cout << "\n=== " << artifact << " ===\n" << summary << "\n\n";
}

/// Print a "paper vs ours" checkpoint line.
inline void Checkpoint(const std::string& what, const std::string& paper,
                       const std::string& ours) {
  std::cout << "  [check] " << what << ": paper " << paper << " | ours "
            << ours << "\n";
}

/// Directory for CSV outputs (created on demand).
inline std::string ResultsDir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Open a CSV in the results dir.
inline CsvWriter OpenCsv(const std::string& name,
                         const std::vector<std::string>& header) {
  return CsvWriter(ResultsDir() + "/" + name, header);
}

}  // namespace ccperf::bench
