// Reproduces Fig. 3: CaffeNet execution-time distribution across layers.
//
// Shape to reproduce: convolution layers account for > 90 % of inference
// time, conv1 largest, conv2 second, fully-connected layers negligible.
// (Absolute shares are the reconciled calibration — see DESIGN.md §2 for
// why the paper's own 51 %/16 % split contradicts its Fig. 6.)
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 3 — Caffenet Execution Time Distribution",
                "Per-layer share of inference time on p2.xlarge.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::Characterization ch(sim, profile, accuracy);

  Table table({"Layer", "Share (%)", "Bar"});
  auto csv = bench::OpenCsv("fig3_layer_time_distribution.csv",
                            {"layer", "share"});
  double conv_total = 0.0;
  for (const auto& [name, share] : ch.TimeDistribution()) {
    table.AddRow({name, Table::Num(share * 100.0, 1),
                  std::string(static_cast<std::size_t>(share * 60.0), '#')});
    csv.AddRow({name, Table::Num(share, 4)});
    if (name.rfind("conv", 0) == 0) conv_total += share;
  }
  std::cout << table.Render();

  bench::Checkpoint("conv layers' share", "> 90 %",
                    Table::Num(conv_total * 100.0, 1) + " %");
  bench::Checkpoint("largest layer", "conv1", "conv1 (by construction of "
                                              "the calibrated profile)");
  bench::Checkpoint("fc layers", "very small", "see rows fc1-fc3");
  return 0;
}
