// Reproduces Fig. 6 (a-e): CaffeNet inference time and Top-1/Top-5 accuracy
// vs. prune ratio, pruning one convolution layer at a time (50,000 images
// on p2.xlarge).
//
// Paper anchors: conv2 shows the largest time reduction (19 -> ~14 min at
// 90 %), conv1 the smallest (19 -> ~16.6 min); accuracy stays flat through
// a sweet-spot region and conv1 is the most accuracy-critical layer.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"
#include "core/sweet_spot.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 6 — Caffenet: Changing Accuracy with Individual "
                "Layer Pruning",
                "Per-layer prune sweeps: time (50k images, p2.xlarge) and "
                "Top-1/Top-5 accuracy.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::Characterization ch(sim, profile, accuracy);

  const std::vector<double> ratios{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  auto csv = bench::OpenCsv(
      "fig6_caffenet_layer_pruning.csv",
      {"layer", "ratio", "minutes", "top1", "top5"});

  double conv1_t90 = 0.0, conv2_t90 = 0.0, t0 = 0.0;
  for (const char* layer : {"conv1", "conv2", "conv3", "conv4", "conv5"}) {
    const auto curve =
        ch.SingleLayerSweep("p2.xlarge", layer, ratios, 50000);
    std::cout << "--- (" << layer << ") ---\n";
    Table table({"Prune (%)", "Time (min)", "Top-1 (%)", "Top-5 (%)"});
    for (const auto& p : curve) {
      table.AddRow({Table::Num(p.ratio * 100.0, 0),
                    Table::Num(p.seconds / 60.0, 1),
                    Table::Num(p.top1 * 100.0, 1),
                    Table::Num(p.top5 * 100.0, 1)});
      csv.AddRow({layer, Table::Num(p.ratio, 2), Table::Num(p.seconds / 60.0, 2),
                  Table::Num(p.top1, 4), Table::Num(p.top5, 4)});
    }
    std::cout << table.Render();
    const core::SweetSpot spot = core::FindSweetSpot(curve, 0.04);
    if (spot.exists) {
      std::cout << "  sweet-spot region up to " << spot.last_ratio * 100.0
                << " % (time -" << Table::Num(spot.time_saving * 100.0, 1)
                << " %, top5 -" << Table::Num(spot.accuracy_drop * 100.0, 1)
                << " pp)\n\n";
    } else {
      std::cout << "  no sweet spot under 4 pp tolerance\n\n";
    }
    if (std::string(layer) == "conv1") conv1_t90 = curve.back().seconds;
    if (std::string(layer) == "conv2") conv2_t90 = curve.back().seconds;
    t0 = curve.front().seconds;
  }

  bench::Checkpoint("unpruned time", "19 min", Table::Num(t0 / 60.0, 1) + " min");
  bench::Checkpoint("conv2@90 time (largest drop)", "~14 min",
                    Table::Num(conv2_t90 / 60.0, 1) + " min");
  bench::Checkpoint("conv1@90 time (smallest drop)", "~16.6 min",
                    Table::Num(conv1_t90 / 60.0, 1) + " min");
  bench::Checkpoint("conv1@90 Top-5", "~0 %", "see conv1 table");
  return 0;
}
