// Extension: kernel-level GFLOP/s of the blocked+packed GEMM versus the
// row-panel reference kernel across the GEMM shapes induced by the paper's
// Table 1 CaffeNet layers (and representative GoogLeNet inception shapes).
// The paper's time-accuracy trade-off is measured on top of the dense
// engine, so the engine's absolute efficiency sets the baseline every
// pruned variant is compared against. "packed" packs A on the fly each
// call; "cached" reuses one PackedA across calls — the conv/fc layer
// pattern where weights are invariant for a whole forward pass.
//
// The int8 columns measure the quantized path (tensor/quant.h) with the
// weight pack cached, as the layers run it: the per-call cost is the
// activation scale scan + B quantize-pack + the byte-dot microkernel +
// fused dequant. "int8 GF/s" counts the same 2*m*n*k useful flops, so the
// ratio against the cached float column is the roofline gain the
// kInt8TimeFactor constant in sparse_dispatch.h is calibrated from.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"

namespace {

using namespace ccperf;

struct GemmShape {
  std::string name;  // layer the shape comes from
  std::int64_t m, n, k;
  bool table1;  // CaffeNet Table-1 shape (int8 acceptance gate pool)
};

// m = out_channels/group, n = output pixels, k = patch size (in/g * kh * kw).
const std::vector<GemmShape> kShapes = {
    {"caffenet conv1", 96, 3025, 363, true},
    {"caffenet conv2/g", 128, 729, 1200, true},
    {"caffenet conv3", 384, 169, 2304, true},
    {"caffenet conv4/g", 192, 169, 1728, true},
    {"caffenet conv5/g", 128, 169, 1728, true},
    {"googlenet conv1-7x7", 64, 12544, 147, false},
    {"googlenet 3a-3x3", 128, 784, 864, false},
    {"googlenet 5b-3x3", 384, 49, 1728, false},
};

std::vector<float> RandomVec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.NextFloat(-1.0f, 1.0f);
  return v;
}

/// Best-of-reps wall time of fn, with one untimed warmup.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  fn();
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  bench::Banner("Extension — Blocked GEMM Speedup (Table 1 shapes)",
                "GFLOP/s of GemmReference (row-panel) vs the blocked+packed "
                "float kernel vs the int8 quantized kernel on the conv GEMM "
                "shapes of the paper's models. 'cached' amortizes the weight "
                "pack across calls as the layers do.");

  Table table({"layer shape", "m", "n", "k", "ref GF/s", "packed GF/s",
               "cached GF/s", "speedup", "int8 GF/s", "int8 gain"});
  auto csv = bench::OpenCsv(
      "ext_gemm_speedup.csv",
      {"shape", "m", "n", "k", "ref_gflops", "packed_gflops", "cached_gflops",
       "speedup_packed_vs_ref", "int8_gflops", "int8_gain_vs_cached"});

  double conv2_speedup = 0.0;
  double best_int8_gain = 0.0;
  std::string best_int8_shape;
  for (const auto& shape : kShapes) {
    const auto a = RandomVec(shape.m * shape.k, 11);
    const auto b = RandomVec(shape.k * shape.n, 12);
    std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n));
    const double flops = 2.0 * static_cast<double>(shape.m) *
                         static_cast<double>(shape.n) *
                         static_cast<double>(shape.k);
    // Scale reps so each measurement does comparable total work.
    const int reps = std::max(3, static_cast<int>(3e9 / flops));

    const double ref_s = BestSeconds(
        reps, [&] { GemmReference(shape.m, shape.n, shape.k, a, b, c); });
    const double packed_s =
        BestSeconds(reps, [&] { Gemm(shape.m, shape.n, shape.k, a, b, c); });
    const PackedA packed = PackA(shape.m, shape.k, a);
    const double cached_s =
        BestSeconds(reps, [&] { GemmPacked(packed, shape.n, b, c); });
    const QuantizedPackedA qpacked = QuantizePackA(shape.m, shape.k, a);
    const double int8_s =
        BestSeconds(reps, [&] { GemmInt8(qpacked, shape.n, b, c); });

    const double ref_gf = flops / ref_s / 1e9;
    const double packed_gf = flops / packed_s / 1e9;
    const double cached_gf = flops / cached_s / 1e9;
    const double int8_gf = flops / int8_s / 1e9;
    const double speedup = ref_s / packed_s;
    const double int8_gain = cached_s / int8_s;
    if (shape.name == "caffenet conv2/g") conv2_speedup = speedup;
    if (shape.table1 && int8_gain > best_int8_gain) {
      best_int8_gain = int8_gain;
      best_int8_shape = shape.name;
    }

    table.AddRow({shape.name, std::to_string(shape.m),
                  std::to_string(shape.n), std::to_string(shape.k),
                  Table::Num(ref_gf, 1), Table::Num(packed_gf, 1),
                  Table::Num(cached_gf, 1), Table::Num(speedup, 2) + "x",
                  Table::Num(int8_gf, 1), Table::Num(int8_gain, 2) + "x"});
    csv.AddRow({shape.name, std::to_string(shape.m), std::to_string(shape.n),
                std::to_string(shape.k), Table::Num(ref_gf, 2),
                Table::Num(packed_gf, 2), Table::Num(cached_gf, 2),
                Table::Num(speedup, 3), Table::Num(int8_gf, 2),
                Table::Num(int8_gain, 3)});
  }
  csv.Close();

  std::cout << table.Render() << "\n";
  bench::Checkpoint("conv2-shape packed speedup vs reference",
                    ">= 2x (acceptance bar)",
                    Table::Num(conv2_speedup, 2) + "x");
  if (conv2_speedup < 2.0) {
    std::cout << "  [FAIL] blocked kernel below the 2x acceptance bar\n";
    return 1;
  }
  bench::Checkpoint(
      "best int8 gain vs cached float on a Table-1 shape (" +
          best_int8_shape + ")",
      ">= 2x (acceptance bar)", Table::Num(best_int8_gain, 2) + "x");
  if (best_int8_gain < 2.0) {
    std::cout << "  [FAIL] int8 kernel below the 2x acceptance bar\n";
    return 1;
  }
  std::cout << "\nCSV: bench_results/ext_gemm_speedup.csv\n";
  return 0;
}
