// Reproduces Fig. 11: time-accuracy positions of degrees of pruning with
// their TAR values — conv1 swept 0-40 %, conv2 swept 0-50 %, in 10 % steps
// (the per-layer sweet-spot regions of Fig. 6), 50,000 images on p2.xlarge.
//
// Shape to reproduce: for a fixed accuracy several degrees of pruning with
// different times exist; the lowest-TAR one is the efficient choice.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"
#include "core/metrics.h"
#include "pruning/variant_generator.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 11 — Time-Accuracy of Degrees of Pruning with TAR",
                "conv1 x conv2 sweet-spot grid; TAR = minutes per unit "
                "accuracy (lower is better).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::Characterization ch(sim, profile, accuracy);

  const auto plans = pruning::CartesianSweep(
      {"conv1", "conv2"},
      {{0.0, 0.1, 0.2, 0.3, 0.4}, {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}});

  Table table({"Degree of Pruning", "Time (min)", "Top-1 (%)", "Top-5 (%)",
               "TAR-1 (min)", "TAR-5 (min)"});
  auto csv = bench::OpenCsv(
      "fig11_tar_degrees.csv",
      {"plan", "minutes", "top1", "top5", "tar1_min", "tar5_min"});
  AsciiChart chart(64, 14);
  std::vector<std::pair<double, double>> pts;
  double best_tar5 = 1e18, worst_tar5 = 0.0;
  for (const auto& plan : plans) {
    const core::CurvePoint p = ch.EvaluatePlan("p2.xlarge", plan, 50000);
    const double minutes = p.seconds / 60.0;
    const double tar1 = core::TimeAccuracyRatio(Minutes(minutes), p.top1);
    const double tar5 = core::TimeAccuracyRatio(Minutes(minutes), p.top5);
    table.AddRow({plan.Label(), Table::Num(minutes, 1),
                  Table::Num(p.top1 * 100.0, 1), Table::Num(p.top5 * 100.0, 1),
                  Table::Num(tar1, 1), Table::Num(tar5, 1)});
    csv.AddRow({plan.Label(), Table::Num(minutes, 2), Table::Num(p.top1, 4),
                Table::Num(p.top5, 4), Table::Num(tar1, 2),
                Table::Num(tar5, 2)});
    pts.emplace_back(p.top5 * 100.0, minutes);
    best_tar5 = std::min(best_tar5, tar5);
    worst_tar5 = std::max(worst_tar5, tar5);
  }
  std::cout << table.Render();
  chart.AddSeries("degree-of-pruning", '*', pts);
  std::cout << chart.Render();

  bench::Checkpoint("TAR separates same-accuracy variants",
                    "lower TAR = less time per accuracy unit",
                    "TAR-5 spans " + Table::Num(best_tar5, 1) + " - " +
                        Table::Num(worst_tar5, 1) + " min");
  return 0;
}
