// Extension: the paper surveys quantization and weight sharing (§2.1) as
// the accuracy knobs used in memory-constrained settings, and argues that
// on the cloud pruning is the right knob because only it cuts *time*. This
// bench makes that argument quantitative on the real CPU engine: for each
// technique at matched compression, measure parameter memory, inference
// time and teacher-student accuracy.
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/empirical_accuracy.h"
#include "data/synthetic_dataset.h"
#include "nn/model_zoo.h"
#include "pruning/quantizer.h"
#include "pruning/variant_generator.h"

namespace {

using namespace ccperf;

double TimeInference(const nn::Network& net, const Tensor& batch) {
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    (void)net.Forward(batch);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  bench::Banner("Extension — Compression Technique Trade-offs",
                "Pruning vs quantization vs weight sharing at matched "
                "~4-8x parameter compression, real inference on a scaled "
                "CaffeNet, accuracy = Top-5 teacher agreement.");

  nn::ModelConfig config;
  config.channel_scale = 0.125;
  config.num_classes = 50;
  config.weight_seed = 99;
  const nn::Network base = nn::BuildCaffeNet(config);
  const data::SyntheticImageDataset dataset(Shape{3, 227, 227}, 50, 64, 5,
                                            0.4f);
  const core::EmpiricalAccuracyEvaluator evaluator(base, dataset, 16, 4);
  const Tensor batch = dataset.Batch(0, 4);
  const auto convs = std::vector<std::string>{"conv1", "conv2", "conv3",
                                              "conv4", "conv5"};

  struct Technique {
    std::string name;
    std::function<void(nn::Network&)> apply;
  };
  const std::vector<Technique> techniques{
      {"none (baseline)", [](nn::Network&) {}},
      {"prune 75% (magnitude)",
       [&](nn::Network& net) {
         pruning::ApplyPlanInPlace(
             net, pruning::UniformPlan(net.WeightedLayerNames(), 0.75,
                                       pruning::PrunerFamily::kMagnitude));
       }},
      {"quantize 8-bit",
       [](nn::Network& net) { pruning::Quantizer(8).ApplyToNetwork(net); }},
      {"quantize 4-bit",
       [](nn::Network& net) { pruning::Quantizer(4).ApplyToNetwork(net); }},
      {"share 16 clusters",
       [](nn::Network& net) {
         pruning::WeightSharer(16).ApplyToNetwork(net);
       }},
  };

  Table table({"technique", "params memory (MB)", "inference (ms/img)",
               "Top-1 agree (%)", "Top-5 agree (%)"});
  auto csv = bench::OpenCsv(
      "ext_compression.csv",
      {"technique", "memory_mb", "ms_per_image", "top1", "top5"});
  double base_ms = 0.0, prune_ms = 0.0, quant_ms = 0.0;
  for (const auto& technique : techniques) {
    nn::Network net = base.Clone();
    technique.apply(net);
    const pruning::MemoryReport mem = pruning::AnalyzeMemory(net, 8, 16);
    double memory_bytes = mem.dense_fp32_bytes;
    if (technique.name.rfind("prune", 0) == 0) memory_bytes = mem.sparse_csr_bytes;
    if (technique.name == "quantize 8-bit") memory_bytes = mem.quantized_bytes;
    if (technique.name == "quantize 4-bit") memory_bytes = mem.quantized_bytes / 2.0;
    if (technique.name.rfind("share", 0) == 0) memory_bytes = mem.shared_bytes;

    const double seconds = TimeInference(net, batch) / 4.0;
    const core::AccuracyResult agree = evaluator.Agreement(net);
    table.AddRow({technique.name, Table::Num(memory_bytes / 1e6, 2),
                  Table::Num(seconds * 1000.0, 1),
                  Table::Num(agree.top1 * 100.0, 1),
                  Table::Num(agree.top5 * 100.0, 1)});
    csv.AddRow({technique.name, Table::Num(memory_bytes / 1e6, 3),
                Table::Num(seconds * 1000.0, 2), Table::Num(agree.top1, 4),
                Table::Num(agree.top5, 4)});
    if (technique.name == "none (baseline)") base_ms = seconds;
    if (technique.name.rfind("prune", 0) == 0) prune_ms = seconds;
    if (technique.name == "quantize 8-bit") quant_ms = seconds;
  }
  std::cout << table.Render();

  bench::Checkpoint("pruning cuts inference time",
                    "only pruning does (paper §2.1)",
                    Table::Num(base_ms * 1000.0, 1) + " -> " +
                        Table::Num(prune_ms * 1000.0, 1) + " ms/img");
  bench::Checkpoint("quantization does not (no low-precision hardware)",
                    "time unchanged",
                    Table::Num(quant_ms * 1000.0, 1) + " ms/img vs baseline " +
                        Table::Num(base_ms * 1000.0, 1));
  return 0;
}
