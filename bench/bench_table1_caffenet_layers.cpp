// Reproduces Table 1: CaffeNet layer geometry, printed straight from the
// actual model builder (so the table can never drift from the code).
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "nn/conv_layer.h"
#include "nn/fc_layer.h"
#include "nn/flops.h"
#include "nn/model_zoo.h"

int main() {
  using namespace ccperf;
  bench::Banner("Table 1 — Caffenet Layers",
                "Layer geometry of the built CaffeNet model.");

  nn::ModelConfig config;
  config.weight_seed = 0;
  const nn::Network net = nn::BuildCaffeNet(config);
  const nn::NetworkCostReport report = nn::AnalyzeNetwork(net, 1);

  Table table({"Layer", "Size", "Number of Filters", "Filter Size"});
  table.AddRow({"input", "227 x 227 x 3", "-", "-"});
  auto csv = bench::OpenCsv("table1_caffenet_layers.csv",
                            {"layer", "size", "filters", "filter_size"});
  csv.AddRow({"input", "227x227x3", "", ""});

  for (const auto& info : report.layers) {
    const nn::Layer* layer = net.FindLayer(info.name);
    std::ostringstream size, filters, fsize;
    if (const auto* conv = dynamic_cast<const nn::ConvLayer*>(layer)) {
      size << info.output_shape.Dim(2) << " x " << info.output_shape.Dim(3)
           << " x " << info.output_shape.Dim(1);
      filters << conv->Params().out_channels;
      const Shape& w = conv->Weights().GetShape();
      fsize << w.Dim(2) << " x " << w.Dim(3) << " x " << w.Dim(1);
    } else if (const auto* fc = dynamic_cast<const nn::FcLayer*>(layer)) {
      size << fc->OutFeatures();
      filters << "-";
      fsize << "-";
    } else {
      continue;  // Table 1 lists only weighted layers
    }
    table.AddRow({info.name, size.str(), filters.str(), fsize.str()});
    csv.AddRow({info.name, size.str(), filters.str(), fsize.str()});
  }
  std::cout << table.Render();

  bench::Checkpoint("conv1 size", "55 x 55 x 96", "see row conv1");
  bench::Checkpoint("conv2 filter size", "5 x 5 x 48", "see row conv2");
  bench::Checkpoint("fc3 size", "1000", "see row fc3");
  std::cout << "\nTotal parameters: " << net.ParameterCount() / 1000000.0
            << " M (AlexNet/CaffeNet ~61 M)\n";
  return 0;
}
