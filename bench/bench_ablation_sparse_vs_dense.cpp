// Ablation: sparse execution (blocked CSR / 4x4 BSR) vs the packed dense
// GEMM on the real CPU engine.
//
// The entire time-benefit of pruning rests on sparse execution getting
// faster as weights are zeroed (DESIGN.md §5). This ablation measures the
// crossover on the conv2 shape for both sparsity structures the pruners
// produce — element-magnitude (unstructured) and whole-filter (row-
// structured) — and emits bench_results/sparse_crossover.csv, the
// calibration record behind the dispatch constants in
// tensor/sparse_dispatch.h (kCsrCrossoverDensity / kBsrCrossoverDensity).
// Regenerate with scripts/calibrate_sparse_threshold.sh after touching
// either kernel family.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/sparse.h"
#include "tensor/sparse_dispatch.h"

namespace {

double TimeBest(const std::function<void()>& fn, int reps = 5) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    ccperf::Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Unstructured: independent per-element zeros (magnitude pruning's shape).
std::vector<float> ElementSparseWeights(ccperf::Rng& rng, std::int64_t rows,
                                        std::int64_t cols, double sparsity) {
  std::vector<float> w(static_cast<std::size_t>(rows * cols));
  for (auto& v : w) {
    v = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
  }
  return w;
}

// Row-structured: whole filters zeroed (filter pruning's shape). A single
// surviving filter keeps its whole 4-row block stored, so BSR fill bottoms
// out near 1/kBlockRows here.
std::vector<float> FilterSparseWeights(ccperf::Rng& rng, std::int64_t rows,
                                       std::int64_t cols, double sparsity) {
  std::vector<float> w(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    const bool dead = rng.NextDouble() < sparsity;
    for (std::int64_t c = 0; c < cols; ++c) {
      w[static_cast<std::size_t>(r * cols + c)] =
          dead ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
    }
  }
  return w;
}

// Block-structured: filters pruned in aligned groups of kBlockRows
// (FilterPruner's block_aligned mode). Dead groups drop whole BSR block
// rows and surviving blocks stay full, so fill is ~1.0 at every sparsity —
// the shape BSR is built for.
std::vector<float> BlockSparseWeights(ccperf::Rng& rng, std::int64_t rows,
                                      std::int64_t cols, double sparsity) {
  constexpr std::int64_t kGroup = ccperf::BsrMatrix::kBlockRows;
  std::vector<float> w(static_cast<std::size_t>(rows * cols));
  for (std::int64_t g = 0; g < rows; g += kGroup) {
    const bool dead = rng.NextDouble() < sparsity;
    for (std::int64_t r = g; r < std::min(rows, g + kGroup); ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        w[static_cast<std::size_t>(r * cols + c)] =
            dead ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
      }
    }
  }
  return w;
}

}  // namespace

int main() {
  using namespace ccperf;
  bench::Banner(
      "Ablation — Sparse (blocked CSR / BSR) vs Packed Dense Execution",
      "conv2-shaped multiply (256 x 1200 weights x 729 pixels) at increasing "
      "weight sparsity, unstructured and filter-structured, real CPU "
      "kernels.");

  constexpr std::int64_t kRows = 256;   // conv2 filters
  constexpr std::int64_t kCols = 1200;  // 5x5x48 patch
  constexpr std::int64_t kPixels = 729; // 27x27 output

  Rng rng(7);
  std::vector<float> columns(static_cast<std::size_t>(kCols * kPixels));
  for (auto& v : columns) v = rng.NextFloat(-1.0f, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(kRows * kPixels));

  auto csv = bench::OpenCsv(
      "ablation_sparse_vs_dense.csv",
      {"structure", "sparsity", "bsr_fill", "dense_ms", "csr_ms", "bsr_ms",
       "csr_speedup", "bsr_speedup", "dispatch"});
  auto crossover_csv = bench::OpenCsv(
      "sparse_crossover.csv",
      {"structure", "kernel", "metric", "crossover_density"});

  const std::vector<double> sparsities{0.0,  0.2,  0.35, 0.45, 0.5,  0.55,
                                       0.6,  0.65, 0.7,  0.8,  0.9,  0.95};
  struct Structure {
    std::string name;
    std::function<std::vector<float>(ccperf::Rng&, std::int64_t, std::int64_t,
                                     double)>
        make;
  };
  const std::vector<Structure> structures{
      {"element", ElementSparseWeights},
      {"filter", FilterSparseWeights},
      {"block", BlockSparseWeights},
  };
  for (const auto& [structure, make_weights] : structures) {
    Table table({"Sparsity (%)", "BSR fill", "Dense (ms)", "CSR (ms)",
                 "BSR (ms)", "CSR x", "BSR x", "Dispatch"});
    double csr_crossover = -1.0;
    double bsr_crossover = -1.0;
    for (double sparsity : sparsities) {
      const auto weights = make_weights(rng, kRows, kCols, sparsity);
      const CsrMatrix csr = CsrMatrix::FromDense(kRows, kCols, weights);
      const BsrMatrix bsr = BsrMatrix::FromDense(kRows, kCols, weights);
      const double density = 1.0 - csr.Sparsity();

      const double dense_s = TimeBest(
          [&] { Gemm(kRows, kPixels, kCols, weights, columns, out); });
      const double csr_s =
          TimeBest([&] { csr.MultiplyDense(columns, kPixels, out); });
      const double bsr_s =
          TimeBest([&] { bsr.MultiplyDense(columns, kPixels, out); });
      const double csr_x = dense_s / csr_s;
      const double bsr_x = dense_s / bsr_s;
      // Largest density at which the sparse kernel wins = the crossover the
      // dispatch policy thresholds on (sparsities sweep upward, so the
      // first win is the one that matters). BSR's crossover is recorded in
      // stored-block density (density / fill) because that is what its cost
      // scales with and what ChooseSparseKernel thresholds on.
      if (csr_crossover < 0.0 && csr_x >= 1.0) csr_crossover = density;
      if (bsr_crossover < 0.0 && bsr_x >= 1.0 && bsr.Fill() > 0.0) {
        bsr_crossover = density / bsr.Fill();
      }

      const SparseKernel choice =
          ChooseSparseKernel(density, bsr.Fill());
      table.AddRow({Table::Num(sparsity * 100.0, 0),
                    Table::Num(bsr.Fill(), 2), Table::Num(dense_s * 1000.0, 2),
                    Table::Num(csr_s * 1000.0, 2),
                    Table::Num(bsr_s * 1000.0, 2), Table::Num(csr_x, 2),
                    Table::Num(bsr_x, 2), ToString(choice)});
      csv.AddRow({structure, Table::Num(sparsity, 2),
                  Table::Num(bsr.Fill(), 3), Table::Num(dense_s * 1000.0, 3),
                  Table::Num(csr_s * 1000.0, 3),
                  Table::Num(bsr_s * 1000.0, 3), Table::Num(csr_x, 3),
                  Table::Num(bsr_x, 3), ToString(choice)});
    }
    std::cout << "--- " << structure << "-sparse weights ---\n"
              << table.Render();
    crossover_csv.AddRow(
        {structure, "csr", "density",
         csr_crossover < 0.0 ? "never" : Table::Num(csr_crossover, 3)});
    crossover_csv.AddRow(
        {structure, "bsr", "block_density",
         bsr_crossover < 0.0 ? "never" : Table::Num(bsr_crossover, 3)});
    bench::Checkpoint(
        structure + " CSR crossover density",
        ">= kCsrCrossoverDensity = " + Table::Num(kCsrCrossoverDensity, 2),
        csr_crossover < 0.0 ? "never" : Table::Num(csr_crossover, 2));
    bench::Checkpoint(
        structure + " BSR crossover block density",
        ">= kBsrCrossoverDensity = " + Table::Num(kBsrCrossoverDensity, 2),
        bsr_crossover < 0.0 ? "never" : Table::Num(bsr_crossover, 2));
  }
  bench::Checkpoint("high-sparsity speedup", "time falls with density",
                    "see last rows of each table");
  return 0;
}
