// Ablation: CSR sparse execution vs. dense GEMM on the real CPU engine.
//
// The entire time-benefit of pruning rests on sparse execution getting
// faster as weights are zeroed (DESIGN.md §5). This ablation measures the
// crossover: at which sparsity does CSR beat dense GEMM for a conv2-shaped
// multiply? It justifies ConvLayer::kSparseThreshold (density 0.65).
#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/sparse.h"

namespace {

double TimeBest(const std::function<void()>& fn, int reps = 5) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    ccperf::Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  using namespace ccperf;
  bench::Banner("Ablation — Sparse (CSR) vs Dense Execution",
                "conv2-shaped multiply (256 x 1200 weights x 729 pixels) at "
                "increasing weight sparsity, real CPU kernels.");

  constexpr std::int64_t kRows = 256;   // conv2 filters
  constexpr std::int64_t kCols = 1200;  // 5x5x48 patch
  constexpr std::int64_t kPixels = 729; // 27x27 output

  Rng rng(7);
  std::vector<float> columns(static_cast<std::size_t>(kCols * kPixels));
  for (auto& v : columns) v = rng.NextFloat(-1.0f, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(kRows * kPixels));

  Table table({"Sparsity (%)", "Dense GEMM (ms)", "CSR (ms)", "CSR speedup"});
  auto csv = bench::OpenCsv("ablation_sparse_vs_dense.csv",
                            {"sparsity", "dense_ms", "csr_ms", "speedup"});
  double crossover = -1.0;
  for (double sparsity : {0.0, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95}) {
    std::vector<float> weights(static_cast<std::size_t>(kRows * kCols));
    for (auto& v : weights) {
      v = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
    }
    const CsrMatrix csr = CsrMatrix::FromDense(kRows, kCols, weights);

    const double dense_s = TimeBest(
        [&] { Gemm(kRows, kPixels, kCols, weights, columns, out); });
    const double csr_s =
        TimeBest([&] { csr.MultiplyDense(columns, kPixels, out); });
    const double speedup = dense_s / csr_s;
    if (crossover < 0.0 && speedup >= 1.0) crossover = sparsity;
    table.AddRow({Table::Num(sparsity * 100.0, 0),
                  Table::Num(dense_s * 1000.0, 2),
                  Table::Num(csr_s * 1000.0, 2), Table::Num(speedup, 2)});
    csv.AddRow({Table::Num(sparsity, 2), Table::Num(dense_s * 1000.0, 3),
                Table::Num(csr_s * 1000.0, 3), Table::Num(speedup, 3)});
  }
  std::cout << table.Render();
  bench::Checkpoint(
      "crossover sparsity", "~0.35 (kSparseThreshold = density 0.65)",
      crossover < 0.0 ? "never" : Table::Num(crossover, 2));
  bench::Checkpoint("high-sparsity speedup", "time falls with density",
                    "see last rows");
  return 0;
}
