// Reproduces Fig. 7 (a-f): GoogLeNet time + accuracy vs. prune ratio for
// the six convolution layers the paper selected from different depths.
//
// Paper anchors: conv2-3x3 has the strongest time impact (13 -> ~9 min at
// 90 %); accuracy stays flat until ~60 % pruning for these layers.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"
#include "core/sweet_spot.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 7 — Googlenet: Changing Accuracy with Individual "
                "Layer Pruning",
                "Six selected conv layers: time (50k images, p2.xlarge) and "
                "Top-1/Top-5 accuracy.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::GoogLeNet();
  const core::Characterization ch(sim, profile, accuracy);

  const std::vector<double> ratios{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  const std::vector<std::string> layers{
      "conv1-7x7-s2",     "conv2-3x3",        "inception-3a-3x3",
      "inception-4d-5x5", "inception-4e-5x5", "inception-5a-3x3"};
  auto csv = bench::OpenCsv("fig7_googlenet_layer_pruning.csv",
                            {"layer", "ratio", "minutes", "top1", "top5"});

  double conv2_t90 = 0.0, t0 = 0.0;
  for (const auto& layer : layers) {
    const auto curve = ch.SingleLayerSweep("p2.xlarge", layer, ratios, 50000);
    std::cout << "--- (" << layer << ") ---\n";
    Table table({"Prune (%)", "Time (min)", "Top-1 (%)", "Top-5 (%)"});
    for (const auto& p : curve) {
      table.AddRow({Table::Num(p.ratio * 100.0, 0),
                    Table::Num(p.seconds / 60.0, 2),
                    Table::Num(p.top1 * 100.0, 1),
                    Table::Num(p.top5 * 100.0, 1)});
      csv.AddRow({layer, Table::Num(p.ratio, 2),
                  Table::Num(p.seconds / 60.0, 3), Table::Num(p.top1, 4),
                  Table::Num(p.top5, 4)});
    }
    std::cout << table.Render();
    const core::SweetSpot spot = core::FindSweetSpot(curve, 0.04);
    if (spot.exists) {
      std::cout << "  sweet-spot region up to " << spot.last_ratio * 100.0
                << " %\n\n";
    }
    if (layer == "conv2-3x3") conv2_t90 = curve.back().seconds;
    t0 = curve.front().seconds;
  }

  bench::Checkpoint("unpruned time", "13 min", Table::Num(t0 / 60.0, 1) + " min");
  bench::Checkpoint("conv2-3x3@90 (strongest layer)", "~9 min",
                    Table::Num(conv2_t90 / 60.0, 1) + " min");
  bench::Checkpoint("accuracy plateau", "flat until ~60 % pruning",
                    "see Top-5 columns");
  return 0;
}
