// Reproduces Fig. 12: CaffeNet CAR across the six EC2 resource types, with
// (a) all GPUs utilized and (b) only one GPU utilized, for the variant with
// conv1 and conv2 pruned by 20 %.
//
// Paper anchors: CAR approximately constant within a resource category and
// lower for g3 than p2 (paper ~0.35 vs ~0.57, ratio ~0.61). When only one
// GPU of a multi-GPU instance is used we report the per-GPU price share
// (the paper's two sub-figures show near-identical CARs, implying per-GPU
// accounting; see EXPERIMENTS.md).
#include <iostream>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/pricing.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/metrics.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 12 — Caffenet CAR Across Resource Types",
                "conv1-2 pruned 20 %, 50,000 images; CAR = cost / Top-5.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  pruning::PrunePlan plan;
  plan.layer_ratios["conv1"] = 0.2;
  plan.layer_ratios["conv2"] = 0.2;
  const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, plan), plan.Label());
  const core::AccuracyResult acc = accuracy.Evaluate(plan);
  const std::int64_t kImages = 50000;

  Table table({"Resource Type", "CAR all GPUs ($)", "CAR one GPU ($)",
               "Top-1 CAR all ($)"});
  auto csv = bench::OpenCsv("fig12_car_resource_types.csv",
                            {"instance", "car_all_gpus", "car_one_gpu",
                             "car_top1_all"});
  double car_p2 = 0.0, car_g3 = 0.0;
  for (const auto& type : catalog.Types()) {
    // (a) all GPUs: normal run on the full instance.
    cloud::ResourceConfig config;
    config.Add(type.name);
    const cloud::RunEstimate all = sim.Run(config, perf, kImages);
    const double car_all = core::CostAccuracyRatio(all.cost_usd, acc.top5);
    const double car1_all = core::CostAccuracyRatio(all.cost_usd, acc.top1);

    // (b) one GPU: a single-GPU slice of the instance at the per-GPU price.
    cloud::InstanceType one_gpu = type;
    one_gpu.gpus = 1;
    const Seconds one_gpu_seconds =
        sim.InstanceSeconds(one_gpu, perf, kImages);
    const Usd one_gpu_cost = cloud::ProratedCost(
        one_gpu_seconds, type.price_per_hour / type.gpus);
    const double car_one = core::CostAccuracyRatio(one_gpu_cost, acc.top5);

    table.AddRow({type.name, Table::Num(car_all, 3), Table::Num(car_one, 3),
                  Table::Num(car1_all, 3)});
    csv.AddRow({type.name, Table::Num(car_all, 4), Table::Num(car_one, 4),
                Table::Num(car1_all, 4)});
    if (type.name == "p2.xlarge") car_p2 = car_all;
    if (type.name == "g3.4xlarge") car_g3 = car_all;
  }
  std::cout << table.Render();

  bench::Checkpoint("CAR constant within a category",
                    "p2.* equal; g3.* equal", "see columns");
  bench::Checkpoint("g3 CAR / p2 CAR", "0.35 / 0.57 = 0.61",
                    Table::Num(car_g3 / car_p2, 2));
  return 0;
}
