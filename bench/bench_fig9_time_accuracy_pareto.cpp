// Reproduces Fig. 9 (a, b): impact of accuracy on cloud execution time —
// all feasible (degree-of-pruning x resource-configuration) points for
// inferring one million CaffeNet images within a 10-hour deadline, plus
// the time-accuracy Pareto frontiers.
//
// Paper anchors: thousands of feasible configurations (7654 in the paper's
// space), a handful (~5) Pareto-optimal ones, Pareto Top-1 spanning roughly
// 27-53 %, and ~50 % time savings at the highest accuracy.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "core/accuracy_model.h"
#include "core/explorer.h"
#include "pruning/variant_generator.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 9 — Impact of Accuracy on Cloud Execution Time",
                "60 CaffeNet pruning variants x p2 configurations (<= 3 of "
                "each of 3 types), W = 1M images, T' = 10 h.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ConfigSpaceExplorer explorer(sim, profile, accuracy);

  Rng rng(2020);
  const auto variants = pruning::RandomVariants(
      {"conv1", "conv2", "conv3", "conv4", "conv5"}, 60, 0.6, 0.1, rng);
  const auto configs = cloud::EnumerateConfigs(catalog.Category("p2"), 3);

  core::ExplorationResult result =
      explorer.Explore(variants, configs, 1000000, Seconds(10.0 * 3600.0));
  std::cout << "evaluated " << result.evaluated << " (variant, config) pairs; "
            << result.feasible.size() << " feasible within the deadline\n\n";

  // The paper reads accuracies off 50k-image measurements at percent
  // granularity; quantize the model's continuous accuracies the same way so
  // the Pareto frontier has comparable cardinality (~5 points).
  for (auto& p : result.feasible) {
    p.top1 = std::round(p.top1 * 100.0) / 100.0;
    p.top5 = std::round(p.top5 * 100.0) / 100.0;
  }

  auto csv = bench::OpenCsv(
      "fig9_time_accuracy.csv",
      {"variant", "config", "hours", "top1", "top5", "pareto1", "pareto5"});

  for (const bool use_top5 : {false, true}) {
    const auto frontier =
        core::TimeAccuracyFrontier(result.feasible, use_top5);
    std::cout << "--- (" << (use_top5 ? "b) Top-5" : "a) Top-1")
              << " accuracy ---\n";
    AsciiChart chart(64, 14);
    std::vector<std::pair<double, double>> cloud_pts, pareto_pts;
    for (const auto& p : result.feasible) {
      cloud_pts.emplace_back((use_top5 ? p.top5 : p.top1) * 100.0,
                             ToHours(p.seconds).value());
    }
    Table table({"Pareto Config", "Variant", "Top-1 (%)", "Top-5 (%)",
                 "Time (h)"});
    for (std::size_t idx : frontier) {
      const auto& p = result.feasible[idx];
      pareto_pts.emplace_back((use_top5 ? p.top5 : p.top1) * 100.0,
                              ToHours(p.seconds).value());
      table.AddRow({p.config.ToString(), p.variant_label,
                    Table::Num(p.top1 * 100.0, 1),
                    Table::Num(p.top5 * 100.0, 1),
                    Table::Num(ToHours(p.seconds).value(), 2)});
    }
    chart.AddSeries("feasible", '.', cloud_pts);
    chart.AddSeries("pareto", 'P', pareto_pts);
    std::cout << chart.Render() << table.Render();

    // Savings at the highest accuracy: Pareto point vs. worst feasible
    // configuration at the same accuracy.
    const auto& best = result.feasible[frontier.front()];
    double worst_same = best.seconds.value();
    for (const auto& p : result.feasible) {
      const double acc_best = use_top5 ? best.top5 : best.top1;
      const double acc_p = use_top5 ? p.top5 : p.top1;
      if (acc_p == acc_best) {
        worst_same = std::max(worst_same, p.seconds.value());
      }
    }
    bench::Checkpoint(
        "Pareto count", "~5 per accuracy metric",
        std::to_string(frontier.size()));
    bench::Checkpoint(
        "time saved at highest accuracy vs worst same-accuracy config",
        "up to 50 %",
        Table::Num((1.0 - best.seconds.value() / worst_same) * 100.0, 1) +
            " %");
    std::cout << "\n";
  }

  for (const auto& p : result.feasible) {
    csv.AddRow({p.variant_label, p.config.ToString(),
                Table::Num(ToHours(p.seconds).value(), 3),
                Table::Num(p.top1, 4),
                Table::Num(p.top5, 4), "", ""});
  }
  return 0;
}
