// Ablation: element-magnitude pruning vs. L1-filter pruning (DESIGN.md §5).
//
// Same ratios, both families, through the calibrated models: filter pruning
// (the paper's choice, Li et al.) buys more time — removed filters also
// shrink downstream layers — but costs more accuracy at equal ratio.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"
#include "core/metrics.h"

int main() {
  using namespace ccperf;
  bench::Banner("Ablation — Pruner Family (magnitude vs l1-filter)",
                "Uniform conv pruning of CaffeNet, 50k images on p2.xlarge; "
                "TAR-5 decides which family wins per ratio.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::Characterization ch(sim, profile, accuracy);

  const std::vector<std::string> convs{"conv1", "conv2", "conv3", "conv4",
                                       "conv5"};
  Table table({"Ratio (%)", "Family", "Time (min)", "Top-5 (%)",
               "TAR-5 (min)"});
  auto csv = bench::OpenCsv("ablation_pruner_family.csv",
                            {"ratio", "family", "minutes", "top5", "tar5"});
  for (double r : {0.2, 0.4, 0.6, 0.8}) {
    for (const auto family : {pruning::PrunerFamily::kMagnitude,
                              pruning::PrunerFamily::kL1Filter}) {
      const auto plan = pruning::UniformPlan(convs, r, family);
      const core::CurvePoint p = ch.EvaluatePlan("p2.xlarge", plan, 50000);
      const double minutes = p.seconds / 60.0;
      const double tar5 = core::TimeAccuracyRatio(Minutes(minutes), p.top5);
      table.AddRow({Table::Num(r * 100.0, 0),
                    pruning::PrunerFamilyName(family), Table::Num(minutes, 1),
                    Table::Num(p.top5 * 100.0, 1), Table::Num(tar5, 1)});
      csv.AddRow({Table::Num(r, 2), pruning::PrunerFamilyName(family),
                  Table::Num(minutes, 2), Table::Num(p.top5, 4),
                  Table::Num(tar5, 2)});
    }
  }
  std::cout << table.Render();
  bench::Checkpoint("filter pruning", "faster at equal ratio",
                    "lower minutes in l1-filter rows");
  bench::Checkpoint("magnitude pruning", "more accurate at equal ratio",
                    "higher Top-5 in magnitude rows");
  return 0;
}
