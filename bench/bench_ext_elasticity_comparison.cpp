// Extension: resource elasticity vs accuracy elasticity, head to head.
//
// The paper's §2.2 positions accuracy scaling against the auto-scaling
// literature (PRESS, deadline/budget auto-scalers). This experiment stages
// a traffic step — the scenario where reactive resource scaling is
// weakest — and compares:
//   (a) reactive autoscaler, unpruned model (resource elasticity),
//   (b) fixed minimal fleet that switches to the sweet-spot variant when
//       overloaded (accuracy elasticity; instant, no provisioning lag),
//   (c) autoscaler + sweet-spot during the lag epoch (both knobs).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cloud/autoscaler.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "common/rng.h"
#include "core/accuracy_model.h"

namespace {

using namespace ccperf;

std::vector<std::vector<double>> EpochTraces(const std::vector<double>& rates,
                                             double epoch_s,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> traces;
  for (double rate : rates) {
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t > epoch_s) break;
      trace.push_back(t);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace

int main() {
  bench::Banner("Extension — Resource vs Accuracy Elasticity",
                "Traffic steps 5 -> 100 img/s at epoch 2; reactive "
                "autoscaling (one-epoch lag) vs instant sweet-spot pruning.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::Autoscaler scaler(serving, "g3.4xlarge");
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  const cloud::VariantPerf full = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  const cloud::VariantPerf pruned = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, sweet), sweet.Label());
  const double acc_full = accuracy.Baseline().top5;
  const double acc_pruned = accuracy.Evaluate(sweet).top5;

  const double epoch_s = 600.0;
  const std::vector<double> rates{5, 5, 100, 100, 100, 5};
  const auto traces = EpochTraces(rates, epoch_s, 77);
  const cloud::ServingPolicy policy{.max_batch = 256, .max_wait_s = 0.15};
  const cloud::AutoscalePolicy autoscale{.target_utilization = 0.6,
                                         .min_instances = 1,
                                         .max_instances = 6};

  Table table({"strategy", "worst p99 (s)", "mean Top-5 (%)",
               "cost ($ over 6 epochs)", "all epochs stable"});
  auto csv = bench::OpenCsv(
      "ext_elasticity_comparison.csv",
      {"strategy", "worst_p99", "mean_top5", "cost", "stable"});

  // (a) reactive autoscaler, full accuracy.
  const cloud::AutoscaleResult reactive =
      scaler.Run(traces, epoch_s, full, autoscale, policy);

  // (b) fixed 1-instance fleet, accuracy elasticity: run each epoch with
  // the variant chosen by the epoch's predicted load vs capacity.
  cloud::ResourceConfig one;
  one.Add("g3.4xlarge");
  const double cap_full = serving.Capacity(one, full, policy);
  double b_worst = 0.0, b_cost = 0.0, b_acc = 0.0;
  std::int64_t b_requests = 0;
  bool b_stable = true;
  for (std::size_t e = 0; e < traces.size(); ++e) {
    const bool degrade = rates[e] > cap_full * 0.85;
    const cloud::ServingReport r = serving.SimulateTrace(
        one, degrade ? pruned : full, traces[e], epoch_s, policy);
    b_worst = std::max(b_worst, r.p99_latency_s);
    b_cost += r.cost_per_hour_usd * epoch_s / 3600.0;
    b_acc += (degrade ? acc_pruned : acc_full) *
             static_cast<double>(r.requests);
    b_requests += r.requests;
    b_stable = b_stable && r.stable;
  }

  // (c) both: autoscaler whose overloaded epochs also degrade accuracy.
  double c_worst = 0.0, c_cost = 0.0, c_acc = 0.0;
  std::int64_t c_requests = 0;
  bool c_stable = true;
  {
    int instances = 1;
    for (std::size_t e = 0; e < traces.size(); ++e) {
      cloud::ResourceConfig fleet;
      fleet.Add("g3.4xlarge", instances);
      const double cap = serving.Capacity(fleet, full, policy);
      const bool degrade = rates[e] > cap * 0.85;
      const cloud::ServingReport r = serving.SimulateTrace(
          fleet, degrade ? pruned : full, traces[e], epoch_s, policy);
      c_worst = std::max(c_worst, r.p99_latency_s);
      c_cost += r.cost_per_hour_usd * epoch_s / 3600.0;
      c_acc += (degrade ? acc_pruned : acc_full) *
               static_cast<double>(r.requests);
      c_requests += r.requests;
      c_stable = c_stable && r.stable;
      if (!r.stable) {
        instances = autoscale.max_instances;
      } else if (r.utilization > 0.0) {
        instances = std::clamp(
            static_cast<int>(std::ceil(instances * r.utilization /
                                       autoscale.target_utilization)),
            autoscale.min_instances, autoscale.max_instances);
      }
    }
  }

  // Request-weighted accuracy for (a) is always full.
  double a_acc_weighted = acc_full;
  table.AddRow({"(a) resource elasticity (reactive)",
                Table::Num(reactive.worst_p99_s, 2),
                Table::Num(a_acc_weighted * 100.0, 1),
                Table::Num(reactive.total_cost_usd.value(), 2),
                reactive.always_stable ? "yes" : "NO"});
  table.AddRow({"(b) accuracy elasticity (fixed fleet)",
                Table::Num(b_worst, 2),
                Table::Num(b_acc / b_requests * 100.0, 1),
                Table::Num(b_cost, 2), b_stable ? "yes" : "NO"});
  table.AddRow({"(c) both knobs", Table::Num(c_worst, 2),
                Table::Num(c_acc / c_requests * 100.0, 1),
                Table::Num(c_cost, 2), c_stable ? "yes" : "NO"});
  std::cout << table.Render();
  csv.AddRow({"resource", Table::Num(reactive.worst_p99_s, 3),
              Table::Num(a_acc_weighted, 4),
              Table::Num(reactive.total_cost_usd.value(), 3),
              reactive.always_stable ? "1" : "0"});
  csv.AddRow({"accuracy", Table::Num(b_worst, 3),
              Table::Num(b_acc / b_requests, 4), Table::Num(b_cost, 3),
              b_stable ? "1" : "0"});
  csv.AddRow({"both", Table::Num(c_worst, 3),
              Table::Num(c_acc / c_requests, 4), Table::Num(c_cost, 3),
              c_stable ? "1" : "0"});

  bench::Checkpoint("reactive lag", "autoscaler suffers at the step epoch",
                    "worst p99 " + Table::Num(reactive.worst_p99_s, 1) +
                        " s / stable=" +
                        (reactive.always_stable ? "yes" : "no"));
  bench::Checkpoint("accuracy elasticity", "instant, but costs accuracy",
                    "p99 " + Table::Num(b_worst, 2) + " s at Top-5 " +
                        Table::Num(b_acc / b_requests * 100.0, 1) + " %");
  bench::Checkpoint("combination", "bridges the lag at minimal accuracy cost",
                    "p99 " + Table::Num(c_worst, 2) + " s, $" +
                        Table::Num(c_cost, 2));
  return 0;
}
