// Extension: fault tolerance — accuracy-elastic graceful degradation vs
// resource elasticity under a crash wave.
//
// The paper's accuracy knob (pruned variants, §3) is usually sold as a
// cost/throughput trade. This experiment uses it as a *failure response*:
// a fleet hit by a spot crash wave can either provision replacement
// capacity (the autoscaler — one epoch of reactive lag, extra cost) or
// instantly switch to a faster pruned variant until the wave passes.
//
// Scenario: 2x g3.4xlarge serving 60 img/s for one hour with a 2 s
// deadline. During [1200 s, 1800 s) a crash wave rotates through the
// fleet: instance pairs {0, 2} and {1, 3} alternate 40 s outages, so a
// 2-instance fleet always has exactly one survivor (full-model capacity
// 48 img/s < load) while a 4-instance fleet always keeps two up.
//   (a) fault-aware autoscaler (600 s epochs): the wave epoch misses SLO
//       before the reaction lands, and the capacity it adds arrives after
//       the wave has passed.
//   (b) fixed fleet + degradation controller (60 s intervals): degrades
//       within a control interval or two (one survivor serves 80 img/s at
//       the deepest rung), recovers with hysteresis.
//   (c) static 2x overprovisioned fleet: rides the wave at full accuracy
//       and twice the price.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cloud/autoscaler.h"
#include "cloud/degradation.h"
#include "cloud/density.h"
#include "cloud/faults.h"
#include "cloud/model_profile.h"
#include "common/rng.h"
#include "core/accuracy_model.h"

namespace {

using namespace ccperf;

constexpr double kIntervalS = 60.0;    // degradation control interval
constexpr double kEpochS = 600.0;      // autoscaler epoch
constexpr int kIntervals = 60;         // one hour
constexpr double kLoad = 60.0;         // img/s vs 96 img/s healthy capacity

std::vector<std::vector<double>> IntervalTraces(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> traces;
  for (int i = 0; i < kIntervals; ++i) {
    std::vector<double> trace;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.NextDouble()) / kLoad;
      if (t > kIntervalS) break;
      trace.push_back(t);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

/// Re-bucket the 60 s interval traces into 600 s epoch traces so every
/// strategy sees the identical arrival process.
std::vector<std::vector<double>> EpochTraces(
    const std::vector<std::vector<double>>& intervals) {
  const int per_epoch = static_cast<int>(kEpochS / kIntervalS);
  std::vector<std::vector<double>> epochs;
  for (std::size_t i = 0; i < intervals.size();
       i += static_cast<std::size_t>(per_epoch)) {
    std::vector<double> epoch;
    for (int k = 0; k < per_epoch; ++k) {
      const double shift = static_cast<double>(k) * kIntervalS;
      for (double t : intervals[i + static_cast<std::size_t>(k)]) {
        epoch.push_back(shift + t);
      }
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

/// The crash wave: over [1200 s, 1800 s) instance pairs {0, 2} and
/// {1, 3} alternate 40 s outages. A 2-instance fleet always has exactly
/// one instance down; a 4-instance fleet always has exactly two.
cloud::FaultSchedule CrashWave() {
  cloud::FaultSchedule faults;
  for (double start = 1200.0; start < 1800.0; start += 80.0) {
    faults.events.push_back(
        {cloud::FaultKind::kCrash, 0, start, 40.0, 1.0});
    faults.events.push_back(
        {cloud::FaultKind::kCrash, 2, start, 40.0, 1.0});
    if (start + 40.0 < 1800.0) {
      faults.events.push_back(
          {cloud::FaultKind::kCrash, 1, start + 40.0, 40.0, 1.0});
      faults.events.push_back(
          {cloud::FaultKind::kCrash, 3, start + 40.0, 40.0, 1.0});
    }
  }
  std::stable_sort(faults.events.begin(), faults.events.end(),
                   [](const cloud::FaultEvent& a, const cloud::FaultEvent& b) {
                     return a.start_s < b.start_s;
                   });
  faults.Validate();
  return faults;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension — Fault Tolerance & Graceful Degradation",
      "Crash wave at t=1200..1800 s halves the fleet; accuracy-elastic "
      "degradation (60 s reaction) vs fault-aware autoscaling (600 s lag) "
      "vs static overprovisioning.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  const cloud::VariantPerf full = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  const cloud::VariantPerf vsweet = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, sweet), sweet.Label());
  pruning::PrunePlan deep;
  deep.layer_ratios = {{"conv1", 0.4}, {"conv2", 0.5}, {"conv3", 0.5},
                       {"conv4", 0.5}, {"conv5", 0.5}};
  const cloud::VariantPerf vdeep = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, deep), deep.Label());
  const std::vector<cloud::DegradationRung> ladder{
      {full, accuracy.Baseline().top5},
      {vsweet, accuracy.Evaluate(sweet).top5},
      {vdeep, accuracy.Evaluate(deep).top5},
  };

  const auto intervals = IntervalTraces(2024);
  const auto epochs = EpochTraces(intervals);
  const cloud::FaultSchedule faults = CrashWave();
  const cloud::ServingPolicy policy{
      .max_batch = 64, .max_wait_s = 0.1, .deadline_s = 2.0};
  const cloud::RetryPolicy retry{.max_retries = 3, .base_backoff_s = 0.05};

  // (a) fault-aware reactive autoscaler, full accuracy.
  const cloud::Autoscaler scaler(serving, "g3.4xlarge");
  const cloud::AutoscaleResult reactive = scaler.RunFaulted(
      epochs, kEpochS, full,
      // Target 0.8: two instances (util 0.73) are the correct steady-state
      // fleet, so all added capacity is a *reaction* to the wave.
      {.target_utilization = 0.8, .min_instances = 2, .max_instances = 6,
       .miss_rate_step_up = 0.05},
      policy, retry, faults);

  // (b) fixed 2-instance fleet + accuracy-elastic degradation.
  cloud::ResourceConfig two;
  two.Add("g3.4xlarge", 2);
  const cloud::DegradationController controller(serving, two);
  const cloud::DegradationResult degraded = controller.Run(
      intervals, kIntervalS, ladder,
      // Headroom 0.95: the engine's utilization counts small-batch
      // launch inefficiency, so even a comfortable fleet reads ~0.9.
      {.degrade_miss_rate = 0.05, .recover_miss_rate = 0.01,
       .recover_headroom = 0.95, .recover_intervals = 2},
      policy, retry, faults);

  // (c) static overprovisioned fleet (4 instances; the wave only ever
  // touches instances 0 and 1), full accuracy. A single-rung ladder turns
  // the controller into a plain fixed-fleet accountant.
  cloud::ResourceConfig four;
  four.Add("g3.4xlarge", 4);
  const cloud::DegradationController static_controller(serving, four);
  const std::vector<cloud::DegradationRung> flat{ladder[0]};
  const cloud::DegradationResult overprov = static_controller.Run(
      intervals, kIntervalS, flat, {}, policy, retry, faults);

  // Autoscaler accuracy never degrades; its SLO/cost come from RunFaulted.
  const double acc_full = ladder[0].accuracy;

  Table table({"strategy", "SLO compliance (%)", "worst p99 (s)",
               "mean Top-5 (%)", "cost ($/h)", "rung switches"});
  auto csv = bench::OpenCsv("ext_fault_tolerance.csv",
                            {"strategy", "slo_compliance", "worst_p99",
                             "mean_top5", "cost_usd", "switches"});

  table.AddRow({"(a) fault-aware autoscaler (600 s lag)",
                Table::Num(reactive.slo_compliance * 100.0, 1),
                Table::Num(reactive.worst_p99_s, 2),
                Table::Num(acc_full * 100.0, 1),
                Table::Num(reactive.total_cost_usd.value(), 2), "-"});
  table.AddRow({"(b) degradation ladder (60 s reaction)",
                Table::Num(degraded.slo_compliance * 100.0, 1),
                Table::Num(degraded.worst_p99_s, 2),
                Table::Num(degraded.mean_accuracy * 100.0, 1),
                Table::Num(degraded.total_cost_usd, 2),
                std::to_string(degraded.switches)});
  table.AddRow({"(c) static 2x overprovisioned",
                Table::Num(overprov.slo_compliance * 100.0, 1),
                Table::Num(overprov.worst_p99_s, 2),
                Table::Num(overprov.mean_accuracy * 100.0, 1),
                Table::Num(overprov.total_cost_usd, 2), "0"});
  std::cout << table.Render();

  csv.AddRow({"autoscaler", Table::Num(reactive.slo_compliance, 4),
              Table::Num(reactive.worst_p99_s, 3), Table::Num(acc_full, 4),
              Table::Num(reactive.total_cost_usd.value(), 3), "0"});
  csv.AddRow({"degradation", Table::Num(degraded.slo_compliance, 4),
              Table::Num(degraded.worst_p99_s, 3),
              Table::Num(degraded.mean_accuracy, 4),
              Table::Num(degraded.total_cost_usd, 3),
              std::to_string(degraded.switches)});
  csv.AddRow({"overprovision", Table::Num(overprov.slo_compliance, 4),
              Table::Num(overprov.worst_p99_s, 3),
              Table::Num(overprov.mean_accuracy, 4),
              Table::Num(overprov.total_cost_usd, 3), "0"});

  // Rung trajectory around the wave: the degradation controller's whole
  // story is in when it moved.
  std::cout << "\nDegradation rung per 60 s interval "
               "(wave = intervals 20-29):\n  ";
  for (const auto& step : degraded.steps) std::cout << step.rung;
  std::cout << "\n";

  bench::Checkpoint(
      "autoscaler lag",
      "reactive scaling misses the wave epoch entirely",
      "SLO " + Table::Num(reactive.slo_compliance * 100.0, 1) + " % at $" +
          Table::Num(reactive.total_cost_usd.value(), 2));
  bench::Checkpoint(
      "graceful degradation",
      "variant switch needs no provisioning: recovers inside the wave",
      "SLO " + Table::Num(degraded.slo_compliance * 100.0, 1) + " % at $" +
          Table::Num(degraded.total_cost_usd, 2) + ", mean Top-5 " +
          Table::Num(degraded.mean_accuracy * 100.0, 1) + " %");
  bench::Checkpoint(
      "overprovisioning",
      "full accuracy through the wave, at 2x the fleet",
      "SLO " + Table::Num(overprov.slo_compliance * 100.0, 1) + " % at $" +
          Table::Num(overprov.total_cost_usd, 2));

  const bool win = degraded.slo_compliance > reactive.slo_compliance &&
                   degraded.total_cost_usd < reactive.total_cost_usd.value();
  std::cout << (win ? "\n  => accuracy elasticity beats resource elasticity "
                      "on both SLO and cost under faults\n"
                    : "\n  => WARNING: expected degradation win not "
                      "reproduced — inspect the scenario\n");
  return 0;
}
