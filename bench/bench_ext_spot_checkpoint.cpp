// Extension: spot economics of checkpointed runs — the checkpoint interval
// as a cost/performance knob, and the Pareto shift when the paper's
// cost-accuracy frontier is priced at spot rates.
//
// The paper (Eqs. 1-4) prices configurations as if every instance runs to
// completion; the cheapest real capacity is preemptible. With the
// checkpoint/restore subsystem a preempted run loses only the work since
// its last snapshot, so the effective cost of a spot run is
//
//   T' = T + floor(T/tau) * c + E[preemptions] * (tau/2 + restart)
//
// (snapshot stretch + expected half-interval recompute per hit). Part 1
// sweeps the interval tau: too small and snapshot overhead dominates, too
// large and recompute dominates — the U-shape whose analytic minimum is
// Young's interval sqrt(2 * c * MTBF). Part 2 re-prices the CaffeNet
// cost-accuracy frontier (nonpruned vs pruned variants) at spot rates with
// adaptive checkpointing: the whole frontier shifts down ~3x while the
// accuracy axis is untouched. Part 3 compares the serving-side triggers
// (periodic / on-warning / adaptive) on one faulted serving hour: same
// dynamics and goodput by construction, different snapshot bills.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cloud/checkpoint.h"
#include "cloud/density.h"
#include "cloud/faults.h"
#include "cloud/model_profile.h"
#include "cloud/serving.h"
#include "common/rng.h"
#include "core/accuracy_model.h"

namespace {

using namespace ccperf;

constexpr std::int64_t kImages = 2'000'000;     // offline campaign size
constexpr RatePerHour kPreemptRatePerHour{2.0};  // volatile spot pool
constexpr double kSnapshotCostS = 30.0;          // full-state snapshot
constexpr Seconds kRestartS{120.0};              // reprovision + restore

std::vector<double> PoissonTrace(double rate, double duration,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> trace;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / rate;
    if (t > duration) break;
    trace.push_back(t);
  }
  return trace;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension — Checkpoint Interval & Spot-Priced Cost-Accuracy",
      "Young's U-shape for the snapshot interval on preemptible capacity, "
      "and the paper's CaffeNet frontier re-priced at EC2 spot rates with "
      "adaptive checkpointing.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const cloud::VariantPerf full = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");

  cloud::ResourceConfig one;
  one.Add("p2.xlarge");

  // ---- Part 1: checkpoint-interval sweep on a spot p2.xlarge -------------
  const double mtbf_s = 3600.0 / kPreemptRatePerHour.value();
  const double young_s = cloud::YoungInterval(kSnapshotCostS, mtbf_s);
  std::vector<double> intervals{30.0,   60.0,   120.0,  young_s, 600.0,
                                1200.0, 2400.0, 4800.0, 9600.0};

  Table sweep({"interval (s)", "snapshot ovh (s)", "recompute (s)",
               "expected T' (s)", "spot cost ($)"});
  auto sweep_csv = bench::OpenCsv(
      "ext_spot_checkpoint_interval.csv",
      {"interval_s", "snapshot_overhead_s", "expected_recompute_s",
       "expected_seconds", "expected_spot_cost_usd", "is_young_optimum"});
  double best_cost = -1.0, best_interval = 0.0;
  for (const double tau : intervals) {
    const cloud::CheckpointPolicy policy{
        .trigger = cloud::CheckpointTrigger::kPeriodic,
        .interval_s = tau,
        .snapshot_cost_s = kSnapshotCostS};
    const cloud::SpotRunEstimate est = cloud::EstimateSpotRun(
        sim, one, full, kImages, policy, kPreemptRatePerHour, kRestartS);
    const bool is_young = tau == young_s;
    sweep.AddRow({Table::Num(tau, 0) + (is_young ? " (Young)" : ""),
                  Table::Num(est.snapshot_overhead_s.value(), 0),
                  Table::Num(est.expected_recompute_s.value(), 0),
                  Table::Num(est.expected_seconds.value(), 0),
                  Table::Num(est.expected_spot_cost_usd.value(), 3)});
    sweep_csv.AddRow({Table::Num(tau, 1),
                      Table::Num(est.snapshot_overhead_s.value(), 1),
                      Table::Num(est.expected_recompute_s.value(), 1),
                      Table::Num(est.expected_seconds.value(), 1),
                      Table::Num(est.expected_spot_cost_usd.value(), 4),
                      is_young ? "1" : "0"});
    if (best_cost < 0.0 || est.expected_spot_cost_usd.value() < best_cost) {
      best_cost = est.expected_spot_cost_usd.value();
      best_interval = tau;
    }
  }
  std::cout << sweep.Render();
  bench::Checkpoint(
      "Young's interval",
      "analytic optimum sqrt(2*c*MTBF) = " + Table::Num(young_s, 0) + " s",
      "sweep minimum at " + Table::Num(best_interval, 0) + " s ($" +
          Table::Num(best_cost, 3) + ")");

  // ---- Part 2: spot-priced cost-accuracy frontier ------------------------
  struct Variant {
    const char* name;
    pruning::PrunePlan plan;
  };
  std::vector<Variant> variants{{"nonpruned", {}}, {}, {}};
  variants[1].name = "sweet";
  variants[1].plan.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  variants[2].name = "deep";
  variants[2].plan.layer_ratios = {{"conv1", 0.4},
                                   {"conv2", 0.5},
                                   {"conv3", 0.5},
                                   {"conv4", 0.5},
                                   {"conv5", 0.5}};

  const cloud::CheckpointPolicy adaptive{
      .trigger = cloud::CheckpointTrigger::kAdaptive,
      .interval_s = 600.0,
      .snapshot_cost_s = kSnapshotCostS};

  Table pareto({"variant", "Top-5 (%)", "on-demand ($)", "spot+ckpt ($)",
                "saving (%)"});
  auto pareto_csv = bench::OpenCsv(
      "ext_spot_checkpoint_pareto.csv",
      {"variant", "top5", "on_demand_cost_usd", "spot_cost_usd",
       "saving_pct", "expected_seconds", "base_seconds"});
  for (const Variant& v : variants) {
    const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
        profile, cloud::DensityFromPlan(profile, v.plan), v.name);
    const double top5 = v.plan.layer_ratios.empty()
                            ? accuracy.Baseline().top5
                            : accuracy.Evaluate(v.plan).top5;
    const cloud::SpotRunEstimate est = cloud::EstimateSpotRun(
        sim, one, perf, kImages, adaptive, kPreemptRatePerHour, kRestartS);
    const double saving =
        100.0 * (1.0 - est.expected_spot_cost_usd / est.on_demand_cost_usd);
    pareto.AddRow({v.name, Table::Num(top5 * 100.0, 1),
                   Table::Num(est.on_demand_cost_usd.value(), 3),
                   Table::Num(est.expected_spot_cost_usd.value(), 3),
                   Table::Num(saving, 1)});
    pareto_csv.AddRow({v.name, Table::Num(top5, 4),
                       Table::Num(est.on_demand_cost_usd.value(), 4),
                       Table::Num(est.expected_spot_cost_usd.value(), 4),
                       Table::Num(saving, 2),
                       Table::Num(est.expected_seconds.value(), 1),
                       Table::Num(est.base_seconds.value(), 1)});
  }
  std::cout << "\n" << pareto.Render();
  bench::Checkpoint(
      "Pareto shift",
      "~70% spot discount survives snapshot + recompute overhead",
      "frontier shifts down ~3x at unchanged accuracy");

  // ---- Part 3: serving-side trigger comparison ---------------------------
  const double hour = 3600.0;
  const auto trace = PoissonTrace(30.0, hour, 7);
  const cloud::FaultModel storm{.preemption_rate = 0.0,
                                .crash_rate = 6.0,
                                .restart_s = 30.0,
                                .slowdown_rate = 2.0};
  Rng fault_rng(11);
  const cloud::FaultSchedule faults =
      cloud::GenerateFaultSchedule(storm, 2, hour, fault_rng);
  cloud::ResourceConfig two;
  two.Add("p2.xlarge", 2);
  const cloud::ServingPolicy sp{
      .max_batch = 64, .max_wait_s = 0.05, .deadline_s = 2.0};
  const cloud::RetryPolicy retry{.max_retries = 3};

  const std::vector<cloud::CheckpointPolicy> triggers{
      {.trigger = cloud::CheckpointTrigger::kPeriodic,
       .interval_s = 300.0,
       .snapshot_cost_s = 5.0},
      {.trigger = cloud::CheckpointTrigger::kOnPreemptionWarning,
       .warning_lead_s = 120.0,
       .snapshot_cost_s = 5.0},
      {.trigger = cloud::CheckpointTrigger::kAdaptive,
       .interval_s = 300.0,
       .snapshot_cost_s = 5.0},
  };
  Table triggers_table({"trigger", "snapshots", "overhead (s)",
                        "overhead ($)", "goodput (img/s)"});
  auto serving_csv = bench::OpenCsv(
      "ext_spot_checkpoint_serving.csv",
      {"trigger", "snapshots", "overhead_s", "overhead_cost_usd",
       "goodput_per_s"});
  for (const cloud::CheckpointPolicy& policy : triggers) {
    cloud::CheckpointStats stats;
    const cloud::ServingReport report = serving.SimulateFaultedCheckpointed(
        two, full, trace, hour, sp, retry, faults, policy, &stats);
    triggers_table.AddRow({cloud::CheckpointTriggerName(policy.trigger),
                           std::to_string(stats.snapshots),
                           Table::Num(stats.snapshot_overhead_s, 0),
                           Table::Num(stats.overhead_cost_usd, 4),
                           Table::Num(report.goodput_per_s, 2)});
    serving_csv.AddRow({cloud::CheckpointTriggerName(policy.trigger),
                        std::to_string(stats.snapshots),
                        Table::Num(stats.snapshot_overhead_s, 1),
                        Table::Num(stats.overhead_cost_usd, 5),
                        Table::Num(report.goodput_per_s, 3)});
  }
  std::cout << "\n" << triggers_table.Render();
  bench::Checkpoint(
      "trigger comparison",
      "identical dynamics, only the snapshot bill differs",
      "goodput column constant across triggers");
  return 0;
}
