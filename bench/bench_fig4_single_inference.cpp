// Reproduces Fig. 4: time for a single inference vs. uniform prune ratio,
// CaffeNet and GoogLeNet on p2.xlarge.
//
// Paper anchors: CaffeNet 0.09 s -> ~0.05 s at 90 %; GoogLeNet 0.16 s ->
// ~0.10 s. Shape: monotone decrease; GoogLeNet stays above CaffeNet.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 4 — Time for a Single Inference",
                "Batch-1 latency vs. uniform conv prune ratio (p2.xlarge).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile caffe = cloud::CaffeNetProfile();
  const cloud::ModelProfile goog = cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel caffe_acc =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::CalibratedAccuracyModel goog_acc =
      core::CalibratedAccuracyModel::GoogLeNet();
  const core::Characterization caffe_ch(sim, caffe, caffe_acc);
  const core::Characterization goog_ch(sim, goog, goog_acc);

  Table table({"Prune Ratio (%)", "Caffenet (s)", "Googlenet (s)"});
  auto csv = bench::OpenCsv("fig4_single_inference.csv",
                            {"ratio", "caffenet_s", "googlenet_s"});
  AsciiChart chart(64, 12);
  std::vector<std::pair<double, double>> caffe_pts, goog_pts;
  double caffe0 = 0.0, caffe90 = 0.0, goog0 = 0.0, goog90 = 0.0;
  for (int pct = 0; pct <= 90; pct += 10) {
    const double r = pct / 100.0;
    const double tc = caffe_ch.SingleInferenceSeconds("p2.xlarge", r);
    const double tg = goog_ch.SingleInferenceSeconds("p2.xlarge", r);
    table.AddRow({std::to_string(pct), Table::Num(tc, 3), Table::Num(tg, 3)});
    csv.AddRow({std::to_string(pct), Table::Num(tc, 4), Table::Num(tg, 4)});
    caffe_pts.emplace_back(pct, tc);
    goog_pts.emplace_back(pct, tg);
    if (pct == 0) { caffe0 = tc; goog0 = tg; }
    if (pct == 90) { caffe90 = tc; goog90 = tg; }
  }
  std::cout << table.Render();
  chart.AddSeries("caffenet", '*', caffe_pts);
  chart.AddSeries("googlenet", 'o', goog_pts);
  std::cout << chart.Render();

  bench::Checkpoint("Caffenet 0% -> 90%", "0.09 s -> ~0.05 s",
                    Table::Num(caffe0, 3) + " s -> " + Table::Num(caffe90, 3) +
                        " s");
  bench::Checkpoint("Googlenet 0% -> 90%", "0.16 s -> ~0.10 s",
                    Table::Num(goog0, 3) + " s -> " + Table::Num(goog90, 3) +
                        " s");
  return 0;
}
