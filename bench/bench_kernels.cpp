// Supporting kernel microbenchmarks (google-benchmark): the compute
// primitives whose behaviour the cloud model abstracts — GEMM, CSR sparse
// multiply at several sparsities, im2col, and a full conv layer forward.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "nn/conv_layer.h"
#include "nn/model_zoo.h"
#include "pruning/magnitude_pruner.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/sparse.h"
#include "train/trainer.h"

namespace {

using namespace ccperf;

std::vector<float> RandomVec(std::int64_t n, std::uint64_t seed,
                             double sparsity = 0.0) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = rng.NextDouble() < sparsity ? 0.0f : rng.NextFloat(-1.0f, 1.0f);
  }
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto a = RandomVec(n * n, 1);
  const auto b = RandomVec(n * n, 2);
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    Gemm(n, n, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Reference-vs-packed GFLOP/s on the conv GEMM shapes of the paper's
// Table 1 models (m = out_ch/group, n = out pixels, k = patch size).
// Shape index -> (name is in the comment; google-benchmark args are ints).
//   0 caffenet conv1       96 x 3025 x  363
//   1 caffenet conv2/g    128 x  729 x 1200
//   2 caffenet conv3      384 x  169 x 2304
//   3 caffenet conv4/g    192 x  169 x 1728
//   4 googlenet conv1-7x7  64 x 12544 x 147
//   5 googlenet 3a-3x3    128 x  784 x  864
//   6 googlenet 5b-3x3    384 x   49 x 1728
constexpr std::int64_t kTable1Shapes[][3] = {
    {96, 3025, 363},  {128, 729, 1200}, {384, 169, 2304}, {192, 169, 1728},
    {64, 12544, 147}, {128, 784, 864},  {384, 49, 1728},
};

void GemmGflops(benchmark::State& state, std::int64_t m, std::int64_t n,
                std::int64_t k) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(m) *
          static_cast<double>(n) * static_cast<double>(k),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_GemmReferenceTable1(benchmark::State& state) {
  const auto [m, n, k] = kTable1Shapes[state.range(0)];
  const auto a = RandomVec(m * k, 1);
  const auto b = RandomVec(k * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    GemmReference(m, n, k, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  GemmGflops(state, m, n, k);
}
BENCHMARK(BM_GemmReferenceTable1)->DenseRange(0, 6);

void BM_GemmPackedTable1(benchmark::State& state) {
  const auto [m, n, k] = kTable1Shapes[state.range(0)];
  const auto a = RandomVec(m * k, 1);
  const auto b = RandomVec(k * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    Gemm(m, n, k, a, b, c);  // packs A on the fly
    benchmark::DoNotOptimize(c.data());
  }
  GemmGflops(state, m, n, k);
}
BENCHMARK(BM_GemmPackedTable1)->DenseRange(0, 6);

void BM_GemmPrepackedTable1(benchmark::State& state) {
  // PackA hoisted out of the loop — the per-forward-pass reuse the conv and
  // fc layers get when one weight pack serves a whole batch.
  const auto [m, n, k] = kTable1Shapes[state.range(0)];
  const auto a = RandomVec(m * k, 1);
  const auto b = RandomVec(k * n, 2);
  const PackedA packed = PackA(m, k, a);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    GemmPacked(packed, n, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  GemmGflops(state, m, n, k);
}
BENCHMARK(BM_GemmPrepackedTable1)->DenseRange(0, 6);

void BM_SparseMultiply(benchmark::State& state) {
  // conv2-shaped: 256 x 1200 weights against 729 output pixels.
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  const auto weights = RandomVec(256 * 1200, 3, sparsity);
  const CsrMatrix csr = CsrMatrix::FromDense(256, 1200, weights);
  const auto columns = RandomVec(1200 * 729, 4);
  std::vector<float> out(256 * 729);
  for (auto _ : state) {
    csr.MultiplyDense(columns, 729, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["nnz"] = static_cast<double>(csr.Nnz());
}
BENCHMARK(BM_SparseMultiply)->Arg(0)->Arg(50)->Arg(90);

void BM_Im2Col(benchmark::State& state) {
  ConvGeometry g{.in_channels = 48, .in_h = 27, .in_w = 27, .kernel_h = 5,
                 .kernel_w = 5, .stride = 1, .pad = 2};
  const auto image = RandomVec(g.in_channels * g.in_h * g.in_w, 5);
  std::vector<float> columns(
      static_cast<std::size_t>(g.PatchSize() * g.OutPixels()));
  for (auto _ : state) {
    Im2Col(g, image, columns);
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  const double prune = static_cast<double>(state.range(0)) / 100.0;
  nn::ConvLayer conv("c",
                     {.out_channels = 64, .kernel = 3, .stride = 1, .pad = 1,
                      .groups = 2},
                     32);
  Rng rng(6);
  conv.MutableWeights().FillGaussian(rng, 0.0f, 0.5f);
  conv.NotifyWeightsChanged();
  if (prune > 0.0) {
    pruning::MagnitudePruner pruner;
    pruner.Prune(conv, prune);
  }
  Tensor input(Shape{1, 32, 27, 27});
  input.FillGaussian(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = conv.Forward({&input});
    benchmark::DoNotOptimize(out.Data().data());
  }
  state.counters["sparse_path"] = conv.UsesSparsePath() ? 1.0 : 0.0;
}
BENCHMARK(BM_ConvForward)->Arg(0)->Arg(60)->Arg(90);

void BM_Col2Im(benchmark::State& state) {
  ConvGeometry g{.in_channels = 48, .in_h = 27, .in_w = 27, .kernel_h = 5,
                 .kernel_w = 5, .stride = 1, .pad = 2};
  const auto columns = RandomVec(g.PatchSize() * g.OutPixels(), 8);
  std::vector<float> image(
      static_cast<std::size_t>(g.in_channels * g.in_h * g.in_w));
  for (auto _ : state) {
    Col2Im(g, columns, image);
    benchmark::DoNotOptimize(image.data());
  }
}
BENCHMARK(BM_Col2Im);

void BM_TrainerStep(benchmark::State& state) {
  nn::ModelConfig config;
  config.weight_seed = 9;
  config.num_classes = 8;
  nn::Network net = nn::BuildTinyCnn(config);
  train::SgdTrainer trainer(net);
  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 8, 64, 9);
  const Tensor images = dataset.Batch(0, 16);
  const auto labels = dataset.BatchLabels(0, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainBatch(images, labels));
  }
}
BENCHMARK(BM_TrainerStep);

void BM_TinyCnnForward(benchmark::State& state) {
  const nn::Network net = nn::BuildTinyCnn();
  Tensor input(Shape{4, 3, 16, 16});
  Rng rng(7);
  input.FillGaussian(rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = net.Forward(input);
    benchmark::DoNotOptimize(out.Data().data());
  }
}
BENCHMARK(BM_TinyCnnForward);

}  // namespace
