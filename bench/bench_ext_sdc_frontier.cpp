// Extension: the detection-aware cost x delivered-accuracy frontier.
//
// The paper prices configurations as if every computed result is correct.
// Silent data corruption breaks that assumption: an instance keeps serving
// and returns WRONG answers, so the accuracy a configuration *delivers*
// is the headline accuracy discounted by undetected corruption
// (cloud/sdc.h). Detection policies — ABFT-checksummed kernels, periodic
// integrity scrubs, sampled re-execution — buy that accuracy back at a
// time (and therefore Eq. 3-4 cost) premium.
//
// Two acceptance gates:
//   1. Kernel gate: the ABFT checksummed GEMM (tensor/abft.h) costs <= 15%
//      over the cached packed kernel on the paper's Table-1 CaffeNet
//      shapes (geometric mean) — detection must be cheap enough that the
//      kAbftTimeOverhead constant the analytic model charges is honest.
//   2. Frontier gate: in a sweep over the enumeration engine's axes with
//      the SDC-policy axis enabled, at least one DETECTING configuration
//      (abft / scrub / reexec) strictly Pareto-dominates a detection-free
//      ("none": corruption modeled, nothing caught) configuration on
//      (cost, delivered Top-1) — i.e. once accuracy is what you deliver,
//      not what you computed, paying for detection is not a pure overhead
//      but a frontier move.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/sdc.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/accuracy_model.h"
#include "core/enumerate.h"
#include "pruning/prune_plan.h"
#include "tensor/abft.h"
#include "tensor/gemm.h"

namespace {

using namespace ccperf;

struct GemmShape {
  std::string name;
  std::int64_t m, n, k;
};

// The GEMM shapes induced by the paper's Table-1 CaffeNet layers
// (m = out_channels/group, n = output pixels, k = patch size).
const std::vector<GemmShape> kTable1Shapes = {
    {"conv1", 96, 3025, 363},   {"conv2/g", 128, 729, 1200},
    {"conv3", 384, 169, 2304},  {"conv4/g", 192, 169, 1728},
    {"conv5/g", 128, 169, 1728},
};

std::vector<float> RandomVec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.NextFloat(-1.0f, 1.0f);
  return v;
}

/// Best-of-reps wall time of fn, with one untimed warmup.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  fn();
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// One evaluated configuration of the frontier sweep.
struct SweepRow {
  std::uint64_t id = 0;
  std::string sdc;  // SDC-axis option name
  core::ArchMetrics m;
};

/// True when `a` weakly dominates `b` on (cost, delivered top-1) with at
/// least one strict edge.
bool Dominates(const SweepRow& a, const SweepRow& b) {
  if (a.m.cost_usd > b.m.cost_usd) return false;
  if (a.m.delivered_top1 < b.m.delivered_top1) return false;
  return a.m.cost_usd < b.m.cost_usd ||
         a.m.delivered_top1 > b.m.delivered_top1;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension — SDC Detection-Aware Cost/Delivered-Accuracy Frontier",
      "Gate 1: ABFT-checksummed GEMM overhead <= 15% (geomean) on Table-1 "
      "shapes. Gate 2: some detecting config strictly dominates a "
      "detection-free config on (cost, delivered Top-1).");

  // --- Gate 1: kernel-level ABFT overhead on the Table-1 shapes ----------
  Table kernel_table({"layer shape", "m", "n", "k", "cached GF/s",
                      "abft GF/s", "overhead"});
  auto kernel_csv = bench::OpenCsv(
      "ext_sdc_abft_overhead.csv",
      {"shape", "m", "n", "k", "cached_s", "abft_s", "overhead"});
  double log_overhead_sum = 0.0;
  bool abft_clean = true;
  for (const auto& shape : kTable1Shapes) {
    const auto a = RandomVec(shape.m * shape.k, 21);
    const auto b = RandomVec(shape.k * shape.n, 22);
    std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n));
    const double flops = 2.0 * static_cast<double>(shape.m) *
                         static_cast<double>(shape.n) *
                         static_cast<double>(shape.k);
    const int reps = std::max(3, static_cast<int>(3e9 / flops));

    const PackedA packed = PackA(shape.m, shape.k, a);
    const double cached_s =
        BestSeconds(reps, [&] { GemmPacked(packed, shape.n, b, c); });
    const AbftPackedA abft = AbftPackA(shape.m, shape.k, a);
    const double abft_s = BestSeconds(reps, [&] {
      if (!GemmAbft(abft, shape.n, b, c).ok) abft_clean = false;
    });

    const double overhead = abft_s / cached_s - 1.0;
    log_overhead_sum += std::log(abft_s / cached_s);
    kernel_table.AddRow(
        {shape.name, std::to_string(shape.m), std::to_string(shape.n),
         std::to_string(shape.k), Table::Num(flops / cached_s / 1e9, 1),
         Table::Num(flops / abft_s / 1e9, 1),
         Table::Num(overhead * 100.0, 1) + " %"});
    kernel_csv.AddRow({shape.name, std::to_string(shape.m),
                       std::to_string(shape.n), std::to_string(shape.k),
                       Table::Num(cached_s, 6), Table::Num(abft_s, 6),
                       Table::Num(overhead, 4)});
  }
  kernel_csv.Close();
  std::cout << kernel_table.Render() << "\n";

  const double geomean_overhead =
      std::exp(log_overhead_sum /
               static_cast<double>(kTable1Shapes.size())) -
      1.0;
  bench::Checkpoint("ABFT verification on clean runs", "zero false positives",
                    abft_clean ? "clean" : "FALSE POSITIVE");
  bench::Checkpoint("ABFT time overhead, Table-1 geomean",
                    "<= 15% (acceptance bar)",
                    Table::Num(geomean_overhead * 100.0, 1) + " %");
  if (!abft_clean) {
    std::cout << "  [FAIL] ABFT flagged a clean multiply\n";
    return 1;
  }
  if (geomean_overhead > 0.15) {
    std::cout << "  [FAIL] ABFT overhead above the 15% acceptance bar\n";
    return 1;
  }

  // --- Gate 2: detection-aware frontier over the enumeration engine ------
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();

  core::ArchitectureSpace space;
  space.AddVariants(core::BuildVariantSpecs(
      profile, accuracy, {pruning::PrunePlan{}}, /*include_int8=*/true));
  for (const auto& type : catalog.Types()) space.AddInstanceType(type.name);
  space.SetCounts({1, 2, 4, 8});
  space.SetBatches({0});
  space.SetPurchaseOptions(
      {core::PurchaseOption::kOnDemand, core::PurchaseOption::kSpot});
  space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
  space.AddCheckpointOption(
      {.name = "periodic-300",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kPeriodic,
                  .interval_s = 300.0}});
  space.AddDegradationOption({.name = "none"});
  // The modeled-SDC axis: "none" is the detection-free baseline the gate
  // compares against ("off" — corruption not modeled — would be a
  // vacuous baseline: nothing can dominate a world without corruption).
  space.AddSdcOption(
      {.name = "none", .policy = {.kind = cloud::SdcPolicyKind::kNone}});
  space.AddSdcOption(
      {.name = "abft", .policy = {.kind = cloud::SdcPolicyKind::kAbft}});
  space.AddSdcOption(
      {.name = "scrub", .policy = {.kind = cloud::SdcPolicyKind::kScrub}});
  space.AddSdcOption({.name = "reexec",
                      .policy = {.kind = cloud::SdcPolicyKind::kReexecSample,
                                 .sample_fraction = 0.1}});

  const core::ArchitectureEvaluator evaluator(sim, space);
  const std::int64_t images = 10'000'000;
  std::vector<SweepRow> rows;
  for (std::uint64_t id = 0; id < space.Size(); ++id) {
    core::ArchMetrics m;
    if (!evaluator.Evaluate(id, images, m)) continue;  // no spot market
    const core::AxisPoint p = space.Decode(id);
    rows.push_back({id, space.SdcOptions()[p.sdc].name, m});
  }

  // Search every (detecting, detection-free) pair for strict domination;
  // keep the pair with the largest delivered-accuracy margin.
  const SweepRow* best_aware = nullptr;
  const SweepRow* best_free = nullptr;
  double best_margin = -1.0;
  std::size_t dominated_free_rows = 0;
  for (const auto& free_row : rows) {
    if (free_row.sdc != "none") continue;
    bool dominated = false;
    for (const auto& aware : rows) {
      if (aware.sdc == "none" || !Dominates(aware, free_row)) continue;
      dominated = true;
      const double margin =
          (aware.m.delivered_top1 - free_row.m.delivered_top1) +
          (free_row.m.cost_usd - aware.m.cost_usd).value() /
              std::max(1.0, free_row.m.cost_usd.value());
      if (margin > best_margin) {
        best_margin = margin;
        best_aware = &aware;
        best_free = &free_row;
      }
    }
    if (dominated) ++dominated_free_rows;
  }

  auto sweep_csv = bench::OpenCsv(
      "ext_sdc_frontier.csv",
      {"id", "configuration", "sdc", "seconds", "cost_usd", "top1",
       "delivered_top1", "sdc_escape_rate", "detection_overhead"});
  for (const auto& row : rows) {
    sweep_csv.AddRow({std::to_string(row.id), space.Describe(row.id), row.sdc,
                      Table::Num(row.m.seconds.value(), 3),
                      Table::Num(row.m.cost_usd.value(), 4),
                      Table::Num(row.m.top1, 4),
                      Table::Num(row.m.delivered_top1, 4),
                      Table::Num(row.m.sdc_escape_rate, 6),
                      Table::Num(row.m.detection_overhead, 4)});
  }
  sweep_csv.Close();

  std::size_t free_rows = 0;
  for (const auto& row : rows) free_rows += row.sdc == "none" ? 1 : 0;
  bench::Checkpoint(
      "detection-free rows strictly dominated by a detecting config",
      ">= 1 (acceptance bar)",
      std::to_string(dominated_free_rows) + " of " +
          std::to_string(free_rows));
  if (best_aware == nullptr) {
    std::cout << "  [FAIL] no detecting configuration dominates any "
                 "detection-free configuration\n";
    return 1;
  }
  Table pair_table({"role", "configuration", "cost ($)", "Top-1 (%)",
                    "delivered Top-1 (%)", "escape"});
  pair_table.AddRow({"detecting", space.Describe(best_aware->id),
                     Table::Num(best_aware->m.cost_usd.value(), 2),
                     Table::Num(best_aware->m.top1 * 100.0, 2),
                     Table::Num(best_aware->m.delivered_top1 * 100.0, 2),
                     Table::Num(best_aware->m.sdc_escape_rate, 5)});
  pair_table.AddRow({"detection-free", space.Describe(best_free->id),
                     Table::Num(best_free->m.cost_usd.value(), 2),
                     Table::Num(best_free->m.top1 * 100.0, 2),
                     Table::Num(best_free->m.delivered_top1 * 100.0, 2),
                     Table::Num(best_free->m.sdc_escape_rate, 5)});
  std::cout << "\n" << pair_table.Render();
  bench::Checkpoint(
      "strongest domination",
      "cheaper AND delivers more Top-1",
      "saves $" +
          Table::Num((best_free->m.cost_usd - best_aware->m.cost_usd).value(),
                     2) +
          ", delivers +" +
          Table::Num((best_aware->m.delivered_top1 -
                      best_free->m.delivered_top1) *
                         100.0,
                     2) +
          " pp Top-1");
  std::cout << "\nCSV: bench_results/ext_sdc_abft_overhead.csv, "
               "bench_results/ext_sdc_frontier.csv\n";
  return 0;
}
