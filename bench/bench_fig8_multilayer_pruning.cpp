// Reproduces Fig. 8: CaffeNet multi-layer pruning — nonpruned vs. conv1-2
// sweet spots vs. all-conv sweet spots (50,000 images, p2.xlarge).
//
// Paper anchors: nonpruned 19 min / 80 % Top-5; conv1-2 ~13 min / 70 %;
// all-conv ~11 min / 62 %. Shape: super-additive time savings and
// super-additive accuracy drop when combining sweet spots (Obs. 3).
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 8 — Caffenet: Multi-Layer Pruning",
                "Combining per-layer sweet spots (conv1@30, conv2@50, "
                "conv3-5@50).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::Characterization ch(sim, profile, accuracy);

  pruning::PrunePlan nonpruned;
  pruning::PrunePlan conv12;
  conv12.layer_ratios["conv1"] = 0.3;
  conv12.layer_ratios["conv2"] = 0.5;
  pruning::PrunePlan all_conv = conv12;
  all_conv.layer_ratios["conv3"] = 0.5;
  all_conv.layer_ratios["conv4"] = 0.5;
  all_conv.layer_ratios["conv5"] = 0.5;

  Table table({"Prune Configuration", "Time (min)", "Top-1 (%)", "Top-5 (%)"});
  auto csv = bench::OpenCsv("fig8_multilayer_pruning.csv",
                            {"config", "minutes", "top1", "top5"});
  struct Row {
    const char* name;
    const pruning::PrunePlan* plan;
  };
  double t_np = 0.0, t_all = 0.0, top5_np = 0.0, top5_all = 0.0;
  for (const Row& row : {Row{"nonpruned", &nonpruned},
                         Row{"conv1-2", &conv12},
                         Row{"all-conv", &all_conv}}) {
    const core::CurvePoint p = ch.EvaluatePlan("p2.xlarge", *row.plan, 50000);
    table.AddRow({row.name, Table::Num(p.seconds / 60.0, 1),
                  Table::Num(p.top1 * 100.0, 1),
                  Table::Num(p.top5 * 100.0, 1)});
    csv.AddRow({row.name, Table::Num(p.seconds / 60.0, 2),
                Table::Num(p.top1, 4), Table::Num(p.top5, 4)});
    if (std::string(row.name) == "nonpruned") {
      t_np = p.seconds;
      top5_np = p.top5;
    }
    if (std::string(row.name) == "all-conv") {
      t_all = p.seconds;
      top5_all = p.top5;
    }
  }
  std::cout << table.Render();

  bench::Checkpoint("all-conv time reduction", "~1/3 (19 -> ~11-13 min)",
                    Table::Num((1.0 - t_all / t_np) * 100.0, 1) + " %");
  bench::Checkpoint("all-conv Top-5 drop", "80 % -> 62 % (18 pp)",
                    Table::Num(top5_np * 100.0, 1) + " % -> " +
                        Table::Num(top5_all * 100.0, 1) + " %");
  bench::Checkpoint(
      "headline claim", "time nearly halved for ~1/10 accuracy drop",
      "time -" + Table::Num((1.0 - t_all / t_np) * 100.0, 0) +
          " % for -" +
          Table::Num((1.0 - top5_all / top5_np) * 100.0, 0) +
          " % relative Top-5");
  return 0;
}
