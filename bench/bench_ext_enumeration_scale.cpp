// Extension: scaling of the sorted-sweep Pareto filter and the streamed
// architecture-space enumeration engine (core/pareto_sweep.h,
// core/enumerate.h).
//
// Two acceptance gates, both exit-nonzero so scripts/run_all.sh fails the
// build when the engine regresses:
//
//  1. Filter scaling — SweepParetoFrontier3 throughput (points/s) on seeded
//     uniform clouds from 10^3 to 10^7 points, differential against the
//     O(n^2) ParetoFrontier3 oracle up to 10^5 (beyond that the oracle is
//     the bottleneck, which is the point). Gate: >= 10x speedup over the
//     oracle at 10^5 points, identical index sets everywhere it runs.
//
//  2. Engine throughput — EnumerateFrontier over the full ccperf_calc
//     default space (~1.1M configurations: 122 variants x 6 types x 14
//     counts x 6 batches x 2 purchase x 3 checkpoint x 3 degradation).
//     Gates: wall clock under a generous ceiling (the run takes ~1 s on a
//     laptop; the ceiling catches accidental O(space) frontier rebuilds),
//     and peak candidate rows bounded by O(frontier + block) — the memory
//     contract that lets the engine stream arbitrarily large spaces.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/accuracy_model.h"
#include "core/enumerate.h"
#include "core/pareto.h"
#include "core/pareto_sweep.h"
#include "pruning/variant_generator.h"

namespace {

using namespace ccperf;

struct Cloudset {
  std::vector<double> time;
  std::vector<double> cost;
  std::vector<double> accuracy;
};

Cloudset UniformCloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Cloudset cloud;
  cloud.time.resize(n);
  cloud.cost.resize(n);
  cloud.accuracy.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cloud.time[i] = rng.NextDouble() * 10.0;
    cloud.cost[i] = rng.NextDouble() * 100.0;
    cloud.accuracy[i] = rng.NextDouble();
  }
  return cloud;
}

/// The ccperf_calc default space (see tools/ccperf_calc.cpp BuildSpace).
core::ArchitectureSpace DefaultSpace(
    const cloud::InstanceCatalog& catalog, const cloud::ModelProfile& profile,
    const core::CalibratedAccuracyModel& accuracy) {
  std::vector<pruning::PrunePlan> plans;
  plans.emplace_back();
  Rng rng(2020);
  for (auto& plan :
       pruning::RandomVariants(profile.layer_order, 60, 0.6, 0.1, rng)) {
    plans.push_back(std::move(plan));
  }
  core::ArchitectureSpace space;
  space.AddVariants(core::BuildVariantSpecs(profile, accuracy, plans, true));
  for (const auto& type : catalog.Types()) space.AddInstanceType(type.name);
  std::vector<int> counts;
  for (int c = 1; c <= 14; ++c) counts.push_back(c);
  space.SetCounts(std::move(counts));
  space.SetBatches({0, 32, 64, 128, 256, 512});
  space.SetPurchaseOptions(
      {core::PurchaseOption::kOnDemand, core::PurchaseOption::kSpot});
  space.AddCheckpointOption({.name = "none", .enabled = false, .policy = {}});
  space.AddCheckpointOption(
      {.name = "periodic-300",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kPeriodic,
                  .interval_s = 300.0}});
  space.AddCheckpointOption(
      {.name = "adaptive",
       .enabled = true,
       .policy = {.trigger = cloud::CheckpointTrigger::kAdaptive}});
  space.AddDegradationOption({.name = "none"});
  space.AddDegradationOption({.name = "skip-frames",
                              .recompute_speedup = 2.0,
                              .accuracy_factor = 0.97});
  space.AddDegradationOption({.name = "half-res",
                              .recompute_speedup = 4.0,
                              .accuracy_factor = 0.90});
  return space;
}

}  // namespace

int main() {
  bench::Banner(
      "Extension — Enumeration Engine Scaling",
      "Sorted-sweep Pareto filter throughput 10^3..10^7 points (vs the "
      "O(n^2) oracle up to 10^5), then the streamed EnumerateFrontier over "
      "the ~1.1M-config ccperf_calc default space.");

  // --- gate 1: filter scaling ----------------------------------------------
  constexpr std::size_t kOracleCap = 100'000;   // oracle timed up to here
  constexpr double kMinSpeedupAt1e5 = 10.0;     // acceptance bar
  Table table({"points", "sweep s", "points/s", "frontier", "oracle s",
               "speedup"});
  auto csv = bench::OpenCsv(
      "ext_enumeration_scale.csv",
      {"points", "sweep_seconds", "points_per_second", "frontier_size",
       "oracle_seconds", "speedup_vs_oracle"});
  double speedup_at_cap = 0.0;
  bool filters_agree = true;
  for (const std::size_t n :
       {std::size_t{1'000}, std::size_t{10'000}, std::size_t{100'000},
        std::size_t{1'000'000}, std::size_t{10'000'000}}) {
    const Cloudset cloud = UniformCloud(n, 0xCA9E + n);
    Timer sweep_timer;
    const auto sweep =
        core::SweepParetoFrontier3(cloud.time, cloud.cost, cloud.accuracy);
    const double sweep_s = sweep_timer.ElapsedSeconds();
    const double pps = static_cast<double>(n) / sweep_s;

    double oracle_s = 0.0;
    double speedup = 0.0;
    if (n <= kOracleCap) {
      Timer oracle_timer;
      const auto oracle =
          core::ParetoFrontier3(cloud.time, cloud.cost, cloud.accuracy);
      oracle_s = oracle_timer.ElapsedSeconds();
      speedup = oracle_s / sweep_s;
      if (n == kOracleCap) speedup_at_cap = speedup;
      if (sweep != oracle) {
        filters_agree = false;
        std::cout << "  [FAIL] sweep/oracle index sets differ at n=" << n
                  << "\n";
      }
    }
    table.AddRow({std::to_string(n), Table::Num(sweep_s, 4),
                  Table::Num(pps, 0), std::to_string(sweep.size()),
                  n <= kOracleCap ? Table::Num(oracle_s, 4) : "-",
                  n <= kOracleCap ? Table::Num(speedup, 1) + "x" : "-"});
    csv.AddRow({std::to_string(n), Table::Num(sweep_s, 6), Table::Num(pps, 0),
                std::to_string(sweep.size()),
                n <= kOracleCap ? Table::Num(oracle_s, 6) : "",
                n <= kOracleCap ? Table::Num(speedup, 2) : ""});
  }
  std::cout << table.Render() << "\n";
  bench::Checkpoint("sweep vs O(n^2) oracle speedup at 10^5 points",
                    ">= 10x (acceptance bar)",
                    Table::Num(speedup_at_cap, 1) + "x");
  if (!filters_agree) {
    std::cout << "  [FAIL] sweep disagrees with the oracle\n";
    return 1;
  }
  if (speedup_at_cap < kMinSpeedupAt1e5) {
    std::cout << "  [FAIL] sweep below the 10x acceptance bar\n";
    return 1;
  }

  // --- gate 2: streamed enumeration over the full default space ------------
  constexpr double kWallCeilingS = 120.0;  // ~1 s in practice; 120 s = broken
  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ArchitectureSpace space =
      DefaultSpace(catalog, profile, accuracy);
  const core::ArchitectureEvaluator evaluator(sim, space);
  core::EnumerationOptions options;  // 1M images, block 65536

  Timer engine_timer;
  const core::EnumerationResult result =
      core::EnumerateFrontier(evaluator, options);
  const double engine_s = engine_timer.ElapsedSeconds();
  const double configs_per_s =
      static_cast<double>(result.evaluated) / engine_s;

  std::cout << "  space: " << space.Size() << " configurations, evaluated "
            << result.evaluated << " in " << Table::Num(engine_s, 2)
            << " s (" << Table::Num(configs_per_s, 0)
            << " configs/s), frontier " << result.frontier.size()
            << ", peak candidate rows " << result.peak_candidates << "\n";
  csv.AddRow({std::to_string(result.evaluated), Table::Num(engine_s, 3),
              Table::Num(configs_per_s, 0),
              std::to_string(result.frontier.size()), "",
              ""});
  csv.Close();

  bench::Checkpoint("1.1M-config enumeration wall clock",
                    "< " + Table::Num(kWallCeilingS, 0) + " s (ceiling)",
                    Table::Num(engine_s, 2) + " s");
  if (space.Size() < 1'000'000) {
    std::cout << "  [FAIL] default space shrank below 10^6 configurations\n";
    return 1;
  }
  if (engine_s >= kWallCeilingS) {
    std::cout << "  [FAIL] enumeration exceeded the wall-clock ceiling\n";
    return 1;
  }
  // Memory contract: candidates never exceed one block plus the running
  // frontier (frontier size bounded here by 16x the final frontier — the
  // running frontier can briefly exceed the final one, never by orders of
  // magnitude on this space).
  const std::size_t peak_bound =
      options.block + 16 * (result.frontier.size() + 64);
  bench::Checkpoint("peak candidate rows (memory O(frontier + block))",
                    "<= " + std::to_string(peak_bound),
                    std::to_string(result.peak_candidates));
  if (result.peak_candidates > peak_bound) {
    std::cout << "  [FAIL] enumeration buffered more than O(frontier + "
                 "block) rows\n";
    return 1;
  }

  std::cout << "\nCSV: bench_results/ext_enumeration_scale.csv\n";
  return 0;
}
