// Extension: "elastic accuracy" under diurnal traffic.
//
// The paper's thesis is that accuracy is a tunable resource. Serving
// workloads are diurnal, so there are two classic ways to survive the peak:
// buy a fleet sized for peak load, or keep a mean-sized fleet and degrade.
// This experiment adds the paper's third option: keep the small fleet and
// switch to the sweet-spot pruned variant during peak hours, paying a few
// accuracy points instead of dollars.
//
// Method: a 24-"hour" (scaled to 24 x 10 min) sinusoidal arrival trace is
// served hour by hour; the adaptive policy picks the unpruned variant when
// predicted load fits capacity and the conv1@30+conv2@50 variant otherwise.
#include <cmath>
#include <iostream>
#include <numbers>
#include <tuple>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/serving.h"
#include "common/rng.h"
#include "core/accuracy_model.h"

namespace {

using namespace ccperf;

struct DayResult {
  double p99_worst_s = 0.0;
  double mean_accuracy = 0.0;  // request-weighted Top-5
  double cost_day = 0.0;
  bool stable = true;
};

}  // namespace

int main() {
  bench::Banner("Extension — Elastic Accuracy under Diurnal Load",
                "Peak-sized fleet vs mean-sized fleet vs mean-sized fleet "
                "with peak-hour pruning (CaffeNet serving).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const cloud::ServingPolicy policy{.max_batch = 128, .max_wait_s = 0.1};

  const cloud::VariantPerf full = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  const cloud::VariantPerf pruned = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, sweet), sweet.Label());
  const double acc_full = accuracy.Baseline().top5;
  const double acc_pruned = accuracy.Evaluate(sweet).top5;

  // Traffic: mean 55 img/s, swinging 35..75 over a (scaled) day. One M60
  // GPU sustains ~60 img/s unpruned and ~80 img/s with the sweet-spot
  // variant, so the peak only fits the small fleet when it degrades.
  const double mean_rate = 55.0, amplitude = 20.0;
  const double hour_s = 600.0;  // one "hour" = 10 simulated minutes
  const int hours = 24;

  cloud::ResourceConfig mean_fleet;  // fits the mean, not the peak
  mean_fleet.Add("g3.4xlarge");
  cloud::ResourceConfig peak_fleet;  // fits the peak with headroom
  peak_fleet.Add("g3.4xlarge", 2);

  auto run_day = [&](const cloud::ResourceConfig& fleet,
                     bool adaptive) -> DayResult {
    DayResult day;
    double acc_weighted = 0.0;
    std::int64_t total_requests = 0;
    Rng rng(2026);
    const double capacity = serving.Capacity(fleet, full, policy);
    for (int h = 0; h < hours; ++h) {
      // Hour-start predicted load drives the variant choice.
      const double phase =
          2.0 * std::numbers::pi * (h + 0.5) / hours - std::numbers::pi / 2.0;
      const double predicted = mean_rate + amplitude * std::sin(phase);
      const bool degrade = adaptive && predicted > capacity * 0.85;
      const cloud::VariantPerf& perf = degrade ? pruned : full;
      const double acc = degrade ? acc_pruned : acc_full;

      Rng hour_rng = rng.Fork();
      std::vector<double> arrivals = cloud::GenerateDiurnalArrivals(
          mean_rate, amplitude, hours * hour_s, hour_s * hours, hour_rng);
      // Keep only this hour's arrivals, shifted to hour-local time.
      std::vector<double> hour_arrivals;
      for (double a : arrivals) {
        if (a >= h * hour_s && a < (h + 1) * hour_s) {
          hour_arrivals.push_back(a - h * hour_s);
        }
      }
      const cloud::ServingReport report = serving.SimulateTrace(
          fleet, perf, std::move(hour_arrivals), hour_s, policy);
      day.p99_worst_s = std::max(day.p99_worst_s, report.p99_latency_s);
      day.stable = day.stable && report.stable;
      acc_weighted += acc * static_cast<double>(report.requests);
      total_requests += report.requests;
      day.cost_day += report.cost_per_hour_usd * hour_s / 3600.0;
    }
    day.mean_accuracy =
        total_requests > 0 ? acc_weighted / total_requests : 0.0;
    return day;
  };

  Table table({"strategy", "fleet", "stable", "worst p99 (s)",
               "mean Top-5 (%)", "cost per (scaled) day ($)"});
  auto csv = bench::OpenCsv("ext_diurnal_accuracy_scaling.csv",
                            {"strategy", "stable", "worst_p99_s",
                             "mean_top5", "cost"});
  DayResult peak_day, mean_day, adaptive_day;
  for (const auto& [name, fleet, adaptive] :
       std::vector<std::tuple<std::string, cloud::ResourceConfig*, bool>>{
           {"peak-sized fleet", &peak_fleet, false},
           {"mean-sized fleet", &mean_fleet, false},
           {"mean-sized + peak pruning", &mean_fleet, true}}) {
    const DayResult day = run_day(*fleet, adaptive);
    table.AddRow({name, fleet->ToString(), day.stable ? "yes" : "NO",
                  Table::Num(day.p99_worst_s, 2),
                  Table::Num(day.mean_accuracy * 100.0, 1),
                  Table::Num(day.cost_day, 2)});
    csv.AddRow({name, day.stable ? "1" : "0", Table::Num(day.p99_worst_s, 3),
                Table::Num(day.mean_accuracy, 4),
                Table::Num(day.cost_day, 3)});
    if (name == "peak-sized fleet") peak_day = day;
    if (name == "mean-sized fleet") mean_day = day;
    if (adaptive) adaptive_day = day;
  }
  std::cout << table.Render();

  bench::Checkpoint("mean-sized fleet alone", "melts at peak",
                    mean_day.stable && mean_day.p99_worst_s < 5.0
                        ? "survived (traffic draw was mild)"
                        : "p99 " + Table::Num(mean_day.p99_worst_s, 1) +
                              " s / unstable");
  bench::Checkpoint(
      "elastic accuracy",
      "small fleet + sweet-spot pruning rides out the peak",
      std::string(adaptive_day.stable ? "stable" : "UNSTABLE") + ", p99 " +
          Table::Num(adaptive_day.p99_worst_s, 2) + " s at mean Top-5 " +
          Table::Num(adaptive_day.mean_accuracy * 100.0, 1) + " %");
  bench::Checkpoint(
      "savings vs peak fleet",
      "1/3 of the fleet cost for a few accuracy points",
      Table::Num(peak_day.cost_day - adaptive_day.cost_day, 2) +
          " $/day saved, " +
          Table::Num((acc_full - adaptive_day.mean_accuracy) * 100.0, 1) +
          " pp mean Top-5 given up");
  return 0;
}
