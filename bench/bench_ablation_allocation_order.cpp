// Ablation: resource ordering inside Algorithm 1 (DESIGN.md §5).
//
// The paper sorts resources by ascending CAR. We compare three greedy
// orderings — CAR-ascending, hourly-price-ascending, and a fixed shuffled
// order — on the cost/time of the first feasible configuration they find.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "common/rng.h"
#include "core/accuracy_model.h"
#include "core/allocator.h"

namespace {

using namespace ccperf;

struct GreedyOutcome {
  bool feasible = false;
  double seconds = 0.0;
  double cost = 0.0;
  std::string config;
};

/// Greedy loop of Algorithm 1 with an externally-chosen resource order.
GreedyOutcome GreedyWithOrder(const cloud::CloudSimulator& sim,
                              const core::CandidateVariant& variant,
                              const std::vector<std::string>& ordered_pool,
                              std::int64_t images, double deadline,
                              double budget) {
  cloud::ResourceConfig config;
  for (const auto& name : ordered_pool) {
    config.Add(name);
    const cloud::RunEstimate run = sim.Run(config, variant.perf, images);
    if (run.seconds.value() <= deadline && run.cost_usd.value() <= budget) {
      return {true, run.seconds.value(), run.cost_usd.value(),
              config.ToString()};
    }
  }
  return {};
}

}  // namespace

int main() {
  bench::Banner("Ablation — Resource Ordering in Algorithm 1",
                "CAR-ascending (the paper) vs price-ascending vs shuffled, "
                "unpruned CaffeNet, W = 400k, T' = 2 h.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const core::CalibratedAccuracyModel accuracy =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::ResourceAllocator allocator(sim);

  const auto candidates = core::MakeCandidates(profile, accuracy, {{}});
  const core::CandidateVariant& variant = candidates.front();

  std::vector<std::string> pool{"p2.16xlarge", "p2.8xlarge", "p2.xlarge",
                                "g3.16xlarge", "g3.8xlarge", "g3.4xlarge",
                                "p2.xlarge",   "g3.4xlarge"};
  const std::int64_t kImages = 400000;
  const double kDeadline = 2.0 * 3600.0;
  const double kBudget = 30.0;

  // CAR-ascending order.
  std::vector<std::string> car_order = pool;
  std::sort(car_order.begin(), car_order.end(),
            [&](const std::string& a, const std::string& b) {
              return allocator.InstanceCar(a, variant, kImages) <
                     allocator.InstanceCar(b, variant, kImages);
            });
  // Price-ascending order.
  std::vector<std::string> price_order = pool;
  std::sort(price_order.begin(), price_order.end(),
            [&](const std::string& a, const std::string& b) {
              return catalog.Find(a).price_per_hour <
                     catalog.Find(b).price_per_hour;
            });
  // Fixed shuffled order.
  std::vector<std::string> shuffled = pool;
  Rng rng(99);
  const auto perm = rng.Permutation(static_cast<std::uint32_t>(pool.size()));
  for (std::size_t i = 0; i < pool.size(); ++i) shuffled[i] = pool[perm[i]];

  Table table({"Ordering", "Feasible", "Config", "Time (h)", "Cost ($)"});
  auto csv = bench::OpenCsv("ablation_allocation_order.csv",
                            {"ordering", "feasible", "config", "hours",
                             "cost"});
  double car_cost = 0.0, other_best = 1e18;
  for (const auto& [name, order] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"CAR-ascending (paper)", car_order},
           {"price-ascending", price_order},
           {"shuffled", shuffled}}) {
    const GreedyOutcome out =
        GreedyWithOrder(sim, variant, order, kImages, kDeadline, kBudget);
    table.AddRow({name, out.feasible ? "yes" : "no", out.config,
                  Table::Num(out.seconds / 3600.0, 2),
                  Table::Num(out.cost, 2)});
    csv.AddRow({name, out.feasible ? "1" : "0", out.config,
                Table::Num(out.seconds / 3600.0, 3),
                Table::Num(out.cost, 3)});
    if (name.rfind("CAR", 0) == 0) {
      car_cost = out.cost;
    } else if (out.feasible) {
      other_best = std::min(other_best, out.cost);
    }
  }
  std::cout << table.Render();
  bench::Checkpoint("CAR ordering cost", "<= alternatives",
                    Table::Num(car_cost, 2) + " vs best alternative " +
                        Table::Num(other_best, 2));
  return 0;
}
