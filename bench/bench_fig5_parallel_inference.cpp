// Reproduces Fig. 5: time for the 50,000-image workload vs. the number of
// parallel inferences (batch size) on a p2.xlarge K80.
//
// Shape to reproduce: steep improvement at small batches, saturation
// around ~300 parallel inferences, ~2.3x total spread.
#include <iostream>

#include "bench_common.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/characterization.h"

int main() {
  using namespace ccperf;
  bench::Banner("Figure 5 — Parallel Inference on a GPU",
                "50,000 CaffeNet/GoogLeNet inferences vs. batch size "
                "(p2.xlarge).");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile caffe = cloud::CaffeNetProfile();
  const cloud::ModelProfile goog = cloud::GoogLeNetProfile();
  const core::CalibratedAccuracyModel caffe_acc =
      core::CalibratedAccuracyModel::CaffeNet();
  const core::CalibratedAccuracyModel goog_acc =
      core::CalibratedAccuracyModel::GoogLeNet();
  const core::Characterization caffe_ch(sim, caffe, caffe_acc);
  const core::Characterization goog_ch(sim, goog, goog_acc);

  const std::vector<std::int64_t> batches{1,   25,  50,  100, 200,  300,
                                          450, 600, 900, 1200, 1600, 2000};
  const std::int64_t kImages = 50000;

  const auto caffe_curve = caffe_ch.BatchSweep("p2.xlarge", batches, kImages);
  const auto goog_curve = goog_ch.BatchSweep("p2.xlarge", batches, kImages);

  Table table({"Parallel Inferences", "Caffenet (s)", "Googlenet (s)"});
  auto csv = bench::OpenCsv("fig5_parallel_inference.csv",
                            {"batch", "caffenet_s", "googlenet_s"});
  AsciiChart chart(64, 12);
  std::vector<std::pair<double, double>> cpts, gpts;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    table.AddRow({std::to_string(batches[i]),
                  Table::Num(caffe_curve[i].second, 0),
                  Table::Num(goog_curve[i].second, 0)});
    csv.AddRow({std::to_string(batches[i]),
                Table::Num(caffe_curve[i].second, 1),
                Table::Num(goog_curve[i].second, 1)});
    cpts.emplace_back(static_cast<double>(batches[i]), caffe_curve[i].second);
    gpts.emplace_back(static_cast<double>(batches[i]), goog_curve[i].second);
  }
  std::cout << table.Render();
  chart.AddSeries("caffenet", '+', cpts);
  chart.AddSeries("googlenet", 'x', gpts);
  std::cout << chart.Render();

  const double t25 = caffe_curve[1].second;
  const double t300 = caffe_curve[5].second;
  const double t2000 = caffe_curve.back().second;
  bench::Checkpoint("saturation point", "~300 parallel inferences",
                    "B=300 is within " +
                        Table::Num((t300 / t2000 - 1.0) * 100.0, 1) +
                        " % of the B=2000 floor");
  bench::Checkpoint("small-batch penalty", "~3200 s vs ~1400 s floor (2.3x)",
                    Table::Num(t25, 0) + " s vs " + Table::Num(t2000, 0) +
                        " s (" + Table::Num(t25 / t2000, 2) + "x)");
  return 0;
}
