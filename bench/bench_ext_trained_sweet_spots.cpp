// Extension: Figure 6's experiment on a *genuinely trained* model.
//
// Everywhere else in the repo, accuracy under pruning is either a
// calibrated curve or teacher-student agreement. Here we train a CNN with
// the built-in SGD trainer on the synthetic classification task, then sweep
// per-layer pruning and measure TRUE held-out accuracy plus real inference
// time — the closest this reproduction gets to the paper's actual protocol
// (train -> prune -> measure), with no proxies anywhere.
#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/sweet_spot.h"
#include "nn/model_zoo.h"
#include "pruning/variant_generator.h"
#include "train/trainer.h"

namespace {

using namespace ccperf;

double TimeInference(const nn::Network& net,
                     const data::SyntheticImageDataset& dataset) {
  const Tensor batch = dataset.Batch(0, 32);
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    (void)net.Forward(batch);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  bench::Banner("Extension — Sweet Spots on a Trained Model",
                "Train TinyCnn with SGD on the synthetic 8-class task, then "
                "redo the paper's per-layer pruning sweep with true held-out "
                "accuracy (no teacher proxy).");

  const data::SyntheticImageDataset dataset(Shape{3, 16, 16}, 8, 768, 5,
                                            0.45f);
  nn::ModelConfig config;
  config.weight_seed = 99;
  config.num_classes = 8;
  nn::Network net = nn::BuildTinyCnn(config);
  train::SgdTrainer trainer(net, {.learning_rate = 0.05f, .momentum = 0.9f});
  const double loss = trainer.Fit(dataset, /*train_size=*/512, /*batch=*/32,
                                  /*epochs=*/12);
  const double base_top1 = train::TopKAccuracy(net, dataset, 512, 256, 1);
  const double base_top5 = train::TopKAccuracy(net, dataset, 512, 256, 5);
  std::cout << "trained to loss " << Table::Num(loss, 3)
            << "; held-out Top-1 " << Table::Num(base_top1 * 100.0, 1)
            << " %, Top-5 " << Table::Num(base_top5 * 100.0, 1) << " %\n\n";

  auto csv = bench::OpenCsv("ext_trained_sweet_spots.csv",
                            {"layer", "ratio", "ms", "top1", "top5"});
  for (const auto& layer : net.WeightedLayerNames()) {
    std::vector<core::CurvePoint> curve;
    Table table({"Prune (%)", "time (ms/batch32)", "Top-1 (%)", "Top-5 (%)"});
    for (double r : {0.0, 0.3, 0.6, 0.8, 0.9, 0.95, 0.98}) {
      const nn::Network variant = pruning::ApplyPlan(
          net, pruning::UniformPlan({layer}, r,
                                    pruning::PrunerFamily::kMagnitude));
      const double seconds = TimeInference(variant, dataset);
      const double top1 = train::TopKAccuracy(variant, dataset, 512, 256, 1);
      const double top5 = train::TopKAccuracy(variant, dataset, 512, 256, 5);
      // Sweet-spot detection runs on Top-1: Top-5 of 8 classes
      // saturates and carries no signal.
      curve.push_back({r, seconds, top1, top1});
      table.AddRow({Table::Num(r * 100.0, 0), Table::Num(seconds * 1000.0, 1),
                    Table::Num(top1 * 100.0, 1), Table::Num(top5 * 100.0, 1)});
      csv.AddRow({layer, Table::Num(r, 2), Table::Num(seconds * 1000.0, 2),
                  Table::Num(top1, 4), Table::Num(top5, 4)});
    }
    std::cout << "--- " << layer << " ---\n" << table.Render();
    const core::SweetSpot spot = core::FindSweetSpot(curve, 0.05);
    if (spot.exists) {
      std::cout << "  sweet spot up to " << spot.last_ratio * 100.0
                << " % (Top-1 -" << Table::Num(spot.accuracy_drop * 100.0, 1)
                << " pp)\n\n";
    } else {
      std::cout << "  no sweet spot under 5 pp Top-1 tolerance\n\n";
    }
  }

  bench::Checkpoint("sweet spots on real training",
                    "accuracy flat for light pruning, collapse when heavy "
                    "(paper Obs. 1/2, no proxies)",
                    "see per-layer tables");
  return 0;
}
