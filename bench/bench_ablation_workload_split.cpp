// Ablation: the paper's Eq. 4 distributes W equally across resources; on a
// heterogeneous configuration the slowest instance then dominates T (and,
// through Eq. 1, everyone's bill). This quantifies what the equal split
// costs versus a throughput-proportional split (DESIGN.md §5).
#include <iostream>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/simulator.h"

int main() {
  using namespace ccperf;
  bench::Banner("Ablation — Workload Split (Eq. 4 vs proportional)",
                "500k CaffeNet images on mixed configurations.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
      profile, cloud::DensityFromPlan(profile, {}), "nonpruned");
  const std::int64_t kImages = 500000;

  std::vector<cloud::ResourceConfig> configs;
  {
    cloud::ResourceConfig c;
    c.Add("p2.xlarge", 4);
    configs.push_back(c);  // homogeneous: splits should tie
  }
  {
    cloud::ResourceConfig c;
    c.Add("p2.xlarge");
    c.Add("p2.16xlarge");
    configs.push_back(c);  // 1 vs 16 GPUs: equal split is terrible
  }
  {
    cloud::ResourceConfig c;
    c.Add("g3.4xlarge", 2);
    c.Add("p2.8xlarge");
    configs.push_back(c);
  }
  {
    cloud::ResourceConfig c;
    c.Add("p2.xlarge", 3);
    c.Add("g3.16xlarge", 2);
    configs.push_back(c);
  }

  Table table({"configuration", "equal T (h)", "prop T (h)", "equal C ($)",
               "prop C ($)", "time saved"});
  auto csv = bench::OpenCsv(
      "ablation_workload_split.csv",
      {"config", "equal_hours", "prop_hours", "equal_cost", "prop_cost"});
  for (const auto& config : configs) {
    const cloud::RunEstimate equal =
        sim.Run(config, perf, kImages, cloud::WorkloadSplit::kEqual);
    const cloud::RunEstimate prop =
        sim.Run(config, perf, kImages, cloud::WorkloadSplit::kProportional);
    table.AddRow({config.ToString(),
                  Table::Num(ToHours(equal.seconds).value(), 2),
                  Table::Num(ToHours(prop.seconds).value(), 2),
                  Table::Num(equal.cost_usd.value(), 2),
                  Table::Num(prop.cost_usd.value(), 2),
                  Table::Num((1.0 - prop.seconds / equal.seconds) * 100.0, 0) +
                      " %"});
    csv.AddRow({config.ToString(),
                Table::Num(ToHours(equal.seconds).value(), 3),
                Table::Num(ToHours(prop.seconds).value(), 3),
                Table::Num(equal.cost_usd.value(), 3),
                Table::Num(prop.cost_usd.value(), 3)});
  }
  std::cout << table.Render();

  bench::Checkpoint("homogeneous configs", "splits tie", "first row equal");
  bench::Checkpoint("heterogeneous configs",
                    "proportional split dominates Eq. 4",
                    "time and cost both drop on mixed rows");
  return 0;
}
