// Reproduces Table 3: the Amazon EC2 GPU instance catalog the experiments
// run against, printed from the InstanceCatalog the simulator actually uses.
#include <iostream>

#include "bench_common.h"
#include "cloud/instance_catalog.h"

int main() {
  using namespace ccperf;
  bench::Banner("Table 3 — Amazon EC2 Cloud Resource Types",
                "Instance catalog backing the cloud simulator.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  Table table({"Instance Type", "vCPUs", "GPUs", "Mem (GB)", "GPU Mem (GB)",
               "Price ($/hr)", "GPU Type"});
  auto csv = bench::OpenCsv(
      "table3_ec2_catalog.csv",
      {"instance", "vcpus", "gpus", "mem_gb", "gpu_mem_gb", "price", "gpu"});
  for (const auto& t : catalog.Types()) {
    const cloud::GpuSpec& gpu = catalog.Gpu(t.gpu);
    table.AddRow({t.name, std::to_string(t.vcpus), std::to_string(t.gpus),
                  Table::Num(t.mem_gb, 0), Table::Num(t.gpu_mem_gb, 0),
                  Table::Num(t.price_per_hour.value(), 2), gpu.name});
    csv.AddRow({t.name, std::to_string(t.vcpus), std::to_string(t.gpus),
                Table::Num(t.mem_gb, 0), Table::Num(t.gpu_mem_gb, 0),
                Table::Num(t.price_per_hour.value(), 2), gpu.name});
  }
  std::cout << table.Render();

  bench::Checkpoint("p2 GPU cores", "2496 (K80)",
                    std::to_string(catalog.Gpu(cloud::GpuKind::kK80).cores));
  bench::Checkpoint("g3 GPU cores", "2048 (M60)",
                    std::to_string(catalog.Gpu(cloud::GpuKind::kM60).cores));
  return 0;
}
