// Extension: the paper's motivating scenario is *near-real-time* photo
// filtering (§1), but its models are batch-offline. This bench closes the
// loop with the discrete-event serving simulator: for a fixed arrival rate,
// how do fleet size and degree of pruning trade off p99 latency against
// $/hour?
#include <iostream>

#include "bench_common.h"
#include "cloud/density.h"
#include "cloud/model_profile.h"
#include "cloud/serving.h"
#include "common/rng.h"

int main() {
  using namespace ccperf;
  bench::Banner("Extension — Online Serving Latency vs Cost",
                "Poisson arrivals at 60 img/s, CaffeNet variants, batching "
                "policy: dispatch at 128 images or 100 ms.");

  const cloud::InstanceCatalog catalog = cloud::InstanceCatalog::AwsEc2();
  const cloud::CloudSimulator sim(catalog);
  const cloud::ServingSimulator serving(sim);
  const cloud::ModelProfile profile = cloud::CaffeNetProfile();
  const cloud::ServingPolicy policy{.max_batch = 128, .max_wait_s = 0.1};
  const double arrivals = 60.0;
  const double horizon = 600.0;

  struct Scenario {
    std::string fleet_name;
    cloud::ResourceConfig fleet;
    pruning::PrunePlan plan;
    std::string plan_name;
  };
  pruning::PrunePlan sweet;
  sweet.layer_ratios = {{"conv1", 0.3}, {"conv2", 0.5}};
  std::vector<Scenario> scenarios;
  for (const auto& [fleet_name, types] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"1x p2.8xlarge", {"p2.8xlarge"}},
           {"2x p2.8xlarge", {"p2.8xlarge", "p2.8xlarge"}},
           {"1x g3.16xlarge", {"g3.16xlarge"}},
           {"2x g3.16xlarge", {"g3.16xlarge", "g3.16xlarge"}}}) {
    cloud::ResourceConfig fleet;
    for (const auto& t : types) fleet.Add(t);
    scenarios.push_back({fleet_name, fleet, {}, "nonpruned"});
    scenarios.push_back({fleet_name, fleet, sweet, sweet.Label()});
  }

  Table table({"fleet", "variant", "capacity (img/s)", "stable",
               "p50 (ms)", "p99 (ms)", "util (%)", "$/hour"});
  auto csv = bench::OpenCsv("ext_serving_latency.csv",
                            {"fleet", "variant", "capacity", "stable", "p50_ms",
                             "p99_ms", "utilization", "cost_per_hour"});
  for (const auto& s : scenarios) {
    const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
        profile, cloud::DensityFromPlan(profile, s.plan), s.plan_name);
    const double capacity = serving.Capacity(s.fleet, perf, policy);
    Rng rng(42);
    const cloud::ServingReport report =
        serving.Simulate(s.fleet, perf, arrivals, horizon, policy, rng);
    table.AddRow({s.fleet_name, s.plan_name, Table::Num(capacity, 0),
                  report.stable ? "yes" : "NO",
                  Table::Num(report.p50_latency_s * 1000.0, 0),
                  Table::Num(report.p99_latency_s * 1000.0, 0),
                  Table::Num(report.utilization * 100.0, 0),
                  Table::Num(report.cost_per_hour_usd, 2)});
    csv.AddRow({s.fleet_name, s.plan_name, Table::Num(capacity, 1),
                report.stable ? "1" : "0",
                Table::Num(report.p50_latency_s * 1000.0, 1),
                Table::Num(report.p99_latency_s * 1000.0, 1),
                Table::Num(report.utilization, 3),
                Table::Num(report.cost_per_hour_usd, 2)});
  }
  std::cout << table.Render();

  bench::Checkpoint("pruning as a latency lever",
                    "sweet-spot variant adds headroom on the same fleet",
                    "compare p99 rows per fleet");
  bench::Checkpoint("g3 vs p2 for serving", "lower CAR carries over",
                    "g3 fleets deliver lower p99 per dollar");
  return 0;
}
