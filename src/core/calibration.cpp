#include "core/calibration.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace ccperf::core {

namespace {

void CheckSweep(std::span<const CurvePoint> curve) {
  CCPERF_CHECK(curve.size() >= 3, "calibration sweep needs >= 3 points");
  CCPERF_CHECK(curve.front().ratio == 0.0, "sweep must start at ratio 0");
  for (std::size_t i = 1; i < curve.size(); ++i) {
    CCPERF_CHECK(curve[i].ratio > curve[i - 1].ratio,
                 "sweep ratios must increase");
  }
}

/// Weighted least squares y = a + b x; returns {a, b}.
std::pair<double, double> LeastSquares(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const std::vector<double>& w) {
  double sw = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sw += w[i];
    sx += w[i] * x[i];
    sy += w[i] * y[i];
    sxx += w[i] * x[i] * x[i];
    sxy += w[i] * x[i] * y[i];
  }
  const double denom = sw * sxx - sx * sx;
  if (denom == 0.0) return {sy / sw, 0.0};
  const double b = (sw * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / sw;
  return {a, b};
}

}  // namespace

DamageFit FitLayerDamage(std::span<const CurvePoint> curve,
                         double knee_exponent, double min_drop) {
  CheckSweep(curve);
  CCPERF_CHECK(knee_exponent > 0.0, "knee exponent must be positive");
  const double base = curve.front().top5;
  CCPERF_CHECK(base > 0.0, "base accuracy must be positive");

  DamageFit fit;
  std::vector<double> log_r, log_d, weight;
  for (const CurvePoint& p : curve) {
    if (p.ratio <= 0.0) continue;
    const double m = p.top5 / base;
    if (m >= 1.0 - min_drop || m <= 0.0) continue;  // no signal / collapsed
    const double damage = std::pow(1.0 / m - 1.0, 1.0 / knee_exponent);
    log_r.push_back(std::log(p.ratio));
    log_d.push_back(std::log(damage));
    // Near-flat samples carry mostly measurement noise in log-damage;
    // weight each point by its observed accuracy drop.
    weight.push_back((1.0 - m) * (1.0 - m));
  }
  fit.samples_used = static_cast<int>(log_r.size());
  if (fit.samples_used < 2) return fit;  // not enough informative points

  const auto [a, b] = LeastSquares(log_r, log_d, weight);
  fit.damage.sensitivity = std::exp(a);
  fit.damage.exponent = b;
  fit.ok = fit.damage.sensitivity > 0.0 && fit.damage.exponent > 0.0;

  // Residual on the multiplier scale over the informative samples.
  double ss = 0.0;
  int count = 0;
  for (const CurvePoint& p : curve) {
    if (p.ratio <= 0.0) continue;
    const double m_obs = p.top5 / base;
    if (m_obs >= 1.0 - min_drop || m_obs <= 0.0) continue;
    const double damage =
        fit.damage.sensitivity * std::pow(p.ratio, fit.damage.exponent);
    const double m_pred = 1.0 / (1.0 + std::pow(damage, knee_exponent));
    ss += (m_pred - m_obs) * (m_pred - m_obs);
    ++count;
  }
  fit.rms_error = count > 0 ? std::sqrt(ss / count) : 0.0;
  return fit;
}

TimeFit FitPrunableFraction(std::span<const CurvePoint> curve,
                            double time_share) {
  CheckSweep(curve);
  CCPERF_CHECK(time_share > 0.0 && time_share <= 1.0,
               "time share must be in (0, 1]");
  const double t0 = curve.front().seconds;
  CCPERF_CHECK(t0 > 0.0, "base time must be positive");

  // Fit 1 - t(r)/t0 = slope * r through the origin.
  double num = 0.0, den = 0.0;
  for (const CurvePoint& p : curve) {
    if (p.ratio <= 0.0) continue;
    const double saving = 1.0 - p.seconds / t0;
    num += saving * p.ratio;
    den += p.ratio * p.ratio;
  }
  TimeFit fit;
  if (den == 0.0) return fit;
  fit.share_times_prunable = num / den;
  fit.prunable_fraction = fit.share_times_prunable / time_share;
  fit.ok = fit.share_times_prunable > 0.0 && fit.prunable_fraction <= 1.0;

  double ss = 0.0;
  int count = 0;
  for (const CurvePoint& p : curve) {
    if (p.ratio <= 0.0) continue;
    const double pred = 1.0 - fit.share_times_prunable * p.ratio;
    ss += (pred - p.seconds / t0) * (pred - p.seconds / t0);
    ++count;
  }
  fit.rms_error = count > 0 ? std::sqrt(ss / count) : 0.0;
  return fit;
}

CalibratedAccuracyModel FitAccuracyModel(
    const std::map<std::string, std::vector<CurvePoint>>& layer_curves,
    double base_top1, double base_top5,
    pruning::PrunerFamily measured_family, LayerDamage fallback,
    double knee_exponent) {
  CCPERF_CHECK(!layer_curves.empty(), "no calibration curves");
  // The model discounts magnitude-pruning damage by this factor at
  // evaluation time (CalibratedAccuracyModel::DamageOf); curves measured
  // under magnitude pruning already contain the gentler response, so their
  // fitted sensitivities must be scaled back up.
  const double family_discount =
      measured_family == pruning::PrunerFamily::kMagnitude ? 0.55 : 1.0;
  std::map<std::string, LayerDamage> overrides;
  for (const auto& [layer, curve] : layer_curves) {
    DamageFit fit = FitLayerDamage(curve, knee_exponent);
    fit.damage.sensitivity /= family_discount;
    overrides[layer] = fit.ok ? fit.damage : fallback;
  }
  return CalibratedAccuracyModel(base_top1, base_top5, fallback,
                                 std::move(overrides), knee_exponent);
}

namespace {

/// Strict double parse: the whole (trimmed) cell must be one finite number.
double ParseCell(const std::string& cell, const char* what) {
  const auto first = cell.find_first_not_of(" \t\r");
  CCPERF_CHECK(first != std::string::npos, "empty ", what, " cell");
  const auto last = cell.find_last_not_of(" \t\r");
  const std::string body = cell.substr(first, last - first + 1);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(body.c_str(), &end);
  CCPERF_CHECK(end == body.c_str() + body.size() && errno == 0 &&
                   std::isfinite(value),
               "malformed ", what, " value '", cell, "' in calibration CSV");
  return value;
}

}  // namespace

std::vector<CurvePoint> ParseCurveCsv(std::istream& in) {
  std::string line;
  CCPERF_CHECK(static_cast<bool>(std::getline(in, line)),
               "calibration CSV is empty");
  const auto trim = [](std::string s) {
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos) return std::string();
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
  };
  CCPERF_CHECK(trim(line) == "ratio,seconds,top1,top5",
               "unexpected calibration CSV header '", line, "'");
  std::vector<CurvePoint> curve;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    std::vector<std::string> cells;
    std::string cell;
    std::stringstream row(line);
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    CCPERF_CHECK(cells.size() == 4, "calibration CSV row needs 4 cells, got ",
                 cells.size(), " in '", line, "'");
    CurvePoint point;
    point.ratio = ParseCell(cells[0], "ratio");
    point.seconds = ParseCell(cells[1], "seconds");
    point.top1 = ParseCell(cells[2], "top1");
    point.top5 = ParseCell(cells[3], "top5");
    CCPERF_CHECK(point.ratio >= 0.0 && point.ratio < 1.0,
                 "ratio must be in [0, 1), got ", point.ratio);
    CCPERF_CHECK(point.seconds >= 0.0, "seconds must be >= 0, got ",
                 point.seconds);
    CCPERF_CHECK(point.top1 >= 0.0 && point.top1 <= 1.0 &&
                     point.top5 >= 0.0 && point.top5 <= 1.0,
                 "accuracies must be in [0, 1]");
    CCPERF_CHECK(curve.empty() || point.ratio > curve.back().ratio,
                 "sweep ratios must be strictly ascending, got ",
                 point.ratio, " after ", curve.back().ratio);
    curve.push_back(point);
  }
  return curve;
}

std::vector<CurvePoint> ParseCurveCsv(const std::string& text) {
  std::stringstream stream(text);
  return ParseCurveCsv(stream);
}

}  // namespace ccperf::core
