#include "core/empirical_accuracy.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/corruption.h"

namespace ccperf::core {

EmpiricalAccuracyEvaluator::EmpiricalAccuracyEvaluator(
    const nn::Network& teacher, const data::SyntheticImageDataset& dataset,
    std::int64_t sample_images, std::int64_t batch, double base_top1,
    double base_top5)
    : dataset_(dataset),
      sample_images_(sample_images),
      batch_(batch),
      base_top1_(base_top1),
      base_top5_(base_top5) {
  CCPERF_CHECK(sample_images_ >= 1 && sample_images_ <= dataset.Size(),
               "sample size out of range");
  CCPERF_CHECK(batch_ >= 1, "batch must be positive");
  CCPERF_CHECK(base_top1_ > 0.0 && base_top5_ >= base_top1_ &&
                   base_top5_ <= 1.0,
               "invalid base accuracies");
  teacher_labels_.reserve(static_cast<std::size_t>(sample_images_));
  for (std::int64_t start = 0; start < sample_images_; start += batch_) {
    const std::int64_t count = std::min(batch_, sample_images_ - start);
    const Tensor logits = teacher.Forward(dataset_.Batch(start, count));
    for (std::int64_t label : nn::ArgMax(logits)) {
      teacher_labels_.push_back(label);
    }
  }
}

AccuracyResult EmpiricalAccuracyEvaluator::Agreement(
    const nn::Network& variant) const {
  std::int64_t top1_hits = 0;
  std::int64_t top5_hits = 0;
  for (std::int64_t start = 0; start < sample_images_; start += batch_) {
    const std::int64_t count = std::min(batch_, sample_images_ - start);
    const Tensor logits = variant.Forward(dataset_.Batch(start, count));
    const std::size_t k = std::min<std::size_t>(
        5, static_cast<std::size_t>(logits.GetShape().Dim(1)));
    const auto top5 = nn::TopK(logits, k);
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t expected =
          teacher_labels_[static_cast<std::size_t>(start + i)];
      const auto& ranked = top5[static_cast<std::size_t>(i)];
      if (ranked.front() == expected) ++top1_hits;
      if (std::find(ranked.begin(), ranked.end(), expected) != ranked.end()) {
        ++top5_hits;
      }
    }
  }
  const auto n = static_cast<double>(sample_images_);
  return {static_cast<double>(top1_hits) / n,
          static_cast<double>(top5_hits) / n};
}

AccuracyResult EmpiricalAccuracyEvaluator::Evaluate(
    const nn::Network& variant) const {
  const AccuracyResult agreement = Agreement(variant);
  return {agreement.top1 * base_top1_, agreement.top5 * base_top5_};
}

AccuracyResult EmpiricalAccuracyEvaluator::EvaluateInt8(
    const nn::Network& variant) const {
  nn::Network quantized = variant.Clone();
  quantized.SetInt8Execution(true);
  return Evaluate(quantized);
}

AccuracyResult EmpiricalAccuracyEvaluator::EvaluateCorrupted(
    const nn::Network& variant, std::uint64_t seed) const {
  nn::Network corrupted = variant.Clone();
  const std::vector<std::string> names = corrupted.WeightedLayerNames();
  CCPERF_CHECK(!names.empty(), "variant has no weighted layer to corrupt");
  Rng rng(seed);
  nn::Layer* layer =
      corrupted.FindLayer(names[static_cast<std::size_t>(
          rng.NextIndex(static_cast<std::uint64_t>(names.size())))]);
  CorruptionInjector injector(rng.NextU64());
  injector.CorruptFloats(layer->MutableWeights().Data());
  layer->NotifyWeightsChanged();
  return Evaluate(corrupted);
}

}  // namespace ccperf::core
