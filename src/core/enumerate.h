// Architecture-space enumeration engine (ROADMAP item 2).
//
// The paper's Figs. 9/10 sweep (variant × configuration); real deployment
// adds purchase option (on-demand vs spot), batch size, checkpoint policy,
// accuracy-degradation policy and silent-corruption detection policy
// (cloud/sdc.h). The cross product is millions of configurations, so the
// engine never materializes the space:
//
//   ArchitectureSpace     — the combinatorial axes + a mixed-radix flat id;
//                           Encode/Decode are exact inverses and the flat id
//                           doubles as the keep-first tie-break identity.
//   MetricRegistry        — registered-once named metrics over ArchMetrics
//                           (time, cost, top-1/top-5, goodput, interruption
//                           risk, TAR/CAR) driving CLI sort/filter/CSV.
//   ArchitectureEvaluator — flat id -> ArchMetrics through the calibrated
//                           analytic models (CloudSimulator Eqs. 1-4, spot
//                           economics mirroring EstimateSpotRun, metrics.h
//                           no-checkpoint restart expectation). Pure
//                           function of the id: bitwise-reproducible.
//   EnumerateFrontier     — streamed block-wise evaluation (slot-per-task
//                           ParallelFor, bitwise-equal to serial) feeding
//                           the sorted-sweep Pareto filter
//                           (core/pareto_sweep.h); memory stays
//                           O(frontier + block), never O(space).
//
// The evaluator models homogeneous fleets (count × one instance type) — the
// shape the axis product enumerates; heterogeneous multi-type
// configurations keep going through ConfigSpaceExplorer, whose frontiers
// now run on the same sweep filter.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cloud/checkpoint.h"
#include "cloud/instance_catalog.h"
#include "cloud/model_profile.h"
#include "cloud/sdc.h"
#include "cloud/simulator.h"
#include "cloud/variant_perf.h"
#include "core/accuracy_model.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {

/// One entry of the variant axis: a pruned (and possibly quantized) model
/// with its device-independent perf profile and modeled accuracy.
struct VariantSpec {
  std::string label;
  cloud::VariantPerf perf;
  double top1 = 0.0;
  double top5 = 0.0;
};

/// Expand prune plans into variant-axis entries: one float entry per plan,
/// plus (when `include_int8`) one int8 entry priced through the quantized
/// time factor and the additive quant damage.
std::vector<VariantSpec> BuildVariantSpecs(
    const cloud::ModelProfile& profile, const CalibratedAccuracyModel& accuracy,
    const std::vector<pruning::PrunePlan>& plans, bool include_int8);

/// How the fleet is bought.
enum class PurchaseOption { kOnDemand, kSpot };

/// "on-demand" / "spot".
const char* PurchaseOptionName(PurchaseOption option);

/// One entry of the checkpoint-policy axis. `enabled` false ("none") means
/// no snapshots: a spot preemption restarts the whole run (the metrics.h
/// (e^{λt}-1)/λ expectation). The policy is ignored on on-demand rows.
struct CheckpointOption {
  std::string name;
  bool enabled = false;
  cloud::CheckpointPolicy policy;
};

/// One entry of the degradation-policy axis: when a spot preemption forces
/// recompute, the degraded path replays the lost window `recompute_speedup`×
/// faster at `accuracy_factor` of the variant's accuracy (applied to the
/// recompute fraction of the run only). {1, 1} is "none". Ignored on
/// on-demand rows.
struct DegradationOption {
  std::string name;
  double recompute_speedup = 1.0;
  double accuracy_factor = 1.0;
};

/// One entry of the SDC-detection axis (cloud/sdc.h): how much silent-data-
/// corruption checking the deployment buys. The implicit default axis is a
/// single "off" entry (SDC not modeled), which keeps flat ids — and every
/// result computed before this axis existed — unchanged.
struct SdcOption {
  std::string name;
  cloud::SdcPolicy policy;
};

/// Everything a config costs and delivers — computed once per flat id; the
/// MetricRegistry exposes named views over these fields.
struct ArchMetrics {
  Seconds seconds;         // expected completion time (spot effects included)
  Usd cost_usd;            // expected cost at the purchase option's price
  double top1 = 0.0;       // effective accuracy (degradation included)
  double top5 = 0.0;
  double goodput = 1.0;    // base_seconds / expected_seconds, in (0, 1]
  double interruption_risk = 0.0;  // P(>=1 preemption during the run)
  // Silent-corruption view (cloud/sdc.h). Under SdcPolicyKind::kOff these
  // degenerate to delivered == effective and zero escape/overhead, so
  // detection-free rows plot on the same axes.
  double delivered_top1 = 0.0;  // accuracy after undetected corruption
  double delivered_top5 = 0.0;
  double sdc_escape_rate = 0.0;       // corrupted work delivered as correct
  double detection_overhead = 0.0;    // fractional time billed to detection
};

/// A named scalar view over ArchMetrics.
struct Metric {
  std::string name;
  std::string description;
  double (*extract)(const ArchMetrics&) = nullptr;
  bool lower_is_better = true;
};

/// Registered-once metric table. Registration rejects duplicate names;
/// Standard() is the process-wide registry every tool sorts/filters by.
class MetricRegistry {
 public:
  MetricRegistry() = default;

  /// Throws CheckError on a duplicate name or null extractor.
  void Register(std::string name, std::string description,
                double (*extract)(const ArchMetrics&), bool lower_is_better);

  [[nodiscard]] bool Contains(const std::string& name) const;
  /// Throws CheckError when absent (message lists the registered names).
  [[nodiscard]] const Metric& Find(const std::string& name) const;
  [[nodiscard]] const std::vector<Metric>& All() const { return metrics_; }

  /// time_h, cost_usd, top1, top5, goodput, interruption_risk, tar, car,
  /// delivered_top1, sdc_escape_rate, detection_overhead.
  static const MetricRegistry& Standard();

 private:
  std::vector<Metric> metrics_;  // registration order
};

/// Per-axis indices of one configuration (the decoded flat id).
struct AxisPoint {
  std::size_t variant = 0;
  std::size_t type = 0;
  std::size_t count = 0;
  std::size_t batch = 0;
  std::size_t purchase = 0;
  std::size_t checkpoint = 0;
  std::size_t degradation = 0;
  std::size_t sdc = 0;
};

/// The combinatorial space: variant × instance type × count × batch ×
/// purchase × checkpoint policy × degradation policy × SDC policy. Ids are
/// mixed-radix with variant the slowest axis and SDC the fastest, so the
/// flat id is also the enumeration (input) order of every sweep. The SDC
/// axis defaults to a single implicit "off" entry, so spaces built before
/// it existed keep their exact flat ids.
class ArchitectureSpace {
 public:
  ArchitectureSpace() = default;

  // Builders append axis entries; Validate() (and any query) requires every
  // axis non-empty.
  void AddVariant(VariantSpec variant);
  void AddVariants(std::vector<VariantSpec> variants);
  void AddInstanceType(std::string name);
  void SetCounts(std::vector<int> counts);          // each >= 1
  void SetBatches(std::vector<std::int64_t> batches);  // 0 = auto (largest fit)
  void SetPurchaseOptions(std::vector<PurchaseOption> options);
  void AddCheckpointOption(CheckpointOption option);
  void AddDegradationOption(DegradationOption option);
  /// Appends an SDC-detection option. Never calling this leaves the
  /// implicit single-"off" axis in place (ids and Size() unchanged).
  void AddSdcOption(SdcOption option);

  /// Throws CheckError when an axis is empty or an entry is invalid.
  void Validate() const;

  /// Product of the axis sizes.
  [[nodiscard]] std::uint64_t Size() const;

  [[nodiscard]] std::uint64_t Encode(const AxisPoint& point) const;
  [[nodiscard]] AxisPoint Decode(std::uint64_t id) const;

  /// "conv1@30 | 4xp2.xlarge | batch=auto | spot | ckpt=adaptive | degr=none"
  /// (plus " | sdc=<name>" once the SDC axis has explicit entries).
  [[nodiscard]] std::string Describe(std::uint64_t id) const;

  [[nodiscard]] const std::vector<VariantSpec>& Variants() const {
    return variants_;
  }
  [[nodiscard]] const std::vector<std::string>& TypeNames() const {
    return type_names_;
  }
  [[nodiscard]] const std::vector<int>& Counts() const { return counts_; }
  [[nodiscard]] const std::vector<std::int64_t>& Batches() const {
    return batches_;
  }
  [[nodiscard]] const std::vector<PurchaseOption>& PurchaseOptions() const {
    return purchase_;
  }
  [[nodiscard]] const std::vector<CheckpointOption>& CheckpointOptions() const {
    return checkpoints_;
  }
  [[nodiscard]] const std::vector<DegradationOption>& DegradationOptions()
      const {
    return degradations_;
  }
  /// The effective axis: explicit entries, or the implicit single "off".
  [[nodiscard]] const std::vector<SdcOption>& SdcOptions() const;

 private:
  std::vector<VariantSpec> variants_;
  std::vector<std::string> type_names_;
  std::vector<int> counts_;
  std::vector<std::int64_t> batches_;
  std::vector<PurchaseOption> purchase_;
  std::vector<CheckpointOption> checkpoints_;
  std::vector<DegradationOption> degradations_;
  std::vector<SdcOption> sdc_;  // empty = implicit {"off"}
};

/// Prices one flat id through the analytic models. Construction resolves
/// every instance-type name once (no string lookups in the hot loop);
/// Evaluate is a pure function of (id, images) — safe to call concurrently
/// and bitwise-reproducible.
class ArchitectureEvaluator {
 public:
  /// `preemption_rate` is per instance (as EstimateSpotRun);
  /// `restart` is the reprovisioning delay charged per preemption.
  ArchitectureEvaluator(const cloud::CloudSimulator& sim,
                        const ArchitectureSpace& space,
                        RatePerHour preemption_rate = RatePerHour(0.05),
                        Seconds restart = Seconds(60.0));

  /// False when the combination cannot exist (spot purchase of a type with
  /// no spot market); `out` untouched then. Deadline/budget feasibility is
  /// the caller's filter, not this one.
  [[nodiscard]] bool Evaluate(std::uint64_t id, std::int64_t images,
                              ArchMetrics& out) const;

  [[nodiscard]] const ArchitectureSpace& Space() const { return space_; }

 private:
  /// Common tail of Evaluate: applies the row's SDC policy (overhead into
  /// seconds/cost, escapes into delivered accuracy) and writes `out`.
  bool FinishWithSdc(ArchMetrics& m, const SdcOption& sdc,
                     const cloud::InstanceType& type, PurchaseOption purchase,
                     int count, Seconds base_seconds, ArchMetrics& out) const;

  const cloud::CloudSimulator& sim_;
  const ArchitectureSpace& space_;
  std::vector<const cloud::InstanceType*> types_;  // space type axis order
  double preemption_rate_per_hour_;
  double restart_s_;
};

/// Knobs of one enumeration run.
struct EnumerationOptions {
  std::int64_t images = 1'000'000;
  Seconds deadline_s{std::numeric_limits<double>::infinity()};
  Usd budget_usd{std::numeric_limits<double>::infinity()};
  std::size_t block = 65536;  // ids evaluated per compaction round
  bool serial = false;        // force serial evaluation (ScopedSerial)
  bool use_top5 = true;       // frontier accuracy objective
  // Detection-aware frontier: rank on delivered accuracy (after undetected
  // corruption) instead of effective accuracy. Identical under "off" rows.
  bool use_delivered = false;
};

/// One surviving configuration.
struct FrontierPoint {
  std::uint64_t id = 0;
  ArchMetrics metrics;
};

/// Result of a streamed enumeration. `peak_candidates` is the largest
/// (frontier ∪ block) row count any compaction saw — the engine's memory
/// high-water mark in rows, gated by bench_ext_enumeration_scale.
struct EnumerationResult {
  std::vector<FrontierPoint> frontier;  // ascending flat id
  std::uint64_t evaluated = 0;          // ids offered to the evaluator
  std::uint64_t feasible = 0;           // rows that met market+deadline+budget
  std::size_t peak_candidates = 0;
};

/// Stream the whole space through the evaluator in blocks, keeping only the
/// running 3-D frontier (minimize time and cost, maximize accuracy).
/// Parallel and serial runs are bitwise-identical: each id writes a
/// preassigned slot and compaction order is the id order.
EnumerationResult EnumerateFrontier(const ArchitectureEvaluator& evaluator,
                                    const EnumerationOptions& options);

}  // namespace ccperf::core
