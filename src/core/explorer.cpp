#include "core/explorer.h"

#include "cloud/density.h"
#include "cloud/variant_perf.h"
#include "common/check.h"
#include "core/pareto_sweep.h"

namespace ccperf::core {

ConfigSpaceExplorer::ConfigSpaceExplorer(const cloud::CloudSimulator& simulator,
                                         const cloud::ModelProfile& profile,
                                         const AccuracyModel& accuracy)
    : simulator_(simulator), profile_(profile), accuracy_(accuracy) {}

ExplorationResult ConfigSpaceExplorer::Explore(
    const std::vector<pruning::PrunePlan>& variants,
    const std::vector<cloud::ResourceConfig>& configs, std::int64_t images,
    Seconds deadline_s, Usd budget_usd) const {
  CCPERF_CHECK(!variants.empty() && !configs.empty(),
               "empty exploration space");
  CCPERF_CHECK(images >= 1, "need at least one image");

  ExplorationResult result;
  for (const auto& plan : variants) {
    const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
        profile_, cloud::DensityFromPlan(profile_, plan), plan.Label());
    const AccuracyResult accuracy = accuracy_.Evaluate(plan);
    for (const auto& config : configs) {
      ++result.evaluated;
      const cloud::RunEstimate run = simulator_.Run(config, perf, images);
      if (run.seconds > deadline_s || run.cost_usd > budget_usd) continue;
      ExploredPoint point;
      point.variant_label = perf.label;
      point.plan = plan;
      point.config = config;
      point.seconds = run.seconds;
      point.cost_usd = run.cost_usd;
      point.top1 = accuracy.top1;
      point.top5 = accuracy.top5;
      result.feasible.push_back(std::move(point));
    }
  }
  return result;
}

namespace {
std::vector<std::size_t> Frontier(std::span<const ExploredPoint> points,
                                  bool use_top5, bool use_cost) {
  std::vector<double> objective(points.size());
  std::vector<double> accuracy(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    objective[i] =
        use_cost ? points[i].cost_usd.value() : points[i].seconds.value();
    accuracy[i] = use_top5 ? points[i].top5 : points[i].top1;
  }
  // Production path: the sorted-sweep filter (ParetoFrontier in
  // core/pareto.h remains the differential oracle, same contract).
  return SweepParetoFrontier(objective, accuracy);
}
}  // namespace

std::vector<std::size_t> TimeAccuracyFrontier(
    std::span<const ExploredPoint> points, bool use_top5) {
  return Frontier(points, use_top5, /*use_cost=*/false);
}

std::vector<std::size_t> CostAccuracyFrontier(
    std::span<const ExploredPoint> points, bool use_top5) {
  return Frontier(points, use_top5, /*use_cost=*/true);
}

}  // namespace ccperf::core
