// Empirical accuracy evaluation by teacher-student agreement.
//
// We cannot measure true ImageNet accuracy without the trained models, so we
// measure agreement of a pruned variant with its own unpruned reference
// ("teacher"): Top-1 agreement = fraction of images where the variant's
// argmax equals the teacher's; Top-5 = teacher's label within the variant's
// top-5. This reproduces the *mechanism* behind the paper's sweet-spots —
// low-magnitude weights carry little of the decision — and is mapped onto
// the paper's absolute scale by multiplying with the base accuracies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/accuracy_model.h"
#include "data/synthetic_dataset.h"
#include "nn/network.h"

namespace ccperf::core {

/// Measures accuracy of pruned variants against an unpruned teacher.
class EmpiricalAccuracyEvaluator {
 public:
  /// Runs the teacher over the first `sample_images` of `dataset` (in
  /// batches of `batch`) and caches its Top-1 labels.
  EmpiricalAccuracyEvaluator(const nn::Network& teacher,
                             const data::SyntheticImageDataset& dataset,
                             std::int64_t sample_images, std::int64_t batch,
                             double base_top1 = 0.55, double base_top5 = 0.80);

  /// Agreement of `variant` with the teacher, scaled to the absolute base.
  [[nodiscard]] AccuracyResult Evaluate(const nn::Network& variant) const;

  /// Raw (unscaled) agreement fractions.
  [[nodiscard]] AccuracyResult Agreement(const nn::Network& variant) const;

  /// Agreement of an int8-quantized execution of `variant` with the float
  /// teacher: the variant is cloned, opted into int8, and evaluated —
  /// measuring quantization damage empirically (the measurement that
  /// calibrates CalibratedAccuracyModel::kInt8QuantDamage). Composes with
  /// pruning: a pruned variant evaluates the sparse+quantized dispatch.
  [[nodiscard]] AccuracyResult EvaluateInt8(const nn::Network& variant) const;

  /// Agreement of `variant` after one seeded silent weight corruption: the
  /// variant is cloned and a single bit flip (CorruptionInjector's default
  /// sign/exponent/high-mantissa range) lands in a seed-chosen weighted
  /// layer before evaluation — measuring undetected-corruption damage
  /// empirically (the measurement that calibrates
  /// CalibratedAccuracyModel::kSdcCorruptionDamage).
  [[nodiscard]] AccuracyResult EvaluateCorrupted(const nn::Network& variant,
                                                 std::uint64_t seed = 0) const;

  [[nodiscard]] std::int64_t SampleSize() const { return sample_images_; }

 private:
  const data::SyntheticImageDataset& dataset_;
  std::int64_t sample_images_;
  std::int64_t batch_;
  double base_top1_;
  double base_top5_;
  std::vector<std::int64_t> teacher_labels_;
};

}  // namespace ccperf::core
