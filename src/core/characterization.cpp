#include "core/characterization.h"

#include "cloud/density.h"
#include "common/check.h"

namespace ccperf::core {

Characterization::Characterization(const cloud::CloudSimulator& simulator,
                                   const cloud::ModelProfile& profile,
                                   const AccuracyModel& accuracy)
    : simulator_(simulator), profile_(profile), accuracy_(accuracy) {}

std::vector<std::pair<std::string, double>>
Characterization::TimeDistribution() const {
  std::vector<std::pair<std::string, double>> shares;
  const double total = profile_.TotalShare();
  CCPERF_CHECK(total > 0.0, "profile has no time shares");
  for (const auto& name : profile_.layer_order) {
    shares.emplace_back(name, profile_.layers.at(name).time_share / total);
  }
  shares.emplace_back("other", profile_.residual_share / total);
  return shares;
}

double Characterization::SingleInferenceSeconds(
    const std::string& instance, double ratio,
    pruning::PrunerFamily family) const {
  pruning::PrunePlan plan =
      pruning::UniformPlan(profile_.layer_order, ratio, family);
  // Fig. 4 prunes "uniformly across all convolution layers" — leave fully-
  // connected layers untouched.
  for (const auto& name : profile_.layer_order) {
    if (name.rfind("fc", 0) == 0 || name.find("classifier") !=
                                        std::string::npos) {
      plan.layer_ratios[name] = 0.0;
    }
  }
  const cloud::DensityMap densities = cloud::DensityFromPlan(profile_, plan);
  const cloud::VariantPerf perf =
      cloud::ComputeVariantPerf(profile_, densities, plan.Label());
  const cloud::InstanceType& type = simulator_.Catalog().Find(instance);
  return simulator_.BatchSeconds(type, perf, 1).value();
}

std::vector<std::pair<std::int64_t, double>> Characterization::BatchSweep(
    const std::string& instance, const std::vector<std::int64_t>& batches,
    std::int64_t images) const {
  const pruning::PrunePlan nonpruned;
  const cloud::VariantPerf perf = cloud::ComputeVariantPerf(
      profile_, cloud::DensityFromPlan(profile_, nonpruned), "nonpruned");
  const cloud::InstanceType& type = simulator_.Catalog().Find(instance);
  std::vector<std::pair<std::int64_t, double>> curve;
  curve.reserve(batches.size());
  for (std::int64_t b : batches) {
    curve.emplace_back(
        b, simulator_.InstanceSeconds(type, perf, images, b).value());
  }
  return curve;
}

CurvePoint Characterization::EvaluatePlan(const std::string& instance,
                                          const pruning::PrunePlan& plan,
                                          std::int64_t images) const {
  const cloud::DensityMap densities = cloud::DensityFromPlan(profile_, plan);
  const cloud::VariantPerf perf =
      cloud::ComputeVariantPerf(profile_, densities, plan.Label());
  const cloud::InstanceType& type = simulator_.Catalog().Find(instance);
  const AccuracyResult accuracy = accuracy_.Evaluate(plan);
  CurvePoint point;
  point.ratio = plan.MeanRatio();
  point.seconds = simulator_.InstanceSeconds(type, perf, images).value();
  point.top1 = accuracy.top1;
  point.top5 = accuracy.top5;
  return point;
}

std::vector<CurvePoint> Characterization::SingleLayerSweep(
    const std::string& instance, const std::string& layer,
    const std::vector<double>& ratios, std::int64_t images,
    pruning::PrunerFamily family) const {
  std::vector<CurvePoint> curve;
  curve.reserve(ratios.size());
  for (double r : ratios) {
    pruning::PrunePlan plan;
    plan.family = family;
    plan.layer_ratios[layer] = r;
    CurvePoint point = EvaluatePlan(instance, plan, images);
    point.ratio = r;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace ccperf::core
