// Resource allocation under deadline + budget constraints.
//
// AllocateGreedy implements the paper's Algorithm 1: order degrees of
// pruning by (accuracy desc, TAR asc), order resources by CAR asc, and grow
// the configuration greedily until it fits the deadline and budget —
// O(|P| |G| log |G|) instead of the exhaustive O(2^|G|) baseline, which is
// also provided for optimality comparison on small pools.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cloud/resource_config.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {

/// One degree of pruning offered to the allocator.
struct CandidateVariant {
  std::string label;
  pruning::PrunePlan plan;
  double accuracy = 0.0;  // the accuracy dimension used for ordering
  cloud::VariantPerf perf;
};

/// Build candidates from plans using a profile + accuracy model.
/// `use_top5` selects which accuracy feeds the allocator.
std::vector<CandidateVariant> MakeCandidates(
    const cloud::ModelProfile& profile, const AccuracyModel& accuracy,
    const std::vector<pruning::PrunePlan>& plans, bool use_top5 = true);

/// Allocation outcome.
struct AllocationResult {
  bool feasible = false;
  std::string variant_label;
  double accuracy = 0.0;
  cloud::ResourceConfig config;
  Seconds seconds;
  Usd cost_usd;
  /// Number of (variant, configuration) evaluations performed — the
  /// complexity measure compared in the paper's efficiency discussion.
  std::size_t evaluations = 0;
};

/// Deadline/budget-constrained allocator over a pool of resource instances.
class ResourceAllocator {
 public:
  explicit ResourceAllocator(const cloud::CloudSimulator& simulator);

  /// Paper Algorithm 1. `pool` lists individual resource instances (one
  /// entry per allocatable machine; duplicates allowed). `split` selects
  /// the workload distribution: kEqual is the paper's Eq. 4; kProportional
  /// is this library's extension that stops the slowest instance from
  /// dominating heterogeneous configurations.
  /// `interruption_rate` (per instance; 0 = reliable capacity)
  /// prices spot risk in: feasibility and the reported time/cost use the
  /// expected values under restart-on-interruption, so a larger fleet's
  /// higher interruption exposure can outweigh its shorter nominal run.
  [[nodiscard]] AllocationResult AllocateGreedy(
      std::span<const CandidateVariant> variants,
      std::span<const std::string> pool, std::int64_t images,
      Seconds deadline_s, Usd budget_usd,
      cloud::WorkloadSplit split = cloud::WorkloadSplit::kEqual,
      RatePerHour interruption_rate = RatePerHour(0.0)) const;

  /// Exhaustive baseline: every subset of `pool` x every variant (2^|G|).
  /// Returns the feasible allocation with the highest accuracy, breaking
  /// ties by lower cost then lower time. Pool size is capped at 20.
  [[nodiscard]] AllocationResult AllocateExhaustive(
      std::span<const CandidateVariant> variants,
      std::span<const std::string> pool, std::int64_t images,
      Seconds deadline_s, Usd budget_usd,
      cloud::WorkloadSplit split = cloud::WorkloadSplit::kEqual,
      RatePerHour interruption_rate = RatePerHour(0.0)) const;

  /// CAR of running the whole workload on one instance alone — the greedy
  /// ordering key (paper §4.5.3). With a non-zero interruption rate this
  /// is the expected (risk-inflated) CAR.
  [[nodiscard]] double InstanceCar(
      const std::string& instance, const CandidateVariant& variant,
      std::int64_t images,
      RatePerHour interruption_rate = RatePerHour(0.0)) const;

 private:
  const cloud::CloudSimulator& simulator_;
};

}  // namespace ccperf::core
