#include "core/sweet_spot.h"

#include "common/check.h"

namespace ccperf::core {

SweetSpot FindSweetSpot(std::span<const CurvePoint> curve, double tolerance) {
  CCPERF_CHECK(curve.size() >= 2, "sweep needs at least two points");
  CCPERF_CHECK(curve.front().ratio == 0.0, "sweep must start at ratio 0");
  CCPERF_CHECK(tolerance >= 0.0, "negative tolerance");
  for (std::size_t i = 1; i < curve.size(); ++i) {
    CCPERF_CHECK(curve[i].ratio > curve[i - 1].ratio,
                 "sweep ratios must be strictly increasing");
  }

  const CurvePoint& base = curve.front();
  SweetSpot spot;
  for (const CurvePoint& p : curve) {
    if (p.ratio == 0.0) continue;
    const bool accuracy_ok = base.top5 - p.top5 <= tolerance;
    // The region must be contiguous from ratio 0: once accuracy leaves the
    // tolerance band the sweet spot has ended, even if it re-enters later.
    if (!accuracy_ok) break;
    const bool faster = p.seconds < base.seconds;
    if (faster) {
      spot.exists = true;
      spot.last_ratio = p.ratio;
      spot.time_saving = 1.0 - p.seconds / base.seconds;
      spot.accuracy_drop = base.top5 - p.top5;
    }
  }
  return spot;
}

}  // namespace ccperf::core
