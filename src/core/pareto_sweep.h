// Incremental / sorted-sweep Pareto-dominance filters.
//
// core/pareto.h keeps the straightforward filters (the 2-D sort-and-scan
// and the O(n²) all-pairs 3-D loop) as differential oracles; this header is
// the production engine behind every frontier in the repo:
//
//   ParetoStaircase2    — incremental 2-D frontier (minimize objective,
//                         maximize accuracy). Points stream in arbitrary
//                         order; each insert binary-searches the staircase
//                         (the frontier sorted by objective, accuracy
//                         strictly increasing with it), rejects covered
//                         points, and evicts newly dominated ones.
//                         Amortized O(log f) per insert, memory O(f).
//   SweepParetoFrontier — 2-D frontier of a point cloud via one sort +
//                         linear scan. O(n log n).
//   SweepParetoFrontier3— 3-D frontier (minimize time and cost, maximize
//                         accuracy) via a sweep over the points sorted by
//                         (time, cost, -accuracy, index): in that order no
//                         later point can dominate an earlier one, so a
//                         point survives iff the 2-D staircase over the
//                         already-processed (cost, accuracy) pairs does not
//                         cover it. O(n log n), memory O(frontier).
//
// Semantics are pinned to the oracles (core_pareto_sweep_test proves
// index-set equality on seeded clouds):
//   - duplicates keep the first occurrence in input order;
//   - a point equal to a kept point in every objective is dropped;
//   - any NaN objective CHECK-fails (a NaN would otherwise win every
//     comparison it appears in and silently poison the frontier).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ccperf::core {

/// Incremental bi-objective frontier: minimize `objective`, maximize
/// `accuracy`. Entries are held sorted by objective ascending; the
/// staircase invariant (accuracy strictly increasing with objective) makes
/// both the coverage query and the eviction range a binary search.
class ParetoStaircase2 {
 public:
  struct Entry {
    double objective = 0.0;
    double accuracy = 0.0;
    std::uint64_t id = 0;  // caller-supplied identity (input index, flat id)
  };

  /// Offer one point. Returns true and keeps it when no held entry covers
  /// it (objective <= and accuracy >=); entries the new point covers are
  /// evicted. Equal (objective, accuracy) pairs keep the first-inserted
  /// entry. NaN in either coordinate CHECK-fails.
  bool Insert(double objective, double accuracy, std::uint64_t id);

  /// True iff a held entry covers (objective <= obj, accuracy >= acc) —
  /// i.e. Insert would reject the point. Does not modify the staircase.
  [[nodiscard]] bool Covers(double objective, double accuracy) const;

  /// Current frontier, sorted by objective ascending (accuracy strictly
  /// ascending with it).
  [[nodiscard]] const std::vector<Entry>& Entries() const { return entries_; }

  [[nodiscard]] std::size_t Size() const { return entries_.size(); }
  [[nodiscard]] bool Empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  /// Best accuracy among entries with objective <= `objective`;
  /// -infinity when no such entry exists.
  [[nodiscard]] double BestAccuracyAt(double objective) const;

 private:
  std::vector<Entry> entries_;  // objective ascending, accuracy ascending
};

/// 2-D frontier of a point cloud: indices of the Pareto-optimal
/// (objective minimized, accuracy maximized) points, one representative per
/// accuracy level, sorted by descending accuracy — the same contract as
/// ParetoFrontier (core/pareto.h), which remains the differential oracle.
/// Exact duplicates keep the lowest input index. O(n log n); NaN
/// CHECK-fails.
std::vector<std::size_t> SweepParetoFrontier(std::span<const double> objective,
                                             std::span<const double> accuracy);

/// 3-D frontier: indices of the points not dominated per Dominates3
/// (minimize time and cost, maximize accuracy), duplicates keeping the
/// first occurrence — index-set-identical to ParetoFrontier3
/// (core/pareto.h), the O(n²) oracle. Returned in input (ascending index)
/// order. O(n log n) time, O(frontier) extra memory beyond the sort
/// permutation; NaN CHECK-fails.
std::vector<std::size_t> SweepParetoFrontier3(std::span<const double> time,
                                              std::span<const double> cost,
                                              std::span<const double> accuracy);

}  // namespace ccperf::core
