#include "core/allocator.h"

#include <algorithm>
#include <numeric>

#include "cloud/density.h"
#include "cloud/pricing.h"
#include "common/check.h"
#include "core/metrics.h"

namespace ccperf::core {

std::vector<CandidateVariant> MakeCandidates(
    const cloud::ModelProfile& profile, const AccuracyModel& accuracy,
    const std::vector<pruning::PrunePlan>& plans, bool use_top5) {
  std::vector<CandidateVariant> candidates;
  candidates.reserve(plans.size());
  for (const auto& plan : plans) {
    CandidateVariant candidate;
    candidate.label = plan.Label();
    candidate.plan = plan;
    const AccuracyResult acc = accuracy.Evaluate(plan);
    candidate.accuracy = use_top5 ? acc.top5 : acc.top1;
    candidate.perf = cloud::ComputeVariantPerf(
        profile, cloud::DensityFromPlan(profile, plan), candidate.label);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

ResourceAllocator::ResourceAllocator(const cloud::CloudSimulator& simulator)
    : simulator_(simulator) {}

double ResourceAllocator::InstanceCar(const std::string& instance,
                                      const CandidateVariant& variant,
                                      std::int64_t images,
                                      RatePerHour interruption_rate) const {
  const cloud::InstanceType& type = simulator_.Catalog().Find(instance);
  const Seconds seconds =
      simulator_.InstanceSeconds(type, variant.perf, images);
  const Usd cost = cloud::ProratedCost(seconds, type.price_per_hour);
  return ExpectedCostAccuracyRatio(cost, seconds, variant.accuracy,
                                   interruption_rate);
}

namespace {

/// Variant ordering of Algorithm 1 line 1: accuracy descending, then TAR
/// ascending for equal accuracy. TAR is computed on the lowest-CAR resource.
std::vector<std::size_t> OrderVariants(
    const ResourceAllocator& allocator,
    std::span<const CandidateVariant> variants,
    std::span<const std::string> pool, std::int64_t images,
    RatePerHour interruption_rate) {
  std::vector<double> tar(variants.size(), 0.0);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    // Reference time for TAR: the pool's cheapest-CAR instance. Within one
    // instance CAR = price x TAR / 3600, so ordering by the best CAR is the
    // TAR ordering on that reference resource.
    double best_car = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < pool.size(); ++g) {
      best_car = std::min(
          best_car, allocator.InstanceCar(pool[g], variants[i], images,
                                          interruption_rate));
    }
    tar[i] = best_car;
  }
  std::vector<std::size_t> order(variants.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (variants[a].accuracy != variants[b].accuracy) {
      return variants[a].accuracy > variants[b].accuracy;
    }
    return tar[a] < tar[b];
  });
  return order;
}

}  // namespace

AllocationResult ResourceAllocator::AllocateGreedy(
    std::span<const CandidateVariant> variants,
    std::span<const std::string> pool, std::int64_t images, Seconds deadline_s,
    Usd budget_usd, cloud::WorkloadSplit split,
    RatePerHour interruption_rate) const {
  CCPERF_CHECK(!variants.empty() && !pool.empty(), "empty allocation inputs");
  CCPERF_CHECK(interruption_rate >= RatePerHour(0.0),
               "interruption rate must be >= 0");
  AllocationResult result;

  const std::vector<std::size_t> variant_order =
      OrderVariants(*this, variants, pool, images, interruption_rate);

  for (std::size_t vi : variant_order) {
    const CandidateVariant& variant = variants[vi];
    // Algorithm 1 line 3: sort G ascending by CAR for this variant.
    std::vector<std::size_t> resource_order(pool.size());
    std::iota(resource_order.begin(), resource_order.end(), 0);
    std::vector<double> car(pool.size());
    for (std::size_t g = 0; g < pool.size(); ++g) {
      car[g] = InstanceCar(pool[g], variant, images, interruption_rate);
    }
    std::sort(resource_order.begin(), resource_order.end(),
              [&car](std::size_t a, std::size_t b) { return car[a] < car[b]; });

    cloud::ResourceConfig config;
    for (std::size_t g : resource_order) {
      config.Add(pool[g]);  // line 6: add resource with lowest CAR
      ++result.evaluations;
      const cloud::RunEstimate run =
          simulator_.Run(config, variant.perf, images, split);  // lines 7-8
      // Any instance interrupting restarts the whole configuration, so the
      // fleet-level rate is per-instance rate x |R|.
      const RatePerHour fleet_rate =
          interruption_rate * config.TotalInstances();
      const Seconds expected_s =
          ExpectedSecondsUnderInterruption(run.seconds, fleet_rate);
      const Usd expected_cost =
          ExpectedCostUnderInterruption(run.cost_usd, run.seconds, fleet_rate);
      if (expected_s <= deadline_s && expected_cost <= budget_usd) {
        result.feasible = true;
        result.variant_label = variant.label;
        result.accuracy = variant.accuracy;
        result.config = config;
        result.seconds = expected_s;
        result.cost_usd = expected_cost;
        return result;
      }
    }
  }
  return result;  // line 14: no feasible allocation
}

AllocationResult ResourceAllocator::AllocateExhaustive(
    std::span<const CandidateVariant> variants,
    std::span<const std::string> pool, std::int64_t images, Seconds deadline_s,
    Usd budget_usd, cloud::WorkloadSplit split,
    RatePerHour interruption_rate) const {
  CCPERF_CHECK(!variants.empty() && !pool.empty(), "empty allocation inputs");
  CCPERF_CHECK(pool.size() <= 20, "exhaustive search capped at |G| = 20");
  CCPERF_CHECK(interruption_rate >= RatePerHour(0.0),
               "interruption rate must be >= 0");
  AllocationResult best;

  const std::uint64_t subsets = 1ULL << pool.size();
  for (const CandidateVariant& variant : variants) {
    for (std::uint64_t mask = 1; mask < subsets; ++mask) {
      cloud::ResourceConfig config;
      for (std::size_t g = 0; g < pool.size(); ++g) {
        if (mask & (1ULL << g)) config.Add(pool[g]);
      }
      ++best.evaluations;
      const cloud::RunEstimate run =
          simulator_.Run(config, variant.perf, images, split);
      const RatePerHour fleet_rate =
          interruption_rate * config.TotalInstances();
      const Seconds expected_s =
          ExpectedSecondsUnderInterruption(run.seconds, fleet_rate);
      const Usd expected_cost =
          ExpectedCostUnderInterruption(run.cost_usd, run.seconds, fleet_rate);
      if (expected_s > deadline_s || expected_cost > budget_usd) continue;
      const bool better =
          !best.feasible || variant.accuracy > best.accuracy ||
          (variant.accuracy == best.accuracy &&
           (expected_cost < best.cost_usd ||
            (expected_cost == best.cost_usd && expected_s < best.seconds)));
      if (better) {
        best.feasible = true;
        best.variant_label = variant.label;
        best.accuracy = variant.accuracy;
        best.config = config;
        best.seconds = expected_s;
        best.cost_usd = expected_cost;
      }
    }
  }
  return best;
}

}  // namespace ccperf::core
