#include "core/pareto.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace ccperf::core {

namespace {

void CheckNoNaN(std::span<const double> values, const char* axis) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    CCPERF_CHECK(!std::isnan(values[i]), "NaN ", axis, " objective at index ",
                 static_cast<unsigned long long>(i),
                 " — a NaN would silently win the frontier");
  }
}

}  // namespace

bool Dominates(double obj_a, double acc_a, double obj_b, double acc_b) {
  CCPERF_CHECK(!std::isnan(obj_a) && !std::isnan(acc_a) &&
                   !std::isnan(obj_b) && !std::isnan(acc_b),
               "NaN objective in dominance comparison");
  const bool no_worse = obj_a <= obj_b && acc_a >= acc_b;
  const bool strictly_better = obj_a < obj_b || acc_a > acc_b;
  return no_worse && strictly_better;
}

std::vector<std::size_t> ParetoFrontier(std::span<const double> objective,
                                        std::span<const double> accuracy) {
  CCPERF_CHECK(objective.size() == accuracy.size(),
               "objective/accuracy size mismatch");
  CheckNoNaN(objective, "objective");
  CheckNoNaN(accuracy, "accuracy");
  const std::size_t n = objective.size();
  if (n == 0) return {};

  // Sort by accuracy descending; ties by objective ascending so the best
  // representative of each accuracy level comes first, then by input index
  // so exact duplicates deterministically keep the first occurrence.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (accuracy[a] != accuracy[b]) return accuracy[a] > accuracy[b];
    if (objective[a] != objective[b]) return objective[a] < objective[b];
    return a < b;
  });

  std::vector<std::size_t> frontier;
  double best_objective = std::numeric_limits<double>::infinity();
  double last_accuracy = std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    // Skip duplicates of an accuracy level already represented.
    if (accuracy[idx] == last_accuracy) continue;
    if (objective[idx] < best_objective) {
      frontier.push_back(idx);
      best_objective = objective[idx];
      last_accuracy = accuracy[idx];
    }
  }
  return frontier;
}

bool Dominates3(double time_a, double cost_a, double acc_a, double time_b,
                double cost_b, double acc_b) {
  CCPERF_CHECK(!std::isnan(time_a) && !std::isnan(cost_a) &&
                   !std::isnan(acc_a) && !std::isnan(time_b) &&
                   !std::isnan(cost_b) && !std::isnan(acc_b),
               "NaN objective in dominance comparison");
  const bool no_worse =
      time_a <= time_b && cost_a <= cost_b && acc_a >= acc_b;
  const bool strictly_better =
      time_a < time_b || cost_a < cost_b || acc_a > acc_b;
  return no_worse && strictly_better;
}

std::vector<std::size_t> ParetoFrontier3(std::span<const double> time,
                                         std::span<const double> cost,
                                         std::span<const double> accuracy) {
  CCPERF_CHECK(time.size() == cost.size() && cost.size() == accuracy.size(),
               "objective size mismatch");
  CheckNoNaN(time, "time");
  CheckNoNaN(cost, "cost");
  CheckNoNaN(accuracy, "accuracy");
  const std::size_t n = time.size();
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < n && !dominated; ++j) {
      if (j == i) continue;
      if (Dominates3(time[j], cost[j], accuracy[j], time[i], cost[i],
                     accuracy[i])) {
        dominated = true;
      } else if (j < i && time[j] == time[i] && cost[j] == cost[i] &&
                 accuracy[j] == accuracy[i]) {
        dominated = true;  // duplicate: keep the first occurrence only
      }
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

}  // namespace ccperf::core
