// Sweet-spot detection (paper Observation 1): the pruning range where
// inference time falls while accuracy stays within a tolerance of baseline.
#pragma once

#include <span>
#include <vector>

namespace ccperf::core {

/// One measured/predicted point of a prune-ratio sweep.
struct CurvePoint {
  double ratio = 0.0;    // prune ratio in [0, 1)
  double seconds = 0.0;  // inference time
  double top1 = 0.0;     // accuracy in [0, 1]
  double top5 = 0.0;
};

/// Result of scanning a single-layer sweep for its sweet-spot region.
struct SweetSpot {
  bool exists = false;
  double last_ratio = 0.0;      // largest ratio still inside the region
  double time_saving = 0.0;     // 1 - t(last_ratio)/t(0)
  double accuracy_drop = 0.0;   // top5(0) - top5(last_ratio)
};

/// Find the largest prune ratio whose Top-5 accuracy is within
/// `tolerance` (absolute) of the unpruned accuracy and whose time is below
/// the unpruned time. `curve` must be sorted by ascending ratio and start
/// at ratio 0.
SweetSpot FindSweetSpot(std::span<const CurvePoint> curve,
                        double tolerance = 0.04);

}  // namespace ccperf::core
