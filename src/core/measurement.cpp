#include "core/measurement.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/metrics.h"

namespace ccperf::core {

MeasurementPipeline::MeasurementPipeline(
    const nn::Network& base, const data::SyntheticImageDataset& dataset,
    MeasurementConfig config)
    : base_(base), dataset_(dataset), config_(config) {
  CCPERF_CHECK(config_.images >= 1 && config_.batch >= 1 &&
                   config_.repetitions >= 1,
               "invalid measurement config");
  CCPERF_CHECK(config_.images <= dataset_.Size(),
               "not enough images in dataset");
}

double MeasurementPipeline::TimeNetwork(const nn::Network& net) const {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.repetitions));
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    Timer timer;
    for (std::int64_t start = 0; start < config_.images;
         start += config_.batch) {
      const std::int64_t count =
          std::min(config_.batch, config_.images - start);
      (void)net.Forward(dataset_.Batch(start, count));
    }
    samples.push_back(timer.ElapsedSeconds());
  }
  return MinOf(samples);
}

std::vector<MeasurementRecord> MeasurementPipeline::Run(
    const std::vector<pruning::PrunePlan>& plans,
    const EmpiricalAccuracyEvaluator& evaluator) const {
  std::vector<MeasurementRecord> records;
  records.reserve(plans.size());
  for (const auto& plan : plans) {
    const nn::Network variant = pruning::ApplyPlan(base_, plan);
    MeasurementRecord record;
    record.label = plan.Label();
    record.plan = plan;
    record.seconds = TimeNetwork(variant);
    const AccuracyResult accuracy = evaluator.Evaluate(variant);
    record.top1 = accuracy.top1;
    record.top5 = accuracy.top5;
    record.tar1 = TimeAccuracyRatio(Seconds(record.seconds), record.top1);
    record.tar5 = TimeAccuracyRatio(Seconds(record.seconds), record.top5);
    if (config_.price_per_hour > 0.0) {
      record.cost_usd = record.seconds * config_.price_per_hour / 3600.0;
      record.car5 = CostAccuracyRatio(Usd(record.cost_usd), record.top5);
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ccperf::core
