// Pareto-frontier filter over (objective, accuracy) points: minimize the
// objective (time or cost) while maximizing accuracy (paper §3.4, Figs 9-10).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccperf::core {

/// Indices (into the input spans) of the Pareto-optimal points: those for
/// which no other point has accuracy >= and objective <= with at least one
/// strict inequality. Duplicate points keep exactly one representative.
/// Returned indices are sorted by descending accuracy. O(n log n).
std::vector<std::size_t> ParetoFrontier(std::span<const double> objective,
                                        std::span<const double> accuracy);

/// True iff point a (obj_a, acc_a) dominates point b: no worse in both
/// dimensions and strictly better in at least one.
bool Dominates(double obj_a, double acc_a, double obj_b, double acc_b);

/// Tri-objective frontier: minimize both `time` and `cost` while maximizing
/// `accuracy` — the consumer's real decision space when T' and C' both
/// bind. Indices of non-dominated points (duplicates keep one
/// representative), in input order. O(n²).
std::vector<std::size_t> ParetoFrontier3(std::span<const double> time,
                                         std::span<const double> cost,
                                         std::span<const double> accuracy);

/// Tri-objective dominance: a no worse than b in all three, better in one.
bool Dominates3(double time_a, double cost_a, double acc_a, double time_b,
                double cost_b, double acc_b);

}  // namespace ccperf::core
