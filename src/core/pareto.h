// Pareto-frontier filter over (objective, accuracy) points: minimize the
// objective (time or cost) while maximizing accuracy (paper §3.4, Figs 9-10).
//
// These are the straightforward reference implementations — the 2-D
// sort-and-scan and the O(n²) all-pairs 3-D loop. Production frontiers run
// on the O(n log n) sorted-sweep filters in core/pareto_sweep.h; the
// functions here stay as the differential oracles those sweeps are proven
// against, so their semantics are pinned:
//   - exact duplicate points keep the FIRST occurrence in input order;
//   - any NaN objective CHECK-fails (NaN compares false against everything,
//     so it would never be dominated and would silently win the frontier).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccperf::core {

/// Indices (into the input spans) of the Pareto-optimal points: those for
/// which no other point has accuracy >= and objective <= with at least one
/// strict inequality. Exact duplicate points keep the lowest input index.
/// Returned indices are sorted by descending accuracy. NaN CHECK-fails.
/// O(n log n).
std::vector<std::size_t> ParetoFrontier(std::span<const double> objective,
                                        std::span<const double> accuracy);

/// True iff point a (obj_a, acc_a) dominates point b: no worse in both
/// dimensions and strictly better in at least one. An exact duplicate does
/// NOT dominate (both inequalities tie) — duplicate collapsing is the
/// frontier functions' keep-first rule, not dominance. NaN CHECK-fails.
bool Dominates(double obj_a, double acc_a, double obj_b, double acc_b);

/// Tri-objective frontier: minimize both `time` and `cost` while maximizing
/// `accuracy` — the consumer's real decision space when T' and C' both
/// bind. Indices of non-dominated points, in input order; exact duplicate
/// triples keep the first occurrence only. NaN CHECK-fails. O(n²).
std::vector<std::size_t> ParetoFrontier3(std::span<const double> time,
                                         std::span<const double> cost,
                                         std::span<const double> accuracy);

/// Tri-objective dominance: a no worse than b in all three, better in one.
/// As with Dominates, an exact duplicate does not dominate and any NaN
/// coordinate CHECK-fails.
bool Dominates3(double time_a, double cost_a, double acc_a, double time_b,
                double cost_b, double acc_b);

}  // namespace ccperf::core
