// Measurement pipeline (paper §3.3): run real inference for each degree of
// pruning, record the minimum time over repetitions, measure accuracy, and
// compute TAR/CAR. This drives the actual CPU engine; the cloud-scale
// experiments use the analytical models calibrated from such measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/empirical_accuracy.h"
#include "data/synthetic_dataset.h"
#include "nn/network.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {

/// One row of the measurement output list (§3.3: "a list of degrees of
/// pruning with their inference time, cost, TAR, and CAR").
struct MeasurementRecord {
  std::string label;
  pruning::PrunePlan plan;
  double seconds = 0.0;  // min over repetitions
  double top1 = 0.0;
  double top5 = 0.0;
  double tar1 = 0.0;  // TAR against Top-1
  double tar5 = 0.0;
  double cost_usd = 0.0;  // seconds x price_per_hour (0 if no price given)
  double car5 = 0.0;
};

/// Configuration of the pipeline.
struct MeasurementConfig {
  std::int64_t images = 32;       // images timed per repetition
  std::int64_t batch = 8;         // inference batch size
  int repetitions = 3;            // paper: run 3x, record the minimum
  double price_per_hour = 0.0;    // >0 to also compute cost and CAR
};

/// Runs real (CPU) inference for every plan against a base network.
class MeasurementPipeline {
 public:
  MeasurementPipeline(const nn::Network& base,
                      const data::SyntheticImageDataset& dataset,
                      MeasurementConfig config);

  /// Measure every plan; `evaluator` supplies accuracy (teacher-student).
  [[nodiscard]] std::vector<MeasurementRecord> Run(
      const std::vector<pruning::PrunePlan>& plans,
      const EmpiricalAccuracyEvaluator& evaluator) const;

  /// Time (seconds, min over repetitions) of one already-pruned network.
  [[nodiscard]] double TimeNetwork(const nn::Network& net) const;

 private:
  const nn::Network& base_;
  const data::SyntheticImageDataset& dataset_;
  MeasurementConfig config_;
};

}  // namespace ccperf::core
