// Calibration: fit the analytical models from measured curves — the
// "measurement-driven analytical modeling" loop of the paper's §3.
//
// Accuracy side: the damage model predicts m(r) = 1 / (1 + (s r^p)^k) for a
// single-layer sweep. Inverting, log D(r) = log s + p log r with
// D = (1/m - 1)^{1/k}, so (s, p) come from ordinary least squares in log
// space over the samples where accuracy has measurably dropped.
//
// Time side: a single-layer sweep obeys t(r)/t(0) = 1 - share·pf·r, so the
// slope of a linear fit recovers share·pf; given the layer's time share,
// that yields its prunable fraction.
#pragma once

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/accuracy_model.h"
#include "core/sweet_spot.h"

namespace ccperf::core {

/// Result of fitting one layer's damage parameters.
struct DamageFit {
  LayerDamage damage;
  double rms_error = 0.0;   // RMS of predicted-vs-observed multiplier
  int samples_used = 0;     // points with informative accuracy drop
  bool ok = false;          // enough informative samples to fit
};

/// Fit (sensitivity, exponent) from a single-layer sweep. `curve` must be a
/// ratio-ascending sweep starting at ratio 0 (its top5 defines the base).
/// Samples whose multiplier is within `min_drop` of 1 carry no damage
/// signal and are skipped; at least two informative samples are required.
DamageFit FitLayerDamage(std::span<const CurvePoint> curve,
                         double knee_exponent = 2.0, double min_drop = 0.02);

/// Result of fitting one layer's time behaviour.
struct TimeFit {
  double share_times_prunable = 0.0;  // slope of 1 - t(r)/t(0)
  double prunable_fraction = 0.0;     // slope / time_share
  double rms_error = 0.0;
  bool ok = false;
};

/// Fit share·pf from a single-layer time sweep; `time_share` (from the
/// layer-time distribution) converts the slope into a prunable fraction.
TimeFit FitPrunableFraction(std::span<const CurvePoint> curve,
                            double time_share);

/// Fit a complete accuracy model from per-layer sweeps. Layers whose fit
/// fails (accuracy never moved) fall back to `fallback` damage.
/// `measured_family` is the pruner the curves were measured with: the
/// returned model applies CalibratedAccuracyModel's per-family discount at
/// evaluation time, so fitted sensitivities are normalized to make plans of
/// the same family reproduce the measurements.
CalibratedAccuracyModel FitAccuracyModel(
    const std::map<std::string, std::vector<CurvePoint>>& layer_curves,
    double base_top1, double base_top5,
    pruning::PrunerFamily measured_family = pruning::PrunerFamily::kL1Filter,
    LayerDamage fallback = LayerDamage{2.0, 5.0}, double knee_exponent = 2.0);

/// Parse a measured sweep from CSV with header
/// "ratio,seconds,top1,top5" — the on-disk form of the calibration loop's
/// input. Validates hard (calibrating on garbage silently poisons every
/// downstream model): ratios strictly ascending in [0, 1), seconds >= 0,
/// accuracies in [0, 1]. Malformed input throws CheckError.
std::vector<CurvePoint> ParseCurveCsv(std::istream& in);
std::vector<CurvePoint> ParseCurveCsv(const std::string& text);

}  // namespace ccperf::core
