#include "core/metrics.h"

#include "common/check.h"

namespace ccperf::core {

namespace {
void CheckArgs(double value, double accuracy) {
  CCPERF_CHECK(value >= 0.0, "metric numerator must be non-negative");
  CCPERF_CHECK(accuracy > 0.0 && accuracy <= 1.0,
               "accuracy must be in (0, 1], got ", accuracy);
}
}  // namespace

double TimeAccuracyRatio(double seconds, double accuracy) {
  CheckArgs(seconds, accuracy);
  return seconds / accuracy;
}

double CostAccuracyRatio(double cost_usd, double accuracy) {
  CheckArgs(cost_usd, accuracy);
  return cost_usd / accuracy;
}

}  // namespace ccperf::core
