#include "core/metrics.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::core {

namespace detail {
double CheckedRatio(double value, double accuracy) {
  CCPERF_CHECK(value >= 0.0, "metric numerator must be non-negative");
  CCPERF_CHECK(accuracy > 0.0 && accuracy <= 1.0,
               "accuracy must be in (0, 1], got ", accuracy);
  return value / accuracy;
}
}  // namespace detail

double CostAccuracyRatio(Usd cost, double accuracy) {
  return detail::CheckedRatio(cost.value(), accuracy);
}

Seconds ExpectedSecondsUnderInterruption(Seconds duration, RatePerHour rate) {
  const double seconds = duration.value();
  const double rate_per_hour = rate.value();
  CCPERF_CHECK(seconds >= 0.0, "seconds must be non-negative");
  CCPERF_CHECK(rate_per_hour >= 0.0, "interruption rate must be >= 0");
  if (rate_per_hour == 0.0 || seconds == 0.0) return duration;
  const double lambda = rate_per_hour / 3600.0;  // per second
  // (e^{λt} - 1)/λ; expm1 keeps small-λt numerically exact.
  return Seconds(std::expm1(lambda * seconds) / lambda);
}

Usd ExpectedCostUnderInterruption(Usd cost, Seconds duration,
                                  RatePerHour rate) {
  CCPERF_CHECK(cost >= Usd(0.0), "cost must be non-negative");
  if (duration == Seconds(0.0)) return cost;
  // Billed time scales with expected wall-clock time.
  return cost * (ExpectedSecondsUnderInterruption(duration, rate) / duration);
}

double ExpectedTimeAccuracyRatio(Seconds duration, double accuracy,
                                 RatePerHour rate) {
  return TimeAccuracyRatio(ExpectedSecondsUnderInterruption(duration, rate),
                           accuracy);
}

double ExpectedCostAccuracyRatio(Usd cost, Seconds duration, double accuracy,
                                 RatePerHour rate) {
  return CostAccuracyRatio(
      ExpectedCostUnderInterruption(cost, duration, rate), accuracy);
}

}  // namespace ccperf::core
