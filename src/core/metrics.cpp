#include "core/metrics.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::core {

namespace {
void CheckArgs(double value, double accuracy) {
  CCPERF_CHECK(value >= 0.0, "metric numerator must be non-negative");
  CCPERF_CHECK(accuracy > 0.0 && accuracy <= 1.0,
               "accuracy must be in (0, 1], got ", accuracy);
}
}  // namespace

double TimeAccuracyRatio(double seconds, double accuracy) {
  CheckArgs(seconds, accuracy);
  return seconds / accuracy;
}

double CostAccuracyRatio(double cost_usd, double accuracy) {
  CheckArgs(cost_usd, accuracy);
  return cost_usd / accuracy;
}

double ExpectedSecondsUnderInterruption(double seconds,
                                        double rate_per_hour) {
  CCPERF_CHECK(seconds >= 0.0, "seconds must be non-negative");
  CCPERF_CHECK(rate_per_hour >= 0.0, "interruption rate must be >= 0");
  if (rate_per_hour == 0.0 || seconds == 0.0) return seconds;
  const double lambda = rate_per_hour / 3600.0;  // per second
  // (e^{λt} - 1)/λ; expm1 keeps small-λt numerically exact.
  return std::expm1(lambda * seconds) / lambda;
}

double ExpectedCostUnderInterruption(double cost_usd, double seconds,
                                     double rate_per_hour) {
  CCPERF_CHECK(cost_usd >= 0.0, "cost must be non-negative");
  if (seconds == 0.0) return cost_usd;
  // Billed time scales with expected wall-clock time.
  return cost_usd *
         (ExpectedSecondsUnderInterruption(seconds, rate_per_hour) / seconds);
}

double ExpectedTimeAccuracyRatio(double seconds, double accuracy,
                                 double rate_per_hour) {
  return TimeAccuracyRatio(
      ExpectedSecondsUnderInterruption(seconds, rate_per_hour), accuracy);
}

double ExpectedCostAccuracyRatio(double cost_usd, double seconds,
                                 double accuracy, double rate_per_hour) {
  return CostAccuracyRatio(
      ExpectedCostUnderInterruption(cost_usd, seconds, rate_per_hour),
      accuracy);
}

}  // namespace ccperf::core
