#include "core/enumerate.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "cloud/density.h"
#include "cloud/pricing.h"
#include "common/check.h"
#include "common/threading.h"
#include "core/metrics.h"
#include "core/pareto_sweep.h"

namespace ccperf::core {

std::vector<VariantSpec> BuildVariantSpecs(
    const cloud::ModelProfile& profile, const CalibratedAccuracyModel& accuracy,
    const std::vector<pruning::PrunePlan>& plans, bool include_int8) {
  CCPERF_CHECK(!plans.empty(), "no prune plans to expand");
  std::vector<VariantSpec> specs;
  specs.reserve(plans.size() * (include_int8 ? 2 : 1));
  for (const auto& plan : plans) {
    const std::string label = plan.Label();
    const cloud::DensityMap densities = cloud::DensityFromPlan(profile, plan);
    {
      VariantSpec spec;
      spec.label = label;
      spec.perf = cloud::ComputeVariantPerf(profile, densities, label);
      const AccuracyResult acc = accuracy.Evaluate(plan);
      spec.top1 = acc.top1;
      spec.top5 = acc.top5;
      specs.push_back(std::move(spec));
    }
    if (include_int8) {
      VariantSpec spec;
      spec.label = label + "+int8";
      spec.perf = cloud::ComputeVariantPerf(profile, densities, spec.label,
                                            /*int8_enabled=*/true);
      const AccuracyResult acc = accuracy.EvaluateQuantized(plan);
      spec.top1 = acc.top1;
      spec.top5 = acc.top5;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

const char* PurchaseOptionName(PurchaseOption option) {
  return option == PurchaseOption::kOnDemand ? "on-demand" : "spot";
}

// --- MetricRegistry ----------------------------------------------------------

void MetricRegistry::Register(std::string name, std::string description,
                              double (*extract)(const ArchMetrics&),
                              bool lower_is_better) {
  CCPERF_CHECK(!name.empty(), "metric name must be non-empty");
  CCPERF_CHECK(extract != nullptr, "metric '", name, "' has no extractor");
  CCPERF_CHECK(!Contains(name), "metric '", name, "' registered twice");
  Metric metric;
  metric.name = std::move(name);
  metric.description = std::move(description);
  metric.extract = extract;
  metric.lower_is_better = lower_is_better;
  metrics_.push_back(std::move(metric));
}

bool MetricRegistry::Contains(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return true;
  }
  return false;
}

const Metric& MetricRegistry::Find(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return m;
  }
  std::string known;
  for (const auto& m : metrics_) {
    if (!known.empty()) known += ", ";
    known += m.name;
  }
  CCPERF_CHECK(false, "unknown metric '", name, "' (registered: ", known, ")");
  // CCPERF_CHECK throws; unreachable.
  return metrics_.front();
}

const MetricRegistry& MetricRegistry::Standard() {
  static const MetricRegistry* const kRegistry = [] {
    auto* r = new MetricRegistry;
    r->Register(
        "time_h", "expected completion time (hours)",
        [](const ArchMetrics& m) { return ToHours(m.seconds).value(); }, true);
    r->Register(
        "cost_usd", "expected run cost (USD)",
        [](const ArchMetrics& m) { return m.cost_usd.value(); }, true);
    r->Register(
        "top1", "effective Top-1 accuracy",
        [](const ArchMetrics& m) { return m.top1; }, false);
    r->Register(
        "top5", "effective Top-5 accuracy",
        [](const ArchMetrics& m) { return m.top5; }, false);
    r->Register(
        "goodput", "base seconds / expected seconds",
        [](const ArchMetrics& m) { return m.goodput; }, false);
    r->Register(
        "interruption_risk", "P(at least one preemption during the run)",
        [](const ArchMetrics& m) { return m.interruption_risk; }, true);
    r->Register(
        "tar", "Time Accuracy Ratio (s per unit Top-5)",
        [](const ArchMetrics& m) {
          return TimeAccuracyRatio(m.seconds, m.top5);
        },
        true);
    r->Register(
        "car", "Cost Accuracy Ratio (USD per unit Top-5)",
        [](const ArchMetrics& m) {
          return CostAccuracyRatio(m.cost_usd, m.top5);
        },
        true);
    r->Register(
        "delivered_top1", "Top-1 after undetected silent corruption",
        [](const ArchMetrics& m) { return m.delivered_top1; }, false);
    r->Register(
        "sdc_escape_rate", "fraction of work delivered corrupted",
        [](const ArchMetrics& m) { return m.sdc_escape_rate; }, true);
    r->Register(
        "detection_overhead", "fractional time billed to SDC detection",
        [](const ArchMetrics& m) { return m.detection_overhead; }, true);
    return r;
  }();
  return *kRegistry;
}

// --- ArchitectureSpace -------------------------------------------------------

void ArchitectureSpace::AddVariant(VariantSpec variant) {
  variants_.push_back(std::move(variant));
}

void ArchitectureSpace::AddVariants(std::vector<VariantSpec> variants) {
  for (auto& v : variants) variants_.push_back(std::move(v));
}

void ArchitectureSpace::AddInstanceType(std::string name) {
  type_names_.push_back(std::move(name));
}

void ArchitectureSpace::SetCounts(std::vector<int> counts) {
  counts_ = std::move(counts);
}

void ArchitectureSpace::SetBatches(std::vector<std::int64_t> batches) {
  batches_ = std::move(batches);
}

void ArchitectureSpace::SetPurchaseOptions(
    std::vector<PurchaseOption> options) {
  purchase_ = std::move(options);
}

void ArchitectureSpace::AddCheckpointOption(CheckpointOption option) {
  checkpoints_.push_back(std::move(option));
}

void ArchitectureSpace::AddDegradationOption(DegradationOption option) {
  degradations_.push_back(std::move(option));
}

void ArchitectureSpace::AddSdcOption(SdcOption option) {
  sdc_.push_back(std::move(option));
}

const std::vector<SdcOption>& ArchitectureSpace::SdcOptions() const {
  if (!sdc_.empty()) return sdc_;
  // Implicit single-entry axis: SDC not modeled. A radix of 1 leaves every
  // flat id exactly as it was before this axis existed.
  static const std::vector<SdcOption>* const kOff = [] {
    auto* v = new std::vector<SdcOption>(1);
    (*v)[0].name = "off";
    return v;
  }();
  return *kOff;
}

void ArchitectureSpace::Validate() const {
  CCPERF_CHECK(!variants_.empty(), "variant axis is empty");
  CCPERF_CHECK(!type_names_.empty(), "instance-type axis is empty");
  CCPERF_CHECK(!counts_.empty(), "count axis is empty");
  CCPERF_CHECK(!batches_.empty(), "batch axis is empty");
  CCPERF_CHECK(!purchase_.empty(), "purchase axis is empty");
  CCPERF_CHECK(!checkpoints_.empty(), "checkpoint axis is empty");
  CCPERF_CHECK(!degradations_.empty(), "degradation axis is empty");
  for (const auto& v : variants_) {
    CCPERF_CHECK(v.perf.ref_seconds_per_image > Seconds(0.0), "variant '",
                 v.label, "' has non-positive reference time");
    CCPERF_CHECK(v.top1 > 0.0 && v.top1 <= 1.0 && v.top5 > 0.0 &&
                     v.top5 <= 1.0,
                 "variant '", v.label, "' accuracy outside (0, 1]");
  }
  for (int c : counts_) CCPERF_CHECK(c >= 1, "instance count must be >= 1");
  for (std::int64_t b : batches_)
    CCPERF_CHECK(b >= 0, "batch must be >= 0 (0 = auto)");
  for (const auto& ckpt : checkpoints_) {
    CCPERF_CHECK(!ckpt.name.empty(), "checkpoint option needs a name");
    if (ckpt.enabled) cloud::ValidateCheckpointPolicy(ckpt.policy);
  }
  for (const auto& degr : degradations_) {
    CCPERF_CHECK(!degr.name.empty(), "degradation option needs a name");
    CCPERF_CHECK(degr.recompute_speedup >= 1.0,
                 "degradation '", degr.name, "' recompute speedup < 1");
    CCPERF_CHECK(degr.accuracy_factor > 0.0 && degr.accuracy_factor <= 1.0,
                 "degradation '", degr.name,
                 "' accuracy factor outside (0, 1]");
  }
  for (const auto& sdc : sdc_) {
    CCPERF_CHECK(!sdc.name.empty(), "SDC option needs a name");
    sdc.policy.Validate();
  }
}

std::uint64_t ArchitectureSpace::Size() const {
  Validate();
  std::uint64_t size = 1;
  const std::size_t axes[] = {variants_.size(),  type_names_.size(),
                              counts_.size(),    batches_.size(),
                              purchase_.size(),  checkpoints_.size(),
                              degradations_.size(), SdcOptions().size()};
  for (std::size_t axis : axes) {
    const auto n = static_cast<std::uint64_t>(axis);
    CCPERF_CHECK(size <= UINT64_MAX / n, "architecture space overflows 64 bits");
    size *= n;
  }
  return size;
}

std::uint64_t ArchitectureSpace::Encode(const AxisPoint& point) const {
  CCPERF_CHECK(point.variant < variants_.size() &&
                   point.type < type_names_.size() &&
                   point.count < counts_.size() &&
                   point.batch < batches_.size() &&
                   point.purchase < purchase_.size() &&
                   point.checkpoint < checkpoints_.size() &&
                   point.degradation < degradations_.size() &&
                   point.sdc < SdcOptions().size(),
               "axis index out of range");
  std::uint64_t id = point.variant;
  id = id * type_names_.size() + point.type;
  id = id * counts_.size() + point.count;
  id = id * batches_.size() + point.batch;
  id = id * purchase_.size() + point.purchase;
  id = id * checkpoints_.size() + point.checkpoint;
  id = id * degradations_.size() + point.degradation;
  id = id * SdcOptions().size() + point.sdc;
  return id;
}

AxisPoint ArchitectureSpace::Decode(std::uint64_t id) const {
  CCPERF_CHECK(id < Size(), "flat id ", id, " out of range");
  AxisPoint point;
  point.sdc = static_cast<std::size_t>(id % SdcOptions().size());
  id /= SdcOptions().size();
  point.degradation = static_cast<std::size_t>(id % degradations_.size());
  id /= degradations_.size();
  point.checkpoint = static_cast<std::size_t>(id % checkpoints_.size());
  id /= checkpoints_.size();
  point.purchase = static_cast<std::size_t>(id % purchase_.size());
  id /= purchase_.size();
  point.batch = static_cast<std::size_t>(id % batches_.size());
  id /= batches_.size();
  point.count = static_cast<std::size_t>(id % counts_.size());
  id /= counts_.size();
  point.type = static_cast<std::size_t>(id % type_names_.size());
  id /= type_names_.size();
  point.variant = static_cast<std::size_t>(id);
  return point;
}

std::string ArchitectureSpace::Describe(std::uint64_t id) const {
  const AxisPoint p = Decode(id);
  std::ostringstream out;
  out << variants_[p.variant].label << " | " << counts_[p.count] << "x"
      << type_names_[p.type] << " | batch=";
  if (batches_[p.batch] == 0) {
    out << "auto";
  } else {
    out << batches_[p.batch];
  }
  out << " | " << PurchaseOptionName(purchase_[p.purchase])
      << " | ckpt=" << checkpoints_[p.checkpoint].name
      << " | degr=" << degradations_[p.degradation].name;
  // Only an explicit SDC axis shows up, so pre-axis descriptions round-trip.
  if (!sdc_.empty()) out << " | sdc=" << sdc_[p.sdc].name;
  return out.str();
}

// --- ArchitectureEvaluator ---------------------------------------------------

ArchitectureEvaluator::ArchitectureEvaluator(const cloud::CloudSimulator& sim,
                                             const ArchitectureSpace& space,
                                             RatePerHour preemption_rate,
                                             Seconds restart)
    : sim_(sim),
      space_(space),
      preemption_rate_per_hour_(preemption_rate.value()),
      restart_s_(restart.value()) {
  space_.Validate();
  CCPERF_CHECK(preemption_rate_per_hour_ >= 0.0,
               "preemption rate must be >= 0");
  CCPERF_CHECK(restart_s_ >= 0.0, "restart time must be >= 0");
  types_.reserve(space_.TypeNames().size());
  for (const auto& name : space_.TypeNames()) {
    types_.push_back(&sim_.Catalog().Find(name));
  }
}

bool ArchitectureEvaluator::Evaluate(std::uint64_t id, std::int64_t images,
                                     ArchMetrics& out) const {
  CCPERF_CHECK(images >= 1, "need at least one image");
  const AxisPoint p = space_.Decode(id);
  const VariantSpec& variant = space_.Variants()[p.variant];
  const cloud::InstanceType& type = *types_[p.type];
  const int count = space_.Counts()[p.count];
  const std::int64_t batch = space_.Batches()[p.batch];
  const PurchaseOption purchase = space_.PurchaseOptions()[p.purchase];
  const CheckpointOption& ckpt = space_.CheckpointOptions()[p.checkpoint];
  const DegradationOption& degr = space_.DegradationOptions()[p.degradation];
  const SdcOption& sdc = space_.SdcOptions()[p.sdc];

  if (purchase == PurchaseOption::kSpot &&
      type.spot_price_per_hour <= UsdPerHour(0.0)) {
    return false;  // no spot market for this type
  }

  // Eqs. 2/4 for a homogeneous fleet: equal split with the remainder going
  // to the first instances, T = the largest share's time (matches
  // CloudSimulator::Run for a single-type config, proven in tests).
  const auto fleet = static_cast<std::int64_t>(count);
  const std::int64_t base_share = images / fleet;
  const std::int64_t max_share = base_share + (images % fleet > 0 ? 1 : 0);
  const Seconds base_time =
      sim_.InstanceSeconds(type, variant.perf, max_share, batch);
  const double base_seconds = base_time.value();

  ArchMetrics m;
  m.top1 = variant.top1;
  m.top5 = variant.top5;

  if (purchase == PurchaseOption::kOnDemand) {
    m.seconds = base_time;
    m.cost_usd = cloud::ProratedCost(base_time,
                                     type.price_per_hour * count);
    m.goodput = 1.0;
    m.interruption_risk = 0.0;
    return FinishWithSdc(m, sdc, type, purchase, count, base_time, out);
  }

  // Spot: preemptions arrive Poisson at `rate` per instance-hour.
  const double fleet_rate = preemption_rate_per_hour_ * count;
  double productive_s = base_seconds;  // base + snapshot overhead
  double replay_s = 0.0;               // lost work replayed after preemptions
  double reprovision_s = 0.0;          // restart delay, not replayable work
  if (!ckpt.enabled) {
    // No snapshots: every preemption restarts the run from zero — the
    // classic (e^{λt}-1)/λ expectation (core/metrics.h).
    const double expected =
        ExpectedSecondsUnderInterruption(base_time, RatePerHour(fleet_rate))
            .value();
    replay_s = expected - base_seconds;
  } else {
    // Mirrors EstimateSpotRun (cloud/checkpoint.cpp): adaptive resolves to
    // Young's interval for the per-instance MTBF; overhead is one snapshot
    // cost per interval; each preemption loses half an interval (nothing,
    // on the warning trigger) plus the reprovisioning delay.
    double interval = ckpt.policy.interval_s;
    if (ckpt.policy.trigger == cloud::CheckpointTrigger::kAdaptive &&
        preemption_rate_per_hour_ > 0.0 && ckpt.policy.snapshot_cost_s > 0.0) {
      interval = cloud::YoungInterval(ckpt.policy.snapshot_cost_s,
                                      3600.0 / preemption_rate_per_hour_);
    }
    interval = std::clamp(interval, std::max(ckpt.policy.snapshot_cost_s, 1e-3),
                          std::max(base_seconds, 1e-3));
    productive_s += std::floor(base_seconds / interval) *
                    ckpt.policy.snapshot_cost_s;
    const double expected_preemptions =
        fleet_rate * (productive_s / 3600.0);
    const double window =
        ckpt.policy.trigger == cloud::CheckpointTrigger::kOnPreemptionWarning
            ? 0.0
            : interval / 2.0;
    replay_s = expected_preemptions * window;
    reprovision_s = expected_preemptions * restart_s_;
  }

  // The degradation policy replays lost windows faster at lower accuracy;
  // only the replayed fraction of the run is degraded.
  replay_s /= degr.recompute_speedup;
  const double expected_s = productive_s + replay_s + reprovision_s;
  const double degraded_fraction = expected_s > 0.0 ? replay_s / expected_s : 0.0;
  const double accuracy_scale =
      1.0 - degraded_fraction * (1.0 - degr.accuracy_factor);

  m.seconds = Seconds(expected_s);
  m.cost_usd = cloud::ProratedCost(Seconds(expected_s),
                                   type.spot_price_per_hour * count);
  m.top1 = variant.top1 * accuracy_scale;
  m.top5 = variant.top5 * accuracy_scale;
  m.goodput = expected_s > 0.0 ? base_seconds / expected_s : 1.0;
  m.interruption_risk = 1.0 - std::exp(-fleet_rate * expected_s / 3600.0);
  return FinishWithSdc(m, sdc, type, purchase, count, base_time, out);
}

bool ArchitectureEvaluator::FinishWithSdc(ArchMetrics& m, const SdcOption& sdc,
                                          const cloud::InstanceType& type,
                                          PurchaseOption purchase, int count,
                                          Seconds base_seconds,
                                          ArchMetrics& out) const {
  if (sdc.policy.kind == cloud::SdcPolicyKind::kOff) {
    // SDC not modeled: delivered == effective, nothing else touched, so the
    // row is bitwise identical to the pre-SDC evaluator.
    m.delivered_top1 = m.top1;
    m.delivered_top5 = m.top5;
    out = m;
    return true;
  }
  const cloud::SdcAssessment assess =
      cloud::AssessSdc(sdc.policy, type.sdc_rate_per_hour, m.seconds);
  // Detection machinery and redone work stretch the run, which re-bills
  // through the purchase option's hourly rate (the paper's Eq. 3-4 cost).
  m.seconds *= 1.0 + assess.time_overhead;
  const UsdPerHour hourly = (purchase == PurchaseOption::kOnDemand
                                 ? type.price_per_hour
                                 : type.spot_price_per_hour) *
                            count;
  m.cost_usd = cloud::ProratedCost(m.seconds, hourly);
  m.goodput = m.seconds > Seconds(0.0) ? base_seconds / m.seconds : 1.0;
  m.delivered_top1 = cloud::DeliveredAccuracy(m.top1, assess.escape_fraction,
                                              cloud::kCorruptTop1Factor);
  m.delivered_top5 = cloud::DeliveredAccuracy(m.top5, assess.escape_fraction,
                                              cloud::kCorruptTop5Factor);
  m.sdc_escape_rate = assess.escape_fraction;
  m.detection_overhead = assess.time_overhead;
  out = m;
  return true;
}

// --- EnumerateFrontier -------------------------------------------------------

namespace {

/// Compact the candidate rows (frontier prefix ∪ fresh block, ascending flat
/// id) down to their 3-D frontier in place.
void CompactCandidates(std::vector<std::uint64_t>& ids,
                       std::vector<ArchMetrics>& rows, bool use_top5,
                       bool use_delivered) {
  const std::size_t n = ids.size();
  std::vector<double> time(n);
  std::vector<double> cost(n);
  std::vector<double> accuracy(n);
  for (std::size_t i = 0; i < n; ++i) {
    time[i] = rows[i].seconds.value();
    cost[i] = rows[i].cost_usd.value();
    accuracy[i] = use_delivered
                      ? (use_top5 ? rows[i].delivered_top5
                                  : rows[i].delivered_top1)
                      : (use_top5 ? rows[i].top5 : rows[i].top1);
  }
  const std::vector<std::size_t> keep =
      SweepParetoFrontier3(time, cost, accuracy);
  for (std::size_t k = 0; k < keep.size(); ++k) {
    ids[k] = ids[keep[k]];
    rows[k] = rows[keep[k]];
  }
  ids.resize(keep.size());
  rows.resize(keep.size());
}

}  // namespace

EnumerationResult EnumerateFrontier(const ArchitectureEvaluator& evaluator,
                                    const EnumerationOptions& options) {
  CCPERF_CHECK(options.block >= 1, "block must be >= 1");
  CCPERF_CHECK(options.images >= 1, "need at least one image");
  const ArchitectureSpace& space = evaluator.Space();
  const std::uint64_t total = space.Size();

  EnumerationResult result;
  std::vector<std::uint64_t> ids;   // frontier prefix + fresh feasible rows
  std::vector<ArchMetrics> rows;    // parallel to `ids`
  std::vector<ArchMetrics> slot(options.block);
  std::vector<char> keep(options.block);

  for (std::uint64_t begin = 0; begin < total; begin += options.block) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.block, total - begin));
    const auto evaluate = [&](std::size_t i) {
      ArchMetrics m;
      const bool ok =
          evaluator.Evaluate(begin + i, options.images, m) &&
          m.seconds <= options.deadline_s && m.cost_usd <= options.budget_usd;
      keep[i] = ok ? 1 : 0;
      if (ok) slot[i] = m;  // slot-per-task: no cross-task writes
    };
    if (options.serial) {
      ScopedSerial serial;
      ParallelFor(0, n, evaluate);
    } else {
      ParallelFor(0, n, evaluate);
    }
    result.evaluated += n;

    const std::size_t frontier_rows = ids.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!keep[i]) continue;
      ids.push_back(begin + i);
      rows.push_back(slot[i]);
      ++result.feasible;
    }
    result.peak_candidates = std::max(result.peak_candidates, ids.size());
    if (ids.size() > frontier_rows) {
      CompactCandidates(ids, rows, options.use_top5, options.use_delivered);
    }
  }

  result.frontier.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    result.frontier.push_back(FrontierPoint{ids[i], rows[i]});
  }
  return result;
}

}  // namespace ccperf::core
