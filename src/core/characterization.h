// Characterization: the model-driven sweeps behind the paper's Figures 3-8.
//
// Combines the calibrated device model (cloud::) with an accuracy model
// (core::) to produce per-layer time distributions, prune-ratio sweeps,
// batch-saturation curves and multi-layer pruning comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/sweet_spot.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {

/// Model-driven characterization of one CNN application on one catalog.
class Characterization {
 public:
  /// All references must outlive this object.
  Characterization(const cloud::CloudSimulator& simulator,
                   const cloud::ModelProfile& profile,
                   const AccuracyModel& accuracy);

  /// Fig. 3: fraction of inference time per weighted layer plus "other".
  [[nodiscard]] std::vector<std::pair<std::string, double>> TimeDistribution()
      const;

  /// Fig. 4: single-inference (batch-1) seconds on `instance` with all
  /// weighted layers pruned uniformly by `ratio`.
  [[nodiscard]] double SingleInferenceSeconds(
      const std::string& instance, double ratio,
      pruning::PrunerFamily family = pruning::PrunerFamily::kL1Filter) const;

  /// Fig. 5: (batch size, total seconds) for `images` images on `instance`.
  [[nodiscard]] std::vector<std::pair<std::int64_t, double>> BatchSweep(
      const std::string& instance, const std::vector<std::int64_t>& batches,
      std::int64_t images) const;

  /// Figs. 6/7: sweep one layer's prune ratio; the returned curve carries
  /// total inference seconds for `images` images plus Top-1/Top-5 accuracy.
  [[nodiscard]] std::vector<CurvePoint> SingleLayerSweep(
      const std::string& instance, const std::string& layer,
      const std::vector<double>& ratios, std::int64_t images,
      pruning::PrunerFamily family = pruning::PrunerFamily::kL1Filter) const;

  /// Fig. 8 / Fig. 11: time + accuracy of one arbitrary plan.
  [[nodiscard]] CurvePoint EvaluatePlan(const std::string& instance,
                                        const pruning::PrunePlan& plan,
                                        std::int64_t images) const;

  [[nodiscard]] const cloud::ModelProfile& Profile() const { return profile_; }
  [[nodiscard]] const AccuracyModel& Accuracy() const { return accuracy_; }
  [[nodiscard]] const cloud::CloudSimulator& Simulator() const {
    return simulator_;
  }

 private:
  const cloud::CloudSimulator& simulator_;
  const cloud::ModelProfile& profile_;
  const AccuracyModel& accuracy_;
};

}  // namespace ccperf::core
