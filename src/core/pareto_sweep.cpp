#include "core/pareto_sweep.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace ccperf::core {

namespace {

void CheckNoNaN(std::span<const double> values, const char* axis) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    CCPERF_CHECK(!std::isnan(values[i]), "NaN ", axis, " objective at index ",
                 static_cast<unsigned long long>(i),
                 " — a NaN would silently win the frontier");
  }
}

}  // namespace

bool ParetoStaircase2::Insert(double objective, double accuracy,
                              std::uint64_t id) {
  CCPERF_CHECK(!std::isnan(objective) && !std::isnan(accuracy),
               "NaN objective offered to ParetoStaircase2");
  if (Covers(objective, accuracy)) return false;

  // Evict entries the new point covers: objective >= and accuracy <=. They
  // form a contiguous run starting at the first entry with objective >=
  // `objective` (entries before it are strictly cheaper; they survived
  // Covers, so their accuracy is strictly below — wait, no: cheaper entries
  // with accuracy <= ours are NOT covered by us since their objective is
  // strictly smaller). Within the suffix objective >= ours, accuracy is
  // ascending, so the covered entries (accuracy <= ours) are a prefix of
  // that suffix.
  const auto first = std::lower_bound(
      entries_.begin(), entries_.end(), objective,
      [](const Entry& e, double obj) { return e.objective < obj; });
  auto last = first;
  while (last != entries_.end() && last->accuracy <= accuracy) ++last;
  const auto pos = entries_.erase(first, last);
  entries_.insert(pos, Entry{objective, accuracy, id});
  return true;
}

bool ParetoStaircase2::Covers(double objective, double accuracy) const {
  return BestAccuracyAt(objective) >= accuracy;
}

double ParetoStaircase2::BestAccuracyAt(double objective) const {
  // Last entry with entry.objective <= objective; accuracy ascends with
  // objective, so that entry holds the best accuracy in range.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), objective,
      [](double obj, const Entry& e) { return obj < e.objective; });
  if (it == entries_.begin()) return -std::numeric_limits<double>::infinity();
  return std::prev(it)->accuracy;
}

std::vector<std::size_t> SweepParetoFrontier(std::span<const double> objective,
                                             std::span<const double> accuracy) {
  CCPERF_CHECK(objective.size() == accuracy.size(),
               "objective/accuracy size mismatch");
  CheckNoNaN(objective, "objective");
  CheckNoNaN(accuracy, "accuracy");
  const std::size_t n = objective.size();
  if (n == 0) return {};

  // Accuracy descending, then objective ascending, then index ascending —
  // the oracle's order with the duplicate representative pinned to the
  // lowest input index.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (accuracy[a] != accuracy[b]) return accuracy[a] > accuracy[b];
    if (objective[a] != objective[b]) return objective[a] < objective[b];
    return a < b;
  });

  std::vector<std::size_t> frontier;
  double best_objective = std::numeric_limits<double>::infinity();
  double last_accuracy = std::numeric_limits<double>::infinity();
  bool first = true;
  for (std::size_t idx : order) {
    if (!first && accuracy[idx] == last_accuracy) continue;
    if (objective[idx] < best_objective) {
      frontier.push_back(idx);
      best_objective = objective[idx];
      last_accuracy = accuracy[idx];
      first = false;
    }
  }
  return frontier;
}

std::vector<std::size_t> SweepParetoFrontier3(
    std::span<const double> time, std::span<const double> cost,
    std::span<const double> accuracy) {
  CCPERF_CHECK(time.size() == cost.size() && cost.size() == accuracy.size(),
               "objective size mismatch");
  CheckNoNaN(time, "time");
  CheckNoNaN(cost, "cost");
  CheckNoNaN(accuracy, "accuracy");
  const std::size_t n = time.size();
  if (n == 0) return {};

  // Sort by (time asc, cost asc, accuracy desc, index asc). In this order a
  // later point can never dominate an earlier one: domination requires
  // time <=, cost <= and accuracy >=, which against the sort order forces
  // equality in all three — an exact duplicate, which keeps the earlier
  // (lower-index) occurrence.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (time[a] != time[b]) return time[a] < time[b];
    if (cost[a] != cost[b]) return cost[a] < cost[b];
    if (accuracy[a] != accuracy[b]) return accuracy[a] > accuracy[b];
    return a < b;
  });

  // Sweep: every already-processed point has time <= (in sort order), so
  // point i is dominated iff some processed point also has cost <= and
  // accuracy >= — exactly a staircase coverage query over (cost, accuracy).
  // Equality in both staircase coordinates implies domination too: the
  // covering point was processed earlier, so it has strictly smaller time
  // or is an exact duplicate (then keep-first applies). Dropped points
  // never need to enter the staircase — whatever covered them covers
  // everything they would cover.
  ParetoStaircase2 staircase;
  std::vector<std::size_t> frontier;
  for (std::size_t idx : order) {
    if (staircase.Insert(cost[idx], accuracy[idx],
                         static_cast<std::uint64_t>(idx))) {
      frontier.push_back(idx);
    }
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

}  // namespace ccperf::core
