// The paper's two accuracy-performance metrics (§3.5):
//   TAR = t / a  — time to achieve one unit of accuracy
//   CAR = c / a  — cost to achieve one unit of accuracy
// Lower is better for both.
//
// Expected-value extensions: on interruptible (spot) capacity a run of t
// seconds restarts from scratch whenever a Poisson interruption (rate λ per
// hour) hits it, so the classic no-checkpoint restart result applies:
//   E[T] = (e^{λt} - 1) / λ
// Feeding E[T]-inflated time/cost into TAR/CAR (and the Pareto filter)
// prices interruption risk into the paper's frontier the way Scavenger-style
// allocators price spot risk into provisioning.
#pragma once

namespace ccperf::core {

/// Time Accuracy Ratio. `seconds` >= 0, `accuracy` in (0, 1].
double TimeAccuracyRatio(double seconds, double accuracy);

/// Cost Accuracy Ratio. `cost_usd` >= 0, `accuracy` in (0, 1].
double CostAccuracyRatio(double cost_usd, double accuracy);

/// Expected wall-clock seconds to finish `seconds` of uninterrupted work
/// when interruptions arrive at `rate_per_hour` (Poisson) and every
/// interruption restarts the run: (e^{λt} - 1)/λ, continuous at rate 0.
double ExpectedSecondsUnderInterruption(double seconds, double rate_per_hour);

/// Expected cost of that run: the same inflation applied to billed time,
/// `cost_usd` being the interruption-free cost of the run.
double ExpectedCostUnderInterruption(double cost_usd, double seconds,
                                     double rate_per_hour);

/// TAR on interruption-inflated expected time.
double ExpectedTimeAccuracyRatio(double seconds, double accuracy,
                                 double rate_per_hour);

/// CAR on interruption-inflated expected cost.
double ExpectedCostAccuracyRatio(double cost_usd, double seconds,
                                 double accuracy, double rate_per_hour);

}  // namespace ccperf::core
