// The paper's two accuracy-performance metrics (§3.5):
//   TAR = t / a  — time to achieve one unit of accuracy
//   CAR = c / a  — cost to achieve one unit of accuracy
// Lower is better for both.
#pragma once

namespace ccperf::core {

/// Time Accuracy Ratio. `seconds` >= 0, `accuracy` in (0, 1].
double TimeAccuracyRatio(double seconds, double accuracy);

/// Cost Accuracy Ratio. `cost_usd` >= 0, `accuracy` in (0, 1].
double CostAccuracyRatio(double cost_usd, double accuracy);

}  // namespace ccperf::core
