// The paper's two accuracy-performance metrics (§3.5):
//   TAR = t / a  — time to achieve one unit of accuracy
//   CAR = c / a  — cost to achieve one unit of accuracy
// Lower is better for both.
//
// Expected-value extensions: on interruptible (spot) capacity a run of t
// seconds restarts from scratch whenever a Poisson interruption (rate λ per
// hour) hits it, so the classic no-checkpoint restart result applies:
//   E[T] = (e^{λt} - 1) / λ
// Feeding E[T]-inflated time/cost into TAR/CAR (and the Pareto filter)
// prices interruption risk into the paper's frontier the way Scavenger-style
// allocators price spot risk into provisioning.
#pragma once

#include "common/units.h"

namespace ccperf::core {

namespace detail {
/// numerator/accuracy with the shared range checks; throws CheckError on
/// negative numerator or accuracy outside (0, 1].
double CheckedRatio(double value, double accuracy);
}  // namespace detail

/// Time Accuracy Ratio in the caller's display unit: the paper reports TAR
/// in whatever unit the figure uses (minutes in Fig. 11, hours in the
/// explorer), so any time quantity is accepted and the ratio keeps its
/// scale. `accuracy` in (0, 1].
template <typename Scale>
double TimeAccuracyRatio(units::Quantity<units::TimeDim, Scale> time,
                         double accuracy) {
  return detail::CheckedRatio(time.value(), accuracy);
}

/// Cost Accuracy Ratio. `cost` >= 0, `accuracy` in (0, 1].
double CostAccuracyRatio(Usd cost, double accuracy);

/// Expected wall-clock time to finish `duration` of uninterrupted work
/// when interruptions arrive at `rate` (Poisson) and every interruption
/// restarts the run: (e^{λt} - 1)/λ, continuous at rate 0.
Seconds ExpectedSecondsUnderInterruption(Seconds duration, RatePerHour rate);

/// Expected cost of that run: the same inflation applied to billed time,
/// `cost` being the interruption-free cost of the run.
Usd ExpectedCostUnderInterruption(Usd cost, Seconds duration, RatePerHour rate);

/// TAR on interruption-inflated expected time (in seconds).
double ExpectedTimeAccuracyRatio(Seconds duration, double accuracy,
                                 RatePerHour rate);

/// CAR on interruption-inflated expected cost.
double ExpectedCostAccuracyRatio(Usd cost, Seconds duration, double accuracy,
                                 RatePerHour rate);

}  // namespace ccperf::core
