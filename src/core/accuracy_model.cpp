#include "core/accuracy_model.h"

#include <cmath>

#include "common/check.h"

namespace ccperf::core {

CalibratedAccuracyModel::CalibratedAccuracyModel(
    double base_top1, double base_top5, LayerDamage default_damage,
    std::map<std::string, LayerDamage> overrides, double knee_exponent,
    double top1_steepness)
    : base_top1_(base_top1),
      base_top5_(base_top5),
      default_damage_(default_damage),
      overrides_(std::move(overrides)),
      knee_exponent_(knee_exponent),
      top1_steepness_(top1_steepness) {
  CCPERF_CHECK(base_top1_ > 0.0 && base_top1_ <= 1.0, "base top1 out of range");
  CCPERF_CHECK(base_top5_ >= base_top1_ && base_top5_ <= 1.0,
               "base top5 must be in [top1, 1]");
  CCPERF_CHECK(knee_exponent_ > 0.0 && top1_steepness_ >= 1.0,
               "invalid response parameters");
}

CalibratedAccuracyModel CalibratedAccuracyModel::CaffeNet() {
  // Fit targets (paper Figs. 6, 8; Top-5, base 80 %):
  //   conv1@30 or conv2@50 alone: "almost unchanged" (~0.96 of base)
  //   conv1@90: collapse to ~0            conv2@90: ~25 % (0.31 of base)
  //   conv1@30 + conv2@50: 70 % (0.875)   all-conv sweet spots: 62 % (0.775)
  std::map<std::string, LayerDamage> overrides;
  overrides["conv1"] = {13.8, 3.5};  // input layer: most accuracy-critical
  overrides["conv2"] = {1.63, 3.5};
  overrides["conv3"] = {2.00, 5.0};
  overrides["conv4"] = {2.00, 5.0};
  overrides["conv5"] = {2.00, 5.0};
  overrides["fc1"] = {0.80, 4.0};
  overrides["fc2"] = {0.80, 4.0};
  overrides["fc3"] = {3.00, 3.0};  // classifier head: pruning it is costly
  return CalibratedAccuracyModel(0.55, 0.80, LayerDamage{2.0, 5.0},
                                 std::move(overrides));
}

CalibratedAccuracyModel CalibratedAccuracyModel::GoogLeNet() {
  // Fig. 7: accuracy flat until ~60 % pruning for the first six layers, so
  // the default exponent is higher (sharper knee, later onset). The stem
  // conv1-7x7-s2 reads the raw image and is the most sensitive.
  std::map<std::string, LayerDamage> overrides;
  overrides["conv1-7x7-s2"] = {8.0, 6.0};
  overrides["conv2-3x3"] = {2.5, 6.0};
  overrides["loss3-classifier"] = {3.0, 3.0};
  return CalibratedAccuracyModel(0.68, 0.89, LayerDamage{1.2, 6.0},
                                 std::move(overrides));
}

double CalibratedAccuracyModel::DamageOf(
    const pruning::PrunePlan& plan) const {
  double damage = 0.0;
  for (const auto& [layer, ratio] : plan.layer_ratios) {
    CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "ratio out of range for ",
                 layer);
    if (ratio == 0.0) continue;
    const auto it = overrides_.find(layer);
    const LayerDamage& d =
        it == overrides_.end() ? default_damage_ : it->second;
    damage += d.sensitivity * std::pow(ratio, d.exponent);
  }
  // Unstructured magnitude pruning removes low-energy weights first and is
  // gentler than removing whole filters at the same ratio.
  if (plan.family == pruning::PrunerFamily::kMagnitude) damage *= 0.55;
  return damage;
}

AccuracyResult CalibratedAccuracyModel::Evaluate(
    const pruning::PrunePlan& plan) const {
  return EvaluateQuantized(plan, 0.0);
}

AccuracyResult CalibratedAccuracyModel::EvaluateQuantized(
    const pruning::PrunePlan& plan, double quant_damage) const {
  CCPERF_CHECK(quant_damage >= 0.0, "negative quantization damage");
  const double damage = DamageOf(plan) + quant_damage;
  const double multiplier = 1.0 / (1.0 + std::pow(damage, knee_exponent_));
  AccuracyResult result;
  result.top5 = base_top5_ * multiplier;
  result.top1 = base_top1_ * std::pow(multiplier, top1_steepness_);
  return result;
}

AccuracyResult CalibratedAccuracyModel::EvaluateCorrupted(
    const pruning::PrunePlan& plan, double quant_damage,
    double corruption_damage) const {
  CCPERF_CHECK(corruption_damage >= 0.0, "negative corruption damage");
  return EvaluateQuantized(plan, quant_damage + corruption_damage);
}

AccuracyResult CalibratedAccuracyModel::Baseline() const {
  return {base_top1_, base_top5_};
}

}  // namespace ccperf::core
