// Accuracy response models: how Top-1/Top-5 accuracy degrades with pruning.
//
// CalibratedAccuracyModel is a parametric damage model fitted to the paper's
// published curves (Figs. 6-8): each pruned layer contributes damage
// s_l * r^p_l, and total damage maps to an accuracy multiplier through a
// knee-shaped response 1 / (1 + D^k). The knee reproduces the paper's
// sweet-spots (small damage is free) and the super-additive accuracy drop
// when several individually-safe layers are pruned together (Obs. 3).
#pragma once

#include <map>
#include <string>

#include "pruning/prune_plan.h"

namespace ccperf::core {

/// Top-1 / Top-5 accuracy in [0, 1].
struct AccuracyResult {
  double top1 = 0.0;
  double top5 = 0.0;
};

/// Interface: accuracy of a degree of pruning.
class AccuracyModel {
 public:
  virtual ~AccuracyModel() = default;

  /// Accuracy of the variant obtained by applying `plan`.
  [[nodiscard]] virtual AccuracyResult Evaluate(
      const pruning::PrunePlan& plan) const = 0;

  /// Accuracy of the unpruned application.
  [[nodiscard]] virtual AccuracyResult Baseline() const = 0;
};

/// Damage parameters of one layer: damage(r) = sensitivity * r^exponent.
struct LayerDamage {
  double sensitivity = 2.0;
  double exponent = 5.0;
};

/// Parametric model with per-layer overrides and a default for layers
/// without one (needed for GoogLeNet's 57 convolutions).
class CalibratedAccuracyModel final : public AccuracyModel {
 public:
  CalibratedAccuracyModel(double base_top1, double base_top5,
                          LayerDamage default_damage,
                          std::map<std::string, LayerDamage> overrides,
                          double knee_exponent = 2.0,
                          double top1_steepness = 1.15);

  /// Fitted to the paper's CaffeNet measurements: base 55 % / 80 %;
  /// conv1 collapses accuracy by 90 % pruning, conv2-5 plateau to ~50 %.
  static CalibratedAccuracyModel CaffeNet();

  /// Fitted to GoogLeNet (Fig. 7): base 68 % / 89 %, sweet spots reach 60 %.
  static CalibratedAccuracyModel GoogLeNet();

  /// Damage added by per-channel int8 quantization of every weighted layer
  /// (the second accuracy knob, orthogonal to pruning). Calibrated against
  /// EmpiricalAccuracyEvaluator::EvaluateInt8 on the scaled CaffeNet: the
  /// measured teacher-student agreement of an int8 forward stays above
  /// 0.98, which maps through the knee 1/(1+D^2) to D ~= 0.12. Quantized
  /// damage is additive with pruning damage, reproducing the observed
  /// super-additive drop when both knobs are pushed together.
  static constexpr double kInt8QuantDamage = 0.12;

  /// Damage contributed by one UNDETECTED silent weight corruption (a
  /// sign/exponent/high-mantissa bit flip that escaped detection and stayed
  /// resident). Calibrated against
  /// EmpiricalAccuracyEvaluator::EvaluateCorrupted on the scaled CaffeNet:
  /// a single high-bit flip in a conv/fc weight typically drops measured
  /// agreement to ~0.75-0.80, which maps through the knee 1/(1+D^2) to
  /// D ~= 0.55. Additive with pruning and quantization damage — a corrupted
  /// aggressive variant degrades super-additively, same as Obs. 3.
  static constexpr double kSdcCorruptionDamage = 0.55;

  [[nodiscard]] AccuracyResult Evaluate(
      const pruning::PrunePlan& plan) const override;
  [[nodiscard]] AccuracyResult Baseline() const override;

  /// Accuracy of `plan` executed on the int8 path: pruning damage plus
  /// `quant_damage`, through the same knee response. Evaluate(plan) is
  /// exactly EvaluateQuantized(plan, 0.0).
  [[nodiscard]] AccuracyResult EvaluateQuantized(
      const pruning::PrunePlan& plan,
      double quant_damage = kInt8QuantDamage) const;

  /// Accuracy of `plan` while carrying an undetected silent corruption:
  /// pruning damage + optional quantization damage + `corruption_damage`,
  /// through the same knee response. The cloud SDC model uses the ratio
  /// EvaluateCorrupted(plan).top1 / Evaluate(plan).top1 as the delivered-
  /// accuracy factor of work tainted by an escaped corruption.
  [[nodiscard]] AccuracyResult EvaluateCorrupted(
      const pruning::PrunePlan& plan, double quant_damage = 0.0,
      double corruption_damage = kSdcCorruptionDamage) const;

  /// Total damage D of a plan (exposed for tests and calibration).
  [[nodiscard]] double DamageOf(const pruning::PrunePlan& plan) const;

 private:
  double base_top1_;
  double base_top5_;
  LayerDamage default_damage_;
  std::map<std::string, LayerDamage> overrides_;
  double knee_exponent_;
  double top1_steepness_;
};

}  // namespace ccperf::core
