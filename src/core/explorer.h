// Configuration-space exploration (paper Figs. 9 and 10): evaluate every
// (degree of pruning, resource configuration) pair against the analytical
// models, keep the feasible ones, and extract Pareto frontiers.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "cloud/resource_config.h"
#include "cloud/simulator.h"
#include "core/accuracy_model.h"
#include "core/pareto.h"
#include "pruning/prune_plan.h"

namespace ccperf::core {

/// One feasible (variant, configuration) point.
struct ExploredPoint {
  std::string variant_label;
  pruning::PrunePlan plan;
  cloud::ResourceConfig config;
  Seconds seconds;
  Usd cost_usd;
  double top1 = 0.0;
  double top5 = 0.0;
};

/// All feasible points of an exploration plus bookkeeping.
struct ExplorationResult {
  std::vector<ExploredPoint> feasible;
  std::size_t evaluated = 0;  // total (variant, config) pairs examined
};

/// Exhaustive model-driven sweep of variants x configurations.
class ConfigSpaceExplorer {
 public:
  ConfigSpaceExplorer(const cloud::CloudSimulator& simulator,
                      const cloud::ModelProfile& profile,
                      const AccuracyModel& accuracy);

  /// Evaluate every pair; keep those with T <= deadline and C <= budget
  /// (pass +inf to disable a constraint).
  [[nodiscard]] ExplorationResult Explore(
      const std::vector<pruning::PrunePlan>& variants,
      const std::vector<cloud::ResourceConfig>& configs, std::int64_t images,
      Seconds deadline_s = Seconds(std::numeric_limits<double>::infinity()),
      Usd budget_usd = Usd(std::numeric_limits<double>::infinity())) const;

 private:
  const cloud::CloudSimulator& simulator_;
  const cloud::ModelProfile& profile_;
  const AccuracyModel& accuracy_;
};

/// Pareto frontier (indices into `points`) minimizing time and maximizing
/// Top-5 (or Top-1) accuracy.
std::vector<std::size_t> TimeAccuracyFrontier(
    std::span<const ExploredPoint> points, bool use_top5);

/// Pareto frontier minimizing cost and maximizing accuracy.
std::vector<std::size_t> CostAccuracyFrontier(
    std::span<const ExploredPoint> points, bool use_top5);

}  // namespace ccperf::core
