// Quantization and weight sharing — the two alternative accuracy-tuning
// techniques the paper surveys (§2.1) next to pruning.
//
// * Quantization maps each weight to a k-bit uniform grid (symmetric,
//   per-layer scale). It shrinks the memory/storage footprint by 32/k and
//   perturbs accuracy; on hardware without low-precision units it does not
//   change execution time — exactly the paper's characterization.
// * Weight sharing clusters weights to c centroids (1-D k-means) so a layer
//   stores one index per weight plus a tiny codebook.
//
// Both operate in place on a layer's weights, like the pruners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.h"

namespace ccperf::pruning {

/// Uniform symmetric k-bit quantizer.
class Quantizer {
 public:
  /// `bits` in [2, 16]: the stored weight width.
  explicit Quantizer(int bits);

  [[nodiscard]] int Bits() const { return bits_; }

  /// Quantize a layer's weights in place (zero stays exactly zero, so
  /// quantization composes with pruning) and refresh cached state.
  void Apply(nn::Layer& layer) const;

  /// Quantize every weighted layer of a network.
  void ApplyToNetwork(nn::Network& net) const;

  /// Root-mean-square relative error this quantizer would introduce on the
  /// given weights (without mutating them) — the accuracy-damage proxy.
  [[nodiscard]] double RelativeRmsError(const Tensor& weights) const;

 private:
  int bits_;
};

/// 1-D k-means weight-sharing compressor.
class WeightSharer {
 public:
  /// `clusters` >= 2 centroids; `iterations` of Lloyd updates.
  explicit WeightSharer(int clusters, int iterations = 12);

  [[nodiscard]] int Clusters() const { return clusters_; }

  /// Replace each weight with its centroid, in place. Zero weights keep a
  /// dedicated zero centroid so sparsity is preserved.
  void Apply(nn::Layer& layer) const;

  /// Apply to every weighted layer.
  void ApplyToNetwork(nn::Network& net) const;

 private:
  int clusters_;
  int iterations_;
};

/// Memory footprint of a network's parameters under a storage scheme.
struct MemoryReport {
  double dense_fp32_bytes = 0.0;    // plain dense float storage
  double sparse_csr_bytes = 0.0;    // CSR: 4B value + 4B index per nnz + rows
  double quantized_bytes = 0.0;     // dense at `quant_bits` per weight
  double shared_bytes = 0.0;        // index per weight + codebook
  int quant_bits = 32;
  int shared_clusters = 0;
};

/// Compute the footprint a network's weights would occupy under each
/// storage scheme (`quant_bits` / `shared_clusters` parameterize the last
/// two columns).
MemoryReport AnalyzeMemory(const nn::Network& net, int quant_bits = 8,
                           int shared_clusters = 16);

}  // namespace ccperf::pruning
