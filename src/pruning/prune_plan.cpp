#include "pruning/prune_plan.h"

#include <cmath>

#include "common/check.h"
#include "pruning/filter_pruner.h"
#include "pruning/magnitude_pruner.h"

namespace ccperf::pruning {

const char* PrunerFamilyName(PrunerFamily family) {
  switch (family) {
    case PrunerFamily::kMagnitude: return "magnitude";
    case PrunerFamily::kL1Filter: return "l1-filter";
  }
  return "?";
}

double PrunePlan::RatioFor(const std::string& layer) const {
  const auto it = layer_ratios.find(layer);
  return it == layer_ratios.end() ? 0.0 : it->second;
}

bool PrunePlan::IsNoop() const {
  for (const auto& [_, r] : layer_ratios) {
    if (r > 0.0) return false;
  }
  return true;
}

std::string PrunePlan::Label() const {
  if (IsNoop()) return "nonpruned";
  std::string label;
  for (const auto& [layer, ratio] : layer_ratios) {
    if (ratio <= 0.0) continue;
    if (!label.empty()) label += "+";
    label += layer + "@" +
             std::to_string(static_cast<int>(std::llround(ratio * 100.0)));
  }
  return label;
}

double PrunePlan::MeanRatio() const {
  if (layer_ratios.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [_, r] : layer_ratios) sum += r;
  return sum / static_cast<double>(layer_ratios.size());
}

PrunePlan UniformPlan(const std::vector<std::string>& layers, double ratio,
                      PrunerFamily family) {
  PrunePlan plan;
  plan.family = family;
  for (const auto& layer : layers) plan.layer_ratios[layer] = ratio;
  return plan;
}

void ApplyPlanInPlace(nn::Network& net, const PrunePlan& plan) {
  const MagnitudePruner magnitude;
  const L1FilterPruner filter;
  const Pruner& pruner =
      plan.family == PrunerFamily::kMagnitude
          ? static_cast<const Pruner&>(magnitude)
          : static_cast<const Pruner&>(filter);
  for (const auto& [layer_name, ratio] : plan.layer_ratios) {
    CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "ratio for ", layer_name,
                 " out of [0,1)");
    if (ratio == 0.0) continue;
    nn::Layer* layer = net.FindLayer(layer_name);
    CCPERF_CHECK(layer != nullptr, "plan names unknown layer '", layer_name,
                 "' in network ", net.Name());
    pruner.Prune(*layer, ratio);
  }
}

nn::Network ApplyPlan(const nn::Network& base, const PrunePlan& plan) {
  nn::Network variant = base.Clone();
  ApplyPlanInPlace(variant, plan);
  return variant;
}

}  // namespace ccperf::pruning
