// PrunePlan: a named assignment of prune ratios to layers — the paper's
// "degree of pruning" p ∈ P. Applying a plan to a network yields one pruned
// application variant.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/network.h"

namespace ccperf::pruning {

/// Which pruning strategy a plan uses.
enum class PrunerFamily { kMagnitude, kL1Filter };

const char* PrunerFamilyName(PrunerFamily family);

/// Per-layer prune ratios. Layers not listed keep all weights.
struct PrunePlan {
  PrunerFamily family = PrunerFamily::kL1Filter;
  std::map<std::string, double> layer_ratios;

  /// Ratio for `layer`, 0 when unlisted.
  [[nodiscard]] double RatioFor(const std::string& layer) const;

  /// True when no layer is pruned.
  [[nodiscard]] bool IsNoop() const;

  /// Stable human-readable label, e.g. "conv1@30+conv2@50" or "nonpruned".
  [[nodiscard]] std::string Label() const;

  /// Mean prune ratio over the listed layers (0 for a no-op plan).
  [[nodiscard]] double MeanRatio() const;
};

/// Uniform plan pruning every named layer by the same ratio.
PrunePlan UniformPlan(const std::vector<std::string>& layers, double ratio,
                      PrunerFamily family = PrunerFamily::kL1Filter);

/// Apply `plan` to `net` in place (prunes the named layers).
/// Throws if a named layer is missing or weightless.
void ApplyPlanInPlace(nn::Network& net, const PrunePlan& plan);

/// Clone `base` and apply `plan` to the clone.
[[nodiscard]] nn::Network ApplyPlan(const nn::Network& base,
                                    const PrunePlan& plan);

}  // namespace ccperf::pruning
