#include "pruning/filter_pruner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace ccperf::pruning {

void L1FilterPruner::Prune(nn::Layer& layer, double ratio) const {
  CCPERF_CHECK(layer.HasWeights(), "cannot prune weightless layer '",
               layer.Name(), "'");
  CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "prune ratio must be in [0,1)");
  if (ratio == 0.0) return;

  Tensor& w = layer.MutableWeights();
  const std::int64_t filters = w.GetShape().Dim(0);
  const std::int64_t per_filter = w.NumElements() / filters;
  auto data = w.Data();

  // Rank filters by L1 norm.
  std::vector<double> norms(static_cast<std::size_t>(filters), 0.0);
  for (std::int64_t f = 0; f < filters; ++f) {
    double sum = 0.0;
    const float* row = data.data() + f * per_filter;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      sum += std::fabs(static_cast<double>(row[i]));
    }
    norms[static_cast<std::size_t>(f)] = sum;
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(filters));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&norms](std::int64_t a, std::int64_t b) {
                     return norms[static_cast<std::size_t>(a)] <
                            norms[static_cast<std::size_t>(b)];
                   });

  const auto filters_to_zero = static_cast<std::int64_t>(
      std::llround(ratio * static_cast<double>(filters)));
  Tensor& bias = layer.MutableBias();
  auto bias_data = bias.Data();
  for (std::int64_t i = 0; i < filters_to_zero; ++i) {
    const std::int64_t f = order[static_cast<std::size_t>(i)];
    float* row = data.data() + f * per_filter;
    std::fill(row, row + per_filter, 0.0f);
    if (static_cast<std::size_t>(f) < bias_data.size()) {
      bias_data[static_cast<std::size_t>(f)] = 0.0f;
    }
  }
  layer.NotifyWeightsChanged();
}

}  // namespace ccperf::pruning
