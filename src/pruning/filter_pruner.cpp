#include "pruning/filter_pruner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "tensor/sparse.h"

namespace ccperf::pruning {

void L1FilterPruner::Prune(nn::Layer& layer, double ratio) const {
  CCPERF_CHECK(layer.HasWeights(), "cannot prune weightless layer '",
               layer.Name(), "'");
  CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "prune ratio must be in [0,1)");
  if (ratio == 0.0) return;

  Tensor& w = layer.MutableWeights();
  const std::int64_t filters = w.GetShape().Dim(0);
  const std::int64_t per_filter = w.NumElements() / filters;
  auto data = w.Data();

  // The prune unit is one filter, or one aligned group of kBlockRows
  // filters in block-aligned mode (tail group may be smaller).
  const std::int64_t unit = block_aligned_ ? BsrMatrix::kBlockRows : 1;
  const std::int64_t units = (filters + unit - 1) / unit;

  // Rank units by the L1 norm of their filters.
  std::vector<double> norms(static_cast<std::size_t>(units), 0.0);
  for (std::int64_t f = 0; f < filters; ++f) {
    double sum = 0.0;
    const float* row = data.data() + f * per_filter;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      sum += std::fabs(static_cast<double>(row[i]));
    }
    norms[static_cast<std::size_t>(f / unit)] += sum;
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(units));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&norms](std::int64_t a, std::int64_t b) {
                     return norms[static_cast<std::size_t>(a)] <
                            norms[static_cast<std::size_t>(b)];
                   });

  const auto units_to_zero = static_cast<std::int64_t>(
      std::llround(ratio * static_cast<double>(units)));
  Tensor& bias = layer.MutableBias();
  auto bias_data = bias.Data();
  for (std::int64_t i = 0; i < units_to_zero; ++i) {
    const std::int64_t u = order[static_cast<std::size_t>(i)];
    const std::int64_t f_end = std::min(filters, (u + 1) * unit);
    for (std::int64_t f = u * unit; f < f_end; ++f) {
      float* row = data.data() + f * per_filter;
      std::fill(row, row + per_filter, 0.0f);
      if (static_cast<std::size_t>(f) < bias_data.size()) {
        bias_data[static_cast<std::size_t>(f)] = 0.0f;
      }
    }
  }
  layer.NotifyWeightsChanged();
}

}  // namespace ccperf::pruning
