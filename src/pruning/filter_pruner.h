// L1-norm filter pruning (Li et al., "Pruning Filters for Efficient
// ConvNets") — the method the paper uses: remove whole output filters with
// the smallest L1 norm instead of individual weights.
#pragma once

#include "pruning/pruner.h"

namespace ccperf::pruning {

/// Structured pruning: zeroes entire rows of the weight matrix (output
/// filters for conv layers, output neurons for fc layers) in ascending order
/// of L1 norm until `ratio` of the weights are zero. The matching bias entry
/// is zeroed as well, matching filter removal semantics.
class L1FilterPruner final : public Pruner {
 public:
  [[nodiscard]] std::string Name() const override { return "l1-filter"; }
  void Prune(nn::Layer& layer, double ratio) const override;
};

}  // namespace ccperf::pruning
