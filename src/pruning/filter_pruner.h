// L1-norm filter pruning (Li et al., "Pruning Filters for Efficient
// ConvNets") — the method the paper uses: remove whole output filters with
// the smallest L1 norm instead of individual weights.
#pragma once

#include "pruning/pruner.h"

namespace ccperf::pruning {

/// Structured pruning: zeroes entire rows of the weight matrix (output
/// filters for conv layers, output neurons for fc layers) in ascending order
/// of L1 norm until `ratio` of the weights are zero. The matching bias entry
/// is zeroed as well, matching filter removal semantics.
///
/// With `block_aligned` set, filters are pruned in aligned groups of
/// BsrMatrix::kBlockRows, ranked by the group's summed L1 norm. Aligned
/// groups drop whole block rows of the BSR format, keeping block fill at
/// ~1.0, so pruned layers qualify for the block-CSR kernel — the highest
/// sparse/dense crossover in tensor/sparse_dispatch.h — instead of plain
/// CSR. The accuracy cost is ranking granularity: a strong filter in a weak
/// group dies with it.
class L1FilterPruner final : public Pruner {
 public:
  explicit L1FilterPruner(bool block_aligned = false)
      : block_aligned_(block_aligned) {}

  [[nodiscard]] std::string Name() const override {
    return block_aligned_ ? "l1-filter-block" : "l1-filter";
  }
  void Prune(nn::Layer& layer, double ratio) const override;

 private:
  bool block_aligned_;
};

}  // namespace ccperf::pruning
