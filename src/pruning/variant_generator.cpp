#include "pruning/variant_generator.h"

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"

namespace ccperf::pruning {

std::vector<PrunePlan> SingleLayerSweep(const std::string& layer,
                                        const std::vector<double>& ratios,
                                        PrunerFamily family) {
  std::vector<PrunePlan> plans;
  plans.reserve(ratios.size());
  for (double r : ratios) {
    PrunePlan plan;
    plan.family = family;
    plan.layer_ratios[layer] = r;
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<PrunePlan> CartesianSweep(
    const std::vector<std::string>& layers,
    const std::vector<std::vector<double>>& ratio_grids,
    PrunerFamily family) {
  CCPERF_CHECK(layers.size() == ratio_grids.size(),
               "one ratio grid per layer required");
  CCPERF_CHECK(!layers.empty(), "empty sweep");
  std::vector<PrunePlan> plans;
  std::vector<std::size_t> idx(layers.size(), 0);
  for (;;) {
    PrunePlan plan;
    plan.family = family;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      CCPERF_CHECK(!ratio_grids[i].empty(), "empty ratio grid for ", layers[i]);
      plan.layer_ratios[layers[i]] = ratio_grids[i][idx[i]];
    }
    plans.push_back(std::move(plan));
    // Odometer increment.
    std::size_t axis = 0;
    while (axis < layers.size() && ++idx[axis] == ratio_grids[axis].size()) {
      idx[axis] = 0;
      ++axis;
    }
    if (axis == layers.size()) break;
  }
  return plans;
}

std::vector<PrunePlan> RandomVariants(const std::vector<std::string>& layers,
                                      std::size_t count, double max_ratio,
                                      double step, Rng& rng,
                                      PrunerFamily family) {
  CCPERF_CHECK(!layers.empty(), "RandomVariants needs layers");
  CCPERF_CHECK(max_ratio >= 0.0 && max_ratio < 1.0, "max_ratio out of range");
  CCPERF_CHECK(step > 0.0, "step must be positive");
  // Round to the nearest level count: 0.6/0.1 is 5.999... in binary.
  const auto levels =
      static_cast<std::uint64_t>(std::llround(max_ratio / step)) + 1;
  std::vector<PrunePlan> plans;
  std::set<std::string> seen;
  // Always include the unpruned baseline as the first variant.
  PrunePlan baseline;
  baseline.family = family;
  for (const auto& layer : layers) baseline.layer_ratios[layer] = 0.0;
  seen.insert(baseline.Label());
  plans.push_back(std::move(baseline));

  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 200 + 1000;
  while (plans.size() < count && attempts++ < max_attempts) {
    PrunePlan plan;
    plan.family = family;
    for (const auto& layer : layers) {
      const double r = static_cast<double>(rng.NextIndex(levels)) * step;
      plan.layer_ratios[layer] = std::min(r, max_ratio);
    }
    if (seen.insert(plan.Label()).second) plans.push_back(std::move(plan));
  }
  CCPERF_CHECK(plans.size() == count, "could not generate ", count,
               " distinct variants (grid too small?)");
  return plans;
}

}  // namespace ccperf::pruning
