#include "pruning/sparsity.h"

#include "tensor/sparse.h"

namespace ccperf::pruning {

double SparsityReport::OverallDensity() const {
  if (total_parameters == 0) return 1.0;
  return static_cast<double>(total_nonzero) /
         static_cast<double>(total_parameters);
}

SparsityReport AnalyzeSparsity(const nn::Network& net) {
  SparsityReport report;
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    const nn::Layer& layer = net.LayerAt(i);
    if (!layer.HasWeights()) continue;
    LayerSparsity ls;
    ls.name = layer.Name();
    ls.parameters = layer.Weights().NumElements();
    ls.density = layer.WeightDensity();
    ls.nonzero = static_cast<std::int64_t>(
        ls.density * static_cast<double>(ls.parameters) + 0.5);
    const std::int64_t rows = layer.Weights().GetShape().Dim(0);
    ls.block_fill = BsrMatrix::DenseBlockFill(
        rows, layer.Weights().NumElements() / rows, layer.Weights().Data());
    report.total_parameters += ls.parameters;
    report.total_nonzero += ls.nonzero;
    report.layers.push_back(std::move(ls));
  }
  return report;
}

}  // namespace ccperf::pruning
