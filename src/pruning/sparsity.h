// Sparsity reporting for pruned networks.
#pragma once

#include <string>
#include <vector>

#include "nn/network.h"

namespace ccperf::pruning {

/// Sparsity of a single weighted layer.
struct LayerSparsity {
  std::string name;
  std::int64_t parameters = 0;  // weight elements
  std::int64_t nonzero = 0;
  double density = 1.0;
  // BSR 4x4 block fill the weight matrix would have (nnz / stored-block
  // capacity; 1.0 when all-zero) — the structure signal ChooseSparseKernel
  // pairs with density, reported so pruning experiments can see whether a
  // variant qualifies for the block-sparse kernel.
  double block_fill = 1.0;
};

/// Per-layer and aggregate sparsity of a network's weighted layers.
struct SparsityReport {
  std::vector<LayerSparsity> layers;
  std::int64_t total_parameters = 0;
  std::int64_t total_nonzero = 0;

  [[nodiscard]] double OverallDensity() const;
};

SparsityReport AnalyzeSparsity(const nn::Network& net);

}  // namespace ccperf::pruning
