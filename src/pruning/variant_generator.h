// Generators for families of prune plans ("degrees of pruning").
#pragma once

#include <vector>

#include "pruning/prune_plan.h"

namespace ccperf {
class Rng;
}

namespace ccperf::pruning {

/// One plan per ratio, pruning only `layer`.
std::vector<PrunePlan> SingleLayerSweep(
    const std::string& layer, const std::vector<double>& ratios,
    PrunerFamily family = PrunerFamily::kL1Filter);

/// Cartesian product of per-layer ratio grids (paper Fig. 11: conv1 x conv2).
/// `layers[i]` sweeps over `ratio_grids[i]`.
std::vector<PrunePlan> CartesianSweep(
    const std::vector<std::string>& layers,
    const std::vector<std::vector<double>>& ratio_grids,
    PrunerFamily family = PrunerFamily::kL1Filter);

/// `count` random plans over `layers`, ratios uniform on [0, max_ratio]
/// quantized to `step` — used for the paper's "60 versions of Caffenet
/// pruned in different degrees spanning a wide accuracy range".
std::vector<PrunePlan> RandomVariants(
    const std::vector<std::string>& layers, std::size_t count,
    double max_ratio, double step, Rng& rng,
    PrunerFamily family = PrunerFamily::kL1Filter);

}  // namespace ccperf::pruning
