#include "pruning/quantizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ccperf::pruning {

Quantizer::Quantizer(int bits) : bits_(bits) {
  CCPERF_CHECK(bits_ >= 2 && bits_ <= 16, "bits must be in [2, 16], got ",
               bits_);
}

namespace {

/// Max |w| of a weight tensor (0 if all zero).
float MaxAbs(std::span<const float> w) {
  float m = 0.0f;
  for (float v : w) m = std::max(m, std::fabs(v));
  return m;
}

/// Quantize one value to a symmetric k-bit grid with scale `step`.
inline float QuantizeValue(float v, float step, float max_level) {
  if (v == 0.0f) return 0.0f;  // preserve pruned zeros exactly
  const float q = std::round(v / step);
  return std::clamp(q, -max_level, max_level) * step;
}

}  // namespace

void Quantizer::Apply(nn::Layer& layer) const {
  CCPERF_CHECK(layer.HasWeights(), "cannot quantize weightless layer '",
               layer.Name(), "'");
  Tensor& w = layer.MutableWeights();
  auto data = w.Data();
  const float max_abs = MaxAbs(data);
  if (max_abs == 0.0f) return;
  const auto levels = static_cast<float>((1 << (bits_ - 1)) - 1);
  const float step = max_abs / levels;
  for (float& v : data) v = QuantizeValue(v, step, levels);
  layer.NotifyWeightsChanged();
}

void Quantizer::ApplyToNetwork(nn::Network& net) const {
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).HasWeights()) Apply(net.LayerAt(i));
  }
}

double Quantizer::RelativeRmsError(const Tensor& weights) const {
  const auto data = weights.Data();
  const float max_abs = MaxAbs(data);
  if (max_abs == 0.0f || data.empty()) return 0.0;
  const auto levels = static_cast<float>((1 << (bits_ - 1)) - 1);
  const float step = max_abs / levels;
  double err = 0.0, ref = 0.0;
  for (float v : data) {
    const double d = static_cast<double>(v) -
                     static_cast<double>(QuantizeValue(v, step, levels));
    err += d * d;
    ref += static_cast<double>(v) * static_cast<double>(v);
  }
  return ref == 0.0 ? 0.0 : std::sqrt(err / ref);
}

WeightSharer::WeightSharer(int clusters, int iterations)
    : clusters_(clusters), iterations_(iterations) {
  CCPERF_CHECK(clusters_ >= 2 && clusters_ <= 4096, "clusters out of range");
  CCPERF_CHECK(iterations_ >= 1, "need at least one k-means iteration");
}

void WeightSharer::Apply(nn::Layer& layer) const {
  CCPERF_CHECK(layer.HasWeights(), "cannot weight-share weightless layer '",
               layer.Name(), "'");
  Tensor& w = layer.MutableWeights();
  auto data = w.Data();
  float lo = 0.0f, hi = 0.0f;
  bool any = false;
  for (float v : data) {
    if (v == 0.0f) continue;  // zero keeps its dedicated centroid
    lo = any ? std::min(lo, v) : v;
    hi = any ? std::max(hi, v) : v;
    any = true;
  }
  if (!any || lo == hi) {
    layer.NotifyWeightsChanged();
    return;
  }

  // Initialize centroids uniformly over the weight range (the standard
  // linear init from the deep-compression literature).
  std::vector<double> centroids(static_cast<std::size_t>(clusters_));
  for (int c = 0; c < clusters_; ++c) {
    centroids[static_cast<std::size_t>(c)] =
        lo + (hi - lo) * (static_cast<double>(c) + 0.5) / clusters_;
  }

  std::vector<double> sum(centroids.size());
  std::vector<std::int64_t> count(centroids.size());
  auto nearest = [&centroids](float v) {
    std::size_t best = 0;
    double best_d = std::abs(centroids[0] - v);
    for (std::size_t c = 1; c < centroids.size(); ++c) {
      const double d = std::abs(centroids[c] - v);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  };
  for (int iter = 0; iter < iterations_; ++iter) {
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(count.begin(), count.end(), 0);
    for (float v : data) {
      if (v == 0.0f) continue;
      const std::size_t c = nearest(v);
      sum[c] += v;
      ++count[c];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (count[c] > 0) centroids[c] = sum[c] / static_cast<double>(count[c]);
    }
  }
  for (float& v : data) {
    if (v != 0.0f) v = static_cast<float>(centroids[nearest(v)]);
  }
  layer.NotifyWeightsChanged();
}

void WeightSharer::ApplyToNetwork(nn::Network& net) const {
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    if (net.LayerAt(i).HasWeights()) Apply(net.LayerAt(i));
  }
}

MemoryReport AnalyzeMemory(const nn::Network& net, int quant_bits,
                           int shared_clusters) {
  CCPERF_CHECK(quant_bits >= 2 && quant_bits <= 32, "quant_bits out of range");
  CCPERF_CHECK(shared_clusters >= 2, "shared_clusters out of range");
  MemoryReport report;
  report.quant_bits = quant_bits;
  report.shared_clusters = shared_clusters;
  const double index_bits =
      std::ceil(std::log2(static_cast<double>(shared_clusters) + 1.0));
  for (std::size_t i = 0; i < net.LayerCount(); ++i) {
    const nn::Layer& layer = net.LayerAt(i);
    if (!layer.HasWeights()) continue;
    const Tensor& w = layer.Weights();
    const auto params = static_cast<double>(w.NumElements());
    const double nnz = params * layer.WeightDensity();
    const auto rows = static_cast<double>(w.GetShape().Dim(0));
    report.dense_fp32_bytes += params * 4.0;
    report.sparse_csr_bytes += nnz * (4.0 + 4.0) + (rows + 1.0) * 8.0;
    report.quantized_bytes += params * quant_bits / 8.0;
    report.shared_bytes +=
        params * index_bits / 8.0 + shared_clusters * 4.0;
  }
  return report;
}

}  // namespace ccperf::pruning
