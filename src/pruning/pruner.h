// Pruner: strategy interface for sparsifying a layer's weights in place.
//
// The paper prunes with the L1-norm filter method of Li et al. [17]; we also
// provide element-magnitude pruning as the simpler baseline family. Both set
// selected weights to exactly zero — the layer's CSR path then skips them.
#pragma once

#include <string>

#include "nn/layer.h"

namespace ccperf::pruning {

/// Strategy that zeroes a fraction of a layer's weights.
class Pruner {
 public:
  virtual ~Pruner() = default;

  /// Identifier used in reports ("magnitude", "l1-filter").
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Zero approximately `ratio` (in [0, 1)) of `layer`'s weights in place and
  /// refresh the layer's cached execution state. Pruning is idempotent in
  /// the sense that already-zero weights count toward the target ratio.
  virtual void Prune(nn::Layer& layer, double ratio) const = 0;
};

}  // namespace ccperf::pruning
