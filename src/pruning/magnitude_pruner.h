// Element-wise magnitude pruning: zero the smallest-|w| fraction.
#pragma once

#include "pruning/pruner.h"

namespace ccperf::pruning {

/// Unstructured pruning. Removes the `ratio` fraction of weights with the
/// smallest absolute value — the classic baseline whose removed-energy grows
/// slowly with ratio, producing the paper's "sweet-spot" accuracy plateaus.
class MagnitudePruner final : public Pruner {
 public:
  [[nodiscard]] std::string Name() const override { return "magnitude"; }
  void Prune(nn::Layer& layer, double ratio) const override;
};

}  // namespace ccperf::pruning
