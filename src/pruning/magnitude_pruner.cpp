#include "pruning/magnitude_pruner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ccperf::pruning {

void MagnitudePruner::Prune(nn::Layer& layer, double ratio) const {
  CCPERF_CHECK(layer.HasWeights(), "cannot prune weightless layer '",
               layer.Name(), "'");
  CCPERF_CHECK(ratio >= 0.0 && ratio < 1.0, "prune ratio must be in [0,1)");
  if (ratio == 0.0) return;

  Tensor& w = layer.MutableWeights();
  auto data = w.Data();
  const std::size_t n = data.size();
  const auto to_zero = static_cast<std::size_t>(
      std::llround(ratio * static_cast<double>(n)));
  if (to_zero == 0) return;

  // Threshold = |w| at the to_zero-th order statistic.
  std::vector<float> mags(n);
  for (std::size_t i = 0; i < n; ++i) mags[i] = std::fabs(data[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(to_zero - 1),
                   mags.end());
  const float threshold = mags[to_zero - 1];

  // Zero strictly-below first, then ties until the count is met, so the
  // realized ratio is exact even with duplicated magnitudes.
  std::size_t zeroed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(data[i]) < threshold) {
      data[i] = 0.0f;
      ++zeroed;
    }
  }
  for (std::size_t i = 0; i < n && zeroed < to_zero; ++i) {
    if (data[i] != 0.0f && std::fabs(data[i]) == threshold) {
      data[i] = 0.0f;
      ++zeroed;
    }
  }
  layer.NotifyWeightsChanged();
}

}  // namespace ccperf::pruning
