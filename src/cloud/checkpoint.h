// Checkpoint policies and spot economics: when to snapshot a run, and what
// snapshots + lost recompute do to the paper's cost model (Eqs. 1-4).
//
// The paper prices configurations as if every instance runs to completion;
// the cheapest real configurations are preemptible spot instances. Scavenger
// (Tyagi & Sharma, 2023) shows the checkpoint interval is itself a
// cost/performance knob on transient resources, and PROFET (Lee et al.,
// 2022) motivates modeling the snapshot-vs-recompute overhead explicitly.
// This module supplies the knob (CheckpointPolicy), the classic optimum
// (Young's interval), and the Eq. 1-4 extension that charges snapshot time
// and expected recompute against spot prices (EstimateSpotRun).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cloud/faults.h"
#include "cloud/simulator.h"
#include "common/annotations.h"
#include "common/threading.h"

namespace ccperf::cloud {

/// When a run takes a snapshot.
enum class CheckpointTrigger {
  kPeriodic,             // every interval_s of simulated time
  kOnPreemptionWarning,  // warning_lead_s before each scheduled fault
  kAdaptive,             // periodic at Young's optimal interval for the
                         // observed fault density (falls back to interval_s
                         // on a fault-free schedule)
};

/// "periodic" / "on-warning" / "adaptive".
const char* CheckpointTriggerName(CheckpointTrigger trigger);

/// Snapshot cadence + cost. `snapshot_cost_s` is the simulated wall time a
/// snapshot steals from the run; it is charged to the cost model, never to
/// the simulated dynamics (resume must stay bitwise-identical).
/// `mirror_copies` > 1 replicates every snapshot into that many fault
/// domains (SnapshotVault::PutMirrored), so a partitioned domain's state
/// restores from a reachable mirror; each extra copy bills `mirror_cost_s`
/// more simulated seconds per snapshot.
struct CheckpointPolicy {
  CheckpointTrigger trigger = CheckpointTrigger::kPeriodic;
  double interval_s = 300.0;      // periodic cadence / adaptive fallback
  double warning_lead_s = 120.0;  // EC2 spot issues a 2-minute warning
  double snapshot_cost_s = 1.0;   // simulated seconds per snapshot
  int mirror_copies = 1;          // fault domains each snapshot lands in
  double mirror_cost_s = 0.0;     // extra seconds per additional copy
};

/// Throws CheckError unless interval > 0, lead >= 0, costs >= 0 and
/// mirror_copies >= 1.
void ValidateCheckpointPolicy(const CheckpointPolicy& policy);

/// Young's optimal periodic checkpoint interval for snapshot cost `c` and
/// mean time between failures `mtbf`: sqrt(2 * c * mtbf). Requires both
/// positive.
double YoungInterval(double snapshot_cost_s, double mtbf_s);

/// The snapshot instants a policy produces for a run of `duration_s`
/// against `faults` on an `instances`-wide fleet: sorted, deduplicated,
/// strictly inside (0, duration_s).
std::vector<double> CheckpointInstants(const CheckpointPolicy& policy,
                                       const FaultSchedule& faults,
                                       double duration_s, int instances);

/// Accounting of one checkpointed run. `latest` is the bytes of the most
/// recent snapshot (restorable via FaultedServingEngine::Restore);
/// `history` records every (watermark, snapshot) pair when `keep_history`
/// is set before the run.
struct CheckpointStats {
  int snapshots = 0;
  double snapshot_overhead_s = 0.0;  // snapshots * snapshot_cost_s
  double overhead_cost_usd = 0.0;    // overhead billed at the fleet price
  double last_snapshot_s = 0.0;      // watermark of the latest snapshot
  std::string latest;
  bool keep_history = false;
  std::vector<std::pair<double, std::string>> history;
};

/// Thread-safe store of the latest snapshot per named run: concurrent
/// campaign runners (one per task on the global pool) publish their
/// checkpoints here, and a recovery path — possibly on another thread —
/// picks up the newest restorable state. Put keeps only the snapshot with
/// the highest watermark per name, so replaying a Put after a restart is
/// idempotent.
///
/// Snapshots carry an optional *fault domain* tag (cloud/fault_domains.h
/// indices): PutMirrored lands one copy per domain, and the *Reachable
/// accessors ignore copies whose domain is currently partitioned away —
/// cross-domain failover restores from the newest still-reachable mirror.
/// Untagged Put uses domain -1 ("nowhere in particular"), which is never
/// unreachable, so single-domain users see the original semantics.
class SnapshotVault {
 public:
  SnapshotVault() = default;
  SnapshotVault(const SnapshotVault&) = delete;
  SnapshotVault& operator=(const SnapshotVault&) = delete;

  /// Publish `snapshot` for `name` at `watermark` (simulated seconds).
  /// Ignored if an entry with a strictly higher watermark already exists.
  void Put(const std::string& name, double watermark, std::string snapshot)
      CCPERF_EXCLUDES(mutex_);

  /// Publish one copy of `snapshot` into each domain of `domains` (the
  /// per-domain highest watermark wins, as with Put).
  void PutMirrored(const std::string& name, double watermark,
                   const std::string& snapshot,
                   const std::vector<int>& domains) CCPERF_EXCLUDES(mutex_);

  [[nodiscard]] bool Contains(const std::string& name) const
      CCPERF_EXCLUDES(mutex_);

  /// Latest snapshot bytes for `name` across all domains; throws CheckError
  /// when absent.
  [[nodiscard]] std::string Get(const std::string& name) const
      CCPERF_EXCLUDES(mutex_);

  /// Watermark of the latest snapshot for `name`; throws when absent.
  [[nodiscard]] double Watermark(const std::string& name) const
      CCPERF_EXCLUDES(mutex_);

  /// Like Get/Watermark/Contains, but skipping copies stored in any domain
  /// of `unreachable` (sorted or not; -1 never matches). Get/Watermark
  /// throw CheckError when no reachable copy exists — a partition that
  /// swallows every mirror is a real data loss and must surface loudly.
  [[nodiscard]] bool HasReachable(const std::string& name,
                                  const std::vector<int>& unreachable) const
      CCPERF_EXCLUDES(mutex_);
  [[nodiscard]] std::string GetReachable(
      const std::string& name, const std::vector<int>& unreachable) const
      CCPERF_EXCLUDES(mutex_);
  [[nodiscard]] double ReachableWatermark(
      const std::string& name, const std::vector<int>& unreachable) const
      CCPERF_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t Size() const CCPERF_EXCLUDES(mutex_);

  /// One copy the integrity scrub flagged: `name`'s mirror in `domain`
  /// failed the snapshot-format CRC walk (SnapshotIntact).
  struct CorruptCopy {
    std::string name;
    int domain = -1;
  };
  /// Result of a vault scrub.
  struct ScrubReport {
    std::size_t copies_checked = 0;
    std::vector<CorruptCopy> corrupted;  // deterministic (name, domain) order
    [[nodiscard]] bool ok() const { return corrupted.empty(); }
  };

  /// Integrity scrub over every stored copy (all names, all mirrored
  /// domains): walks each snapshot's section CRCs via SnapshotIntact and
  /// reports the copies that no longer verify — the storage-side
  /// counterpart of nn::Network::VerifyIntegrity. Read-only; corrupted
  /// copies are reported, not evicted, so the caller decides whether to
  /// fail over to a reachable mirror or surface data loss.
  [[nodiscard]] ScrubReport VerifyAllSections() const
      CCPERF_EXCLUDES(mutex_);

  /// Block until a snapshot for `name` with watermark >= min_watermark is
  /// published, or `timeout_s` elapses; true iff the snapshot arrived.
  [[nodiscard]] bool WaitForSnapshot(const std::string& name,
                                     double min_watermark,
                                     double timeout_s) const
      CCPERF_EXCLUDES(mutex_);

 private:
  struct Entry {
    double watermark = 0.0;
    std::string bytes;
  };

  /// Newest reachable copy of `name`, or nullptr. Ties on watermark pick
  /// the lowest domain index — deterministic regardless of publish order.
  [[nodiscard]] const Entry* BestReachableLocked(
      const std::string& name, const std::vector<int>& unreachable) const
      CCPERF_REQUIRES(mutex_);

  mutable Mutex mutex_;
  mutable CondVar published_;
  // name -> (domain -> newest entry in that domain). std::map keeps
  // iteration deterministic (and the lint bans hash containers in src/).
  std::map<std::string, std::map<int, Entry>> entries_
      CCPERF_GUARDED_BY(mutex_);
};

/// Eq. 1-4 extended to preemptible capacity: expected completion time and
/// cost of an offline run of `images` on `config` priced at spot rates,
/// including snapshot overhead and the expected recompute lost to
/// preemptions (interval/2 per hit, plus `restart_s` to reprovision).
struct SpotRunEstimate {
  Seconds interval_s;                 // the checkpoint interval in effect
  Seconds base_seconds;               // fault-free T (Eq. 2)
  Seconds snapshot_overhead_s;
  Seconds expected_recompute_s;       // preemptions * (interval/2 + restart)
  double expected_preemptions = 0.0;  // across the whole fleet
  Seconds expected_seconds;           // T + overhead + recompute
  Usd on_demand_cost_usd;             // Eq. 1 at on-demand price, no faults
  Usd expected_spot_cost_usd;
};

/// `preemption_rate` is per instance; every type in `config` must
/// have a spot market (spot_price_per_hour > 0).
SpotRunEstimate EstimateSpotRun(const CloudSimulator& sim,
                                const ResourceConfig& config,
                                const VariantPerf& perf, std::int64_t images,
                                const CheckpointPolicy& policy,
                                RatePerHour preemption_rate,
                                Seconds restart = Seconds(60.0));

/// Resumable offline run: the paper's Eq. 1-4 batch-inference model with
/// per-instance progress in whole batches, checkpointable through the
/// common snapshot format. A preempted campaign restored from its latest
/// snapshot loses only the work since that snapshot instead of restarting
/// the whole workload from zero.
class ResumableOfflineRun {
 public:
  /// `batch` 0 picks the largest batch that fits each GPU (as
  /// CloudSimulator::InstanceSeconds does).
  ResumableOfflineRun(const CloudSimulator& sim, const ResourceConfig& config,
                      const VariantPerf& perf, std::int64_t images,
                      std::int64_t batch = 0);

  /// Advance every instance to simulated time `t_s` (monotone; whole
  /// completed batches only — a batch in flight at `t_s` is not counted).
  void AdvanceTo(double t_s);

  [[nodiscard]] bool Done() const;
  [[nodiscard]] std::int64_t ImagesDone() const;
  [[nodiscard]] std::int64_t TotalImages() const { return total_images_; }
  [[nodiscard]] double Elapsed() const { return elapsed_s_; }
  /// Fault-free completion time — the paper's T (Eq. 2).
  [[nodiscard]] double TotalSeconds() const;

  /// Capture progress; restore into a run built from the same
  /// (config, perf, images, batch) inputs. Mismatched inputs or corrupted
  /// bytes throw CheckError.
  [[nodiscard]] std::string Checkpoint() const;
  void Restore(const std::string& snapshot);

 private:
  struct Slot {
    std::string type;
    std::int64_t target = 0;         // W_i (Eq. 4 share)
    std::int64_t done = 0;
    std::int64_t images_per_step = 0;  // batch * gpus
    double step_seconds = 0.0;         // one batch round across the GPUs
  };

  std::uint32_t Fingerprint() const;

  std::vector<Slot> slots_;
  std::int64_t total_images_ = 0;
  std::int64_t batch_ = 0;
  double elapsed_s_ = 0.0;
};

}  // namespace ccperf::cloud
