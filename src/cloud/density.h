// Weight-density descriptors of a pruned variant, either derived
// analytically from a PrunePlan (cheap — used for thousand-configuration
// sweeps) or measured from an actual pruned network (used to validate the
// analytic path in tests).
#pragma once

#include <map>
#include <string>

#include "cloud/model_profile.h"
#include "nn/network.h"
#include "pruning/prune_plan.h"

namespace ccperf::cloud {

/// Density state of one weighted layer.
struct LayerDensity {
  /// Fraction of nonzero weight elements.
  double element = 1.0;
  /// Fraction of output filters (weight rows) that are not entirely zero.
  /// Structural (filter) pruning lowers this; magnitude pruning does not.
  double out_filter = 1.0;
  /// Fraction of this layer's input channels still produced upstream —
  /// Li et al. filter removal also deletes the matching kernel planes here.
  double in_channel = 1.0;
};

using DensityMap = std::map<std::string, LayerDensity>;

/// Analytic densities implied by `plan` over the profile's layer graph.
DensityMap DensityFromPlan(const ModelProfile& profile,
                           const pruning::PrunePlan& plan);

/// Measured densities of an actual (possibly pruned) network, propagating
/// dead channels through weightless layers and concat joins.
DensityMap DensityFromNetwork(const nn::Network& net);

}  // namespace ccperf::cloud
