// Online-serving simulation: the paper's motivating scenario (§1) is
// near-real-time photo filtering, where images *arrive* continuously and
// must be classified "almost immediately". The offline model (Eqs. 1-4)
// answers throughput questions; this discrete-event simulator answers the
// latency question: given an arrival rate, a fleet, and a batching policy,
// what latency percentiles do requests see and what does an hour cost?
//
// Model: Poisson arrivals; each GPU serves batches FIFO; the dispatcher
// releases a batch when `max_batch` requests are waiting or the oldest
// request has waited `max_wait_s`. Batch service time comes from the same
// calibrated device model as the offline simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "cloud/checkpoint.h"
#include "cloud/faults.h"
#include "cloud/resource_config.h"
#include "cloud/sdc.h"
#include "cloud/simulator.h"

namespace ccperf {
class Rng;
}

namespace ccperf::cloud {

/// Batching/dispatch policy of the serving fleet.
struct ServingPolicy {
  std::int64_t max_batch = 64;  // dispatch when this many are queued
  double max_wait_s = 0.05;     // ... or when the oldest waited this long
  /// Per-request deadline (arrival -> completion). Requests that cannot
  /// start service before their deadline are dropped; requests completing
  /// late count as deadline misses. Infinity disables deadline accounting.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// Throws CheckError unless max_batch >= 1, max_wait_s >= 0 and
/// deadline_s > 0.
void ValidateServingPolicy(const ServingPolicy& policy);

/// Retry-with-exponential-backoff for requests whose batch died with the
/// instance: attempt k re-enters the queue after
/// min(base * multiplier^(k-1), max) seconds; after `max_retries` failed
/// re-attempts the request is dropped. `max_backoff_s` is the configurable
/// ceiling; BackoffFor stops multiplying once it is reached, so arbitrarily
/// large attempt counts can neither overflow the double to infinity nor
/// cost O(attempt) work.
struct RetryPolicy {
  int max_retries = 2;
  double base_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;

  /// Backoff before re-attempt `attempt` (1-based). Monotone, capped.
  [[nodiscard]] double BackoffFor(int attempt) const;
};

/// Throws CheckError on negative retries/backoffs, non-finite fields, or
/// multiplier < 1.
void ValidateRetryPolicy(const RetryPolicy& policy);

/// Redundant execution against correlated failures: every request is
/// admitted as `replicas` copies (a batch never takes two copies of one
/// request, so replicas ride different dispatches and usually different
/// instances), and a copy still waiting `hedge_after_s` after its arrival
/// spawns up to `max_hedges` extra hedge copies. First completion wins and
/// records the request's latency; later copies still consume GPU service
/// time, which is how duplicate work is billed into the Eq. 3-4 cost
/// picture (utilization up, goodput per dollar down). The defaults (one
/// replica, no hedging) reproduce the single-copy engine exactly.
struct RedundancyPolicy {
  int replicas = 1;
  double hedge_after_s = std::numeric_limits<double>::infinity();
  int max_hedges = 0;

  /// True when the policy can ever create a second copy.
  [[nodiscard]] bool Active() const {
    return replicas > 1 ||
           (max_hedges > 0 && hedge_after_s !=
                                  std::numeric_limits<double>::infinity());
  }
};

/// Throws CheckError unless replicas >= 1, hedge_after_s > 0, and
/// max_hedges >= 0.
void ValidateRedundancyPolicy(const RedundancyPolicy& policy);

/// What happens to the requests of a batch in flight on a failed instance.
enum class InflightPolicy {
  kRequeue,  // requests re-enter the queue (subject to RetryPolicy)
  kDrop,     // requests are lost
};

/// Result of a serving simulation.
struct ServingReport {
  std::int64_t requests = 0;
  double duration_s = 0.0;       // simulated horizon
  double mean_latency_s = 0.0;   // arrival -> batch completion
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_queue = 0.0;        // largest backlog observed
  double utilization = 0.0;      // busy fraction of *available* GPU time
  double cost_per_hour_usd = 0.0;
  bool stable = true;            // false if the backlog kept growing

  // Failure-aware accounting (zero on fault-free runs without deadlines).
  std::int64_t completed = 0;         // requests that finished service
  std::int64_t dropped_deadline = 0;  // timed out before service started
  std::int64_t dropped_failed = 0;    // lost to failures / retry exhaustion
  std::int64_t retries = 0;           // re-enqueues after a failed batch
  std::int64_t deadline_misses = 0;   // served, but past their deadline
  double goodput_per_s = 0.0;         // in-deadline completions / duration
  double deadline_miss_rate = 0.0;    // 1 - in-deadline / requests
  /// goodput_per_s weighted by the accuracy of the serving variant — the
  /// paper's accuracy dimension folded into SLO compliance.
  double accuracy_weighted_goodput = 0.0;

  // Redundancy accounting (zero unless a RedundancyPolicy is active).
  std::int64_t hedges = 0;  // hedge copies spawned past hedge_after_s
  std::int64_t duplicate_completions = 0;  // copies served after their
                                           // request had already completed
  std::int64_t discarded_copies = 0;  // redundant copies removed unserved
  double duplicate_service_s = 0.0;   // GPU seconds spent on duplicates

  // Silent-corruption accounting (zero unless an SdcPolicy other than kOff
  // is active — cloud/sdc.h). Batches dispatched inside a
  // kSilentCorruption residency window compute wrong results; the policy
  // either detects them (the batch is re-served: extra GPU time, billed
  // through utilization into the Eq. 3-4 cost picture) or lets them escape
  // (delivered wrong: discounted out of delivered goodput).
  std::int64_t corrupted_batches = 0;  // dispatched inside a window
  std::int64_t sdc_detected = 0;       // caught and re-served
  std::int64_t sdc_escaped = 0;        // delivered as if correct
  std::int64_t sdc_escaped_requests = 0;  // completions from escaped batches
  /// accuracy_weighted_goodput after discounting escaped completions to
  /// kCorruptTop1Factor of their accuracy. Equal to
  /// accuracy_weighted_goodput when no corruption escapes.
  double delivered_accuracy_weighted_goodput = 0.0;
};

/// One entry of a SimulateFaultedMany sweep: a fleet, an arrival trace and
/// the fault schedule it is replayed against.
struct FaultedScenario {
  ResourceConfig config;
  std::vector<double> arrivals;
  FaultSchedule faults;
  double variant_accuracy = 1.0;
};

/// Discrete-event simulator over the calibrated device model.
class ServingSimulator {
 public:
  explicit ServingSimulator(const CloudSimulator& simulator);

  /// Simulate `duration_s` of Poisson traffic at `arrivals_per_s` against
  /// `config` running `perf`. Deterministic given `rng`.
  [[nodiscard]] ServingReport Simulate(const ResourceConfig& config,
                                       const VariantPerf& perf,
                                       double arrivals_per_s,
                                       double duration_s,
                                       const ServingPolicy& policy,
                                       Rng& rng) const;

  /// Replay an explicit arrival trace (ascending timestamps in seconds).
  /// `duration_s` is the horizon used for utilization accounting.
  [[nodiscard]] ServingReport SimulateTrace(const ResourceConfig& config,
                                            const VariantPerf& perf,
                                            std::vector<double> arrivals,
                                            double duration_s,
                                            const ServingPolicy& policy) const;

  /// Replay a trace against a fleet subjected to `faults`. Batches in
  /// flight on a failing instance are requeued (with `retry` backoff) or
  /// lost per `inflight` — except across a kPartition onset, where in-flight
  /// work is always lost (the isolated instance cannot hand it back);
  /// requests whose deadline expires before service are dropped.
  /// `variant_accuracy` feeds accuracy_weighted_goodput; `redundancy` adds
  /// request replication and hedging; `sdc` decides what happens to batches
  /// served inside kSilentCorruption windows (the default kOff leaves them
  /// unmodeled — bitwise identical to the pre-SDC engine). Deterministic
  /// given the trace and schedule.
  [[nodiscard]] ServingReport SimulateFaulted(
      const ResourceConfig& config, const VariantPerf& perf,
      std::vector<double> arrivals, double duration_s,
      const ServingPolicy& policy, const RetryPolicy& retry,
      const FaultSchedule& faults,
      InflightPolicy inflight = InflightPolicy::kRequeue,
      double variant_accuracy = 1.0,
      const RedundancyPolicy& redundancy = {},
      const SdcPolicy& sdc = {}) const;

  /// SimulateFaulted under a CheckpointPolicy: the dynamics and the report
  /// are identical (snapshots never perturb the simulation); `stats`
  /// receives the snapshot count, the charged overhead (snapshot time
  /// billed at the fleet's hourly price — the Eq. 3-4 recovery cost term)
  /// and the latest restorable snapshot bytes.
  [[nodiscard]] ServingReport SimulateFaultedCheckpointed(
      const ResourceConfig& config, const VariantPerf& perf,
      std::vector<double> arrivals, double duration_s,
      const ServingPolicy& policy, const RetryPolicy& retry,
      const FaultSchedule& faults, const CheckpointPolicy& checkpoint,
      CheckpointStats* stats = nullptr,
      InflightPolicy inflight = InflightPolicy::kRequeue,
      double variant_accuracy = 1.0,
      const RedundancyPolicy& redundancy = {},
      const SdcPolicy& sdc = {}) const;

  /// Run every scenario through SimulateFaulted, fanned across the global
  /// thread pool (each scenario's simulation stays serial, so report i is
  /// bitwise identical to a standalone SimulateFaulted of scenario i
  /// regardless of scheduling). If scenarios fail validation, the error of
  /// the lowest-index failing scenario is rethrown — deterministically —
  /// after the sweep finishes.
  [[nodiscard]] std::vector<ServingReport> SimulateFaultedMany(
      const std::vector<FaultedScenario>& scenarios, const VariantPerf& perf,
      double duration_s, const ServingPolicy& policy,
      const RetryPolicy& retry,
      InflightPolicy inflight = InflightPolicy::kRequeue) const;

  /// Max sustainable arrival rate (requests/s) of a configuration at full
  /// batching — the stability boundary of Simulate().
  [[nodiscard]] double Capacity(const ResourceConfig& config,
                                const VariantPerf& perf,
                                const ServingPolicy& policy) const;

  [[nodiscard]] const CloudSimulator& Simulator() const { return simulator_; }

 private:
  const CloudSimulator& simulator_;
};

/// The discrete-event core of SimulateFaulted as a steppable, checkpointable
/// object: construct with the run's inputs, Step() until Done(), Finish()
/// for the report. Checkpoint() captures the full mutable state through the
/// common snapshot format; Restore() on an engine built from the *same*
/// inputs resumes it so that the finished report is bitwise identical to an
/// uninterrupted run — the durability invariant the spot-preemption story
/// rests on. Restoring against different inputs (detected via a CRC
/// fingerprint of trace/config/policies/schedule) throws CheckError, as do
/// corrupted or truncated snapshot bytes.
class FaultedServingEngine {
 public:
  FaultedServingEngine(const ServingSimulator& serving,
                       const ResourceConfig& config, const VariantPerf& perf,
                       std::vector<double> arrivals, double duration_s,
                       const ServingPolicy& policy, const RetryPolicy& retry,
                       const FaultSchedule& faults,
                       InflightPolicy inflight = InflightPolicy::kRequeue,
                       double variant_accuracy = 1.0,
                       const RedundancyPolicy& redundancy = {},
                       const SdcPolicy& sdc = {});

  [[nodiscard]] bool Done() const;
  /// One scheduling decision: admit pending arrivals/retries or dispatch
  /// (and possibly fail) one batch. Throws CheckError when Done().
  void Step();
  /// Monotone watermark of simulated time covered so far — the checkpoint
  /// policies trigger on this.
  [[nodiscard]] double Watermark() const { return watermark_; }
  /// Final report; requires Done().
  [[nodiscard]] ServingReport Finish() const;

  [[nodiscard]] std::string Checkpoint() const;
  void Restore(const std::string& snapshot);

 private:
  /// One queued *copy* of a request (a request has several copies under a
  /// RedundancyPolicy). `ready` is when it (re-)enters the queue; `arrival`
  /// is the original arrival that deadlines/latency use; `id` indexes the
  /// arrival trace and ties sibling copies together.
  struct Pending {
    double ready = 0.0;
    double arrival = 0.0;
    int attempts = 0;
    std::int64_t id = 0;
  };
  struct GpuState {
    double free_at = 0.0;
    double busy = 0.0;
  };

  /// Heap order of `requeued_` (std::push_heap with this yields a min-heap
  /// on ready time, ties broken by arrival then attempts).
  static bool Later(const Pending& a, const Pending& b);

  [[nodiscard]] double NextSourceReady() const;
  void AdmitUntil(double t);
  [[nodiscard]] std::uint32_t Fingerprint() const;

  // Immutable run context (rebuilt identically at restore time).
  const CloudSimulator* sim_;
  ResourceConfig config_;
  VariantPerf perf_;
  std::vector<double> arrivals_;
  double duration_s_ = 0.0;
  ServingPolicy policy_;
  RetryPolicy retry_;
  FaultSchedule faults_;
  InflightPolicy inflight_ = InflightPolicy::kRequeue;
  double variant_accuracy_ = 1.0;
  RedundancyPolicy redundancy_;
  SdcPolicy sdc_;
  // Derived once: the policy's always-on fractional service-time cost and
  // its detection coverage. Detection is deterministic low-discrepancy
  // thinning: corrupted batch n is detected iff floor(n*c) > floor((n-1)*c),
  // so exactly a long-run fraction c is caught with no randomness.
  double sdc_machinery_ = 0.0;
  double sdc_coverage_ = 0.0;
  std::vector<const InstanceType*> gpu_types_;
  std::vector<int> gpu_instance_;
  std::vector<InstanceTimeline> timelines_;
  std::size_t backlog_limit_ = 0;
  std::uint32_t fingerprint_ = 0;

  // Mutable simulation state — everything Checkpoint() captures.
  std::vector<GpuState> gpus_;
  std::vector<Pending> requeued_;  // min-heap (std::push_heap order)
  std::deque<Pending> waiting_;    // admitted, sorted by ready
  std::size_t next_arrival_ = 0;
  // Per-request redundancy bookkeeping, indexed by arrival id: live copy
  // counts, first-completion flags, hedges spawned so far.
  std::vector<std::int32_t> copies_live_;
  std::vector<std::uint8_t> done_;
  std::vector<std::int32_t> hedges_used_;
  std::vector<double> latencies_;
  std::int64_t in_deadline_ = 0;
  // Running count of corrupted batches — drives the deterministic
  // every-k-th-escapes rule; captured by Checkpoint().
  std::int64_t sdc_corrupt_seen_ = 0;
  double watermark_ = 0.0;
  bool halted_ = false;  // fleet permanently gone or backlog exploded
  ServingReport report_;
};

/// Non-homogeneous Poisson arrivals with a sinusoidal diurnal rate:
/// rate(t) = mean + amplitude * sin(2*pi*t/period - pi/2), so the trace
/// starts at the trough. Generated by thinning. Requires
/// 0 <= amplitude <= mean.
std::vector<double> GenerateDiurnalArrivals(double mean_rate_per_s,
                                            double amplitude_per_s,
                                            double period_s,
                                            double duration_s, Rng& rng);

}  // namespace ccperf::cloud
