// Correlated-failure fault domains. Real cloud incidents are not independent
// per-instance coin flips: spot reclaim waves sweep one capacity pool, an AZ
// outage takes every instance in the zone, a network partition isolates a
// domain. This module models the blast radius explicitly: a FaultDomain tree
// (region -> zone -> pool) with every fleet instance mapped to a leaf pool,
// a CorrelatedFaultModel that draws Poisson-arriving *domain-level* events,
// and a lowering pass that projects those events onto the instances placed
// inside the struck domain. The lowered trace is an ordinary FaultSchedule,
// so it composes with the independent per-instance FaultModel via
// MergeFaultSchedules and replays through the unmodified serving engine —
// bitwise-deterministically per seed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cloud/faults.h"

namespace ccperf {
class Rng;
}

namespace ccperf::cloud {

/// Depth of a node in the fault-domain tree.
enum class DomainLevel {
  kRegion,
  kZone,
  kPool,
};

/// "region" / "zone" / "pool".
const char* DomainLevelName(DomainLevel level);

/// How instances are laid out across pools — the placement knob TAR/CAR
/// trades: packing is cheap (no cross-pool premium) but one reclaim wave or
/// outage can take the whole fleet; spreading caps the correlated loss to
/// one pool's share at a placement premium.
enum class PlacementSpread {
  kPack,    // fill the first pool before touching the next
  kSpread,  // round-robin instances across all pools
};

/// "pack" / "spread".
const char* PlacementSpreadName(PlacementSpread spread);

/// A region -> zone -> pool tree plus the instance -> pool map. Domains are
/// stored parent-before-child, so walking `parent` links always terminates.
struct FaultDomainTopology {
  struct Domain {
    std::string name;
    int parent = -1;  // index into `domains`; -1 for a region (root)
    DomainLevel level = DomainLevel::kRegion;
  };

  std::vector<Domain> domains;
  /// instance index (ResourceConfig expansion order) -> pool domain index.
  std::vector<int> instance_domain;

  /// Throws CheckError unless every domain's parent precedes it and is one
  /// level up (regions have no parent), and every placed instance maps to a
  /// kPool domain.
  void Validate() const;

  /// Indices of all kPool domains, ascending.
  [[nodiscard]] std::vector<int> PoolIndices() const;

  /// True iff `instance` is placed and `domain` is its pool or an ancestor
  /// of its pool.
  [[nodiscard]] bool Contains(int instance, int domain) const;

  /// Instances placed inside `domain` (itself or any descendant), ascending.
  [[nodiscard]] std::vector<int> InstancesIn(int domain) const;

  /// Balanced tree: `regions` regions x `zones_per_region` zones x
  /// `pools_per_zone` pools, named "r0" / "r0z1" / "r0z1p2".
  static FaultDomainTopology Uniform(int regions, int zones_per_region,
                                     int pools_per_zone);

  /// (Re)place `count` instances across the pools per `spread`. kPack fills
  /// pools in index order; kSpread deals instances round-robin.
  void PlaceInstances(int count, PlacementSpread spread);
};

/// Statistical generator of correlated domain events. Outages and
/// partitions arrive per *zone*-hour; reclaim waves per *pool*-hour (spot
/// capacity is reclaimed pool by pool). All processes are independent
/// Poisson streams, drawn in deterministic domain order.
struct CorrelatedFaultModel {
  double outage_rate = 0.0;        // zone outages per zone-hour
  double outage_s = 600.0;         // outage length
  double reclaim_wave_rate = 0.0;  // waves per pool-hour
  double reclaim_fraction = 0.5;   // fraction of the pool preempted per wave
  double partition_rate = 0.0;     // partitions per zone-hour
  double partition_s = 120.0;      // partition length

  [[nodiscard]] bool Empty() const {
    return outage_rate <= 0.0 && reclaim_wave_rate <= 0.0 &&
           partition_rate <= 0.0;
  }
};

/// One domain-level incident. `seed` feeds victim selection when the event
/// is lowered (reclaim waves preempt a random `fraction` of the pool), so a
/// schedule round-tripped through CSV lowers to the identical instance
/// trace.
struct CorrelatedEvent {
  FaultKind kind = FaultKind::kDomainOutage;  // one of the correlated kinds
  int domain = 0;
  double start_s = 0.0;
  double duration_s = 0.0;  // ignored for kReclaimWave (permanent)
  double fraction = 1.0;    // victim fraction, only meaningful for waves
  std::uint64_t seed = 0;   // victim-selection seed (waves)
};

/// Time-sorted trace of domain-level incidents.
struct CorrelatedSchedule {
  std::vector<CorrelatedEvent> events;

  /// Throws CheckError unless events are start-sorted, use correlated kinds
  /// only, target domains inside `topology`, and have fractions in (0, 1].
  void Validate(const FaultDomainTopology& topology) const;

  [[nodiscard]] bool Empty() const { return events.empty(); }

  /// Domains with a partition covering time `t` (ascending, deduplicated).
  /// Checkpoints mirrored into these domains are unreachable at `t`.
  [[nodiscard]] std::vector<int> UnreachableDomainsAt(double t) const;
};

/// Draw a correlated schedule over `duration_s` seconds. Deterministic
/// given `rng`: domains are visited in index order, streams in a fixed
/// kind order, so one seed always yields the same incident trace.
CorrelatedSchedule GenerateCorrelatedSchedule(
    const CorrelatedFaultModel& model, const FaultDomainTopology& topology,
    double duration_s, Rng& rng);

/// Project domain events onto the instances placed in the struck domains:
/// kDomainOutage / kPartition hit every instance inside; kReclaimWave
/// preempts ceil(fraction * pool size) victims chosen by Rng(event.seed).
/// The result is start-sorted and composes with a per-instance trace via
/// MergeFaultSchedules.
FaultSchedule LowerCorrelatedSchedule(const CorrelatedSchedule& schedule,
                                      const FaultDomainTopology& topology);

/// CSV with header "kind,domain,start_s,duration_s,fraction,seed"; same
/// strict error handling as the fault-schedule CSV (errors name the line).
CorrelatedSchedule ParseCorrelatedScheduleCsv(const std::string& text);
std::string CorrelatedScheduleCsv(const CorrelatedSchedule& schedule);

}  // namespace ccperf::cloud
